package mlvlsi

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestFamilySpecCanonicalAppliesDefaults(t *testing.T) {
	c, err := FamilySpec{Name: "clusterc", Params: map[string]int{"k": 4}}.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	want := map[string]int{"k": 4, "n": 2, "c": 2}
	if len(c.Params) != len(want) {
		t.Fatalf("canonical params = %v, want %v", c.Params, want)
	}
	for name, v := range want {
		if c.Params[name] != v {
			t.Errorf("canonical %s = %d, want %d", name, c.Params[name], v)
		}
	}
}

func TestFamilySpecCanonicalRejections(t *testing.T) {
	cases := []struct {
		spec FamilySpec
		frag string
	}{
		{FamilySpec{Name: "nosuch"}, "is not a registered family"},
		{FamilySpec{Name: "hypercube", Params: map[string]int{"zz": 1}}, "is not a parameter of this family"},
		{FamilySpec{Name: "hypercube", Params: map[string]int{"n": 99}}, "outside range"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Canonical()
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Fatalf("Canonical(%v) error %v, want *ParamError", tc.spec, err)
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Canonical(%v) error %q, want fragment %q", tc.spec, err, tc.frag)
		}
		// The rejection must be word-for-word what BuildFamily says, so the
		// wire layer and the library speak one error vocabulary.
		_, berr := BuildFamily(tc.spec, Options{})
		if berr == nil || berr.Error() != err.Error() {
			t.Errorf("Canonical error %q != BuildFamily error %q", err, berr)
		}
	}
}

// TestFamilySpecKeyStable proves the content hash does not depend on map
// iteration order or on spelling: re-built param maps, explicit defaults,
// and repeated hashing all land on one key.
func TestFamilySpecKeyStable(t *testing.T) {
	base := FamilySpec{Name: "clusterc", Params: map[string]int{"k": 4, "n": 2, "c": 2}}
	key := base.Key()
	if len(key) != 32 {
		t.Fatalf("Key length = %d, want 32 hex chars", len(key))
	}
	for i := 0; i < 100; i++ {
		// A fresh map each round: Go randomizes iteration order per map, so
		// 100 rounds would almost surely catch an order-dependent encoding.
		p := map[string]int{}
		for name, v := range base.Params {
			p[name] = v
		}
		if got := (FamilySpec{Name: base.Name, Params: p}).Key(); got != key {
			t.Fatalf("round %d: Key = %s, want %s", i, got, key)
		}
	}
	// Omitted parameters hash like explicit defaults (k=4 carries n, c).
	if got := (FamilySpec{Name: "clusterc", Params: map[string]int{"k": 4}}).Key(); got != key {
		t.Errorf("defaulted Key = %s, want %s", got, key)
	}
	if got := (FamilySpec{Name: "clusterc", Params: map[string]int{"k": 5}}).Key(); got == key {
		t.Errorf("different params produced the same key %s", key)
	}
	// Invalid specs still hash deterministically, and never like a valid one.
	bad := FamilySpec{Name: "clusterc", Params: map[string]int{"zz": 1}}
	if bad.Key() != bad.Key() {
		t.Errorf("invalid spec key is not deterministic")
	}
	if bad.Key() == key {
		t.Errorf("invalid spec collides with canonical key")
	}
}

func TestFamilySpecJSONRoundTrip(t *testing.T) {
	spec := FamilySpec{Name: "kary", Params: map[string]int{"k": 4, "n": 3}}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"name":"kary","params":{"k":4,"n":3}}`; string(data) != want {
		t.Errorf("Marshal = %s, want %s", data, want)
	}
	var back FamilySpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != spec.Name || len(back.Params) != 2 || back.Params["k"] != 4 || back.Params["n"] != 3 {
		t.Errorf("round trip = %+v, want %+v", back, spec)
	}
	if err := json.Unmarshal([]byte(`{"name":"kary","paramz":{}}`), &back); err == nil {
		t.Errorf("unknown field accepted")
	}
}

func TestBuildRequestKeyIgnoresExecutionKnobs(t *testing.T) {
	base := BuildRequest{Family: FamilySpec{Name: "hypercube", Params: map[string]int{"n": 6}}, Layers: 4}
	key := base.Key()
	same := base
	same.Workers, same.MaxCells, same.DenseCheckCells = 7, 1<<30, -1
	same.VerifyMemBytes = 1 << 20
	if same.Key() != key {
		t.Errorf("execution knobs changed the key")
	}
	// Layers 0 is the 2-layer default, so it keys like an explicit 2.
	a := BuildRequest{Family: base.Family}
	b := BuildRequest{Family: base.Family, Layers: 2}
	if a.Key() != b.Key() {
		t.Errorf("Layers 0 and 2 key differently")
	}
	geo := base
	geo.NodeSide = 5
	if geo.Key() == key {
		t.Errorf("NodeSide did not change the key")
	}
	lay := base
	lay.Layers = 6
	if lay.Key() == key {
		t.Errorf("Layers did not change the key")
	}
}

func TestBuildRequestJSONRoundTrip(t *testing.T) {
	req := BuildRequest{
		Family:   FamilySpec{Name: "kary", Params: map[string]int{"n": 3, "k": 4}},
		Layers:   4,
		Workers:  2,
		MaxCells: 1000,
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back BuildRequest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != req.Key() || back.Layers != 4 || back.Workers != 2 || back.MaxCells != 1000 {
		t.Errorf("round trip = %+v, want %+v", back, req)
	}
}

func TestBuildSpecMatchesBuildFamily(t *testing.T) {
	req := BuildRequest{Family: FamilySpec{Name: "hypercube", Params: map[string]int{"n": 5}}, Layers: 4}
	lay, err := BuildSpec(context.Background(), req)
	if err != nil {
		t.Fatalf("BuildSpec: %v", err)
	}
	direct, err := BuildFamily(req.Family, Options{Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if lay.Stats() != direct.Stats() {
		t.Errorf("BuildSpec stats %v != BuildFamily stats %v", lay.Stats(), direct.Stats())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildSpec(ctx, req); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled BuildSpec error = %v, want ErrCanceled", err)
	}
}

func TestBuildRequestCanonical(t *testing.T) {
	c, err := BuildRequest{Family: FamilySpec{Name: "hypercube"}}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.Layers != 2 || c.Family.Params["n"] != 4 {
		t.Errorf("canonical request = %+v, want Layers=2 n=4", c)
	}
	if _, err := (BuildRequest{Family: FamilySpec{Name: "hypercube"}, Layers: 1}).Canonical(); err == nil {
		t.Errorf("Layers=1 accepted")
	}
	var pe *ParamError
	if _, err := (BuildRequest{Family: FamilySpec{Name: "zzz"}}).Canonical(); !errors.As(err, &pe) {
		t.Errorf("unknown family error = %v, want *ParamError", err)
	}
}
