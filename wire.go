package mlvlsi

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// Canonical wire forms. The constructions in this module are pure functions
// of (family, parameters, geometry options), which makes every request
// content-addressable: two requests that resolve to the same canonical form
// build byte-identical layouts. FamilySpec and BuildRequest carry that
// contract onto the wire — a stable JSON encoding (params in sorted name
// order), a Canonical() resolution step (defaults applied, every assignment
// validated), and a Key() content hash that is independent of map iteration
// order and of how the request was spelled. The layoutd daemon
// (internal/serve) keys its build cache on exactly this hash.

// Canonical returns the spec in canonical form: every omitted parameter
// replaced by its registry default and every assigned parameter validated,
// so the result names the same construction however the input was spelled.
// Unknown families, unknown parameter names, and out-of-range values are
// rejected with the same *ParamError BuildFamily reports.
func (s FamilySpec) Canonical() (FamilySpec, error) {
	fam := familyByName(s.Name)
	if fam == nil {
		return FamilySpec{}, &ParamError{Family: s.Name, Reason: "is not a registered family; see Families()"}
	}
	p, err := fam.resolveParams(s.Params)
	if err != nil {
		return FamilySpec{}, err
	}
	return FamilySpec{Name: s.Name, Params: p}, nil
}

// MarshalJSON encodes the spec with parameters in sorted name order, so the
// encoding of a given spec is stable across processes and map iteration
// orders — the property the Key content hash is built on.
func (s FamilySpec) MarshalJSON() ([]byte, error) {
	names := make([]string, 0, len(s.Params))
	for name := range s.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	var b bytes.Buffer
	b.WriteString(`{"name":`)
	nameJSON, err := json.Marshal(s.Name)
	if err != nil {
		return nil, err
	}
	b.Write(nameJSON)
	b.WriteString(`,"params":{`)
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		keyJSON, err := json.Marshal(name)
		if err != nil {
			return nil, err
		}
		b.Write(keyJSON)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(s.Params[name]))
	}
	b.WriteString("}}")
	return b.Bytes(), nil
}

// UnmarshalJSON decodes the wire form written by MarshalJSON. Unknown fields
// are rejected: the wire contract is closed, so a misspelled field fails
// loudly instead of silently building the default construction.
func (s *FamilySpec) UnmarshalJSON(data []byte) error {
	var raw struct {
		Name   string         `json:"name"`
		Params map[string]int `json:"params"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return fmt.Errorf("mlvlsi: decoding FamilySpec: %w", err)
	}
	s.Name = raw.Name
	s.Params = raw.Params
	return nil
}

// Key returns the spec's content hash: 32 hex characters identifying the
// canonical form, stable across processes, map iteration orders, and
// spellings (omitted parameters hash identically to explicitly-assigned
// defaults). Specs that fail Canonical still get a deterministic key — of
// the raw sorted form, prefixed so it can never collide with a canonical
// one — but only canonical keys name a buildable construction; the serving
// layer canonicalizes (and rejects) before it ever consults a key.
func (s FamilySpec) Key() string {
	if c, err := s.Canonical(); err == nil {
		s = c
	} else {
		s = FamilySpec{Name: "!invalid:" + s.Name, Params: s.Params}
	}
	data, err := json.Marshal(s)
	if err != nil {
		// Marshal of a string/int map cannot fail; keep Key total anyway.
		data = []byte(s.Name)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}

// BuildRequest is the canonical wire form of one build: a family spec plus
// the JSON-serializable subset of Options. The two non-serializable Options
// fields — Context and Observer — are excluded by construction; attach them
// to the Options value the Options method returns (or pass a context to
// BuildSpec). The zero value of every field means what it means on Options:
// Layers 0 is the 2-layer Thompson default, Workers 0 is GOMAXPROCS,
// MaxCells 0 is unbudgeted.
type BuildRequest struct {
	Family FamilySpec `json:"family"`

	// Geometry fields: these select the constructed layout, and together
	// with the canonical family they are the input to Key.
	Layers     int  `json:"layers,omitempty"`
	NodeSide   int  `json:"node_side,omitempty"`
	FoldedRows bool `json:"folded_rows,omitempty"`

	// Execution knobs: these change how fast (or whether) the build runs,
	// never the constructed bytes, so Key ignores them — requests differing
	// only here share a cache slot.
	Workers         int `json:"workers,omitempty"`
	MaxCells        int `json:"max_cells,omitempty"`
	DenseCheckCells int `json:"dense_check_cells,omitempty"`
	VerifyMemBytes  int `json:"verify_mem_bytes,omitempty"`
}

// Options converts the request into an Options value. Context and Observer
// start nil — they are process-local and never travel on the wire.
func (r BuildRequest) Options() Options {
	return Options{
		Layers:          r.Layers,
		NodeSide:        r.NodeSide,
		FoldedRows:      r.FoldedRows,
		Workers:         r.Workers,
		MaxCells:        r.MaxCells,
		DenseCheckCells: r.DenseCheckCells,
		VerifyMemBytes:  r.VerifyMemBytes,
	}
}

// Canonical resolves the request: Options-level fields validated, the family
// spec canonicalized, and Layers replaced by its effective value (0 → 2).
// Two requests with equal canonical forms build identical layouts under
// identical budgets.
func (r BuildRequest) Canonical() (BuildRequest, error) {
	if err := r.Options().validate(); err != nil {
		return BuildRequest{}, err
	}
	fam, err := r.Family.Canonical()
	if err != nil {
		return BuildRequest{}, err
	}
	r.Family = fam
	r.Layers = r.Options().layers()
	return r, nil
}

// Key returns the content hash of the layout this request builds: the
// canonical family plus the geometry fields (Layers at its effective value,
// NodeSide, FoldedRows). Execution knobs are excluded — see BuildRequest.
// Like FamilySpec.Key it is total and deterministic on invalid requests,
// which simply never enter a cache.
func (r BuildRequest) Key() string {
	fam := r.Family
	if c, err := fam.Canonical(); err == nil {
		fam = c
	} else {
		fam = FamilySpec{Name: "!invalid:" + fam.Name, Params: fam.Params}
	}
	famJSON, err := json.Marshal(fam)
	if err != nil {
		famJSON = []byte(fam.Name)
	}
	payload := fmt.Sprintf(`{"family":%s,"layers":%d,"node_side":%d,"folded_rows":%t}`,
		famJSON, r.Options().layers(), r.NodeSide, r.FoldedRows)
	sum := sha256.Sum256([]byte(payload))
	return hex.EncodeToString(sum[:16])
}

// BuildSpec builds the layout a BuildRequest describes, under ctx's
// cooperative cancellation (nil means no cancellation). It is the
// request-shaped sibling of BuildFamily: the layoutd daemon and the cmd
// tools both go through it, so there is exactly one mapping from the wire
// form to the engines. Rejections keep their types: *ParamError for bad
// families, parameters, or option fields; *BudgetError for a MaxCells
// overrun; an error wrapping ErrCanceled once ctx is done.
func BuildSpec(ctx context.Context, req BuildRequest) (*Layout, error) {
	return BuildSpecObserved(ctx, req, nil)
}

// BuildSpecObserved is BuildSpec with observation: spans and counters from
// the build accumulate on obsv (nil disables observation at zero cost, as
// everywhere). The layoutd daemon routes every cache miss through it so one
// observer sees builds and cache traffic together.
func BuildSpecObserved(ctx context.Context, req BuildRequest, obsv *Observer) (*Layout, error) {
	return BuildSpecWith(ctx, req, obsv, nil)
}

// BuildSpecWith is BuildSpecObserved with an arena scratch: a non-nil
// scratch selects the zero-alloc build path (see Options.Scratch for the
// ownership contract), nil the default allocating path — the constructed
// layout is byte-identical either way. The layoutd daemon and the batch
// APIs route their builds through it to reuse one scratch across requests.
func BuildSpecWith(ctx context.Context, req BuildRequest, obsv *Observer, scratch *BuildScratch) (*Layout, error) {
	o := req.Options()
	o.Context = ctx
	o.Observer = obsv
	o.Scratch = scratch
	return BuildFamily(req.Family, o)
}
