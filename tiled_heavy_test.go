package mlvlsi

import (
	"os"
	"testing"
)

// TestTiledHypercube16UnderBudget is the acceptance run for the tiled
// streaming verifier: Hypercube(16, L=4) spans a ~24000² grid whose dense
// occupancy bitset needs over a gigabyte, so under a 64 MiB ceiling the
// dense rung cannot allocate and the ladder must drop to the tiled rung —
// which still has to verify the 1.6-billion-edge layout clean. The run
// takes minutes and tens of gigabytes for the layout itself, so it is
// gated behind MLVLSI_HEAVY=1 rather than riding the tier-1 suite.
func TestTiledHypercube16UnderBudget(t *testing.T) {
	if os.Getenv("MLVLSI_HEAVY") == "" {
		t.Skip("set MLVLSI_HEAVY=1 to run the Hypercube(16) tiled acceptance check")
	}
	lay, err := Hypercube(16, Options{Layers: 4})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ob := NewObserver()
	vs, err := VerifyLayout(lay, Options{VerifyMemBytes: 64 << 20, Observer: ob})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("layout reported %d violations, first: %v", len(vs), vs[0])
	}
	m := ob.Snapshot()
	if m.Get(CounterTiledChecks) != 1 {
		t.Fatalf("tiled_checks = %d: the ceiling did not engage the tiled rung", m.Get(CounterTiledChecks))
	}
	if peak := m.Get(CounterTileBytesPeak); peak == 0 || peak > 64<<20 {
		t.Fatalf("tile_bytes_peak = %d, want within the 64 MiB ceiling", peak)
	}
	t.Logf("tiles_checked=%d border_edges_reconciled=%d tile_bytes_peak=%d unit_edges=%d",
		m.Get(CounterTilesChecked), m.Get(CounterBorderEdgesReconciled),
		m.Get(CounterTileBytesPeak), m.Get(CounterUnitEdgesChecked))
}
