package mlvlsi

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mlvlsi/internal/core"
	"mlvlsi/internal/fault"
	"mlvlsi/internal/grid"
)

// TestChaosSweepAllFamilies is the metamorphic chaos sweep: every registered
// family is built at its default parameters, corrupted with every fault
// class, and both the serial and the sharded verifier must flag each
// corruption. A miss here means a verifier blind spot.
func TestChaosSweepAllFamilies(t *testing.T) {
	for _, fam := range Families() {
		lay, err := BuildFamily(FamilySpec{Name: fam.Name}, Options{})
		if err != nil {
			t.Fatalf("%s: build: %v", fam.Name, err)
		}
		for _, workers := range []int{1, 4} {
			if err := fault.SelfTest(lay, 1, workers); err != nil {
				t.Errorf("%s (workers=%d): %v", fam.Name, workers, err)
			}
		}
	}
}

// TestChaosSweepTiledGeometries repeats the chaos sweep through the tiled
// streaming verifier at its three partition shapes: a single tile (the
// default per-tile budget comfortably holds a small layout), a proper
// multi-row multi-column grid (a tiny ceiling on the same layout), and a
// degenerate thin partition (a wide, flat mesh whose tiles clip the full
// height — the extreme-aspect-ratio stress collinear networks produce).
// Every fault class must be detected on every geometry with the violation
// set byte-identical to the sharded checker's, so seam clipping and border
// reconciliation cannot hide a corruption whatever shape the budget forces.
func TestChaosSweepTiledGeometries(t *testing.T) {
	square, err := Hypercube(6, Options{Layers: 4})
	if err != nil {
		t.Fatalf("hypercube build: %v", err)
	}
	thin, err := Mesh([]int{64, 2}, Options{})
	if err != nil {
		t.Fatalf("mesh build: %v", err)
	}
	cases := []struct {
		name      string
		lay       *Layout
		tileBytes int
		shape     func(tl grid.Tiling) bool
	}{
		{"one-tile", square, -1, func(tl grid.Tiling) bool { return tl.NX == 1 && tl.NY == 1 }},
		{"grid", square, 1 << 10, func(tl grid.Tiling) bool { return tl.NX >= 2 && tl.NY >= 2 }},
		{"thin", thin, 1 << 10, func(tl grid.Tiling) bool { return tl.NX >= 2 && tl.NY == 1 }},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			tl, ok := grid.NewTiling(tc.lay.Wires, tc.tileBytes, workers)
			if !ok || !tc.shape(tl) {
				t.Fatalf("%s workers=%d: budget %d induced %dx%d tiles of %dx%d, not the intended geometry",
					tc.name, workers, tc.tileBytes, tl.NX, tl.NY, tl.TileW, tl.TileH)
			}
			if err := fault.SelfTestTiled(tc.lay, 1, workers, tc.tileBytes); err != nil {
				t.Errorf("%s workers=%d: %v", tc.name, workers, err)
			}
		}
	}
}

// TestCancelAbortsBuildQuickly holds the build path to the robustness
// budget: once the context expires, Hypercube(12, L=4) — a 4096-node,
// 24576-wire build — must abort with the typed cancellation error well
// within 100ms.
func TestCancelAbortsBuildQuickly(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	lay, err := Hypercube(12, Options{Layers: 4, Context: ctx})
	elapsed := time.Since(start)
	if lay != nil {
		t.Error("canceled build still returned a layout")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v should wrap the context's own error", err)
	}
	if budget := time.Millisecond + 100*time.Millisecond; elapsed > budget {
		t.Errorf("canceled build took %v, want < %v", elapsed, budget)
	}
}

// TestCancelAbortsVerifyQuickly does the same for the verify path, whose
// uncancelled run on this layout takes seconds.
func TestCancelAbortsVerifyQuickly(t *testing.T) {
	lay, err := Hypercube(12, Options{Layers: 4})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	vs, err := lay.VerifyContext(ctx, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled (got %d violations)", err, len(vs))
	}
	if budget := 5*time.Millisecond + 100*time.Millisecond; elapsed > budget {
		t.Errorf("canceled verify took %v, want < %v", elapsed, budget)
	}
	// A live context must behave exactly like the plain verifier.
	vs, err = lay.VerifyContext(context.Background(), 0)
	if err != nil || len(vs) != 0 {
		t.Errorf("live-context verify: err=%v violations=%d", err, len(vs))
	}
}

// TestBudgetAbortsOversizedBuilds checks the MaxCells fail-fast: a plan over
// budget returns a typed *BudgetError before realizing any wire, and a
// sufficient budget is transparent.
func TestBudgetAbortsOversizedBuilds(t *testing.T) {
	_, err := Hypercube(8, Options{MaxCells: 1000})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *BudgetError", err, err)
	}
	if be.Cells <= be.Budget || be.Budget != 1000 {
		t.Errorf("BudgetError fields: cells=%d budget=%d", be.Cells, be.Budget)
	}
	if !strings.Contains(err.Error(), "over the budget") {
		t.Errorf("BudgetError message: %q", err.Error())
	}
	lay, err := Hypercube(4, Options{MaxCells: 1 << 30})
	if err != nil || lay == nil {
		t.Fatalf("in-budget build failed: %v", err)
	}
	if vs := lay.Verify(); len(vs) != 0 {
		t.Errorf("in-budget build has %d violations", len(vs))
	}
}

// TestBuildContainsPanics injects a panicking user closure into the build
// and requires it to surface as a *PanicError carrying the original panic
// value and stack — the process must neither crash nor hang.
func TestBuildContainsPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		spec := core.HypercubeSpec(6, 2, 0)
		spec.Workers = workers
		rows, cols := spec.Rows, spec.Cols
		spec.Label = func(r, c int) int {
			if r == rows-1 && c == cols-1 {
				panic("injected label fault")
			}
			return r*cols + c
		}
		lay, err := core.Build(spec)
		if lay != nil {
			t.Errorf("workers=%d: panicking build still returned a layout", workers)
		}
		var p *PanicError
		if !errors.As(err, &p) {
			t.Fatalf("workers=%d: err = %v (%T), want *PanicError", workers, err, err)
		}
		if p.Value != "injected label fault" {
			t.Errorf("workers=%d: panic value %v", workers, p.Value)
		}
		if len(p.Stack) == 0 {
			t.Errorf("workers=%d: original stack not captured", workers)
		}
	}
}

// TestDegradedSimulation exercises the fault-plan path of the simulator:
// dead nodes and links drop exactly the affected traffic while surviving
// messages reroute.
func TestDegradedSimulation(t *testing.T) {
	lay, err := Hypercube(4, Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	healthy := Simulate(lay, SimConfig{Pattern: BitComplement})
	if healthy.Dropped != 0 || healthy.Delivered != 16 {
		t.Fatalf("healthy run: %v", healthy)
	}

	// Node 0 dead: messages 0→15 and 15→0 drop at injection; the other 14
	// reroute around the missing links and still arrive.
	oneDead := Simulate(lay, SimConfig{Pattern: BitComplement,
		Faults: &SimFaultPlan{Nodes: []int{0}}})
	if oneDead.Dropped != 2 || oneDead.Delivered != 14 {
		t.Errorf("node-0-dead run: %v, want delivered=14 dropped=2", oneDead)
	}

	// Random faults: the same seed reproduces the same degraded result, and
	// the message count is conserved between delivered and dropped.
	cfg := SimConfig{Pattern: Permutation, Seed: 7,
		Faults: &SimFaultPlan{RandomNodes: 2, RandomLinks: 3, Seed: 9}}
	a, b := Simulate(lay, cfg), Simulate(lay, cfg)
	if a != b {
		t.Errorf("seeded degraded runs differ: %v vs %v", a, b)
	}
	base := Simulate(lay, SimConfig{Pattern: Permutation, Seed: 7})
	if a.Delivered+a.Dropped != base.Delivered {
		t.Errorf("messages not conserved: %d delivered + %d dropped vs %d healthy",
			a.Delivered, a.Dropped, base.Delivered)
	}
	if a.Dropped == 0 {
		t.Error("2 dead nodes dropped no traffic; fault plan had no effect")
	}

	// Isolating a node by killing its links strands en-route traffic on the
	// nh < 0 path rather than at injection.
	mesh, err := Mesh([]int{2, 2}, Options{})
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	iso := Simulate(mesh, SimConfig{Pattern: BitComplement,
		Faults: &SimFaultPlan{Links: [][2]int{{0, 1}, {0, 2}}}})
	if iso.Dropped != 2 || iso.Delivered != 2 {
		t.Errorf("isolated-node run: %v, want delivered=2 dropped=2", iso)
	}
}

// TestOptionsValidateEdgeCases pins the hardened Options.validate: each
// rejected field comes back as a *ParamError naming that field.
func TestOptionsValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		o     Options
		param string
	}{
		{"negative workers", Options{Workers: -1}, "Workers"},
		{"single layer", Options{Layers: 1}, "Layers"},
		{"negative layers", Options{Layers: -2}, "Layers"},
		{"huge node side", Options{NodeSide: 1<<20 + 1}, "NodeSide"},
		{"negative node side", Options{NodeSide: -1}, "NodeSide"},
		{"negative budget", Options{MaxCells: -1}, "MaxCells"},
	}
	for _, tc := range cases {
		lay, err := Hypercube(3, tc.o)
		if lay != nil {
			t.Errorf("%s: build succeeded", tc.name)
		}
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%s: err = %v (%T), want *ParamError", tc.name, err, err)
			continue
		}
		if pe.Param != tc.param {
			t.Errorf("%s: ParamError names %q, want %q", tc.name, pe.Param, tc.param)
		}
		if !strings.Contains(err.Error(), tc.param) {
			t.Errorf("%s: message %q does not name the field", tc.name, err.Error())
		}
	}
	// The registry path shares the same validation.
	_, err := BuildFamily(FamilySpec{Name: "hypercube"}, Options{Layers: 1})
	var pe *ParamError
	if !errors.As(err, &pe) || pe.Param != "Layers" {
		t.Errorf("BuildFamily bypassed Options validation: %v", err)
	}
}

// TestContextFlowsThroughRegistry checks that Options.Context reaches every
// family's build path: a pre-canceled context must abort each default build.
func TestContextFlowsThroughRegistry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, fam := range Families() {
		lay, err := BuildFamily(FamilySpec{Name: fam.Name}, Options{Context: ctx})
		if lay != nil || !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: pre-canceled build returned (%v, %v), want ErrCanceled", fam.Name, lay, err)
		}
	}
}

// TestPathWireContextCancellation covers the routing sweeps' ctx variants.
func TestPathWireContextCancellation(t *testing.T) {
	lay, err := Hypercube(6, Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MaxPathWireContext(ctx, lay, 0); !errors.Is(err, ErrCanceled) {
		t.Errorf("MaxPathWireContext: %v, want ErrCanceled", err)
	}
	if _, err := AveragePathWireContext(ctx, lay, 0); !errors.Is(err, ErrCanceled) {
		t.Errorf("AveragePathWireContext: %v, want ErrCanceled", err)
	}
	m, err := MaxPathWireContext(context.Background(), lay, 0)
	if err != nil || m != MaxPathWire(lay, 0) {
		t.Errorf("live-context MaxPathWire diverged: %d err=%v", m, err)
	}
}
