package mlvlsi

import (
	"reflect"
	"testing"

	"mlvlsi/internal/fault"
	"mlvlsi/internal/grid"
)

// TestDenseMapDifferentialAllFamilies is the three-way occupancy
// differential sweep: for every registered family — legal as built, and
// corrupted with every fault class — the dense occupancy checker, the
// retained map fallback (DenseLimit < 0), and the tiled streaming verifier
// (TileBytes < 0, plus a deliberately tiny positive ceiling that forces a
// multi-tile partition with conflicts crossing seams) must report identical
// violation slices, for the serial checker and for the sharded checker at
// several worker counts. Together with the chaos sweep (which proves each
// corruption is detected) this pins the three occupancy cores to each other
// edge for edge.
func TestDenseMapDifferentialAllFamilies(t *testing.T) {
	for _, fam := range Families() {
		lay, err := BuildFamily(FamilySpec{Name: fam.Name}, Options{})
		if err != nil {
			t.Fatalf("%s: build: %v", fam.Name, err)
		}
		assertDenseMatchesMap(t, fam.Name+"/legal", lay.Wires, grid.CheckOptions{
			Layers: lay.L, Discipline: true, Nodes: lay.Nodes,
		}, true)
		for _, c := range fault.Classes() {
			bad, info, err := (fault.Injector{Seed: 11}).Apply(lay, c)
			if err != nil {
				t.Fatalf("%s: inject %s: %v", fam.Name, c, err)
			}
			name := fam.Name + "/" + c.String()
			opts := grid.CheckOptions{Layers: bad.L, Discipline: true, Nodes: bad.Nodes}
			assertDenseMatchesMap(t, name, bad.Wires, opts, false)
			if vs := grid.Check(bad.Wires, opts); !c.Detected(vs) {
				t.Errorf("%s: dense checker missed the corruption (%s)", name, info)
			}
		}
	}
}

// assertDenseMatchesMap checks one wire set under all three occupancy
// cores, serially and sharded, and (when legal is set) that the layout
// verifies clean everywhere. The tiled rung's contract is the parallel
// checker's canonical set, so its output is compared against the sharded
// result at the same worker count.
func assertDenseMatchesMap(t *testing.T, name string, wires []grid.Wire, opts grid.CheckOptions, legal bool) {
	t.Helper()
	sparse := opts
	sparse.DenseLimit = -1
	serialDense := grid.Check(wires, opts)
	serialMap := grid.Check(wires, sparse)
	if !reflect.DeepEqual(serialDense, serialMap) {
		t.Errorf("%s: serial dense/map divergence\ndense: %v\nmap:   %v", name, serialDense, serialMap)
	}
	if legal && len(serialDense) != 0 {
		t.Errorf("%s: legal layout reported %d violations: %v", name, len(serialDense), serialDense[0])
	}
	for _, workers := range []int{1, 4} {
		parDense := grid.CheckParallel(wires, opts, workers)
		parMap := grid.CheckParallel(wires, sparse, workers)
		if !reflect.DeepEqual(parDense, parMap) {
			t.Errorf("%s workers=%d: parallel dense/map divergence\ndense: %v\nmap:   %v",
				name, workers, parDense, parMap)
		}
		if (len(parDense) == 0) != (len(serialDense) == 0) {
			t.Errorf("%s workers=%d: verdicts diverge (serial %d, parallel %d)",
				name, workers, len(serialDense), len(parDense))
		}
		for _, tileBytes := range []int{-1, 1 << 10} {
			tiled := opts
			tiled.Workers = workers
			tiled.TileBytes = tileBytes
			got, err := grid.Verify(nil, wires, tiled)
			if err != nil {
				t.Fatalf("%s workers=%d tile=%d: %v", name, workers, tileBytes, err)
			}
			if !reflect.DeepEqual(got, parDense) {
				t.Errorf("%s workers=%d tile=%d: tiled/parallel divergence\ntiled:    %v\nparallel: %v",
					name, workers, tileBytes, got, parDense)
			}
		}
	}
}
