// Benchmark harness: one Benchmark per experiment in DESIGN.md's index
// (E1-E14, regenerating the paper's figures and per-section results) plus
// ablation benches for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the experiment's headline quantity (tracks,
// area, ratio …) so `-bench` output doubles as a compact results table.
package mlvlsi_test

import (
	"fmt"
	"testing"

	"mlvlsi/internal/cluster"
	"mlvlsi/internal/core"
	"mlvlsi/internal/experiments"
	"mlvlsi/internal/extra"
	"mlvlsi/internal/fold"
	"mlvlsi/internal/formulas"
	"mlvlsi/internal/generic"
	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/route"
	"mlvlsi/internal/sim"
	"mlvlsi/internal/stack"
	"mlvlsi/internal/topology"
	"mlvlsi/internal/track"
)

// mustLay returns a checker curried on b so call sites can splat builder
// (layout, error) pairs directly.
func mustLay(b *testing.B) func(*layout.Layout, error) *layout.Layout {
	return func(lay *layout.Layout, err error) *layout.Layout {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		return lay
	}
}

// --- E1-E3: the collinear constructions behind Figures 2-4 ---------------

func BenchmarkE1CollinearKAry(b *testing.B) {
	var tracks int
	for i := 0; i < b.N; i++ {
		c := track.KAryNCube(8, 4, false)
		tracks = c.Tracks
	}
	b.ReportMetric(float64(tracks), "tracks")
	b.ReportMetric(float64(track.TrackCountKAry(8, 4)), "paper-tracks")
}

func BenchmarkE2CollinearComplete(b *testing.B) {
	var tracks int
	for i := 0; i < b.N; i++ {
		c := track.Complete(64)
		tracks = c.Tracks
	}
	b.ReportMetric(float64(tracks), "tracks")
	b.ReportMetric(float64(64*64/4), "paper-tracks")
}

func BenchmarkE3CollinearHypercube(b *testing.B) {
	var tracks int
	for i := 0; i < b.N; i++ {
		c := track.Hypercube(12)
		tracks = c.Tracks
	}
	b.ReportMetric(float64(tracks), "tracks")
	b.ReportMetric(float64(track.TrackCountHypercube(12)), "paper-tracks")
}

// --- E4-E11: per-family layout constructions ------------------------------

func BenchmarkE4KAryNCube(b *testing.B) {
	var area int
	for i := 0; i < b.N; i++ {
		lay := mustLay(b)(core.KAryNCube(8, 3, 8, false, 0, 0))
		area = lay.Area()
	}
	b.ReportMetric(float64(area), "area")
	b.ReportMetric(formulas.KAryArea(512, 8, 8), "paper-area")
}

func BenchmarkE5GeneralizedHypercube(b *testing.B) {
	var area int
	for i := 0; i < b.N; i++ {
		lay := mustLay(b)(core.GeneralizedHypercube([]int{8, 8}, 4, 0, 0))
		area = lay.Area()
	}
	b.ReportMetric(float64(area), "area")
	b.ReportMetric(formulas.GHCArea(64, 8, 4), "paper-area")
}

func BenchmarkE6Butterfly(b *testing.B) {
	var area int
	for i := 0; i < b.N; i++ {
		lay := mustLay(b)(cluster.Butterfly(6, 4, 0, 0))
		area = lay.Area()
	}
	b.ReportMetric(float64(area), "area")
	b.ReportMetric(formulas.ButterflyArea(6<<6, 4), "paper-area")
}

func BenchmarkE7SwapNetworks(b *testing.B) {
	var area int
	for i := 0; i < b.N; i++ {
		lay := mustLay(b)(cluster.HSN(3, 4, 4, 0, 0, nil))
		area = lay.Area()
	}
	b.ReportMetric(float64(area), "area")
	b.ReportMetric(formulas.HSNArea(64, 4), "paper-area")
}

func BenchmarkE8Hypercube(b *testing.B) {
	var area int
	for i := 0; i < b.N; i++ {
		lay := mustLay(b)(core.Hypercube(10, 8, 0, 0))
		area = lay.Area()
	}
	b.ReportMetric(float64(area), "area")
	b.ReportMetric(formulas.HypercubeArea(1024, 8), "paper-area")
}

func BenchmarkE9CCC(b *testing.B) {
	var area int
	for i := 0; i < b.N; i++ {
		lay := mustLay(b)(cluster.CCC(6, 4, 0, 0))
		area = lay.Area()
	}
	b.ReportMetric(float64(area), "area")
	b.ReportMetric(formulas.CCCArea(6<<6, 4), "paper-area")
}

func BenchmarkE10FoldedEnhanced(b *testing.B) {
	var area int
	for i := 0; i < b.N; i++ {
		lay := mustLay(b)(extra.FoldedHypercube(9, 4, 0, 0))
		area = lay.Area()
	}
	b.ReportMetric(float64(area), "area")
	b.ReportMetric(formulas.FoldedHypercubeArea(512, 4), "paper-area")
}

func BenchmarkE11PNCluster(b *testing.B) {
	var area int
	for i := 0; i < b.N; i++ {
		lay := mustLay(b)(cluster.KAryClusterC(4, 4, 4, 4, 0, 0))
		area = lay.Area()
	}
	b.ReportMetric(float64(area), "area")
}

// --- E12-E14: baselines, bounds, simulation -------------------------------

func BenchmarkE12FoldingBaseline(b *testing.B) {
	base := mustLay(b)(core.Hypercube(8, 2, 0, 0))
	baseArea := base.Area()
	var foldedArea int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fold.Fold(base, 8)
		if err != nil {
			b.Fatal(err)
		}
		foldedArea = fold.Measure(f).Area
	}
	direct := mustLay(b)(core.Hypercube(8, 8, 0, 0))
	b.ReportMetric(float64(baseArea)/float64(foldedArea), "fold-gain")
	b.ReportMetric(float64(baseArea)/float64(direct.Area()), "direct-gain")
}

func BenchmarkE13LowerBounds(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E13LowerBounds()
		_ = tab
		ratio = 1
	}
	b.ReportMetric(ratio, "ok")
}

func BenchmarkE14WireDelaySim(b *testing.B) {
	lay := mustLay(b)(core.Hypercube(8, 8, 0, 0))
	var avg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.Run(lay, sim.Config{Pattern: sim.Permutation, Velocity: 1, Seed: 7})
		avg = res.AvgLatency
	}
	b.ReportMetric(avg, "avg-latency")
}

// --- Ablations (DESIGN.md) -------------------------------------------------

// Ablation: the paper's structured track recurrences versus per-instance
// greedy recoloring (Compact). Greedy can only match or beat the recurrence
// for a fixed placement; the bench reports both counts.
func BenchmarkAblationGreedyRecolor(b *testing.B) {
	c := track.Hypercube(12)
	var compactTracks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compactTracks = c.Compact().Tracks
	}
	b.ReportMetric(float64(c.Tracks), "structured-tracks")
	b.ReportMetric(float64(compactTracks), "greedy-tracks")
}

// Ablation: folded versus natural row order for torus wire length (§3.1).
func BenchmarkAblationFoldedRows(b *testing.B) {
	var plain, folded int
	for i := 0; i < b.N; i++ {
		p := mustLay(b)(core.KAryNCube(16, 2, 4, false, 0, 0))
		f := mustLay(b)(core.KAryNCube(16, 2, 4, true, 0, 0))
		plain, folded = p.MaxWireLength(), f.MaxWireLength()
	}
	b.ReportMetric(float64(plain), "maxwire-natural")
	b.ReportMetric(float64(folded), "maxwire-folded")
}

// Ablation: cost of the exact legality verifier (marks every unit wire edge
// in a dense occupancy bitset), the price of machine-checked layouts.
func BenchmarkAblationVerifier(b *testing.B) {
	lay := mustLay(b)(core.Hypercube(8, 4, 0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := lay.Verify(); len(v) > 0 {
			b.Fatal(v[0])
		}
	}
}

// Ablation: routing measurement cost (hop-shortest Dijkstra sweep).
func BenchmarkAblationMaxPathWire(b *testing.B) {
	lay := mustLay(b)(core.Hypercube(8, 4, 0, 0))
	var w int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w = route.MaxPathWire(lay, 16, 0)
	}
	b.ReportMetric(float64(w), "pathwire")
}

func BenchmarkE15Cayley(b *testing.B) {
	var area int
	for i := 0; i < b.N; i++ {
		lay := mustLay(b)(cluster.Star(5, 4, 0, 0))
		area = lay.Area()
	}
	b.ReportMetric(float64(area), "area")
}

func BenchmarkE16Stack3D(b *testing.B) {
	var area int
	for i := 0; i < b.N; i++ {
		s, err := stack.Hypercube3D(8, 2, 4, stack.Knobs{})
		if err != nil {
			b.Fatal(err)
		}
		area = s.Area()
	}
	b.ReportMetric(float64(area), "footprint")
}

// Ablation: optimal recoloring of the paper's structured track assignment
// (expected to be a no-op on paper constructions).
func BenchmarkE17Compaction(b *testing.B) {
	spec := core.FromFactors("h10", track.Hypercube(5), track.Hypercube(5), 2, 0)
	var w int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := core.Plan(core.CompactTracks(spec))
		if err != nil {
			b.Fatal(err)
		}
		w = g.ChannelWidth
	}
	b.ReportMetric(float64(w), "chan-width")
}

func BenchmarkE18GenericRouter(b *testing.B) {
	g := topology.DeBruijn(7)
	var area int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lay, err := generic.Layout(g, generic.Config{L: 4})
		if err != nil {
			b.Fatal(err)
		}
		area = lay.Area()
	}
	b.ReportMetric(float64(area), "area")
}

// Serial-vs-parallel verification on the PR's acceptance workload: the
// 12-cube under L=4 (24576 wires). Both checkers run on a dense occupancy
// bitset indexed by the layout's bounding box (pooled across calls, so the
// legal path is allocation-free); the *Sparse variants force the retained
// map-based fallback with DenseLimit < 0, which is also the pre-dense
// baseline the README quotes.
func benchCheckWires(b *testing.B) ([]grid.Wire, grid.CheckOptions) {
	b.Helper()
	lay := mustLay(b)(core.Hypercube(12, 4, 0, 0))
	return lay.Wires, grid.CheckOptions{Layers: lay.L, Discipline: true, Nodes: lay.Nodes}
}

func BenchmarkCheckSerial(b *testing.B) {
	wires, opts := benchCheckWires(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := grid.Check(wires, opts); len(v) > 0 {
			b.Fatal(v[0])
		}
	}
}

func BenchmarkCheckSerialSparse(b *testing.B) {
	wires, opts := benchCheckWires(b)
	opts.DenseLimit = -1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := grid.Check(wires, opts); len(v) > 0 {
			b.Fatal(v[0])
		}
	}
}

func BenchmarkCheckParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			wires, opts := benchCheckWires(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v := grid.CheckParallel(wires, opts, workers); len(v) > 0 {
					b.Fatal(v[0])
				}
			}
		})
	}
}

func BenchmarkCheckParallelSparse(b *testing.B) {
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			wires, opts := benchCheckWires(b)
			opts.DenseLimit = -1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v := grid.CheckParallel(wires, opts, workers); len(v) > 0 {
					b.Fatal(v[0])
				}
			}
		})
	}
}

// Serial-vs-parallel hop-shortest routing sweeps (the measurement behind
// MaxPathWire/AveragePathWire).
func BenchmarkMaxPathWireSerial(b *testing.B) {
	lay := mustLay(b)(core.Hypercube(9, 4, 0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route.MaxPathWire(lay, 32, 1)
	}
}

func BenchmarkMaxPathWireParallel(b *testing.B) {
	lay := mustLay(b)(core.Hypercube(9, 4, 0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route.MaxPathWire(lay, 32, 4)
	}
}

// Serial-vs-parallel wire realization (the build-side half of the engine).
// The spec is assembled once outside the loop — assembly is cheap, identical
// on every path, and excluding it keeps these comparable with the arena
// benchmarks in internal/core (BenchmarkBuildLegacy/Scratch/Transient).
func benchBuildHypercube(b *testing.B, workers int) {
	b.Helper()
	spec := core.HypercubeSpec(10, 4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := spec
		s.Workers = workers
		mustLay(b)(core.Build(s))
	}
}

func BenchmarkBuildHypercubeSerial(b *testing.B)   { benchBuildHypercube(b, 1) }
func BenchmarkBuildHypercubeParallel(b *testing.B) { benchBuildHypercube(b, 4) }
