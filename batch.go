package mlvlsi

import (
	"context"
	"runtime/debug"

	"mlvlsi/internal/core"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
)

// Batch builds. BuildBatch and VerifyBatch amortize allocation work across
// many build requests the way a single arena build amortizes it across
// phases: one scratch set is reused for every instance, and VerifyBatch
// pipelines build against verify so the verification of layout i overlaps
// the construction of layout i+1. Errors are per item — a bad request, a
// budget overrun, or a panic in one item never fails the others — and
// cancellation marks every unprocessed item with an error wrapping
// ErrCanceled.

// BuildScratch is a reusable allocation arena for the build engine. Passing
// one via Options.Scratch (or implicitly through BuildBatch/VerifyBatch)
// moves per-build allocations into reusable slabs: a large build drops from
// tens of thousands of allocations to a handful, with a byte-identical
// layout. A scratch is owned by one build at a time — reuse it across
// sequential builds freely, but never share it between concurrent ones. The
// layouts it helps build alias nothing inside it (DESIGN.md §9), so
// reaching the next build requires no quiescence beyond the builds being
// ordered.
type BuildScratch struct {
	s core.BuildScratch
}

// NewBuildScratch returns an empty scratch; its slabs grow to fit on first
// use and are retained for reuse.
func NewBuildScratch() *BuildScratch { return &BuildScratch{} }

// inner unwraps to the engine's scratch type; nil-safe so a nil
// *BuildScratch selects the engine's default allocating path.
func (s *BuildScratch) inner() *core.BuildScratch {
	if s == nil {
		return nil
	}
	return &s.s
}

// BatchOptions configures BuildBatch and VerifyBatch.
type BatchOptions struct {
	// Workers is the default per-item fan-out, applied to every request
	// whose own Workers field is zero. Zero means GOMAXPROCS, as on Options.
	Workers int
	// Observer, when non-nil, receives the batch spans (batch_build /
	// batch_verify with an items attribute, plus each item's build and
	// verify spans) and the batch counters — scratch_reuses, scratch_bytes,
	// and for the pipelined VerifyBatch batch_pipeline_stalls.
	Observer *Observer
}

// BatchResult is one item's outcome. Exactly one of Layout or Err is
// non-nil for BuildBatch items; VerifyBatch items report Violations instead
// of a Layout (the layouts it builds are transient and never escape).
type BatchResult struct {
	Layout     *Layout
	Violations []Violation
	Err        error
}

// BuildBatch builds every request, reusing one arena scratch across the
// whole batch, and returns one result per request in order. Item errors are
// typed exactly as in BuildSpec (*ParamError, *BudgetError, *PanicError, an
// error wrapping ErrCanceled) and are per item: one bad request does not
// fail the batch. Once ctx is done, every remaining item is marked canceled
// without building.
func BuildBatch(ctx context.Context, reqs []BuildRequest, opts BatchOptions) []BatchResult {
	res := make([]BatchResult, len(reqs))
	span := opts.Observer.StartSpan("batch_build")
	span.SetAttr("items", int64(len(reqs)))
	defer span.End()
	scratch := NewBuildScratch()
	for i := range reqs {
		if err := par.Canceled(ctx); err != nil {
			res[i].Err = err
			continue
		}
		res[i].Layout, res[i].Err = batchBuildOne(ctx, reqs[i], opts, scratch)
	}
	return res
}

// batchBuildOne builds one item with the shared scratch. The engine already
// contains panics from its own goroutines; the recover here additionally
// contains panics raised outside it (request canonicalization, spec
// assembly), upholding the per-item error contract.
func batchBuildOne(ctx context.Context, req BuildRequest, opts BatchOptions, scratch *BuildScratch) (lay *Layout, err error) {
	defer func() {
		if v := recover(); v != nil {
			p, ok := v.(*par.Panic)
			if !ok {
				p = &par.Panic{Value: v, Stack: debug.Stack()}
			}
			lay, err = nil, p
		}
	}()
	if req.Workers == 0 {
		req.Workers = opts.Workers
	}
	return BuildSpecWith(ctx, req, opts.Observer, scratch)
}

// pipelineDepth bounds the VerifyBatch hand-off queue: the builder may run
// at most this many layouts ahead of the verifier before it blocks (and
// counts a batch_pipeline_stall).
const pipelineDepth = 2

// VerifyBatch builds and verifies every request, returning each item's
// violation set (an empty set with a nil Err means the layout is legal).
// Construction and verification run as a two-stage pipeline: a builder
// goroutine realizes layout i+1 while the verifier checks layout i, with a
// bounded hand-off queue between them. The layouts are built in transient
// arena mode and dropped after verification — only the violation sets
// escape — which makes the whole batch allocation-free in steady state.
// Error semantics match BuildBatch: typed, per item, and cancellation marks
// every unprocessed item.
func VerifyBatch(ctx context.Context, reqs []BuildRequest, opts BatchOptions) []BatchResult {
	res := make([]BatchResult, len(reqs))
	span := opts.Observer.StartSpan("batch_verify")
	span.SetAttr("items", int64(len(reqs)))
	defer span.End()

	type item struct {
		idx     int
		lay     *Layout
		scratch *BuildScratch
	}
	items := make(chan item, pipelineDepth)
	// Transient scratches rotate builder → verifier → builder through free:
	// a scratch is not reused until the verifier is done with the layout
	// aliasing it, which is what makes transient mode safe here. One more
	// scratch than queue slots keeps the builder from blocking on scratch
	// return while the queue still has room.
	free := make(chan *BuildScratch, pipelineDepth+1)
	for i := 0; i < pipelineDepth+1; i++ {
		s := NewBuildScratch()
		s.s.SetTransient(true)
		free <- s
	}

	builder := func() {
		defer close(items)
		bspan := span.Child("pipeline_build")
		defer bspan.End()
		for i := range reqs {
			if err := par.Canceled(ctx); err != nil {
				res[i].Err = err
				continue
			}
			var scratch *BuildScratch
			select {
			case scratch = <-free:
			default:
				opts.Observer.Add(obs.BatchPipelineStalls, 1)
				scratch = <-free
			}
			lay, err := batchBuildOne(ctx, reqs[i], opts, scratch)
			if err != nil {
				res[i].Err = err
				free <- scratch
				continue
			}
			it := item{idx: i, lay: lay, scratch: scratch}
			select {
			case items <- it:
			default:
				opts.Observer.Add(obs.BatchPipelineStalls, 1)
				items <- it
			}
		}
	}
	verifier := func() {
		vspan := span.Child("pipeline_verify")
		defer vspan.End()
		for it := range items {
			res[it.idx].Violations, res[it.idx].Err = batchVerifyOne(ctx, it.lay, reqs[it.idx], opts)
			free <- it.scratch
		}
	}
	// The two stages run as one par shard each: Chunks(2, 2) pins each to
	// its own pool goroutine, and the pool provides the join and the panic
	// containment the raw-goroutine ban exists for. The builder's deferred
	// close keeps the verifier's range terminating even if the builder
	// panics outside its per-item recover.
	par.Chunks(2, 2, func(stage, _, _ int) {
		if stage == 0 {
			builder()
		} else {
			verifier()
		}
	})
	return res
}

// batchVerifyOne verifies one transient layout under the item's own knobs.
func batchVerifyOne(ctx context.Context, lay *Layout, req BuildRequest, opts BatchOptions) (v []Violation, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := r.(*par.Panic)
			if !ok {
				p = &par.Panic{Value: r, Stack: debug.Stack()}
			}
			v, err = nil, p
		}
	}()
	o := req.Options()
	if o.Workers == 0 {
		o.Workers = opts.Workers
	}
	o.Context = ctx
	o.Observer = opts.Observer
	return VerifyLayout(lay, o)
}
