// Custom product networks: the library's combinators are not limited to
// the named families. This example assembles a "clustered cylinder" — the
// Cartesian product of a 12-node ring with a 6-node complete graph (ring of
// fully connected clusters) — straight from collinear building blocks, lays
// it out under several layer counts, verifies it, and exports an SVG.
package main

import (
	"fmt"
	"log"
	"os"

	"mlvlsi"
)

func main() {
	// Factor layouts: the paper's building blocks. f(ring) = 2 tracks,
	// f(K6) = ⌊36/4⌋ = 9 tracks; the product combinator interleaves them.
	ring := mlvlsi.Ring(12)
	clique := mlvlsi.CompleteGraph(6)
	fmt.Printf("factors: %s (%d tracks), %s (%d tracks)\n",
		ring.Name, ring.Tracks, clique.Name, clique.Tracks)

	// One more product level entirely at the collinear stage: a 72-node
	// collinear layout of ring x clique, with the combinator's track count
	// N_H·f(G) + f(H) = 6·2 + 9 = 21.
	combined := mlvlsi.CombineFactors(ring, clique)
	fmt.Printf("combined collinear factor: %s, N=%d, tracks=%d\n\n",
		combined.Name, combined.N, combined.Tracks)

	// 2-D layouts of (ring x clique) x path(4): rows carry the 72-node
	// combined factor, columns a 4-node path — 288 nodes total.
	for _, l := range []int{2, 4, 8} {
		lay, err := mlvlsi.Product("cylinder-cluster", combined, mlvlsi.PathGraph(4),
			mlvlsi.Options{Layers: l})
		if err != nil {
			log.Fatal(err)
		}
		if v := lay.Verify(); len(v) > 0 {
			log.Fatalf("L=%d: illegal layout: %v", l, v[0])
		}
		fmt.Println(lay.Stats())
	}
	fmt.Println("(K6 clusters give every node a large pad, so this instance is node-")
	fmt.Println("dominated: area still shrinks with L, but volume grows — scale N up or")
	fmt.Println("node pads down to enter the paper's track-dominated regime.)")

	// Export the 2-layer version for visual inspection.
	lay, err := mlvlsi.Product("cylinder-cluster", combined, mlvlsi.PathGraph(4),
		mlvlsi.Options{Layers: 2})
	if err != nil {
		log.Fatal(err)
	}
	const out = "cylinder-cluster.svg"
	if err := os.WriteFile(out, []byte(mlvlsi.RenderSVG(lay, 3)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d nodes, %d wires; colors = wiring layers)\n",
		out, len(lay.Nodes), len(lay.Wires))

	// And the ASCII view of the small factors, paper-figure style.
	fmt.Println()
	fmt.Print(mlvlsi.RenderCollinear(ring, 4))
}
