// NoC design study: size the wiring stack for a 64-core on-chip torus.
//
// A chip architect laying out an 8x8 torus interconnect wants to know what
// an extra pair of metal layers buys: how much die area the network blocks
// give back, how much shorter the worst wire gets (it sets the clock), and
// what that does to traffic latency. This example runs the whole paper
// pipeline on that question: construct the layout at L = 2, 4, 8 (with the
// folded node order of §3.1 so wrap-around links stay short), verify
// legality, and simulate permutation traffic with wire-proportional delays.
package main

import (
	"fmt"
	"log"

	"mlvlsi"
)

func main() {
	const k, n = 8, 2 // 8x8 torus
	fmt.Println("wiring-stack study for an 8x8 torus NoC")
	fmt.Println()
	fmt.Printf("%3s  %8s  %8s  %8s  %12s  %12s\n",
		"L", "area", "maxwire", "pathwire", "avg-latency", "makespan")

	for _, l := range []int{2, 4, 8} {
		lay, err := mlvlsi.KAryNCube(k, n, mlvlsi.Options{Layers: l, FoldedRows: true})
		if err != nil {
			log.Fatal(err)
		}
		if v := lay.Verify(); len(v) > 0 {
			log.Fatalf("L=%d: illegal layout: %v", l, v[0])
		}
		s := lay.Stats()
		res := mlvlsi.Simulate(lay, mlvlsi.SimConfig{
			Pattern:  mlvlsi.Permutation,
			Velocity: 1, // one grid unit per cycle: wire delay dominates
			Seed:     2026,
		})
		fmt.Printf("%3d  %8d  %8d  %8d  %12.1f  %12d\n",
			l, s.Area, s.MaxWire, mlvlsi.MaxPathWire(lay, 0), res.AvgLatency, res.Makespan)
	}

	fmt.Println()
	fmt.Println("Folded node order keeps every torus link local (no die-crossing wrap wires).")
	fmt.Println("Note how the gain saturates: an 8x8 torus has only a handful of tracks per")
	fmt.Println("channel, so once each channel fits in one track per layer pair (here at L=4)")
	fmt.Println("extra layers buy nothing — the (L/2)^2 law needs track-dominated fabrics,")
	fmt.Println("which is exactly the o(1) caveat in the paper's formulas.")

	// What if the floorplan instead reused the 2-layer layout and simply
	// folded it over the new layers? The baseline shows why that wastes
	// most of the benefit.
	base, err := mlvlsi.KAryNCube(k, n, mlvlsi.Options{Layers: 2, FoldedRows: true})
	if err != nil {
		log.Fatal(err)
	}
	folded, err := mlvlsi.Fold(base, 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := mlvlsi.VerifyFolded(folded); err != nil {
		log.Fatal(err)
	}
	fs := mlvlsi.FoldStats(folded)
	bs := base.Stats()
	fmt.Println()
	fmt.Printf("baseline: folding the 2-layer layout onto 8 layers gives area %d (gain %.1fx)\n",
		fs.Area, float64(bs.Area)/float64(fs.Area))
	fmt.Printf("but max wire stays %d -> %d and volume %d -> %d — the paper's point (§2.2).\n",
		bs.MaxWire, fs.MaxWire, bs.Volume, fs.Volume)
}
