// Quickstart: build multilayer layouts of a 256-node hypercube, verify
// their legality, and watch the paper's headline effect — area shrinking by
// ≈ (L/2)² and volume / max wire length by ≈ L/2 as wiring layers are added.
package main

import (
	"fmt"
	"log"

	"mlvlsi"
)

func main() {
	const n = 8 // 2^8 = 256 nodes
	fmt.Printf("multilayer layouts of the %d-node hypercube\n\n", 1<<n)
	fmt.Printf("%3s  %10s  %10s  %8s  %12s\n", "L", "area", "volume", "maxwire", "area gain")

	var baseArea int
	for _, l := range []int{2, 4, 6, 8} {
		lay, err := mlvlsi.Hypercube(n, mlvlsi.Options{Layers: l})
		if err != nil {
			log.Fatal(err)
		}
		// Every layout is machine-checkable: wires are edge-disjoint paths
		// through the L wiring layers.
		if v := lay.Verify(); len(v) > 0 {
			log.Fatalf("illegal layout: %v", v[0])
		}
		s := lay.Stats()
		if l == 2 {
			baseArea = s.Area
		}
		fmt.Printf("%3d  %10d  %10d  %8d  %10.2fx\n",
			l, s.Area, s.Volume, s.MaxWire, float64(baseArea)/float64(s.Area))
	}

	fmt.Println("\nThe 2-layer row of this table is the classical Thompson-model layout;")
	fmt.Println("each added layer pair shrinks the area quadratically (paper §2.2, claim 1).")
}
