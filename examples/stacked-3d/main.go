// Stacked 3-D layouts: a 1024-core hypercube machine built from a stack of
// boards (the paper's multilayer 3-D grid model, §2.2) instead of one die.
//
// A system designer choosing between one big board and a stack of smaller
// ones wants the footprint / volume / wire-length trade quantified. This
// example lays out the 10-cube flat and as 2, 4, and 8 boards (moving 1-3
// cube dimensions onto inter-board via columns), verifies every layout, and
// prints the trade — footprint shrinks ~quadratically with board count,
// stack height grows linearly, worst wires get much shorter.
package main

import (
	"fmt"
	"log"

	"mlvlsi"
)

func main() {
	const n, layers = 10, 4
	fmt.Printf("%d-node hypercube, L=%d wiring layers per board\n\n", 1<<n, layers)
	fmt.Printf("%8s  %7s  %9s  %9s  %8s\n", "boards", "layers", "footprint", "volume", "maxwire")

	flat, err := mlvlsi.Hypercube(n, mlvlsi.Options{Layers: layers})
	if err != nil {
		log.Fatal(err)
	}
	if v := flat.Verify(); len(v) > 0 {
		log.Fatalf("flat layout illegal: %v", v[0])
	}
	fs := flat.Stats()
	fmt.Printf("%8d  %7d  %9d  %9d  %8d   (single board, 2-D model)\n",
		1, layers, fs.Area, fs.Volume, fs.MaxWire)

	for _, nz := range []int{1, 2, 3} {
		s, err := mlvlsi.Hypercube3D(n, nz, mlvlsi.Options{Layers: layers})
		if err != nil {
			log.Fatal(err)
		}
		if v := s.Verify(); len(v) > 0 {
			log.Fatalf("stacked layout illegal: %v", v[0])
		}
		st := s.Stats()
		fmt.Printf("%8d  %7d  %9d  %9d  %8d\n",
			st.Boards, st.TotalLayers, st.Area, st.Volume, st.MaxWire)
	}

	fmt.Println()
	fmt.Println("Moving b cube dimensions onto the stack gives 2^b boards: the per-board")
	fmt.Println("sub-network is 2^b times smaller, so the footprint falls ~quadratically")
	fmt.Println("(4x per doubling) while total volume falls ~linearly — the 3-D half of the")
	fmt.Println("paper's §2.2 accounting. Inter-board links become pure via columns with")
	fmt.Println("zero planar length, which is also why the worst wire shortens so fast.")
}
