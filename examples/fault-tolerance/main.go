// Fault-tolerance study: how gracefully does a laid-out network degrade?
//
// The layout engine realizes a topology's links as physical wires; once a
// chip is fabricated, some of those wires (or whole routers) fail. This
// example takes a 6-cube, kills an increasing number of random links and
// nodes, and measures what survives: how many messages of a full
// permutation still arrive, how much the detours stretch latency, and when
// the network starts dropping traffic outright. The same seeded fault plan
// is applied at L = 2 and L = 8 to show that the multilayer area win does
// not change the topology's fault behavior — routing sees the same graph,
// only the wire delays differ.
//
// It also demonstrates the robustness API directly: a cancellation-scoped
// build, a cell budget that rejects oversized plans, and the typed errors
// both return.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"mlvlsi"
)

func main() {
	const n = 6 // 64 nodes, 192 links

	// Robustness plumbing: give the build a deadline and a generous cell
	// budget. Both are cheap insurance in pipelines that construct many
	// layouts unattended.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	opts := func(l int) mlvlsi.Options {
		return mlvlsi.Options{Layers: l, Context: ctx, MaxCells: 1 << 28}
	}

	lay2, err := mlvlsi.Hypercube(n, opts(2))
	if err != nil {
		log.Fatal(err)
	}
	lay8, err := mlvlsi.Hypercube(n, opts(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy %d-cube:  L=2 %v\n", n, lay2.Stats())
	fmt.Printf("                 L=8 %v\n\n", lay8.Stats())

	// Degradation sweep: kill 0, 4, 8, ... random links (plus one dead
	// router at the harsher steps) and run the same permutation traffic.
	fmt.Printf("%12s %9s  %-32s %-32s\n", "dead links", "dead nodes", "L=2 (delivered/dropped/avg)", "L=8 (delivered/dropped/avg)")
	for _, step := range []struct{ links, nodes int }{
		{0, 0}, {4, 0}, {8, 0}, {16, 1}, {32, 2},
	} {
		row := fmt.Sprintf("%12d %9d", step.links, step.nodes)
		for _, lay := range []*mlvlsi.Layout{lay2, lay8} {
			res := mlvlsi.Simulate(lay, mlvlsi.SimConfig{
				Pattern: mlvlsi.Permutation,
				Seed:    42,
				Faults: &mlvlsi.SimFaultPlan{
					RandomLinks: step.links,
					RandomNodes: step.nodes,
					Seed:        7, // same fault draw for both layer counts
				},
			})
			row += fmt.Sprintf("  %5d / %3d / %6.1f cycles    ",
				res.Delivered, res.Dropped, res.AvgLatency)
		}
		fmt.Println(row)
	}

	// Typed failure modes: the same constructors reject oversized plans and
	// expired contexts with errors a pipeline can branch on.
	fmt.Println()
	if _, err := mlvlsi.Hypercube(10, mlvlsi.Options{MaxCells: 100_000}); err != nil {
		var be *mlvlsi.BudgetError
		if errors.As(err, &be) {
			fmt.Printf("budget guard: 10-cube needs %d cells, budget was %d\n", be.Cells, be.Budget)
		}
	}
	expired, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := mlvlsi.Hypercube(10, mlvlsi.Options{Context: expired}); errors.Is(err, mlvlsi.ErrCanceled) {
		fmt.Println("cancellation guard: expired context aborted the build with ErrCanceled")
	}
}
