// Topology shoot-out: which interconnection network should a 256-node
// single-chip multiprocessor use, given an 8-layer metal stack?
//
// The paper's breadth exists exactly for this question: different
// topologies trade degree, diameter, and layout cost very differently.
// This example lays out six candidate networks of (nearly) equal node
// count under the same multilayer budget, verifies every layout, and
// tabulates silicon cost (area, volume), electrical cost (max wire, max
// route wire), and simulated traffic latency.
package main

import (
	"fmt"
	"log"

	"mlvlsi"
)

func main() {
	const layers = 8
	o := mlvlsi.Options{Layers: layers}

	type candidate struct {
		name  string
		build func() (*mlvlsi.Layout, error)
	}
	candidates := []candidate{
		{"hypercube(8), N=256", func() (*mlvlsi.Layout, error) {
			return mlvlsi.Hypercube(8, o)
		}},
		{"4-ary 4-cube, N=256", func() (*mlvlsi.Layout, error) {
			return mlvlsi.KAryNCube(4, 4, mlvlsi.Options{Layers: layers, FoldedRows: true})
		}},
		{"GHC(16,16), N=256", func() (*mlvlsi.Layout, error) {
			return mlvlsi.GeneralizedHypercube([]int{16, 16}, o)
		}},
		{"CCC(6), N=384", func() (*mlvlsi.Layout, error) {
			return mlvlsi.CCC(6, o)
		}},
		{"butterfly(6), N=384", func() (*mlvlsi.Layout, error) {
			return mlvlsi.Butterfly(6, o)
		}},
		{"HSN(2,16), N=256", func() (*mlvlsi.Layout, error) {
			return mlvlsi.HSN(2, 16, o)
		}},
	}

	fmt.Printf("topology comparison under an L=%d wiring stack\n\n", layers)
	fmt.Printf("%-22s %6s %6s %10s %8s %9s %12s\n",
		"network", "N", "links", "area", "maxwire", "pathwire", "avg-latency")
	for _, c := range candidates {
		lay, err := c.build()
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		if v := lay.Verify(); len(v) > 0 {
			log.Fatalf("%s: illegal layout: %v", c.name, v[0])
		}
		s := lay.Stats()
		res := mlvlsi.Simulate(lay, mlvlsi.SimConfig{
			Pattern: mlvlsi.Permutation, Velocity: 1, Seed: 7,
		})
		fmt.Printf("%-22s %6d %6d %10d %8d %9d %12.1f\n",
			c.name, s.N, s.Links, s.Area, s.MaxWire,
			mlvlsi.MaxPathWire(lay, 16), res.AvgLatency)
	}

	fmt.Println()
	fmt.Println("Reading the table the paper's way: the GHC buys its 2-hop routes with a")
	fmt.Println("quadratically larger layout; constant-degree networks (CCC, butterfly) pack")
	fmt.Println("far more nodes per unit area at higher hop counts; the hypercube and the")
	fmt.Println("torus sit between — and every row shrank by the same (L/2)² versus Thompson.")
}
