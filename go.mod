module mlvlsi

go 1.22
