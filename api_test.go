package mlvlsi_test

import (
	"fmt"
	"strings"
	"testing"

	"mlvlsi"
)

func build(t *testing.T) func(*mlvlsi.Layout, error) *mlvlsi.Layout {
	return func(lay *mlvlsi.Layout, err error) *mlvlsi.Layout {
		t.Helper()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if v := lay.Verify(); len(v) > 0 {
			t.Fatalf("%s: illegal layout: %v", lay.Name, v[0])
		}
		return lay
	}
}

func TestPublicAPIAllFamilies(t *testing.T) {
	o := mlvlsi.Options{Layers: 4}
	families := []struct {
		name string
		lay  *mlvlsi.Layout
	}{
		{"kary", build(t)(mlvlsi.KAryNCube(4, 2, o))},
		{"hypercube", build(t)(mlvlsi.Hypercube(5, o))},
		{"ghc", build(t)(mlvlsi.GeneralizedHypercube([]int{3, 4}, o))},
		{"folded", build(t)(mlvlsi.FoldedHypercube(4, o))},
		{"enhanced", build(t)(mlvlsi.EnhancedCube(4, 7, o))},
		{"ccc", build(t)(mlvlsi.CCC(3, o))},
		{"rh", build(t)(mlvlsi.ReducedHypercube(4, o))},
		{"hsn", build(t)(mlvlsi.HSN(3, 3, o))},
		{"hhn", build(t)(mlvlsi.HHN(2, 2, o))},
		{"butterfly", build(t)(mlvlsi.Butterfly(3, o))},
		{"isn", build(t)(mlvlsi.ISN(3, o))},
		{"cluster-c", build(t)(mlvlsi.KAryClusterC(3, 2, 2, o))},
		{"star", build(t)(mlvlsi.Star(4, o))},
		{"pancake", build(t)(mlvlsi.Pancake(4, o))},
		{"bubblesort", build(t)(mlvlsi.BubbleSort(4, o))},
		{"transposition", build(t)(mlvlsi.Transposition(4, o))},
		{"scc", build(t)(mlvlsi.SCC(4, o))},
		{"mesh", build(t)(mlvlsi.Mesh([]int{4, 4}, o))},
	}
	for _, f := range families {
		s := f.lay.Stats()
		if s.Area <= 0 || s.Volume != s.Area*s.L || s.MaxWire <= 0 {
			t.Errorf("%s: inconsistent stats %+v", f.name, s)
		}
	}
}

func TestDefaultLayersIsThompson(t *testing.T) {
	lay := build(t)(mlvlsi.Hypercube(4, mlvlsi.Options{}))
	if lay.L != 2 {
		t.Errorf("default layers = %d, want 2 (Thompson model)", lay.L)
	}
}

func TestProductAndCombinators(t *testing.T) {
	g := mlvlsi.CombineFactors(mlvlsi.Ring(3), mlvlsi.CompleteGraph(3))
	if g.N != 9 {
		t.Fatalf("combined factor N = %d, want 9", g.N)
	}
	lay := build(t)(mlvlsi.Product("custom", g, mlvlsi.PathGraph(4), mlvlsi.Options{Layers: 2}))
	if len(lay.Nodes) != 36 {
		t.Errorf("product layout has %d nodes, want 36", len(lay.Nodes))
	}
}

func TestFoldBaselineRoundTrip(t *testing.T) {
	lay := build(t)(mlvlsi.Hypercube(6, mlvlsi.Options{Layers: 2}))
	folded, err := mlvlsi.Fold(lay, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := mlvlsi.VerifyFolded(folded); err != nil {
		t.Fatal(err)
	}
	fs := mlvlsi.FoldStats(folded)
	if fs.Area >= lay.Area() {
		t.Errorf("fold did not shrink area: %d -> %d", lay.Area(), fs.Area)
	}
}

func TestSimulateAndRoute(t *testing.T) {
	lay := build(t)(mlvlsi.Hypercube(5, mlvlsi.Options{Layers: 2}))
	res := mlvlsi.Simulate(lay, mlvlsi.SimConfig{Pattern: mlvlsi.Permutation, Velocity: 2, Seed: 1})
	if res.Delivered == 0 {
		t.Error("simulation delivered nothing")
	}
	if mlvlsi.MaxPathWire(lay, 4) <= 0 {
		t.Error("MaxPathWire returned nothing")
	}
	if mlvlsi.AveragePathWire(lay, 4) <= 0 {
		t.Error("AveragePathWire returned nothing")
	}
}

func TestRenderers(t *testing.T) {
	if !strings.Contains(mlvlsi.RenderCollinear(mlvlsi.HypercubeCollinear(4), 4), "tracks=10") {
		t.Error("collinear renderer broken")
	}
	lay := build(t)(mlvlsi.KAryNCube(3, 2, mlvlsi.Options{}))
	if !strings.HasPrefix(mlvlsi.RenderSVG(lay, 4), "<svg") {
		t.Error("SVG renderer broken")
	}
	if !strings.Contains(mlvlsi.RenderRecursiveGrid(2, 2), "block") {
		t.Error("schematic renderer broken")
	}
}

func ExampleHypercube() {
	lay, _ := mlvlsi.Hypercube(6, mlvlsi.Options{Layers: 4})
	fmt.Println(len(lay.Nodes), len(lay.Wires) > 0, len(lay.Verify()) == 0)
	// Output: 64 true true
}

func ExampleKAryNCube() {
	l2, _ := mlvlsi.KAryNCube(4, 3, mlvlsi.Options{Layers: 2})
	l8, _ := mlvlsi.KAryNCube(4, 3, mlvlsi.Options{Layers: 8})
	fmt.Println(l2.Area() > l8.Area())
	// Output: true
}

func TestGenericLayoutAPI(t *testing.T) {
	g := mlvlsi.NewGraph("triangle-chain", 6)
	for i := 0; i+1 < 6; i++ {
		g.AddLink(i, i+1)
	}
	g.AddLink(0, 5)
	g.AddLink(1, 4)
	lay, err := mlvlsi.GenericLayout(g, mlvlsi.Options{Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v := lay.Verify(); len(v) > 0 {
		t.Fatalf("generic layout illegal: %v", v[0])
	}
	if len(lay.Wires) != 7 {
		t.Errorf("wires = %d, want 7", len(lay.Wires))
	}
}

func TestHypercube3DAPI(t *testing.T) {
	s, err := mlvlsi.Hypercube3D(6, 2, mlvlsi.Options{Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Verify(); len(v) > 0 {
		t.Fatalf("stacked layout illegal: %v", v[0])
	}
	if s.Boards != 4 {
		t.Errorf("boards = %d, want 4", s.Boards)
	}
	k, err := mlvlsi.KAryNCube3D(3, 3, 1, mlvlsi.Options{Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := k.Verify(); len(v) > 0 {
		t.Fatalf("kary stacked layout illegal: %v", v[0])
	}
}

func ExampleGeneralizedHypercube() {
	lay, _ := mlvlsi.GeneralizedHypercube([]int{4, 4}, mlvlsi.Options{Layers: 4})
	fmt.Println(len(lay.Nodes), len(lay.Verify()) == 0)
	// Output: 16 true
}

func ExampleCCC() {
	lay, _ := mlvlsi.CCC(4, mlvlsi.Options{Layers: 2})
	// 16 cycles of 4 nodes (64 cycle links) plus 32 cube links.
	fmt.Println(len(lay.Nodes), len(lay.Wires))
	// Output: 64 96
}

func ExampleButterfly() {
	lay, _ := mlvlsi.Butterfly(4, mlvlsi.Options{Layers: 4})
	fmt.Println(len(lay.Nodes), len(lay.Verify()) == 0)
	// Output: 64 true
}

func ExampleFold() {
	base, _ := mlvlsi.Hypercube(6, mlvlsi.Options{Layers: 2})
	folded, _ := mlvlsi.Fold(base, 8)
	stats := mlvlsi.FoldStats(folded)
	fmt.Println(stats.Area < base.Area(), stats.MaxWire >= base.MaxWireLength())
	// Output: true true
}

func ExampleCombineFactors() {
	// The paper's product combinator: f(G×H) = N_H·f(G) + f(H).
	p := mlvlsi.CombineFactors(mlvlsi.Ring(5), mlvlsi.CompleteGraph(4))
	fmt.Println(p.N, p.Tracks)
	// Output: 20 12
}

func ExampleSimulate() {
	lay, _ := mlvlsi.Hypercube(5, mlvlsi.Options{Layers: 4})
	res := mlvlsi.Simulate(lay, mlvlsi.SimConfig{
		Pattern: mlvlsi.BitComplement, Velocity: 1, Seed: 1,
	})
	fmt.Println(res.Delivered)
	// Output: 32
}

func ExampleGenericLayout() {
	g := mlvlsi.NewGraph("ring5", 5)
	for i := 0; i < 5; i++ {
		g.AddLink(i, (i+1)%5)
	}
	lay, _ := mlvlsi.GenericLayout(g, mlvlsi.Options{Layers: 2})
	fmt.Println(len(lay.Wires), len(lay.Verify()) == 0)
	// Output: 5 true
}

func ExampleHypercube3D() {
	s, _ := mlvlsi.Hypercube3D(6, 2, mlvlsi.Options{Layers: 2})
	fmt.Println(s.Boards, len(s.Nodes), len(s.Verify()) == 0)
	// Output: 4 64 true
}

func ExampleStar() {
	lay, _ := mlvlsi.Star(4, mlvlsi.Options{Layers: 2})
	fmt.Println(len(lay.Nodes), len(lay.Wires))
	// Output: 24 36
}

func ExampleMesh() {
	lay, _ := mlvlsi.Mesh([]int{4, 6}, mlvlsi.Options{Layers: 2})
	fmt.Println(len(lay.Nodes), len(lay.Verify()) == 0)
	// Output: 24 true
}

func ExampleMaxPathWire() {
	l2, _ := mlvlsi.Hypercube(6, mlvlsi.Options{Layers: 2})
	l8, _ := mlvlsi.Hypercube(6, mlvlsi.Options{Layers: 8})
	fmt.Println(mlvlsi.MaxPathWire(l8, 0) < mlvlsi.MaxPathWire(l2, 0))
	// Output: true
}
