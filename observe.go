package mlvlsi

import (
	"io"

	"mlvlsi/internal/obs"
)

// Observability. The build and verify engines report hierarchical spans
// (build → placement/routing/realization; verify → measure/walk/merge/
// resolve) and typed counters to an Observer set on Options.Observer. A nil
// observer — the default — disables observation at zero cost: the engines
// branch on nil and their hot paths stay allocation-free (the contract
// DESIGN.md pins and BenchmarkCheck enforces).

// Observer collects spans and counters and fans them out to sinks. Create
// one with NewObserver; set it on Options.Observer; call Flush once after
// the observed work to deliver the counter snapshot (and, for trace sinks,
// the file terminator).
type Observer = obs.Observer

// ObserverSink receives completed spans and, at flush time, the counter
// snapshot. TraceSink and MetricsSink are the two provided implementations;
// custom sinks only need these two methods.
type ObserverSink = obs.Sink

// SpanRecord is the immutable form of a completed span delivered to sinks.
type SpanRecord = obs.SpanRecord

// ObsMetrics is a point-in-time snapshot of every counter, indexed by the
// Counter* constants.
type ObsMetrics = obs.Metrics

// Counter names one typed observability counter.
type Counter = obs.Counter

// The typed counters the engines maintain. Counters whose value derives
// only from the work done (wires, unit edges, path choices, cells) are
// deterministic across worker counts; worker_count and budget_headroom are
// configuration gauges and merge_ns is wall-clock time.
const (
	CounterWiresRealized    = obs.WiresRealized
	CounterUnitEdgesChecked = obs.UnitEdgesChecked
	CounterDenseChecks      = obs.DenseChecks
	CounterSparseChecks     = obs.SparseChecks
	CounterCellsPlanned     = obs.CellsPlanned
	CounterCellsAllocated   = obs.CellsAllocated
	CounterBudgetHeadroom   = obs.BudgetHeadroom
	CounterWorkerCount      = obs.WorkerCount
	CounterMergeNanos       = obs.MergeNanos

	// Serving-cache counters, maintained by the layoutd daemon's
	// content-addressed build cache (internal/serve): lookups answered from
	// memory, lookups that built, entries evicted under the byte budget,
	// lookups that waited on an identical in-flight build, and the retained
	// byte gauge. Their totals depend on request arrival order, so they
	// reproduce only for serial request streams.
	CounterCacheHits          = obs.CacheHits
	CounterCacheMisses        = obs.CacheMisses
	CounterCacheEvictions     = obs.CacheEvictions
	CounterCacheInflightWaits = obs.CacheInflightWaits
	CounterCacheBytes         = obs.CacheBytes

	// Resilience counters, maintained by the serving layer's overload
	// protection and by resilience.Client (internal/resilience): admission
	// queue depth gauges, shed rejections by reason, degraded responses,
	// recovered handler panics, client retries, breaker opens, and injected
	// chaos faults. Like the cache counters they depend on request timing.
	CounterQueueDepth      = obs.QueueDepth
	CounterQueueMaxDepth   = obs.QueueMaxDepth
	CounterShedQueueFull   = obs.ShedQueueFull
	CounterShedDeadline    = obs.ShedDeadline
	CounterShedDraining    = obs.ShedDraining
	CounterDegradedServed  = obs.DegradedServed
	CounterPanicsRecovered = obs.PanicsRecovered
	CounterClientRetries   = obs.ClientRetries
	CounterBreakerOpens    = obs.BreakerOpens
	CounterChaosInjected   = obs.ChaosInjected

	// Tiled-verifier counters, maintained by the dense→tiled→map ladder
	// behind Options.VerifyMemBytes: runs that engaged the tiled rung, tiles
	// walked (all of them on a full check, only the dirty ones on an
	// incremental re-check), border unit-edge claims reconciled across tile
	// seams, and the peak tile-bitset working set gauge.
	CounterTiledChecks           = obs.TiledChecks
	CounterTilesChecked          = obs.TilesChecked
	CounterBorderEdgesReconciled = obs.BorderEdgesReconciled
	CounterTileBytesPeak         = obs.TileBytesPeak
)

// NumCounters is the number of defined counters; every Counter* constant is
// a valid ObsMetrics index below it.
const NumCounters = obs.NumCounters

// TraceSink streams spans to w in the Chrome trace event format, loadable
// in chrome://tracing or Perfetto (see README "Observability"). The cmd
// tools' -trace flags are built on it.
type TraceSink = obs.TraceSink

// MetricsSink retains spans and the counter snapshot in memory, for
// programmatic inspection after a run.
type MetricsSink = obs.MetricsSink

// NewObserver creates an observer fanning out to the given sinks. An
// observer with no sinks still aggregates counters (read them with
// Observer.Snapshot or Flush).
func NewObserver(sinks ...ObserverSink) *Observer { return obs.New(sinks...) }

// NewTraceSink wraps a writer with a Chrome-trace span sink. Call
// Observer.Flush before closing the writer, then TraceSink.Err.
func NewTraceSink(w io.Writer) *TraceSink { return obs.NewTraceSink(w) }

// NewMetricsSink returns an empty in-memory sink.
func NewMetricsSink() *MetricsSink { return obs.NewMetricsSink() }

// ValidateTrace checks that data is a well-formed trace file as TraceSink
// writes it; cmd/tracelint and `make trace-smoke` gate on it.
func ValidateTrace(data []byte) error { return obs.ValidateTrace(data) }
