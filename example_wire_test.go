package mlvlsi_test

import (
	"encoding/json"
	"fmt"

	"mlvlsi"
)

// ExampleBuildRequest builds a layout from the canonical wire form — the
// request shape cmd/layoutd serves and cmd/layoutgen constructs. The
// content key is a hash of the resolved request (defaults applied, params
// sorted), so every spelling of the same geometry shares one key: it is
// the layoutd cache key, and execution knobs like Workers or MaxCells
// never change it.
func ExampleBuildRequest() {
	var req mlvlsi.BuildRequest
	wire := `{"family":{"name":"kary","params":{"n":2,"k":4}},"layers":4,"workers":2}`
	if err := json.Unmarshal([]byte(wire), &req); err != nil {
		fmt.Println(err)
		return
	}

	lay, err := mlvlsi.BuildSpec(nil, req)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("nodes:", len(lay.Nodes))

	// A different spelling of the same geometry: params reordered, defaults
	// written out, execution knobs dropped.
	respelled := mlvlsi.BuildRequest{
		Family: mlvlsi.FamilySpec{Name: "kary", Params: map[string]int{"k": 4, "n": 2}},
		Layers: 4,
	}
	fmt.Println("same key:", req.Key() == respelled.Key())

	canon, err := req.Canonical()
	if err != nil {
		fmt.Println(err)
		return
	}
	out, _ := json.Marshal(canon.Family)
	fmt.Println("canonical family:", string(out))
	// Output:
	// nodes: 16
	// same key: true
	// canonical family: {"name":"kary","params":{"k":4,"n":2}}
}
