// Command layoutd serves the mlvlsi registry engines over HTTP: POST a
// canonical BuildRequest to /v1/build, /v1/verify, or /v1/svg and the daemon
// builds the layout — or returns it from a content-addressed cache when the
// same geometry was already built, however the request spelled it. Errors
// leave as one JSON envelope with a stable kind (param/budget/canceled/
// request/internal) and the typed error's fields.
//
// Endpoints:
//
//	POST /v1/build     build (or fetch) a layout, return key + stats
//	POST /v1/verify    build through the same cache, run the verifier
//	POST /v1/svg       build and render (?scale=1..64, default 4)
//	GET  /v1/families  the family registry with parameter ranges
//	GET  /healthz      liveness
//	GET  /metricsz     the full observability counter snapshot
//
// Example:
//
//	layoutd -addr :8080 -cache-mb 256 -max-cells 200000000 &
//	curl -s localhost:8080/v1/build -d '{"family":{"name":"hypercube","params":{"n":8}},"layers":4}'
//
// The cache is keyed on the canonicalized request (defaults resolved, params
// sorted), so execution knobs — workers, max_cells, deadlines — never split
// the cache. -timeout bounds every request server-side on top of the
// client's own disconnect cancellation; SIGINT/SIGTERM drain in-flight
// requests before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlvlsi/internal/cli"
	"mlvlsi/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (:0 picks an ephemeral port)")
	cacheMB := flag.Int("cache-mb", 256, "build cache byte budget in MiB (0 = unlimited retention)")
	maxCells := flag.Int("max-cells", 0, "admission ceiling on planned grid cells per request (0 = admit everything)")
	workers := flag.Int("workers", 0, "clamp per-request build/verify workers (0 = requests choose, up to GOMAXPROCS)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request deadline (0 = none)")
	tracePath := flag.String("trace", "", "write a Chrome-trace span file on shutdown (spans + counter snapshot)")
	flag.Parse()
	if flag.NArg() > 0 {
		cli.Usagef("layoutd takes no positional arguments (got %q)", flag.Args())
	}

	obsv, traceDone, err := cli.Trace(*tracePath)
	if err != nil {
		cli.Usagef("%v", err)
	}
	s := serve.New(serve.Config{
		CacheBytes: int64(*cacheMB) << 20,
		MaxCells:   *maxCells,
		Workers:    *workers,
		Timeout:    *timeout,
		Obs:        obsv,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = s.ListenAndServe(ctx, *addr, func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "layoutd listening on %s\n", a)
	})
	if err != nil {
		cli.Failf("layoutd: %v", err)
	}
	if err := traceDone(); err != nil {
		cli.Failf("%v", err)
	}
}
