// Command layoutd serves the mlvlsi registry engines over HTTP: POST a
// canonical BuildRequest to /v1/build, /v1/verify, or /v1/svg and the daemon
// builds the layout — or returns it from a content-addressed cache when the
// same geometry was already built, however the request spelled it. Errors
// leave as one JSON envelope with a stable kind (param/budget/overload/
// canceled/request/internal) and the typed error's fields.
//
// Endpoints:
//
//	POST /v1/build     build (or fetch) a layout, return key + stats
//	POST /v1/verify    build through the same cache, run the verifier
//	POST /v1/svg       build and render (?scale=1..64, default 4)
//	GET  /v1/families  the family registry with parameter ranges
//	GET  /healthz      liveness (alias /livez)
//	GET  /readyz       readiness: 503 while draining or the queue is full
//	GET  /metricsz     the full observability counter snapshot
//
// Example:
//
//	layoutd -addr :8080 -cache-mb 256 -max-cells 200000000 &
//	curl -s localhost:8080/v1/build -d '{"family":{"name":"hypercube","params":{"n":8}},"layers":4}'
//
// The cache is keyed on the canonicalized request (defaults resolved, params
// sorted), so execution knobs — workers, max_cells, deadlines — never split
// the cache. -timeout bounds every request server-side on top of the
// client's own disconnect cancellation.
//
// Overload protection: at most -max-concurrent builds run at once (-family-
// limits caps individual families), at most -max-queue more wait, and
// everything beyond that — or whose deadline cannot cover the predicted
// wait — is shed with a 429/503 "overload" envelope carrying a Retry-After
// hint. With -degrade, a shed build is answered from a retained coarser
// layout of the same network when one exists, marked degraded.
//
// Shutdown is two-phase: SIGINT/SIGTERM first flips /readyz to 503 and sheds
// new builds (ReasonDraining) so a fronting balancer routes away, then after
// -drain-grace the listener closes and in-flight requests drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mlvlsi/internal/cli"
	"mlvlsi/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (:0 picks an ephemeral port)")
	cacheMB := flag.Int("cache-mb", 256, "build cache byte budget in MiB (0 = unlimited retention)")
	maxCells := flag.Int("max-cells", 0, "admission ceiling on planned grid cells per request (0 = admit everything)")
	workers := flag.Int("workers", 0, "clamp per-request build/verify workers (0 = requests choose, up to GOMAXPROCS)")
	verifyMem := flag.String("verify-mem", "", "clamp per-request verifier working set (bytes, k/m/g suffixes; empty = requests choose)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request deadline (0 = none)")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent build/verify slots (0 = available parallelism)")
	maxQueue := flag.Int("max-queue", 0, "admission waiters beyond the slots (0 = 4x slots, negative = no waiting)")
	familyLimits := flag.String("family-limits", "", "per-family concurrency caps, e.g. hypercube=2,kary=1")
	degrade := flag.Bool("degrade", false, "answer shed builds from a retained coarser layout when one exists")
	drainGrace := flag.Duration("drain-grace", time.Second, "time between flipping readiness off and closing the listener on SIGTERM")
	tracePath := flag.String("trace", "", "write a Chrome-trace span file on shutdown (spans + counter snapshot)")
	flag.Parse()
	if flag.NArg() > 0 {
		cli.Usagef("layoutd takes no positional arguments (got %q)", flag.Args())
	}
	limits, err := parseFamilyLimits(*familyLimits)
	if err != nil {
		cli.Usagef("%v", err)
	}
	memBytes := 0
	if *verifyMem != "" {
		memBytes, err = cli.ParseBytes("-verify-mem", *verifyMem)
		if err != nil {
			cli.Usagef("%v", err)
		}
		if memBytes < 0 {
			cli.Usagef("-verify-mem: the admission clamp must be positive (per-request negatives select the tiled default)")
		}
	}

	obsv, traceDone, err := cli.Trace(*tracePath)
	if err != nil {
		cli.Usagef("%v", err)
	}
	s := serve.New(serve.Config{
		CacheBytes:     int64(*cacheMB) << 20,
		MaxCells:       *maxCells,
		Workers:        *workers,
		VerifyMemBytes: memBytes,
		Timeout:        *timeout,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		FamilyLimits:   limits,
		Degrade:        *degrade,
		Obs:            obsv,
	})

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Two-phase drain: the signal flips readiness off immediately; the
	// listener only closes after the grace period, giving a fronting balancer
	// time to observe /readyz and route away. context.AfterFunc owns the
	// goroutine, so no raw go statement leaves this package.
	serveCtx, cancelServe := context.WithCancel(context.Background())
	defer cancelServe()
	grace := *drainGrace
	stopAfter := context.AfterFunc(sigCtx, func() {
		s.BeginDrain()
		fmt.Fprintf(os.Stderr, "layoutd: draining (readiness off), closing listener in %v\n", grace)
		time.Sleep(grace)
		cancelServe()
	})
	defer stopAfter()

	err = s.ListenAndServe(serveCtx, *addr, func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "layoutd listening on %s\n", a)
	})
	if err != nil {
		cli.Failf("layoutd: %v", err)
	}
	if err := traceDone(); err != nil {
		cli.Failf("%v", err)
	}
}

// parseFamilyLimits parses "name=cap,name=cap" into the serve config map;
// "" means no caps.
func parseFamilyLimits(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	limits := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-family-limits entry %q is not name=cap", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-family-limits cap %q for %s is not a positive integer", val, name)
		}
		limits[name] = n
	}
	return limits, nil
}
