package main

import (
	"reflect"
	"testing"
)

func TestParseFamilyLimits(t *testing.T) {
	got, err := parseFamilyLimits("hypercube=2, kary=1")
	if err != nil || !reflect.DeepEqual(got, map[string]int{"hypercube": 2, "kary": 1}) {
		t.Fatalf("parseFamilyLimits = %v, %v", got, err)
	}
	if got, err := parseFamilyLimits(""); err != nil || got != nil {
		t.Fatalf("empty limits = %v, %v, want nil", got, err)
	}
	for _, bad := range []string{"hypercube", "hypercube=0", "hypercube=x", "=3"} {
		if _, err := parseFamilyLimits(bad); err == nil {
			t.Errorf("parseFamilyLimits(%q) accepted", bad)
		}
	}
}
