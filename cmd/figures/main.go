// Command figures renders the paper's four construction figures as ASCII
// art (Figures 1-4) and, with -svg DIR, SVG renderings of small 2-D
// multilayer layouts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mlvlsi"
	"mlvlsi/internal/cli"
)

func main() {
	svgDir := flag.String("svg", "", "also write SVG layout renderings into this directory")
	workers := flag.Int("workers", 0, "parallel build workers for the SVG layouts (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the SVG layout builds after this long (0 = no deadline)")
	flag.Parse()

	fmt.Println("=== Figure 1: recursive grid layout scheme (top view) ===")
	fmt.Println(mlvlsi.RenderRecursiveGrid(3, 4))

	fmt.Println("=== Figure 2: collinear layout of the 3-ary 2-cube ===")
	fmt.Println(mlvlsi.RenderCollinear(mlvlsi.KAryCollinear(3, 2, false), 6))

	fmt.Println("=== Figure 3: collinear layout of the 9-node complete graph ===")
	fmt.Println(mlvlsi.RenderCollinear(mlvlsi.CompleteGraph(9), 6))

	fmt.Println("=== Figure 4: collinear layout of the 4-cube (Gray-coded order) ===")
	fmt.Println(mlvlsi.RenderCollinear(mlvlsi.HypercubeCollinear(4), 6))

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			cli.Failf("%v", err)
		}
		ctx, cancel := cli.Timeout(*timeout)
		defer cancel()
		write := func(name string, lay *mlvlsi.Layout, err error) {
			if err != nil {
				fmt.Fprintln(os.Stderr, name, err)
				return
			}
			path := filepath.Join(*svgDir, name+".svg")
			if err := os.WriteFile(path, []byte(mlvlsi.RenderSVG(lay, 4)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Println("wrote", path)
		}
		o2 := mlvlsi.Options{Layers: 2, Workers: *workers, Context: ctx}
		o4 := mlvlsi.Options{Layers: 4, Workers: *workers, Context: ctx}
		lay, err := mlvlsi.Hypercube(5, o2)
		write("hypercube5-L2", lay, err)
		lay, err = mlvlsi.Hypercube(5, o4)
		write("hypercube5-L4", lay, err)
		lay, err = mlvlsi.KAryNCube(4, 2, o2)
		write("torus4x4-L2", lay, err)
		lay, err = mlvlsi.CCC(3, o2)
		write("ccc3-L2", lay, err)
	}
}
