// Command tracelint validates Chrome-trace files written by the -trace
// flags of the mlvlsi tools: a JSON event array whose span events carry ids
// with resolvable parent links and whose counter snapshot names every
// defined counter. It is the schema gate behind `make trace-smoke`; exit
// code 1 means at least one file failed validation.
//
//	tracelint build.trace verify.trace
package main

import (
	"fmt"
	"os"

	"mlvlsi"
	"mlvlsi/internal/cli"
)

func main() {
	if len(os.Args) < 2 {
		cli.Usagef("usage: tracelint FILE...")
	}
	failed := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracelint: %v\n", err)
			failed = true
			continue
		}
		if err := mlvlsi.ValidateTrace(data); err != nil {
			fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if failed {
		os.Exit(1)
	}
}
