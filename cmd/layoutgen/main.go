// Command layoutgen builds a multilayer layout of a named network, verifies
// it, and prints its cost statistics; -svg writes an SVG rendering.
//
// Examples:
//
//	layoutgen -network hypercube -n 8 -L 8
//	layoutgen -network kary -k 4 -n 3 -L 4 -folded
//	layoutgen -network butterfly -n 5 -L 4 -svg butterfly.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"mlvlsi"
)

func main() {
	network := flag.String("network", "hypercube", "hypercube | kary | ghc | folded | enhanced | ccc | rh | hsn | hhn | butterfly | isn | clusterc | star | pancake | bubblesort | transposition | scc")
	n := flag.Int("n", 6, "primary size parameter (dimension / m)")
	k := flag.Int("k", 4, "radix for kary/ghc/clusterc, levels for hsn/hhn")
	c := flag.Int("c", 4, "cluster size for clusterc")
	layers := flag.Int("L", 2, "wiring layers")
	nodeSide := flag.Int("side", 0, "node square side (0 = minimal)")
	folded := flag.Bool("folded", false, "folded row/column order (kary)")
	seed := flag.Uint64("seed", 1, "seed for enhanced-cube extra links")
	svgPath := flag.String("svg", "", "write an SVG rendering to this file")
	skipVerify := flag.Bool("skip-verify", false, "skip the legality verifier (big instances)")
	strict := flag.Bool("strict", false, "also check Thompson-strict node clearance")
	simulate := flag.Bool("sim", false, "run a wire-delay permutation simulation")
	flag.Parse()

	o := mlvlsi.Options{Layers: *layers, NodeSide: *nodeSide, FoldedRows: *folded}
	var (
		lay *mlvlsi.Layout
		err error
	)
	switch *network {
	case "hypercube":
		lay, err = mlvlsi.Hypercube(*n, o)
	case "kary":
		lay, err = mlvlsi.KAryNCube(*k, *n, o)
	case "ghc":
		radices := make([]int, *n)
		for i := range radices {
			radices[i] = *k
		}
		lay, err = mlvlsi.GeneralizedHypercube(radices, o)
	case "folded":
		lay, err = mlvlsi.FoldedHypercube(*n, o)
	case "enhanced":
		lay, err = mlvlsi.EnhancedCube(*n, *seed, o)
	case "ccc":
		lay, err = mlvlsi.CCC(*n, o)
	case "rh":
		lay, err = mlvlsi.ReducedHypercube(*n, o)
	case "hsn":
		lay, err = mlvlsi.HSN(*k, *n, o)
	case "hhn":
		lay, err = mlvlsi.HHN(*k, *n, o)
	case "butterfly":
		lay, err = mlvlsi.Butterfly(*n, o)
	case "isn":
		lay, err = mlvlsi.ISN(*n, o)
	case "clusterc":
		lay, err = mlvlsi.KAryClusterC(*k, *n, *c, o)
	case "star":
		lay, err = mlvlsi.Star(*n, o)
	case "pancake":
		lay, err = mlvlsi.Pancake(*n, o)
	case "bubblesort":
		lay, err = mlvlsi.BubbleSort(*n, o)
	case "transposition":
		lay, err = mlvlsi.Transposition(*n, o)
	case "scc":
		lay, err = mlvlsi.SCC(*n, o)
	default:
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *network)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "build:", err)
		os.Exit(1)
	}

	if !*skipVerify {
		v := lay.Verify()
		if len(v) == 0 && *strict {
			v = lay.VerifyStrict()
		}
		if len(v) > 0 {
			fmt.Fprintf(os.Stderr, "ILLEGAL LAYOUT: %d violations, first: %v\n", len(v), v[0])
			os.Exit(1)
		}
		if *strict {
			fmt.Println("verified: legal and Thompson-strict under the multilayer grid model")
		} else {
			fmt.Println("verified: layout is legal under the multilayer grid model")
		}
	}
	fmt.Println(lay.Stats())
	fmt.Println(lay.WireDistribution())
	fmt.Printf("max path wire (sampled): %d\n", mlvlsi.MaxPathWire(lay, 16))

	if *simulate {
		res := mlvlsi.Simulate(lay, mlvlsi.SimConfig{
			Pattern: mlvlsi.Permutation, Velocity: 1, Seed: 42,
		})
		fmt.Println("simulation:", res)
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(mlvlsi.RenderSVG(lay, 4)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "svg:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *svgPath)
	}
}
