// Command layoutgen builds a multilayer layout of a named network family,
// verifies it, and prints its cost statistics; -svg writes an SVG rendering.
// Families come from the mlvlsi registry (-list enumerates them with their
// parameters); -params sets family parameters directly, while the legacy
// -n/-k/-c/-seed flags keep their historical meanings per family.
//
// Examples:
//
//	layoutgen -network hypercube -n 8 -L 8
//	layoutgen -network kary -k 4 -n 3 -L 4 -folded
//	layoutgen -network butterfly -params m=5 -L 4 -svg butterfly.svg
//	layoutgen -network hsn -params levels=3,r=4 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mlvlsi"
	"mlvlsi/internal/cli"
)

// legacyAliases maps each family's registry parameters to the historical
// flag names, so pre-registry invocations keep working: the primary size
// flag -n and the secondary -k fed different parameters per family.
var legacyAliases = map[string]map[string]string{
	"hypercube":     {"n": "n"},
	"kary":          {"k": "k", "n": "n"},
	"ghc":           {"r": "k", "n": "n"},
	"mesh":          {"n": "n", "d": "k"},
	"folded":        {"n": "n"},
	"enhanced":      {"n": "n", "seed": "seed"},
	"ccc":           {"n": "n"},
	"rh":            {"n": "n"},
	"hsn":           {"levels": "k", "r": "n"},
	"hhn":           {"levels": "k", "m": "n"},
	"butterfly":     {"m": "n"},
	"isn":           {"m": "n"},
	"clusterc":      {"k": "k", "n": "n", "c": "c"},
	"star":          {"n": "n"},
	"pancake":       {"n": "n"},
	"bubblesort":    {"n": "n"},
	"transposition": {"n": "n"},
	"scc":           {"n": "n"},
}

func main() {
	network := flag.String("network", "hypercube", strings.Join(cli.FamilyNames(), " | "))
	n := flag.Int("n", 6, "primary size parameter (dimension / m / r)")
	k := flag.Int("k", 4, "radix for kary/ghc/clusterc, levels for hsn/hhn")
	c := flag.Int("c", 4, "cluster size for clusterc")
	params := flag.String("params", "", "comma-separated name=value family parameters (override legacy flags)")
	layers := flag.Int("L", 2, "wiring layers")
	nodeSide := flag.Int("side", 0, "node square side (0 = minimal)")
	folded := flag.Bool("folded", false, "folded row/column order (kary)")
	seed := flag.Int("seed", 1, "seed for enhanced-cube extra links")
	workers := flag.Int("workers", 0, "parallel build/verify workers (0 = GOMAXPROCS, 1 = serial)")
	svgPath := flag.String("svg", "", "write an SVG rendering to this file")
	skipVerify := flag.Bool("skip-verify", false, "skip the legality verifier (big instances)")
	strict := flag.Bool("strict", false, "also check Thompson-strict node clearance")
	simulate := flag.Bool("sim", false, "run a wire-delay permutation simulation")
	list := flag.Bool("list", false, "list the registered families and their parameters")
	timeout := flag.Duration("timeout", 0, "abort build and verify after this long (0 = no deadline)")
	maxCells := flag.Int("max-cells", 0, "fail fast if the planned grid exceeds this many cells (0 = unlimited)")
	verifyMem := flag.String("verify-mem", "", "cap the verifier's occupancy working set (bytes, k/m/g suffixes; negative forces the tiled rung; empty = no cap)")
	counters := flag.Bool("counters", false, "print the observer counter totals after the run, one 'name value' line per counter")
	tracePath := flag.String("trace", "", "write a Chrome-trace (chrome://tracing) span file of the build and verify phases")
	flag.Parse()

	if *list {
		for _, f := range mlvlsi.Families() {
			fmt.Printf("%-14s %s\n", f.Name, f.Doc)
			for _, p := range f.Params {
				fmt.Printf("    %-8s [%d..%d] default %-4d %s\n", p.Name, p.Min, p.Max, p.Default, p.Doc)
			}
		}
		return
	}

	if err := cli.CheckFamily(*network); err != nil {
		cli.Usagef("-network: %v", err)
	}
	legacy := map[string]int{"n": *n, "k": *k, "c": *c, "seed": *seed}
	p := map[string]int{}
	for param, flagName := range legacyAliases[*network] {
		p[param] = legacy[flagName]
	}
	override, err := cli.ParseParams("-params", *params)
	if err != nil {
		cli.Usagef("%v", err)
	}
	for name, v := range override {
		p[name] = v
	}

	memBytes := 0
	if *verifyMem != "" {
		memBytes, err = cli.ParseBytes("-verify-mem", *verifyMem)
		if err != nil {
			cli.Usagef("%v", err)
		}
	}

	ctx, cancel := cli.Timeout(*timeout)
	defer cancel()
	obsv, traceDone, err := cli.Trace(*tracePath)
	if err != nil {
		cli.Usagef("%v", err)
	}
	if *counters && obsv == nil {
		// Counters need an observer even when no trace file is requested; a
		// sink-less one records totals and writes nothing.
		obsv = mlvlsi.NewObserver()
	}
	// The same request shape layoutd serves: the content key printed below
	// is the layoutd cache key for this exact geometry.
	req := mlvlsi.BuildRequest{
		Family:   mlvlsi.FamilySpec{Name: *network, Params: p},
		Layers:   *layers,
		NodeSide: *nodeSide, FoldedRows: *folded,
		Workers: *workers, MaxCells: *maxCells,
		VerifyMemBytes: memBytes,
	}
	o := req.Options()
	o.Context = ctx
	o.Observer = obsv
	start := time.Now()
	lay, err := mlvlsi.BuildSpecObserved(ctx, req, obsv)
	if err != nil {
		cli.Failf("build: %v", err)
	}

	if !*skipVerify {
		v, err := mlvlsi.VerifyLayout(lay, o)
		if err != nil {
			cli.Failf("verify: %v (after %v)", err, time.Since(start).Round(time.Millisecond))
		}
		if len(v) == 0 && *strict {
			v = lay.VerifyStrict()
		}
		if len(v) > 0 {
			cli.Failf("ILLEGAL LAYOUT: %d violations, first: %v", len(v), v[0])
		}
		if *strict {
			fmt.Println("verified: legal and Thompson-strict under the multilayer grid model")
		} else {
			fmt.Println("verified: layout is legal under the multilayer grid model")
		}
	}
	fmt.Println(lay.Stats())
	fmt.Printf("key: %s\n", req.Key())
	fmt.Println(lay.WireDistribution())
	fmt.Printf("max path wire (sampled): %d\n", mlvlsi.MaxPathWire(lay, 16))

	if *simulate {
		res := mlvlsi.Simulate(lay, mlvlsi.SimConfig{
			Pattern: mlvlsi.Permutation, Velocity: 1, Seed: 42,
		})
		fmt.Println("simulation:", res)
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(mlvlsi.RenderSVG(lay, 4)), 0o644); err != nil {
			cli.Failf("svg: %v", err)
		}
		fmt.Println("wrote", *svgPath)
	}
	if *counters {
		m := obsv.Snapshot()
		for i := 0; i < mlvlsi.NumCounters; i++ {
			c := mlvlsi.Counter(i)
			fmt.Printf("%s %d\n", c, m.Get(c))
		}
	}
	if err := traceDone(); err != nil {
		cli.Failf("%v", err)
	}
	if *tracePath != "" {
		fmt.Println("wrote", *tracePath)
	}
}
