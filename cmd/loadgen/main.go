// Command loadgen replays a mixed-family request stream against a layoutd
// server and reports the latency, throughput, and cache-hit trajectory. It
// is the measurement half of the serving layer: the committed BENCH_6.json
// snapshot is its -out file, and `loadgen -smoke` is the serve smoke test
// `make serve-smoke` and CI run.
//
// With -addr it targets a running daemon; without, it starts an in-process
// server on an ephemeral port and drives that over real HTTP, so the
// numbers include the wire. Requests fire at the scheduled rate across
// -conns workers (global open-loop pacing: request i is due at its
// schedule offset regardless of which worker fires it), cycling through a
// fixed family mix anchored on Hypercube(10)/L=4 — the class the cache-hit
// acceptance ratio is measured on. -rates sweeps several rates in one run
// against one warming cache, which is the committed trajectory: hit rate
// climbs as the mix is absorbed, and hit latency approaches the HTTP floor
// once the rate keeps the connections hot. Every worker, including the
// in-process server's accept loop, runs on the par pool; there are no raw
// goroutines.
//
// Examples:
//
//	loadgen -rates 100,300,1000,3000 -duration 3s -out BENCH_6.json
//	loadgen -addr localhost:8080 -rps 500 -duration 10s
//	loadgen -smoke
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"mlvlsi"
	"mlvlsi/internal/cli"
	"mlvlsi/internal/par"
	"mlvlsi/internal/serve"
)

// mix is the replayed request stream, cycled by request index. The
// Hypercube(10) entry leads so its cold build is the first request and
// every later occurrence is a cache hit; the rest spread load across
// families and sizes. All spellings are canonical-equivalent to what
// layoutd hashes, so repeats hit regardless of how a client phrases them.
var mix = []mlvlsi.BuildRequest{
	{Family: mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": 10}}, Layers: 4},
	{Family: mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": 8}}, Layers: 4},
	{Family: mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": 6}}, Layers: 2},
	{Family: mlvlsi.FamilySpec{Name: "kary", Params: map[string]int{"k": 4, "n": 3}}, Layers: 4},
	{Family: mlvlsi.FamilySpec{Name: "butterfly", Params: map[string]int{"m": 5}}, Layers: 4},
	{Family: mlvlsi.FamilySpec{Name: "ccc", Params: map[string]int{"n": 5}}, Layers: 2},
	{Family: mlvlsi.FamilySpec{Name: "mesh", Params: map[string]int{"n": 16, "d": 2}}, Layers: 2},
	{Family: mlvlsi.FamilySpec{Name: "star", Params: map[string]int{"n": 5}}, Layers: 2},
}

// sample is one completed request.
type sample struct {
	ns      int64
	outcome string // "HIT", "MISS", "INFLIGHT", or "ERR:<status>"
	key     string
	window  int // index into the rate schedule
}

// window is one constant-rate segment of the replay schedule.
type window struct {
	rps      float64
	duration time.Duration
	lo, hi   int // sample index range [lo, hi)
}

// record matches cmd/benchjson's trajectory schema so BENCH_6.json reads
// like every earlier BENCH_<n>.json: one JSON object per measurement.
type record struct {
	Bench    string           `json:"bench"`
	NsOp     float64          `json:"ns_op"`
	AllocsOp int64            `json:"allocs_op"`
	BytesOp  int64            `json:"bytes_op"`
	Workers  int              `json:"workers"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

func main() {
	addr := flag.String("addr", "", "target server host:port (empty = start an in-process server)")
	rps := flag.Float64("rps", 100, "request rate when -rates is not given")
	rates := flag.String("rates", "", "comma-separated rate sweep (e.g. 100,300,1000); each rate runs for -duration")
	duration := flag.Duration("duration", 5*time.Second, "length of each constant-rate window")
	conns := flag.Int("conns", 4, "concurrent client workers")
	cacheMB := flag.Int("cache-mb", 256, "in-process server cache budget in MiB")
	out := flag.String("out", "", "write benchjson-style records to this file ('-' for stdout)")
	smoke := flag.Bool("smoke", false, "run the serve smoke test (in-process, sub-second) and exit")
	flag.Parse()

	if *smoke {
		runSmoke()
		return
	}
	if *duration <= 0 || *conns < 1 {
		cli.Usagef("-duration and -conns must be positive")
	}
	sweep := []float64{*rps}
	if *rates != "" {
		ints, err := cli.ParseInts("-rates", *rates)
		if err != nil {
			cli.Usagef("%v", err)
		}
		sweep = sweep[:0]
		for _, r := range ints {
			sweep = append(sweep, float64(r))
		}
	}
	windows := make([]window, len(sweep))
	due := []time.Duration{}
	offset := time.Duration(0)
	for w, r := range sweep {
		if r <= 0 {
			cli.Usagef("rates must be positive (got %v)", r)
		}
		count := int(r * duration.Seconds())
		if count < 1 {
			count = 1
		}
		interval := time.Duration(float64(time.Second) / r)
		windows[w] = window{rps: r, duration: *duration, lo: len(due), hi: len(due) + count}
		for i := 0; i < count; i++ {
			due = append(due, offset+time.Duration(i)*interval)
		}
		offset += *duration
	}
	samples := run(*addr, int64(*cacheMB)<<20, *conns, due, windows, nil)
	report(samples, windows, *conns, *out)
}

// run fires the scheduled requests from conns workers and returns one
// sample per schedule slot. With addr empty it also runs an in-process
// server: shard 0 of the same par.Chunks call serves, and the last client
// shard to finish cancels its context. extra, when non-nil, runs after the
// paced windows on the worker that finishes last (the smoke test's script).
func run(addr string, cacheBytes int64, conns int, due []time.Duration, windows []window, extra func(base string)) []sample {
	samples := make([]sample, len(due))
	bodies := make([][]byte, len(mix))
	for i, req := range mix {
		b, err := json.Marshal(req)
		if err != nil {
			cli.Failf("loadgen: encoding request: %v", err)
		}
		bodies[i] = b
	}
	serverShards := 0
	var srv *serve.Server
	var ln net.Listener
	if addr == "" {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cli.Failf("loadgen: %v", err)
		}
		srv = serve.New(serve.Config{CacheBytes: cacheBytes})
		addr = ln.Addr().String()
		serverShards = 1
	}
	base := "http://" + addr
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	remaining := int32(conns)
	// The default transport keeps only two idle connections per host; with
	// many paced workers that means constant re-dialing, and the dial cost
	// would dominate the hit latencies being measured.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = conns + 2
	client := &http.Client{Timeout: 5 * time.Minute, Transport: transport}
	start := time.Now()
	par.Chunks(conns+serverShards, conns+serverShards, func(shard, lo, hi int) {
		if serverShards == 1 && shard == 0 {
			if err := srv.Serve(ctx, ln); err != nil {
				cli.Failf("loadgen server: %v", err)
			}
			return
		}
		worker := shard - serverShards
		defer func() {
			if atomic.AddInt32(&remaining, -1) == 0 {
				if extra != nil {
					extra(base)
				}
				cancel()
			}
		}()
		w := 0
		for i := worker; i < len(due); i += conns {
			if d := time.Until(start.Add(due[i])); d > 0 {
				time.Sleep(d)
			}
			for i >= windows[w].hi {
				w++
			}
			samples[i] = fire(client, base, bodies[i%len(bodies)])
			samples[i].window = w
		}
	})
	return samples
}

// fire posts one pre-marshaled build request and classifies the response.
func fire(client *http.Client, base string, body []byte) sample {
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/build", "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{ns: time.Since(t0).Nanoseconds(), outcome: "ERR:transport"}
	}
	var br struct {
		Key   string `json:"key"`
		Cache string `json:"cache"`
	}
	dec := json.NewDecoder(resp.Body)
	decErr := dec.Decode(&br)
	resp.Body.Close()
	ns := time.Since(t0).Nanoseconds()
	if resp.StatusCode != http.StatusOK || decErr != nil {
		return sample{ns: ns, outcome: fmt.Sprintf("ERR:%d", resp.StatusCode)}
	}
	return sample{ns: ns, outcome: br.Cache, key: br.Key}
}

// report prints the per-window and overall summary and, with -out, writes
// the trajectory records. The acceptance ratio — cache-hit p50 vs cold
// build on the Hypercube(10) anchor — uses the anchor's first (cold) MISS
// and its hit p50 within each window; the sweep shows the trajectory from
// pacing-dominated to HTTP-floor hits as the rate rises.
func report(samples []sample, windows []window, conns int, out string) {
	anchor := mix[0].Key()
	var coldNs int64
	for _, s := range samples {
		if s.key == anchor && s.outcome == "MISS" {
			coldNs = s.ns
			break
		}
	}
	var records []record
	var totalErrs, totalHits, totalServed int64
	for w, win := range windows {
		var hit, miss, inflight, anchorHits []int64
		var errs int64
		for _, s := range samples[win.lo:win.hi] {
			switch {
			case strings.HasPrefix(s.outcome, "ERR"):
				errs++
				continue
			case s.outcome == "HIT":
				hit = append(hit, s.ns)
			case s.outcome == "MISS":
				miss = append(miss, s.ns)
			default:
				inflight = append(inflight, s.ns)
			}
			if s.key == anchor && s.outcome == "HIT" {
				anchorHits = append(anchorHits, s.ns)
			}
		}
		served := int64(win.hi-win.lo) - errs
		totalErrs += errs
		totalHits += int64(len(hit))
		totalServed += served
		sort.Slice(hit, func(i, j int) bool { return hit[i] < hit[j] })
		sort.Slice(anchorHits, func(i, j int) bool { return anchorHits[i] < anchorHits[j] })
		hitRate := 100 * int64(len(hit)) / max64(served, 1)
		fmt.Printf("%6.0f req/s: served %-6d errors %-3d hit-rate %3d%%  hit p50 %-12v p95 %-12v p99 %v\n",
			win.rps, served, errs, hitRate,
			time.Duration(pct(hit, 50)), time.Duration(pct(hit, 95)), time.Duration(pct(hit, 99)))
		rec := record{
			Bench: fmt.Sprintf("serve/rate/%.0frps", win.rps), NsOp: float64(pct(hit, 50)), Workers: conns,
			Counters: map[string]int64{
				"offered_rps": int64(win.rps), "served": served, "errors": errs,
				"hits": int64(len(hit)), "misses": int64(len(miss)), "inflight": int64(len(inflight)),
				"hit_rate_pct": hitRate, "hit_p95_ns": pct(hit, 95), "hit_p99_ns": pct(hit, 99),
			},
		}
		if len(anchorHits) > 0 && coldNs > 0 {
			p50 := pct(anchorHits, 50)
			rec.Counters["hypercube10_hit_p50_ns"] = p50
			rec.Counters["hypercube10_speedup_x"] = coldNs / max64(p50, 1)
			fmt.Printf("         hypercube10 hit p50 %v vs cold %v: %dx\n",
				time.Duration(p50), time.Duration(coldNs), coldNs/max64(p50, 1))
		}
		records = append(records, rec)
		_ = w
	}
	records = append(records,
		record{Bench: "serve/cold/hypercube10", NsOp: float64(coldNs), Workers: conns},
		record{Bench: "serve/summary", NsOp: 0, Workers: conns,
			Counters: map[string]int64{
				"requests": int64(len(samples)), "served": totalServed, "errors": totalErrs,
				"hits": totalHits, "hit_rate_pct": 100 * totalHits / max64(totalServed, 1),
			}})
	if out != "" {
		writeRecords(out, records)
	}
}

func writeRecords(path string, records []record) {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		cli.Failf("loadgen: %v", err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		cli.Failf("loadgen: %v", err)
	}
	fmt.Println("wrote", path)
}

// pct reads the p-th percentile from an ascending latency slice.
func pct(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) - 1) * p / 100
	return sorted[i]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// runSmoke drives a fixed script against an in-process server and fails
// loudly on any deviation: MISS then HIT on the same content under two
// spellings, a typed param rejection in the 400 envelope, and the cache
// counters visible in /metricsz. It reuses run()'s server/client shard
// machinery with a one-request schedule (a small warm-up build).
func runSmoke() {
	failed := false
	script := func(base string) {
		client := &http.Client{Timeout: time.Minute}
		small := `{"family":{"name":"hypercube","params":{"n":5}},"layers":4}`
		respell := `{"family":{"name":"hypercube","params":{"n":5}},"layers":4,"workers":2}`
		first := fire(client, base, []byte(small))
		second := fire(client, base, []byte(respell))
		if first.outcome != "MISS" || second.outcome != "HIT" || first.key != second.key {
			fmt.Fprintf(os.Stderr, "serve-smoke: want MISS then HIT on one key, got %s/%s keys %s/%s\n",
				first.outcome, second.outcome, first.key, second.key)
			failed = true
		}
		resp, err := client.Post(base+"/v1/build", "application/json",
			strings.NewReader(`{"family":{"name":"hypercube","params":{"bogus":1}}}`))
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve-smoke: %v\n", err)
			failed = true
			return
		}
		var envelope struct {
			Error struct {
				Kind string `json:"kind"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&envelope)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusBadRequest || envelope.Error.Kind != "param" {
			fmt.Fprintf(os.Stderr, "serve-smoke: bad param envelope: status %d kind %q err %v\n",
				resp.StatusCode, envelope.Error.Kind, err)
			failed = true
		}
		resp, err = client.Get(base + "/metricsz")
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve-smoke: %v\n", err)
			failed = true
			return
		}
		var metrics map[string]int64
		err = json.NewDecoder(resp.Body).Decode(&metrics)
		resp.Body.Close()
		if err != nil || metrics["cache_hits"] < 1 || metrics["cache_misses"] < 1 {
			fmt.Fprintf(os.Stderr, "serve-smoke: metrics missing cache counters: %v (err %v)\n", metrics, err)
			failed = true
		}
	}
	saved := mix
	mix = []mlvlsi.BuildRequest{{Family: mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": 4}}, Layers: 2}}
	samples := run("", 64<<20, 1, []time.Duration{0}, []window{{rps: 1, duration: 0, lo: 0, hi: 1}}, script)
	mix = saved
	for _, s := range samples {
		if strings.HasPrefix(s.outcome, "ERR") {
			fmt.Fprintf(os.Stderr, "serve-smoke: warm-up request failed: %s\n", s.outcome)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("serve-smoke: MISS→HIT, param envelope, and cache counters all verified over HTTP")
}
