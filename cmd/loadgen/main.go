// Command loadgen replays a mixed-family request stream against a layoutd
// server and reports the latency, throughput, cache-hit trajectory, and a
// full error breakdown. It is the measurement half of the serving layer: the
// committed BENCH snapshots are its -out files, and `loadgen -smoke` is the
// serve smoke test `make serve-smoke` and CI run.
//
// With -addr it targets a running daemon; without, it starts an in-process
// server on an ephemeral port and drives that over real HTTP, so the
// numbers include the wire. Requests fire at the scheduled rate across
// -conns workers (global open-loop pacing: request i is due at its
// schedule offset regardless of which worker fires it), cycling through a
// fixed family mix anchored on Hypercube(10)/L=4 — the class the cache-hit
// acceptance ratio is measured on. -rates sweeps several rates in one run
// against one warming cache. Every worker, including the in-process
// server's accept loop, runs on the par pool; there are no raw goroutines.
//
// Requests go through resilience.Client — capped-jittered retries, a
// circuit breaker, response validation — so loadgen is also the reference
// consumer of the retry contract. -chaos injects seeded network faults
// (resilience.Chaos classes; "all" or e.g. "reset,garble") at -chaos-rate
// between the client and the wire, and the report's breakdown section shows
// what the resilience machinery absorbed: per-envelope-kind errors,
// retries, sheds, timeouts, degraded responses, breaker opens.
//
// With -batch N every scheduled slot posts one /v1/build_batch call of N
// requests (the mix rotated per slot) instead of a single build: the sample
// is the whole call, a HIT only when every item came from cache, and any
// per-item error envelope classifies the call into the breakdown under that
// item's kind. -smoke always exercises the batch endpoint too: per-item
// envelopes (a bad family inside an otherwise-good batch) and the scratch
// reuse counter over real HTTP.
//
// Examples:
//
//	loadgen -rates 100,300,1000,3000 -duration 3s -out BENCH_7.json
//	loadgen -chaos all -chaos-rate 0.2 -rps 300 -duration 3s
//	loadgen -addr localhost:8080 -rps 500 -duration 10s
//	loadgen -batch 8 -rps 50 -duration 3s
//	loadgen -smoke
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"mlvlsi"
	"mlvlsi/internal/cli"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
	"mlvlsi/internal/resilience"
	"mlvlsi/internal/serve"
)

// mix is the replayed request stream, cycled by request index. The
// Hypercube(10) entry leads so its cold build is the first request and
// every later occurrence is a cache hit; the rest spread load across
// families and sizes. All spellings are canonical-equivalent to what
// layoutd hashes, so repeats hit regardless of how a client phrases them.
var mix = []mlvlsi.BuildRequest{
	{Family: mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": 10}}, Layers: 4},
	{Family: mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": 8}}, Layers: 4},
	{Family: mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": 6}}, Layers: 2},
	{Family: mlvlsi.FamilySpec{Name: "kary", Params: map[string]int{"k": 4, "n": 3}}, Layers: 4},
	{Family: mlvlsi.FamilySpec{Name: "butterfly", Params: map[string]int{"m": 5}}, Layers: 4},
	{Family: mlvlsi.FamilySpec{Name: "ccc", Params: map[string]int{"n": 5}}, Layers: 2},
	{Family: mlvlsi.FamilySpec{Name: "mesh", Params: map[string]int{"n": 16, "d": 2}}, Layers: 2},
	{Family: mlvlsi.FamilySpec{Name: "star", Params: map[string]int{"n": 5}}, Layers: 2},
}

// sample is one completed request.
type sample struct {
	ns       int64
	outcome  string // "HIT", "MISS", "INFLIGHT", "DEGRADED", or "ERR:<kind>"
	kind     string // failure class for errors: envelope kind, "timeout", "breaker", "transport"
	key      string
	attempts int
	degraded bool
	window   int // index into the rate schedule
}

// window is one constant-rate segment of the replay schedule.
type window struct {
	rps      float64
	duration time.Duration
	lo, hi   int // sample index range [lo, hi)
}

// record matches cmd/benchjson's trajectory schema so BENCH_<n>.json reads
// the same across PRs: one JSON object per measurement.
type record struct {
	Bench    string           `json:"bench"`
	NsOp     float64          `json:"ns_op"`
	AllocsOp int64            `json:"allocs_op"`
	BytesOp  int64            `json:"bytes_op"`
	Workers  int              `json:"workers"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// runConfig carries one replay's knobs through run().
type runConfig struct {
	addr       string
	cacheBytes int64
	conns      int
	chaos      []resilience.Fault
	chaosRate  float64
	seed       int64
	obs        *obs.Observer
}

func main() {
	addr := flag.String("addr", "", "target server host:port (empty = start an in-process server)")
	rps := flag.Float64("rps", 100, "request rate when -rates is not given")
	rates := flag.String("rates", "", "comma-separated rate sweep (e.g. 100,300,1000); each rate runs for -duration")
	duration := flag.Duration("duration", 5*time.Second, "length of each constant-rate window")
	conns := flag.Int("conns", 4, "concurrent client workers")
	cacheMB := flag.Int("cache-mb", 256, "in-process server cache budget in MiB")
	chaos := flag.String("chaos", "", "inject network faults: comma-separated classes (latency,5xx,reset,truncate,garble) or \"all\"")
	chaosRate := flag.Float64("chaos-rate", 0.2, "per-class injection probability for -chaos")
	seed := flag.Int64("seed", 1, "seed for chaos injection and retry jitter")
	batch := flag.Int("batch", 0, "post /v1/build_batch calls of this many requests per scheduled slot (0 = single /v1/build requests)")
	out := flag.String("out", "", "write benchjson-style records to this file ('-' for stdout)")
	smoke := flag.Bool("smoke", false, "run the serve smoke test (in-process, sub-second) and exit")
	flag.Parse()
	if *batch < 0 {
		cli.Usagef("-batch must be >= 0 (got %d)", *batch)
	}
	batchSize = *batch

	if *smoke {
		if *batch != 0 {
			cli.Usagef("-smoke always covers the batch endpoint; it does not combine with -batch")
		}
		runSmoke()
		return
	}
	if *duration <= 0 || *conns < 1 {
		cli.Usagef("-duration and -conns must be positive")
	}
	faults, err := resilience.ParseFaults(*chaos)
	if err != nil {
		cli.Usagef("%v", err)
	}
	if *chaosRate < 0 || *chaosRate > 1 {
		cli.Usagef("-chaos-rate must be in [0, 1] (got %v)", *chaosRate)
	}
	sweep := []float64{*rps}
	if *rates != "" {
		ints, err := cli.ParseInts("-rates", *rates)
		if err != nil {
			cli.Usagef("%v", err)
		}
		sweep = sweep[:0]
		for _, r := range ints {
			sweep = append(sweep, float64(r))
		}
	}
	windows := make([]window, len(sweep))
	due := []time.Duration{}
	offset := time.Duration(0)
	for w, r := range sweep {
		if r <= 0 {
			cli.Usagef("rates must be positive (got %v)", r)
		}
		count := int(r * duration.Seconds())
		if count < 1 {
			count = 1
		}
		interval := time.Duration(float64(time.Second) / r)
		windows[w] = window{rps: r, duration: *duration, lo: len(due), hi: len(due) + count}
		for i := 0; i < count; i++ {
			due = append(due, offset+time.Duration(i)*interval)
		}
		offset += *duration
	}
	cfg := runConfig{
		addr: *addr, cacheBytes: int64(*cacheMB) << 20, conns: *conns,
		chaos: faults, chaosRate: *chaosRate, seed: *seed, obs: obs.New(),
	}
	samples, metrics := run(cfg, due, windows, nil)
	label := "serve"
	if *batch > 0 {
		label = fmt.Sprintf("serve/batch%d", *batch)
	}
	if len(faults) > 0 {
		names := make([]string, len(faults))
		for i, f := range faults {
			names[i] = f.String()
		}
		label += "/chaos/" + strings.Join(names, "+")
	}
	report(samples, windows, cfg, metrics, label, *out)
}

// run fires the scheduled requests from conns workers and returns one
// sample per schedule slot plus the server's final /metricsz snapshot
// (scraped through a fault-free transport before the in-process server
// stops). With addr empty it also runs an in-process server: shard 0 of the
// same par.Chunks call serves, and the last client shard to finish cancels
// its context. extra, when non-nil, runs after the paced windows on the
// worker that finishes last (the smoke test's script).
func run(cfg runConfig, due []time.Duration, windows []window, extra func(base string, client *resilience.Client)) ([]sample, map[string]int64) {
	samples := make([]sample, len(due))
	bodies := make([][]byte, len(mix))
	for i := range mix {
		var payload any = mix[i]
		if batchSize > 0 {
			reqs := make([]mlvlsi.BuildRequest, batchSize)
			for j := range reqs {
				reqs[j] = mix[(i+j)%len(mix)]
			}
			payload = batchPayload{Requests: reqs}
		}
		b, err := json.Marshal(payload)
		if err != nil {
			cli.Failf("loadgen: encoding request: %v", err)
		}
		bodies[i] = b
	}
	serverShards := 0
	var srv *serve.Server
	var ln net.Listener
	addr := cfg.addr
	if addr == "" {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cli.Failf("loadgen: %v", err)
		}
		srv = serve.New(serve.Config{CacheBytes: cfg.cacheBytes, Timeout: time.Minute, Degrade: true})
		addr = ln.Addr().String()
		serverShards = 1
	}
	base := "http://" + addr
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	remaining := int32(cfg.conns)
	// The default transport keeps only two idle connections per host; with
	// many paced workers that means constant re-dialing, and the dial cost
	// would dominate the hit latencies being measured.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = cfg.conns + 2
	var rt http.RoundTripper = transport
	if len(cfg.chaos) > 0 {
		rates := make(map[resilience.Fault]float64, len(cfg.chaos))
		for _, f := range cfg.chaos {
			rates[f] = cfg.chaosRate
		}
		rt = resilience.NewChaos(resilience.ChaosConfig{
			Rates: rates, Seed: cfg.seed, Base: transport, Obs: cfg.obs,
		})
	}
	client := resilience.NewClient(&http.Client{Timeout: 5 * time.Minute, Transport: rt},
		resilience.Policy{MaxAttempts: 6, BaseBackoff: 5 * time.Millisecond,
			MaxBackoff: 250 * time.Millisecond, Seed: cfg.seed}, cfg.obs)
	// The metrics scrape bypasses chaos: it measures the server, not the wire.
	clean := &http.Client{Timeout: time.Minute, Transport: transport}
	metrics := make(map[string]int64)
	start := time.Now()
	par.Chunks(cfg.conns+serverShards, cfg.conns+serverShards, func(shard, lo, hi int) {
		if serverShards == 1 && shard == 0 {
			if err := srv.Serve(ctx, ln); err != nil {
				cli.Failf("loadgen server: %v", err)
			}
			return
		}
		worker := shard - serverShards
		defer func() {
			if atomic.AddInt32(&remaining, -1) == 0 {
				if extra != nil {
					extra(base, client)
				}
				scrapeMetrics(clean, base, metrics)
				cancel()
			}
		}()
		w := 0
		for i := worker; i < len(due); i += cfg.conns {
			if d := time.Until(start.Add(due[i])); d > 0 {
				time.Sleep(d)
			}
			for i >= windows[w].hi {
				w++
			}
			if batchSize > 0 {
				samples[i] = fireBatch(client, base, bodies[i%len(bodies)])
			} else {
				samples[i] = fire(client, base, bodies[i%len(bodies)])
			}
			samples[i].window = w
		}
	})
	return samples, metrics
}

// scrapeMetrics fills m from the server's /metricsz. Best-effort: a scrape
// failure leaves m empty rather than failing the run.
func scrapeMetrics(client *http.Client, base string, m map[string]int64) {
	resp, err := client.Get(base + "/metricsz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	_ = json.NewDecoder(resp.Body).Decode(&m)
}

// buildBody is the part of the /v1/build success body loadgen reads.
type buildBody struct {
	Key      string `json:"key"`
	Cache    string `json:"cache"`
	Degraded bool   `json:"degraded"`
}

// validateBuild rejects 200s whose body is not a parseable build response —
// the check that turns garbled and truncated bodies into retries inside the
// client instead of corrupt samples out here.
func validateBuild(status int, body []byte) error {
	var br buildBody
	if err := json.Unmarshal(body, &br); err != nil {
		return err
	}
	if br.Key == "" {
		return fmt.Errorf("build response without key")
	}
	return nil
}

// fire posts one pre-marshaled build request through the resilience client
// and classifies the result.
func fire(client *resilience.Client, base string, body []byte) sample {
	t0 := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := client.Post(ctx, base+"/v1/build", body, validateBuild)
	ns := time.Since(t0).Nanoseconds()
	attempts := 0
	if resp != nil {
		attempts = resp.Attempts
	}
	if err != nil {
		kind := classify(resp, err)
		return sample{ns: ns, outcome: "ERR:" + kind, kind: kind, attempts: attempts}
	}
	var br buildBody
	_ = json.Unmarshal(resp.Body, &br) // validated inside the retry loop
	return sample{ns: ns, outcome: br.Cache, key: br.Key, attempts: attempts, degraded: br.Degraded}
}

// batchSize > 0 switches the stream to /v1/build_batch calls of that many
// requests each (set once from -batch before any worker starts).
var batchSize int

// batchPayload is the /v1/build_batch request body.
type batchPayload struct {
	Requests []mlvlsi.BuildRequest `json:"requests"`
}

// batchItemBody is the part of one batch result item loadgen reads.
type batchItemBody struct {
	Key   string `json:"key"`
	Cache string `json:"cache"`
	Error *struct {
		Kind string `json:"kind"`
	} `json:"error"`
}

// batchBody is the /v1/build_batch success body.
type batchBody struct {
	Results []batchItemBody `json:"results"`
}

// validateBatch rejects 200s whose body is not a parseable batch response,
// mirroring validateBuild for the batch endpoint.
func validateBatch(status int, body []byte) error {
	var bb batchBody
	if err := json.Unmarshal(body, &bb); err != nil {
		return err
	}
	if len(bb.Results) == 0 {
		return fmt.Errorf("batch response without results")
	}
	return nil
}

// fireBatch posts one pre-marshaled batch and classifies the whole call: a
// HIT only when every item came from cache, a MISS when any item built, and
// the first per-item error envelope turns the call into an error sample of
// that kind (per-item failure is the batch contract; the call itself still
// returned 200).
func fireBatch(client *resilience.Client, base string, body []byte) sample {
	t0 := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := client.Post(ctx, base+"/v1/build_batch", body, validateBatch)
	ns := time.Since(t0).Nanoseconds()
	attempts := 0
	if resp != nil {
		attempts = resp.Attempts
	}
	if err != nil {
		kind := classify(resp, err)
		return sample{ns: ns, outcome: "ERR:" + kind, kind: kind, attempts: attempts}
	}
	var bb batchBody
	_ = json.Unmarshal(resp.Body, &bb) // validated inside the retry loop
	outcome := "HIT"
	for _, it := range bb.Results {
		if it.Error != nil {
			kind := it.Error.Kind
			if kind == "" {
				kind = "batch"
			}
			return sample{ns: ns, outcome: "ERR:" + kind, kind: kind, attempts: attempts}
		}
		if it.Cache != "HIT" {
			outcome = "MISS"
		}
	}
	return sample{ns: ns, outcome: outcome, key: bb.Results[0].Key, attempts: attempts}
}

// classify names a failed request's class: our own exhausted deadline is a
// "timeout", an open breaker is "breaker", a server rejection is its
// envelope kind, and anything else is "transport".
func classify(resp *resilience.Response, err error) string {
	var boe *resilience.BreakerOpenError
	switch {
	case errors.As(err, &boe):
		return "breaker"
	case errors.Is(err, par.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return "timeout"
	}
	if resp != nil && len(resp.Body) > 0 {
		var eb struct {
			Error struct {
				Kind string `json:"kind"`
			} `json:"error"`
		}
		if json.Unmarshal(resp.Body, &eb) == nil && eb.Error.Kind != "" {
			return eb.Error.Kind
		}
	}
	if resp != nil {
		return fmt.Sprintf("http_%d", resp.Status)
	}
	return "transport"
}

// report prints the per-window and overall summary, the error breakdown,
// and, with -out, writes the trajectory records. The acceptance ratio —
// cache-hit p50 vs cold build on the Hypercube(10) anchor — uses the
// anchor's first (cold) MISS and its hit p50 within each window.
func report(samples []sample, windows []window, cfg runConfig, metrics map[string]int64, label, out string) {
	anchor := mix[0].Key()
	var coldNs int64
	for _, s := range samples {
		if s.key == anchor && s.outcome == "MISS" {
			coldNs = s.ns
			break
		}
	}
	var records []record
	var totalErrs, totalHits, totalServed int64
	for w, win := range windows {
		var hit, miss, other, anchorHits []int64
		var errs int64
		for _, s := range samples[win.lo:win.hi] {
			switch {
			case strings.HasPrefix(s.outcome, "ERR"):
				errs++
				continue
			case s.outcome == "HIT":
				hit = append(hit, s.ns)
			case s.outcome == "MISS":
				miss = append(miss, s.ns)
			default: // INFLIGHT, DEGRADED
				other = append(other, s.ns)
			}
			if s.key == anchor && s.outcome == "HIT" {
				anchorHits = append(anchorHits, s.ns)
			}
		}
		served := int64(win.hi-win.lo) - errs
		totalErrs += errs
		totalHits += int64(len(hit))
		totalServed += served
		sort.Slice(hit, func(i, j int) bool { return hit[i] < hit[j] })
		sort.Slice(anchorHits, func(i, j int) bool { return anchorHits[i] < anchorHits[j] })
		hitRate := 100 * int64(len(hit)) / max64(served, 1)
		fmt.Printf("%6.0f req/s: served %-6d errors %-3d hit-rate %3d%%  hit p50 %-12v p95 %-12v p99 %v\n",
			win.rps, served, errs, hitRate,
			time.Duration(pct(hit, 50)), time.Duration(pct(hit, 95)), time.Duration(pct(hit, 99)))
		rec := record{
			Bench: fmt.Sprintf("%s/rate/%.0frps", label, win.rps), NsOp: float64(pct(hit, 50)), Workers: cfg.conns,
			Counters: map[string]int64{
				"offered_rps": int64(win.rps), "served": served, "errors": errs,
				"hits": int64(len(hit)), "misses": int64(len(miss)), "other": int64(len(other)),
				"hit_rate_pct": hitRate, "hit_p95_ns": pct(hit, 95), "hit_p99_ns": pct(hit, 99),
			},
		}
		if len(anchorHits) > 0 && coldNs > 0 {
			p50 := pct(anchorHits, 50)
			rec.Counters["hypercube10_hit_p50_ns"] = p50
			rec.Counters["hypercube10_speedup_x"] = coldNs / max64(p50, 1)
			fmt.Printf("         hypercube10 hit p50 %v vs cold %v: %dx\n",
				time.Duration(p50), time.Duration(coldNs), coldNs/max64(p50, 1))
		}
		records = append(records, rec)
		_ = w
	}
	bd := breakdownCounters(samples, metrics, cfg.obs)
	printBreakdown(bd)
	records = append(records,
		record{Bench: label + "/cold/hypercube10", NsOp: float64(coldNs), Workers: cfg.conns},
		record{Bench: label + "/breakdown", NsOp: 0, Workers: cfg.conns, Counters: bd},
		record{Bench: label + "/summary", NsOp: 0, Workers: cfg.conns,
			Counters: map[string]int64{
				"requests": int64(len(samples)), "served": totalServed, "errors": totalErrs,
				"hits": totalHits, "hit_rate_pct": 100 * totalHits / max64(totalServed, 1),
			}})
	if out != "" {
		writeRecords(out, records)
	}
}

// breakdownCounters assembles the error-breakdown record: what failed (one
// err_<kind> counter per failure class), what the client absorbed (retries,
// breaker opens, injected chaos), and what the server deflected (sheds by
// reason from /metricsz, degraded responses, recovered panics). The fixed
// keys are always present — zero is information here — which is the shape
// -smoke asserts.
func breakdownCounters(samples []sample, metrics map[string]int64, o *obs.Observer) map[string]int64 {
	bd := map[string]int64{
		"served": 0, "errors": 0, "degraded": 0, "attempts": 0,
		"retries": 0, "timeouts": 0, "shed": 0,
		"breaker_opens": 0, "chaos_injected": 0, "panics_recovered": 0,
	}
	for _, s := range samples {
		bd["attempts"] += int64(s.attempts)
		if s.kind != "" {
			bd["errors"]++
			bd["err_"+s.kind]++
			if s.kind == "timeout" {
				bd["timeouts"]++
			}
			continue
		}
		bd["served"]++
		if s.degraded {
			bd["degraded"]++
		}
	}
	if o != nil {
		snap := o.Snapshot()
		bd["retries"] = snap.Get(obs.ClientRetries)
		bd["breaker_opens"] = snap.Get(obs.BreakerOpens)
		bd["chaos_injected"] = snap.Get(obs.ChaosInjected)
	}
	bd["shed"] = metrics["shed_queue_full"] + metrics["shed_deadline"] + metrics["shed_draining"]
	bd["panics_recovered"] = metrics["panics_recovered"]
	return bd
}

// printBreakdown renders the breakdown, error kinds sorted for stable
// output.
func printBreakdown(bd map[string]int64) {
	var kinds []string
	for k := range bd {
		if strings.HasPrefix(k, "err_") {
			kinds = append(kinds, k)
		}
	}
	sort.Strings(kinds)
	fmt.Printf("breakdown: served %d errors %d retries %d shed %d timeouts %d degraded %d breaker-opens %d chaos-injected %d\n",
		bd["served"], bd["errors"], bd["retries"], bd["shed"], bd["timeouts"], bd["degraded"],
		bd["breaker_opens"], bd["chaos_injected"])
	for _, k := range kinds {
		fmt.Printf("           %s: %d\n", k, bd[k])
	}
}

func writeRecords(path string, records []record) {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		cli.Failf("loadgen: %v", err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		cli.Failf("loadgen: %v", err)
	}
	fmt.Println("wrote", path)
}

// pct reads the p-th percentile from an ascending latency slice.
func pct(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) - 1) * p / 100
	return sorted[i]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// runSmoke drives a fixed script against an in-process server and fails
// loudly on any deviation: MISS then HIT on the same content under two
// spellings, a typed param rejection in the 400 envelope (classified into
// the breakdown), the cache counters visible in /metricsz, and the
// breakdown record carrying its full fixed shape. It reuses run()'s
// server/client shard machinery with a one-request schedule.
func runSmoke() {
	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "serve-smoke: "+format+"\n", args...)
		failed = true
	}
	var scripted []sample
	script := func(base string, client *resilience.Client) {
		small := `{"family":{"name":"hypercube","params":{"n":5}},"layers":4}`
		respell := `{"family":{"name":"hypercube","params":{"n":5}},"layers":4,"workers":2}`
		first := fire(client, base, []byte(small))
		second := fire(client, base, []byte(respell))
		if first.outcome != "MISS" || second.outcome != "HIT" || first.key != second.key {
			fail("want MISS then HIT on one key, got %s/%s keys %s/%s",
				first.outcome, second.outcome, first.key, second.key)
		}
		bad := fire(client, base, []byte(`{"family":{"name":"hypercube","params":{"bogus":1}}}`))
		if bad.kind != "param" || bad.attempts != 1 {
			fail("bad param request classified %q after %d attempts, want param after 1", bad.kind, bad.attempts)
		}
		scripted = append(scripted, first, second, bad)
		// The batch endpoint: five good items (the first already cached from
		// the singles above, the rest fresh builds on the server's pooled
		// scratch) plus one bad family. The call must return 200 with the bad
		// item carried as a per-item envelope, not fail the batch.
		batch, err := json.Marshal(batchPayload{Requests: []mlvlsi.BuildRequest{
			{Family: mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": 5}}, Layers: 4},
			{Family: mlvlsi.FamilySpec{Name: "kary", Params: map[string]int{"k": 3, "n": 2}}},
			{Family: mlvlsi.FamilySpec{Name: "mesh"}},
			{Family: mlvlsi.FamilySpec{Name: "ccc"}},
			{Family: mlvlsi.FamilySpec{Name: "folded"}},
			{Family: mlvlsi.FamilySpec{Name: "no-such-family"}},
		}})
		if err != nil {
			fail("%v", err)
			return
		}
		ctx, cancelBatch := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancelBatch()
		resp, err := client.Post(ctx, base+"/v1/build_batch", batch, validateBatch)
		if err != nil {
			fail("batch call: %v", err)
			return
		}
		var bb batchBody
		if err := json.Unmarshal(resp.Body, &bb); err != nil || len(bb.Results) != 6 {
			fail("batch response: %d results (err %v), want 6", len(bb.Results), err)
			return
		}
		if it := bb.Results[0]; it.Error != nil || it.Cache != "HIT" {
			fail("batch item 0 should hit the cache warmed by the single build, got cache %q error %v", it.Cache, it.Error)
		}
		for i, it := range bb.Results[1:5] {
			if it.Error != nil || it.Key == "" {
				fail("batch item %d: error %v key %q, want a keyed success", i+1, it.Error, it.Key)
			}
		}
		if it := bb.Results[5]; it.Error == nil || it.Error.Kind != "param" {
			fail("batch item 5: error %v, want a param envelope on the bad family", it.Error)
		}
		hc := &http.Client{Timeout: time.Minute}
		mresp, err := hc.Get(base + "/metricsz")
		if err != nil {
			fail("%v", err)
			return
		}
		var m map[string]int64
		err = json.NewDecoder(mresp.Body).Decode(&m)
		mresp.Body.Close()
		if err != nil || m["cache_hits"] < 1 || m["cache_misses"] < 1 {
			fail("metrics missing cache counters: %v (err %v)", m, err)
		}
		// Every cache-miss build after the first reused the pooled scratch,
		// and the batch added four misses: the reuse counter must be visible
		// over the wire by now.
		if m["scratch_reuses"] < 1 {
			fail("metrics scratch_reuses = %d, want >= 1 after %d cache misses", m["scratch_reuses"], m["cache_misses"])
		}
	}
	saved := mix
	mix = []mlvlsi.BuildRequest{{Family: mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": 4}}, Layers: 2}}
	cfg := runConfig{cacheBytes: 64 << 20, conns: 1, seed: 1, obs: obs.New()}
	samples, metrics := run(cfg, []time.Duration{0}, []window{{rps: 1, duration: 0, lo: 0, hi: 1}}, script)
	mix = saved
	for _, s := range samples {
		if strings.HasPrefix(s.outcome, "ERR") {
			fail("warm-up request failed: %s", s.outcome)
		}
	}
	// The breakdown must carry its full fixed shape plus the scripted param
	// rejection, whatever the run looked like.
	bd := breakdownCounters(append(samples, scripted...), metrics, cfg.obs)
	for _, key := range []string{"served", "errors", "retries", "shed", "timeouts",
		"degraded", "attempts", "breaker_opens", "chaos_injected", "panics_recovered"} {
		if _, ok := bd[key]; !ok {
			fail("breakdown missing fixed key %q: %v", key, bd)
		}
	}
	if bd["err_param"] != 1 || bd["errors"] != 1 || bd["served"] != 3 {
		fail("breakdown miscounted the script: %v", bd)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("serve-smoke: MISS→HIT, param envelope, cache counters, and breakdown shape all verified over HTTP")
}
