// Command paperbench regenerates every experiment table of the reproduction
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// output). With no flags it prints all tables; -only selects experiments by
// id prefix (e.g. -only E4,E8).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mlvlsi/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment id prefixes to run (e.g. E4,E8)")
	list := flag.Bool("list", false, "list experiment ids and titles without running")
	format := flag.String("format", "text", "output format: text | csv")
	flag.Parse()

	type entry struct {
		id, title string
		run       func() *experiments.Table
	}
	all := []entry{
		{"E1", "collinear k-ary n-cubes (Fig. 2)", experiments.E1CollinearKAry},
		{"E2", "collinear complete graphs (Fig. 3)", experiments.E2CollinearComplete},
		{"E3", "collinear hypercubes (Fig. 4)", experiments.E3CollinearHypercube},
		{"E4", "k-ary n-cube multilayer layouts (§3.1)", experiments.E4KAryNCube},
		{"E5", "generalized hypercubes (§4.1)", experiments.E5GeneralizedHypercube},
		{"E6", "butterflies (§4.2)", experiments.E6Butterfly},
		{"E7", "swap networks HSN/HHN/ISN (§4.3)", experiments.E7SwapNetworks},
		{"E8", "hypercubes (§5.1)", experiments.E8Hypercube},
		{"E9", "CCC and reduced hypercubes (§5.2)", experiments.E9CCC},
		{"E10", "folded and enhanced hypercubes (§5.3)", experiments.E10FoldedEnhanced},
		{"E11", "k-ary n-cube cluster-c (§3.2)", experiments.E11PNCluster},
		{"E12", "direct vs folding vs stacked collinear (§2.2)", experiments.E12Baselines},
		{"E13", "bisection lower bounds (§1)", experiments.E13LowerBounds},
		{"E14", "wire-delay simulation (§2.2)", experiments.E14WireDelay},
		{"E15", "Cayley-family extension layouts (§4.3)", experiments.E15Cayley},
		{"E16", "2-D vs 3-D multilayer grid model (§2.2)", experiments.E16Stack3D},
		{"E17", "track-assignment ablation", experiments.E17Compaction},
		{"E18", "generic router vs structured constructions (§2.3)", experiments.E18GenericVsSpecialized},
		{"E19", "wire-length distribution (§2.2)", experiments.E19WireDistribution},
	}

	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}

	var filters []string
	if *only != "" {
		filters = strings.Split(*only, ",")
	}
	matched := false
	for _, e := range all {
		if len(filters) > 0 {
			ok := false
			for _, f := range filters {
				if strings.EqualFold(strings.TrimSpace(f), e.id) {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		matched = true
		tab := e.run()
		if *format == "csv" {
			fmt.Printf("# %s — %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		} else {
			fmt.Println(tab.String())
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; use -list\n", *only)
		os.Exit(1)
	}
}
