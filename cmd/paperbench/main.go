// Command paperbench regenerates every experiment table of the reproduction
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// output). With no flags it prints all tables; -only selects experiments by
// id prefix (e.g. -only E4,E8). The experiment list comes from
// experiments.Registry().
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"mlvlsi/internal/cli"
	"mlvlsi/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment id prefixes to run (e.g. E4,E8)")
	list := flag.Bool("list", false, "list experiment ids and titles without running")
	format := flag.String("format", "text", "output format: text | csv")
	workers := flag.Int("workers", 0, "cap the scheduler's parallelism for all experiments (0 = all cores)")
	verifyMem := flag.String("verify-mem", "", "cap the experiments' verifier working set (bytes, k/m/g suffixes; empty = no cap)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after all experiments) to this file")
	tracePath := flag.String("trace", "", "write a Chrome-trace (chrome://tracing) span file with one span per experiment run")
	flag.Parse()

	if *format != "text" && *format != "csv" {
		cli.Usagef("-format: unknown format %q; valid formats: text, csv", *format)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			cli.Usagef("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			cli.Usagef("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: -memprofile:", err)
			}
		}()
	}
	if *workers > 0 {
		// The experiment generators run builds and verifies at the default
		// full fan-out; capping GOMAXPROCS bounds them all at once.
		runtime.GOMAXPROCS(*workers)
	}
	if *verifyMem != "" {
		n, err := cli.ParseBytes("-verify-mem", *verifyMem)
		if err != nil {
			cli.Usagef("%v", err)
		}
		experiments.VerifyMemBytes = n
	}

	obsv, traceDone, err := cli.Trace(*tracePath)
	if err != nil {
		cli.Usagef("%v", err)
	}

	all := experiments.Registry()

	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var filters []string
	if *only != "" {
		filters = strings.Split(*only, ",")
	}
	matched := false
	for _, e := range all {
		if len(filters) > 0 {
			ok := false
			for _, f := range filters {
				if strings.EqualFold(strings.TrimSpace(f), e.ID) {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		matched = true
		sp := obsv.StartSpan("experiment/" + e.ID)
		tab := e.Run()
		sp.End()
		if *format == "csv" {
			fmt.Printf("# %s — %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		} else {
			fmt.Println(tab.String())
		}
	}
	if !matched {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		cli.Usagef("-only: no experiment matches %q; valid ids: %s", *only, strings.Join(ids, ", "))
	}
	if err := traceDone(); err != nil {
		cli.Failf("%v", err)
	}
}
