// Command repolint runs this repo's domain static analyzers over the whole
// module and fails (exit 1) on any active finding. It enforces the three
// hard invariants the engine PRs earned — pool-only parallelism,
// byte-identical verifier output across worker counts, and zero-alloc
// //mlvlsi:hotpath functions — plus the ctxflow and violationcode API
// contracts (see internal/analyze).
//
// Usage:
//
//	repolint [-json] [-list] [-max-suppressed n] [packages]
//
// The package argument is accepted for familiarity ("./...") but the tool
// always analyzes the entire module containing the named directory (default
// "."), because the invariants are module-wide properties. Findings print
// as
//
//	file:line: analyzer: message
//
// with paths relative to the module root. Intentional exceptions carry a
// "//mlvlsi:allow <analyzer>" comment in source; they are suppressed but
// still counted and listed on stderr so exceptions stay visible, and
// -max-suppressed turns that count into a budget: more than n declared
// exceptions fails the lint even with zero active findings. -json emits
// every finding (active and suppressed) as a JSON array on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mlvlsi/internal/analyze"
	"mlvlsi/internal/cli"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	list := flag.Bool("list", false, "list the analyzers and exit")
	maxSuppressed := flag.Int("max-suppressed", -1, "fail when more than this many //mlvlsi:allow exceptions exist (negative disables the budget)")
	flag.Parse()

	if *list {
		for _, a := range analyze.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	start := "."
	if args := flag.Args(); len(args) > 0 {
		if len(args) > 1 {
			cli.Usagef("repolint: at most one package argument (the module is always analyzed whole), got %d", len(args))
		}
		start = strings.TrimSuffix(args[0], "...")
		start = strings.TrimSuffix(start, string(filepath.Separator))
		start = strings.TrimSuffix(start, "/")
		if start == "" {
			start = "."
		}
	}
	root, err := findModuleRoot(start)
	if err != nil {
		cli.Usagef("repolint: %v", err)
	}

	mod, err := analyze.Load(root)
	if err != nil {
		cli.Failf("repolint: %v", err)
	}
	for _, pkg := range mod.Packages {
		for _, terr := range pkg.TypeErrors {
			cli.Failf("repolint: type error in %s: %v", pkg.ImportPath, terr)
		}
	}

	rep := analyze.Run(mod, analyze.Analyzers())
	if *jsonOut {
		emitJSON(rep)
	} else {
		emitText(rep)
	}
	fail := len(rep.Findings) > 0
	if *maxSuppressed >= 0 && len(rep.Suppressed) > *maxSuppressed {
		fmt.Fprintf(os.Stderr, "repolint: suppression budget exceeded: %d //mlvlsi:allow exceptions (budget %d); fix the findings instead of waiving them\n",
			len(rep.Suppressed), *maxSuppressed)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}

func emitText(rep analyze.Report) {
	for _, f := range rep.Findings {
		fmt.Printf("%s:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
	}
	for _, f := range rep.Suppressed {
		fmt.Fprintf(os.Stderr, "repolint: suppressed: %s:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
	}
	fmt.Fprintf(os.Stderr, "repolint: %d findings, %d suppressed\n", len(rep.Findings), len(rep.Suppressed))
}

// jsonFinding is the -json wire shape of one finding.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

func emitJSON(rep analyze.Report) {
	out := make([]jsonFinding, 0, len(rep.Findings)+len(rep.Suppressed))
	add := func(fs []Finding) {
		for _, f := range fs {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line,
				Analyzer: f.Analyzer, Message: f.Message, Suppressed: f.Suppressed,
			})
		}
	}
	add(rep.Findings)
	add(rep.Suppressed)
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		cli.Failf("repolint: %v", err)
	}
	os.Stdout.Write(append(buf, '\n'))
}

// Finding aliases the analyzer's finding type for the JSON emitter.
type Finding = analyze.Finding
