// Command benchjson runs the tier-1 verifier and builder benchmarks through
// testing.Benchmark and writes the results as a JSON trajectory file, one
// record per benchmark:
//
//	{"bench": "check/serial", "ns_op": ..., "allocs_op": ..., "bytes_op": ..., "workers": 0}
//
// The committed BENCH_<n>.json files at the repo root are such snapshots,
// one per PR that moved the numbers; CI runs `benchjson -quick` as a smoke
// test and uploads the result as an artifact (numbers from shared runners
// are noisy, so nothing gates on them). The *-sparse records force the
// retained map-based checker (DenseLimit < 0), which doubles as the
// pre-dense baseline, so every snapshot carries its own before/after pair.
//
// Since BENCH_8 the build records measure a prebuilt spec (spec assembly is
// cheap and identical on both paths), and "build/hypercube" is the arena
// build — a reused scratch, the production configuration of the batch APIs
// and the daemon — while "build/hypercube-legacy" keeps the allocating map
// path as the in-snapshot baseline. Earlier snapshots' "build/hypercube"
// was the map path including spec assembly, so compare those against
// today's -legacy record. The batch/* pair measures the same 64 mixed
// requests through BuildBatch (one shared scratch) and through sequential
// BuildSpec calls.
//
// Since BENCH_10 the memceil/* records track the ROADMAP's memory-ceiling
// story: for each hypercube dimension, one dense verify and one tiled
// verify under a ceiling a quarter of the dense working set, with BytesOp
// carrying the peak occupancy working set rather than allocator traffic.
// Dimensions whose dense bitsets no longer fit an 8 GiB cap appear with
// the tiled record only — that infeasibility is the point of the ladder's
// tiled rung.
//
// Output selection: -out names the file explicitly; otherwise -pr N writes
// BENCH_N.json, and with neither flag the tool refreshes the
// highest-numbered BENCH_<n>.json already present (BENCH_1.json in an
// empty tree).
//
// -merge appends records from other JSON files in the same schema — in
// particular cmd/loadgen's -out files, whose rate and error-breakdown
// records become part of the committed snapshot this way — and -norun skips
// the benchmark runs entirely, emitting only the merged records (how
// BENCH_7.json collects the clean and chaos loadgen runs).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"mlvlsi"
	"mlvlsi/internal/core"
	"mlvlsi/internal/grid"
	"mlvlsi/internal/obs"
)

// Record is one benchmark measurement. Workers is 0 for serial benchmarks.
// The phase/* and counters records come from one observed build+verify run
// (not a testing.Benchmark loop): phase records carry the span duration in
// NsOp, and the counters record carries the full observability counter
// snapshot keyed by counter name.
type Record struct {
	Bench    string           `json:"bench"`
	NsOp     float64          `json:"ns_op"`
	AllocsOp int64            `json:"allocs_op"`
	BytesOp  int64            `json:"bytes_op"`
	Workers  int              `json:"workers"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// fileList collects a repeatable flag.
type fileList []string

func (f *fileList) String() string     { return strings.Join(*f, ",") }
func (f *fileList) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	out := flag.String("out", "", "output file ('-' for stdout; default derived from -pr or existing snapshots)")
	pr := flag.Int("pr", 0, "PR number: write BENCH_<pr>.json unless -out is set")
	quick := flag.Bool("quick", false, "run a small instance once (CI smoke test)")
	norun := flag.Bool("norun", false, "skip the benchmark runs; emit only -merge records")
	var merges fileList
	flag.Var(&merges, "merge", "append records from this benchjson/loadgen JSON file (repeatable); loadgen's breakdown and rate records land in the snapshot this way")
	flag.Parse()
	if *out == "" {
		*out = deriveOut(*pr)
	}
	merged, err := mergeRecords(merges)
	if err != nil {
		fatal(err)
	}
	if *norun {
		if len(merged) == 0 {
			fatal("-norun with nothing to -merge would write an empty snapshot")
		}
		writeOut(*out, merged)
		return
	}

	// The full workload matches bench_test.go: the 12-cube at L=4 for the
	// checkers, the 10-cube for the builders. -quick drops to an 8-cube so a
	// complete run fits in a CI smoke budget.
	checkDim, buildDim := 12, 10
	if *quick {
		checkDim, buildDim = 8, 6
	}
	lay, err := core.Hypercube(checkDim, 4, 0, 0)
	if err != nil {
		fatal(err)
	}
	opts := grid.CheckOptions{Layers: lay.L, Discipline: true, Nodes: lay.Nodes}
	sparse := opts
	sparse.DenseLimit = -1

	var records []Record
	run := func(name string, workers int, fn func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		rec := Record{
			Bench:    name,
			NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: int64(r.AllocsPerOp()),
			BytesOp:  int64(r.AllocedBytesPerOp()),
			Workers:  workers,
		}
		records = append(records, rec)
		fmt.Fprintf(os.Stderr, "%-28s %14.0f ns/op %10d B/op %8d allocs/op\n",
			name, rec.NsOp, rec.BytesOp, rec.AllocsOp)
	}
	checkSerial := func(o grid.CheckOptions) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := grid.Check(lay.Wires, o); len(v) > 0 {
					fatal(v[0])
				}
			}
		}
	}
	checkParallel := func(o grid.CheckOptions, workers int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := grid.CheckParallel(lay.Wires, o, workers); len(v) > 0 {
					fatal(v[0])
				}
			}
		}
	}
	buildSpec := core.HypercubeSpec(buildDim, 4, 0)
	scratch := core.NewBuildScratch()
	build := func(workers int, sc *core.BuildScratch) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := buildSpec
				s.Workers = workers
				s.Scratch = sc
				if _, err := core.Build(s); err != nil {
					fatal(err)
				}
			}
		}
	}
	nBatch := 64
	if *quick {
		nBatch = 16
	}
	reqs := batchRequests(nBatch)
	batchBuild := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range mlvlsi.BuildBatch(context.Background(), reqs, mlvlsi.BatchOptions{Workers: workers}) {
					if r.Err != nil {
						fatal(r.Err)
					}
				}
			}
		}
	}
	batchSequential := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, req := range reqs {
					req.Workers = workers
					if _, err := mlvlsi.BuildSpec(context.Background(), req); err != nil {
						fatal(err)
					}
				}
			}
		}
	}

	run("check/serial", 0, checkSerial(opts))
	run("check/serial-sparse", 0, checkSerial(sparse))
	for _, w := range []int{1, 4} {
		run("check/parallel", w, checkParallel(opts, w))
		run("check/parallel-sparse", w, checkParallel(sparse, w))
	}
	run("build/hypercube", 1, build(1, scratch))
	run("build/hypercube", 4, build(4, scratch))
	run("build/hypercube-legacy", 1, build(1, nil))
	run("build/hypercube-legacy", 4, build(4, nil))
	for _, w := range []int{1, 4} {
		run("batch/sequential", w, batchSequential(w))
		run("batch/build", w, batchBuild(w))
	}
	records = append(records, observed(buildDim)...)
	memDims := []int{12, 14, 16, 18}
	if *quick {
		memDims = []int{8}
	}
	records = append(records, memCeiling(memDims)...)
	records = append(records, merged...)
	writeOut(*out, records)
}

// memCeiling measures the ROADMAP memory-ceiling story: for each hypercube
// dimension, one observed dense verify and one tiled verify under a ceiling
// a quarter of the dense working set, both at L=4 and four workers. NsOp is
// the single run's verify wall time; BytesOp the peak occupancy working set
// — dense: shards × bitset bytes (the CellsAllocated counter), tiled: the
// tile_bytes_peak gauge. Dimensions whose dense working set would exceed
// eight GiB skip the dense run (that infeasibility is the point of the
// tiled rung) and contribute only the tiled record, with the estimate
// logged to stderr.
func memCeiling(dims []int) []Record {
	const workers = 4
	const denseCap = int64(8) << 30
	var records []Record
	for _, dim := range dims {
		lay, err := core.Hypercube(dim, 4, 0, 0)
		if err != nil {
			fatal(err)
		}
		opts := grid.CheckOptions{Layers: lay.L, Discipline: true, Nodes: lay.Nodes, Workers: workers}
		shards := int64(workers)
		if mp := int64(runtime.GOMAXPROCS(0)); mp < shards {
			shards = mp
		}
		b := grid.Wires(lay.Wires).Bounds()
		cells := 3 * int64(b.Width()+1) * int64(b.Height()+1) * int64(b.MaxZ-b.MinZ+1)
		denseEst := (cells + 63) / 64 * 8 * shards

		verify := func(kind string, tileBytes int) (int64, obs.Metrics) {
			ob := obs.New()
			run := opts
			run.Observer = ob
			run.TileBytes = tileBytes
			start := time.Now()
			v, err := grid.Verify(nil, lay.Wires, run)
			if err != nil {
				fatal(err)
			}
			if len(v) > 0 {
				fatal(v[0])
			}
			fmt.Fprintf(os.Stderr, "memceil/hypercube%d/%s done in %v\n", dim, kind, time.Since(start).Round(time.Millisecond))
			return time.Since(start).Nanoseconds(), ob.Snapshot()
		}

		if denseEst <= denseCap {
			ns, m := verify("dense", 0)
			if m.Get(obs.DenseChecks) == 0 {
				fatal(fmt.Sprintf("hypercube%d: dense rung did not engage", dim))
			}
			denseBytes := (m.Get(obs.CellsAllocated) + 63) / 64 * 8 * m.Get(obs.WorkerCount)
			records = append(records, Record{
				Bench: fmt.Sprintf("memceil/hypercube%d/dense", dim),
				NsOp:  float64(ns), BytesOp: denseBytes, Workers: workers,
			})
		} else {
			fmt.Fprintf(os.Stderr, "memceil/hypercube%d/dense skipped: ~%d MiB working set over the %d MiB cap\n",
				dim, denseEst>>20, denseCap>>20)
		}

		ns, m := verify("tiled", int(denseEst/4))
		if m.Get(obs.TiledChecks) != 1 {
			fatal(fmt.Sprintf("hypercube%d: ceiling %d did not engage the tiled rung", dim, denseEst/4))
		}
		records = append(records, Record{
			Bench: fmt.Sprintf("memceil/hypercube%d/tiled", dim),
			NsOp:  float64(ns), BytesOp: m.Get(obs.TileBytesPeak), Workers: workers,
			Counters: map[string]int64{
				"tiles_checked":           m.Get(obs.TilesChecked),
				"border_edges_reconciled": m.Get(obs.BorderEdgesReconciled),
			},
		})
	}
	return records
}

// batchRequests generates n distinct build requests: eight families crossed
// with two sizes of their leading parameter, two layer counts, and folded
// rows on or off, so the batch pair measures mixed shapes rather than one
// cached geometry rebuilt n times.
func batchRequests(n int) []mlvlsi.BuildRequest {
	type variant struct {
		family string
		param  string
		sizes  [2]int
	}
	variants := []variant{
		{"hypercube", "n", [2]int{4, 5}},
		{"kary", "k", [2]int{3, 4}},
		{"mesh", "n", [2]int{3, 4}},
		{"ccc", "n", [2]int{3, 4}},
		{"folded", "n", [2]int{4, 5}},
		{"enhanced", "n", [2]int{4, 5}},
		{"ghc", "r", [2]int{3, 4}},
		{"rh", "n", [2]int{4, 8}},
	}
	reqs := make([]mlvlsi.BuildRequest, n)
	for i := range reqs {
		v := variants[i%len(variants)]
		r := mlvlsi.BuildRequest{Family: mlvlsi.FamilySpec{
			Name:   v.family,
			Params: map[string]int{v.param: v.sizes[(i/len(variants))%2]},
		}}
		if (i/(2*len(variants)))%2 == 1 {
			r.Layers = 4
		}
		if (i/(4*len(variants)))%2 == 1 {
			r.FoldedRows = true
		}
		reqs[i] = r
	}
	return reqs
}

// mergeRecords reads each file as a benchjson-schema record list (loadgen's
// -out files use the same shape) and concatenates them in argument order.
func mergeRecords(files []string) ([]Record, error) {
	var all []Record
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var recs []Record
		if err := json.Unmarshal(data, &recs); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		all = append(all, recs...)
	}
	return all, nil
}

func writeOut(out string, records []Record) {
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// observed runs one instrumented build+verify of the buildDim hypercube at
// Workers=4 and folds the observability layer's output into the snapshot:
// one phase/<name> record per pipeline phase span (duration in ns_op) and a
// final counters record with the full counter snapshot.
func observed(buildDim int) []Record {
	const workers = 4
	sink := obs.NewMetricsSink()
	ob := obs.New(sink)
	spec := core.HypercubeSpec(buildDim, 4, 0)
	spec.Workers = workers
	spec.Obs = ob
	lay, err := core.Build(spec)
	if err != nil {
		fatal(err)
	}
	if v, err := lay.VerifyObserved(nil, workers, 0, ob); err != nil {
		fatal(err)
	} else if len(v) > 0 {
		fatal(v[0])
	}
	m := ob.Flush()

	var records []Record
	for _, phase := range []string{"placement", "routing", "realization", "verify"} {
		rec, ok := sink.Span(phase)
		if !ok {
			fatal(fmt.Sprintf("observed run produced no %q span", phase))
		}
		records = append(records, Record{
			Bench:   "phase/" + phase,
			NsOp:    float64(rec.Dur.Nanoseconds()),
			Workers: workers,
		})
		fmt.Fprintf(os.Stderr, "%-28s %14.0f ns (one observed run)\n",
			"phase/"+phase, float64(rec.Dur.Nanoseconds()))
	}
	counters := make(map[string]int64, obs.NumCounters)
	for c := obs.Counter(0); int(c) < obs.NumCounters; c++ {
		counters[c.String()] = m.Get(c)
		fmt.Fprintf(os.Stderr, "%-28s %14d\n", "counter/"+c.String(), m.Get(c))
	}
	records = append(records, Record{Bench: "counters", Workers: workers, Counters: counters})
	return records
}

// deriveOut picks the snapshot filename when -out is not given: BENCH_<pr>.json
// for an explicit PR number, otherwise the highest-numbered BENCH_<n>.json in
// the current directory (so a bare rerun refreshes the latest snapshot rather
// than silently clobbering an older one), or BENCH_1.json if none exist yet.
func deriveOut(pr int) string {
	if pr > 0 {
		return fmt.Sprintf("BENCH_%d.json", pr)
	}
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		fatal(err)
	}
	best := 0
	for _, m := range matches {
		num := strings.TrimSuffix(strings.TrimPrefix(m, "BENCH_"), ".json")
		if n, err := strconv.Atoi(num); err == nil && n > best {
			best = n
		}
	}
	if best == 0 {
		best = 1
	}
	return fmt.Sprintf("BENCH_%d.json", best)
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "benchjson:", v)
	os.Exit(1)
}
