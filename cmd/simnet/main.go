// Command simnet sweeps the wire-delay simulator over layer counts,
// traffic patterns, and switching disciplines for one network, printing a
// latency table — the tool behind the paper's §2.2 performance story.
// With -faults it degrades the network first (dead nodes and links,
// explicit or seeded-random) and adds a dropped-traffic column.
//
//	simnet -network hypercube -n 8 -L 2,4,8 -flits 4
//	simnet -network kary -k 4 -n 2 -faults "random-links=3;seed=9"
//	simnet -network butterfly -params m=4 -faults "nodes=0,5"
package main

import (
	"fmt"
	"strings"

	"flag"

	"mlvlsi"
	"mlvlsi/internal/cli"
)

// primaryParam names the registry parameter the legacy -n flag feeds for
// each family (the historical behavior for the four originally supported
// networks, extended registry-wide).
func primaryParam(family string) string {
	for _, f := range mlvlsi.Families() {
		if f.Name != family {
			continue
		}
		for _, want := range []string{"n", "m", "levels"} {
			for _, p := range f.Params {
				if p.Name == want {
					return p.Name
				}
			}
		}
	}
	return ""
}

func main() {
	network := flag.String("network", "hypercube", strings.Join(cli.FamilyNames(), " | "))
	n := flag.Int("n", 8, "primary size parameter (dimension / m / levels)")
	k := flag.Int("k", 4, "radix for kary")
	params := flag.String("params", "", "comma-separated name=value family parameters (override -n/-k)")
	layersCSV := flag.String("L", "2,4,8", "comma-separated wiring layer counts")
	velocity := flag.Int("velocity", 1, "grid units per cycle")
	flits := flag.Int("flits", 1, "message length in flits")
	seed := flag.Uint64("seed", 7, "traffic seed")
	faults := flag.String("faults", "", `degrade the network first, e.g. "nodes=0,5;links=0-1;random-links=3;seed=9"`)
	workers := flag.Int("workers", 0, "parallel build/verify workers (0 = GOMAXPROCS, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort build and verify after this long (0 = no deadline)")
	tracePath := flag.String("trace", "", "write a Chrome-trace (chrome://tracing) span file of the build and verify phases")
	flag.Parse()

	if err := cli.CheckFamily(*network); err != nil {
		cli.Usagef("-network: %v", err)
	}
	layers, err := cli.ParseInts("-L", *layersCSV)
	if err != nil {
		cli.Usagef("%v", err)
	}
	plan, err := cli.ParseFaultPlan(*faults)
	if err != nil {
		cli.Usagef("%v", err)
	}

	p := map[string]int{}
	if prim := primaryParam(*network); prim != "" {
		p[prim] = *n
	}
	if *network == "kary" || *network == "ghc" || *network == "clusterc" {
		p["k"] = *k
	}
	override, err := cli.ParseParams("-params", *params)
	if err != nil {
		cli.Usagef("%v", err)
	}
	for name, v := range override {
		p[name] = v
	}

	ctx, cancel := cli.Timeout(*timeout)
	defer cancel()
	obsv, traceDone, err := cli.Trace(*tracePath)
	if err != nil {
		cli.Usagef("%v", err)
	}

	options := func(l int) mlvlsi.Options {
		o := mlvlsi.Options{Layers: l, Workers: *workers, Context: ctx, Observer: obsv}
		if *network == "kary" {
			o.FoldedRows = true
		}
		return o
	}
	build := func(l int) (*mlvlsi.Layout, error) {
		return mlvlsi.BuildFamily(mlvlsi.FamilySpec{Name: *network, Params: p}, options(l))
	}

	fmt.Printf("%3s  %-14s  %-17s  %9s  %8s  %11s  %8s\n",
		"L", "pattern", "switching", "delivered", "dropped", "avg-latency", "makespan")
	for _, l := range layers {
		lay, err := build(l)
		if err != nil {
			cli.Failf("L=%d: %v", l, err)
		}
		v, err := mlvlsi.VerifyLayout(lay, options(l))
		if err != nil {
			cli.Failf("L=%d: verify: %v", l, err)
		}
		if len(v) > 0 {
			cli.Failf("L=%d: illegal layout: %v", l, v[0])
		}
		for _, pattern := range []mlvlsi.SimPattern{mlvlsi.Permutation, mlvlsi.BitComplement} {
			for _, sw := range []mlvlsi.SimSwitching{mlvlsi.StoreAndForward, mlvlsi.CutThrough} {
				res := mlvlsi.Simulate(lay, mlvlsi.SimConfig{
					Pattern: pattern, Velocity: *velocity,
					Switching: sw, Flits: *flits, Seed: *seed,
					Faults: plan,
				})
				fmt.Printf("%3d  %-14s  %-17s  %9d  %8d  %11.1f  %8d\n",
					l, pattern, sw, res.Delivered, res.Dropped, res.AvgLatency, res.Makespan)
			}
		}
	}
	if err := traceDone(); err != nil {
		cli.Failf("%v", err)
	}
}
