// Command simnet sweeps the wire-delay simulator over layer counts,
// traffic patterns, and switching disciplines for one network, printing a
// latency table — the tool behind the paper's §2.2 performance story.
//
//	simnet -network hypercube -n 8 -L 2,4,8 -flits 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mlvlsi"
)

func main() {
	network := flag.String("network", "hypercube", "hypercube | kary | ccc | butterfly")
	n := flag.Int("n", 8, "dimension / m")
	k := flag.Int("k", 4, "radix for kary")
	layersCSV := flag.String("L", "2,4,8", "comma-separated wiring layer counts")
	velocity := flag.Int("velocity", 1, "grid units per cycle")
	flits := flag.Int("flits", 1, "message length in flits")
	seed := flag.Uint64("seed", 7, "traffic seed")
	workers := flag.Int("workers", 0, "parallel build/verify workers (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	var layers []int
	for _, s := range strings.Split(*layersCSV, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -L:", err)
			os.Exit(2)
		}
		layers = append(layers, v)
	}

	// Families resolve through the mlvlsi registry; the historical -n flag
	// feeds each family's primary parameter.
	build := func(l int) (*mlvlsi.Layout, error) {
		o := mlvlsi.Options{Layers: l, Workers: *workers}
		switch *network {
		case "hypercube", "ccc":
			return mlvlsi.BuildFamily(mlvlsi.FamilySpec{Name: *network, Params: map[string]int{"n": *n}}, o)
		case "kary":
			o.FoldedRows = true
			return mlvlsi.BuildFamily(mlvlsi.FamilySpec{Name: "kary", Params: map[string]int{"k": *k, "n": *n}}, o)
		case "butterfly":
			return mlvlsi.BuildFamily(mlvlsi.FamilySpec{Name: "butterfly", Params: map[string]int{"m": *n}}, o)
		}
		return nil, fmt.Errorf("unknown network %q", *network)
	}

	fmt.Printf("%3s  %-14s  %-17s  %9s  %11s  %8s\n",
		"L", "pattern", "switching", "delivered", "avg-latency", "makespan")
	for _, l := range layers {
		lay, err := build(l)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if v := lay.VerifyWorkers(*workers); len(v) > 0 {
			fmt.Fprintf(os.Stderr, "L=%d: illegal layout: %v\n", l, v[0])
			os.Exit(1)
		}
		for _, pattern := range []mlvlsi.SimPattern{mlvlsi.Permutation, mlvlsi.BitComplement} {
			for _, sw := range []mlvlsi.SimSwitching{mlvlsi.StoreAndForward, mlvlsi.CutThrough} {
				res := mlvlsi.Simulate(lay, mlvlsi.SimConfig{
					Pattern: pattern, Velocity: *velocity,
					Switching: sw, Flits: *flits, Seed: *seed,
				})
				fmt.Printf("%3d  %-14s  %-17s  %9d  %11.1f  %8d\n",
					l, pattern, sw, res.Delivered, res.AvgLatency, res.Makespan)
			}
		}
	}
}
