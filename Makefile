GO ?= go

.PHONY: all vet build test race bench chaos fuzz check clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with parallel paths (the par worker
# pool, the sharded grid checker, the parallel realize loop, the routing
# sweeps) plus everything else under internal/.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Chaos sweep: corrupt every registry family with every fault class and
# require both verifiers to catch each corruption, under the race detector.
chaos:
	$(GO) test -race -run 'TestChaos|TestCancel|TestBudget|TestBuildContains|TestDegraded' -v .
	$(GO) test -race ./internal/fault/

# Short fuzz smoke over the differential checker oracle.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz FuzzCheckDifferential -fuzztime $(FUZZTIME) ./internal/fault/

check: vet build test race

clean:
	$(GO) clean ./...
