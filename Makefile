GO ?= go

.PHONY: all vet build test race bench benchjson chaos fuzz check clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with parallel paths (the par worker
# pool, the sharded grid checker, the parallel realize loop, the routing
# sweeps) plus everything else under internal/.
race:
	$(GO) test -race ./internal/...

# -count=3 repeats each benchmark so run-to-run noise is visible in the
# output; pipe through benchstat externally if you want summaries.
bench:
	$(GO) test -bench . -benchmem -count=3 -run '^$$' .

# Regenerate the committed benchmark trajectory (BENCH_3.json). CI runs the
# same tool with -quick as a smoke test.
benchjson:
	$(GO) run ./cmd/benchjson -out BENCH_3.json

# Chaos sweep: corrupt every registry family with every fault class and
# require both verifiers to catch each corruption, under the race detector.
chaos:
	$(GO) test -race -run 'TestChaos|TestCancel|TestBudget|TestBuildContains|TestDegraded' -v .
	$(GO) test -race ./internal/fault/

# Short fuzz smoke over the differential checker oracle.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz FuzzCheckDifferential -fuzztime $(FUZZTIME) ./internal/fault/

check: vet build test race

clean:
	$(GO) clean ./...
