GO ?= go

.PHONY: all vet build test race bench check clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with parallel paths (the par worker
# pool, the sharded grid checker, the parallel realize loop, the routing
# sweeps) plus everything else under internal/.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

check: vet build test race

clean:
	$(GO) clean ./...
