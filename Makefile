GO ?= go

.PHONY: all vet build test race lint bench benchjson trace-smoke verify-smoke serve-smoke soak-smoke loadgen chaos fuzz check clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole module: the internal packages with
# parallel paths (the par worker pool, the sharded grid checker, the
# parallel realize loop, the routing sweeps) AND the root-package chaos,
# integration, and dense-diff tests, which exercise the same machinery end
# to end. Benchmarks don't run without -bench, so no -run filter is needed;
# the full pass is under a minute.
race:
	$(GO) test -race ./...

# Domain static analysis: go vet plus the repo's own invariant analyzers
# (see internal/analyze and `go run ./cmd/repolint -list`). Fails on any
# active finding; //mlvlsi:allow exceptions are reported on stderr and
# budgeted at 3 module-wide — more than that fails the lint too, so
# suppressions stay rare, visible, and individually justified.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/repolint -max-suppressed 3 ./...

# -count=3 repeats each benchmark so run-to-run noise is visible in the
# output; pipe through benchstat externally if you want summaries.
bench:
	$(GO) test -bench . -benchmem -count=3 -run '^$$' .

# Regenerate the committed benchmark trajectory. `make benchjson PR=4`
# writes BENCH_4.json; without PR= the tool overwrites the highest-numbered
# BENCH_<n>.json already present (the latest committed snapshot). CI runs
# the same tool with -quick as a smoke test.
PR ?=
benchjson:
	$(GO) run ./cmd/benchjson $(if $(PR),-pr $(PR))

# Observability smoke: build and verify a layout with -trace, then validate
# the Chrome-trace file against the schema tracelint enforces (span events
# with resolvable parents plus a complete counter snapshot).
TRACE ?= /tmp/mlvlsi-trace-smoke.json
trace-smoke:
	$(GO) run ./cmd/layoutgen -network hypercube -n 6 -L 4 -trace $(TRACE) > /dev/null
	$(GO) run ./cmd/tracelint $(TRACE)

# Tiled-verifier smoke: build Hypercube(14) at L=4 and verify it under a
# deliberately small memory ceiling, then assert from the printed counters
# that the ladder really dropped to the tiled rung (tiles_checked > 0)
# instead of silently verifying dense. Guards the whole -verify-mem path
# end to end: flag parsing, BuildRequest plumbing, ladder selection, and
# the counter discipline the assertion reads.
verify-smoke:
	$(GO) run ./cmd/layoutgen -network hypercube -n 14 -L 4 -verify-mem 4m -counters | grep -E '^tiles_checked [1-9]'

# Serving smoke: an in-process layoutd driven over real HTTP — MISS then
# HIT on one content key under two request spellings, the typed param error
# envelope, and the cache counters in /metricsz.
serve-smoke:
	$(GO) run ./cmd/loadgen -smoke

# Network-chaos soak: the full resilience sweep — every fault class at a 20%
# injection rate through resilience.Client against the admission-queued
# server, >= 99% convergence, queue bound held, zero leaked goroutines —
# under the race detector.
soak-smoke:
	$(GO) test -race -count=1 -run 'TestChaosSweepConverges|TestCacheLeaderCancellation|TestPanicRecovery' ./internal/serve/

# Replay the mixed-family load sweep against an in-process server (clean,
# then under all-class network chaos) and refresh the committed serving
# trajectory (latency/throughput/hit-rate plus the error breakdown).
loadgen:
	$(GO) run ./cmd/loadgen -rates 100,300,1000,3000 -duration 3s -conns 2 -out /tmp/loadgen-clean.json
	$(GO) run ./cmd/loadgen -chaos all -chaos-rate 0.05 -rps 300 -duration 3s -conns 2 -out /tmp/loadgen-chaos.json
	$(GO) run ./cmd/benchjson -norun -pr 7 -merge /tmp/loadgen-clean.json -merge /tmp/loadgen-chaos.json

# Chaos sweep: corrupt every registry family with every fault class and
# require both verifiers to catch each corruption, under the race detector.
chaos:
	$(GO) test -race -run 'TestChaos|TestCancel|TestBudget|TestBuildContains|TestDegraded' -v .
	$(GO) test -race ./internal/fault/

# Short fuzz smoke over the differential checker oracle.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz FuzzCheckDifferential -fuzztime $(FUZZTIME) ./internal/fault/

check: vet build test race lint trace-smoke verify-smoke serve-smoke soak-smoke

clean:
	$(GO) clean ./...
