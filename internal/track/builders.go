package track

import "fmt"

// Path returns the collinear layout of an n-node path: every link between
// consecutive positions on a single track.
func Path(n int) *Collinear {
	c := &Collinear{Name: fmt.Sprintf("path(%d)", n), N: n}
	if n < 2 {
		return c
	}
	c.Tracks = 1
	for i := 0; i+1 < n; i++ {
		c.Edges = append(c.Edges, Edge{U: i, V: i + 1, Track: 0})
	}
	return c
}

// Ring returns the paper's 2-track collinear layout of a k-node ring
// (§3.1): neighbor links on track 0, the wraparound link on track 1.
// Ring(2) is a single link (a 2-node ring has one edge), Ring(1) is empty.
func Ring(k int) *Collinear {
	c := &Collinear{Name: fmt.Sprintf("ring(%d)", k), N: k}
	switch {
	case k < 2:
		return c
	case k == 2:
		c.Tracks = 1
		c.Edges = []Edge{{U: 0, V: 1, Track: 0}}
		return c
	}
	c.Tracks = 2
	for i := 0; i+1 < k; i++ {
		c.Edges = append(c.Edges, Edge{U: i, V: i + 1, Track: 0})
	}
	c.Edges = append(c.Edges, Edge{U: 0, V: k - 1, Track: 1})
	return c
}

// FoldedRing returns a collinear ring layout in the folded (interleaved)
// node order 0, k−1, 1, k−2, 2, …, so every ring link spans at most 2
// positions. This is the per-row/column folding the paper applies in §3.1 to
// cut the maximum wire length of k-ary n-cube layouts to O(N/(Lk²)). Track
// count is assigned greedily (2 for k >= 3).
func FoldedRing(k int) *Collinear {
	c := &Collinear{Name: fmt.Sprintf("foldedring(%d)", k), N: k}
	if k < 2 {
		return c
	}
	labels := make([]int, k)
	for p := 0; p < k; p++ {
		if p%2 == 0 {
			labels[p] = p / 2
		} else {
			labels[p] = k - 1 - p/2
		}
	}
	c.Labels = labels
	pos := make([]int, k)
	for p, l := range labels {
		pos[l] = p
	}
	addEdge := func(a, b int) {
		u, v := pos[a], pos[b]
		if u > v {
			u, v = v, u
		}
		c.Edges = append(c.Edges, Edge{U: u, V: v})
	}
	for i := 0; i+1 < k; i++ {
		addEdge(i, i+1)
	}
	if k > 2 {
		addEdge(0, k-1)
	}
	c.AssignGreedy()
	return c
}

// Complete returns the strictly optimal collinear layout of the N-node
// complete graph using ⌊N²/4⌋ tracks (§4.1, citing Yeh & Parhami [30]):
// every pair of positions is connected and tracks are assigned greedily,
// which meets the max-cut lower bound ⌊N²/4⌋ exactly.
func Complete(n int) *Collinear {
	c := &Collinear{Name: fmt.Sprintf("K%d", n), N: n}
	if n < 2 {
		return c
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			c.Edges = append(c.Edges, Edge{U: u, V: v})
		}
	}
	c.AssignGreedy()
	return c
}

// K2 is the 1-track layout of a single link.
func K2() *Collinear { return Ring(2) }

// C4 is the 2-track layout of a 4-cycle, the basic building block of the
// paper's ⌊2N/3⌋-track hypercube layout (§5.1, Fig. 4). Its labels are in
// Gray-code order so the cycle is exactly the 2-cube on binary labels.
func C4() *Collinear {
	c := Ring(4)
	c.Name = "2-cube"
	// Positions around the ring are 0,1,2,3; as 2-bit cube labels the ring
	// order is the Gray sequence 00,01,11,10.
	c.Labels = []int{0, 1, 3, 2}
	return c
}

// Product combines collinear layouts of factor graphs G and H into a
// collinear layout of the Cartesian product G×H, the paper's bottom-up step:
// interleave N_H copies of G at stride N_H (copy j holds the nodes whose
// H-coordinate is position j) and lay each group of N_H consecutive
// positions out as H on a shared bundle of tracks. Track count is
// N_H·tracks(G) + tracks(H). Labels compose: the node at position
// (pG, pH) gets label labelG(pG)·N_H + labelH(pH).
func Product(g, h *Collinear) *Collinear {
	n := g.N * h.N
	c := &Collinear{
		Name:   fmt.Sprintf("(%s)x(%s)", g.Name, h.Name),
		N:      n,
		Tracks: h.N*g.Tracks + h.Tracks,
	}
	// G-edges: copy j (j = H-position) keeps its own block of tracks, since
	// interleaved intervals of different copies overlap.
	for j := 0; j < h.N; j++ {
		base := j * g.Tracks
		for _, e := range g.Edges {
			c.Edges = append(c.Edges, Edge{
				U:     e.U*h.N + j,
				V:     e.V*h.N + j,
				Track: base + e.Track,
			})
		}
	}
	// H-edges: group i occupies positions [i·N_H, (i+1)·N_H); groups are
	// disjoint position ranges, so all groups share one bundle of tracks.
	hBase := h.N * g.Tracks
	for i := 0; i < g.N; i++ {
		off := i * h.N
		for _, e := range h.Edges {
			c.Edges = append(c.Edges, Edge{
				U:     off + e.U,
				V:     off + e.V,
				Track: hBase + e.Track,
			})
		}
	}
	if g.Labels != nil || h.Labels != nil {
		labels := make([]int, n)
		for pg := 0; pg < g.N; pg++ {
			for ph := 0; ph < h.N; ph++ {
				labels[pg*h.N+ph] = g.Label(pg)*h.N + h.Label(ph)
			}
		}
		c.Labels = labels
	}
	return c
}

// KAryNCube returns the paper's collinear layout of a k-ary n-cube with
// f_k(n) = 2(kⁿ−1)/(k−1) tracks (§3.1), built by n−1 applications of the
// product combinator to rings. If folded is true, folded rings are used
// instead, shortening every interval to O(k^{n-1}) at the cost of at most
// one extra track per dimension.
func KAryNCube(k, n int, folded bool) *Collinear {
	ring := func() *Collinear {
		if folded {
			return FoldedRing(k)
		}
		return Ring(k)
	}
	c := ring()
	for d := 1; d < n; d++ {
		c = Product(c, ring())
	}
	c.Name = fmt.Sprintf("%d-ary %d-cube", k, n)
	return c
}

// Hypercube returns the paper's ⌊2N/3⌋-track collinear layout of the binary
// n-cube (§5.1): 2-cubes (4-cycles, 2 tracks) are the base blocks, two
// dimensions are added per product step (f(n) = 4f(n−2)+2), with one final
// K2 step for odd n (f(n) = 2f(n−1)+1). Labels place nodes so the laid-out
// graph is exactly the hypercube on binary labels.
func Hypercube(n int) *Collinear {
	var c *Collinear
	switch {
	case n <= 0:
		return &Collinear{Name: "0-cube", N: 1}
	case n == 1:
		c = K2()
	default:
		c = C4()
		for d := 2; d+2 <= n; d += 2 {
			c = Product(c, C4())
		}
		if n%2 == 1 {
			c = Product(c, K2())
		}
	}
	c.Name = fmt.Sprintf("%d-cube", n)
	return c
}

// GeneralizedHypercube returns the collinear layout of an n-dimensional
// radix-(r_{n−1},…,r_0) generalized hypercube (§4.1): dimension i is a
// complete graph K_{r_i}, so f(n+1) = r_n·f(n) + ⌊r_n²/4⌋. radices[0] is the
// least significant dimension, matching the paper's digit order. The product
// is built most-significant-first so that position == mixed-radix value of
// the label.
func GeneralizedHypercube(radices []int) *Collinear {
	if len(radices) == 0 {
		return &Collinear{Name: "GHC()", N: 1}
	}
	c := Complete(radices[len(radices)-1])
	for i := len(radices) - 2; i >= 0; i-- {
		c = Product(c, Complete(radices[i]))
	}
	c.Name = fmt.Sprintf("GHC%v", radices)
	return c
}

// Multiply returns a copy of the layout with every link replicated m times
// on its own tracks (track count multiplies by m). This realizes quotient
// graphs with parallel links, e.g. the butterfly's generalized-hypercube
// quotient with 4 links per neighboring cluster pair (§4.2).
func Multiply(c *Collinear, m int) *Collinear {
	if m < 1 {
		m = 1
	}
	out := &Collinear{
		Name:   fmt.Sprintf("%dx(%s)", m, c.Name),
		N:      c.N,
		Tracks: c.Tracks * m,
	}
	if c.Labels != nil {
		out.Labels = append([]int(nil), c.Labels...)
	}
	for rep := 0; rep < m; rep++ {
		base := rep * c.Tracks
		for _, e := range c.Edges {
			out.Edges = append(out.Edges, Edge{U: e.U, V: e.V, Track: base + e.Track})
		}
	}
	return out
}

// TrackCountKAry is the paper's closed form f_k(n) = 2(kⁿ−1)/(k−1).
func TrackCountKAry(k, n int) int {
	p := 1
	for i := 0; i < n; i++ {
		p *= k
	}
	return 2 * (p - 1) / (k - 1)
}

// TrackCountHypercube is the paper's closed form ⌊2N/3⌋ with N = 2ⁿ.
func TrackCountHypercube(n int) int {
	if n <= 0 {
		return 0
	}
	return (2 << uint(n)) / 3
}

// TrackCountGHC is the paper's closed form (N−1)⌊r²/4⌋/(r−1) for a radix-r
// n-dimensional generalized hypercube.
func TrackCountGHC(r, n int) int {
	p := 1
	for i := 0; i < n; i++ {
		p *= r
	}
	return (p - 1) * (r * r / 4) / (r - 1)
}

// MeshCollinear returns the collinear layout of an n-dimensional mesh
// (dims[0] least significant) as a product of 1-track paths:
// f = Σ_i Π_{j<i} dims[j] − … following the combinator recurrence
// f(G×P) = N_P·f(G) + 1. Meshes are the paper's §3.2 warm-up product
// networks.
func MeshCollinear(dims []int) *Collinear {
	if len(dims) == 0 {
		return &Collinear{Name: "mesh()", N: 1}
	}
	c := Path(dims[len(dims)-1])
	for i := len(dims) - 2; i >= 0; i-- {
		c = Product(c, Path(dims[i]))
	}
	c.Name = fmt.Sprintf("mesh%v", dims)
	return c
}
