package track

import "fmt"

// FromGraph builds a collinear layout of an arbitrary graph: node with
// label l sits at position pos[l] (nil = identity placement), every link
// becomes an interval, and tracks are assigned greedily (optimal for the
// placement: track count equals the placement's max cut). This is the
// workhorse behind the Cayley-graph layouts the paper defers to
// "similar strategies" in §4.3 — those families are not Cartesian
// products, so their collinear layouts come from a placement plus optimal
// interval coloring rather than the product combinator.
func FromGraph(name string, n int, links [][2]int, pos []int) *Collinear {
	c := &Collinear{Name: name, N: n}
	if pos != nil {
		if len(pos) != n {
			panic(fmt.Sprintf("FromGraph(%s): pos has %d entries for n=%d", name, len(pos), n))
		}
		labels := make([]int, n)
		for l, p := range pos {
			labels[p] = l
		}
		c.Labels = labels
	}
	at := func(l int) int {
		if pos == nil {
			return l
		}
		return pos[l]
	}
	for _, lk := range links {
		u, v := at(lk[0]), at(lk[1])
		if u > v {
			u, v = v, u
		}
		if u == v {
			panic(fmt.Sprintf("FromGraph(%s): self-loop at %d", name, lk[0]))
		}
		c.Edges = append(c.Edges, Edge{U: u, V: v})
	}
	c.AssignGreedy()
	return c
}
