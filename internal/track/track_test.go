package track

import (
	"fmt"
	"testing"
	"testing/quick"
)

func mustVerify(t *testing.T, c *Collinear) {
	t.Helper()
	if err := c.Verify(); err != nil {
		t.Fatalf("Verify(%s): %v", c.Name, err)
	}
}

func TestPath(t *testing.T) {
	c := Path(5)
	mustVerify(t, c)
	if c.Tracks != 1 || len(c.Edges) != 4 {
		t.Errorf("path(5): tracks=%d edges=%d, want 1 and 4", c.Tracks, len(c.Edges))
	}
	if Path(1).Tracks != 0 {
		t.Error("path(1) should need no tracks")
	}
}

func TestRing(t *testing.T) {
	for k := 2; k <= 10; k++ {
		c := Ring(k)
		mustVerify(t, c)
		wantEdges := k
		wantTracks := 2
		if k == 2 {
			wantEdges, wantTracks = 1, 1
		}
		if len(c.Edges) != wantEdges || c.Tracks != wantTracks {
			t.Errorf("ring(%d): edges=%d tracks=%d, want %d and %d",
				k, len(c.Edges), c.Tracks, wantEdges, wantTracks)
		}
	}
}

func TestFoldedRing(t *testing.T) {
	for k := 2; k <= 12; k++ {
		c := FoldedRing(k)
		mustVerify(t, c)
		if got := c.MaxSpan(); k > 2 && got > 2 {
			t.Errorf("foldedring(%d): max span %d, want <= 2", k, got)
		}
		if k >= 3 && c.Tracks > 3 {
			t.Errorf("foldedring(%d): %d tracks, want <= 3", k, c.Tracks)
		}
		wantEdges := k
		if k == 2 {
			wantEdges = 1
		}
		if len(c.Edges) != wantEdges {
			t.Errorf("foldedring(%d): %d edges, want %d", k, len(c.Edges), wantEdges)
		}
		assertRingEdges(t, c, k)
	}
}

// assertRingEdges checks that the layout's edges, mapped through Labels,
// are exactly the ring edges {i, i+1 mod k}.
func assertRingEdges(t *testing.T, c *Collinear, k int) {
	t.Helper()
	seen := make(map[[2]int]bool)
	for _, e := range c.Edges {
		a, b := c.Label(e.U), c.Label(e.V)
		if a > b {
			a, b = b, a
		}
		seen[[2]int{a, b}] = true
	}
	for i := 0; i < k; i++ {
		j := (i + 1) % k
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		if a == b {
			continue
		}
		if !seen[[2]int{a, b}] {
			t.Errorf("ring(%d) layout missing edge {%d,%d}", k, a, b)
		}
	}
}

func TestCompleteTrackCount(t *testing.T) {
	for n := 2; n <= 40; n++ {
		c := Complete(n)
		mustVerify(t, c)
		want := n * n / 4
		if c.Tracks != want {
			t.Errorf("K%d: %d tracks, want ⌊N²/4⌋ = %d", n, c.Tracks, want)
		}
		if len(c.Edges) != n*(n-1)/2 {
			t.Errorf("K%d: %d edges, want %d", n, len(c.Edges), n*(n-1)/2)
		}
	}
}

func TestKAryNCubeTrackCount(t *testing.T) {
	for k := 2; k <= 8; k++ {
		for n := 1; n <= 4; n++ {
			c := KAryNCube(k, n, false)
			mustVerify(t, c)
			want := TrackCountKAry(k, n)
			// Ring(2) needs 1 track, not 2, so for k=2 the recurrence is
			// f(n) = 2f(n−1)+1 = 2ⁿ−1 instead of 2(2ⁿ−1).
			if k == 2 {
				want = 1<<uint(n) - 1
			}
			if c.Tracks != want {
				t.Errorf("%d-ary %d-cube: %d tracks, want %d", k, n, c.Tracks, want)
			}
			pow := 1
			for i := 0; i < n; i++ {
				pow *= k
			}
			if c.N != pow {
				t.Errorf("%d-ary %d-cube: N=%d, want %d", k, n, c.N, pow)
			}
			wantEdges := n * pow
			if k == 2 {
				wantEdges = n * pow / 2
			}
			if len(c.Edges) != wantEdges {
				t.Errorf("%d-ary %d-cube: %d edges, want %d", k, n, len(c.Edges), wantEdges)
			}
		}
	}
}

func TestKAryNCubeFoldedSpan(t *testing.T) {
	c := KAryNCube(6, 2, true)
	mustVerify(t, c)
	// Folded rings make the innermost dimension's intervals span at most
	// 2 positions and the outer dimension's at most 2*6.
	if got := c.MaxSpan(); got > 12 {
		t.Errorf("folded 6-ary 2-cube: max span %d, want <= 12", got)
	}
	unf := KAryNCube(6, 2, false)
	if unf.MaxSpan() <= c.MaxSpan() {
		t.Errorf("folding did not reduce span: folded %d, unfolded %d", c.MaxSpan(), unf.MaxSpan())
	}
}

func TestHypercubeTrackCount(t *testing.T) {
	for n := 1; n <= 14; n++ {
		c := Hypercube(n)
		mustVerify(t, c)
		if want := TrackCountHypercube(n); c.Tracks != want {
			t.Errorf("%d-cube: %d tracks, want ⌊2N/3⌋ = %d", n, c.Tracks, want)
		}
		if c.N != 1<<uint(n) {
			t.Errorf("%d-cube: N=%d, want %d", n, c.N, 1<<uint(n))
		}
		if want := n << uint(n-1); len(c.Edges) != want {
			t.Errorf("%d-cube: %d edges, want %d", n, len(c.Edges), want)
		}
	}
}

func TestHypercubeLabelsAreCubeEdges(t *testing.T) {
	for n := 1; n <= 8; n++ {
		c := Hypercube(n)
		for _, e := range c.Edges {
			a, b := c.Label(e.U), c.Label(e.V)
			x := a ^ b
			if x == 0 || x&(x-1) != 0 {
				t.Fatalf("%d-cube: edge labels %b and %b differ in %b, not one bit", n, a, b, x)
			}
		}
	}
}

func TestGeneralizedHypercubeTrackCount(t *testing.T) {
	for _, tc := range []struct {
		r, n int
	}{{3, 1}, {3, 2}, {3, 3}, {4, 2}, {5, 2}, {6, 2}, {4, 3}} {
		radices := make([]int, tc.n)
		for i := range radices {
			radices[i] = tc.r
		}
		c := GeneralizedHypercube(radices)
		mustVerify(t, c)
		if want := TrackCountGHC(tc.r, tc.n); c.Tracks != want {
			t.Errorf("GHC r=%d n=%d: %d tracks, want %d", tc.r, tc.n, c.Tracks, want)
		}
	}
}

func TestGeneralizedHypercubeMixedRadix(t *testing.T) {
	c := GeneralizedHypercube([]int{2, 3, 4})
	mustVerify(t, c)
	if c.N != 24 {
		t.Fatalf("GHC(2,3,4): N=%d, want 24", c.N)
	}
	// Every edge must connect labels differing in exactly one mixed-radix
	// digit. radices[0]=2 is the least significant digit, so the label
	// decomposes as l = d2·6 + d1·2 + d0 with d0 ∈ [0,2), d1 ∈ [0,3),
	// d2 ∈ [0,4).
	digits := func(l int) [3]int {
		return [3]int{l % 2, (l / 2) % 3, l / 6}
	}
	for _, e := range c.Edges {
		a, b := c.Label(e.U), c.Label(e.V)
		da, db := digits(a), digits(b)
		diff := 0
		for i := 0; i < 3; i++ {
			if da[i] != db[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("GHC(2,3,4): edge %d-%d differs in %d digits", a, b, diff)
		}
	}
}

func TestProductTrackFormula(t *testing.T) {
	g := Ring(5)
	h := Complete(4)
	p := Product(g, h)
	mustVerify(t, p)
	if want := h.N*g.Tracks + h.Tracks; p.Tracks != want {
		t.Errorf("product tracks = %d, want N_H·f(G)+f(H) = %d", p.Tracks, want)
	}
	if p.N != 20 {
		t.Errorf("product N = %d, want 20", p.N)
	}
	if want := 4*len(g.Edges) + 5*len(h.Edges); len(p.Edges) != want {
		t.Errorf("product edges = %d, want %d", len(p.Edges), want)
	}
}

func TestMultiply(t *testing.T) {
	c := Ring(6)
	m := Multiply(c, 4)
	mustVerify(t, m)
	if m.Tracks != 4*c.Tracks || len(m.Edges) != 4*len(c.Edges) {
		t.Errorf("multiply: tracks=%d edges=%d, want %d and %d",
			m.Tracks, len(m.Edges), 4*c.Tracks, 4*len(c.Edges))
	}
}

func TestMaxCutCompleteGraph(t *testing.T) {
	for n := 2; n <= 20; n++ {
		c := Complete(n)
		if got, want := c.MaxCut(), n*n/4; got != want {
			t.Errorf("K%d max cut = %d, want %d", n, got, want)
		}
	}
}

func TestCompactNeverWorse(t *testing.T) {
	layouts := []*Collinear{
		KAryNCube(4, 3, false),
		Hypercube(6),
		GeneralizedHypercube([]int{4, 4}),
		FoldedRing(9),
	}
	for _, c := range layouts {
		cc := c.Compact()
		mustVerify(t, cc)
		if cc.Tracks > c.Tracks {
			t.Errorf("%s: compact used %d tracks > structured %d", c.Name, cc.Tracks, c.Tracks)
		}
		if cc.Tracks != cc.MaxCut() {
			t.Errorf("%s: compact tracks %d != max cut %d (greedy should be optimal)",
				c.Name, cc.Tracks, cc.MaxCut())
		}
	}
}

func TestVerifyCatchesOverlap(t *testing.T) {
	c := &Collinear{Name: "bad", N: 4, Tracks: 1, Edges: []Edge{
		{U: 0, V: 2, Track: 0}, {U: 1, V: 3, Track: 0},
	}}
	if err := c.Verify(); err == nil {
		t.Error("overlapping intervals on one track not caught")
	}
	c2 := &Collinear{Name: "touch", N: 4, Tracks: 1, Edges: []Edge{
		{U: 0, V: 2, Track: 0}, {U: 2, V: 3, Track: 0},
	}}
	if err := c2.Verify(); err != nil {
		t.Errorf("touching intervals flagged: %v", err)
	}
}

func TestVerifyCatchesBadEdgesAndLabels(t *testing.T) {
	bad := []*Collinear{
		{Name: "range", N: 3, Tracks: 1, Edges: []Edge{{U: 0, V: 3, Track: 0}}},
		{Name: "order", N: 3, Tracks: 1, Edges: []Edge{{U: 2, V: 2, Track: 0}}},
		{Name: "track", N: 3, Tracks: 1, Edges: []Edge{{U: 0, V: 1, Track: 1}}},
		{Name: "labels", N: 3, Tracks: 0, Labels: []int{0, 0, 2}},
		{Name: "labellen", N: 3, Tracks: 0, Labels: []int{0, 1}},
	}
	for _, c := range bad {
		if err := c.Verify(); err == nil {
			t.Errorf("%s: expected verification failure", c.Name)
		}
	}
}

func TestPositionOfInvertsLabels(t *testing.T) {
	c := Hypercube(5)
	pos := c.PositionOf()
	for p := 0; p < c.N; p++ {
		if pos[c.Label(p)] != p {
			t.Fatalf("PositionOf does not invert Label at position %d", p)
		}
	}
}

// Property: for random products of rings and complete graphs, the combinator
// output verifies, has the predicted track count, and greedy compaction
// matches max cut.
func TestProductProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		k1 := 2 + int(a%5)
		k2 := 2 + int(b%5)
		k3 := 2 + int(c%4)
		g := Product(Ring(k1), Complete(k2))
		p := Product(g, Ring(k3))
		if err := p.Verify(); err != nil {
			return false
		}
		if p.Tracks != k3*g.Tracks+Ring(k3).Tracks {
			return false
		}
		cc := p.Compact()
		return cc.Verify() == nil && cc.Tracks == p.MaxCut()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: greedy assignment always equals max cut (optimality of interval
// coloring) on random interval sets.
func TestGreedyOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)*6364136223846793005 + 1442695040888963407
		next := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(n))
		}
		n := 4 + next(30)
		c := &Collinear{Name: "rand", N: n}
		m := 1 + next(60)
		for i := 0; i < m; i++ {
			u := next(n - 1)
			v := u + 1 + next(n-1-u)
			c.Edges = append(c.Edges, Edge{U: u, V: v})
		}
		c.AssignGreedy()
		return c.Verify() == nil && c.Tracks == c.MaxCut()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func ExampleKAryNCube() {
	c := KAryNCube(3, 2, false)
	fmt.Println(c.N, c.Tracks)
	// Output: 9 8
}

func ExampleHypercube() {
	c := Hypercube(4)
	fmt.Println(c.N, c.Tracks)
	// Output: 16 10
}

func TestMeshCollinear(t *testing.T) {
	c := MeshCollinear([]int{3, 4})
	mustVerify(t, c)
	if c.N != 12 {
		t.Fatalf("mesh(3,4) N=%d, want 12", c.N)
	}
	// f = N_P·f(path4) + f(path3) = 3·1 + 1 = 4 built most-significant
	// first: Product(Path(4), Path(3)): 3·1+1 = 4.
	if c.Tracks != 4 {
		t.Errorf("mesh(3,4) tracks = %d, want 4", c.Tracks)
	}
	if MeshCollinear(nil).N != 1 {
		t.Error("empty mesh should have one node")
	}
}
