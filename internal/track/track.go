// Package track implements the collinear (one-dimensional) layout model that
// underlies every construction in the paper: network nodes are placed along a
// line and each link occupies an interval on one of a number of horizontal
// tracks, with intervals on the same track having disjoint interiors.
//
// The package provides the base layouts the paper uses (rings, paths,
// complete graphs, 2-cubes), the generic product combinator
//
//	f(G×H) = N_H·f(G) + f(H)
//
// which reproduces the paper's recurrences — f_k(n) = 2(kⁿ−1)/(k−1) for k-ary
// n-cubes (§3.1), f_r(n) = (N−1)⌊r²/4⌋/(r−1) for generalized hypercubes
// (§4.1), and ⌊2N/3⌋ tracks for binary hypercubes (§5.1) — and a greedy
// interval-coloring re-compaction used both for optimal complete-graph
// layouts and as an ablation.
package track

import (
	"container/heap"
	"fmt"
	"sort"
)

// Edge is one link of a collinear layout: an interval [U, V] (U < V, node
// positions) assigned to a track.
type Edge struct {
	U, V  int
	Track int
}

// Collinear is a one-dimensional layout of a graph: N node positions on a
// line, Tracks horizontal tracks, and one interval per link. Labels, when
// non-nil, maps position -> node label in the underlying topology (identity
// when nil); it records placements such as the Gray-code order used by the
// hypercube construction or the folded order used to shorten torus wires.
type Collinear struct {
	Name   string
	N      int
	Tracks int
	Edges  []Edge
	Labels []int
}

// Label returns the topology label of the node at position pos.
func (c *Collinear) Label(pos int) int {
	if c.Labels == nil {
		return pos
	}
	return c.Labels[pos]
}

// PositionOf returns the inverse of Label: the position holding label l.
func (c *Collinear) PositionOf() []int {
	inv := make([]int, c.N)
	for p := 0; p < c.N; p++ {
		inv[c.Label(p)] = p
	}
	return inv
}

// MaxSpan returns the longest interval length, which bounds the longest
// trunk wire the layout produces.
func (c *Collinear) MaxSpan() int {
	m := 0
	for _, e := range c.Edges {
		if s := e.V - e.U; s > m {
			m = s
		}
	}
	return m
}

// Degree returns, for each position, the number of incident intervals.
func (c *Collinear) Degree() []int {
	deg := make([]int, c.N)
	for _, e := range c.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// MaxDegree returns the maximum position degree.
func (c *Collinear) MaxDegree() int {
	m := 0
	for _, d := range c.Degree() {
		if d > m {
			m = d
		}
	}
	return m
}

// Verify checks the collinear layout invariants: every edge has
// 0 <= U < V < N, a track in range, and intervals sharing a track have
// disjoint interiors (touching at endpoints is allowed: distinct node ports
// separate them in the 2-D realization). It also checks Labels is a
// permutation when present.
func (c *Collinear) Verify() error {
	perTrack := make(map[int][]Edge)
	for i, e := range c.Edges {
		if e.U < 0 || e.V >= c.N || e.U >= e.V {
			return fmt.Errorf("%s: edge %d has bad interval [%d,%d] for N=%d", c.Name, i, e.U, e.V, c.N)
		}
		if e.Track < 0 || e.Track >= c.Tracks {
			return fmt.Errorf("%s: edge %d track %d out of range [0,%d)", c.Name, i, e.Track, c.Tracks)
		}
		perTrack[e.Track] = append(perTrack[e.Track], e)
	}
	for t, edges := range perTrack {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].U != edges[j].U {
				return edges[i].U < edges[j].U
			}
			return edges[i].V < edges[j].V
		})
		for i := 1; i < len(edges); i++ {
			if edges[i].U < edges[i-1].V {
				return fmt.Errorf("%s: track %d intervals [%d,%d] and [%d,%d] overlap",
					c.Name, t, edges[i-1].U, edges[i-1].V, edges[i].U, edges[i].V)
			}
		}
	}
	if c.Labels != nil {
		if len(c.Labels) != c.N {
			return fmt.Errorf("%s: Labels has %d entries for N=%d", c.Name, len(c.Labels), c.N)
		}
		seen := make([]bool, c.N)
		for p, l := range c.Labels {
			if l < 0 || l >= c.N || seen[l] {
				return fmt.Errorf("%s: Labels is not a permutation (position %d -> %d)", c.Name, p, l)
			}
			seen[l] = true
		}
	}
	return nil
}

// MaxCut returns the congestion of the placement: the maximum, over the N−1
// gaps between adjacent positions, of the number of intervals crossing the
// gap. Any track assignment for this placement needs at least MaxCut tracks,
// and greedy coloring achieves exactly that (interval graphs are perfect).
func (c *Collinear) MaxCut() int {
	if c.N < 2 {
		return 0
	}
	diff := make([]int, c.N)
	for _, e := range c.Edges {
		diff[e.U]++
		diff[e.V]--
	}
	best, cur := 0, 0
	for g := 0; g < c.N-1; g++ {
		cur += diff[g]
		if cur > best {
			best = cur
		}
	}
	return best
}

// intervalHeap is a min-heap of (trackFreeAt, trackIndex).
type intervalHeap [][2]int

func (h intervalHeap) Len() int           { return len(h) }
func (h intervalHeap) Less(i, j int) bool { return h[i][0] < h[j][0] }
func (h intervalHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intervalHeap) Push(x any)        { *h = append(*h, x.([2]int)) }
func (h *intervalHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// AssignGreedy (re)assigns tracks to the layout's intervals using the
// classical greedy sweep, which is optimal for a fixed placement: the result
// uses exactly MaxCut() tracks. The placement (positions and labels) is
// unchanged.
func (c *Collinear) AssignGreedy() {
	idx := make([]int, len(c.Edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := c.Edges[idx[a]], c.Edges[idx[b]]
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		return ea.V < eb.V
	})
	var free intervalHeap
	nextTrack := 0
	for _, i := range idx {
		e := &c.Edges[i]
		if len(free) > 0 && free[0][0] <= e.U {
			slot := heap.Pop(&free).([2]int)
			e.Track = slot[1]
		} else {
			e.Track = nextTrack
			nextTrack++
		}
		heap.Push(&free, [2]int{e.V, e.Track})
	}
	c.Tracks = nextTrack
}

// Compact returns a copy of the layout re-colored greedily; its track count
// equals MaxCut(). Used as the ablation comparing the paper's structured
// track recurrences against per-instance optimal assignment.
func (c *Collinear) Compact() *Collinear {
	out := &Collinear{
		Name:   c.Name + "/compact",
		N:      c.N,
		Tracks: c.Tracks,
		Edges:  append([]Edge(nil), c.Edges...),
	}
	if c.Labels != nil {
		out.Labels = append([]int(nil), c.Labels...)
	}
	out.AssignGreedy()
	return out
}
