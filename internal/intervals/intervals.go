// Package intervals provides greedy interval-graph coloring in the
// half-position coordinate system shared by the layout engines: node
// position p maps to 2p and the channel beyond it to 2p+1. Touching
// endpoints are allowed at node (even) positions — distinct ports order the
// realized endpoints there — but not at channel (odd) positions, where both
// segments end at track-slot coordinates with no such ordering.
//
// Greedy coloring under this rule is optimal for a fixed placement: the
// track count equals the maximum number of intervals that overlap a point
// (with odd touch counted as overlap).
package intervals

import (
	"container/heap"
	"sort"
)

// Interval is a half-position interval with a caller-defined payload index.
type Interval struct {
	U, V int
	ID   int
}

type slot struct{ end, track int }

type slotHeap []slot

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i].end < h[j].end }
func (h slotHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)        { *h = append(*h, x.(slot)) }
func (h *slotHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Color assigns tracks greedily. The result slice is indexed like the
// input; the second return is the number of tracks used.
func Color(ivs []Interval) ([]int, int) {
	idx := make([]int, len(ivs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := ivs[idx[a]], ivs[idx[b]]
		if ia.U != ib.U {
			return ia.U < ib.U
		}
		return ia.V < ib.V
	})
	tracks := make([]int, len(ivs))
	var free slotHeap
	next := 0
	for _, i := range idx {
		iv := ivs[i]
		reuse := -1
		if len(free) > 0 {
			top := free[0]
			if top.end < iv.U || (top.end == iv.U && iv.U%2 == 0) {
				reuse = top.track
				heap.Pop(&free)
			}
		}
		if reuse < 0 {
			reuse = next
			next++
		}
		tracks[i] = reuse
		heap.Push(&free, slot{end: iv.V, track: reuse})
	}
	return tracks, next
}

// Congestion returns the coloring lower bound for the interval set: the
// maximum number of intervals covering any half-open unit gap, counting
// odd-position touches as overlap (matching Color's rule). Color always
// uses exactly this many tracks.
func Congestion(ivs []Interval) int {
	type ev struct {
		pos   int
		delta int
		order int // starts after ends at even positions, before at odd
	}
	var evs []ev
	for _, iv := range ivs {
		startOrder := 1
		if iv.U%2 == 1 {
			startOrder = -1 // odd touch counts as overlap: start before end
		}
		evs = append(evs, ev{iv.U, 1, startOrder})
		evs = append(evs, ev{iv.V, -1, 0})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].pos != evs[b].pos {
			return evs[a].pos < evs[b].pos
		}
		return evs[a].order < evs[b].order
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}
