package intervals

import (
	"testing"
	"testing/quick"
)

func TestColorBasics(t *testing.T) {
	ivs := []Interval{
		{U: 0, V: 4, ID: 0},
		{U: 4, V: 8, ID: 1}, // even touch: shares
		{U: 5, V: 9, ID: 2}, // overlaps 1
	}
	tracks, n := Color(ivs)
	if tracks[0] != tracks[1] {
		t.Errorf("even touch should share: %v", tracks)
	}
	if tracks[2] == tracks[1] || n != 2 {
		t.Errorf("overlap sharing or count wrong: %v, n=%d", tracks, n)
	}
}

func TestColorOddTouch(t *testing.T) {
	ivs := []Interval{
		{U: 1, V: 5, ID: 0},
		{U: 5, V: 9, ID: 1},
	}
	tracks, n := Color(ivs)
	if tracks[0] == tracks[1] || n != 2 {
		t.Errorf("odd touch must not share: %v", tracks)
	}
}

func TestCongestionMatchesColor(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)*0x9E3779B97F4A7C15 + 1
		next := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(n))
		}
		var ivs []Interval
		m := 1 + next(40)
		for i := 0; i < m; i++ {
			u := next(60)
			v := u + 1 + next(20)
			ivs = append(ivs, Interval{U: u, V: v, ID: i})
		}
		_, n := Color(ivs)
		return n == Congestion(ivs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestColorProducesValidAssignment(t *testing.T) {
	// No two intervals on one track may overlap (odd touches included).
	f := func(seed int64) bool {
		s := uint64(seed)*2654435761 + 7
		next := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(n))
		}
		var ivs []Interval
		m := 1 + next(50)
		for i := 0; i < m; i++ {
			u := next(40)
			v := u + 1 + next(15)
			ivs = append(ivs, Interval{U: u, V: v, ID: i})
		}
		tracks, _ := Color(ivs)
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if tracks[i] != tracks[j] {
					continue
				}
				a, b := ivs[i], ivs[j]
				if a.U > b.U {
					a, b = b, a
				}
				if b.U < a.V {
					return false
				}
				if b.U == a.V && b.U%2 == 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmpty(t *testing.T) {
	tracks, n := Color(nil)
	if len(tracks) != 0 || n != 0 {
		t.Error("empty input should use no tracks")
	}
	if Congestion(nil) != 0 {
		t.Error("empty congestion should be 0")
	}
}
