package core

// Geometry reports the planned dimensions of a layout before realization.
// The paper's closed-form areas (e.g. 16N²/(9L²) for hypercubes) count
// wiring tracks only, treating node squares as asymptotically negligible;
// ChannelWidth and ChannelHeight isolate that wiring contribution so
// experiments can compare leading constants without the O(N·d) node-area
// term that vanishes only as N → ∞.
type Geometry struct {
	// Side is the realized node square side.
	Side int
	// Rows, Cols echo the spec grid.
	Rows, Cols int
	// HSlots[i] is the per-layer track count of the channel above row i;
	// WSlots[j] likewise right of column j.
	HSlots, WSlots []int
	// Width and Height are the full planar extents including node squares
	// and inter-region gaps.
	Width, Height int
	// ChannelWidth = Σ WSlots and ChannelHeight = Σ HSlots: the
	// wiring-only extents the paper's formulas predict.
	ChannelWidth, ChannelHeight int
}

// ChannelArea is the wiring-only area ChannelWidth × ChannelHeight.
func (g Geometry) ChannelArea() int {
	return g.ChannelWidth * g.ChannelHeight
}

// Area is the full planar area Width × Height.
func (g Geometry) Area() int {
	return g.Width * g.Height
}

// Plan computes the geometry of a spec without realizing wires. It performs
// the same validation as Build.
func Plan(spec Spec) (Geometry, error) {
	_, geom, err := build(spec, false)
	return geom, err
}
