// Package core implements the paper's primary contribution: the orthogonal
// multilayer layout scheme (§2.4). Network nodes are arranged in a 2-D grid
// so that every link joins two nodes of the same row or the same column;
// each row (column) is routed as a collinear layout in the channel above
// (right of) it; and the horizontal and vertical track bundles are split
// across ⌈L/2⌉ odd and ⌊L/2⌋ even wiring layers respectively. The result is
// a fully realized, machine-verifiable layout.Layout.
//
// The engine accepts explicit per-channel edge lists, which makes it
// expressive enough for everything in the paper: uniform product networks
// (k-ary n-cubes, hypercubes, generalized hypercubes) via FromFactors;
// PN clusters laid out as in-row cluster strips (§2.3/§3.2) via the cluster
// package, including quotient links that attach to different cluster members
// at their two ends (bent edges); and the folded/enhanced hypercubes'
// diameter links (§5.3) as bent edges on dedicated tracks.
package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"

	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
)

// ChannelEdge is one link routed inside a single row or column channel.
// For a row edge, Index is the row and U < V are column positions; for a
// column edge, Index is the column and U < V are row positions. Track is an
// identifier in the direction's track namespace; two edges sharing (Index,
// Track) must have intervals with disjoint interiors.
type ChannelEdge struct {
	Index int
	U, V  int
	Track int
}

// BentEdge is a link between two arbitrary grid positions: it leaves the U
// node through a top port, runs along a horizontal track in the channel
// above URow (track id HTrack in the row-track namespace of that channel),
// turns onto a vertical track in the channel right of the V node's column
// (track id VTrack in that column's namespace), and enters the V node
// through a right port. Bent edges share row/column tracks with channel
// edges under the same interval-disjointness rule: the horizontal segment
// occupies columns [UCol, VCol+channel] and the vertical segment rows
// [URow+channel, VRow].
type BentEdge struct {
	URow, UCol int
	VRow, VCol int
	HTrack     int
	VTrack     int
}

// Spec describes an orthogonal multilayer layout instance.
type Spec struct {
	Name string
	// Rows × Cols node grid.
	Rows, Cols int
	// L is the number of wiring layers (>= 2).
	L int
	// NodeSide, when positive, fixes the node square side; it must be at
	// least the per-side port demand. Zero selects the smallest legal side,
	// the paper's "minimum size required to implement a node".
	NodeSide int
	// Workers bounds the fan-out of the parallel wire-realization loop:
	// 0 means GOMAXPROCS, 1 forces serial execution. Every worker count
	// produces byte-identical layouts — rows, columns and bent edges are
	// realized independently into preassigned wire slots.
	Workers int
	// Ctx, when non-nil, cancels the build cooperatively: the engine polls
	// it between phases and every few wires inside the realize loop, and an
	// expired context aborts the build with an error wrapping
	// par.ErrCanceled. Nil means no cancellation.
	Ctx context.Context
	// MaxCells, when positive, bounds the planned grid occupancy: the
	// number of grid vertices of the layout box across all layers,
	// (Width+1)·(Height+1)·(L+1). A plan over budget aborts with a
	// *layout.BudgetError before any wire is realized, so the overrun costs
	// geometry planning only. Zero means unlimited.
	MaxCells int
	// Obs, when non-nil, receives build telemetry: a "build" span with
	// placement, routing, and realization children plus the typed counters
	// (wires realized, cells planned, budget headroom, worker count). Nil —
	// the default — disables instrumentation entirely; the realize loop is
	// untouched either way, since spans and counters live on the phase
	// boundaries, not in per-wire code.
	Obs *obs.Observer
	// Label maps grid position to node label (a bijection onto
	// 0..Rows·Cols-1). Nil means row-major order.
	Label func(row, col int) int

	RowEdges []ChannelEdge
	ColEdges []ChannelEdge
	Bent     []BentEdge
}

// dedicatedBase starts the track-id range AddDedicatedBent allocates from;
// regular builders must keep their track ids below it.
const dedicatedBase = 1 << 30

// AddDedicatedBent appends a bent edge on fresh dedicated tracks (one new
// horizontal track in U's row channel, one new vertical track in V's column
// channel), the way §5.3 routes each folded-hypercube diameter link.
func (s *Spec) AddDedicatedBent(uRow, uCol, vRow, vCol int) {
	id := dedicatedBase + len(s.Bent)
	s.Bent = append(s.Bent, BentEdge{
		URow: uRow, UCol: uCol, VRow: vRow, VCol: vCol,
		HTrack: id, VTrack: id,
	})
}

// endRef identifies one wire end: kind 0 = row edge, 1 = column edge,
// 2 = bent edge U end, 3 = bent edge V end; idx indexes the respective
// slice and isV distinguishes the two ends of a channel edge.
type endRef struct {
	kind int
	idx  int
	isV  bool
}

type portItem struct {
	dir  int
	rank int
	ref  endRef
}

type key struct{ index, track int }

// Build realizes the spec as a concrete multilayer layout. The returned
// layout passes layout.Verify for every legal spec; Build itself validates
// spec-level invariants (ranges, track interval disjointness, port
// capacity). Robustness guarantees: an expired Spec.Ctx aborts the build
// with an error wrapping par.ErrCanceled, a plan over Spec.MaxCells returns
// a *layout.BudgetError, and a panic raised anywhere during the build —
// in a parallel realize worker or by a user-supplied Label closure — is
// returned as a *par.Panic error instead of crashing the process.
func Build(spec Spec) (lay *layout.Layout, err error) {
	defer func() {
		if v := recover(); v != nil {
			p, ok := v.(*par.Panic)
			if !ok {
				p = &par.Panic{Value: v, Stack: debug.Stack()}
			}
			lay, err = nil, p
		}
	}()
	lay, _, err = build(spec, true)
	if err != nil {
		lay = nil
	}
	return lay, err
}

func build(spec Spec, realize bool) (*layout.Layout, Geometry, error) {
	var geom Geometry
	if spec.Rows < 1 || spec.Cols < 1 {
		return nil, geom, fmt.Errorf("%s: grid %dx%d is empty", spec.Name, spec.Rows, spec.Cols)
	}
	if spec.L < 2 {
		return nil, geom, fmt.Errorf("%s: need at least 2 wiring layers, got %d", spec.Name, spec.L)
	}
	label := spec.Label
	if label == nil {
		label = func(r, c int) int { return r*spec.Cols + c }
	}
	if err := par.Canceled(spec.Ctx); err != nil {
		return nil, geom, err
	}
	root := spec.Obs.StartSpan("build")
	root.SetAttr("rows", int64(spec.Rows)).SetAttr("cols", int64(spec.Cols)).SetAttr("layers", int64(spec.L))
	defer root.End()

	// Placement phase: validate the node grid and edge lists, then derive
	// the per-node port demand and the node side. (Phase spans are ended on
	// the success path only; a failed build reports just the enclosing
	// "build" span.)
	place := root.Child("placement")
	n := spec.Rows * spec.Cols
	if err := checkLabels(spec, label, n); err != nil {
		return nil, geom, err
	}
	if err := checkEdges(&spec); err != nil {
		return nil, geom, err
	}
	if err := par.Canceled(spec.Ctx); err != nil {
		return nil, geom, err
	}

	// Port demand per node.
	top := make([]int, n)   // ports on the node's top edge
	right := make([]int, n) // ports on the node's right edge
	at := func(r, c int) int { return r*spec.Cols + c }
	for _, e := range spec.RowEdges {
		top[at(e.Index, e.U)]++
		top[at(e.Index, e.V)]++
	}
	for _, e := range spec.ColEdges {
		right[at(e.U, e.Index)]++
		right[at(e.V, e.Index)]++
	}
	for _, e := range spec.Bent {
		top[at(e.URow, e.UCol)]++
		right[at(e.VRow, e.VCol)]++
	}
	need := 1
	for i := 0; i < n; i++ {
		if top[i] > need {
			need = top[i]
		}
		if right[i] > need {
			need = right[i]
		}
	}
	side := spec.NodeSide
	if side == 0 {
		side = need
	} else if side < need {
		return nil, geom, fmt.Errorf("%s: node side %d < required port count %d", spec.Name, side, need)
	}
	place.End()

	// Routing phase: distribute tracks over layer groups and fix the grid
	// geometry.
	route := root.Child("routing")
	gH := (spec.L + 1) / 2 // horizontal track groups, on odd layers 1,3,…
	gV := spec.L / 2       // vertical track groups, on even layers 2,4,…

	assignment, hSlots, wSlots := assignTracks(&spec, gH, gV)

	// Grid coordinates.
	rowY := make([]int, spec.Rows+1)
	for i := 0; i < spec.Rows; i++ {
		rowY[i+1] = rowY[i] + side + 1 + hSlots[i]
	}
	colX := make([]int, spec.Cols+1)
	for j := 0; j < spec.Cols; j++ {
		colX[j+1] = colX[j] + side + 1 + wSlots[j]
	}

	geom = Geometry{
		Side:   side,
		Rows:   spec.Rows,
		Cols:   spec.Cols,
		HSlots: hSlots,
		WSlots: wSlots,
		Width:  colX[spec.Cols] - 1,
		Height: rowY[spec.Rows] - 1,
	}
	for _, w := range wSlots {
		geom.ChannelWidth += w
	}
	for _, h := range hSlots {
		geom.ChannelHeight += h
	}
	route.End()
	if !realize {
		return nil, geom, nil
	}
	cells := (geom.Width + 1) * (geom.Height + 1) * (spec.L + 1)
	spec.Obs.Add(obs.CellsPlanned, int64(cells))
	if spec.MaxCells > 0 {
		spec.Obs.Set(obs.BudgetHeadroom, int64(spec.MaxCells-cells))
		if cells > spec.MaxCells {
			return nil, geom, &layout.BudgetError{Name: spec.Name, Cells: cells, Budget: spec.MaxCells}
		}
	}
	if err := par.Canceled(spec.Ctx); err != nil {
		return nil, geom, err
	}

	real := root.Child("realization")
	// Port assignment. Each wire end at a node gets a distinct offset in
	// [0, side). Ends are sorted so that, on a shared track, the end of the
	// edge arriving from the lower side precedes the end of the edge
	// leaving toward the higher side, keeping same-track trunk intervals
	// interior-disjoint in realized coordinates.
	topEnds := make([][]portItem, n)
	rightEnds := make([][]portItem, n)
	for i, e := range spec.RowEdges {
		r := assignment.row[key{e.Index, e.Track}].order()
		topEnds[at(e.Index, e.U)] = append(topEnds[at(e.Index, e.U)], portItem{dir: 1, rank: r, ref: endRef{0, i, false}})
		topEnds[at(e.Index, e.V)] = append(topEnds[at(e.Index, e.V)], portItem{dir: 0, rank: r, ref: endRef{0, i, true}})
	}
	for i, e := range spec.ColEdges {
		r := assignment.col[key{e.Index, e.Track}].order()
		rightEnds[at(e.U, e.Index)] = append(rightEnds[at(e.U, e.Index)], portItem{dir: 1, rank: r, ref: endRef{1, i, false}})
		rightEnds[at(e.V, e.Index)] = append(rightEnds[at(e.V, e.Index)], portItem{dir: 0, rank: r, ref: endRef{1, i, true}})
	}
	for i, e := range spec.Bent {
		// U end: the horizontal segment heads toward the trunk channel
		// right of VCol; it leaves rightward iff that channel is at or
		// right of UCol.
		uDir := 1
		if e.VCol < e.UCol {
			uDir = 0
		}
		// V end: the vertical trunk spans from URow's channel to VRow; it
		// arrives from below iff URow < VRow (for URow == VRow the trunk
		// comes down from the channel above, i.e. from above).
		vDir := 1
		if e.URow < e.VRow {
			vDir = 0
		}
		topEnds[at(e.URow, e.UCol)] = append(topEnds[at(e.URow, e.UCol)], portItem{dir: uDir, rank: assignment.row[key{e.URow, e.HTrack}].order(), ref: endRef{2, i, false}})
		rightEnds[at(e.VRow, e.VCol)] = append(rightEnds[at(e.VRow, e.VCol)], portItem{dir: vDir, rank: assignment.col[key{e.VCol, e.VTrack}].order(), ref: endRef{3, i, true}})
	}
	endPort := make(map[endRef]int)
	assign := func(ends [][]portItem) error {
		for node, items := range ends {
			sort.SliceStable(items, func(a, b int) bool {
				if items[a].dir != items[b].dir {
					return items[a].dir < items[b].dir
				}
				return items[a].rank < items[b].rank
			})
			if len(items) > side {
				return fmt.Errorf("%s: node %d needs %d ports on one side, side is %d", spec.Name, node, len(items), side)
			}
			for off, it := range items {
				endPort[it.ref] = off
			}
		}
		return nil
	}
	if err := assign(topEnds); err != nil {
		return nil, geom, err
	}
	if err := assign(rightEnds); err != nil {
		return nil, geom, err
	}

	// Layer helpers.
	hLayer := func(a trackAssign) (layerH, layerV int, slot int) {
		slot = a.slot
		layerH = 2*a.group + 1
		layerV = layerH + 1
		if layerV > spec.L {
			layerV = layerH - 1
		}
		return
	}
	vLayer := func(a trackAssign) (layerV, layerH int, slot int) {
		slot = a.slot
		layerV = 2*a.group + 2
		layerH = layerV + 1
		if layerH > spec.L {
			layerH = layerV - 1
		}
		return
	}

	// Realize wires. Every edge is independent once tracks and ports are
	// assigned (all shared state below is read-only), so realization fans
	// out across Spec.Workers: wire slot i is preassigned to edge i in the
	// fixed row-edges, column-edges, bent-edges order, making the result
	// byte-identical to the serial loop for every worker count.
	lay := &layout.Layout{Name: spec.Name, L: spec.L}
	lay.Nodes = make([]grid.Rect, n)
	// Labels are tabulated up front: Spec.Label closures need not be
	// goroutine-safe, so the parallel loop below only reads this table.
	labelAt := make([]int, n)
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			l := label(r, c)
			labelAt[at(r, c)] = l
			lay.Nodes[l] = grid.Rect{X: colX[c], Y: rowY[r], W: side, H: side}
		}
	}
	nRow, nCol := len(spec.RowEdges), len(spec.ColEdges)
	lay.Wires = make([]grid.Wire, nRow+nCol+len(spec.Bent))
	spec.Obs.Set(obs.WorkerCount, int64(par.Workers(spec.Workers)))
	err := par.ForEachCtx(spec.Ctx, spec.Workers, len(lay.Wires), func(id int) {
		switch {
		case id < nRow:
			i := id
			e := spec.RowEdges[i]
			lh, lv, slot := hLayer(assignment.row[key{e.Index, e.Track}])
			yT := rowY[e.Index] + side + 1 + slot
			yTop := rowY[e.Index] + side
			xu := colX[e.U] + endPort[endRef{0, i, false}]
			xv := colX[e.V] + endPort[endRef{0, i, true}]
			lay.Wires[id] = grid.Wire{ID: id, U: labelAt[at(e.Index, e.U)], V: labelAt[at(e.Index, e.V)], Path: []grid.Point{
				{X: xu, Y: yTop, Z: 0},
				{X: xu, Y: yTop, Z: lv},
				{X: xu, Y: yT, Z: lv},
				{X: xu, Y: yT, Z: lh},
				{X: xv, Y: yT, Z: lh},
				{X: xv, Y: yT, Z: lv},
				{X: xv, Y: yTop, Z: lv},
				{X: xv, Y: yTop, Z: 0},
			}}
		case id < nRow+nCol:
			i := id - nRow
			e := spec.ColEdges[i]
			lv, lh, slot := vLayer(assignment.col[key{e.Index, e.Track}])
			xT := colX[e.Index] + side + 1 + slot
			xR := colX[e.Index] + side
			yu := rowY[e.U] + endPort[endRef{1, i, false}]
			yv := rowY[e.V] + endPort[endRef{1, i, true}]
			lay.Wires[id] = grid.Wire{ID: id, U: labelAt[at(e.U, e.Index)], V: labelAt[at(e.V, e.Index)], Path: []grid.Point{
				{X: xR, Y: yu, Z: 0},
				{X: xR, Y: yu, Z: lh},
				{X: xT, Y: yu, Z: lh},
				{X: xT, Y: yu, Z: lv},
				{X: xT, Y: yv, Z: lv},
				{X: xT, Y: yv, Z: lh},
				{X: xR, Y: yv, Z: lh},
				{X: xR, Y: yv, Z: 0},
			}}
		default:
			i := id - nRow - nCol
			e := spec.Bent[i]
			lh, lvStub, hSlot := hLayer(assignment.row[key{e.URow, e.HTrack}])
			yT := rowY[e.URow] + side + 1 + hSlot
			yTop := rowY[e.URow] + side
			xu := colX[e.UCol] + endPort[endRef{2, i, false}]
			lv2, lh2, vSlot := vLayer(assignment.col[key{e.VCol, e.VTrack}])
			xT := colX[e.VCol] + side + 1 + vSlot
			xR := colX[e.VCol] + side
			yv := rowY[e.VRow] + endPort[endRef{3, i, true}]
			lay.Wires[id] = grid.Wire{ID: id, U: labelAt[at(e.URow, e.UCol)], V: labelAt[at(e.VRow, e.VCol)], Path: []grid.Point{
				{X: xu, Y: yTop, Z: 0},
				{X: xu, Y: yTop, Z: lvStub},
				{X: xu, Y: yT, Z: lvStub},
				{X: xu, Y: yT, Z: lh},
				{X: xT, Y: yT, Z: lh},
				{X: xT, Y: yT, Z: lv2},
				{X: xT, Y: yv, Z: lv2},
				{X: xT, Y: yv, Z: lh2},
				{X: xR, Y: yv, Z: lh2},
				{X: xR, Y: yv, Z: 0},
			}}
		}
	})
	if err != nil {
		return nil, geom, err
	}
	spec.Obs.Add(obs.WiresRealized, int64(len(lay.Wires)))
	real.SetAttr("wires", int64(len(lay.Wires))).End()
	return lay, geom, nil
}

func ceilDiv(a, b int) int {
	if a == 0 {
		return 0
	}
	return (a + b - 1) / b
}

// trackAssign places a channel track in a layer group and a slot within
// that group's share of the channel.
type trackAssign struct {
	group, slot int
}

// order gives a total order of tracks within one channel, used only to
// order ports consistently with trunk coordinates.
func (a trackAssign) order() int { return a.slot<<16 | a.group }

type assignResult struct {
	row, col map[key]trackAssign
}

// assignTracks distributes each channel's tracks over layer groups.
// Regular tracks balance freely; the H and V tracks of a bent edge are
// pinned to one common group, so the junction via between the bent's
// horizontal run (layer 2g+1) and vertical run (layer 2g+2) is a single
// z-edge whose layer pair is unique per group — without this, junction vias
// of different layer groups could land on the same (x, y) channel-slot
// crossing and overlap. Track-sharing chains (several bents sharing escape
// or trunk tracks) are grouped by union-find and spread round-robin over
// the min(gH, gV) usable groups.
func assignTracks(spec *Spec, gH, gV int) (assignResult, []int, []int) {
	type tnode struct {
		isCol          bool
		channel, track int
	}
	// Union-find over bent-linked tracks.
	parent := make(map[tnode]tnode)
	var find func(tnode) tnode
	find = func(x tnode) tnode {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b tnode) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range spec.Bent {
		union(tnode{false, e.URow, e.HTrack}, tnode{true, e.VCol, e.VTrack})
	}
	// Assign every bent component a group in [0, min(gH, gV)).
	gMin := gH
	if gV < gMin {
		gMin = gV
	}
	compGroup := make(map[tnode]int)
	var reps []tnode
	seen := make(map[tnode]bool)
	for _, e := range spec.Bent {
		for _, nd := range []tnode{{false, e.URow, e.HTrack}, {true, e.VCol, e.VTrack}} {
			r := find(nd)
			if !seen[r] {
				seen[r] = true
				reps = append(reps, r)
			}
		}
	}
	sort.Slice(reps, func(i, j int) bool {
		a, b := reps[i], reps[j]
		if a.isCol != b.isCol {
			return !a.isCol
		}
		if a.channel != b.channel {
			return a.channel < b.channel
		}
		return a.track < b.track
	})
	for i, r := range reps {
		compGroup[r] = i % gMin
	}
	pinnedGroup := func(nd tnode) (int, bool) {
		r := find(nd)
		g, ok := compGroup[r]
		return g, ok
	}

	// Collect used track ids per channel.
	rowIDs := make([][]int, spec.Rows)
	colIDs := make([][]int, spec.Cols)
	for _, e := range spec.RowEdges {
		rowIDs[e.Index] = append(rowIDs[e.Index], e.Track)
	}
	for _, e := range spec.ColEdges {
		colIDs[e.Index] = append(colIDs[e.Index], e.Track)
	}
	for _, e := range spec.Bent {
		rowIDs[e.URow] = append(rowIDs[e.URow], e.HTrack)
		colIDs[e.VCol] = append(colIDs[e.VCol], e.VTrack)
	}

	res := assignResult{row: make(map[key]trackAssign), col: make(map[key]trackAssign)}
	place := func(ids [][]int, isCol bool, groups int, out map[key]trackAssign) []int {
		slots := make([]int, len(ids))
		for ch, tracks := range ids {
			sort.Ints(tracks)
			uniq := tracks[:0]
			prev := 0
			for i, t := range tracks {
				if i == 0 || t != prev {
					uniq = append(uniq, t)
				}
				prev = t
			}
			load := make([]int, groups)
			// Pinned (bent) tracks first, then free tracks onto the
			// lightest group.
			var freeTracks []int
			for _, t := range uniq {
				if g, ok := pinnedGroup(tnode{isCol, ch, t}); ok {
					out[key{ch, t}] = trackAssign{group: g, slot: load[g]}
					load[g]++
				} else {
					freeTracks = append(freeTracks, t)
				}
			}
			for _, t := range freeTracks {
				g := 0
				for i := 1; i < groups; i++ {
					if load[i] < load[g] {
						g = i
					}
				}
				out[key{ch, t}] = trackAssign{group: g, slot: load[g]}
				load[g]++
			}
			max := 0
			for _, l := range load {
				if l > max {
					max = l
				}
			}
			slots[ch] = max
		}
		return slots
	}
	hSlots := place(rowIDs, false, gH, res.row)
	wSlots := place(colIDs, true, gV, res.col)
	return res, hSlots, wSlots
}

func checkLabels(spec Spec, label func(int, int) int, n int) error {
	seen := make([]bool, n)
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			l := label(r, c)
			if l < 0 || l >= n || seen[l] {
				return fmt.Errorf("%s: Label is not a bijection at (%d,%d) -> %d", spec.Name, r, c, l)
			}
			seen[l] = true
		}
	}
	return nil
}

// checkEdges validates ranges and per-(channel, track) interval
// disjointness. Intervals are measured in half-positions so that bent-edge
// segments, which end inside a channel rather than at a node, can share
// tracks with channel edges safely: position p maps to 2p (node) and the
// channel right of / above p maps to 2p+1.
func checkEdges(spec *Spec) error {
	type iv struct{ u, v int }
	rowIv := make(map[key][]iv)
	colIv := make(map[key][]iv)

	for i, e := range spec.RowEdges {
		if e.Index < 0 || e.Index >= spec.Rows {
			return fmt.Errorf("%s: row edge %d channel %d out of range", spec.Name, i, e.Index)
		}
		if e.U < 0 || e.V >= spec.Cols || e.U >= e.V {
			return fmt.Errorf("%s: row edge %d interval [%d,%d] invalid", spec.Name, i, e.U, e.V)
		}
		k := key{e.Index, e.Track}
		rowIv[k] = append(rowIv[k], iv{2 * e.U, 2 * e.V})
	}
	for i, e := range spec.ColEdges {
		if e.Index < 0 || e.Index >= spec.Cols {
			return fmt.Errorf("%s: column edge %d channel %d out of range", spec.Name, i, e.Index)
		}
		if e.U < 0 || e.V >= spec.Rows || e.U >= e.V {
			return fmt.Errorf("%s: column edge %d interval [%d,%d] invalid", spec.Name, i, e.U, e.V)
		}
		k := key{e.Index, e.Track}
		colIv[k] = append(colIv[k], iv{2 * e.U, 2 * e.V})
	}
	for i, e := range spec.Bent {
		if e.URow < 0 || e.URow >= spec.Rows || e.VRow < 0 || e.VRow >= spec.Rows ||
			e.UCol < 0 || e.UCol >= spec.Cols || e.VCol < 0 || e.VCol >= spec.Cols {
			return fmt.Errorf("%s: bent edge %d out of range", spec.Name, i)
		}
		if e.URow == e.VRow && e.UCol == e.VCol {
			return fmt.Errorf("%s: bent edge %d is a self-loop", spec.Name, i)
		}
		// Horizontal segment: from the U port (2·UCol) to the trunk channel
		// (2·VCol+1).
		hu, hv := 2*e.UCol, 2*e.VCol+1
		if hu > hv {
			hu, hv = hv, hu
		}
		hk := key{e.URow, e.HTrack}
		rowIv[hk] = append(rowIv[hk], iv{hu, hv})
		// Vertical segment: from URow's channel (2·URow+1) to the V port
		// (2·VRow).
		vu, vv := 2*e.URow+1, 2*e.VRow
		if vu > vv {
			vu, vv = vv, vu
		}
		vk := key{e.VCol, e.VTrack}
		colIv[vk] = append(colIv[vk], iv{vu, vv})
	}

	checkDisjoint := func(m map[key][]iv, what string) error {
		for k, ivs := range m {
			sort.Slice(ivs, func(a, b int) bool {
				if ivs[a].u != ivs[b].u {
					return ivs[a].u < ivs[b].u
				}
				return ivs[a].v < ivs[b].v
			})
			for i := 1; i < len(ivs); i++ {
				// Touching at a node (even half-position) is safe: distinct
				// ports order the realized endpoints. Touching inside a
				// channel (odd half-position) is not, since both segments
				// end at track-slot coordinates that need not be ordered.
				if ivs[i].u < ivs[i-1].v || (ivs[i].u == ivs[i-1].v && ivs[i].u%2 == 1) {
					return fmt.Errorf("%s: %s channel %d track %d intervals [%d,%d] and [%d,%d] overlap (half-position units)",
						spec.Name, what, k.index, k.track, ivs[i-1].u, ivs[i-1].v, ivs[i].u, ivs[i].v)
				}
			}
		}
		return nil
	}
	if err := checkDisjoint(rowIv, "row"); err != nil {
		return err
	}
	return checkDisjoint(colIv, "column")
}
