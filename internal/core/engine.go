// Package core implements the paper's primary contribution: the orthogonal
// multilayer layout scheme (§2.4). Network nodes are arranged in a 2-D grid
// so that every link joins two nodes of the same row or the same column;
// each row (column) is routed as a collinear layout in the channel above
// (right of) it; and the horizontal and vertical track bundles are split
// across ⌈L/2⌉ odd and ⌊L/2⌋ even wiring layers respectively. The result is
// a fully realized, machine-verifiable layout.Layout.
//
// The engine accepts explicit per-channel edge lists, which makes it
// expressive enough for everything in the paper: uniform product networks
// (k-ary n-cubes, hypercubes, generalized hypercubes) via FromFactors;
// PN clusters laid out as in-row cluster strips (§2.3/§3.2) via the cluster
// package, including quotient links that attach to different cluster members
// at their two ends (bent edges); and the folded/enhanced hypercubes'
// diameter links (§5.3) as bent edges on dedicated tracks.
//
// The build path runs in one of two allocation regimes sharing one
// algorithm: the map path (Spec.Scratch nil) allocates fresh maps and
// per-wire paths on every call, and the arena path draws every per-phase
// structure from a reusable BuildScratch (see arena.go). The phase logic —
// validation, track placement, port assignment, realization — is shared
// code parameterized over the storage backends, so the two regimes produce
// byte-identical layouts; the differential tests pin that.
package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"slices"
	"sort"

	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
)

// ChannelEdge is one link routed inside a single row or column channel.
// For a row edge, Index is the row and U < V are column positions; for a
// column edge, Index is the column and U < V are row positions. Track is an
// identifier in the direction's track namespace; two edges sharing (Index,
// Track) must have intervals with disjoint interiors.
type ChannelEdge struct {
	Index int
	U, V  int
	Track int
}

// BentEdge is a link between two arbitrary grid positions: it leaves the U
// node through a top port, runs along a horizontal track in the channel
// above URow (track id HTrack in the row-track namespace of that channel),
// turns onto a vertical track in the channel right of the V node's column
// (track id VTrack in that column's namespace), and enters the V node
// through a right port. Bent edges share row/column tracks with channel
// edges under the same interval-disjointness rule: the horizontal segment
// occupies columns [UCol, VCol+channel] and the vertical segment rows
// [URow+channel, VRow].
type BentEdge struct {
	URow, UCol int
	VRow, VCol int
	HTrack     int
	VTrack     int
}

// Spec describes an orthogonal multilayer layout instance.
type Spec struct {
	Name string
	// Rows × Cols node grid.
	Rows, Cols int
	// L is the number of wiring layers (>= 2).
	L int
	// NodeSide, when positive, fixes the node square side; it must be at
	// least the per-side port demand. Zero selects the smallest legal side,
	// the paper's "minimum size required to implement a node".
	NodeSide int
	// Workers bounds the fan-out of the parallel wire-realization loop:
	// 0 means GOMAXPROCS, 1 forces serial execution. Every worker count
	// produces byte-identical layouts — rows, columns and bent edges are
	// realized independently into preassigned wire slots.
	Workers int
	// Ctx, when non-nil, cancels the build cooperatively: the engine polls
	// it between phases and every few wires inside the realize loop, and an
	// expired context aborts the build with an error wrapping
	// par.ErrCanceled. Nil means no cancellation.
	Ctx context.Context
	// MaxCells, when positive, bounds the planned grid occupancy: the
	// number of grid vertices of the layout box across all layers,
	// (Width+1)·(Height+1)·(L+1). A plan over budget aborts with a
	// *layout.BudgetError before any wire is realized, so the overrun costs
	// geometry planning only. Zero means unlimited.
	MaxCells int
	// Obs, when non-nil, receives build telemetry: a "build" span with
	// placement, routing, and realization children plus the typed counters
	// (wires realized, cells planned, budget headroom, worker count, and on
	// the arena path scratch reuses and retained bytes). Nil — the default —
	// disables instrumentation entirely; the realize loop is untouched
	// either way, since spans and counters live on the phase boundaries,
	// not in per-wire code.
	Obs *obs.Observer
	// Scratch, when non-nil, selects the arena build path: every per-phase
	// allocation is drawn from the scratch's reusable slabs and the build
	// runs in a handful of allocations instead of tens of thousands. Nil —
	// the default — selects the allocating map path; the two paths build
	// byte-identical layouts. A scratch must not be shared by concurrent
	// builds; see BuildScratch for the ownership contract.
	Scratch *BuildScratch
	// Label maps grid position to node label (a bijection onto
	// 0..Rows·Cols-1). Nil means row-major order.
	Label func(row, col int) int

	RowEdges []ChannelEdge
	ColEdges []ChannelEdge
	Bent     []BentEdge
}

// dedicatedBase starts the track-id range AddDedicatedBent allocates from;
// regular builders must keep their track ids below it.
const dedicatedBase = 1 << 30

// AddDedicatedBent appends a bent edge on fresh dedicated tracks (one new
// horizontal track in U's row channel, one new vertical track in V's column
// channel), the way §5.3 routes each folded-hypercube diameter link.
func (s *Spec) AddDedicatedBent(uRow, uCol, vRow, vCol int) {
	id := dedicatedBase + len(s.Bent)
	s.Bent = append(s.Bent, BentEdge{
		URow: uRow, UCol: uCol, VRow: vRow, VCol: vCol,
		HTrack: id, VTrack: id,
	})
}

// endRef identifies one wire end: kind 0 = row edge, 1 = column edge,
// 2 = bent edge U end, 3 = bent edge V end; idx indexes the respective
// slice and isV distinguishes the two ends of a channel edge.
type endRef struct {
	kind int
	idx  int
	isV  bool
}

type portItem struct {
	dir  int
	rank int
	ref  endRef
}

type key struct{ index, track int }

// Build realizes the spec as a concrete multilayer layout. The returned
// layout passes layout.Verify for every legal spec; Build itself validates
// spec-level invariants (ranges, track interval disjointness, port
// capacity). Robustness guarantees: an expired Spec.Ctx aborts the build
// with an error wrapping par.ErrCanceled, a plan over Spec.MaxCells returns
// a *layout.BudgetError, and a panic raised anywhere during the build —
// in a parallel realize worker or by a user-supplied Label closure — is
// returned as a *par.Panic error instead of crashing the process.
func Build(spec Spec) (lay *layout.Layout, err error) {
	defer func() {
		if v := recover(); v != nil {
			p, ok := v.(*par.Panic)
			if !ok {
				p = &par.Panic{Value: v, Stack: debug.Stack()}
			}
			lay, err = nil, p
		}
	}()
	lay, _, err = build(spec, true)
	if err != nil {
		lay = nil
	}
	return lay, err
}

func build(spec Spec, realize bool) (*layout.Layout, Geometry, error) {
	var geom Geometry
	if spec.Rows < 1 || spec.Cols < 1 {
		return nil, geom, fmt.Errorf("%s: grid %dx%d is empty", spec.Name, spec.Rows, spec.Cols)
	}
	if spec.L < 2 {
		return nil, geom, fmt.Errorf("%s: need at least 2 wiring layers, got %d", spec.Name, spec.L)
	}
	label := spec.Label
	if label == nil {
		label = func(r, c int) int { return r*spec.Cols + c }
	}
	if err := par.Canceled(spec.Ctx); err != nil {
		return nil, geom, err
	}
	s := spec.Scratch
	if s != nil {
		s.beginBuild(spec.Obs)
	}
	root := spec.Obs.StartSpan("build")
	root.SetAttr("rows", int64(spec.Rows)).SetAttr("cols", int64(spec.Cols)).SetAttr("layers", int64(spec.L))
	defer root.End()

	// Placement phase: validate the node grid and edge lists, then derive
	// the per-node port demand and the node side. (Phase spans are ended on
	// the success path only; a failed build reports just the enclosing
	// "build" span.)
	place := root.Child("placement")
	n := spec.Rows * spec.Cols
	if err := checkLabels(spec, label, n, s); err != nil {
		return nil, geom, err
	}
	if err := checkEdges(&spec, s); err != nil {
		return nil, geom, err
	}
	if err := par.Canceled(spec.Ctx); err != nil {
		return nil, geom, err
	}

	// Port demand per node.
	var top, right []int
	if s != nil {
		top = s.ints.take(n, true)
		right = s.ints.take(n, true)
	} else {
		top = make([]int, n)   // ports on the node's top edge
		right = make([]int, n) // ports on the node's right edge
	}
	at := func(r, c int) int { return r*spec.Cols + c }
	for _, e := range spec.RowEdges {
		top[at(e.Index, e.U)]++
		top[at(e.Index, e.V)]++
	}
	for _, e := range spec.ColEdges {
		right[at(e.U, e.Index)]++
		right[at(e.V, e.Index)]++
	}
	for _, e := range spec.Bent {
		top[at(e.URow, e.UCol)]++
		right[at(e.VRow, e.VCol)]++
	}
	need := 1
	for i := 0; i < n; i++ {
		if top[i] > need {
			need = top[i]
		}
		if right[i] > need {
			need = right[i]
		}
	}
	side := spec.NodeSide
	if side == 0 {
		side = need
	} else if side < need {
		return nil, geom, fmt.Errorf("%s: node side %d < required port count %d", spec.Name, side, need)
	}
	place.End()

	// Routing phase: distribute tracks over layer groups and fix the grid
	// geometry.
	route := root.Child("routing")
	gH := (spec.L + 1) / 2 // horizontal track groups, on odd layers 1,3,…
	gV := spec.L / 2       // vertical track groups, on even layers 2,4,…

	rowT, colT, hSlots, wSlots := assignTracks(&spec, s, gH, gV)

	// Grid coordinates.
	var rowY, colX []int
	if s != nil {
		rowY = s.ints.take(spec.Rows+1, false)
		colX = s.ints.take(spec.Cols+1, false)
	} else {
		rowY = make([]int, spec.Rows+1)
		colX = make([]int, spec.Cols+1)
	}
	rowY[0] = 0
	for i := 0; i < spec.Rows; i++ {
		rowY[i+1] = rowY[i] + side + 1 + hSlots[i]
	}
	colX[0] = 0
	for j := 0; j < spec.Cols; j++ {
		colX[j+1] = colX[j] + side + 1 + wSlots[j]
	}

	geom = Geometry{
		Side:   side,
		Rows:   spec.Rows,
		Cols:   spec.Cols,
		HSlots: hSlots,
		WSlots: wSlots,
		Width:  colX[spec.Cols] - 1,
		Height: rowY[spec.Rows] - 1,
	}
	for _, w := range wSlots {
		geom.ChannelWidth += w
	}
	for _, h := range hSlots {
		geom.ChannelHeight += h
	}
	route.End()
	if !realize {
		return nil, geom, nil
	}
	cells := (geom.Width + 1) * (geom.Height + 1) * (spec.L + 1)
	spec.Obs.Add(obs.CellsPlanned, int64(cells))
	if spec.MaxCells > 0 {
		spec.Obs.Set(obs.BudgetHeadroom, int64(spec.MaxCells-cells))
		if cells > spec.MaxCells {
			return nil, geom, &layout.BudgetError{Name: spec.Name, Cells: cells, Budget: spec.MaxCells}
		}
	}
	if err := par.Canceled(spec.Ctx); err != nil {
		return nil, geom, err
	}

	real := root.Child("realization")
	// Port assignment. Each wire end at a node gets a distinct offset in
	// [0, side). Ends are sorted so that, on a shared track, the end of the
	// edge arriving from the lower side precedes the end of the edge
	// leaving toward the higher side, keeping same-track trunk intervals
	// interior-disjoint in realized coordinates. The per-node port demand
	// computed above doubles as the exact item count per node, which is
	// what lets the arena path count-then-fill one flat slab.
	var topEnds, rightEnds endsTable
	if s != nil {
		topEnds.init(s, top)
		rightEnds.init(s, right)
	} else {
		topEnds.perNode = make([][]portItem, n)
		rightEnds.perNode = make([][]portItem, n)
	}
	for i, e := range spec.RowEdges {
		r := rowT.lookup(e.Index, e.Track).order()
		topEnds.add(at(e.Index, e.U), portItem{dir: 1, rank: r, ref: endRef{0, i, false}})
		topEnds.add(at(e.Index, e.V), portItem{dir: 0, rank: r, ref: endRef{0, i, true}})
	}
	for i, e := range spec.ColEdges {
		r := colT.lookup(e.Index, e.Track).order()
		rightEnds.add(at(e.U, e.Index), portItem{dir: 1, rank: r, ref: endRef{1, i, false}})
		rightEnds.add(at(e.V, e.Index), portItem{dir: 0, rank: r, ref: endRef{1, i, true}})
	}
	for i, e := range spec.Bent {
		// U end: the horizontal segment heads toward the trunk channel
		// right of VCol; it leaves rightward iff that channel is at or
		// right of UCol.
		uDir := 1
		if e.VCol < e.UCol {
			uDir = 0
		}
		// V end: the vertical trunk spans from URow's channel to VRow; it
		// arrives from below iff URow < VRow (for URow == VRow the trunk
		// comes down from the channel above, i.e. from above).
		vDir := 1
		if e.URow < e.VRow {
			vDir = 0
		}
		topEnds.add(at(e.URow, e.UCol), portItem{dir: uDir, rank: rowT.lookup(e.URow, e.HTrack).order(), ref: endRef{2, i, false}})
		rightEnds.add(at(e.VRow, e.VCol), portItem{dir: vDir, rank: colT.lookup(e.VCol, e.VTrack).order(), ref: endRef{3, i, true}})
	}
	ports := newPortTable(s, len(spec.RowEdges), len(spec.ColEdges), len(spec.Bent))
	assign := func(ends *endsTable) error {
		for node := 0; node < n; node++ {
			items := ends.seg(node)
			sortPortItems(items)
			if len(items) > side {
				return fmt.Errorf("%s: node %d needs %d ports on one side, side is %d", spec.Name, node, len(items), side)
			}
			for off, it := range items {
				ports.set(it.ref, off)
			}
		}
		return nil
	}
	if err := assign(&topEnds); err != nil {
		return nil, geom, err
	}
	if err := assign(&rightEnds); err != nil {
		return nil, geom, err
	}

	// Realize wires. Every edge is independent once tracks and ports are
	// assigned (all shared state below is read-only), so realization fans
	// out across Spec.Workers: wire slot i is preassigned to edge i in the
	// fixed row-edges, column-edges, bent-edges order, making the result
	// byte-identical to the serial loop for every worker count.
	//
	// Result allocation: the map path and the default arena path hand out
	// fresh memory (on the arena path the wire paths share one fresh point
	// slab, with identical MemBytes since every subslice's cap equals its
	// length); a transient-mode scratch backs even the results, for callers
	// that drop each layout before the next build.
	nRow, nCol, nBent := len(spec.RowEdges), len(spec.ColEdges), len(spec.Bent)
	nPts := (nRow+nCol)*8 + nBent*10
	var lay *layout.Layout
	var pts []grid.Point
	if s != nil && s.transient {
		lay = &s.lay
		*lay = layout.Layout{Name: spec.Name, L: spec.L}
		lay.Nodes = s.rects.take(n, false)
		lay.Wires = s.wires.take(nRow+nCol+nBent, false)
		pts = s.pts.take(nPts, false)
	} else {
		lay = &layout.Layout{Name: spec.Name, L: spec.L}
		lay.Nodes = make([]grid.Rect, n)
		lay.Wires = make([]grid.Wire, nRow+nCol+nBent)
		if s != nil {
			pts = make([]grid.Point, nPts)
		}
	}
	// Labels are tabulated up front: Spec.Label closures need not be
	// goroutine-safe, so the parallel loop below only reads this table.
	var labelAt []int
	if s != nil {
		labelAt = s.ints.take(n, false)
	} else {
		labelAt = make([]int, n)
	}
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			l := label(r, c)
			labelAt[at(r, c)] = l
			lay.Nodes[l] = grid.Rect{X: colX[c], Y: rowY[r], W: side, H: side}
		}
	}
	rc := &realizeCtx{
		rowEdges: spec.RowEdges, colEdges: spec.ColEdges, bent: spec.Bent,
		rowT: rowT, colT: colT, ports: ports,
		rowY: rowY, colX: colX, labelAt: labelAt,
		side: side, L: spec.L, cols: spec.Cols,
		nRow: nRow, nCol: nCol,
		wires: lay.Wires, pts: pts,
	}
	spec.Obs.Set(obs.WorkerCount, int64(par.Workers(spec.Workers)))
	if err := par.ForEachCtx(spec.Ctx, spec.Workers, len(lay.Wires), rc.realize); err != nil {
		return nil, geom, err
	}
	spec.Obs.Add(obs.WiresRealized, int64(len(lay.Wires)))
	if s != nil {
		spec.Obs.Set(obs.ScratchBytes, s.Bytes())
	}
	real.SetAttr("wires", int64(len(lay.Wires))).End()
	return lay, geom, nil
}

// realizeCtx is the read-only state of the parallel realize loop: edge
// lists, track and port tables, grid prefix sums, and the output wire slice.
// pts, when non-nil, is the flat point slab the arena path carves wire paths
// from; nil makes realize allocate each path, the map path's behavior.
type realizeCtx struct {
	rowEdges []ChannelEdge
	colEdges []ChannelEdge
	bent     []BentEdge

	rowT, colT *trackTable
	ports      *portTable

	rowY, colX []int
	labelAt    []int

	side, L, cols int
	nRow, nCol    int

	wires []grid.Wire
	pts   []grid.Point
}

func (rc *realizeCtx) path(off, n int) []grid.Point {
	if rc.pts == nil {
		return make([]grid.Point, n)
	}
	return rc.pts[off : off+n : off+n]
}

// realize computes wire id's eight- or ten-point path. It runs once per edge
// under the par pool and accounts for most of the build, so it stays free of
// maps (on the arena path), fmt, and per-wire allocation beyond the map
// path's deliberate per-path make.
//
//mlvlsi:hotpath
func (rc *realizeCtx) realize(id int) {
	switch {
	case id < rc.nRow:
		i := id
		e := rc.rowEdges[i]
		lh, lv, slot := hLayerOf(rc.rowT.lookup(e.Index, e.Track), rc.L)
		yT := rc.rowY[e.Index] + rc.side + 1 + slot
		yTop := rc.rowY[e.Index] + rc.side
		xu := rc.colX[e.U] + rc.ports.port(endRef{0, i, false})
		xv := rc.colX[e.V] + rc.ports.port(endRef{0, i, true})
		p := rc.path(id*8, 8)
		p[0] = grid.Point{X: xu, Y: yTop, Z: 0}
		p[1] = grid.Point{X: xu, Y: yTop, Z: lv}
		p[2] = grid.Point{X: xu, Y: yT, Z: lv}
		p[3] = grid.Point{X: xu, Y: yT, Z: lh}
		p[4] = grid.Point{X: xv, Y: yT, Z: lh}
		p[5] = grid.Point{X: xv, Y: yT, Z: lv}
		p[6] = grid.Point{X: xv, Y: yTop, Z: lv}
		p[7] = grid.Point{X: xv, Y: yTop, Z: 0}
		rc.wires[id] = grid.Wire{ID: id, U: rc.labelAt[e.Index*rc.cols+e.U], V: rc.labelAt[e.Index*rc.cols+e.V], Path: p}
	case id < rc.nRow+rc.nCol:
		i := id - rc.nRow
		e := rc.colEdges[i]
		lv, lh, slot := vLayerOf(rc.colT.lookup(e.Index, e.Track), rc.L)
		xT := rc.colX[e.Index] + rc.side + 1 + slot
		xR := rc.colX[e.Index] + rc.side
		yu := rc.rowY[e.U] + rc.ports.port(endRef{1, i, false})
		yv := rc.rowY[e.V] + rc.ports.port(endRef{1, i, true})
		p := rc.path(id*8, 8)
		p[0] = grid.Point{X: xR, Y: yu, Z: 0}
		p[1] = grid.Point{X: xR, Y: yu, Z: lh}
		p[2] = grid.Point{X: xT, Y: yu, Z: lh}
		p[3] = grid.Point{X: xT, Y: yu, Z: lv}
		p[4] = grid.Point{X: xT, Y: yv, Z: lv}
		p[5] = grid.Point{X: xT, Y: yv, Z: lh}
		p[6] = grid.Point{X: xR, Y: yv, Z: lh}
		p[7] = grid.Point{X: xR, Y: yv, Z: 0}
		rc.wires[id] = grid.Wire{ID: id, U: rc.labelAt[e.U*rc.cols+e.Index], V: rc.labelAt[e.V*rc.cols+e.Index], Path: p}
	default:
		i := id - rc.nRow - rc.nCol
		e := rc.bent[i]
		lh, lvStub, hSlot := hLayerOf(rc.rowT.lookup(e.URow, e.HTrack), rc.L)
		yT := rc.rowY[e.URow] + rc.side + 1 + hSlot
		yTop := rc.rowY[e.URow] + rc.side
		xu := rc.colX[e.UCol] + rc.ports.port(endRef{2, i, false})
		lv2, lh2, vSlot := vLayerOf(rc.colT.lookup(e.VCol, e.VTrack), rc.L)
		xT := rc.colX[e.VCol] + rc.side + 1 + vSlot
		xR := rc.colX[e.VCol] + rc.side
		yv := rc.rowY[e.VRow] + rc.ports.port(endRef{3, i, true})
		p := rc.path((rc.nRow+rc.nCol)*8+i*10, 10)
		p[0] = grid.Point{X: xu, Y: yTop, Z: 0}
		p[1] = grid.Point{X: xu, Y: yTop, Z: lvStub}
		p[2] = grid.Point{X: xu, Y: yT, Z: lvStub}
		p[3] = grid.Point{X: xu, Y: yT, Z: lh}
		p[4] = grid.Point{X: xT, Y: yT, Z: lh}
		p[5] = grid.Point{X: xT, Y: yT, Z: lv2}
		p[6] = grid.Point{X: xT, Y: yv, Z: lv2}
		p[7] = grid.Point{X: xT, Y: yv, Z: lh2}
		p[8] = grid.Point{X: xR, Y: yv, Z: lh2}
		p[9] = grid.Point{X: xR, Y: yv, Z: 0}
		rc.wires[id] = grid.Wire{ID: id, U: rc.labelAt[e.URow*rc.cols+e.UCol], V: rc.labelAt[e.VRow*rc.cols+e.VCol], Path: p}
	}
}

// hLayerOf and vLayerOf place a track assignment's trunk and stub layers:
// horizontal trunks on odd layer 2g+1 with the vertical stub one layer up
// (or down at the top), vertical trunks on even layer 2g+2 symmetrically.
func hLayerOf(a trackAssign, L int) (layerH, layerV, slot int) {
	slot = a.slot
	layerH = 2*a.group + 1
	layerV = layerH + 1
	if layerV > L {
		layerV = layerH - 1
	}
	return
}

func vLayerOf(a trackAssign, L int) (layerV, layerH, slot int) {
	slot = a.slot
	layerV = 2*a.group + 2
	layerH = layerV + 1
	if layerH > L {
		layerH = layerV - 1
	}
	return
}

// sortPortItems stable-sorts a node's wire ends by (dir, rank): an insertion
// sort, because the per-node item count is bounded by the node side and a
// stable sort is unique — the result is identical to sort.SliceStable on
// either build path, without its allocations.
func sortPortItems(items []portItem) {
	for i := 1; i < len(items); i++ {
		it := items[i]
		j := i - 1
		for j >= 0 && (items[j].dir > it.dir || (items[j].dir == it.dir && items[j].rank > it.rank)) {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = it
	}
}

func ceilDiv(a, b int) int {
	if a == 0 {
		return 0
	}
	return (a + b - 1) / b
}

// trackAssign places a channel track in a layer group and a slot within
// that group's share of the channel.
type trackAssign struct {
	group, slot int
}

// order gives a total order of tracks within one channel, used only to
// order ports consistently with trunk coordinates.
func (a trackAssign) order() int { return a.slot<<16 | a.group }

// pinFunc resolves a (direction, channel, track) to its bent-pinned layer
// group, if the track belongs to a bent component; nil when the spec has no
// bent edges at all.
type pinFunc func(isCol bool, ch, track int) (int, bool)

// bentPins computes the pinned layer groups of bent-linked tracks. The H
// and V tracks of a bent edge are pinned to one common group, so the
// junction via between the bent's horizontal run (layer 2g+1) and vertical
// run (layer 2g+2) is a single z-edge whose layer pair is unique per group —
// without this, junction vias of different layer groups could land on the
// same (x, y) channel-slot crossing and overlap. Track-sharing chains
// (several bents sharing escape or trunk tracks) are grouped by union-find
// and spread round-robin over the min(gH, gV) usable groups. Specs without
// bent edges — the common case and the zero-alloc one — return nil.
func bentPins(spec *Spec, gH, gV int) pinFunc {
	if len(spec.Bent) == 0 {
		return nil
	}
	type tnode struct {
		isCol          bool
		channel, track int
	}
	// Union-find over bent-linked tracks.
	parent := make(map[tnode]tnode)
	var find func(tnode) tnode
	find = func(x tnode) tnode {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b tnode) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range spec.Bent {
		union(tnode{false, e.URow, e.HTrack}, tnode{true, e.VCol, e.VTrack})
	}
	// Assign every bent component a group in [0, min(gH, gV)).
	gMin := gH
	if gV < gMin {
		gMin = gV
	}
	compGroup := make(map[tnode]int)
	var reps []tnode
	seen := make(map[tnode]bool)
	for _, e := range spec.Bent {
		for _, nd := range []tnode{{false, e.URow, e.HTrack}, {true, e.VCol, e.VTrack}} {
			r := find(nd)
			if !seen[r] {
				seen[r] = true
				reps = append(reps, r)
			}
		}
	}
	sort.Slice(reps, func(i, j int) bool {
		a, b := reps[i], reps[j]
		if a.isCol != b.isCol {
			return !a.isCol
		}
		if a.channel != b.channel {
			return a.channel < b.channel
		}
		return a.track < b.track
	})
	for i, r := range reps {
		compGroup[r] = i % gMin
	}
	return func(isCol bool, ch, track int) (int, bool) {
		g, ok := compGroup[find(tnode{isCol, ch, track})]
		return g, ok
	}
}

// assignTracks distributes each channel's tracks over layer groups, filling
// the two track tables and returning the per-channel slot counts. Both
// backends collect each channel's track ids (the map path into per-channel
// slices, the arena path into counted slab segments), sort-uniq them with
// the shared sortUniq, and place them with the shared placeChannel, so the
// assignment cannot diverge between the paths.
func assignTracks(spec *Spec, s *BuildScratch, gH, gV int) (rowT, colT *trackTable, hSlots, wSlots []int) {
	pin := bentPins(spec, gH, gV)
	// The slot-count slices are referenced by the returned Geometry, so
	// they are allocated fresh on both paths.
	hSlots = make([]int, spec.Rows)
	wSlots = make([]int, spec.Cols)
	gMax := gH
	if gV > gMax {
		gMax = gV
	}
	var load []int
	if s != nil {
		load = s.ints.take(gMax, false)
	} else {
		load = make([]int, gMax)
	}
	var free []int

	if s == nil {
		rowT = &trackTable{m: make(map[key]trackAssign)}
		colT = &trackTable{m: make(map[key]trackAssign)}
		rowIDs := make([][]int, spec.Rows)
		colIDs := make([][]int, spec.Cols)
		for _, e := range spec.RowEdges {
			rowIDs[e.Index] = append(rowIDs[e.Index], e.Track)
		}
		for _, e := range spec.ColEdges {
			colIDs[e.Index] = append(colIDs[e.Index], e.Track)
		}
		for _, e := range spec.Bent {
			rowIDs[e.URow] = append(rowIDs[e.URow], e.HTrack)
			colIDs[e.VCol] = append(colIDs[e.VCol], e.VTrack)
		}
		for ch, tracks := range rowIDs {
			hSlots[ch], free = placeChannel(rowT, false, ch, sortUniq(tracks), gH, pin, load[:gH], free)
		}
		for ch, tracks := range colIDs {
			wSlots[ch], free = placeChannel(colT, true, ch, sortUniq(tracks), gV, pin, load[:gV], free)
		}
		return rowT, colT, hSlots, wSlots
	}

	rowT = scratchTracks(s, spec.Rows, func(emit func(ch, t int)) {
		for _, e := range spec.RowEdges {
			emit(e.Index, e.Track)
		}
		for _, e := range spec.Bent {
			emit(e.URow, e.HTrack)
		}
	})
	colT = scratchTracks(s, spec.Cols, func(emit func(ch, t int)) {
		for _, e := range spec.ColEdges {
			emit(e.Index, e.Track)
		}
		for _, e := range spec.Bent {
			emit(e.VCol, e.VTrack)
		}
	})
	for ch := 0; ch < spec.Rows; ch++ {
		uniq := sortUniq(rowT.seg(ch))
		rowT.uniqLen[ch] = int32(len(uniq))
		hSlots[ch], free = placeChannel(rowT, false, ch, uniq, gH, pin, load[:gH], free)
	}
	for ch := 0; ch < spec.Cols; ch++ {
		uniq := sortUniq(colT.seg(ch))
		colT.uniqLen[ch] = int32(len(uniq))
		wSlots[ch], free = placeChannel(colT, true, ch, uniq, gV, pin, load[:gV], free)
	}
	return rowT, colT, hSlots, wSlots
}

// seg returns channel ch's raw (pre-uniq) track-id segment.
func (t *trackTable) seg(ch int) []int {
	return t.ids[t.starts[ch]:t.starts[ch+1]]
}

// scratchTracks count-then-fills the per-channel track-id segments of a
// scratch-backed track table: visit enumerates every (channel, track)
// occurrence twice, once to size the segments and once to fill them.
func scratchTracks(s *BuildScratch, nCh int, visit func(emit func(ch, t int))) *trackTable {
	counts := s.ints.take(nCh, true)
	visit(func(ch, t int) { counts[ch]++ })
	t := &trackTable{
		starts:  s.i32.take(nCh+1, false),
		uniqLen: s.i32.take(nCh, false),
	}
	total := 0
	for ch, c := range counts {
		t.starts[ch] = int32(total)
		total += c
	}
	t.starts[nCh] = int32(total)
	t.ids = s.ints.take(total, false)
	t.as = s.assigns.take(total, false)
	for ch := range counts {
		counts[ch] = int(t.starts[ch]) // reuse as fill cursors
	}
	visit(func(ch, tr int) {
		t.ids[counts[ch]] = tr
		counts[ch]++
	})
	return t
}

// sortUniq sorts a channel's track ids in place and compacts duplicates,
// returning the unique prefix.
func sortUniq(tracks []int) []int {
	sort.Ints(tracks)
	uniq := tracks[:0]
	prev := 0
	for i, t := range tracks {
		if i == 0 || t != prev {
			uniq = append(uniq, t)
		}
		prev = t
	}
	return uniq
}

// lightest returns the index of the least-loaded group (first wins ties).
func lightest(load []int) int {
	g := 0
	for i := 1; i < len(load); i++ {
		if load[i] < load[g] {
			g = i
		}
	}
	return g
}

// placeChannel assigns one channel's sorted unique tracks to layer groups:
// pinned (bent) tracks first in track order, then free tracks onto the
// lightest group, matching the original map-path order exactly. free is a
// reusable index buffer threaded through the caller's loop; the returned
// max per-group load is the channel's slot count.
func placeChannel(tab *trackTable, isCol bool, ch int, uniq []int, groups int, pin pinFunc, load, free []int) (int, []int) {
	clear(load)
	if pin == nil {
		for i, t := range uniq {
			g := lightest(load)
			tab.set(ch, i, t, trackAssign{group: g, slot: load[g]})
			load[g]++
		}
	} else {
		free = free[:0]
		for i, t := range uniq {
			if g, ok := pin(isCol, ch, t); ok {
				tab.set(ch, i, t, trackAssign{group: g, slot: load[g]})
				load[g]++
			} else {
				free = append(free, i)
			}
		}
		for _, i := range free {
			g := lightest(load)
			tab.set(ch, i, uniq[i], trackAssign{group: g, slot: load[g]})
			load[g]++
		}
	}
	max := 0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max, free
}

func checkLabels(spec Spec, label func(int, int) int, n int, s *BuildScratch) error {
	var seen []bool
	if s != nil {
		seen = s.bools.take(n, true)
	} else {
		seen = make([]bool, n)
	}
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			l := label(r, c)
			if l < 0 || l >= n || seen[l] {
				return fmt.Errorf("%s: Label is not a bijection at (%d,%d) -> %d", spec.Name, r, c, l)
			}
			seen[l] = true
		}
	}
	return nil
}

// checkEdgeRanges validates edge coordinate ranges in declaration order —
// row edges, column edges, bent edges — with the same messages on both
// build paths.
func checkEdgeRanges(spec *Spec) error {
	for i, e := range spec.RowEdges {
		if e.Index < 0 || e.Index >= spec.Rows {
			return fmt.Errorf("%s: row edge %d channel %d out of range", spec.Name, i, e.Index)
		}
		if e.U < 0 || e.V >= spec.Cols || e.U >= e.V {
			return fmt.Errorf("%s: row edge %d interval [%d,%d] invalid", spec.Name, i, e.U, e.V)
		}
	}
	for i, e := range spec.ColEdges {
		if e.Index < 0 || e.Index >= spec.Cols {
			return fmt.Errorf("%s: column edge %d channel %d out of range", spec.Name, i, e.Index)
		}
		if e.U < 0 || e.V >= spec.Rows || e.U >= e.V {
			return fmt.Errorf("%s: column edge %d interval [%d,%d] invalid", spec.Name, i, e.U, e.V)
		}
	}
	for i, e := range spec.Bent {
		if e.URow < 0 || e.URow >= spec.Rows || e.VRow < 0 || e.VRow >= spec.Rows ||
			e.UCol < 0 || e.UCol >= spec.Cols || e.VCol < 0 || e.VCol >= spec.Cols {
			return fmt.Errorf("%s: bent edge %d out of range", spec.Name, i)
		}
		if e.URow == e.VRow && e.UCol == e.VCol {
			return fmt.Errorf("%s: bent edge %d is a self-loop", spec.Name, i)
		}
	}
	return nil
}

// checkEdges validates ranges and per-(channel, track) interval
// disjointness. Intervals are measured in half-positions so that bent-edge
// segments, which end inside a channel rather than at a node, can share
// tracks with channel edges safely: position p maps to 2p (node) and the
// channel right of / above p maps to 2p+1. The map path groups intervals in
// per-key hash maps; the arena path sorts one flat tuple slab per direction
// and scans runs — both enforce the identical overlap rule.
func checkEdges(spec *Spec, s *BuildScratch) error {
	if err := checkEdgeRanges(spec); err != nil {
		return err
	}
	if s != nil {
		return checkOverlapsFlat(spec, s)
	}

	type iv struct{ u, v int }
	rowIv := make(map[key][]iv)
	colIv := make(map[key][]iv)
	for _, e := range spec.RowEdges {
		k := key{e.Index, e.Track}
		rowIv[k] = append(rowIv[k], iv{2 * e.U, 2 * e.V})
	}
	for _, e := range spec.ColEdges {
		k := key{e.Index, e.Track}
		colIv[k] = append(colIv[k], iv{2 * e.U, 2 * e.V})
	}
	for _, e := range spec.Bent {
		hu, hv, vu, vv := bentHalfIntervals(e)
		hk := key{e.URow, e.HTrack}
		rowIv[hk] = append(rowIv[hk], iv{hu, hv})
		vk := key{e.VCol, e.VTrack}
		colIv[vk] = append(colIv[vk], iv{vu, vv})
	}

	checkDisjoint := func(m map[key][]iv, what string) error {
		for k, ivs := range m {
			sort.Slice(ivs, func(a, b int) bool {
				if ivs[a].u != ivs[b].u {
					return ivs[a].u < ivs[b].u
				}
				return ivs[a].v < ivs[b].v
			})
			for i := 1; i < len(ivs); i++ {
				// Touching at a node (even half-position) is safe: distinct
				// ports order the realized endpoints. Touching inside a
				// channel (odd half-position) is not, since both segments
				// end at track-slot coordinates that need not be ordered.
				if ivs[i].u < ivs[i-1].v || (ivs[i].u == ivs[i-1].v && ivs[i].u%2 == 1) {
					return fmt.Errorf("%s: %s channel %d track %d intervals [%d,%d] and [%d,%d] overlap (half-position units)",
						spec.Name, what, k.index, k.track, ivs[i-1].u, ivs[i-1].v, ivs[i].u, ivs[i].v)
				}
			}
		}
		return nil
	}
	if err := checkDisjoint(rowIv, "row"); err != nil {
		return err
	}
	return checkDisjoint(colIv, "column")
}

// bentHalfIntervals returns a bent edge's two half-position intervals: the
// horizontal segment from the U port (2·UCol) to the trunk channel
// (2·VCol+1), and the vertical segment from URow's channel (2·URow+1) to
// the V port (2·VRow), each normalized to u <= v.
func bentHalfIntervals(e BentEdge) (hu, hv, vu, vv int) {
	hu, hv = 2*e.UCol, 2*e.VCol+1
	if hu > hv {
		hu, hv = hv, hu
	}
	vu, vv = 2*e.URow+1, 2*e.VRow
	if vu > vv {
		vu, vv = vv, vu
	}
	return
}

// checkOverlapsFlat is the arena path's interval-disjointness check: one
// flat tuple slab per direction, sorted by (channel, track, u, v), with
// same-track runs scanned under the map path's overlap rule.
func checkOverlapsFlat(spec *Spec, s *BuildScratch) error {
	rows := s.ivs.take(len(spec.RowEdges)+len(spec.Bent), false)
	k := 0
	for _, e := range spec.RowEdges {
		rows[k] = ivRec{ch: e.Index, track: e.Track, u: 2 * e.U, v: 2 * e.V}
		k++
	}
	for _, e := range spec.Bent {
		hu, hv, _, _ := bentHalfIntervals(e)
		rows[k] = ivRec{ch: e.URow, track: e.HTrack, u: hu, v: hv}
		k++
	}
	if err := scanOverlaps(spec.Name, "row", rows); err != nil {
		return err
	}
	cols := s.ivs.take(len(spec.ColEdges)+len(spec.Bent), false)
	k = 0
	for _, e := range spec.ColEdges {
		cols[k] = ivRec{ch: e.Index, track: e.Track, u: 2 * e.U, v: 2 * e.V}
		k++
	}
	for _, e := range spec.Bent {
		_, _, vu, vv := bentHalfIntervals(e)
		cols[k] = ivRec{ch: e.VCol, track: e.VTrack, u: vu, v: vv}
		k++
	}
	return scanOverlaps(spec.Name, "column", cols)
}

func scanOverlaps(name, what string, ivs []ivRec) error {
	slices.SortFunc(ivs, func(a, b ivRec) int {
		if a.ch != b.ch {
			return a.ch - b.ch
		}
		if a.track != b.track {
			return a.track - b.track
		}
		if a.u != b.u {
			return a.u - b.u
		}
		return a.v - b.v
	})
	for i := 1; i < len(ivs); i++ {
		p, c := ivs[i-1], ivs[i]
		if p.ch != c.ch || p.track != c.track {
			continue
		}
		if c.u < p.v || (c.u == p.v && c.u%2 == 1) {
			return fmt.Errorf("%s: %s channel %d track %d intervals [%d,%d] and [%d,%d] overlap (half-position units)",
				name, what, c.ch, c.track, p.u, p.v, c.u, c.v)
		}
	}
	return nil
}
