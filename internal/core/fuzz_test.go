package core

import (
	"testing"
	"testing/quick"

	"mlvlsi/internal/layout"
)

// specGen builds pseudo-random but spec-valid layouts: random grids, random
// interval sets packed onto tracks by first-fit, random bent edges on
// dedicated or shared tracks. Every generated spec must Build and Verify.
type specGen struct {
	s uint64
}

func newSpecGen(seed int64) *specGen {
	return &specGen{s: uint64(seed)*0x9E3779B97F4A7C15 + 1}
}

func (g *specGen) next(n int) int {
	g.s ^= g.s << 13
	g.s ^= g.s >> 7
	g.s ^= g.s << 17
	if n <= 0 {
		return 0
	}
	return int(g.s % uint64(n))
}

// randChannelEdges fills channels with random interior-disjoint intervals:
// for each channel and track, walk left to right placing intervals with
// random gaps. Tracks where a bent edge will end (odd half-positions) are
// avoided by construction since bent edges get their own track ids here.
func (g *specGen) randChannelEdges(channels, positions, maxTracks, density int) []ChannelEdge {
	var out []ChannelEdge
	for ch := 0; ch < channels; ch++ {
		tracks := 1 + g.next(maxTracks)
		for tr := 0; tr < tracks; tr++ {
			pos := 0
			for pos+1 < positions {
				if g.next(100) >= density {
					pos++
					continue
				}
				span := 1 + g.next(positions-pos-1)
				out = append(out, ChannelEdge{Index: ch, U: pos, V: pos + span, Track: tr})
				pos += span // touching at nodes is legal
			}
		}
	}
	return out
}

func buildRandomSpec(seed int64) Spec {
	g := newSpecGen(seed)
	rows := 2 + g.next(5)
	cols := 2 + g.next(5)
	l := 2 + g.next(7)
	spec := Spec{
		Name: "fuzz", Rows: rows, Cols: cols, L: l,
		RowEdges: g.randChannelEdges(rows, cols, 3, 40),
		ColEdges: g.randChannelEdges(cols, rows, 3, 40),
	}
	// A few bent edges on dedicated tracks.
	for i := 0; i < g.next(6); i++ {
		ur, uc := g.next(rows), g.next(cols)
		vr, vc := g.next(rows), g.next(cols)
		if ur == vr && uc == vc {
			continue
		}
		spec.AddDedicatedBent(ur, uc, vr, vc)
	}
	return spec
}

// Property: every structurally valid random spec builds into a verified
// layout whose wire count equals the edge count.
func TestEngineFuzzRandomSpecs(t *testing.T) {
	f := func(seed int64) bool {
		spec := buildRandomSpec(seed)
		lay, err := Build(spec)
		if err != nil {
			t.Logf("seed %d: build error: %v", seed, err)
			return false
		}
		if v := lay.Verify(); len(v) > 0 {
			t.Logf("seed %d: %d violations, first: %v", seed, len(v), v[0])
			return false
		}
		want := len(spec.RowEdges) + len(spec.ColEdges) + len(spec.Bent)
		return len(lay.Wires) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: Plan and Build agree on geometry (width/height equal the
// realized bounding box when node rectangles anchor the origin).
func TestEnginePlanMatchesBuild(t *testing.T) {
	f := func(seed int64) bool {
		spec := buildRandomSpec(seed)
		geom, err := Plan(spec)
		if err != nil {
			return false
		}
		lay, err := Build(spec)
		if err != nil {
			return false
		}
		b := lay.Bounds()
		// The plan's extents bound the realization (trailing empty channels
		// may leave the realized box smaller).
		return b.Width() <= geom.Width && b.Height() <= geom.Height &&
			geom.Side == lay.Nodes[0].W
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: node-side monotonicity — forcing a larger node side preserves
// legality and can only grow the area.
func TestEngineSideMonotone(t *testing.T) {
	f := func(seed int64) bool {
		spec := buildRandomSpec(seed)
		lay, err := Build(spec)
		if err != nil {
			return false
		}
		side := lay.Nodes[0].W
		spec.NodeSide = side + 1 + int(uint(seed)%3)
		bigger, err := Build(spec)
		if err != nil {
			return false
		}
		if v := bigger.Verify(); len(v) > 0 {
			return false
		}
		return bigger.Area() >= lay.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: adding wiring layers never makes the planned channel area
// larger.
func TestEngineLayersMonotone(t *testing.T) {
	f := func(seed int64) bool {
		spec := buildRandomSpec(seed)
		spec.L = 2
		g2, err := Plan(spec)
		if err != nil {
			return false
		}
		spec.L = 8
		g8, err := Plan(spec)
		if err != nil {
			return false
		}
		return g8.ChannelArea() <= g2.ChannelArea()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every engine output is Thompson-strict — no planar run crosses
// a foreign node's interior (the engines keep all trunks in channels and
// all stubs over their own node).
func TestEngineOutputsAreClearanceClean(t *testing.T) {
	f := func(seed int64) bool {
		lay, err := Build(buildRandomSpec(seed))
		if err != nil {
			return false
		}
		if v := lay.VerifyStrict(); len(v) > 0 {
			t.Logf("seed %d: %v", seed, v[0])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNamedFamiliesClearanceClean(t *testing.T) {
	lays := []func() (*layout.Layout, error){
		func() (*layout.Layout, error) { return Hypercube(6, 4, 0, 0) },
		func() (*layout.Layout, error) { return KAryNCube(4, 2, 4, true, 0, 0) },
		func() (*layout.Layout, error) { return GeneralizedHypercube([]int{4, 4}, 3, 0, 0) },
	}
	for _, mk := range lays {
		lay, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if v := lay.VerifyStrict(); len(v) > 0 {
			t.Errorf("%s: %v", lay.Name, v[0])
		}
	}
}

// Layer grouping sanity: a large-L hypercube layout must actually use every
// wiring layer, with horizontal trunk length concentrated on odd layers and
// vertical on even.
func TestLayerUsageBalanced(t *testing.T) {
	lay, err := Hypercube(8, 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	usage := lay.LayerUsage()
	if len(usage) != 8 {
		t.Fatalf("usage has %d layers, want 8", len(usage))
	}
	for z, u := range usage {
		if u == 0 {
			t.Errorf("layer %d carries no wire length — grouping broken", z+1)
		}
	}
	// Odd (trunk H) layers should each carry a comparable share: no layer
	// more than 4x another within its parity class.
	for _, parity := range []int{0, 1} {
		min, max := int(^uint(0)>>1), 0
		for z := parity; z < 8; z += 2 {
			if usage[z] < min {
				min = usage[z]
			}
			if usage[z] > max {
				max = usage[z]
			}
		}
		if max > 4*min {
			t.Errorf("parity %d layers unbalanced: min %d max %d (usage %v)", parity, min, max, usage)
		}
	}
}
