// Arena-backed build scratch. A BuildScratch gives the engine reusable,
// size-classed slabs for every per-phase allocation the map path makes fresh
// on each call — the label bijection bitmap, the interval-disjointness
// tuples, per-node port demand and port items, per-channel track indexes,
// grid prefix sums, and the flat point slab behind every wire path. Threaded
// through build() it takes a Hypercube(10) build from ~27k allocations to a
// dozen; the map path (Spec.Scratch == nil) is preserved unchanged as the
// reference implementation, and the differential tests pin the two paths to
// byte-identical layouts.
//
// Ownership contract (DESIGN.md §9): by default a layout built with a
// scratch aliases nothing in it — the layout struct, node slice, wire slice,
// and point slab are allocated fresh per build and handed to the caller
// outright, so the scratch may be reset (reused) immediately. In transient
// mode (SetTransient) even those come from the scratch: the returned layout
// is only valid until the next build on the same scratch, the regime the
// VerifyBatch pipeline runs in, where layouts are verified and dropped.
package core

import (
	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/obs"
)

// slab is a bump allocator over one backing array of T. take hands out
// aliased subslices until the array is exhausted, then replaces it with one
// of at least twice the size (power-of-two size classes), so after a warm-up
// build every take is allocation-free. Outstanding slices keep the old array
// alive and stay valid across a growth; reset only rewinds the offset, so
// slices from the previous build are overwritten by the next one — the
// aliasing rule the ownership contract is about.
type slab[T any] struct {
	buf []T
	off int
}

func (s *slab[T]) take(n int, zero bool) []T {
	if s.off+n > len(s.buf) {
		c := 2 * len(s.buf)
		if c < 64 {
			c = 64
		}
		for c < n {
			c *= 2
		}
		s.buf = make([]T, c)
		s.off = 0
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	if zero {
		clear(out)
	}
	return out
}

func (s *slab[T]) reset() { s.off = 0 }

// ivRec is one half-position track interval for the scratch-path overlap
// check: the flat, sortable form of the map path's per-(channel, track)
// interval lists.
type ivRec struct {
	ch, track int
	u, v      int
}

// BuildScratch is the reusable allocation arena for the engine's build path.
// The zero value is ready to use; NewBuildScratch exists for symmetry and
// documentation. A scratch may be reused for any number of builds but never
// concurrently: it is owned by one build at a time, with reuse across
// goroutines ordered through a channel or pool.
type BuildScratch struct {
	transient bool
	warm      bool

	ints    slab[int]
	i32     slab[int32]
	bools   slab[bool]
	items   slab[portItem]
	assigns slab[trackAssign]
	ivs     slab[ivRec]

	// Result slabs, used only in transient mode; in the default mode the
	// layout and everything it references are allocated fresh per build.
	rects slab[grid.Rect]
	wires slab[grid.Wire]
	pts   slab[grid.Point]
	lay   layout.Layout
}

// NewBuildScratch returns an empty scratch; slabs grow to fit on first use
// and are retained for reuse.
func NewBuildScratch() *BuildScratch { return &BuildScratch{} }

// SetTransient toggles transient mode: when on, the layout struct, node
// slice, wire slice, and point slab also come from the scratch, so the
// returned layout is valid only until the next build (or Reset) on this
// scratch. Off — the default — hands out freshly allocated results that
// alias nothing.
func (s *BuildScratch) SetTransient(on bool) { s.transient = on }

// Reset rewinds every slab for reuse. Builds reset the scratch themselves on
// entry, so explicit calls only matter to drop the aliasing claim a
// transient-mode layout has on the slabs.
func (s *BuildScratch) Reset() {
	s.ints.reset()
	s.i32.reset()
	s.bools.reset()
	s.items.reset()
	s.assigns.reset()
	s.ivs.reset()
	s.rects.reset()
	s.wires.reset()
	s.pts.reset()
}

// Element sizes for Bytes, in the style of layout.MemBytes: 64-bit words for
// int-backed types, struct sizes summed field-wise with alignment padding.
const (
	intSize    = 8
	int32Size  = 4
	boolSize   = 1
	itemSize   = 40 // portItem: dir, rank + endRef{kind, idx, isV(+pad)}
	assignSize = 16 // trackAssign: group, slot
	ivRecSize  = 32 // ivRec: ch, track, u, v
	rectSize   = 32 // grid.Rect: X, Y, W, H
	wireSize   = 48 // grid.Wire: ID, U, V, Path header
	pointSize  = 24 // grid.Point: X, Y, Z
)

// Bytes reports the scratch's retained capacity in bytes, the value behind
// the scratch_bytes gauge.
func (s *BuildScratch) Bytes() int64 {
	return int64(cap(s.ints.buf))*intSize +
		int64(cap(s.i32.buf))*int32Size +
		int64(cap(s.bools.buf))*boolSize +
		int64(cap(s.items.buf))*itemSize +
		int64(cap(s.assigns.buf))*assignSize +
		int64(cap(s.ivs.buf))*ivRecSize +
		int64(cap(s.rects.buf))*rectSize +
		int64(cap(s.wires.buf))*wireSize +
		int64(cap(s.pts.buf))*pointSize
}

// beginBuild readies the scratch for one build and accounts the reuse: the
// first build on a scratch is a warm-up, every later one is a scratch_reuse.
func (s *BuildScratch) beginBuild(o *obs.Observer) {
	s.Reset()
	if s.warm {
		o.Add(obs.ScratchReuses, 1)
	}
	s.warm = true
}

// trackTable maps (channel, track) to its assignment. The map path stores a
// hash map; the scratch path stores, per channel, the sorted unique track
// ids (a shared segment of the scratch int slab) plus a parallel assignment
// slab, answered by binary search in lookup.
type trackTable struct {
	m map[key]trackAssign

	starts  []int32 // per-channel segment offsets into ids/as (len channels+1)
	uniqLen []int32 // sorted-unique prefix length of each segment
	ids     []int
	as      []trackAssign
}

// set records the assignment of uniq[idx] == track in channel ch; idx is the
// track's index within the channel's sorted unique ids.
func (t *trackTable) set(ch, idx, track int, a trackAssign) {
	if t.m != nil {
		t.m[key{ch, track}] = a
		return
	}
	t.as[int(t.starts[ch])+idx] = a
}

// lookup returns the assignment of track in channel ch. Every queried
// (channel, track) pair was placed by assignTracks, so the binary search
// always lands on an exact match.
//
//mlvlsi:hotpath
func (t *trackTable) lookup(ch, track int) trackAssign {
	if t.m != nil {
		return t.m[key{ch, track}]
	}
	lo := int(t.starts[ch])
	hi := lo + int(t.uniqLen[ch])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.ids[mid] < track {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return t.as[lo]
}

// portTable maps a wire end to its port offset within the node side. The map
// path hashes endRef; the scratch path indexes a dense table laid out as
// [row-edge ends ×2 | column-edge ends ×2 | bent U ends | bent V ends].
type portTable struct {
	m          map[endRef]int
	dense      []int32
	nRow, nCol int
}

func newPortTable(s *BuildScratch, nRow, nCol, nBent int) *portTable {
	if s == nil {
		return &portTable{m: make(map[endRef]int)}
	}
	return &portTable{
		dense: s.i32.take(2*nRow+2*nCol+2*nBent, false),
		nRow:  nRow, nCol: nCol,
	}
}

func (p *portTable) index(ref endRef) int {
	switch ref.kind {
	case 0:
		i := 2 * ref.idx
		if ref.isV {
			i++
		}
		return i
	case 1:
		i := 2*p.nRow + 2*ref.idx
		if ref.isV {
			i++
		}
		return i
	case 2:
		return 2*p.nRow + 2*p.nCol + 2*ref.idx
	default: // kind 3, the bent V end
		return 2*p.nRow + 2*p.nCol + 2*ref.idx + 1
	}
}

func (p *portTable) set(ref endRef, off int) {
	if p.m != nil {
		p.m[ref] = off
		return
	}
	p.dense[p.index(ref)] = int32(off)
}

// port returns the offset assigned to ref; every ref queried during
// realization was set during port assignment.
//
//mlvlsi:hotpath
func (p *portTable) port(ref endRef) int {
	if p.m != nil {
		return p.m[ref]
	}
	return int(p.dense[p.index(ref)])
}

// endsTable collects the per-node wire-end items for port assignment. The
// map path appends to per-node slices; the scratch path count-then-fills one
// flat slab using the already-computed per-node port demand as the counts.
type endsTable struct {
	perNode [][]portItem

	flat   []portItem
	starts []int32
	next   []int32
}

func (t *endsTable) init(s *BuildScratch, counts []int) {
	n := len(counts)
	t.starts = s.i32.take(n+1, false)
	t.next = s.i32.take(n, false)
	total := 0
	for i, c := range counts {
		t.starts[i] = int32(total)
		t.next[i] = int32(total)
		total += c
	}
	t.starts[n] = int32(total)
	t.flat = s.items.take(total, false)
}

func (t *endsTable) add(node int, it portItem) {
	if t.perNode != nil {
		t.perNode[node] = append(t.perNode[node], it)
		return
	}
	t.flat[t.next[node]] = it
	t.next[node]++
}

func (t *endsTable) seg(node int) []portItem {
	if t.perNode != nil {
		return t.perNode[node]
	}
	return t.flat[t.starts[node]:t.next[node]]
}
