package core

import (
	"reflect"
	"testing"

	"mlvlsi/internal/track"
)

// TestRealizeWorkerCountInvariance builds one spec (row edges, column
// edges, and bent edges) and realizes it at several worker counts: the
// wire slices must be byte-identical, including IDs and path geometry.
func TestRealizeWorkerCountInvariance(t *testing.T) {
	base := FromFactors("invariance", track.Hypercube(3), track.Hypercube(3), 3, 0)
	// A few bent edges so all three wire kinds go through the parallel loop.
	base.AddDedicatedBent(0, 0, 7, 7)
	base.AddDedicatedBent(2, 1, 5, 6)
	base.AddDedicatedBent(1, 3, 6, 2)

	spec := base
	spec.Workers = 1
	ref, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v := ref.Verify(); len(v) > 0 {
		t.Fatalf("reference layout illegal: %v", v[0])
	}
	for _, workers := range []int{0, 2, 4, 7} {
		spec := base
		spec.Workers = workers
		lay, err := Build(spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(lay.Wires, ref.Wires) {
			t.Errorf("workers=%d realized different wires than serial", workers)
		}
		if !reflect.DeepEqual(lay.Nodes, ref.Nodes) {
			t.Errorf("workers=%d placed different nodes than serial", workers)
		}
	}
}
