package core

import "mlvlsi/internal/intervals"

// CompactTracks returns a copy of the spec with every channel's tracks
// re-colored by optimal greedy interval coloring (per-channel congestion
// many tracks). Channel edges and bent-edge segments are colored together
// under the engine's half-position touch rules, so the result is always
// buildable. This is the ablation comparing the paper's structured track
// recurrences (which determine the original track ids) against
// per-instance optimal assignment: for the paper's constructions the two
// coincide — the recurrences are congestion-optimal for their placements —
// while ad-hoc track assignments can be compressed.
func CompactTracks(spec Spec) Spec {
	out := spec
	out.RowEdges = append([]ChannelEdge(nil), spec.RowEdges...)
	out.ColEdges = append([]ChannelEdge(nil), spec.ColEdges...)
	out.Bent = append([]BentEdge(nil), spec.Bent...)

	// Row channels: row edges and bent horizontal segments.
	type ref struct {
		bent bool
		idx  int
	}
	rowIvs := make(map[int][]intervals.Interval)
	rowRefs := make(map[int][]ref)
	for i, e := range out.RowEdges {
		rowIvs[e.Index] = append(rowIvs[e.Index], intervals.Interval{
			U: 2 * e.U, V: 2 * e.V, ID: len(rowRefs[e.Index]),
		})
		rowRefs[e.Index] = append(rowRefs[e.Index], ref{false, i})
	}
	for i, e := range out.Bent {
		hu, hv := 2*e.UCol, 2*e.VCol+1
		if hu > hv {
			hu, hv = hv, hu
		}
		rowIvs[e.URow] = append(rowIvs[e.URow], intervals.Interval{
			U: hu, V: hv, ID: len(rowRefs[e.URow]),
		})
		rowRefs[e.URow] = append(rowRefs[e.URow], ref{true, i})
	}
	for ch, ivs := range rowIvs {
		tracks, _ := intervals.Color(ivs)
		for j, iv := range ivs {
			r := rowRefs[ch][iv.ID]
			if r.bent {
				out.Bent[r.idx].HTrack = tracks[j]
			} else {
				out.RowEdges[r.idx].Track = tracks[j]
			}
		}
	}

	// Column channels: column edges and bent vertical segments.
	colIvs := make(map[int][]intervals.Interval)
	colRefs := make(map[int][]ref)
	for i, e := range out.ColEdges {
		colIvs[e.Index] = append(colIvs[e.Index], intervals.Interval{
			U: 2 * e.U, V: 2 * e.V, ID: len(colRefs[e.Index]),
		})
		colRefs[e.Index] = append(colRefs[e.Index], ref{false, i})
	}
	for i, e := range out.Bent {
		vu, vv := 2*e.URow+1, 2*e.VRow
		if vu > vv {
			vu, vv = vv, vu
		}
		colIvs[e.VCol] = append(colIvs[e.VCol], intervals.Interval{
			U: vu, V: vv, ID: len(colRefs[e.VCol]),
		})
		colRefs[e.VCol] = append(colRefs[e.VCol], ref{true, i})
	}
	for ch, ivs := range colIvs {
		tracks, _ := intervals.Color(ivs)
		for j, iv := range ivs {
			r := colRefs[ch][iv.ID]
			if r.bent {
				out.Bent[r.idx].VTrack = tracks[j]
			} else {
				out.ColEdges[r.idx].Track = tracks[j]
			}
		}
	}
	return out
}
