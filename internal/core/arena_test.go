package core

import (
	"reflect"
	"testing"
)

// arenaSpecs are the engine-level differential inputs: a hypercube (row and
// column channels, no bents) and a k-ary cube with dedicated bent channels,
// so every realization shape — eight-point straight paths and ten-point bent
// paths — crosses both storage backends.
func arenaSpecs() []func() Spec {
	return []func() Spec{
		func() Spec { return HypercubeSpec(8, 4, 0) },
		func() Spec {
			s := KAryNCubeSpec(4, 3, 4, false, 0)
			s.AddDedicatedBent(0, 0, 3, 3)
			s.AddDedicatedBent(1, 2, 2, 1)
			return s
		},
	}
}

// TestArenaMatchesLegacy is the engine-level differential: an arena build
// must be deep-equal to the legacy map-path build — wires, nodes, geometry,
// everything — and stay so across repeated builds on the same scratch, where
// slab reuse would expose any stale-state bug.
func TestArenaMatchesLegacy(t *testing.T) {
	for _, mk := range arenaSpecs() {
		legacy, err := Build(mk())
		if err != nil {
			t.Fatal(err)
		}
		sc := NewBuildScratch()
		for i := 0; i < 3; i++ {
			spec := mk()
			spec.Scratch = sc
			got, err := Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(legacy, got) {
				t.Fatalf("reuse iteration %d: arena build differs from legacy", i)
			}
		}
	}
}

// TestTransientMatchesSafe checks the transient mode: a layout whose result
// slabs live inside the scratch must equal the safe-mode (and hence legacy)
// layout while it is live — i.e. until the next build on that scratch.
func TestTransientMatchesSafe(t *testing.T) {
	for _, mk := range arenaSpecs() {
		want, err := Build(mk())
		if err != nil {
			t.Fatal(err)
		}
		sc := NewBuildScratch()
		sc.SetTransient(true)
		for i := 0; i < 3; i++ {
			spec := mk()
			spec.Scratch = sc
			got, err := Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("reuse iteration %d: transient build differs from legacy", i)
			}
		}
	}
}

// TestBuildAllocsBudget pins the tentpole number: a warm arena build of the
// 1024-node hypercube must stay within 64 allocations (the safe-mode result
// slices — layout, nodes, wires, one point slab — plus slack for incidental
// runtime allocations). The legacy path allocates per wire and per map entry;
// this budget is what the scratch exists to buy.
func TestBuildAllocsBudget(t *testing.T) {
	spec := HypercubeSpec(10, 4, 0)
	spec.Scratch = NewBuildScratch()
	spec.Workers = 1
	if _, err := Build(spec); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(10, func() {
		s := spec
		if _, err := Build(s); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs per warm arena build: %v", n)
	if n > 64 {
		t.Fatalf("warm arena build costs %v allocs, budget is 64", n)
	}
}

func benchBuild(b *testing.B, scratch *BuildScratch) {
	b.Helper()
	spec := HypercubeSpec(10, 4, 0)
	spec.Scratch = scratch
	spec.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := spec
		if _, err := Build(s); err != nil {
			b.Fatal(err)
		}
	}
}

// The three build paths on the same prebuilt spec: legacy map path, arena
// safe mode (fresh results), arena transient mode (results inside the
// scratch). Run with -benchmem: the alloc column is the point.
func BenchmarkBuildLegacy(b *testing.B)  { benchBuild(b, nil) }
func BenchmarkBuildScratch(b *testing.B) { benchBuild(b, NewBuildScratch()) }
func BenchmarkBuildTransient(b *testing.B) {
	sc := NewBuildScratch()
	sc.SetTransient(true)
	benchBuild(b, sc)
}
