package core

import (
	"sort"
	"testing"
	"testing/quick"

	"mlvlsi/internal/layout"
	"mlvlsi/internal/topology"
	"mlvlsi/internal/track"
)

// sameGraph checks that the realized wires' endpoint multiset equals the
// topology's link multiset.
func sameGraph(t *testing.T, lay *layout.Layout, g *topology.Graph) {
	t.Helper()
	if len(lay.Nodes) != g.N {
		t.Fatalf("%s: %d nodes laid out, topology has %d", lay.Name, len(lay.Nodes), g.N)
	}
	if len(lay.Wires) != len(g.Links) {
		t.Fatalf("%s: %d wires, topology has %d links", lay.Name, len(lay.Wires), len(g.Links))
	}
	var got []topology.Link
	for i := range lay.Wires {
		u, v := lay.Wires[i].U, lay.Wires[i].V
		if u > v {
			u, v = v, u
		}
		got = append(got, topology.Link{U: u, V: v})
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].U != got[j].U {
			return got[i].U < got[j].U
		}
		return got[i].V < got[j].V
	})
	want := g.LinkSet()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: wire set differs at %d: got %v want %v", lay.Name, i, got[i], want[i])
		}
	}
}

// mustBuild returns a checker that fails the test unless the layout built
// without error and verifies as legal. Curried so call sites can splat the
// (layout, error) pair of a builder directly.
func mustBuild(t *testing.T) func(*layout.Layout, error) *layout.Layout {
	return func(lay *layout.Layout, err error) *layout.Layout {
		t.Helper()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if v := lay.Verify(); len(v) > 0 {
			t.Fatalf("%s: %d violations, first: %v", lay.Name, len(v), v[0])
		}
		return lay
	}
}

func TestHypercubeLayoutLegalAndCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7} {
		for _, l := range []int{2, 3, 4, 6, 8} {
			lay := mustBuild(t)(Hypercube(n, l, 0, 0))
			sameGraph(t, lay, topology.Hypercube(n))
		}
	}
}

func TestKAryLayoutLegalAndCorrect(t *testing.T) {
	for _, tc := range []struct{ k, n, l int }{
		{3, 2, 2}, {3, 2, 4}, {4, 2, 2}, {4, 3, 4}, {5, 2, 3}, {3, 3, 8}, {4, 1, 2},
	} {
		lay := mustBuild(t)(KAryNCube(tc.k, tc.n, tc.l, false, 0, 0))
		sameGraph(t, lay, topology.KAryNCube(tc.k, tc.n))
	}
}

func TestKAryFoldedLayout(t *testing.T) {
	plain := mustBuild(t)(KAryNCube(8, 2, 2, false, 0, 0))
	folded := mustBuild(t)(KAryNCube(8, 2, 2, true, 0, 0))
	sameGraph(t, folded, topology.KAryNCube(8, 2))
	if folded.MaxWireLength() >= plain.MaxWireLength() {
		t.Errorf("folded maxwire %d not shorter than plain %d",
			folded.MaxWireLength(), plain.MaxWireLength())
	}
}

func TestGHCLayoutLegalAndCorrect(t *testing.T) {
	for _, radices := range [][]int{{3, 3}, {4, 4}, {3, 4, 5}, {5}, {2, 2, 2, 2}} {
		for _, l := range []int{2, 4, 5} {
			lay := mustBuild(t)(GeneralizedHypercube(radices, l, 0, 0))
			sameGraph(t, lay, topology.GeneralizedHypercube(radices))
		}
	}
}

func planHypercube(t *testing.T, n, l int) Geometry {
	t.Helper()
	spec := FromFactors("plan", track.Hypercube(n/2), track.Hypercube((n+1)/2), l, 0)
	g, err := Plan(spec)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	return g
}

func TestChannelAreaShrinksQuadratically(t *testing.T) {
	// §2.2 claim (1): using L=2t layers instead of 2 divides the area by
	// about t². The paper's formulas count wiring tracks (node squares are
	// the o(1) term), so the exact claim holds on the channel area, up to
	// per-channel ceiling slack.
	g2 := planHypercube(t, 10, 2)
	g8 := planHypercube(t, 10, 8)
	r := float64(g2.ChannelArea()) / float64(g8.ChannelArea())
	// Ideal 16; ⌈t/4⌉ ceilings only make the L=8 channels larger, so the
	// ratio can fall below but never above the ideal.
	if r < 11.0 || r > 16.5 {
		t.Errorf("channel area(L=2)/area(L=8) = %.2f, want ≈ 16", r)
	}
	// Full area must also shrink monotonically and substantially.
	a2 := mustBuild(t)(Hypercube(8, 2, 0, 0)).Area()
	a4 := mustBuild(t)(Hypercube(8, 4, 0, 0)).Area()
	a8 := mustBuild(t)(Hypercube(8, 8, 0, 0)).Area()
	if !(a8 < a4 && a4 < a2) {
		t.Errorf("full areas not monotone: %d, %d, %d", a2, a4, a8)
	}
}

func TestAreaRatioApproachesIdealWithN(t *testing.T) {
	// As N grows, node squares become negligible and the full-area ratio
	// area(L=2)/area(L=4) climbs toward 4.
	prev := 0.0
	for _, n := range []int{6, 8, 10, 12} {
		g2 := planHypercube(t, n, 2)
		g4 := planHypercube(t, n, 4)
		r := float64(g2.Area()) / float64(g4.Area())
		if r < prev {
			t.Errorf("n=%d: full-area ratio %.3f decreased (prev %.3f)", n, r, prev)
		}
		prev = r
	}
	if prev < 2.5 {
		t.Errorf("full-area ratio at n=12 is %.2f, expected > 2.5 en route to 4", prev)
	}
}

func TestVolumeShrinksLinearly(t *testing.T) {
	// §2.2 claim (2): volume shrinks by about t = L/2 (on the wiring-
	// dominated geometry; with a fixed 2-layer layout folding would leave
	// volume unchanged).
	g2 := planHypercube(t, 10, 2)
	g8 := planHypercube(t, 10, 8)
	v2 := 2 * g2.ChannelArea()
	v8 := 8 * g8.ChannelArea()
	r := float64(v2) / float64(v8)
	if r < 2.7 || r > 4.2 {
		t.Errorf("channel volume(L=2)/volume(L=8) = %.2f, want ≈ 4", r)
	}
}

func TestMaxWireShrinksLinearly(t *testing.T) {
	// §2.2 claim (3): maximum wire length shrinks by about L/2. On finite
	// instances node squares damp the ratio; require a clear decrease and
	// cross-check the trend.
	w2 := mustBuild(t)(Hypercube(8, 2, 0, 0)).MaxWireLength()
	w4 := mustBuild(t)(Hypercube(8, 4, 0, 0)).MaxWireLength()
	w8 := mustBuild(t)(Hypercube(8, 8, 0, 0)).MaxWireLength()
	if !(w8 < w4 && w4 < w2) {
		t.Fatalf("maxwire not monotone in L: %d, %d, %d", w2, w4, w8)
	}
	r := float64(w2) / float64(w8)
	if r < 1.7 {
		t.Errorf("maxwire(L=2)/maxwire(L=8) = %.2f, want approaching 4", r)
	}
}

func TestOddLayerLayouts(t *testing.T) {
	// Odd L uses (L+1)/2 horizontal and (L−1)/2 vertical groups; area lands
	// between the two adjacent even-L areas.
	a2 := mustBuild(t)(Hypercube(7, 2, 0, 0)).Area()
	a3 := mustBuild(t)(Hypercube(7, 3, 0, 0)).Area()
	a4 := mustBuild(t)(Hypercube(7, 4, 0, 0)).Area()
	if !(a4 <= a3 && a3 <= a2) {
		t.Errorf("areas not monotone in L: a2=%d a3=%d a4=%d", a2, a3, a4)
	}
}

func TestNodeSideScalability(t *testing.T) {
	// The paper's "optimally scalable" claim: growing the node side up to
	// o(width/N^(1/2)) leaves the leading constant unchanged. With side
	// doubled from minimal, area should grow by well under 2x on a large
	// instance.
	minimal := mustBuild(t)(Hypercube(10, 2, 0, 0))
	side := minimal.Nodes[0].W
	bigger := mustBuild(t)(Hypercube(10, 2, side*2, 0))
	sameGraph(t, bigger, topology.Hypercube(10))
	growth := float64(bigger.Area()) / float64(minimal.Area())
	if growth > 1.5 {
		t.Errorf("doubling node side grew area by %.2fx, want < 1.5x", growth)
	}
}

func TestBentEdgesLegal(t *testing.T) {
	// A 4x4 grid of isolated nodes joined only by bent edges on dedicated
	// tracks must verify.
	spec := Spec{Name: "bent-only", Rows: 4, Cols: 4, L: 4}
	for _, e := range [][4]int{
		{0, 0, 3, 3},
		{0, 3, 3, 0},
		{1, 1, 2, 2},
		{2, 0, 1, 3},
		{3, 1, 0, 2},
		{1, 0, 1, 2}, // same row
		{0, 1, 2, 1}, // same column
	} {
		spec.AddDedicatedBent(e[0], e[1], e[2], e[3])
	}
	lay, err := Build(spec)
	mustBuild(t)(lay, err)
	if len(lay.Wires) != len(spec.Bent) {
		t.Errorf("%d wires, want %d", len(lay.Wires), len(spec.Bent))
	}
}

func TestBentEdgesSharedTracks(t *testing.T) {
	// Bent edges with disjoint extents may share tracks; overlapping ones
	// must be rejected.
	ok := Spec{
		Name: "bent-shared", Rows: 4, Cols: 6, L: 2,
		Bent: []BentEdge{
			{URow: 0, UCol: 0, VRow: 3, VCol: 1, HTrack: 0, VTrack: 0},
			{URow: 0, UCol: 3, VRow: 3, VCol: 4, HTrack: 0, VTrack: 0}, // disjoint columns, same H track, V track in another channel
		},
	}
	lay, err := Build(ok)
	mustBuild(t)(lay, err)

	bad := Spec{
		Name: "bent-overlap", Rows: 4, Cols: 6, L: 2,
		Bent: []BentEdge{
			{URow: 0, UCol: 0, VRow: 3, VCol: 3, HTrack: 0, VTrack: 0},
			{URow: 0, UCol: 2, VRow: 3, VCol: 5, HTrack: 0, VTrack: 1},
		},
	}
	if _, err := Build(bad); err == nil {
		t.Error("overlapping bent H segments on one track accepted")
	}

	// Two bent edges whose segments touch inside a channel (odd
	// half-position) must be rejected even without interior overlap.
	touch := Spec{
		Name: "bent-touch", Rows: 4, Cols: 6, L: 2,
		Bent: []BentEdge{
			{URow: 0, UCol: 0, VRow: 3, VCol: 2, HTrack: 0, VTrack: 0},
			{URow: 0, UCol: 5, VRow: 3, VCol: 2, HTrack: 0, VTrack: 1},
		},
	}
	if _, err := Build(touch); err == nil {
		t.Error("bent H segments touching at a channel accepted")
	}
}

func TestBentWithChannelEdgesMixed(t *testing.T) {
	// Bent edges sharing a row track with row edges: the row edge occupies
	// columns [0,1]; the bent H segment runs from column 2 to the channel
	// right of column 4 on the same track.
	spec := Spec{
		Name: "mixed", Rows: 3, Cols: 5, L: 4,
		RowEdges: []ChannelEdge{{Index: 0, U: 0, V: 1, Track: 0}},
		ColEdges: []ChannelEdge{{Index: 4, U: 0, V: 2, Track: 0}},
		Bent: []BentEdge{
			{URow: 0, UCol: 2, VRow: 2, VCol: 4, HTrack: 0, VTrack: 1},
		},
	}
	lay, err := Build(spec)
	mustBuild(t)(lay, err)
	if len(lay.Wires) != 3 {
		t.Errorf("%d wires, want 3", len(lay.Wires))
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{Name: "no layers", Rows: 2, Cols: 2, L: 1},
		{Name: "empty", Rows: 0, Cols: 2, L: 2},
		{Name: "bad label", Rows: 2, Cols: 2, L: 2,
			Label: func(r, c int) int { return 0 }},
		{Name: "edge range", Rows: 2, Cols: 2, L: 2,
			RowEdges: []ChannelEdge{{Index: 0, U: 0, V: 2, Track: 0}}},
		{Name: "edge order", Rows: 2, Cols: 3, L: 2,
			RowEdges: []ChannelEdge{{Index: 0, U: 1, V: 1, Track: 0}}},
		{Name: "track overlap", Rows: 1, Cols: 4, L: 2,
			RowEdges: []ChannelEdge{
				{Index: 0, U: 0, V: 2, Track: 0},
				{Index: 0, U: 1, V: 3, Track: 0},
			}},
		{Name: "bent range", Rows: 2, Cols: 2, L: 2,
			Bent: []BentEdge{{URow: 0, UCol: 0, VRow: 2, VCol: 0}}},
		{Name: "bent selfloop", Rows: 2, Cols: 2, L: 2,
			Bent: []BentEdge{{URow: 1, UCol: 1, VRow: 1, VCol: 1}}},
		{Name: "side too small", Rows: 1, Cols: 3, L: 2, NodeSide: 1,
			RowEdges: []ChannelEdge{
				{Index: 0, U: 0, V: 1, Track: 0},
				{Index: 0, U: 1, V: 2, Track: 1},
			}},
	}
	for _, spec := range cases {
		if _, err := Build(spec); err == nil {
			t.Errorf("%s: expected error", spec.Name)
		}
	}
}

func TestTouchingIntervalsSameTrack(t *testing.T) {
	// Two edges sharing an endpoint on the same track must realize with
	// interior-disjoint trunks thanks to port ordering.
	spec := Spec{
		Name: "touching", Rows: 1, Cols: 3, L: 2,
		RowEdges: []ChannelEdge{
			{Index: 0, U: 0, V: 1, Track: 0},
			{Index: 0, U: 1, V: 2, Track: 0},
		},
	}
	lay, err := Build(spec)
	mustBuild(t)(lay, err)
}

func TestTouchingIntervalsColumn(t *testing.T) {
	spec := Spec{
		Name: "touching-col", Rows: 3, Cols: 1, L: 2,
		ColEdges: []ChannelEdge{
			{Index: 0, U: 0, V: 1, Track: 0},
			{Index: 0, U: 1, V: 2, Track: 0},
		},
	}
	lay, err := Build(spec)
	mustBuild(t)(lay, err)
}

func TestFromFactorsLabels(t *testing.T) {
	// C4 row factor uses Gray-code labels; the composed labels must form
	// the 4-cube exactly.
	lay := mustBuild(t)(BuildProduct("cube4", track.Hypercube(2), track.Hypercube(2), 2, 0, 0))
	sameGraph(t, lay, topology.Hypercube(4))
}

// Property: random products of small factors build, verify, and realize
// the right graph sizes under random L (including odd).
func TestEnginePropertyRandomProducts(t *testing.T) {
	f := func(a, b, c uint8) bool {
		k1 := 2 + int(a%4)
		k2 := 2 + int(b%4)
		l := 2 + int(c%5)
		rowFac := track.Ring(k1)
		colFac := track.Complete(k2)
		lay, err := BuildProduct("prop", rowFac, colFac, l, 0, 0)
		if err != nil {
			return false
		}
		if len(lay.Verify()) > 0 {
			return false
		}
		wantWires := k2*len(rowFac.Edges) + k1*len(colFac.Edges)
		return len(lay.Wires) == wantWires && len(lay.Nodes) == k1*k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMeshLayout(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		l    int
	}{
		{[]int{4, 4}, 2}, {[]int{3, 5}, 2}, {[]int{2, 3, 4}, 4},
		{[]int{8}, 2}, {[]int{2, 2, 2, 2}, 3},
	} {
		lay := mustBuild(t)(Mesh(tc.dims, tc.l, 0, 0))
		sameGraph(t, lay, topology.Mesh(tc.dims))
	}
}

func TestMeshCheaperThanTorus(t *testing.T) {
	// A mesh has no wraparound links: fewer tracks, less area than the
	// same-extent torus.
	mesh := mustBuild(t)(Mesh([]int{8, 8}, 2, 0, 0))
	torus := mustBuild(t)(KAryNCube(8, 2, 2, false, 0, 0))
	if mesh.Area() >= torus.Area() {
		t.Errorf("mesh area %d not below torus area %d", mesh.Area(), torus.Area())
	}
	if mesh.MaxWireLength() >= torus.MaxWireLength() {
		t.Errorf("mesh max wire %d not below torus %d", mesh.MaxWireLength(), torus.MaxWireLength())
	}
}
