package core

import (
	"testing"
	"testing/quick"

	"mlvlsi/internal/track"
)

func TestCompactPreservesLegality(t *testing.T) {
	f := func(seed int64) bool {
		spec := buildRandomSpec(seed)
		compacted := CompactTracks(spec)
		lay, err := Build(compacted)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if v := lay.Verify(); len(v) > 0 {
			t.Logf("seed %d: %v", seed, v[0])
			return false
		}
		return len(lay.Wires) == len(spec.RowEdges)+len(spec.ColEdges)+len(spec.Bent)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Without bent edges, compaction never grows any channel: per-channel
// track counts are congestion-optimal and group assignment is balanced.
// (With bent edges, recoloring can merge track-sharing components and
// change the group pinning, so only legality is guaranteed — covered by
// TestCompactPreservesLegality.)
func TestCompactNeverGrowsChannels(t *testing.T) {
	f := func(seed int64) bool {
		spec := buildRandomSpec(seed)
		spec.Bent = nil
		before, err := Plan(spec)
		if err != nil {
			return false
		}
		after, err := Plan(CompactTracks(spec))
		if err != nil {
			return false
		}
		return after.ChannelWidth <= before.ChannelWidth &&
			after.ChannelHeight <= before.ChannelHeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The paper's structured recurrences are congestion-optimal for their
// placements: compaction must not improve the hypercube, k-ary, or GHC
// product specs.
func TestPaperConstructionsAlreadyOptimal(t *testing.T) {
	specs := []Spec{
		FromFactors("cube", track.Hypercube(4), track.Hypercube(4), 2, 0),
		FromFactors("kary", track.KAryNCube(4, 2, false), track.KAryNCube(4, 2, false), 2, 0),
		FromFactors("ghc", track.GeneralizedHypercube([]int{5}), track.GeneralizedHypercube([]int{5}), 2, 0),
	}
	for _, spec := range specs {
		before, err := Plan(spec)
		if err != nil {
			t.Fatal(err)
		}
		after, err := Plan(CompactTracks(spec))
		if err != nil {
			t.Fatal(err)
		}
		if after.ChannelWidth != before.ChannelWidth || after.ChannelHeight != before.ChannelHeight {
			t.Errorf("%s: compaction changed channels %dx%d -> %dx%d (structured assignment was not optimal)",
				spec.Name, before.ChannelWidth, before.ChannelHeight,
				after.ChannelWidth, after.ChannelHeight)
		}
	}
}

// A deliberately wasteful assignment must compress.
func TestCompactCompressesWastefulSpec(t *testing.T) {
	spec := Spec{
		Name: "wasteful", Rows: 1, Cols: 6, L: 2,
		RowEdges: []ChannelEdge{
			{Index: 0, U: 0, V: 1, Track: 0},
			{Index: 0, U: 2, V: 3, Track: 7},  // could share track 0
			{Index: 0, U: 4, V: 5, Track: 42}, // could share track 0
		},
	}
	before, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Plan(CompactTracks(spec))
	if err != nil {
		t.Fatal(err)
	}
	if before.ChannelHeight != 3 || after.ChannelHeight != 1 {
		t.Errorf("channel height %d -> %d, want 3 -> 1", before.ChannelHeight, after.ChannelHeight)
	}
}
