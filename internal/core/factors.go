package core

import (
	"fmt"

	"mlvlsi/internal/layout"
	"mlvlsi/internal/track"
)

// FromFactors builds the spec of the paper's product-network layout (§3.2):
// the node grid has one column per position of rowFac and one row per
// position of colFac; every row is wired as the collinear layout rowFac and
// every column as colFac. The node at grid position (r, c) receives label
// colFac.Label(r)·rowFac.N + rowFac.Label(c), so for factor layouts built by
// the track package the realized graph is exactly the Cartesian product
// topology on its canonical labels.
func FromFactors(name string, rowFac, colFac *track.Collinear, l, nodeSide int) Spec {
	spec := Spec{
		Name:     name,
		Rows:     colFac.N,
		Cols:     rowFac.N,
		L:        l,
		NodeSide: nodeSide,
		Label: func(r, c int) int {
			return colFac.Label(r)*rowFac.N + rowFac.Label(c)
		},
	}
	spec.RowEdges = make([]ChannelEdge, 0, spec.Rows*len(rowFac.Edges))
	for r := 0; r < spec.Rows; r++ {
		for _, e := range rowFac.Edges {
			spec.RowEdges = append(spec.RowEdges, ChannelEdge{Index: r, U: e.U, V: e.V, Track: e.Track})
		}
	}
	spec.ColEdges = make([]ChannelEdge, 0, spec.Cols*len(colFac.Edges))
	for c := 0; c < spec.Cols; c++ {
		for _, e := range colFac.Edges {
			spec.ColEdges = append(spec.ColEdges, ChannelEdge{Index: c, U: e.U, V: e.V, Track: e.Track})
		}
	}
	return spec
}

// BuildProduct lays out the product of the two collinear factors under L
// wiring layers (nodeSide 0 = minimal). workers bounds the realization
// fan-out: 0 means GOMAXPROCS, 1 forces serial execution.
func BuildProduct(name string, rowFac, colFac *track.Collinear, l, nodeSide, workers int) (*layout.Layout, error) {
	spec := FromFactors(name, rowFac, colFac, l, nodeSide)
	spec.Workers = workers
	return Build(spec)
}

// KAryNCubeSpec assembles the spec of the k-ary n-cube layout of §3.1
// without realizing it: the row factor is a k-ary ⌊n/2⌋-cube and the column
// factor a k-ary ⌈n/2⌉-cube, both as 2(k^m−1)/(k−1)-track collinear layouts
// (folded rings when folded is set, which shortens the maximum wire to
// O(N/(Lk²))). Callers may set Workers/Ctx/MaxCells on the result before
// Build.
func KAryNCubeSpec(k, n, l int, folded bool, nodeSide int) Spec {
	rowFac := track.KAryNCube(k, n/2, folded)
	colFac := track.KAryNCube(k, (n+1)/2, folded)
	if n/2 == 0 {
		rowFac = &track.Collinear{Name: "trivial", N: 1}
	}
	name := fmt.Sprintf("%d-ary %d-cube L=%d", k, n, l)
	if folded {
		name += " folded"
	}
	return FromFactors(name, rowFac, colFac, l, nodeSide)
}

// KAryNCube lays out a k-ary n-cube under L wiring layers following §3.1;
// see KAryNCubeSpec.
func KAryNCube(k, n, l int, folded bool, nodeSide, workers int) (*layout.Layout, error) {
	spec := KAryNCubeSpec(k, n, l, folded, nodeSide)
	spec.Workers = workers
	return Build(spec)
}

// HypercubeSpec assembles the spec of the binary n-cube layout of §5.1
// without realizing it: both factors are the ⌊2N/3⌋-track collinear
// hypercube layouts.
func HypercubeSpec(n, l, nodeSide int) Spec {
	rowFac := track.Hypercube(n / 2)
	colFac := track.Hypercube((n + 1) / 2)
	return FromFactors(fmt.Sprintf("%d-cube L=%d", n, l), rowFac, colFac, l, nodeSide)
}

// Hypercube lays out the binary n-cube under L wiring layers following
// §5.1; see HypercubeSpec.
func Hypercube(n, l, nodeSide, workers int) (*layout.Layout, error) {
	spec := HypercubeSpec(n, l, nodeSide)
	spec.Workers = workers
	return Build(spec)
}

// GeneralizedHypercubeSpec assembles the spec of the n-dimensional
// mixed-radix generalized hypercube layout of §4.1 without realizing it:
// the low ⌊n/2⌋ dimensions form the row factor and the high ⌈n/2⌉
// dimensions the column factor, each as the (N−1)⌊r²/4⌋/(r−1)-track
// collinear layout. radices[0] is least significant.
func GeneralizedHypercubeSpec(radices []int, l, nodeSide int) Spec {
	m := len(radices) / 2
	rowFac := track.GeneralizedHypercube(radices[:m])
	colFac := track.GeneralizedHypercube(radices[m:])
	if m == 0 {
		rowFac = &track.Collinear{Name: "trivial", N: 1}
	}
	return FromFactors(fmt.Sprintf("GHC%v L=%d", radices, l), rowFac, colFac, l, nodeSide)
}

// GeneralizedHypercube lays out an n-dimensional mixed-radix generalized
// hypercube under L wiring layers following §4.1; see
// GeneralizedHypercubeSpec.
func GeneralizedHypercube(radices []int, l, nodeSide, workers int) (*layout.Layout, error) {
	spec := GeneralizedHypercubeSpec(radices, l, nodeSide)
	spec.Workers = workers
	return Build(spec)
}

// MeshSpec assembles the spec of the n-dimensional mesh layout (§3.2's
// first product-network example) without realizing it: the low ⌊n/2⌋
// extents form the row factor and the high ⌈n/2⌉ the column factor, each as
// a product-of-paths collinear layout. dims[0] is least significant,
// matching topology.Mesh.
func MeshSpec(dims []int, l, nodeSide int) Spec {
	m := len(dims) / 2
	rowFac := track.MeshCollinear(dims[:m])
	colFac := track.MeshCollinear(dims[m:])
	if m == 0 {
		rowFac = &track.Collinear{Name: "trivial", N: 1}
	}
	return FromFactors(fmt.Sprintf("mesh%v L=%d", dims, l), rowFac, colFac, l, nodeSide)
}

// Mesh lays out an n-dimensional mesh under L wiring layers; see MeshSpec.
func Mesh(dims []int, l, nodeSide, workers int) (*layout.Layout, error) {
	spec := MeshSpec(dims, l, nodeSide)
	spec.Workers = workers
	return Build(spec)
}
