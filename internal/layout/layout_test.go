package layout

import (
	"strings"
	"testing"

	"mlvlsi/internal/grid"
)

// tiny builds a 2-node layout with one legal wire.
func tiny() *Layout {
	return &Layout{
		Name: "tiny",
		L:    2,
		Nodes: []grid.Rect{
			{X: 0, Y: 0, W: 2, H: 2},
			{X: 10, Y: 0, W: 2, H: 2},
		},
		Wires: []grid.Wire{{
			ID: 0, U: 0, V: 1,
			Path: []grid.Point{
				{X: 1, Y: 2, Z: 0},
				{X: 1, Y: 2, Z: 2},
				{X: 1, Y: 4, Z: 2},
				{X: 1, Y: 4, Z: 1},
				{X: 11, Y: 4, Z: 1},
				{X: 11, Y: 4, Z: 2},
				{X: 11, Y: 2, Z: 2},
				{X: 11, Y: 2, Z: 0},
			},
		}},
	}
}

func TestMetrics(t *testing.T) {
	lay := tiny()
	b := lay.Bounds()
	if b.MinX != 0 || b.MaxX != 12 || b.MinY != 0 || b.MaxY != 4 {
		t.Errorf("bounds = %+v", b)
	}
	if lay.Width() != 12 || lay.Height() != 4 {
		t.Errorf("width/height = %d/%d, want 12/4", lay.Width(), lay.Height())
	}
	if lay.Area() != 48 || lay.Volume() != 96 {
		t.Errorf("area=%d volume=%d, want 48 and 96", lay.Area(), lay.Volume())
	}
	// Planar wire length: 2 up + 10 across + 2 down = 14.
	if lay.MaxWireLength() != 14 || lay.TotalWireLength() != 14 {
		t.Errorf("maxwire=%d total=%d, want 14", lay.MaxWireLength(), lay.TotalWireLength())
	}
	wl := lay.WireLengths()
	if len(wl) != 1 || wl[0].U != 0 || wl[0].V != 1 || wl[0].Length != 14 {
		t.Errorf("WireLengths = %+v", wl)
	}
}

func TestVerifyAndStats(t *testing.T) {
	lay := tiny()
	if v := lay.Verify(); len(v) != 0 {
		t.Fatalf("legal layout flagged: %v", v)
	}
	s := lay.Stats()
	if s.N != 2 || s.Links != 1 || s.L != 2 || s.Area != 48 || s.MaxWire != 14 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "tiny") || !strings.Contains(s.String(), "area=48") {
		t.Errorf("stats string = %q", s.String())
	}
}

func TestVerifyCatchesIllegal(t *testing.T) {
	lay := tiny()
	// Duplicate the wire: overlapping paths must be flagged.
	dup := lay.Wires[0]
	dup.ID = 1
	lay.Wires = append(lay.Wires, dup)
	if v := lay.Verify(); len(v) == 0 {
		t.Error("duplicated wire not flagged")
	}
}

func TestMustVerifyPanics(t *testing.T) {
	lay := tiny()
	lay.Wires[0].Path[0].X = 100 // terminal off the node
	defer func() {
		if recover() == nil {
			t.Error("MustVerify did not panic on illegal layout")
		}
	}()
	lay.MustVerify()
}

func TestEmptyLayout(t *testing.T) {
	lay := &Layout{Name: "empty", L: 4}
	if lay.Area() != 0 || lay.Volume() != 0 || lay.MaxWireLength() != 0 {
		t.Error("empty layout should have zero metrics")
	}
	if v := lay.Verify(); len(v) != 0 {
		t.Errorf("empty layout flagged: %v", v)
	}
}

func TestWireDistribution(t *testing.T) {
	lay := &Layout{Name: "dist", L: 2}
	lay.Nodes = []grid.Rect{{W: 1, H: 1}}
	for i, ln := range []int{2, 4, 4, 6, 10} {
		lay.Wires = append(lay.Wires, grid.Wire{
			ID: i, U: 0, V: 0,
			Path: []grid.Point{{X: 0, Y: i, Z: 1}, {X: ln, Y: i, Z: 1}},
		})
	}
	d := lay.WireDistribution()
	if d.Count != 5 || d.Min != 2 || d.Max != 10 || d.P50 != 4 {
		t.Errorf("distribution = %+v", d)
	}
	if d.Mean != 26.0/5 {
		t.Errorf("mean = %v, want 5.2", d.Mean)
	}
	if d.String() == "" {
		t.Error("empty String")
	}
	var empty Layout
	if empty.WireDistribution().Count != 0 {
		t.Error("empty layout distribution should be zero")
	}
}

func TestLayerUsage(t *testing.T) {
	lay := tiny()
	u := lay.LayerUsage()
	// The tiny wire runs 10 on layer 1 (x) and 4 on layer 2 (y stubs).
	if len(u) != 2 || u[0] != 10 || u[1] != 4 {
		t.Errorf("layer usage = %v, want [10 4]", u)
	}
}

func TestMemBytes(t *testing.T) {
	empty := &Layout{Name: "e", L: 2}
	if b := empty.MemBytes(); b <= 0 {
		t.Fatalf("empty MemBytes = %d, want > 0 (the struct itself retains memory)", b)
	}
	lay := &Layout{
		Name:  "m",
		L:     2,
		Nodes: []grid.Rect{{X: 0, Y: 0, W: 1, H: 1}, {X: 4, Y: 0, W: 1, H: 1}},
		Wires: []grid.Wire{{ID: 0, U: 0, V: 1, Path: []grid.Point{{X: 1, Y: 0, Z: 1}, {X: 4, Y: 0, Z: 1}}}},
	}
	small := lay.MemBytes()
	if small <= empty.MemBytes() {
		t.Fatalf("MemBytes = %d not above the empty layout's", small)
	}
	// Growing the geometry must grow the estimate: path vertices dominate.
	big := &Layout{Name: "m", L: 2, Nodes: lay.Nodes}
	for i := 0; i < 100; i++ {
		big.Wires = append(big.Wires, grid.Wire{ID: i, U: 0, V: 1,
			Path: make([]grid.Point, 50)})
	}
	if bb := big.MemBytes(); bb < small+100*50*24 {
		t.Fatalf("big MemBytes = %d, want at least %d more than %d for the added vertices", bb, 100*50*24, small)
	}
}
