// Package layout defines the realized multilayer layout produced by the
// engines in this module: concrete node rectangles on the active layer and
// concrete rectilinear wire paths through L wiring layers, plus the cost
// measures the paper reports (area, volume, maximum wire length) and a
// legality verifier.
package layout

import (
	"context"
	"fmt"
	"sort"
	"unsafe"

	"mlvlsi/internal/grid"
	"mlvlsi/internal/obs"
)

// BudgetError reports a build abandoned because the planned layout would
// exceed the caller's cell budget (see Options.MaxCells at the module root).
// It is returned before any wire is realized, so a budget overrun costs
// geometry planning only, not memory proportional to the layout.
type BudgetError struct {
	// Name is the layout (family instance) whose plan overran the budget.
	Name string
	// Cells is the planned occupancy: grid vertices per layer times the
	// number of layers (0..L inclusive).
	Cells int
	// Budget is the configured maximum.
	Budget int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("layout %s needs %d grid cells, over the budget of %d", e.Name, e.Cells, e.Budget)
}

// Layout is a fully realized multilayer layout.
type Layout struct {
	Name string
	// L is the number of wiring layers (Z = 1..L); nodes sit on Z = 0.
	L int
	// Nodes holds one rectangle per node, indexed by node label.
	Nodes []grid.Rect
	// Wires holds one realized path per network link; Wire.U/V are node
	// labels.
	Wires []grid.Wire
}

// MemBytes estimates the bytes the layout retains on the heap: the node and
// wire slice backing arrays plus every wire's path vertices (counted at
// capacity, since that is what the allocator holds). The serving cache uses
// it as the unit of its byte budget, so the estimate leans exact for the
// dominant term — path vertices — and flat for the fixed-size headers.
func (l *Layout) MemBytes() int64 {
	const (
		pointSize  = int64(unsafe.Sizeof(grid.Point{}))
		rectSize   = int64(unsafe.Sizeof(grid.Rect{}))
		wireSize   = int64(unsafe.Sizeof(grid.Wire{}))
		layoutSize = int64(unsafe.Sizeof(Layout{}))
	)
	b := layoutSize + int64(len(l.Name))
	b += int64(cap(l.Nodes)) * rectSize
	b += int64(cap(l.Wires)) * wireSize
	for i := range l.Wires {
		b += int64(cap(l.Wires[i].Path)) * pointSize
	}
	return b
}

// Bounds returns the smallest upright box containing all nodes and wires.
func (l *Layout) Bounds() grid.BoundingBox {
	b := grid.Wires(l.Wires).Bounds()
	for _, r := range l.Nodes {
		b.AddRect(r, 0)
	}
	return b
}

// Area is the paper's layout area: the planar area of the bounding
// rectangle over all layers.
func (l *Layout) Area() int {
	b := l.Bounds()
	return b.Area()
}

// Volume is the paper's layout volume: L times the area.
func (l *Layout) Volume() int {
	return l.L * l.Area()
}

// Width and Height are the planar extents of the bounding rectangle.
func (l *Layout) Width() int {
	b := l.Bounds()
	return b.Width()
}

func (l *Layout) Height() int {
	b := l.Bounds()
	return b.Height()
}

// MaxWireLength returns the length of the longest wire, counting X and Y
// runs only (vias are inter-layer connectors, not tracks).
func (l *Layout) MaxWireLength() int {
	m := 0
	for i := range l.Wires {
		if n := l.Wires[i].PlanarLength(); n > m {
			m = n
		}
	}
	return m
}

// TotalWireLength returns the summed planar length of all wires.
func (l *Layout) TotalWireLength() int {
	t := 0
	for i := range l.Wires {
		t += l.Wires[i].PlanarLength()
	}
	return t
}

// WireLengths returns, for each link, its endpoints and planar length.
// Parallel links appear once each.
func (l *Layout) WireLengths() []WireLength {
	out := make([]WireLength, len(l.Wires))
	for i := range l.Wires {
		out[i] = WireLength{
			U:      l.Wires[i].U,
			V:      l.Wires[i].V,
			Length: l.Wires[i].PlanarLength(),
		}
	}
	return out
}

// WireLength records the realized length of one link.
type WireLength struct {
	U, V, Length int
}

// VerifyOpts is the single verifier entrypoint behind every Verify* name:
// it checks the layout's legality under the multilayer grid model — wires
// are rectilinear, pairwise edge-disjoint, within layers 0..L, obey the
// direction discipline, and terminate on their endpoint nodes. The
// layout's geometry (layers, discipline, node rectangles) overrides the
// corresponding option fields; everything else — engine selection
// (Workers), the dense→tiled→map memory ladder (TileBytes, DenseLimit),
// and instrumentation — comes from opts. When opts.Span is nil the check
// is rooted as a "verify" span on opts.Observer (which may itself be nil,
// disabling observation at zero cost); a caller-supplied span is used
// as-is, exactly as grid.Verify documents.
func (l *Layout) VerifyOpts(ctx context.Context, opts grid.CheckOptions) ([]grid.Violation, error) {
	opts.Layers = l.L
	opts.Discipline = true
	opts.Nodes = l.Nodes
	var sp *obs.Span
	if opts.Span == nil {
		sp = opts.Observer.StartSpan("verify")
		sp.SetAttr("wires", int64(len(l.Wires)))
		opts.Span = sp
	}
	vs, err := grid.Verify(ctx, l.Wires, opts)
	sp.SetAttr("violations", int64(len(vs))).End()
	return vs, err
}

// Verify checks the layout's legality with the sharded checker at full
// fan-out.
//
// Deprecated: equivalent to VerifyOpts(nil, grid.CheckOptions{}); kept for
// the many construction-time callers.
func (l *Layout) Verify() []grid.Violation {
	vs, _ := l.VerifyContext(nil, 0)
	return vs
}

// VerifyWorkers is Verify with an explicit fan-out bound (0 = GOMAXPROCS,
// 1 = the serial engine). Legality verdicts are identical for every worker
// count.
//
// Deprecated: equivalent to VerifyOpts with Workers set.
func (l *Layout) VerifyWorkers(workers int) []grid.Violation {
	vs, _ := l.VerifyOpts(nil, grid.CheckOptions{Workers: workers})
	return vs
}

// VerifyContext is VerifyWorkers with cooperative cancellation: it returns
// a nil violation slice plus an error wrapping par.ErrCanceled once ctx
// (which may be nil, meaning no cancellation) is done.
//
// Deprecated: equivalent to VerifyOpts with Workers set.
func (l *Layout) VerifyContext(ctx context.Context, workers int) ([]grid.Violation, error) {
	return l.VerifyOpts(ctx, grid.CheckOptions{Workers: workers})
}

// VerifyTuned is VerifyContext plus the dense-occupancy threshold
// (grid.CheckOptions.DenseLimit).
//
// Deprecated: equivalent to VerifyOpts with Workers and DenseLimit set.
func (l *Layout) VerifyTuned(ctx context.Context, workers, denseLimit int) ([]grid.Violation, error) {
	return l.VerifyOpts(ctx, grid.CheckOptions{Workers: workers, DenseLimit: denseLimit})
}

// VerifyObserved is VerifyTuned with observation: the check is reported as
// a "verify" root span on o and the verifier counters accumulate there.
//
// Deprecated: equivalent to VerifyOpts with Workers, DenseLimit, and
// Observer set.
func (l *Layout) VerifyObserved(ctx context.Context, workers, denseLimit int, o *obs.Observer) ([]grid.Violation, error) {
	return l.VerifyOpts(ctx, grid.CheckOptions{Workers: workers, DenseLimit: denseLimit, Observer: o})
}

// VerifyStrict performs Verify plus the Thompson-strict clearance check:
// no planar wire segment may pass through the interior of a foreign node
// rectangle. The multilayer model permits such crossings; the engines in
// this module never produce them, and strict verification certifies that.
func (l *Layout) VerifyStrict() []grid.Violation {
	if v := l.Verify(); len(v) > 0 {
		return v
	}
	return grid.CheckClearance(l.Wires, l.Nodes)
}

// MustVerify panics with a descriptive message if the layout is illegal;
// intended for construction-time assertions in examples and benchmarks.
func (l *Layout) MustVerify() {
	if v := l.Verify(); len(v) > 0 {
		panic(fmt.Sprintf("layout %s is illegal: %v (and %d more)", l.Name, v[0], len(v)-1))
	}
}

// Stats bundles the cost measures of a layout for reporting.
type Stats struct {
	Name          string
	N             int // number of nodes
	Links         int // number of wires
	L             int // wiring layers
	Width, Height int
	Area          int
	Volume        int
	MaxWire       int
	TotalWire     int
}

// Stats computes the full cost summary.
func (l *Layout) Stats() Stats {
	b := l.Bounds()
	return Stats{
		Name:      l.Name,
		N:         len(l.Nodes),
		Links:     len(l.Wires),
		L:         l.L,
		Width:     b.Width(),
		Height:    b.Height(),
		Area:      b.Area(),
		Volume:    l.L * b.Area(),
		MaxWire:   l.MaxWireLength(),
		TotalWire: l.TotalWireLength(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: N=%d links=%d L=%d %dx%d area=%d volume=%d maxwire=%d",
		s.Name, s.N, s.Links, s.L, s.Width, s.Height, s.Area, s.Volume, s.MaxWire)
}

// Distribution summarizes the planar wire-length distribution of a layout.
type Distribution struct {
	Count         int
	Min, Max      int
	Mean          float64
	P50, P90, P99 int
}

// WireDistribution computes planar wire-length statistics over all wires.
func (l *Layout) WireDistribution() Distribution {
	if len(l.Wires) == 0 {
		return Distribution{}
	}
	lengths := make([]int, len(l.Wires))
	total := 0
	for i := range l.Wires {
		lengths[i] = l.Wires[i].PlanarLength()
		total += lengths[i]
	}
	sort.Ints(lengths)
	pick := func(q float64) int {
		idx := int(q * float64(len(lengths)-1))
		return lengths[idx]
	}
	return Distribution{
		Count: len(lengths),
		Min:   lengths[0],
		Max:   lengths[len(lengths)-1],
		Mean:  float64(total) / float64(len(lengths)),
		P50:   pick(0.50),
		P90:   pick(0.90),
		P99:   pick(0.99),
	}
}

func (d Distribution) String() string {
	return fmt.Sprintf("wires=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f",
		d.Count, d.Min, d.P50, d.P90, d.P99, d.Max, d.Mean)
}

// LayerUsage returns, for each wiring layer z = 1..L, the total planar wire
// length routed on it (index 0 corresponds to layer 1). A well-grouped
// multilayer layout spreads trunk wirelength across its odd (horizontal)
// and even (vertical) layers.
func (l *Layout) LayerUsage() []int {
	usage := make([]int, l.L)
	for i := range l.Wires {
		w := &l.Wires[i]
		w.Segments(func(start grid.Point, axis grid.Axis, length int) {
			if axis == grid.AxisZ || start.Z < 1 || start.Z > l.L {
				return
			}
			n := length
			if n < 0 {
				n = -n
			}
			usage[start.Z-1] += n
		})
	}
	return usage
}
