// Package route computes routing-related cost measures over realized
// layouts: the paper's claim (4) in §2.2 concerns the maximum total length
// of wires along the (shortest) routing path between any source-destination
// pair, reported in closed form for generalized hypercubes (rN/L, §4.1) and
// HSNs (N/L, §4.3).
package route

import (
	"container/heap"
	"context"
	"sort"
	"sync/atomic"

	"mlvlsi/internal/layout"
	"mlvlsi/internal/par"
)

// WeightedGraph is an adjacency structure with per-link physical wire
// lengths, built from a realized layout.
type WeightedGraph struct {
	N   int
	adj [][]arc
}

type arc struct {
	to, w int
}

// Arc is an outgoing link with its physical wire length.
type Arc struct {
	To, Wire int
}

// Arcs returns the outgoing links of v.
func (g *WeightedGraph) Arcs(v int) []Arc {
	out := make([]Arc, len(g.adj[v]))
	for i, a := range g.adj[v] {
		out[i] = Arc{To: a.to, Wire: a.w}
	}
	return out
}

// Links returns every undirected link once, sorted by (u, v) with u < v.
// The order is deterministic, so seeded fault plans that index into it are
// reproducible.
func (g *WeightedGraph) Links() [][2]int {
	var out [][2]int
	for u := range g.adj {
		for _, a := range g.adj[u] {
			if u < a.to {
				out = append(out, [2]int{u, a.to})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// RemoveLink deletes the undirected link {u, v} (both arc directions) and
// reports whether such a link existed.
func (g *WeightedGraph) RemoveLink(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N || v >= g.N {
		return false
	}
	removed := false
	drop := func(from, to int) {
		arcs := g.adj[from]
		for i, a := range arcs {
			if a.to == to {
				g.adj[from] = append(arcs[:i], arcs[i+1:]...)
				removed = true
				return
			}
		}
	}
	drop(u, v)
	drop(v, u)
	return removed
}

// RemoveNode detaches node v, deleting every incident link, and returns the
// number of links removed. The node itself stays in the index space,
// isolated, so labels keep their meaning.
func (g *WeightedGraph) RemoveNode(v int) int {
	if v < 0 || v >= g.N {
		return 0
	}
	neighbors := make([]int, len(g.adj[v]))
	for i, a := range g.adj[v] {
		neighbors[i] = a.to
	}
	for _, to := range neighbors {
		g.RemoveLink(v, to)
	}
	return len(neighbors)
}

// FromLayout builds the weighted routing graph of a layout; parallel wires
// between the same node pair keep the shortest length.
func FromLayout(lay *layout.Layout) *WeightedGraph {
	g := &WeightedGraph{N: len(lay.Nodes)}
	g.adj = make([][]arc, g.N)
	best := make(map[[2]int]int)
	for _, wl := range lay.WireLengths() {
		k := [2]int{wl.U, wl.V}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if old, ok := best[k]; !ok || wl.Length < old {
			best[k] = wl.Length
		}
	}
	keys := make([][2]int, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	// Deterministic adjacency order (map iteration order would leak into
	// tie-breaking among equal-cost routes).
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		w := best[k]
		g.adj[k[0]] = append(g.adj[k[0]], arc{k[1], w})
		g.adj[k[1]] = append(g.adj[k[1]], arc{k[0], w})
	}
	return g
}

// ShortestPathWire returns, for a single source, the minimum total wire
// length to every node among hop-shortest paths: the lexicographic
// (hops, wire) shortest path, which is what "total length of wires along a
// shortest routing path" measures when the router is free to pick among
// shortest paths.
func (g *WeightedGraph) ShortestPathWire(src int) (hops []int, wire []int) {
	const inf = int(^uint(0) >> 1)
	hops = make([]int, g.N)
	wire = make([]int, g.N)
	for i := range hops {
		hops[i] = inf
		wire[i] = inf
	}
	hops[src], wire[src] = 0, 0
	// Dijkstra on the lexicographic (hops, wire) cost; hop counts are
	// bounded so this is effectively BFS with tie-breaking on wire length.
	pq := &pairHeap{{0, 0, src}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.hops > hops[it.node] || (it.hops == hops[it.node] && it.wire > wire[it.node]) {
			continue
		}
		for _, a := range g.adj[it.node] {
			nh, nw := it.hops+1, it.wire+a.w
			if nh < hops[a.to] || (nh == hops[a.to] && nw < wire[a.to]) {
				hops[a.to], wire[a.to] = nh, nw
				heap.Push(pq, pqItem{nh, nw, a.to})
			}
		}
	}
	return hops, wire
}

type pqItem struct {
	hops, wire, node int
}

type pairHeap []pqItem

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	if h[i].hops != h[j].hops {
		return h[i].hops < h[j].hops
	}
	return h[i].wire < h[j].wire
}
func (h pairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)   { *h = append(*h, x.(pqItem)) }
func (h *pairHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// sampleSources materializes the deterministic stride sample of source
// nodes MaxPathWire and AveragePathWire sweep: sources <= 0 means every
// node.
func sampleSources(n, sources int) []int {
	step := 1
	if sources > 0 && sources < n {
		step = n / sources
	}
	out := make([]int, 0, (n+step-1)/step)
	for s := 0; s < n; s += step {
		out = append(out, s)
	}
	return out
}

// MaxPathWire returns the maximum over sampled source-destination pairs of
// the total wire length along a hop-shortest path. sources <= 0 means all
// sources (O(N·E log N)); otherwise a deterministic stride sample of that
// many sources is used. The per-source single-source sweeps are independent
// and fan out across workers (0 = GOMAXPROCS, 1 = serial); the result is
// identical for every worker count.
func MaxPathWire(lay *layout.Layout, sources, workers int) int {
	m, _ := MaxPathWireCtx(nil, lay, sources, workers)
	return m
}

// MaxPathWireCtx is MaxPathWire with cooperative cancellation: the sweep
// polls ctx (which may be nil, meaning no cancellation) before each
// single-source run and returns an error wrapping par.ErrCanceled once the
// context is done. On a nil error the result is exactly MaxPathWire's.
func MaxPathWireCtx(ctx context.Context, lay *layout.Layout, sources, workers int) (int, error) {
	if err := par.Canceled(ctx); err != nil {
		return 0, err
	}
	g := FromLayout(lay)
	srcs := sampleSources(g.N, sources)
	var stop atomic.Bool
	shardMax := make([]int, par.NumChunks(workers, len(srcs)))
	par.Chunks(workers, len(srcs), func(shard, lo, hi int) {
		max := 0
		for _, s := range srcs[lo:hi] {
			if ctx != nil {
				if stop.Load() {
					break
				}
				if ctx.Err() != nil {
					stop.Store(true)
					break
				}
			}
			_, wire := g.ShortestPathWire(s)
			for _, w := range wire {
				if w != int(^uint(0)>>1) && w > max {
					max = w
				}
			}
		}
		shardMax[shard] = max
	})
	if err := par.Canceled(ctx); err != nil {
		return 0, err
	}
	max := 0
	for _, m := range shardMax {
		if m > max {
			max = m
		}
	}
	return max, nil
}

// AveragePathWire returns the mean total wire length along hop-shortest
// paths over sampled sources (diagnostic for the simulator experiments).
// Like MaxPathWire it fans the per-source sweeps out across workers; the
// per-shard sums are integers, so the result is exactly the serial value
// for every worker count.
func AveragePathWire(lay *layout.Layout, sources, workers int) float64 {
	avg, _ := AveragePathWireCtx(nil, lay, sources, workers)
	return avg
}

// AveragePathWireCtx is AveragePathWire with cooperative cancellation,
// mirroring MaxPathWireCtx.
func AveragePathWireCtx(ctx context.Context, lay *layout.Layout, sources, workers int) (float64, error) {
	if err := par.Canceled(ctx); err != nil {
		return 0, err
	}
	g := FromLayout(lay)
	srcs := sampleSources(g.N, sources)
	var stop atomic.Bool
	type sum struct{ total, count int }
	sums := make([]sum, par.NumChunks(workers, len(srcs)))
	par.Chunks(workers, len(srcs), func(shard, lo, hi int) {
		var sh sum
		for _, s := range srcs[lo:hi] {
			if ctx != nil {
				if stop.Load() {
					break
				}
				if ctx.Err() != nil {
					stop.Store(true)
					break
				}
			}
			_, wire := g.ShortestPathWire(s)
			for v, w := range wire {
				if v != s && w != int(^uint(0)>>1) {
					sh.total += w
					sh.count++
				}
			}
		}
		sums[shard] = sh
	})
	if err := par.Canceled(ctx); err != nil {
		return 0, err
	}
	total, count := 0, 0
	for _, sh := range sums {
		total += sh.total
		count += sh.count
	}
	if count == 0 {
		return 0, nil
	}
	return float64(total) / float64(count), nil
}
