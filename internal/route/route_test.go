package route

import (
	"testing"

	"mlvlsi/internal/core"
	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
)

// chain builds a 3-node path layout with given wire lengths by hand.
func chain(lengths ...int) *layout.Layout {
	lay := &layout.Layout{Name: "chain", L: 2}
	x := 0
	for i := 0; i <= len(lengths); i++ {
		lay.Nodes = append(lay.Nodes, grid.Rect{X: x, Y: 0, W: 1, H: 1})
		x += 10
	}
	for i, ln := range lengths {
		lay.Wires = append(lay.Wires, grid.Wire{
			ID: i, U: i, V: i + 1,
			Path: []grid.Point{{X: 0, Y: 0, Z: 1}, {X: ln, Y: 0, Z: 1}},
		})
	}
	return lay
}

func TestShortestPathWireOnChain(t *testing.T) {
	lay := chain(3, 5, 7)
	g := FromLayout(lay)
	hops, wire := g.ShortestPathWire(0)
	wantHops := []int{0, 1, 2, 3}
	wantWire := []int{0, 3, 8, 15}
	for v := range wantHops {
		if hops[v] != wantHops[v] || wire[v] != wantWire[v] {
			t.Errorf("node %d: hops=%d wire=%d, want %d and %d",
				v, hops[v], wire[v], wantHops[v], wantWire[v])
		}
	}
}

func TestParallelLinksKeepShortest(t *testing.T) {
	lay := &layout.Layout{Name: "par", L: 2}
	lay.Nodes = []grid.Rect{{X: 0, Y: 0, W: 1, H: 1}, {X: 10, Y: 0, W: 1, H: 1}}
	lay.Wires = []grid.Wire{
		{ID: 0, U: 0, V: 1, Path: []grid.Point{{X: 0, Y: 0, Z: 1}, {X: 9, Y: 0, Z: 1}}},
		{ID: 1, U: 0, V: 1, Path: []grid.Point{{X: 0, Y: 1, Z: 1}, {X: 4, Y: 1, Z: 1}}},
	}
	g := FromLayout(lay)
	_, wire := g.ShortestPathWire(0)
	if wire[1] != 4 {
		t.Errorf("parallel link wire = %d, want the shorter 4", wire[1])
	}
}

func TestHopShortestBeatsWireShortest(t *testing.T) {
	// Triangle where the direct link is long: hop-shortest routing must
	// take the 1-hop link even though 2 hops would be shorter in wire.
	lay := &layout.Layout{Name: "tri", L: 2}
	for i := 0; i < 3; i++ {
		lay.Nodes = append(lay.Nodes, grid.Rect{X: i * 10, Y: 0, W: 1, H: 1})
	}
	mk := func(id, u, v, ln, y int) grid.Wire {
		return grid.Wire{ID: id, U: u, V: v,
			Path: []grid.Point{{X: 0, Y: y, Z: 1}, {X: ln, Y: y, Z: 1}}}
	}
	lay.Wires = []grid.Wire{
		mk(0, 0, 1, 2, 0),
		mk(1, 1, 2, 2, 1),
		mk(2, 0, 2, 100, 2),
	}
	g := FromLayout(lay)
	hops, wire := g.ShortestPathWire(0)
	if hops[2] != 1 || wire[2] != 100 {
		t.Errorf("to node 2: hops=%d wire=%d, want 1 hop of wire 100", hops[2], wire[2])
	}
}

func TestMaxPathWireOnRealLayout(t *testing.T) {
	lay, err := core.Hypercube(6, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := MaxPathWire(lay, 0, 1)
	if full <= lay.MaxWireLength() {
		t.Errorf("max path wire %d should exceed the longest single wire %d on a diameter route",
			full, lay.MaxWireLength())
	}
	sampled := MaxPathWire(lay, 8, 2)
	if sampled > full {
		t.Errorf("sampled max %d exceeds full max %d", sampled, full)
	}
}

func TestMaxPathWireShrinksWithLayers(t *testing.T) {
	// §2.2 claim (4): the max total wire length along routes shrinks by
	// about L/2.
	l2, err := core.Hypercube(7, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	l8, err := core.Hypercube(7, 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	w2 := MaxPathWire(l2, 16, 0)
	w8 := MaxPathWire(l8, 16, 0)
	if w8 >= w2 {
		t.Errorf("path wire did not shrink: L=2 gives %d, L=8 gives %d", w2, w8)
	}
	if r := float64(w2) / float64(w8); r < 1.6 {
		t.Errorf("path-wire ratio L2/L8 = %.2f, want approaching 4", r)
	}
}

func TestAveragePathWire(t *testing.T) {
	lay := chain(4, 4, 4)
	avg := AveragePathWire(lay, 0, 0)
	// Pairwise wire sums: from 0: 4,8,12; from 1: 4,4,8; from 2: 8,4,4;
	// from 3: 12,8,4. Mean = 80/12.
	want := 80.0 / 12.0
	if avg < want-0.01 || avg > want+0.01 {
		t.Errorf("average path wire = %.3f, want %.3f", avg, want)
	}
}

// Property: path wire is at least the hop count (every link has length
// >= 1) and at most hops × the longest wire.
func TestPathWireBoundsProperty(t *testing.T) {
	lay, err := core.KAryNCube(4, 2, 2, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := FromLayout(lay)
	maxWire := lay.MaxWireLength()
	for src := 0; src < g.N; src++ {
		hops, wire := g.ShortestPathWire(src)
		for v := 0; v < g.N; v++ {
			if v == src {
				continue
			}
			if wire[v] < hops[v] {
				t.Fatalf("src %d -> %d: wire %d below hops %d", src, v, wire[v], hops[v])
			}
			if wire[v] > hops[v]*maxWire {
				t.Fatalf("src %d -> %d: wire %d above hops×maxwire %d", src, v, wire[v], hops[v]*maxWire)
			}
		}
	}
}

// Symmetry: path wire between u and v is independent of direction.
func TestPathWireSymmetry(t *testing.T) {
	lay, err := core.Hypercube(5, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := FromLayout(lay)
	_, w0 := g.ShortestPathWire(0)
	for v := 1; v < g.N; v += 5 {
		_, wv := g.ShortestPathWire(v)
		if w0[v] != wv[0] {
			t.Errorf("asymmetric path wire: 0->%d = %d, %d->0 = %d", v, w0[v], v, wv[0])
		}
	}
}
