// Package fault is a corruption-injection harness for realized layouts: it
// applies typed, seeded corruptions to a layout.Layout so tests can prove —
// by mutation testing — that the legality verifiers actually catch broken
// geometry. Nothing here is used on the build path; the package exists to
// verify the verifier.
//
// Every corruption class is paired with the violation signatures the
// checkers are expected to raise for it. A class may legitimately surface
// as one of several signatures: lifting a segment onto a wrong-parity layer
// inserts vias that can collide with the wire's own via stack first, in
// which case the checker reports the shared edge before it ever reaches the
// discipline breach. Detection therefore accepts any signature in the
// class's set.
package fault

import (
	"fmt"
	"reflect"

	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
)

// Class enumerates the corruption classes.
type Class int

const (
	// Overlap rewrites one wire to retrace a unit segment of another wire
	// on the same wiring layer, breaking edge-disjointness.
	Overlap Class = iota
	// Detach moves a wire terminal off its node rectangle (the wire end no
	// longer touches the port it claims).
	Detach
	// OutOfRange pushes a via below the active layer, leaving the legal
	// layer range [0, L].
	OutOfRange
	// LayerOverflow lifts a planar run onto layer L+1, beyond the last
	// wiring layer.
	LayerOverflow
	// Discipline moves a planar run onto a wrong-parity layer (an X-run
	// onto an even layer or a Y-run onto an odd one).
	Discipline
	// Duplicate appends a verbatim copy of an existing wire under a fresh
	// ID, duplicating every one of its grid edges.
	Duplicate
	// DeleteLink destroys a wire's path (truncating it below two
	// vertices), simulating a required link that was never realized.
	DeleteLink
	// Bend inserts a diagonal kink into a wire's path, breaking the
	// rectilinear-polyline structure (a hop that changes two coordinates).
	Bend
	// BadEndpoint rewrites a wire's claimed endpoint node ID to one past
	// the node table, simulating a link against a node that does not exist.
	BadEndpoint
	// Float lifts a wire terminal off the active layer onto wiring layer 1,
	// so the wire no longer lands on its port.
	Float

	numClasses
)

// Classes returns every corruption class, in declaration order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

func (c Class) String() string {
	switch c {
	case Overlap:
		return "overlap"
	case Detach:
		return "detach"
	case OutOfRange:
		return "out-of-range"
	case LayerOverflow:
		return "layer-overflow"
	case Discipline:
		return "discipline"
	case Duplicate:
		return "duplicate"
	case DeleteLink:
		return "delete-link"
	case Bend:
		return "bend"
	case BadEndpoint:
		return "bad-endpoint"
	case Float:
		return "float-terminal"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Signatures returns the violation-reason substrings that count as
// detecting this class. The checker walks a wire's edges in order and stops
// at the first violation, so classes whose injected geometry can trip an
// earlier check list every signature it may surface as.
func (c Class) Signatures() []string {
	switch c {
	case Overlap, Duplicate:
		return []string{"shared unit"}
	case Detach:
		return []string{"outside node"}
	case OutOfRange:
		return []string{"leaves wiring layer range"}
	case LayerOverflow:
		// The lifting vias can retrace the wire's own via stack before the
		// walk reaches layer L+1.
		return []string{"leaves wiring layer range", "shared unit"}
	case Discipline:
		// Same: the parity-shifting vias can collide before the wrong-layer
		// run is walked.
		return []string{"violates direction discipline", "shared unit"}
	case DeleteLink:
		return []string{"need at least 2"}
	case Bend:
		return []string{"not a straight axis-aligned segment"}
	case BadEndpoint:
		return []string{"out of range"}
	case Float:
		return []string{"not on the active layer"}
	}
	return nil
}

// Codes returns the typed violation reasons that count as detecting this
// class — the same acceptance sets as Signatures, expressed over
// grid.Reason so detection is a handful of integer compares instead of
// substring scans over formatted messages.
func (c Class) Codes() []grid.Reason {
	switch c {
	case Overlap, Duplicate:
		return []grid.Reason{grid.ReasonSharedEdge}
	case Detach:
		return []grid.Reason{grid.ReasonTerminalOutsideNode}
	case OutOfRange:
		return []grid.Reason{grid.ReasonLayerRange}
	case LayerOverflow:
		// The lifting vias can retrace the wire's own via stack before the
		// walk reaches layer L+1.
		return []grid.Reason{grid.ReasonLayerRange, grid.ReasonSharedEdge}
	case Discipline:
		// Same: the parity-shifting vias can collide before the wrong-layer
		// run is walked.
		return []grid.Reason{grid.ReasonDisciplineX, grid.ReasonDisciplineY, grid.ReasonSharedEdge}
	case DeleteLink:
		return []grid.Reason{grid.ReasonShortPath}
	case Bend:
		// The structural check runs before the edge walk and the terminal
		// checks, so the bent hop is always reported as itself.
		return []grid.Reason{grid.ReasonBentHop}
	case BadEndpoint:
		return []grid.Reason{grid.ReasonEndpointRange}
	case Float:
		// The terminal checks run unconditionally after the edge walk, so
		// the lifted terminal is always reported even when the inserted via
		// also collides with existing geometry.
		return []grid.Reason{grid.ReasonTerminalOffActive}
	}
	return nil
}

// Detected reports whether the violation set contains a violation matching
// one of the class's reason codes.
func (c Class) Detected(vs []grid.Violation) bool {
	for _, v := range vs {
		for _, code := range c.Codes() {
			if v.Code == code {
				return true
			}
		}
	}
	return false
}

// Injection records what one Apply call did, for test diagnostics.
type Injection struct {
	Class Class
	// Wire is the ID of the corrupted (or, for Duplicate, added) wire.
	Wire int
	// Other is the second wire involved (the overlapped wire for Overlap,
	// the copied wire for Duplicate); -1 otherwise.
	Other int
	// Note describes the concrete corruption in human terms.
	Note string
}

func (in Injection) String() string {
	if in.Other >= 0 {
		return fmt.Sprintf("%s on wire %d (with wire %d): %s", in.Class, in.Wire, in.Other, in.Note)
	}
	return fmt.Sprintf("%s on wire %d: %s", in.Class, in.Wire, in.Note)
}

// Injector applies seeded corruptions. The zero value is usable; distinct
// seeds corrupt different wires, and the same seed always produces the same
// corruption, so failures reproduce exactly.
type Injector struct {
	Seed uint64
}

// xorshift is the same tiny deterministic generator the simulator uses.
type xorshift uint64

func newRand(seed uint64) *xorshift {
	s := xorshift(seed*2685821657736338717 + 1)
	return &s
}

func (s *xorshift) next(n int) int {
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift(x)
	return int(x % uint64(n))
}

func cloneLayout(l *layout.Layout) *layout.Layout {
	c := &layout.Layout{Name: l.Name, L: l.L}
	c.Nodes = append([]grid.Rect(nil), l.Nodes...)
	c.Wires = make([]grid.Wire, len(l.Wires))
	for i, w := range l.Wires {
		w.Path = append([]grid.Point(nil), w.Path...)
		c.Wires[i] = w
	}
	return c
}

// pickWire scans the wires cyclically from a seeded start and returns the
// index of the first wire satisfying ok, or -1. Scanning (rather than
// rejection sampling) makes selection total and deterministic.
func pickWire(rng *xorshift, wires []grid.Wire, ok func(*grid.Wire) bool) int {
	n := len(wires)
	if n == 0 {
		return -1
	}
	start := rng.next(n)
	for i := 0; i < n; i++ {
		wi := (start + i) % n
		if ok(&wires[wi]) {
			return wi
		}
	}
	return -1
}

// planarSegment returns the index i of the first path hop (Path[i-1] to
// Path[i]) that is a planar run on a wiring layer (Z >= 1), or -1.
func planarSegment(w *grid.Wire) int {
	for i := 1; i < len(w.Path); i++ {
		a, b := w.Path[i-1], w.Path[i]
		if a.Z == b.Z && a.Z >= 1 && (a.X != b.X || a.Y != b.Y) {
			return i
		}
	}
	return -1
}

// hasPlanarRun reports whether the wire has a planar run on a wiring layer.
func hasPlanarRun(w *grid.Wire) bool { return planarSegment(w) >= 0 }

// Apply returns a corrupted deep copy of lay (the input is never modified)
// together with a description of the injected fault. It fails only when the
// layout has no wire the class can corrupt (e.g. Overlap on a single-wire
// layout).
func (inj Injector) Apply(lay *layout.Layout, c Class) (*layout.Layout, Injection, error) {
	out := cloneLayout(lay)
	rng := newRand(inj.Seed ^ (uint64(c)+1)*0x9E3779B97F4A7C15)
	info := Injection{Class: c, Wire: -1, Other: -1}

	switch c {
	case Overlap:
		ai := pickWire(rng, out.Wires, hasPlanarRun)
		if ai < 0 {
			return nil, info, fmt.Errorf("fault %s: no wire with a planar run on a wiring layer", c)
		}
		if len(out.Wires) < 2 {
			return nil, info, fmt.Errorf("fault %s: need at least 2 wires, have %d", c, len(out.Wires))
		}
		bi := pickWire(rng, out.Wires, func(w *grid.Wire) bool { return w.ID != out.Wires[ai].ID })
		a := &out.Wires[ai]
		seg := planarSegment(a)
		p, q := a.Path[seg-1], a.Path[seg]
		// First unit edge of the run, oriented low-to-high on its axis.
		lo := p
		var hi grid.Point
		if p.X != q.X {
			if q.X < p.X {
				lo.X = p.X - 1
			}
			hi = lo.Add(1, 0, 0)
		} else {
			if q.Y < p.Y {
				lo.Y = p.Y - 1
			}
			hi = lo.Add(0, 1, 0)
		}
		b := &out.Wires[bi]
		info.Wire, info.Other = b.ID, a.ID
		info.Note = fmt.Sprintf("rewrote wire %d to retrace %v-%v of wire %d", b.ID, lo, hi, a.ID)
		b.U, b.V = -1, -1
		b.Path = []grid.Point{lo, hi}

	case Detach:
		wi := pickWire(rng, out.Wires, func(w *grid.Wire) bool {
			return w.U >= 0 && w.U < len(out.Nodes) && len(w.Path) >= 2 && w.Path[0].Z == 0
		})
		if wi < 0 {
			return nil, info, fmt.Errorf("fault %s: no wire terminating on a node", c)
		}
		w := &out.Wires[wi]
		rect := out.Nodes[w.U]
		// Slide the terminal one unit past the node's right edge, via a
		// planar X-run on the active layer (legal geometry everywhere
		// except the terminal itself).
		p0 := w.Path[0]
		outside := grid.Point{X: rect.X + rect.W + 1, Y: p0.Y, Z: 0}
		info.Wire = w.ID
		info.Note = fmt.Sprintf("moved U-terminal of wire %d to %v, outside node %d", w.ID, outside, w.U)
		w.Path = append([]grid.Point{outside}, w.Path...)

	case OutOfRange:
		wi := pickWire(rng, out.Wires, func(w *grid.Wire) bool { return len(w.Path) >= 2 })
		if wi < 0 {
			return nil, info, fmt.Errorf("fault %s: no wire with a path", c)
		}
		w := &out.Wires[wi]
		p0 := w.Path[0]
		dip := grid.Point{X: p0.X, Y: p0.Y, Z: -1}
		info.Wire = w.ID
		info.Note = fmt.Sprintf("dipped wire %d below the active layer at %v", w.ID, dip)
		w.Path = append([]grid.Point{p0, dip}, w.Path...)

	case LayerOverflow:
		wi := pickWire(rng, out.Wires, hasPlanarRun)
		if wi < 0 {
			return nil, info, fmt.Errorf("fault %s: no wire with a planar run on a wiring layer", c)
		}
		w := &out.Wires[wi]
		seg := planarSegment(w)
		a, b := w.Path[seg-1], w.Path[seg]
		above := out.L + 1
		aUp := grid.Point{X: a.X, Y: a.Y, Z: above}
		bUp := grid.Point{X: b.X, Y: b.Y, Z: above}
		info.Wire = w.ID
		info.Note = fmt.Sprintf("lifted run %v-%v of wire %d to layer %d > L=%d", a, b, w.ID, above, out.L)
		w.Path = append(w.Path[:seg:seg], append([]grid.Point{aUp, bUp}, w.Path[seg:]...)...)

	case Discipline:
		wi := pickWire(rng, out.Wires, func(w *grid.Wire) bool {
			seg := planarSegment(w)
			if seg < 0 {
				return false
			}
			z := w.Path[seg].Z
			// Need a wrong-parity layer within [1, L] to move the run to.
			return z+1 <= out.L || z-1 >= 1
		})
		if wi < 0 {
			return nil, info, fmt.Errorf("fault %s: no planar run with an adjacent wiring layer", c)
		}
		w := &out.Wires[wi]
		seg := planarSegment(w)
		a, b := w.Path[seg-1], w.Path[seg]
		wrong := a.Z + 1
		if wrong > out.L {
			wrong = a.Z - 1
		}
		aW := grid.Point{X: a.X, Y: a.Y, Z: wrong}
		bW := grid.Point{X: b.X, Y: b.Y, Z: wrong}
		info.Wire = w.ID
		info.Note = fmt.Sprintf("moved run %v-%v of wire %d to wrong-parity layer %d", a, b, w.ID, wrong)
		w.Path = append(w.Path[:seg:seg], append([]grid.Point{aW, bW}, w.Path[seg:]...)...)

	case Duplicate:
		wi := pickWire(rng, out.Wires, func(w *grid.Wire) bool { return len(w.Path) >= 2 })
		if wi < 0 {
			return nil, info, fmt.Errorf("fault %s: no wire with a path", c)
		}
		src := out.Wires[wi]
		maxID := 0
		for i := range out.Wires {
			if out.Wires[i].ID > maxID {
				maxID = out.Wires[i].ID
			}
		}
		dup := src
		dup.ID = maxID + 1
		dup.Path = append([]grid.Point(nil), src.Path...)
		info.Wire, info.Other = dup.ID, src.ID
		info.Note = fmt.Sprintf("appended wire %d as a verbatim copy of wire %d", dup.ID, src.ID)
		out.Wires = append(out.Wires, dup)

	case DeleteLink:
		wi := pickWire(rng, out.Wires, func(w *grid.Wire) bool { return len(w.Path) >= 2 })
		if wi < 0 {
			return nil, info, fmt.Errorf("fault %s: no wire with a path", c)
		}
		w := &out.Wires[wi]
		info.Wire = w.ID
		info.Note = fmt.Sprintf("destroyed the path of wire %d (link %d-%d no longer realized)", w.ID, w.U, w.V)
		w.Path = w.Path[:1]

	case Bend:
		wi := pickWire(rng, out.Wires, func(w *grid.Wire) bool { return len(w.Path) >= 2 })
		if wi < 0 {
			return nil, info, fmt.Errorf("fault %s: no wire with a path", c)
		}
		w := &out.Wires[wi]
		// Inserting a +(1,1,0) neighbor after the first vertex makes hop 1
		// change two coordinates at once; the kink cannot coincide with the
		// next vertex, which differs from Path[0] in exactly one coordinate.
		a := w.Path[0]
		kink := a.Add(1, 1, 0)
		info.Wire = w.ID
		info.Note = fmt.Sprintf("inserted diagonal kink %v after %v in wire %d", kink, a, w.ID)
		w.Path = append([]grid.Point{a, kink}, w.Path[1:]...)

	case BadEndpoint:
		wi := pickWire(rng, out.Wires, func(w *grid.Wire) bool { return w.U >= 0 && w.V >= 0 })
		if wi < 0 {
			return nil, info, fmt.Errorf("fault %s: no wire claiming node endpoints", c)
		}
		w := &out.Wires[wi]
		bad := len(out.Nodes)
		info.Wire = w.ID
		info.Note = fmt.Sprintf("rewrote U-endpoint of wire %d from node %d to nonexistent node %d", w.ID, w.U, bad)
		w.U = bad

	case Float:
		wi := pickWire(rng, out.Wires, func(w *grid.Wire) bool {
			return w.U >= 0 && w.V >= 0 && len(w.Path) >= 2 && w.Path[0].Z == 0
		})
		if wi < 0 {
			return nil, info, fmt.Errorf("fault %s: no wire terminating on the active layer", c)
		}
		w := &out.Wires[wi]
		p0 := w.Path[0]
		lifted := grid.Point{X: p0.X, Y: p0.Y, Z: 1}
		info.Wire = w.ID
		info.Note = fmt.Sprintf("lifted U-terminal of wire %d to %v, off the active layer", w.ID, lifted)
		w.Path = append([]grid.Point{lifted}, w.Path...)

	default:
		return nil, info, fmt.Errorf("fault: unknown class %d", int(c))
	}
	return out, info, nil
}

// SelfTest corrupts lay with every class (deterministically from seed) and
// checks that both the serial and the sharded verifier report a violation
// matching the class's signatures. It returns nil exactly when every
// corruption is caught by both checkers — the metamorphic property the
// chaos sweep asserts for every registry family.
func SelfTest(lay *layout.Layout, seed uint64, workers int) error {
	inj := Injector{Seed: seed}
	opts := grid.CheckOptions{Layers: lay.L, Discipline: true, Nodes: lay.Nodes}
	for _, c := range Classes() {
		bad, info, err := inj.Apply(lay, c)
		if err != nil {
			return fmt.Errorf("%s: inject on %s: %w", c, lay.Name, err)
		}
		if vs := grid.Check(bad.Wires, opts); !c.Detected(vs) {
			return fmt.Errorf("%s on %s: serial checker missed it (%s; %d violations)", c, lay.Name, info, len(vs))
		}
		if vs := grid.CheckParallel(bad.Wires, opts, workers); !c.Detected(vs) {
			return fmt.Errorf("%s on %s: parallel checker missed it (%s; %d violations)", c, lay.Name, info, len(vs))
		}
	}
	return nil
}

// SelfTestTiled repeats SelfTest through the tiled streaming rung: for every
// corruption class the verifier — forced onto the tiled path by tileBytes
// (negative selects the default per-tile budget; a positive ceiling must be
// one the dense bitset exceeds, or the ladder falls back to dense and the
// tiled engine is not exercised) — must both detect the corruption and
// reproduce the sharded checker's canonical violation set byte for byte at
// the same worker count, whatever tile geometry the budget induces.
func SelfTestTiled(lay *layout.Layout, seed uint64, workers, tileBytes int) error {
	inj := Injector{Seed: seed}
	base := grid.CheckOptions{Layers: lay.L, Discipline: true, Nodes: lay.Nodes}
	for _, c := range Classes() {
		bad, info, err := inj.Apply(lay, c)
		if err != nil {
			return fmt.Errorf("%s: inject on %s: %w", c, lay.Name, err)
		}
		tiled := base
		tiled.Workers = workers
		tiled.TileBytes = tileBytes
		got, err := grid.Verify(nil, bad.Wires, tiled)
		if err != nil {
			return fmt.Errorf("%s on %s: tiled verify: %w", c, lay.Name, err)
		}
		if !c.Detected(got) {
			return fmt.Errorf("%s on %s: tiled checker missed it (%s; %d violations)", c, lay.Name, info, len(got))
		}
		if want := grid.CheckParallel(bad.Wires, base, workers); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("%s on %s: tiled/parallel divergence at tileBytes=%d workers=%d (%s)",
				c, lay.Name, tileBytes, workers, info)
		}
	}
	return nil
}
