package fault

import (
	"reflect"
	"sync"
	"testing"

	"mlvlsi/internal/core"
	"mlvlsi/internal/extra"
	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
)

// Base layouts for the sweeps, built once. The 4-cube at L=3 exercises the
// odd-L track fallback; the folded 3-cube adds bent dedicated links.
var (
	baseOnce sync.Once
	bases    []*layout.Layout
)

func baseLayouts(t testing.TB) []*layout.Layout {
	t.Helper()
	baseOnce.Do(func() {
		cube, err := core.Hypercube(4, 3, 0, 1)
		if err != nil {
			t.Fatalf("Hypercube(4, L=3): %v", err)
		}
		folded, err := extra.FoldedHypercube(3, 2, 0, 1)
		if err != nil {
			t.Fatalf("FoldedHypercube(3, L=2): %v", err)
		}
		bases = []*layout.Layout{cube, folded}
	})
	if bases == nil {
		t.Fatal("base layouts failed to build in an earlier test")
	}
	return bases
}

func checkOpts(lay *layout.Layout) grid.CheckOptions {
	return grid.CheckOptions{Layers: lay.L, Discipline: true, Nodes: lay.Nodes}
}

func TestBaseLayoutsAreClean(t *testing.T) {
	for _, lay := range baseLayouts(t) {
		if vs := lay.Verify(); len(vs) != 0 {
			t.Fatalf("%s: base layout has %d violations: %v", lay.Name, len(vs), vs[0])
		}
	}
}

func TestEveryClassDetectedByBothCheckers(t *testing.T) {
	for _, lay := range baseLayouts(t) {
		for _, c := range Classes() {
			for _, seed := range []uint64{0, 1, 42, 1 << 40} {
				inj := Injector{Seed: seed}
				bad, info, err := inj.Apply(lay, c)
				if err != nil {
					t.Fatalf("%s seed=%d on %s: %v", c, seed, lay.Name, err)
				}
				serial := grid.Check(bad.Wires, checkOpts(bad))
				if !c.Detected(serial) {
					t.Errorf("%s seed=%d on %s: serial checker missed %s (%d violations)",
						c, seed, lay.Name, info, len(serial))
				}
				for _, workers := range []int{1, 2, 8} {
					par := grid.CheckParallel(bad.Wires, checkOpts(bad), workers)
					if !c.Detected(par) {
						t.Errorf("%s seed=%d workers=%d on %s: parallel checker missed %s",
							c, seed, workers, lay.Name, info)
					}
				}
			}
		}
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	for _, lay := range baseLayouts(t) {
		before := snapshot(lay)
		for _, c := range Classes() {
			if _, _, err := (Injector{Seed: 7}).Apply(lay, c); err != nil {
				t.Fatalf("%s on %s: %v", c, lay.Name, err)
			}
			if !reflect.DeepEqual(before, snapshot(lay)) {
				t.Fatalf("%s mutated the input layout %s", c, lay.Name)
			}
		}
		if vs := lay.Verify(); len(vs) != 0 {
			t.Fatalf("%s: input layout dirty after injections: %v", lay.Name, vs[0])
		}
	}
}

// snapshot captures the mutable parts of a layout for equality comparison.
func snapshot(l *layout.Layout) [][]grid.Point {
	out := make([][]grid.Point, len(l.Wires))
	for i, w := range l.Wires {
		out[i] = append([]grid.Point(nil), w.Path...)
	}
	return out
}

func TestApplyIsDeterministic(t *testing.T) {
	lay := baseLayouts(t)[0]
	for _, c := range Classes() {
		a, ia, err := (Injector{Seed: 99}).Apply(lay, c)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		b, ib, err := (Injector{Seed: 99}).Apply(lay, c)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if ia != ib {
			t.Errorf("%s: same seed gave different injections: %s vs %s", c, ia, ib)
		}
		if !reflect.DeepEqual(snapshot(a), snapshot(b)) {
			t.Errorf("%s: same seed gave different corrupted layouts", c)
		}
	}
}

func TestSeedsCorruptDifferentWires(t *testing.T) {
	lay := baseLayouts(t)[0]
	seen := make(map[int]bool)
	for seed := uint64(0); seed < 16; seed++ {
		_, info, err := (Injector{Seed: seed}).Apply(lay, Duplicate)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seen[info.Other] = true
	}
	if len(seen) < 2 {
		t.Errorf("16 seeds all picked the same wire %v; selection is not seed-driven", seen)
	}
}

func TestSelfTest(t *testing.T) {
	for _, lay := range baseLayouts(t) {
		for _, workers := range []int{1, 4} {
			if err := SelfTest(lay, 5, workers); err != nil {
				t.Errorf("SelfTest(%s, workers=%d): %v", lay.Name, workers, err)
			}
		}
	}
}

func TestClassStringsAndSignatures(t *testing.T) {
	names := make(map[string]bool)
	for _, c := range Classes() {
		s := c.String()
		if s == "" || names[s] {
			t.Errorf("class %d: bad or duplicate name %q", int(c), s)
		}
		names[s] = true
		if len(c.Signatures()) == 0 {
			t.Errorf("%s: no violation signatures", c)
		}
	}
	if got := Class(99).String(); got != "class(99)" {
		t.Errorf("unknown class String() = %q", got)
	}
	if Class(99).Signatures() != nil {
		t.Error("unknown class should have nil signatures")
	}
}

// FuzzCheckDifferential cross-checks every verifier variant on randomly
// corrupted layouts: the serial and sharded checkers must agree on the
// verdict and the violation set for several worker counts, and each of them
// must be bit-identical between its dense-occupancy core and the forced
// map-based fallback (DenseLimit < 0). This is the differential oracle both
// the parallel merge logic and the dense bitset are held to.
func FuzzCheckDifferential(f *testing.F) {
	f.Add(uint64(0), byte(0))
	f.Add(uint64(1), byte(3))
	f.Add(uint64(12345), byte(6))
	f.Add(uint64(1<<63), byte(255))
	f.Fuzz(func(t *testing.T, seed uint64, sel byte) {
		layouts := baseLayouts(t)
		lay := layouts[int(sel>>4)%len(layouts)]
		c := Class(int(sel) % int(numClasses))
		bad, info, err := (Injector{Seed: seed}).Apply(lay, c)
		if err != nil {
			t.Skip()
		}
		opts := checkOpts(bad)
		sparseOpts := opts
		sparseOpts.DenseLimit = -1
		serial := grid.Check(bad.Wires, opts)
		if len(serial) == 0 {
			t.Fatalf("%s: serial checker found nothing (%s)", c, info)
		}
		// The dense and map cores run the identical wire walk, so their
		// violation slices must match element for element, not just as sets.
		if sparse := grid.Check(bad.Wires, sparseOpts); !reflect.DeepEqual(serial, sparse) {
			t.Fatalf("%s: serial dense/map divergence for %s\ndense: %v\nmap:   %v",
				c, info, serial, sparse)
		}
		for _, workers := range []int{1, 2, 8} {
			par := grid.CheckParallel(bad.Wires, opts, workers)
			if (len(par) == 0) != (len(serial) == 0) {
				t.Fatalf("%s workers=%d: verdicts diverge (serial %d, parallel %d) for %s",
					c, workers, len(serial), len(par), info)
			}
			if !sameViolations(serial, par) {
				t.Fatalf("%s workers=%d: violation sets diverge for %s\nserial:   %v\nparallel: %v",
					c, workers, info, serial, par)
			}
			if parSparse := grid.CheckParallel(bad.Wires, sparseOpts, workers); !reflect.DeepEqual(par, parSparse) {
				t.Fatalf("%s workers=%d: parallel dense/map divergence for %s\ndense: %v\nmap:   %v",
					c, workers, info, par, parSparse)
			}
			// The tiled streaming rung promises the sharded checker's
			// canonical set byte for byte, whatever the tile geometry: the
			// default per-tile budget (usually one tile) and a deliberately
			// tiny ceiling (many tiles, claims crossing every seam).
			for _, tileBytes := range []int{-1, 1 << 10} {
				tiled := opts
				tiled.Workers = workers
				tiled.TileBytes = tileBytes
				got, err := grid.Verify(nil, bad.Wires, tiled)
				if err != nil {
					t.Fatalf("%s workers=%d tile=%d: %v", c, workers, tileBytes, err)
				}
				if !reflect.DeepEqual(got, par) {
					t.Fatalf("%s workers=%d tile=%d: tiled/parallel divergence for %s\ntiled:    %v\nparallel: %v",
						c, workers, tileBytes, info, got, par)
				}
			}
		}
	})
}

func sameViolations(a, b []grid.Violation) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[grid.Violation]int)
	for _, v := range a {
		count[v]++
	}
	for _, v := range b {
		if count[v] == 0 {
			return false
		}
		count[v]--
	}
	return true
}
