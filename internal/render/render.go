// Package render draws the paper's construction figures: ASCII art of
// collinear layouts (Figures 2-4: the 3-ary 2-cube, the 9-node complete
// graph, and the 4-cube), an ASCII schematic of the recursive grid layout
// scheme (Figure 1), and SVG export of realized 2-D layouts for inspection.
package render

import (
	"fmt"
	"strings"

	"mlvlsi/internal/layout"
	"mlvlsi/internal/track"
)

// Collinear renders a collinear layout as ASCII art: tracks stacked above
// the node row, node labels underneath. pitch is the horizontal spacing
// between adjacent node positions (>= 3 recommended; it is clamped to at
// least 2).
func Collinear(c *track.Collinear, pitch int) string {
	if pitch < 2 {
		pitch = 2
	}
	if c.N == 0 {
		return "(empty)\n"
	}
	width := (c.N-1)*pitch + 1
	rows := c.Tracks + 1
	canvas := make([][]byte, rows)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	trackRow := func(t int) int { return c.Tracks - 1 - t }
	nodeRow := c.Tracks

	put := func(r, x int, ch byte) {
		cur := canvas[r][x]
		switch {
		case cur == ' ':
			canvas[r][x] = ch
		case cur != ch:
			canvas[r][x] = '+'
		}
	}
	for _, e := range c.Edges {
		r := trackRow(e.Track)
		xu, xv := e.U*pitch, e.V*pitch
		for x := xu + 1; x < xv; x++ {
			put(r, x, '-')
		}
		put(r, xu, '+')
		put(r, xv, '+')
		for rr := r + 1; rr < nodeRow; rr++ {
			put(rr, xu, '|')
			put(rr, xv, '|')
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: N=%d tracks=%d\n", c.Name, c.N, c.Tracks)
	for i := 0; i < rows-1; i++ {
		b.Write(canvas[i])
		b.WriteByte('\n')
	}
	// Node row: label each position with its topology label (mod 10 wide
	// labels fall back to 'o').
	node := []byte(strings.Repeat(" ", width))
	for p := 0; p < c.N; p++ {
		lbl := fmt.Sprintf("%d", c.Label(p))
		x := p * pitch
		if len(lbl) == 1 {
			node[x] = lbl[0]
		} else {
			node[x] = 'o'
		}
	}
	b.Write(node)
	b.WriteByte('\n')
	return b.String()
}

// RecursiveGridSchematic draws Figure 1: level-l blocks arranged as a 2-D
// grid with routing channels between neighboring rows and columns.
func RecursiveGridSchematic(rows, cols int) string {
	var b strings.Builder
	b.WriteString("Recursive grid layout scheme (Fig. 1): level-l blocks in a 2-D grid;\n")
	b.WriteString("channels between rows/columns carry the level-l inter-cluster links.\n\n")
	block := []string{"+------+", "|block |", "+------+"}
	channel := " ::: "
	for r := 0; r < rows; r++ {
		for line := 0; line < len(block); line++ {
			for c := 0; c < cols; c++ {
				if c > 0 {
					b.WriteString(channel)
				}
				b.WriteString(block[line])
			}
			b.WriteByte('\n')
		}
		if r+1 < rows {
			width := cols*len(block[0]) + (cols-1)*len(channel)
			for i := 0; i < 2; i++ {
				b.WriteString(strings.Repeat("=", width))
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// layerColors cycles distinct stroke colors per wiring layer.
var layerColors = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
	"#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
	"#bcbd22", "#17becf", "#aec7e8", "#ffbb78",
}

// SVG renders a realized layout as an SVG document: node squares in gray,
// wires as polylines colored by the layer of their first planar segment.
// scale is pixels per grid unit.
func SVG(lay *layout.Layout, scale int) string {
	if scale < 1 {
		scale = 4
	}
	b := lay.Bounds()
	w := (b.Width() + 2) * scale
	h := (b.Height() + 2) * scale
	sx := func(x int) int { return (x - b.MinX + 1) * scale }
	sy := func(y int) int { return (b.MaxY - y + 1) * scale } // flip: y up

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	for i, r := range lay.Nodes {
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="#d0d0d0" stroke="#404040"><title>node %d</title></rect>`+"\n",
			sx(r.X), sy(r.Y+r.H), r.W*scale, r.H*scale, i)
	}
	for i := range lay.Wires {
		wi := &lay.Wires[i]
		color := layerColors[0]
		for j := 1; j < len(wi.Path); j++ {
			if wi.Path[j].Z == wi.Path[j-1].Z && (wi.Path[j].X != wi.Path[j-1].X || wi.Path[j].Y != wi.Path[j-1].Y) {
				color = layerColors[wi.Path[j].Z%len(layerColors)]
				break
			}
		}
		var pts []string
		for _, p := range wi.Path {
			pts = append(pts, fmt.Sprintf("%d,%d", sx(p.X), sy(p.Y)))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1"><title>wire %d: %d-%d</title></polyline>`+"\n",
			strings.Join(pts, " "), color, wi.ID, wi.U, wi.V)
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}
