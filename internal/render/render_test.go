package render

import (
	"strings"
	"testing"

	"mlvlsi/internal/core"
	"mlvlsi/internal/track"
)

func TestCollinearFigure2(t *testing.T) {
	// Figure 2: the 3-ary 2-cube collinear layout with 8 tracks.
	out := Collinear(track.KAryNCube(3, 2, false), 4)
	if !strings.Contains(out, "tracks=8") {
		t.Errorf("missing track count header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 8 track rows + node row.
	if len(lines) != 1+8+1 {
		t.Errorf("got %d lines, want 10:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[len(lines)-1], "0") {
		t.Errorf("node row missing labels: %q", lines[len(lines)-1])
	}
}

func TestCollinearFigure3(t *testing.T) {
	// Figure 3: K9 in ⌊81/4⌋ = 20 tracks.
	out := Collinear(track.Complete(9), 3)
	if !strings.Contains(out, "tracks=20") {
		t.Errorf("K9 should render 20 tracks:\n%s", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestCollinearFigure4(t *testing.T) {
	// Figure 4: the 4-cube in ⌊2·16/3⌋ = 10 tracks, Gray-coded node row.
	out := Collinear(track.Hypercube(4), 4)
	if !strings.Contains(out, "tracks=10") {
		t.Errorf("4-cube should render 10 tracks:\n%s", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestCollinearEdgesAreDrawn(t *testing.T) {
	out := Collinear(track.Ring(4), 4)
	if strings.Count(out, "-") < 6 {
		t.Errorf("expected horizontal runs in ring drawing:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Errorf("expected corners:\n%s", out)
	}
	// A layout with tall tracks shows vertical drops (on dense rings every
	// vertical coincides with a corner and merges into '+').
	tall := Collinear(track.Complete(5), 4)
	if !strings.Contains(tall, "|") {
		t.Errorf("expected vertical drops in K5 drawing:\n%s", tall)
	}
}

func TestCollinearEmptyAndClamp(t *testing.T) {
	if got := Collinear(&track.Collinear{Name: "none"}, 4); got != "(empty)\n" {
		t.Errorf("empty layout rendering = %q", got)
	}
	// pitch below 2 is clamped, not a crash.
	_ = Collinear(track.Ring(3), 0)
}

func TestRecursiveGridSchematic(t *testing.T) {
	out := RecursiveGridSchematic(2, 3)
	if strings.Count(out, "|block |") != 6 {
		t.Errorf("want 6 blocks:\n%s", out)
	}
	if !strings.Contains(out, "===") {
		t.Errorf("want row channels drawn:\n%s", out)
	}
}

func TestSVG(t *testing.T) {
	lay, err := core.Hypercube(3, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	svg := SVG(lay, 4)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("not an SVG document")
	}
	if strings.Count(svg, "<polyline") != len(lay.Wires) {
		t.Errorf("polyline count %d != wires %d", strings.Count(svg, "<polyline"), len(lay.Wires))
	}
	if strings.Count(svg, "<rect") != len(lay.Nodes)+1 {
		t.Errorf("rect count %d != nodes+background %d", strings.Count(svg, "<rect"), len(lay.Nodes)+1)
	}
	// Scale clamp.
	_ = SVG(lay, 0)
}

// Golden check: the Figure-2 rendering is deterministic; pin its exact
// shape so accidental construction changes are caught.
func TestCollinearFigure2Golden(t *testing.T) {
	got := Collinear(track.KAryNCube(3, 2, false), 4)
	want := `3-ary 2-cube: N=9 tracks=8
+-------+   +-------+   +-------+
+---+---+   +---+---+   +---+---+
|   |   +---+---+---+---+---+---+
|   |   +---+---+---+---+---+---+
|   +---+---+---+---+---+---+   |
|   +---+---+---+---+---+---+   |
+---+---+---+---+---+---+   |   |
+---+---+---+---+---+---+   |   |
0   1   2   3   4   5   6   7   8
`
	if got != want {
		t.Errorf("figure 2 drifted:\n%s\nwant:\n%s", got, want)
	}
}
