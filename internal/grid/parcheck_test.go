package grid

import (
	"reflect"
	"testing"
	"testing/quick"
)

// legalWireSet builds a deterministic pseudo-random set of wires on pairwise
// distinct layers (so it is always legal).
func legalWireSet(seed int64, n int) []Wire {
	var wires []Wire
	for i := 0; i < n; i++ {
		w := randomPlanarWire(seed+int64(i)*977, i+1)
		w.ID = i
		wires = append(wires, w)
	}
	return wires
}

func TestCheckParallelMatchesSerialOnLegalSets(t *testing.T) {
	f := func(seed int64) bool {
		wires := legalWireSet(seed, 8)
		serial := Check(wires, CheckOptions{})
		for _, workers := range []int{1, 2, 4, 7} {
			if got := CheckParallel(wires, CheckOptions{}, workers); !reflect.DeepEqual(got, serial) {
				t.Logf("workers=%d: parallel %v != serial %v", workers, got, serial)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCheckParallelMatchesSerialSingleViolation(t *testing.T) {
	// Every single-violation case must match the serial checker exactly,
	// including ordering and attribution.
	cases := []struct {
		name  string
		wires []Wire
		opts  CheckOptions
	}{
		{"overlap", []Wire{
			wire(0, Point{0, 0, 1}, Point{10, 0, 1}),
			wire(1, Point{5, 0, 1}, Point{7, 0, 1}),
		}, CheckOptions{}},
		{"malformed", []Wire{
			wire(0, Point{0, 0, 1}, Point{4, 0, 1}),
			wire(1, Point{0, 2, 1}),
		}, CheckOptions{}},
		{"layer range", []Wire{
			wire(0, Point{0, 0, 0}, Point{0, 0, 5}),
		}, CheckOptions{Layers: 4}},
		{"discipline x", []Wire{
			wire(0, Point{0, 0, 2}, Point{4, 0, 2}),
		}, CheckOptions{Discipline: true}},
		{"discipline y", []Wire{
			wire(0, Point{0, 0, 1}, Point{0, 4, 1}),
		}, CheckOptions{Discipline: true}},
		{"bad terminal", []Wire{
			{ID: 0, U: 0, V: 1, Path: []Point{{5, 5, 0}, {5, 5, 1}, {11, 5, 1}, {11, 2, 1}, {11, 2, 0}}},
		}, CheckOptions{Nodes: []Rect{{X: 0, Y: 0, W: 2, H: 2}, {X: 10, Y: 0, W: 2, H: 2}}}},
		{"self overlap", []Wire{
			wire(0, Point{0, 0, 1}, Point{5, 0, 1}, Point{5, 1, 1}, Point{5, 0, 1}),
		}, CheckOptions{}},
	}
	for _, c := range cases {
		serial := Check(c.wires, c.opts)
		if len(serial) == 0 {
			t.Fatalf("%s: expected serial violations", c.name)
		}
		for _, workers := range []int{1, 3, 8} {
			got := CheckParallel(c.wires, c.opts, workers)
			if !reflect.DeepEqual(got, serial) {
				t.Errorf("%s workers=%d:\n parallel %v\n serial   %v", c.name, workers, got, serial)
			}
		}
	}
}

func TestCheckParallelLegalityVerdictMatchesSerial(t *testing.T) {
	// On arbitrary (possibly multi-violation) inputs the two checkers must
	// agree on legality, and parallel results must not depend on the worker
	// count.
	f := func(seed int64) bool {
		var wires []Wire
		for i := 0; i < 6; i++ {
			w := randomWire(seed + int64(i)*131)
			w.ID = i
			wires = append(wires, w)
		}
		serial := Check(wires, CheckOptions{Layers: 8, Discipline: false})
		ref := CheckParallel(wires, CheckOptions{Layers: 8, Discipline: false}, 1)
		if (len(serial) == 0) != (len(ref) == 0) {
			t.Logf("legality disagrees: serial %v vs parallel %v", serial, ref)
			return false
		}
		for _, workers := range []int{2, 4, 9} {
			got := CheckParallel(wires, CheckOptions{Layers: 8, Discipline: false}, workers)
			if !reflect.DeepEqual(got, ref) {
				t.Logf("workers=%d differs from workers=1", workers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCheckParallelDuplicateAttribution(t *testing.T) {
	a := wire(0, Point{0, 0, 1}, Point{10, 0, 1})
	b := wire(1, Point{5, 0, 1}, Point{7, 0, 1})
	v := CheckParallel([]Wire{a, b}, CheckOptions{}, 4)
	if len(v) == 0 {
		t.Fatal("overlapping wires not detected")
	}
	if v[0].WireID != 1 || v[0].OtherID != 0 {
		t.Errorf("violation = %+v, want wire 1 charged against wire 0", v[0])
	}
}

func TestCheckParallelEmptyAndNegativeCoords(t *testing.T) {
	if v := CheckParallel(nil, CheckOptions{}, 4); v != nil {
		t.Errorf("empty set: %v", v)
	}
	// Negative coordinates exercise the encoder's offset handling.
	wires := []Wire{
		wire(0, Point{-7, -3, 1}, Point{-2, -3, 1}),
		wire(1, Point{-7, -3, 2}, Point{-7, 4, 2}),
		wire(2, Point{-5, -3, 1}, Point{-3, -3, 1}), // overlaps wire 0
	}
	serial := Check(wires, CheckOptions{})
	got := CheckParallel(wires, CheckOptions{}, 3)
	if !reflect.DeepEqual(got, serial) {
		t.Errorf("parallel %v != serial %v", got, serial)
	}
	if len(got) != 1 || got[0].Where.X != -5 {
		t.Errorf("expected one violation at x=-5, got %v", got)
	}
}

func TestEdgeEncoderRoundTrip(t *testing.T) {
	wires := []Wire{
		wire(0, Point{-100, 50, 0}, Point{3000, 50, 0}),
		wire(1, Point{17, -9, 5}, Point{17, 444, 5}),
	}
	enc, ok := newEdgeEncoder(wires, 2)
	if !ok {
		t.Fatal("encoder rejected small coordinates")
	}
	pts := []Point{{-100, 50, 0}, {2999, 50, 3}, {17, 444, 5}, {0, 0, 1}}
	for _, p := range pts {
		for _, ax := range []Axis{AxisX, AxisY, AxisZ} {
			key := enc.pack(p, ax)
			if Axis(key&3) != ax {
				t.Errorf("axis lost for %v/%v", p, ax)
			}
			if got := enc.unpack(key); got != p {
				t.Errorf("round trip %v -> %v", p, got)
			}
		}
	}
}
