package grid

import (
	"context"
	"fmt"

	"mlvlsi/internal/par"
)

// CheckOptions configures the legality verifier.
type CheckOptions struct {
	// Layers is the number of wiring layers available (Z = 1..Layers).
	// Zero disables the layer-range check.
	Layers int
	// Discipline enforces the direction-layer rule: X-runs only on odd
	// wiring layers, Y-runs only on even wiring layers. Z-runs (vias) are
	// always allowed. When Layers is odd, the extra odd layer carries
	// X-runs, matching the paper's odd-L track split.
	Discipline bool
	// Nodes, when non-nil, are the node rectangles on the active layer.
	// The verifier then checks that every wire with endpoint IDs >= 0
	// starts and ends at Z = 0 inside the claimed endpoint node rectangles.
	Nodes []Rect
}

// A Violation describes one legality failure found by Check.
type Violation struct {
	WireID  int
	OtherID int // second wire for overlap violations, -1 otherwise
	Where   Point
	Reason  string
}

func (v Violation) Error() string {
	if v.OtherID >= 0 {
		return fmt.Sprintf("wire %d overlaps wire %d at %v: %s", v.WireID, v.OtherID, v.Where, v.Reason)
	}
	return fmt.Sprintf("wire %d at %v: %s", v.WireID, v.Where, v.Reason)
}

type edgeKey struct {
	p Point
	a Axis
}

// ctxStride is how many wires the checkers process between context polls.
const ctxStride = 64

// Check verifies that a set of wires forms a legal multilayer layout:
// every wire is a well-formed rectilinear path, no two wires share a unit
// grid edge (the multilayer grid model requires edge-disjoint paths), the
// direction discipline holds if requested, all geometry stays within the
// wiring layers, and wire endpoints terminate on their nodes. It returns all
// violations found (nil means the layout is legal).
//
// The check is exact, not sampled: every unit grid edge of every wire is
// hashed. Memory is proportional to total wire length.
func Check(wires []Wire, opts CheckOptions) []Violation {
	vs, _ := CheckCtx(nil, wires, opts)
	return vs
}

// CheckCtx is Check with cooperative cancellation: the wire walk polls ctx
// (which may be nil, meaning no cancellation) every few wires and returns a
// nil violation slice plus an error wrapping par.ErrCanceled once the
// context is done. On a nil error the violations are exactly Check's.
func CheckCtx(ctx context.Context, wires []Wire, opts CheckOptions) ([]Violation, error) {
	var violations []Violation
	seen := make(map[edgeKey]int, totalLength(wires))

	for wi := range wires {
		if ctx != nil && wi%ctxStride == 0 {
			if err := par.Canceled(ctx); err != nil {
				return nil, err
			}
		}
		w := &wires[wi]
		if err := w.Validate(); err != nil {
			violations = append(violations, Violation{WireID: w.ID, OtherID: -1, Reason: err.Error()})
			continue
		}
		w.UnitEdges(func(low Point, axis Axis) bool {
			if opts.Layers > 0 {
				zTop := low.Z
				if axis == AxisZ {
					zTop = low.Z + 1
				}
				if low.Z < 0 || zTop > opts.Layers {
					violations = append(violations, Violation{
						WireID: w.ID, OtherID: -1, Where: low,
						Reason: fmt.Sprintf("leaves wiring layer range [0,%d]", opts.Layers),
					})
					return false
				}
			}
			if opts.Discipline && low.Z > 0 {
				if axis == AxisX && low.Z%2 == 0 {
					violations = append(violations, Violation{
						WireID: w.ID, OtherID: -1, Where: low,
						Reason: "x-run on an even layer violates direction discipline",
					})
					return false
				}
				if axis == AxisY && low.Z%2 == 1 {
					violations = append(violations, Violation{
						WireID: w.ID, OtherID: -1, Where: low,
						Reason: "y-run on an odd layer violates direction discipline",
					})
					return false
				}
			}
			key := edgeKey{low, axis}
			if other, dup := seen[key]; dup {
				violations = append(violations, Violation{
					WireID: w.ID, OtherID: other, Where: low,
					Reason: fmt.Sprintf("shared unit %s-edge", axis),
				})
				return false
			}
			seen[key] = w.ID
			return true
		})

		if opts.Nodes != nil && w.U >= 0 && w.V >= 0 {
			checkTerminal(w, w.Path[0], w.U, opts.Nodes, &violations)
			checkTerminal(w, w.Path[len(w.Path)-1], w.V, opts.Nodes, &violations)
		}
	}
	return violations, nil
}

func checkTerminal(w *Wire, p Point, node int, nodes []Rect, violations *[]Violation) {
	if node < 0 || node >= len(nodes) {
		*violations = append(*violations, Violation{
			WireID: w.ID, OtherID: -1, Where: p,
			Reason: fmt.Sprintf("endpoint node id %d out of range", node),
		})
		return
	}
	if p.Z != 0 {
		*violations = append(*violations, Violation{
			WireID: w.ID, OtherID: -1, Where: p,
			Reason: "wire terminal is not on the active layer (z=0)",
		})
		return
	}
	if !nodes[node].Contains(p.X, p.Y) {
		*violations = append(*violations, Violation{
			WireID: w.ID, OtherID: -1, Where: p,
			Reason: fmt.Sprintf("wire terminal is outside node %d rectangle", node),
		})
	}
}

func totalLength(wires []Wire) int {
	total := 0
	for i := range wires {
		total += wires[i].Length()
	}
	return total
}
