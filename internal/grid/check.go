package grid

import (
	"context"
	"fmt"

	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
)

// CheckOptions configures the legality verifier.
type CheckOptions struct {
	// Layers is the number of wiring layers available (Z = 1..Layers).
	// Zero disables the layer-range check.
	Layers int
	// Discipline enforces the direction-layer rule: X-runs only on odd
	// wiring layers, Y-runs only on even wiring layers. Z-runs (vias) are
	// always allowed. When Layers is odd, the extra odd layer carries
	// X-runs, matching the paper's odd-L track split.
	Discipline bool
	// Nodes, when non-nil, are the node rectangles on the active layer.
	// The verifier then checks that every wire with endpoint IDs >= 0
	// starts and ends at Z = 0 inside the claimed endpoint node rectangles.
	Nodes []Rect
	// DenseLimit caps the dense occupancy grid: the checkers use the flat
	// dense store only while the wire set's bounding-box cell count
	// (3·W·H·D unit-edge slots) stays at or below the limit. Zero picks an
	// adaptive default that admits the dense path whenever its bitset is no
	// larger than the hash map it replaces (see defaultDenseCells); a
	// negative value disables the dense path entirely, forcing the
	// map-based reference implementation. Results are identical either way.
	DenseLimit int
	// Workers selects the verifier engine: 1 runs the serial checker
	// (Check's early-exit semantics), any other value runs the sharded
	// parallel checker with that fan-out (0 meaning GOMAXPROCS). Results
	// differ between the two engines only in the documented corner — on
	// layouts with several interacting violations the serial walk stops
	// recording a violating wire's remaining edges — and legality verdicts
	// always agree.
	Workers int
	// TileBytes is the verifier's memory ceiling in bytes, selecting the
	// rung of the dense→tiled→map ladder. Zero imposes no ceiling (the
	// dense→map choice is DenseLimit's alone, exactly the pre-ladder
	// behavior). A positive value caps the occupancy working set: the dense
	// bitset is used only when every shard's copy fits under the ceiling
	// together; otherwise the box is partitioned into tiles whose pooled
	// bitsets fit TileBytes/workers each and verified tile by tile (see
	// Tiling), falling back to the hash map only when tiling itself is
	// infeasible (empty box, unpackable coordinates, or a degenerate
	// partition of more than maxTiles tiles). A negative value forces the
	// tiled rung with the default per-tile budget, which is what the
	// differential tests use. The tiled rung always produces the parallel
	// checker's canonical violation set, for every worker count.
	TileBytes int
	// Span, when non-nil, is the parent span the checkers hang their phase
	// spans off (measure, walk, merge, resolve); counters go to the span's
	// observer. Nil disables instrumentation. Either way the per-edge hot
	// loops are untouched: instrumentation happens at phase granularity on
	// the coordinator path, using aggregates the check computes anyway, so
	// results and allocation behavior are identical.
	Span *obs.Span
	// Observer receives the counters when Span is nil — callers that want
	// metrics without a span tree (Layout.VerifyOpts builds the span root
	// itself and leaves this to programmatic grid.Verify users) set it
	// instead. When Span is non-nil its observer wins and this field is
	// ignored.
	Observer *obs.Observer
}

// observer resolves where counters go: the span's observer when a span was
// supplied, the explicit Observer otherwise. Both legs are nil-safe.
func (o *CheckOptions) observer() *obs.Observer {
	if o.Span != nil {
		return o.Span.Observer()
	}
	return o.Observer
}

// Reason is a typed violation cause. Codes are formatted lazily by
// Violation.Error / Violation.Reason, so the checkers' hot paths never build
// strings — under fault injection the layer-range and discipline branches
// fire per unit edge, where a fmt.Sprintf per violation dominates.
type Reason uint8

const (
	// ReasonNone is the zero value; no valid Violation carries it.
	ReasonNone Reason = iota
	// ReasonShortPath: the path has fewer than two vertices (Aux holds the
	// vertex count).
	ReasonShortPath
	// ReasonBentHop: path hop Aux is not a straight axis-aligned segment
	// (Where holds the hop's start vertex).
	ReasonBentHop
	// ReasonLayerRange: the edge leaves the wiring layer range [0, Aux].
	ReasonLayerRange
	// ReasonDisciplineX: an x-run on an even layer.
	ReasonDisciplineX
	// ReasonDisciplineY: a y-run on an odd layer.
	ReasonDisciplineY
	// ReasonSharedEdge: the unit EdgeAxis-edge at Where is already owned by
	// wire OtherID.
	ReasonSharedEdge
	// ReasonEndpointRange: the wire claims endpoint node id Aux, which is
	// out of range.
	ReasonEndpointRange
	// ReasonTerminalOffActive: a wire terminal is not on the active layer.
	ReasonTerminalOffActive
	// ReasonTerminalOutsideNode: a wire terminal lies outside node Aux's
	// rectangle.
	ReasonTerminalOutsideNode
	// ReasonNodeInterior: a planar run passes through the interior of a
	// foreign node rectangle (Thompson-strict clearance, CheckClearance).
	// Only the opt-in CheckClearance emits it — Check/CheckParallel never do
	// — so the chaos sweep, which drives the standard checkers, cannot
	// observe it and no fault class claims it.
	ReasonNodeInterior //mlvlsi:allow violationcode (clearance-only; outside the chaos sweep)
)

// A Violation describes one legality failure found by Check. The struct is
// comparable and carries no strings; messages are formatted on demand.
type Violation struct {
	WireID  int
	OtherID int // second wire for overlap violations, -1 otherwise
	Where   Point
	Code    Reason
	// EdgeAxis is the axis of the shared edge for ReasonSharedEdge.
	EdgeAxis Axis
	// Aux is the code's numeric detail: layer bound, node id, vertex count
	// or hop index (see the Reason constants).
	Aux int32
}

// Reason returns the human-readable cause, matching the fault-injection
// signatures in internal/fault.
func (v Violation) Reason() string {
	switch v.Code {
	case ReasonShortPath:
		return fmt.Sprintf("path has %d vertices, need at least 2", v.Aux)
	case ReasonBentHop:
		return fmt.Sprintf("hop %d is not a straight axis-aligned segment", v.Aux)
	case ReasonLayerRange:
		return fmt.Sprintf("leaves wiring layer range [0,%d]", v.Aux)
	case ReasonDisciplineX:
		return "x-run on an even layer violates direction discipline"
	case ReasonDisciplineY:
		return "y-run on an odd layer violates direction discipline"
	case ReasonSharedEdge:
		return fmt.Sprintf("shared unit %s-edge", v.EdgeAxis)
	case ReasonEndpointRange:
		return fmt.Sprintf("endpoint node id %d out of range", v.Aux)
	case ReasonTerminalOffActive:
		return "wire terminal is not on the active layer (z=0)"
	case ReasonTerminalOutsideNode:
		return fmt.Sprintf("wire terminal is outside node %d rectangle", v.Aux)
	case ReasonNodeInterior:
		return "planar run passes through the interior of a foreign node"
	}
	return fmt.Sprintf("reason(%d)", int(v.Code))
}

func (v Violation) Error() string {
	if v.OtherID >= 0 {
		return fmt.Sprintf("wire %d overlaps wire %d at %v: %s", v.WireID, v.OtherID, v.Where, v.Reason())
	}
	return fmt.Sprintf("wire %d at %v: %s", v.WireID, v.Where, v.Reason())
}

type edgeKey struct {
	p Point
	a Axis
}

// ctxStride is how many wires the checkers process between context polls.
const ctxStride = 64

// structural returns the Violation describing the first structural defect of
// the wire's path (too short, or a hop that is not axis-aligned), and whether
// one was found. It is the coded core behind Wire.Validate.
func (w *Wire) structural() (Violation, bool) {
	if len(w.Path) < 2 {
		return Violation{WireID: w.ID, OtherID: -1, Code: ReasonShortPath, Aux: int32(len(w.Path))}, true
	}
	for i := 1; i < len(w.Path); i++ {
		a, b := w.Path[i-1], w.Path[i]
		dx, dy, dz := b.X-a.X, b.Y-a.Y, b.Z-a.Z
		nz := 0
		if dx != 0 {
			nz++
		}
		if dy != 0 {
			nz++
		}
		if dz != 0 {
			nz++
		}
		if nz != 1 {
			return Violation{WireID: w.ID, OtherID: -1, Where: a, Code: ReasonBentHop, Aux: int32(i)}, true
		}
	}
	return Violation{}, false
}

// edgeViolation applies the per-edge layer-range and discipline checks to one
// unit edge, returning the violation (if any). It allocates nothing and is
// shared by every checker variant.
//
//mlvlsi:hotpath
func edgeViolation(w *Wire, low Point, axis Axis, opts *CheckOptions) (Violation, bool) {
	if opts.Layers > 0 {
		zTop := low.Z
		if axis == AxisZ {
			zTop = low.Z + 1
		}
		if low.Z < 0 || zTop > opts.Layers {
			return Violation{
				WireID: w.ID, OtherID: -1, Where: low,
				Code: ReasonLayerRange, Aux: int32(opts.Layers),
			}, true
		}
	}
	if opts.Discipline && low.Z > 0 {
		if axis == AxisX && low.Z%2 == 0 {
			return Violation{
				WireID: w.ID, OtherID: -1, Where: low, Code: ReasonDisciplineX,
			}, true
		}
		if axis == AxisY && low.Z%2 == 1 {
			return Violation{
				WireID: w.ID, OtherID: -1, Where: low, Code: ReasonDisciplineY,
			}, true
		}
	}
	return Violation{}, false
}

// Verify is the single verifier entrypoint: it checks that a set of wires
// forms a legal multilayer layout — every wire is a well-formed rectilinear
// path, no two wires share a unit grid edge (the multilayer grid model
// requires edge-disjoint paths), the direction discipline holds if
// requested, all geometry stays within the wiring layers, and wire
// endpoints terminate on their nodes. It returns all violations found (nil
// means the layout is legal), and a nil slice plus an error wrapping
// par.ErrCanceled once ctx (which may be nil, meaning no cancellation) is
// done.
//
// The check is exact, not sampled: every unit grid edge of every wire is
// recorded. Everything else — serial vs parallel engine (Workers), the
// dense→tiled→map occupancy ladder (TileBytes, DenseLimit), and
// instrumentation (Span, Observer) — is selected by the options struct; the
// deprecated Check/CheckCtx/CheckParallel/CheckParallelCtx names are thin
// wrappers over the same cores.
func Verify(ctx context.Context, wires []Wire, opts CheckOptions) ([]Violation, error) {
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}
	if len(wires) == 0 {
		return nil, nil
	}
	if opts.TileBytes != 0 {
		if vs, err, handled := verifyBudgeted(ctx, wires, opts); handled {
			return vs, err
		}
		// The ceiling admits the full dense bitset (or the box is empty):
		// fall through to the unbudgeted engines.
	}
	if opts.Workers == 1 {
		opts.observer().Set(obs.WorkerCount, 1)
		return verifySerial(ctx, wires, opts)
	}
	return verifyParallel(ctx, wires, opts)
}

// Check verifies the wire set with the serial engine and no memory ceiling.
//
// Deprecated: equivalent to Verify with Workers: 1; kept as a wrapper for
// existing callers and for the serial half of the differential tests.
func Check(wires []Wire, opts CheckOptions) []Violation {
	vs, _ := CheckCtx(nil, wires, opts)
	return vs
}

// CheckCtx is Check with cooperative cancellation.
//
// Deprecated: equivalent to Verify with Workers: 1.
func CheckCtx(ctx context.Context, wires []Wire, opts CheckOptions) ([]Violation, error) {
	opts.Workers = 1
	return Verify(ctx, wires, opts)
}

// verifySerial is the serial core behind Verify with Workers == 1: one pass
// in wire order with the early-exit semantics the package's differential
// tests pin (a wire's walk stops at its first violation).
func verifySerial(ctx context.Context, wires []Wire, opts CheckOptions) ([]Violation, error) {
	ms := opts.Span.Child("measure")
	box, total := Wires(wires).measure()
	ms.End()
	ob := opts.observer()
	ob.Add(obs.UnitEdgesChecked, int64(total))
	wk := opts.Span.Child("walk")
	if ix, ok := newOccIndexer(box, opts.DenseLimit, total); ok {
		ob.Add(obs.DenseChecks, 1)
		ob.Add(obs.CellsAllocated, int64(ix.cells))
		vs, err := checkDense(ctx, wires, opts, ix)
		wk.End()
		return vs, err
	}
	ob.Add(obs.SparseChecks, 1)
	vs, err := checkSparse(ctx, wires, opts, total)
	wk.End()
	return vs, err
}

// checkSparse is the retained map-based reference implementation: every unit
// edge is hashed into a map keyed by (lower endpoint, axis). It handles
// arbitrary geometry — unbounded coordinates, adversarially sparse wire sets
// — at hashing cost per edge.
func checkSparse(ctx context.Context, wires []Wire, opts CheckOptions, total int) ([]Violation, error) {
	var violations []Violation
	seen := make(map[edgeKey]int, total)

	for wi := range wires {
		if ctx != nil && wi%ctxStride == 0 {
			if err := par.Canceled(ctx); err != nil {
				return nil, err
			}
		}
		w := &wires[wi]
		if v, bad := w.structural(); bad {
			violations = append(violations, v)
			continue
		}
		w.UnitEdges(func(low Point, axis Axis) bool {
			if v, bad := edgeViolation(w, low, axis, &opts); bad {
				violations = append(violations, v)
				return false
			}
			key := edgeKey{low, axis}
			if other, dup := seen[key]; dup {
				violations = append(violations, Violation{
					WireID: w.ID, OtherID: other, Where: low,
					Code: ReasonSharedEdge, EdgeAxis: axis,
				})
				return false
			}
			seen[key] = w.ID
			return true
		})

		checkTerminals(w, opts.Nodes, &violations)
	}
	return violations, nil
}

// checkTerminals runs both endpoint checks of one wire, appending any
// violations. Wires with auxiliary endpoints (U or V negative) are exempt,
// as is the whole check when no node rectangles were supplied.
func checkTerminals(w *Wire, nodes []Rect, violations *[]Violation) {
	if nodes == nil || w.U < 0 || w.V < 0 || len(w.Path) == 0 {
		return
	}
	checkTerminal(w, w.Path[0], w.U, nodes, violations)
	checkTerminal(w, w.Path[len(w.Path)-1], w.V, nodes, violations)
}

func checkTerminal(w *Wire, p Point, node int, nodes []Rect, violations *[]Violation) {
	if node < 0 || node >= len(nodes) {
		*violations = append(*violations, Violation{
			WireID: w.ID, OtherID: -1, Where: p,
			Code: ReasonEndpointRange, Aux: int32(node),
		})
		return
	}
	if p.Z != 0 {
		*violations = append(*violations, Violation{
			WireID: w.ID, OtherID: -1, Where: p, Code: ReasonTerminalOffActive,
		})
		return
	}
	if !nodes[node].Contains(p.X, p.Y) {
		*violations = append(*violations, Violation{
			WireID: w.ID, OtherID: -1, Where: p,
			Code: ReasonTerminalOutsideNode, Aux: int32(node),
		})
	}
}
