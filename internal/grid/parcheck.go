package grid

import (
	"context"
	"math/bits"
	"runtime"
	"sort"
	"sync/atomic"

	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
)

// CheckParallel is the sharded variant of Check: wires are partitioned into
// contiguous shards across workers (workers <= 0 means GOMAXPROCS), each
// shard walks its wires' unit edges into a shard-local occupancy store, and
// the stores are merged to find cross-shard conflicts. The check is exact —
// every unit grid edge of every wire is still recorded, exactly as in Check
// — and the result is deterministic: it does not depend on the worker count
// or on goroutine scheduling.
//
// Like Check, the edge stores are dense occupancy bitsets over the wire
// set's bounding box whenever the box is compact (see
// CheckOptions.DenseLimit); the merge is then a linear scan over the shards'
// bitsets instead of a hash-map union. Sparse or adversarial inputs fall
// back to per-shard hash maps keyed by a packed integer encoding.
//
// On a legal layout CheckParallel returns nil exactly when Check does, and
// on any input the result is byte-identical for every worker count. Illegal
// layouts produce the canonical violation set: ordered by wire (slice order)
// and, within a wire, by path position, with at most one walk violation per
// wire — the same truncation Check's early exit applies. Shared-edge
// violations carry Check's attribution rule (the wire earliest in slice
// order owns the edge; the later wire is charged). The only divergence from
// Check arises on layouts with several interacting violations, where Check's
// serial early exit also stops recording the rest of a violating wire's
// edges; CheckParallel records them, so it can attribute a conflict on those
// edges that Check never sees. Legality verdicts always agree.
//
// Deprecated: equivalent to Verify with Workers set — except that Verify
// maps Workers == 1 to the serial engine, while CheckParallel(…, 1) keeps
// running the parallel algorithm on one worker (the differential tests pin
// its output as byte-identical across worker counts, including 1).
func CheckParallel(wires []Wire, opts CheckOptions, workers int) []Violation {
	vs, _ := CheckParallelCtx(nil, wires, opts, workers)
	return vs
}

// CheckParallelCtx is CheckParallel with cooperative cancellation: both the
// sharded wire walk and the merge poll ctx (which may be nil, meaning no
// cancellation) and the call returns a nil violation slice plus an error
// wrapping par.ErrCanceled once the context is done. On a nil error the
// violations are exactly CheckParallel's.
//
// Deprecated: see CheckParallel; new callers use Verify.
func CheckParallelCtx(ctx context.Context, wires []Wire, opts CheckOptions, workers int) ([]Violation, error) {
	opts.Workers = workers
	return verifyParallel(ctx, wires, opts)
}

// verifyParallel is the sharded core behind Verify (any Workers value other
// than 1) and the deprecated CheckParallel wrappers, which is why it runs
// the parallel algorithm even for a fan-out of one.
func verifyParallel(ctx context.Context, wires []Wire, opts CheckOptions) ([]Violation, error) {
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}
	n := len(wires)
	if n == 0 {
		return nil, nil
	}
	w := par.Workers(opts.Workers)
	ob := opts.observer()
	ob.Set(obs.WorkerCount, int64(w))

	ms := opts.Span.Child("measure")
	box, total := parMeasure(wires, w)
	ms.End()
	if ix, ok := newOccIndexer(box, opts.DenseLimit, total); ok {
		ob.Add(obs.UnitEdgesChecked, int64(total))
		ob.Add(obs.DenseChecks, 1)
		ob.Add(obs.CellsAllocated, int64(ix.cells))
		// On the dense path every extra shard costs a full-size occupancy
		// bitset — cleared, walked, and rescanned in the merge — so fan-out
		// beyond the machine's actual parallelism only multiplies memory
		// traffic. That, not the merge scan itself (~0.5ms of the BENCH_5
		// 12-cube check), is why w=4 ran slower than w=1 on a single-core
		// host; large inputs therefore clamp to GOMAXPROCS. Small inputs
		// keep the requested fan-out: the result is identical for every
		// shard count, and tests rely on small multi-shard runs to cover the
		// cross-shard merge.
		dw := w
		if maxp := runtime.GOMAXPROCS(0); dw > maxp && total >= denseClampEdges {
			dw = maxp
		}
		return checkDenseParallel(ctx, wires, opts, ix, dw)
	}
	enc, ok := newEdgeEncoderFromBox(box)
	if !ok {
		// Coordinates too large to pack into 64 bits (beyond any layout this
		// module can realistically build): fall back to the reference checker,
		// which re-measures and maintains the counters itself.
		fallback := opts
		fallback.Span = opts.Span.Child("fallback-serial")
		vs, err := verifySerial(ctx, wires, fallback)
		fallback.Span.End()
		return vs, err
	}
	ob.Add(obs.UnitEdgesChecked, int64(total))
	ob.Add(obs.SparseChecks, 1)
	return checkSparseParallel(ctx, wires, opts, enc, w)
}

// parMeasure is Wires.measure sharded across the worker pool: one pass over
// all path vertices yielding the joint bounding box and total edge count.
func parMeasure(wires []Wire, workers int) (BoundingBox, int) {
	shards := par.NumChunks(workers, len(wires))
	boxes := make([]BoundingBox, shards)
	totals := make([]int, shards)
	par.Chunks(workers, len(wires), func(shard, lo, hi int) {
		boxes[shard], totals[shard] = Wires(wires[lo:hi]).measure()
	})
	box := NewBoundingBox()
	total := 0
	for s := range boxes {
		if !boxes[s].Empty() {
			box.AddPoint(Point{boxes[s].MinX, boxes[s].MinY, boxes[s].MinZ})
			box.AddPoint(Point{boxes[s].MaxX, boxes[s].MaxY, boxes[s].MaxZ})
		}
		total += totals[s]
	}
	return box, total
}

// canceler wraps the cooperative-cancellation poll shared by the parallel
// phases: cheap enough to call per item, polling the context only every
// ctxStride items, with the verdict broadcast through an atomic so every
// worker stops soon after the first one observes expiry.
type canceler struct {
	ctx  context.Context
	stop atomic.Bool
}

func (c *canceler) hit(counter int) bool {
	if c.ctx == nil || counter%ctxStride != 0 {
		return false
	}
	if c.stop.Load() {
		return true
	}
	if c.ctx.Err() != nil {
		c.stop.Store(true)
		return true
	}
	return false
}

// wordsPerLine is the occupancy-bitset alignment unit for the merge scan:
// eight 64-bit words is one 64-byte cache line.
const wordsPerLine = 8

// denseClampEdges is the unit-edge count above which the dense path limits
// its fan-out to GOMAXPROCS. Below it the per-shard bitsets are small enough
// that oversubscription costs nothing measurable, and keeping the requested
// fan-out lets small tests exercise the multi-shard merge.
const denseClampEdges = 1 << 15

// checkDenseParallel is CheckParallelCtx's dense core.
//
// Phase 1 walks contiguous wire shards, each marking edges in its own pooled
// occupancy bitset; a bit already set within a shard is recorded as a
// contested slot (no owner lookup — the bitset stores presence only).
// Phase 2 scans the shards' bitsets in cache-line-aligned ranges and ORs
// them word by word; any bit set by two shards is another contested slot.
// Only if contested slots exist does phase 3 replay the walk in global wire
// order to attribute owners and emit the shared-edge violations — so the
// legal path never hashes an edge, allocates per edge, or replays. The
// hotpath directive covers the whole function, including the cache-line
// shard merge scan.
//
//mlvlsi:hotpath
func checkDenseParallel(ctx context.Context, wires []Wire, opts CheckOptions, ix occIndexer, workers int) ([]Violation, error) {
	n := len(wires)
	words := ix.words()
	shards := par.NumChunks(workers, n)
	cancel := &canceler{ctx: ctx}

	type shardResult struct {
		buf        *occBuf
		violations []seqViolation
		contested  []int
	}
	results := make([]shardResult, shards)
	defer func() {
		for s := range results {
			if results[s].buf != nil {
				occPut(results[s].buf)
			}
		}
	}()
	walk := opts.Span.Child("walk")
	par.Chunks(workers, n, func(shard, lo, hi int) {
		res := &results[shard]
		res.buf = occGet(words)
		occ := res.buf.bits
		for wi := lo; wi < hi; wi++ {
			if cancel.hit(wi - lo) {
				return
			}
			collectWireDense(&wires[wi], int32(wi), opts, ix, occ, &res.violations, &res.contested)
		}
	})
	walk.End()
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}

	ncontested := 0
	for s := range results {
		ncontested += len(results[s].contested)
	}
	var crossed [][]int
	if shards > 1 {
		merge := opts.Span.Child("merge")
		crossed = make([][]int, par.NumAlignedChunks(workers, words, wordsPerLine))
		par.AlignedChunks(workers, words, wordsPerLine, func(chunk, lo, hi int) {
			var found []int
			for wd := lo; wd < hi; wd++ {
				if cancel.hit(wd - lo) {
					return
				}
				var acc, dup uint64
				for s := range results {
					b := results[s].buf.bits[wd]
					dup |= acc & b
					acc |= b
				}
				for dup != 0 {
					bit := bits.TrailingZeros64(dup)
					//mlvlsi:allow hotpath found stays nil on the legal path; it only grows once shards contest an edge, which is already the replay (cold) path
					found = append(found, wd<<6|bit)
					dup &^= 1 << bit
				}
			}
			crossed[chunk] = found
		})
		opts.observer().Add(obs.MergeNanos, int64(merge.End()))
		if err := par.Canceled(ctx); err != nil {
			return nil, err
		}
		for _, f := range crossed {
			ncontested += len(f)
		}
	}

	nviol := 0
	for s := range results {
		nviol += len(results[s].violations)
	}
	all := make([]seqViolation, 0, nviol)
	for s := range results {
		all = append(all, results[s].violations...)
	}
	if ncontested > 0 {
		resolve := opts.Span.Child("resolve")
		targets := make(map[int]int, ncontested)
		for s := range results {
			for _, idx := range results[s].contested {
				targets[idx] = -1
			}
		}
		for _, f := range crossed {
			for _, idx := range f {
				targets[idx] = -1
			}
		}
		all = append(all, replayShared(wires, opts, ix, targets)...)
		resolve.End()
	}
	return canonicalize(wires, all), nil
}

// collectWireDense runs the per-wire checks of Check on one wire, marking
// its unit edges in the shard's occupancy bitset. It mirrors Check's early
// exits — a malformed path skips the walk entirely and a layer-range or
// discipline violation stops the walk — except that a contested edge does
// not stop it: ownership is global and resolved after the merge, so the
// shard keeps recording (matching the previous hash-based phase split).
//
//mlvlsi:hotpath
func collectWireDense(w *Wire, wi int32, opts CheckOptions, ix occIndexer, occ []uint64, violations *[]seqViolation, contested *[]int) {
	if v, bad := w.structural(); bad {
		*violations = append(*violations, seqViolation{wire: wi, seq: seqValidate, v: v})
		return
	}
	seq := int32(0)
	w.UnitEdges(func(low Point, axis Axis) bool {
		if v, bad := edgeViolation(w, low, axis, &opts); bad {
			*violations = append(*violations, seqViolation{wire: wi, seq: seq, v: v})
			return false
		}
		idx := ix.index(low, axis)
		word, mask := idx>>6, uint64(1)<<(idx&63)
		if occ[word]&mask != 0 {
			*contested = append(*contested, idx)
		} else {
			occ[word] |= mask
		}
		seq++
		return true
	})
	collectTerminals(w, wi, opts.Nodes, violations)
}

// collectTerminals appends the terminal violations of one wire tagged with
// their canonical sort positions.
func collectTerminals(w *Wire, wi int32, nodes []Rect, violations *[]seqViolation) {
	if nodes == nil || w.U < 0 || w.V < 0 || len(w.Path) == 0 {
		return
	}
	var tv []Violation
	checkTerminal(w, w.Path[0], w.U, nodes, &tv)
	for _, v := range tv {
		*violations = append(*violations, seqViolation{wire: wi, seq: seqTerminalU, v: v})
	}
	tv = tv[:0]
	checkTerminal(w, w.Path[len(w.Path)-1], w.V, nodes, &tv)
	for _, v := range tv {
		*violations = append(*violations, seqViolation{wire: wi, seq: seqTerminalV, v: v})
	}
}

// replayShared rewalks every wire in global order, resolving each contested
// slot to its first claimant (the owner, matching Check's attribution) and
// emitting a shared-edge violation for every later claimant. The walk
// repeats phase 1's early exits exactly, so claim order — and therefore
// ownership — is identical to what a serial single-store pass would see.
// targets maps contested slot indices to -1; cost is one map probe per edge,
// paid only on illegal layouts.
func replayShared(wires []Wire, opts CheckOptions, ix occIndexer, targets map[int]int) []seqViolation {
	var out []seqViolation
	for wi := range wires {
		w := &wires[wi]
		if _, bad := w.structural(); bad {
			continue
		}
		seq := int32(0)
		w.UnitEdges(func(low Point, axis Axis) bool {
			if _, bad := edgeViolation(w, low, axis, &opts); bad {
				return false
			}
			if owner, contested := targets[ix.index(low, axis)]; contested {
				if owner < 0 {
					targets[ix.index(low, axis)] = w.ID
				} else {
					out = append(out, seqViolation{wire: int32(wi), seq: seq, v: Violation{
						WireID: w.ID, OtherID: owner, Where: low,
						Code: ReasonSharedEdge, EdgeAxis: axis,
					}})
				}
			}
			seq++
			return true
		})
	}
	return out
}

// canonicalize sorts the tagged violations into Check's canonical order and
// applies its per-wire walk truncation: Check stops walking a wire at its
// first violation, so it reports at most one walk violation per wire; keep
// only the earliest of ours (validate and terminal violations are outside
// the walk and unaffected).
func canonicalize(wires []Wire, all []seqViolation) []Violation {
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].wire != all[j].wire {
			return all[i].wire < all[j].wire
		}
		return all[i].seq < all[j].seq
	})
	out := make([]Violation, 0, len(all))
	walkDone := int32(-1) // last wire whose walk violation was emitted
	for _, sv := range all {
		if sv.seq >= 0 && sv.seq < seqTerminalU {
			if sv.wire == walkDone {
				continue
			}
			walkDone = sv.wire
		}
		out = append(out, sv.v)
	}
	return out
}

// checkSparseParallel is the retained hash-based parallel path for inputs
// the dense grid rejects. Phase 1 shards wires contiguously across workers,
// collecting every packed unit-edge key into hash-partitioned buckets;
// phase 2 merges each bucket across shards through a per-bucket map, first
// claimant in global wire order owning each edge — Check's attribution.
// Within a shard, bucket entries are appended in (wire, edge) order; shards
// cover ascending wire ranges, so concatenating shard buckets in shard
// order keeps every bucket globally sorted by wire, which is what makes
// ownership deterministic.
func checkSparseParallel(ctx context.Context, wires []Wire, opts CheckOptions, enc edgeEncoder, workers int) ([]Violation, error) {
	n := len(wires)
	cancel := &canceler{ctx: ctx}
	shards := par.NumChunks(workers, n)
	// One merge task per shard keeps fan-out bounded; rounded up to a power
	// of two so bucket selection is a mask instead of a modulo.
	buckets := 1
	for buckets < shards {
		buckets <<= 1
	}
	type shardResult struct {
		violations []seqViolation
		buckets    [][]claim
	}
	results := make([]shardResult, shards)
	walk := opts.Span.Child("walk")
	par.Chunks(workers, n, func(shard, lo, hi int) {
		res := &results[shard]
		res.buckets = make([][]claim, buckets)
		for wi := lo; wi < hi; wi++ {
			if cancel.hit(wi - lo) {
				return
			}
			collectWire(&wires[wi], int32(wi), opts, enc, res.buckets, &res.violations)
		}
	})
	walk.End()
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}

	merge := opts.Span.Child("merge")
	perBucket := make([][]seqViolation, buckets)
	par.ForEach(workers, buckets, func(b int) {
		total := 0
		for s := range results {
			total += len(results[s].buckets[b])
		}
		if total == 0 {
			return
		}
		owner := make(map[uint64]int32, total)
		var found []seqViolation
		processed := 0
		for s := range results {
			if cancel.hit(processed) {
				return
			}
			processed++
			for _, c := range results[s].buckets[b] {
				if first, dup := owner[c.key]; dup {
					found = append(found, seqViolation{
						wire: c.wire,
						seq:  c.seq,
						v: Violation{
							WireID: wires[c.wire].ID, OtherID: wires[first].ID,
							Where: enc.unpack(c.key),
							Code:  ReasonSharedEdge, EdgeAxis: Axis(c.key & 3),
						},
					})
				} else {
					owner[c.key] = c.wire
				}
			}
		}
		perBucket[b] = found
	})
	opts.observer().Add(obs.MergeNanos, int64(merge.End()))
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}

	var all []seqViolation
	for _, res := range results {
		all = append(all, res.violations...)
	}
	for _, found := range perBucket {
		all = append(all, found...)
	}
	return canonicalize(wires, all), nil
}

// claim records one unit edge hashed by one wire: the packed edge key plus
// the claiming wire's slice index and the edge's position along its path.
type claim struct {
	key  uint64
	wire int32
	seq  int32
}

// seqViolation carries a violation with its canonical sort position.
type seqViolation struct {
	wire int32
	seq  int32
	v    Violation
}

const (
	seqValidate  = int32(-1)        // malformed path, before any edge
	seqTerminalU = int32(1<<31 - 2) // terminal checks run after the walk
	seqTerminalV = int32(1<<31 - 1)
)

// collectWire runs the per-wire checks of Check on one wire and appends its
// unit edges to the hash-partitioned buckets. It mirrors Check exactly: a
// malformed path skips the walk entirely, and a layer-range or discipline
// violation stops the walk (so edges past it are not hashed, matching the
// serial checker's early exit).
func collectWire(w *Wire, wi int32, opts CheckOptions, enc edgeEncoder, buckets [][]claim, violations *[]seqViolation) {
	if v, bad := w.structural(); bad {
		// Matches Check's `continue`: a malformed path skips the walk and
		// the terminal checks.
		*violations = append(*violations, seqViolation{wire: wi, seq: seqValidate, v: v})
		return
	}
	seq := int32(0)
	mask := uint64(len(buckets) - 1)
	w.UnitEdges(func(low Point, axis Axis) bool {
		if v, bad := edgeViolation(w, low, axis, &opts); bad {
			*violations = append(*violations, seqViolation{wire: wi, seq: seq, v: v})
			return false
		}
		key := enc.pack(low, axis)
		b := int((key * 0x9E3779B97F4A7C15 >> 32) & mask)
		buckets[b] = append(buckets[b], claim{key: key, wire: wi, seq: seq})
		seq++
		return true
	})
	collectTerminals(w, wi, opts.Nodes, violations)
}

// edgeEncoder packs a unit edge (lower endpoint + axis) into a uint64:
// 2 axis bits in the low word, then Z, Y, X fields sized to the wire set's
// bounding box. Integer keys hash an order of magnitude faster than the
// 32-byte struct key the sparse serial checker uses.
type edgeEncoder struct {
	minX, minY, minZ       int
	shiftZ, shiftY, shiftX uint
}

// newEdgeEncoder scans the wires' path vertices (in parallel) for the
// bounding box and derives the field layout. ok is false when the spans do
// not fit in 62 bits.
func newEdgeEncoder(wires []Wire, workers int) (edgeEncoder, bool) {
	box, _ := parMeasure(wires, par.Workers(workers))
	return newEdgeEncoderFromBox(box)
}

// newEdgeEncoderFromBox derives the packed field layout from an
// already-computed bounding box.
func newEdgeEncoderFromBox(box BoundingBox) (edgeEncoder, bool) {
	if box.Empty() {
		return edgeEncoder{}, true
	}
	bitsFor := func(span int) uint {
		n := uint(1)
		for span >= 1<<n {
			n++
		}
		return n
	}
	// +1 head-room per field: the unit-edge lower endpoint never exceeds the
	// box, but sizing by span+1 keeps the arithmetic obviously safe.
	bz := bitsFor(box.MaxZ - box.MinZ + 1)
	by := bitsFor(box.MaxY - box.MinY + 1)
	bx := bitsFor(box.MaxX - box.MinX + 1)
	if 2+bz+by+bx > 64 {
		return edgeEncoder{}, false
	}
	return edgeEncoder{
		minX: box.MinX, minY: box.MinY, minZ: box.MinZ,
		shiftZ: 2,
		shiftY: 2 + bz,
		shiftX: 2 + bz + by,
	}, true
}

func (e edgeEncoder) pack(p Point, axis Axis) uint64 {
	return uint64(p.X-e.minX)<<e.shiftX |
		uint64(p.Y-e.minY)<<e.shiftY |
		uint64(p.Z-e.minZ)<<e.shiftZ |
		uint64(axis)
}

// unpack recovers the edge's lower endpoint from a packed key.
func (e edgeEncoder) unpack(key uint64) Point {
	maskY := uint64(1)<<(e.shiftX-e.shiftY) - 1
	maskZ := uint64(1)<<(e.shiftY-e.shiftZ) - 1
	return Point{
		X: int(key>>e.shiftX) + e.minX,
		Y: int(key>>e.shiftY&maskY) + e.minY,
		Z: int(key>>e.shiftZ&maskZ) + e.minZ,
	}
}
