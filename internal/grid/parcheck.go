package grid

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"mlvlsi/internal/par"
)

// CheckParallel is the sharded variant of Check: wires are partitioned into
// contiguous shards across workers (workers <= 0 means GOMAXPROCS), each
// shard walks its wires' unit edges into per-shard edge sets keyed by a
// packed integer encoding, and the shards' sets are merged bucket by bucket
// to find cross-shard conflicts. The check is exact — every unit grid edge
// of every wire is still hashed, exactly as in Check — and the result is
// deterministic: it does not depend on the worker count or on goroutine
// scheduling.
//
// On a legal layout CheckParallel returns nil exactly when Check does, and
// on any input the result is byte-identical for every worker count. Illegal
// layouts produce the canonical violation set: ordered by wire (slice order)
// and, within a wire, by path position, with at most one walk violation per
// wire — the same truncation Check's early exit applies. Shared-edge
// violations carry Check's attribution rule (the wire earliest in slice
// order owns the edge; the later wire is charged). The only divergence from
// Check arises on layouts with several interacting violations, where Check's
// serial early exit also stops hashing the rest of a violating wire's edges;
// CheckParallel hashes them, so it can attribute a conflict on those edges
// that Check never sees. Legality verdicts always agree.
func CheckParallel(wires []Wire, opts CheckOptions, workers int) []Violation {
	vs, _ := CheckParallelCtx(nil, wires, opts, workers)
	return vs
}

// CheckParallelCtx is CheckParallel with cooperative cancellation: both the
// sharded wire walk and the bucket merge poll ctx (which may be nil, meaning
// no cancellation) and the call returns a nil violation slice plus an error
// wrapping par.ErrCanceled once the context is done. On a nil error the
// violations are exactly CheckParallel's.
func CheckParallelCtx(ctx context.Context, wires []Wire, opts CheckOptions, workers int) ([]Violation, error) {
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}
	n := len(wires)
	if n == 0 {
		return nil, nil
	}
	w := par.Workers(workers)

	enc, ok := newEdgeEncoder(wires, w)
	if !ok {
		// Coordinates too large to pack into 64 bits (beyond any layout this
		// module can realistically build): fall back to the reference checker.
		return CheckCtx(ctx, wires, opts)
	}
	var stop atomic.Bool
	canceled := func(counter int) bool {
		if ctx == nil || counter%ctxStride != 0 {
			return false
		}
		if stop.Load() {
			return true
		}
		if ctx.Err() != nil {
			stop.Store(true)
			return true
		}
		return false
	}

	// Phase 1: shard wires contiguously across workers. Each shard performs
	// the per-wire checks (path validity, layer range, direction discipline,
	// terminals) and collects every hashed unit edge into hash-partitioned
	// buckets. Within a shard, bucket entries are appended in (wire, edge)
	// order; shards cover ascending wire ranges, so concatenating shard
	// buckets in shard order keeps every bucket globally sorted by wire —
	// which is what makes ownership deterministic in phase 2.
	shards := par.NumChunks(w, n)
	// One merge task per shard keeps fan-out bounded; rounded up to a power
	// of two so bucket selection is a mask instead of a modulo.
	buckets := 1
	for buckets < shards {
		buckets <<= 1
	}
	type shardResult struct {
		violations []seqViolation
		buckets    [][]claim
	}
	results := make([]shardResult, shards)
	par.Chunks(w, n, func(shard, lo, hi int) {
		res := &results[shard]
		res.buckets = make([][]claim, buckets)
		for wi := lo; wi < hi; wi++ {
			if canceled(wi - lo) {
				return
			}
			collectWire(&wires[wi], int32(wi), opts, enc, res.buckets, &res.violations)
		}
	})
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}

	// Phase 2: merge each bucket across shards. The per-bucket edge map is
	// the shard-local "seen" set of Check, now keyed by the packed encoding;
	// the first claimant in global wire order owns an edge and every later
	// claimant is a violation, matching Check's attribution.
	perBucket := make([][]seqViolation, buckets)
	par.ForEach(w, buckets, func(b int) {
		total := 0
		for s := range results {
			total += len(results[s].buckets[b])
		}
		if total == 0 {
			return
		}
		owner := make(map[uint64]int32, total)
		var found []seqViolation
		processed := 0
		for s := range results {
			if canceled(processed) {
				return
			}
			processed++
			for _, c := range results[s].buckets[b] {
				if first, dup := owner[c.key]; dup {
					found = append(found, seqViolation{
						wire: c.wire,
						seq:  c.seq,
						v: Violation{
							WireID:  wires[c.wire].ID,
							OtherID: wires[first].ID,
							Where:   enc.unpack(c.key),
							Reason:  fmt.Sprintf("shared unit %s-edge", Axis(c.key&3)),
						},
					})
				} else {
					owner[c.key] = c.wire
				}
			}
		}
		perBucket[b] = found
	})
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}

	var all []seqViolation
	for _, res := range results {
		all = append(all, res.violations...)
	}
	for _, found := range perBucket {
		all = append(all, found...)
	}
	if len(all) == 0 {
		return nil, nil
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].wire != all[j].wire {
			return all[i].wire < all[j].wire
		}
		return all[i].seq < all[j].seq
	})
	// Check stops walking a wire at its first violation, so it reports at
	// most one walk violation per wire; keep only the earliest of ours
	// (validate and terminal violations are outside the walk and unaffected).
	out := make([]Violation, 0, len(all))
	walkDone := int32(-1) // last wire whose walk violation was emitted
	for _, sv := range all {
		if sv.seq >= 0 && sv.seq < seqTerminalU {
			if sv.wire == walkDone {
				continue
			}
			walkDone = sv.wire
		}
		out = append(out, sv.v)
	}
	return out, nil
}

// claim records one unit edge hashed by one wire: the packed edge key plus
// the claiming wire's slice index and the edge's position along its path.
type claim struct {
	key  uint64
	wire int32
	seq  int32
}

// seqViolation carries a violation with its canonical sort position.
type seqViolation struct {
	wire int32
	seq  int32
	v    Violation
}

const (
	seqValidate  = int32(-1)        // malformed path, before any edge
	seqTerminalU = int32(1<<31 - 2) // terminal checks run after the walk
	seqTerminalV = int32(1<<31 - 1)
)

// collectWire runs the per-wire checks of Check on one wire and appends its
// unit edges to the hash-partitioned buckets. It mirrors Check exactly: a
// malformed path skips the walk entirely, and a layer-range or discipline
// violation stops the walk (so edges past it are not hashed, matching the
// serial checker's early exit).
func collectWire(w *Wire, wi int32, opts CheckOptions, enc edgeEncoder, buckets [][]claim, violations *[]seqViolation) {
	if err := w.Validate(); err != nil {
		// Matches Check's `continue`: a malformed path skips the walk and
		// the terminal checks.
		*violations = append(*violations, seqViolation{
			wire: wi, seq: seqValidate,
			v: Violation{WireID: w.ID, OtherID: -1, Reason: err.Error()},
		})
		return
	}
	{
		seq := int32(0)
		mask := uint64(len(buckets) - 1)
		w.UnitEdges(func(low Point, axis Axis) bool {
			if opts.Layers > 0 {
				zTop := low.Z
				if axis == AxisZ {
					zTop = low.Z + 1
				}
				if low.Z < 0 || zTop > opts.Layers {
					*violations = append(*violations, seqViolation{
						wire: wi, seq: seq,
						v: Violation{
							WireID: w.ID, OtherID: -1, Where: low,
							Reason: fmt.Sprintf("leaves wiring layer range [0,%d]", opts.Layers),
						},
					})
					return false
				}
			}
			if opts.Discipline && low.Z > 0 {
				if axis == AxisX && low.Z%2 == 0 {
					*violations = append(*violations, seqViolation{
						wire: wi, seq: seq,
						v: Violation{
							WireID: w.ID, OtherID: -1, Where: low,
							Reason: "x-run on an even layer violates direction discipline",
						},
					})
					return false
				}
				if axis == AxisY && low.Z%2 == 1 {
					*violations = append(*violations, seqViolation{
						wire: wi, seq: seq,
						v: Violation{
							WireID: w.ID, OtherID: -1, Where: low,
							Reason: "y-run on an odd layer violates direction discipline",
						},
					})
					return false
				}
			}
			key := enc.pack(low, axis)
			b := int((key * 0x9E3779B97F4A7C15 >> 32) & mask)
			buckets[b] = append(buckets[b], claim{key: key, wire: wi, seq: seq})
			seq++
			return true
		})
	}

	if opts.Nodes != nil && w.U >= 0 && w.V >= 0 {
		var tv []Violation
		checkTerminal(w, w.Path[0], w.U, opts.Nodes, &tv)
		for _, v := range tv {
			*violations = append(*violations, seqViolation{wire: wi, seq: seqTerminalU, v: v})
		}
		tv = tv[:0]
		checkTerminal(w, w.Path[len(w.Path)-1], w.V, opts.Nodes, &tv)
		for _, v := range tv {
			*violations = append(*violations, seqViolation{wire: wi, seq: seqTerminalV, v: v})
		}
	}
}

// edgeEncoder packs a unit edge (lower endpoint + axis) into a uint64:
// 2 axis bits in the low word, then Z, Y, X fields sized to the wire set's
// bounding box. Integer keys hash an order of magnitude faster than the
// 32-byte struct key the serial checker uses, which is where most of
// CheckParallel's single-core speedup comes from.
type edgeEncoder struct {
	minX, minY, minZ       int
	shiftZ, shiftY, shiftX uint
}

// newEdgeEncoder scans the wires' path vertices (in parallel) for the
// bounding box and derives the field layout. ok is false when the spans do
// not fit in 62 bits.
func newEdgeEncoder(wires []Wire, workers int) (edgeEncoder, bool) {
	shards := par.NumChunks(workers, len(wires))
	boxes := make([]BoundingBox, shards)
	par.Chunks(workers, len(wires), func(shard, lo, hi int) {
		b := NewBoundingBox()
		for wi := lo; wi < hi; wi++ {
			for _, p := range wires[wi].Path {
				b.AddPoint(p)
			}
		}
		boxes[shard] = b
	})
	box := NewBoundingBox()
	for _, b := range boxes {
		if !b.Empty() {
			box.AddPoint(Point{b.MinX, b.MinY, b.MinZ})
			box.AddPoint(Point{b.MaxX, b.MaxY, b.MaxZ})
		}
	}
	if box.Empty() {
		return edgeEncoder{}, true
	}
	bitsFor := func(span int) uint {
		n := uint(1)
		for span >= 1<<n {
			n++
		}
		return n
	}
	// +1 head-room per field: the unit-edge lower endpoint never exceeds the
	// box, but sizing by span+1 keeps the arithmetic obviously safe.
	bz := bitsFor(box.MaxZ - box.MinZ + 1)
	by := bitsFor(box.MaxY - box.MinY + 1)
	bx := bitsFor(box.MaxX - box.MinX + 1)
	if 2+bz+by+bx > 64 {
		return edgeEncoder{}, false
	}
	return edgeEncoder{
		minX: box.MinX, minY: box.MinY, minZ: box.MinZ,
		shiftZ: 2,
		shiftY: 2 + bz,
		shiftX: 2 + bz + by,
	}, true
}

func (e edgeEncoder) pack(p Point, axis Axis) uint64 {
	return uint64(p.X-e.minX)<<e.shiftX |
		uint64(p.Y-e.minY)<<e.shiftY |
		uint64(p.Z-e.minZ)<<e.shiftZ |
		uint64(axis)
}

// unpack recovers the edge's lower endpoint from a packed key.
func (e edgeEncoder) unpack(key uint64) Point {
	maskY := uint64(1)<<(e.shiftX-e.shiftY) - 1
	maskZ := uint64(1)<<(e.shiftY-e.shiftZ) - 1
	return Point{
		X: int(key>>e.shiftX) + e.minX,
		Y: int(key>>e.shiftY&maskY) + e.minY,
		Z: int(key>>e.shiftZ&maskZ) + e.minZ,
	}
}
