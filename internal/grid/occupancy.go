package grid

import (
	"context"
	"sync"

	"mlvlsi/internal/par"
)

// The dense occupancy grid replaces the checkers' hash maps on the inputs
// Thompson-model layouts actually produce: a compact 3-D bounding box whose
// unit-edge slots can be addressed by a flat index. Each slot is one bit in a
// pooled []uint64, so the legal path does a multiply-add and a test-and-set
// per edge instead of hashing a 32-byte struct key — and allocates nothing in
// steady state. Owner identity (which wire claimed an edge first) is not
// stored at all; it is recovered by a deterministic replay pass only when a
// collision is found, which keeps the happy path at one bit per slot.

// occIndexer maps a unit edge (lower endpoint + axis) inside a bounding box
// to a flat slot index: 3*(((z-minZ)*h + (y-minY))*w + (x-minX)) + axis.
// Every unit edge of a wire set lies inside the set's vertex bounding box by
// construction, so lookups need no range checks.
type occIndexer struct {
	minX, minY, minZ int
	w, h             int // lattice points per planar axis (extent + 1)
	cells            int // 3 * w * h * d: total unit-edge slots
}

// defaultDenseSlack is the flat allowance added to the adaptive dense
// threshold so small wire sets always take the dense path: 1<<22 slots is a
// 512 KiB bitset.
const defaultDenseSlack = 1 << 22

// defaultDenseCells is the adaptive dense budget for a wire set with the
// given total unit-edge count: at 128 slots per edge the bitset (128 bits =
// 16 bytes per edge) stays no larger than the ~50-byte-per-entry hash map it
// replaces, so admitting the dense path can only reduce memory.
func defaultDenseCells(total int) int {
	return 128*total + defaultDenseSlack
}

// newOccIndexer decides whether the wire set with the given vertex bounding
// box and total edge count is dense enough for the flat occupancy grid (see
// CheckOptions.DenseLimit) and, if so, builds the indexer.
func newOccIndexer(box BoundingBox, limit, total int) (occIndexer, bool) {
	if box.Empty() || limit < 0 {
		return occIndexer{}, false
	}
	budget := limit
	if budget == 0 {
		budget = defaultDenseCells(total)
	}
	w := box.MaxX - box.MinX + 1
	h := box.MaxY - box.MinY + 1
	d := box.MaxZ - box.MinZ + 1
	// Overflow-safe 3*w*h*d: reject stepwise against the budget, which always
	// fits an int.
	cells := 3
	for _, extent := range [...]int{w, h, d} {
		if extent > budget/cells {
			return occIndexer{}, false
		}
		cells *= extent
	}
	return occIndexer{
		minX: box.MinX, minY: box.MinY, minZ: box.MinZ,
		w: w, h: h, cells: cells,
	}, true
}

// index is the dense checker's per-edge multiply-add; it must stay
// allocation- and call-free.
//
//mlvlsi:hotpath
func (ix occIndexer) index(low Point, axis Axis) int {
	return 3*(((low.Z-ix.minZ)*ix.h+(low.Y-ix.minY))*ix.w+(low.X-ix.minX)) + int(axis)
}

// unindex recovers the edge identified by a flat slot index.
func (ix occIndexer) unindex(idx int) (Point, Axis) {
	axis := Axis(idx % 3)
	rest := idx / 3
	x := rest%ix.w + ix.minX
	rest /= ix.w
	return Point{X: x, Y: rest%ix.h + ix.minY, Z: rest/ix.h + ix.minZ}, axis
}

// words returns the size of the occupancy bitset in 64-bit words.
func (ix occIndexer) words() int { return (ix.cells + 63) / 64 }

// occBuf is a pooled occupancy bitset. Pooling the wrapper struct (not the
// slice) keeps Get/Put free of interface-boxing allocations, so repeated
// checks of same-sized layouts run at zero allocations per call.
type occBuf struct {
	bits []uint64
}

var occPool sync.Pool

// occGet returns a zeroed bitset of the given word count, reusing pooled
// backing storage when it is large enough.
//
//mlvlsi:hotpath
func occGet(words int) *occBuf {
	b, _ := occPool.Get().(*occBuf)
	if b == nil {
		b = &occBuf{}
	}
	if cap(b.bits) >= words {
		b.bits = b.bits[:words]
		clear(b.bits)
	} else {
		b.bits = make([]uint64, words)
	}
	return b
}

func occPut(b *occBuf) { occPool.Put(b) }

// checkDense is Check's dense-occupancy core. It mirrors checkSparse exactly
// — same wire order, same early exits, same violations — with the edge map
// replaced by a bitset test-and-set. Shared-edge violations found here lack
// the owning wire's identity (the bitset stores presence, not owners); when
// any occur, resolveOwners replays the walk to fill in OtherID.
//
//mlvlsi:hotpath
func checkDense(ctx context.Context, wires []Wire, opts CheckOptions, ix occIndexer) ([]Violation, error) {
	buf := occGet(ix.words())
	defer occPut(buf)
	bits := buf.bits
	var violations []Violation
	collided := false

	for wi := range wires {
		if ctx != nil && wi%ctxStride == 0 {
			if err := par.Canceled(ctx); err != nil {
				return nil, err
			}
		}
		w := &wires[wi]
		if v, bad := w.structural(); bad {
			violations = append(violations, v)
			continue
		}
		w.UnitEdges(func(low Point, axis Axis) bool {
			if v, bad := edgeViolation(w, low, axis, &opts); bad {
				violations = append(violations, v)
				return false
			}
			idx := ix.index(low, axis)
			word, mask := idx>>6, uint64(1)<<(idx&63)
			if bits[word]&mask != 0 {
				collided = true
				violations = append(violations, Violation{
					WireID: w.ID, OtherID: -1, Where: low,
					Code: ReasonSharedEdge, EdgeAxis: axis,
				})
				return false
			}
			bits[word] |= mask
			return true
		})

		checkTerminals(w, opts.Nodes, &violations)
	}
	if collided {
		resolveOwners(wires, opts, ix, bits, violations)
	}
	return violations, nil
}

// resolveOwners fills in the OtherID of every shared-edge violation by
// replaying the serial walk. The replay repeats the first pass bit for bit —
// same wire order, same structural skips, same early exits at edge
// violations and at already-set bits — so the first wire to set a contested
// bit in the replay is exactly the wire that owned it in the first pass.
// Only contested slots pay for owner storage (a small map), and the replay
// stops as soon as every contested slot has found its owner.
func resolveOwners(wires []Wire, opts CheckOptions, ix occIndexer, bits []uint64, violations []Violation) {
	owners := make(map[int]int)
	for i := range violations {
		if violations[i].Code == ReasonSharedEdge && violations[i].OtherID < 0 {
			owners[ix.index(violations[i].Where, violations[i].EdgeAxis)] = -1
		}
	}
	clear(bits)
	remaining := len(owners)
	for wi := range wires {
		if remaining == 0 {
			break
		}
		w := &wires[wi]
		if _, bad := w.structural(); bad {
			continue
		}
		w.UnitEdges(func(low Point, axis Axis) bool {
			if _, bad := edgeViolation(w, low, axis, &opts); bad {
				return false
			}
			idx := ix.index(low, axis)
			word, mask := idx>>6, uint64(1)<<(idx&63)
			if bits[word]&mask != 0 {
				return false
			}
			bits[word] |= mask
			if o, contested := owners[idx]; contested && o < 0 {
				owners[idx] = w.ID
				remaining--
			}
			return true
		})
	}
	for i := range violations {
		if violations[i].Code == ReasonSharedEdge && violations[i].OtherID < 0 {
			violations[i].OtherID = owners[ix.index(violations[i].Where, violations[i].EdgeAxis)]
		}
	}
}
