package grid

import (
	"context"
	"errors"
	"runtime/debug"
	"testing"
	"time"

	"mlvlsi/internal/par"
)

// fuseCtx is a context that reports itself canceled starting with its
// n-th Err poll, letting a test fail the dense walk deterministically in
// the middle of a verify (the checkers poll every ctxStride wires).
type fuseCtx struct {
	polls, fuse int
}

func (c *fuseCtx) Err() error {
	c.polls++
	if c.polls >= c.fuse {
		return context.Canceled
	}
	return nil
}

func (c *fuseCtx) Done() <-chan struct{}                   { return nil }
func (c *fuseCtx) Deadline() (deadline time.Time, ok bool) { return }
func (c *fuseCtx) Value(key any) any                       { return nil }

// TestOccPoolRefillsAfterMidVerifyFailure pins the pooled-bitset leak
// contract: checkDense must return its occupancy buffer to the pool on
// every exit, including the cancellation error return in the middle of
// the wire walk. A leak would make each canceled check allocate a fresh
// bitset; with the pool refilling, a warm steady state allocates none.
func TestOccPoolRefillsAfterMidVerifyFailure(t *testing.T) {
	// The pool survives GC only probabilistically; switch GC off so a
	// background collection cannot empty it mid-assertion.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := 0
	occPool.New = func() any {
		allocs++
		return &occBuf{}
	}
	defer func() { occPool.New = nil }()

	// Enough wires for two context polls: the first admits the walk, the
	// second (at wire ctxStride) trips the fuse mid-verify.
	wires := make([]Wire, 2*ctxStride)
	for i := range wires {
		wires[i] = Wire{ID: i, U: -1, V: -1, Path: []Point{{0, i, 1}, {4, i, 1}}}
	}
	box, total := Wires(wires).measure()
	ix, ok := newOccIndexer(box, 0, total)
	if !ok {
		t.Fatal("wire set unexpectedly rejected by the dense path")
	}

	run := func() {
		t.Helper()
		vs, err := checkDense(&fuseCtx{fuse: 2}, wires, CheckOptions{}, ix)
		if !errors.Is(err, par.ErrCanceled) {
			t.Fatalf("checkDense error = %v, want wrapping par.ErrCanceled", err)
		}
		if vs != nil {
			t.Fatalf("canceled check returned violations: %v", vs)
		}
	}

	run() // warm the pool (first check may allocate the one pooled buffer)
	const iterations = 32
	allocs = 0
	for i := 0; i < iterations; i++ {
		run()
	}
	// A leak allocates on every iteration (the buffer never comes back);
	// a refilling pool allocates on none. Under -race, sync.Pool drops a
	// random fraction of Puts by design, so only the every-iteration
	// signature is distinguishable there.
	if raceEnabled {
		if allocs >= iterations {
			t.Errorf("pool leaked on the mid-verify error path: all %d canceled checks allocated a fresh bitset", allocs)
		}
	} else if allocs != 0 {
		t.Errorf("pool leaked on the mid-verify error path: %d fresh bitset allocations across %d canceled checks, want 0", allocs, iterations)
	}
}
