package grid

import "testing"

func TestClearanceDetectsForeignCrossing(t *testing.T) {
	nodes := []Rect{
		{X: 0, Y: 0, W: 4, H: 4},
		{X: 10, Y: 0, W: 4, H: 4},
		{X: 5, Y: 0, W: 3, H: 3}, // sits between them
	}
	// A wire from node 0 to node 1 plowing straight through node 2's
	// interior at y=1.
	w := Wire{ID: 0, U: 0, V: 1, Path: []Point{
		{X: 2, Y: 1, Z: 0}, {X: 2, Y: 1, Z: 1}, {X: 12, Y: 1, Z: 1}, {X: 12, Y: 1, Z: 0},
	}}
	if v := CheckClearance([]Wire{w}, nodes); len(v) == 0 {
		t.Error("crossing through a foreign node interior not flagged")
	}
	// The same wire at y=3 runs along node 2's boundary (H=3): allowed.
	w2 := Wire{ID: 1, U: 0, V: 1, Path: []Point{
		{X: 2, Y: 3, Z: 0}, {X: 2, Y: 3, Z: 1}, {X: 12, Y: 3, Z: 1}, {X: 12, Y: 3, Z: 0},
	}}
	if v := CheckClearance([]Wire{w2}, nodes); len(v) != 0 {
		t.Errorf("boundary run flagged: %v", v)
	}
}

func TestClearanceAllowsOwnNodes(t *testing.T) {
	nodes := []Rect{{X: 0, Y: 0, W: 4, H: 4}}
	// A run inside the wire's own endpoint node is allowed.
	w := Wire{ID: 0, U: 0, V: 0, Path: []Point{
		{X: 1, Y: 2, Z: 1}, {X: 3, Y: 2, Z: 1},
	}}
	if v := CheckClearance([]Wire{w}, nodes); len(v) != 0 {
		t.Errorf("own-node run flagged: %v", v)
	}
}

func TestClearanceIgnoresVias(t *testing.T) {
	nodes := []Rect{{X: 0, Y: 0, W: 4, H: 4}}
	w := Wire{ID: 0, U: -1, V: -1, Path: []Point{
		{X: 2, Y: 2, Z: 0}, {X: 2, Y: 2, Z: 5},
	}}
	if v := CheckClearance([]Wire{w}, nodes); len(v) != 0 {
		t.Errorf("via through a node column flagged: %v", v)
	}
}
