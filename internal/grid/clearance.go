package grid

// CheckClearance verifies the Thompson-strict property that no planar wire
// segment passes strictly through the interior of a node rectangle other
// than the rectangles of the wire's own endpoints. The multilayer grid
// model itself permits wiring layers to cross over nodes; the engine's
// outputs happen to be clearance-clean (all trunks live in channels, all
// stubs above/right of their own node), and this check certifies that
// stronger property.
//
// Interiors are open: running along a node's boundary line is allowed.
func CheckClearance(wires []Wire, nodes []Rect) []Violation {
	// Index strictly-interior half-unit midpoints of every node cell.
	// The midpoint of an x-edge (x..x+1, y) is (2x+1, 2y); of a y-edge,
	// (2x, 2y+1). A half-point (px, py) is strictly inside rect r iff
	// 2r.X < px < 2(r.X+r.W) and 2r.Y < py < 2(r.Y+r.H).
	type hp struct{ x, y int }
	interior := make(map[hp]int)
	for id, r := range nodes {
		for px := 2*r.X + 1; px < 2*(r.X+r.W); px++ {
			for py := 2*r.Y + 1; py < 2*(r.Y+r.H); py++ {
				interior[hp{px, py}] = id
			}
		}
	}
	var violations []Violation
	for wi := range wires {
		w := &wires[wi]
		w.UnitEdges(func(low Point, axis Axis) bool {
			var p hp
			switch axis {
			case AxisX:
				p = hp{2*low.X + 1, 2 * low.Y}
			case AxisY:
				p = hp{2 * low.X, 2*low.Y + 1}
			default:
				return true // vias are vertical; clearance is planar
			}
			node, inside := interior[p]
			if !inside || node == w.U || node == w.V {
				return true
			}
			violations = append(violations, Violation{
				WireID: w.ID, OtherID: -1, Where: low,
				Code: ReasonNodeInterior, Aux: int32(node),
			})
			return false
		})
	}
	return violations
}
