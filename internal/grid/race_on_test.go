//go:build race

package grid

// raceEnabled reports whether the race detector is compiled in; under
// -race, sync.Pool randomly drops a fraction of Puts by design, so pool
// tests must loosen exact-reuse assertions.
const raceEnabled = true
