package grid

import (
	"reflect"
	"testing"
)

// occBox builds a bounding box from explicit corners.
func occBox(minX, minY, minZ, maxX, maxY, maxZ int) BoundingBox {
	b := NewBoundingBox()
	b.AddPoint(Point{minX, minY, minZ})
	b.AddPoint(Point{maxX, maxY, maxZ})
	return b
}

func TestOccIndexerRoundTrip(t *testing.T) {
	ix, ok := newOccIndexer(occBox(-3, 2, 0, 5, 9, 4), 0, 100)
	if !ok {
		t.Fatal("compact box rejected")
	}
	// Exhaustive: every slot index maps to a unique edge and back.
	seen := make(map[int]bool, ix.cells)
	for z := 0; z <= 4; z++ {
		for y := 2; y <= 9; y++ {
			for x := -3; x <= 5; x++ {
				for _, a := range []Axis{AxisX, AxisY, AxisZ} {
					low := Point{x, y, z}
					idx := ix.index(low, a)
					if idx < 0 || idx >= ix.cells {
						t.Fatalf("index(%v, %v) = %d out of [0,%d)", low, a, idx, ix.cells)
					}
					if seen[idx] {
						t.Fatalf("index(%v, %v) = %d collides with another edge", low, a, idx)
					}
					seen[idx] = true
					gotP, gotA := ix.unindex(idx)
					if gotP != low || gotA != a {
						t.Fatalf("unindex(index(%v, %v)) = (%v, %v)", low, a, gotP, gotA)
					}
				}
			}
		}
	}
	if len(seen) != ix.cells {
		t.Fatalf("covered %d of %d slots", len(seen), ix.cells)
	}
}

func TestOccIndexerThresholds(t *testing.T) {
	box := occBox(0, 0, 0, 9, 9, 2) // 10*10*3*3 = 900 slots
	if _, ok := newOccIndexer(box, -1, 1000); ok {
		t.Error("negative limit should force the sparse path")
	}
	if _, ok := newOccIndexer(box, 899, 1000); ok {
		t.Error("limit below the slot count should reject the dense path")
	}
	if ix, ok := newOccIndexer(box, 900, 1000); !ok || ix.cells != 900 {
		t.Errorf("limit at the slot count should admit: ok=%v cells=%d", ok, ix.cells)
	}
	if _, ok := newOccIndexer(box, 0, 1000); !ok {
		t.Error("adaptive limit should admit a compact box")
	}
	// Adaptive rejection: a sparse wire set spanning a huge box. The extents
	// here would overflow 3*w*h*d in int arithmetic, so this also checks the
	// stepwise overflow guard.
	huge := occBox(0, 0, 0, 1<<40, 1<<40, 4)
	if _, ok := newOccIndexer(huge, 0, 10); ok {
		t.Error("adaptive limit should reject a sparse gigantic box")
	}
	if _, ok := newOccIndexer(NewBoundingBox(), 0, 0); ok {
		t.Error("empty box should not build an indexer")
	}
}

// denseAndSparse runs Check with the dense path admitted and with the map
// fallback forced, failing the test if the results diverge.
func denseAndSparse(t *testing.T, wires []Wire, opts CheckOptions) []Violation {
	t.Helper()
	opts.DenseLimit = 0
	dense := Check(wires, opts)
	opts.DenseLimit = -1
	sparse := Check(wires, opts)
	if !reflect.DeepEqual(dense, sparse) {
		t.Fatalf("dense/sparse divergence\ndense:  %v\nsparse: %v", dense, sparse)
	}
	return dense
}

func TestCheckDenseMatchesSparseRandom(t *testing.T) {
	opts := CheckOptions{Layers: 4, Discipline: true}
	for seed := int64(0); seed < 300; seed++ {
		var wires []Wire
		for i := 0; i < 6; i++ {
			w := randomWire(seed*31 + int64(i))
			w.ID = i
			wires = append(wires, w)
		}
		denseAndSparse(t, wires, opts)
	}
}

func TestCheckDenseSharedEdgeAttribution(t *testing.T) {
	// Three wires fighting over the same unit edge: the first claimant owns
	// it, both later wires are charged against wire 0 — and the dense path's
	// replay must recover that attribution without owner storage.
	edge := []Point{{1, 1, 1}, {2, 1, 1}}
	wires := []Wire{
		{ID: 0, U: -1, V: -1, Path: edge},
		{ID: 1, U: -1, V: -1, Path: edge},
		{ID: 2, U: -1, V: -1, Path: edge},
	}
	vs := denseAndSparse(t, wires, CheckOptions{Layers: 2, Discipline: true})
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	for i, v := range vs {
		if v.Code != ReasonSharedEdge || v.OtherID != 0 || v.WireID != i+1 {
			t.Errorf("violation %d = %+v, want wire %d charged against wire 0", i, v, i+1)
		}
	}

	// Self-overlap: a wire that doubles back over its own edge must charge
	// itself (OtherID == its own ID).
	self := []Wire{{ID: 7, U: -1, V: -1, Path: []Point{
		{0, 0, 1}, {3, 0, 1}, {3, 1, 1}, {3, 0, 1}, {5, 0, 1},
	}}}
	vs = denseAndSparse(t, self, CheckOptions{Layers: 2})
	if len(vs) != 1 || vs[0].OtherID != 7 || vs[0].WireID != 7 {
		t.Fatalf("self-overlap: %v, want one violation charging wire 7 against itself", vs)
	}
}

func TestCheckDensePoolReuseAcrossSizes(t *testing.T) {
	// Back-to-back checks of different-sized wire sets must not leak
	// occupancy bits through the pool: a stale bit would surface as a
	// phantom shared-edge violation on a legal layout.
	small := []Wire{{ID: 0, U: -1, V: -1, Path: []Point{{0, 0, 1}, {4, 0, 1}}}}
	big := []Wire{
		{ID: 0, U: -1, V: -1, Path: []Point{{0, 0, 1}, {40, 0, 1}}},
		{ID: 1, U: -1, V: -1, Path: []Point{{0, 1, 1}, {40, 1, 1}}},
	}
	for round := 0; round < 10; round++ {
		if vs := Check(big, CheckOptions{Layers: 2}); len(vs) != 0 {
			t.Fatalf("round %d: big layout reported %v", round, vs)
		}
		if vs := Check(small, CheckOptions{Layers: 2}); len(vs) != 0 {
			t.Fatalf("round %d: small layout reported %v", round, vs)
		}
	}
}

func TestCheckParallelDenseMatchesSparse(t *testing.T) {
	opts := CheckOptions{Layers: 4, Discipline: true}
	for seed := int64(0); seed < 100; seed++ {
		var wires []Wire
		for i := 0; i < 8; i++ {
			w := randomWire(seed*53 + int64(i)*7)
			w.ID = i
			wires = append(wires, w)
		}
		sparse := opts
		sparse.DenseLimit = -1
		for _, workers := range []int{1, 2, 4} {
			d := CheckParallel(wires, opts, workers)
			s := CheckParallel(wires, sparse, workers)
			if !reflect.DeepEqual(d, s) {
				t.Fatalf("seed %d workers %d: parallel dense/sparse divergence\ndense:  %v\nsparse: %v",
					seed, workers, d, s)
			}
		}
	}
}

func TestViolationMessages(t *testing.T) {
	cases := []struct {
		v    Violation
		want string
	}{
		{Violation{WireID: 3, OtherID: 5, Where: Point{1, 2, 3}, Code: ReasonSharedEdge, EdgeAxis: AxisY},
			"wire 3 overlaps wire 5 at (1,2,3): shared unit y-edge"},
		{Violation{WireID: 2, OtherID: -1, Where: Point{0, 0, -1}, Code: ReasonLayerRange, Aux: 4},
			"wire 2 at (0,0,-1): leaves wiring layer range [0,4]"},
		{Violation{WireID: 1, OtherID: -1, Where: Point{9, 9, 2}, Code: ReasonDisciplineX},
			"wire 1 at (9,9,2): x-run on an even layer violates direction discipline"},
		{Violation{WireID: 1, OtherID: -1, Where: Point{9, 9, 1}, Code: ReasonDisciplineY},
			"wire 1 at (9,9,1): y-run on an odd layer violates direction discipline"},
		{Violation{WireID: 0, OtherID: -1, Code: ReasonShortPath, Aux: 1},
			"wire 0 at (0,0,0): path has 1 vertices, need at least 2"},
		{Violation{WireID: 4, OtherID: -1, Where: Point{2, 2, 0}, Code: ReasonTerminalOutsideNode, Aux: 9},
			"wire 4 at (2,2,0): wire terminal is outside node 9 rectangle"},
	}
	for _, tc := range cases {
		if got := tc.v.Error(); got != tc.want {
			t.Errorf("Error() = %q, want %q", got, tc.want)
		}
	}
}
