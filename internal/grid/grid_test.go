package grid

import (
	"testing"
	"testing/quick"
)

func wire(id int, pts ...Point) Wire {
	return Wire{ID: id, U: -1, V: -1, Path: pts}
}

func TestWireValidate(t *testing.T) {
	cases := []struct {
		name string
		w    Wire
		ok   bool
	}{
		{"straight x", wire(0, Point{0, 0, 1}, Point{5, 0, 1}), true},
		{"L-shape", wire(1, Point{0, 0, 1}, Point{5, 0, 1}, Point{5, 3, 1}), true},
		{"via", wire(2, Point{0, 0, 0}, Point{0, 0, 3}), true},
		{"single point", wire(3, Point{0, 0, 0}), false},
		{"diagonal", wire(4, Point{0, 0, 0}, Point{1, 1, 0}), false},
		{"zero hop", wire(5, Point{0, 0, 0}, Point{0, 0, 0}), false},
	}
	for _, c := range cases {
		err := c.w.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestWireLength(t *testing.T) {
	w := wire(0, Point{0, 0, 0}, Point{0, 0, 2}, Point{4, 0, 2}, Point{4, 3, 2}, Point{4, 3, 0})
	if got := w.Length(); got != 2+4+3+2 {
		t.Errorf("Length = %d, want 11", got)
	}
	if got := w.PlanarLength(); got != 4+3 {
		t.Errorf("PlanarLength = %d, want 7", got)
	}
}

func TestWireUnitEdges(t *testing.T) {
	w := wire(0, Point{2, 0, 1}, Point{0, 0, 1}, Point{0, 2, 1})
	var got []edgeKey
	w.UnitEdges(func(low Point, axis Axis) bool {
		got = append(got, edgeKey{low, axis})
		return true
	})
	// Unit edges are reported lower-endpoint-first regardless of the
	// traversal direction of the segment.
	want := []edgeKey{
		{Point{0, 0, 1}, AxisX},
		{Point{1, 0, 1}, AxisX},
		{Point{0, 0, 1}, AxisY},
		{Point{0, 1, 1}, AxisY},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWireUnitEdgesEarlyStop(t *testing.T) {
	w := wire(0, Point{0, 0, 1}, Point{10, 0, 1})
	count := 0
	w.UnitEdges(func(Point, Axis) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d edges, want 3", count)
	}
}

func TestCheckDetectsOverlap(t *testing.T) {
	a := wire(0, Point{0, 0, 1}, Point{10, 0, 1})
	b := wire(1, Point{5, 0, 1}, Point{7, 0, 1})
	v := Check([]Wire{a, b}, CheckOptions{})
	if len(v) == 0 {
		t.Fatal("overlapping wires not detected")
	}
	if v[0].WireID != 1 || v[0].OtherID != 0 {
		t.Errorf("violation = %+v, want wire 1 vs wire 0", v[0])
	}
}

func TestCheckCrossingIsLegal(t *testing.T) {
	// Two wires crossing at a point (different axes) share no unit edge.
	a := wire(0, Point{0, 5, 1}, Point{10, 5, 1})
	b := wire(1, Point{5, 0, 2}, Point{5, 10, 2})
	if v := Check([]Wire{a, b}, CheckOptions{}); len(v) != 0 {
		t.Errorf("crossing wires flagged: %v", v)
	}
	// Even on the same layer, an x-run and a y-run through the same point
	// are edge-disjoint (knock-knee-free crossing).
	c := wire(2, Point{20, 5, 1}, Point{30, 5, 1})
	d := wire(3, Point{25, 0, 1}, Point{25, 10, 1})
	if v := Check([]Wire{c, d}, CheckOptions{}); len(v) != 0 {
		t.Errorf("same-layer crossing flagged: %v", v)
	}
}

func TestCheckTouchingEndpointsLegal(t *testing.T) {
	// Wires meeting head-to-tail share a vertex but no unit edge.
	a := wire(0, Point{0, 0, 1}, Point{5, 0, 1})
	b := wire(1, Point{5, 0, 1}, Point{9, 0, 1})
	if v := Check([]Wire{a, b}, CheckOptions{}); len(v) != 0 {
		t.Errorf("touching wires flagged: %v", v)
	}
}

func TestCheckDiscipline(t *testing.T) {
	bad := []Wire{
		wire(0, Point{0, 0, 2}, Point{4, 0, 2}), // x-run on even layer
	}
	if v := Check(bad, CheckOptions{Discipline: true}); len(v) == 0 {
		t.Error("x-run on even layer not flagged under discipline")
	}
	bad2 := []Wire{
		wire(0, Point{0, 0, 1}, Point{0, 4, 1}), // y-run on odd layer
	}
	if v := Check(bad2, CheckOptions{Discipline: true}); len(v) == 0 {
		t.Error("y-run on odd layer not flagged under discipline")
	}
	good := []Wire{
		wire(0, Point{0, 0, 1}, Point{4, 0, 1}),
		wire(1, Point{0, 0, 2}, Point{0, 4, 2}),
		wire(2, Point{1, 1, 0}, Point{1, 1, 2}), // via
		wire(3, Point{2, 0, 0}, Point{6, 0, 0}), // active layer runs are exempt
		wire(4, Point{2, 1, 0}, Point{2, 6, 0}),
	}
	if v := Check(good, CheckOptions{Discipline: true}); len(v) != 0 {
		t.Errorf("legal disciplined wires flagged: %v", v)
	}
}

func TestCheckLayerRange(t *testing.T) {
	w := []Wire{wire(0, Point{0, 0, 0}, Point{0, 0, 5})}
	if v := Check(w, CheckOptions{Layers: 4}); len(v) == 0 {
		t.Error("via above top layer not flagged")
	}
	if v := Check(w, CheckOptions{Layers: 5}); len(v) != 0 {
		t.Errorf("via within range flagged: %v", v)
	}
}

func TestCheckTerminals(t *testing.T) {
	nodes := []Rect{{X: 0, Y: 0, W: 2, H: 2}, {X: 10, Y: 0, W: 2, H: 2}}
	good := Wire{ID: 0, U: 0, V: 1, Path: []Point{
		{1, 2, 0}, {1, 2, 1}, {11, 2, 1}, {11, 2, 0},
	}}
	if v := Check([]Wire{good}, CheckOptions{Nodes: nodes}); len(v) != 0 {
		t.Errorf("good terminal wire flagged: %v", v)
	}
	offNode := Wire{ID: 1, U: 0, V: 1, Path: []Point{
		{5, 5, 0}, {5, 5, 1}, {11, 5, 1}, {11, 5, 0}, {11, 2, 0},
	}}
	if v := Check([]Wire{offNode}, CheckOptions{Nodes: nodes}); len(v) == 0 {
		t.Error("terminal outside node rectangle not flagged")
	}
	notActive := Wire{ID: 2, U: 0, V: 1, Path: []Point{
		{1, 2, 1}, {11, 2, 1},
	}}
	if v := Check([]Wire{notActive}, CheckOptions{Nodes: nodes}); len(v) == 0 {
		t.Error("terminal off the active layer not flagged")
	}
}

func TestBoundingBox(t *testing.T) {
	b := NewBoundingBox()
	if !b.Empty() || b.Area() != 0 {
		t.Fatal("new box should be empty with zero area")
	}
	b.AddPoint(Point{2, 3, 1})
	b.AddPoint(Point{7, -1, 4})
	if b.Width() != 5 || b.Height() != 4 || b.Area() != 20 {
		t.Errorf("box = %+v, want width 5 height 4 area 20", b)
	}
	b.AddRect(Rect{X: -3, Y: 0, W: 2, H: 2}, 0)
	if b.MinX != -3 || b.Width() != 10 {
		t.Errorf("after AddRect box = %+v", b)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 3, H: 4}
	for _, c := range []struct {
		x, y int
		want bool
	}{
		{1, 2, true}, {4, 6, true}, {2, 3, true},
		{0, 2, false}, {5, 3, false}, {2, 7, false},
	} {
		if got := r.Contains(c.x, c.y); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

// Property: Length is invariant under translation, and UnitEdges visits
// exactly Length edges.
func TestWirePropertyLengthMatchesUnitEdges(t *testing.T) {
	f := func(seed int64) bool {
		w := randomWire(seed)
		count := 0
		w.UnitEdges(func(Point, Axis) bool { count++; return true })
		if count != w.Length() {
			return false
		}
		shifted := Wire{ID: w.ID, U: w.U, V: w.V}
		for _, p := range w.Path {
			shifted.Path = append(shifted.Path, p.Add(17, -9, 3))
		}
		return shifted.Length() == w.Length()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Check never reports violations for a set of wires on pairwise
// distinct layers that each stay within their own layer.
func TestCheckPropertyDisjointLayersLegal(t *testing.T) {
	f := func(seed int64) bool {
		var wires []Wire
		for i := 0; i < 8; i++ {
			w := randomPlanarWire(seed+int64(i)*977, i+1)
			w.ID = i
			wires = append(wires, w)
		}
		return len(Check(wires, CheckOptions{})) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomWire builds a deterministic pseudo-random rectilinear wire from seed.
func randomWire(seed int64) Wire {
	s := uint64(seed)*2654435761 + 1
	next := func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
	p := Point{next(10), next(10), next(5)}
	w := Wire{ID: 0, U: -1, V: -1, Path: []Point{p}}
	for hop := 0; hop < 2+next(6); hop++ {
		d := 1 + next(5)
		if next(2) == 0 {
			d = -d
		}
		switch next(3) {
		case 0:
			p = p.Add(d, 0, 0)
		case 1:
			p = p.Add(0, d, 0)
		default:
			p = p.Add(0, 0, d)
		}
		if p != w.Path[len(w.Path)-1] {
			w.Path = append(w.Path, p)
		}
	}
	if len(w.Path) < 2 {
		w.Path = append(w.Path, p.Add(1, 0, 0))
	}
	return w
}

// randomPlanarWire builds a monotone (non-self-overlapping) staircase wire
// confined to layer z.
func randomPlanarWire(seed int64, z int) Wire {
	s := uint64(seed)*2654435761 + 1
	next := func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
	p := Point{next(10), next(10), z}
	w := Wire{ID: 0, U: -1, V: -1, Path: []Point{p}}
	for hop := 0; hop < 2+next(6); hop++ {
		d := 1 + next(5)
		if hop%2 == 0 {
			p = p.Add(d, 0, 0)
		} else {
			p = p.Add(0, d, 0)
		}
		w.Path = append(w.Path, p)
	}
	return w
}
