package grid

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"mlvlsi/internal/obs"
)

// tiledOpts forces the tiled rung for the given worker count and budget.
func tiledOpts(workers, tileBytes int) CheckOptions {
	return CheckOptions{Workers: workers, TileBytes: tileBytes}
}

func TestTilingGeometryCoversBox(t *testing.T) {
	// A 65-wide, 33-tall, 2-deep box; 64 bytes per tile = 512 slots forces
	// several columns and rows (the halving settles on 9x9 tiles).
	wires := []Wire{
		wire(0, Point{0, 0, 1}, Point{64, 0, 1}),
		wire(1, Point{0, 32, 1}, Point{64, 32, 1}),
		wire(2, Point{0, 0, 0}, Point{0, 0, 1}),
	}
	box, _ := Wires(wires).measure()
	tl, _, ok := newTilingFromBox(box, 64)
	if !ok {
		t.Fatal("tiling refused")
	}
	if tl.NX < 2 || tl.NY < 2 {
		t.Fatalf("expected a multi-tile partition, got %dx%d", tl.NX, tl.NY)
	}
	if tl.cells()*8 > 64*8*8 { // 3·tw·th·d bits within 64 bytes... sanity only
		t.Fatalf("tile cells %d exceed budget", tl.cells())
	}
	// Every lattice point maps to a tile whose span contains it, and tile
	// spans partition the box exactly.
	covered := 0
	for tile := 0; tile < tl.Tiles(); tile++ {
		x0, x1, y0, y1 := tl.tileSpan(tile)
		if x0 > x1 || y0 > y1 {
			t.Fatalf("tile %d has empty span (%d..%d, %d..%d)", tile, x0, x1, y0, y1)
		}
		covered += (x1 - x0 + 1) * (y1 - y0 + 1)
		for _, pt := range [][2]int{{x0, y0}, {x1, y0}, {x0, y1}, {x1, y1}} {
			if got := tl.TileIndex(pt[0], pt[1]); got != tile {
				t.Fatalf("TileIndex(%d,%d) = %d, want %d", pt[0], pt[1], got, tile)
			}
		}
	}
	w := tl.Box.MaxX - tl.Box.MinX + 1
	h := tl.Box.MaxY - tl.Box.MinY + 1
	if covered != w*h {
		t.Fatalf("tile spans cover %d points, box has %d", covered, w*h)
	}
}

func TestWireTilesSpansRoute(t *testing.T) {
	wires := []Wire{
		wire(0, Point{0, 0, 1}, Point{64, 0, 1}),
		wire(1, Point{0, 8, 1}, Point{64, 8, 1}),
	}
	tl, ok := NewTiling(wires, 64, 1)
	if !ok {
		t.Fatal("tiling refused")
	}
	var tiles []int
	tl.WireTiles(&wires[0], func(tile int) { tiles = append(tiles, tile) })
	if len(tiles) != tl.NX {
		t.Fatalf("a full-width x-run should touch every column: got %d tiles, want %d", len(tiles), tl.NX)
	}
	seen := map[int]bool{}
	for _, tile := range tiles {
		if seen[tile] {
			t.Fatalf("tile %d visited twice", tile)
		}
		seen[tile] = true
	}
}

// TestVerifyTiledBorderConflict plants an overlap exactly across a tile
// seam and checks the reconciliation pass reports it with the parallel
// checker's attribution, while the counters prove the tiled rung engaged.
func TestVerifyTiledBorderConflict(t *testing.T) {
	// Long parallel x-runs; wires 0 and 1 overlap on x 20..40 of row y=4.
	wires := []Wire{
		wire(0, Point{0, 4, 1}, Point{64, 4, 1}),
		wire(1, Point{20, 4, 1}, Point{40, 4, 1}),
		wire(2, Point{0, 0, 1}, Point{64, 0, 1}),
		wire(3, Point{0, 8, 1}, Point{64, 8, 1}),
	}
	want := CheckParallel(wires, CheckOptions{}, 2)
	if len(want) == 0 {
		t.Fatal("expected an overlap violation")
	}
	ob := obs.New()
	opts := tiledOpts(2, 64*2) // 64 bytes per tile across 2 workers
	opts.Observer = ob
	got, err := Verify(nil, wires, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tiled %v != parallel %v", got, want)
	}
	m := ob.Snapshot()
	if m.Get(obs.TiledChecks) != 1 {
		t.Fatalf("tiled_checks = %d, want 1", m.Get(obs.TiledChecks))
	}
	tl, ok := NewTiling(wires, 64*2, 2)
	if !ok {
		t.Fatal("tiling refused")
	}
	if m.Get(obs.TilesChecked) != int64(tl.Tiles()) {
		t.Fatalf("tiles_checked = %d, want the full partition %d", m.Get(obs.TilesChecked), tl.Tiles())
	}
	if tl.NX < 2 {
		t.Fatalf("seam test needs multiple columns, got %d", tl.NX)
	}
	if m.Get(obs.BorderEdgesReconciled) == 0 {
		t.Fatal("full-width x-runs must produce border claims")
	}
	if m.Get(obs.TileBytesPeak) == 0 {
		t.Fatal("tile_bytes_peak gauge not set")
	}
}

// TestVerifyTiledFaultPlantedOnBorder plants a duplicate unit edge exactly
// on a tile border: the X-edge whose low endpoint is the last lattice
// column of tile (0,0), which the walk pass defers as a border claim from
// both wires — only the final reconciliation pass can see the conflict. The
// reconciled report must match the sharded checker down to the violation's
// location and attribution.
func TestVerifyTiledFaultPlantedOnBorder(t *testing.T) {
	wires := []Wire{
		wire(0, Point{0, 0, 1}, Point{64, 0, 1}),
		wire(1, Point{0, 8, 1}, Point{64, 8, 1}),
	}
	tl, ok := NewTiling(wires, 128, 1)
	if !ok || tl.NX < 2 {
		t.Fatalf("need a multi-column partition, got %dx%d", tl.NX, tl.NY)
	}
	_, x1, _, _ := tl.tileSpan(0)
	wires = append(wires, wire(2, Point{x1, 0, 1}, Point{x1 + 1, 0, 1}))
	want := CheckParallel(wires, CheckOptions{}, 2)
	if len(want) != 1 || want[0].Code != ReasonSharedEdge || want[0].Where != (Point{x1, 0, 1}) {
		t.Fatalf("parallel oracle: want one shared edge at x=%d, got %v", x1, want)
	}
	ob := obs.New()
	opts := tiledOpts(2, 128*2) // 128 bytes per tile: tl's geometry exactly
	opts.Observer = ob
	got, err := Verify(nil, wires, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tiled %v != parallel %v", got, want)
	}
	if got[0].EdgeAxis != AxisX || got[0].OtherID != 0 {
		t.Fatalf("border violation attribution: %+v", got[0])
	}
	if m := ob.Snapshot(); m.Get(obs.BorderEdgesReconciled) == 0 {
		t.Fatal("the planted edge never reached border reconciliation")
	}
}

// TestVerifyTiledGeometries drives the tiled rung through degenerate
// partitions — a single tile, a 2x2-ish grid, and one-lattice-thin columns
// — and requires exact parallel parity on a conflicted wire set in each.
func TestVerifyTiledGeometries(t *testing.T) {
	// A wide, short wire set with overlaps and a discipline violation.
	wires := []Wire{
		wire(0, Point{0, 0, 1}, Point{400, 0, 1}),
		wire(1, Point{100, 0, 1}, Point{120, 0, 1}), // overlap with 0
		wire(2, Point{0, 1, 1}, Point{400, 1, 1}),
		wire(3, Point{0, 2, 2}, Point{400, 2, 2}),   // x-run on even layer
		wire(4, Point{200, 0, 1}, Point{200, 2, 1}), // y-run crossing rows
		wire(5, Point{300, 0, 0}, Point{300, 0, 3}), // via run
	}
	opts := CheckOptions{Layers: 4, Discipline: true}
	want := CheckParallel(wires, opts, 3)
	if len(want) == 0 {
		t.Fatal("expected violations")
	}
	box, _ := Wires(wires).measure()
	cases := []struct {
		name      string
		tileBytes int
		wantNX    func(nx, ny int) bool
	}{
		{"one-tile", -1, func(nx, ny int) bool { return nx == 1 && ny == 1 }},
		{"grid", 160 * 3, func(nx, ny int) bool { return nx >= 2 }},
		{"thin", 9, func(nx, ny int) bool { return nx >= 100 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			per := defaultTileBytes
			if tc.tileBytes > 0 {
				per = tc.tileBytes / 3
			}
			tl, _, ok := newTilingFromBox(box, per)
			if !ok {
				t.Fatal("tiling refused")
			}
			if !tc.wantNX(tl.NX, tl.NY) {
				t.Fatalf("partition %dx%d (tile %dx%d) does not match the scenario",
					tl.NX, tl.NY, tl.TileW, tl.TileH)
			}
			for _, workers := range []int{1, 3} {
				run := opts
				run.Workers = workers
				run.TileBytes = tc.tileBytes
				got, err := Verify(nil, wires, run)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: tiled %v != parallel %v", workers, got, want)
				}
			}
		})
	}
}

func TestVerifyTiledMatchesParallelRandom(t *testing.T) {
	f := func(seed int64) bool {
		wires := legalWireSet(seed, 8)
		want := CheckParallel(wires, CheckOptions{}, 4)
		for _, tileBytes := range []int{-1, 16, 64} {
			got, err := Verify(nil, wires, tiledOpts(4, tileBytes))
			if err != nil || !reflect.DeepEqual(got, want) {
				t.Logf("tile=%d: tiled %v (err %v) != parallel %v", tileBytes, got, err, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestReverifyTiles exercises the incremental primitive: after a full
// check, mutate one wire into a conflict, mark the dirty tiles via
// WireTiles over the old and new routes, and re-verify only those. The
// TilesChecked counter must advance by exactly the dirty-tile count — the
// proof untouched tiles were not re-walked.
func TestReverifyTiles(t *testing.T) {
	wires := []Wire{
		wire(0, Point{0, 0, 1}, Point{64, 0, 1}),
		wire(1, Point{0, 4, 1}, Point{64, 4, 1}),
		wire(2, Point{0, 8, 1}, Point{64, 8, 1}),
		// Wire 3 is short, so its dirty set is a strict subset of the tiles.
		wire(3, Point{0, 12, 1}, Point{8, 12, 1}),
	}
	tl, ok := NewTiling(wires, 128, 1)
	if !ok {
		t.Fatal("tiling refused")
	}
	if tl.Tiles() < 4 {
		t.Fatalf("want a multi-tile partition, got %d tiles", tl.Tiles())
	}
	if vs, err := Verify(nil, wires, tiledOpts(1, 128)); err != nil || len(vs) != 0 {
		t.Fatalf("clean layout: %v %v", vs, err)
	}

	// Mutate wire 3 to overlap wire 1 on a short span.
	old := wires[3]
	wires[3] = wire(3, Point{10, 4, 1}, Point{14, 4, 1})
	dirtySet := map[int]bool{}
	for _, w := range []*Wire{&old, &wires[3]} {
		tl.WireTiles(w, func(tile int) { dirtySet[tile] = true })
	}
	var dirty []int
	for tile := range dirtySet {
		dirty = append(dirty, tile)
	}
	if len(dirty) == 0 || len(dirty) >= tl.Tiles() {
		t.Fatalf("dirty set %d of %d tiles is not a strict subset", len(dirty), tl.Tiles())
	}

	ob := obs.New()
	opts := tiledOpts(1, 128)
	opts.Observer = ob
	got, err := ReverifyTiles(nil, wires, tl, dirty, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := CheckParallel(wires, CheckOptions{}, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental %v != full %v", got, want)
	}
	m := ob.Snapshot()
	if m.Get(obs.TilesChecked) != int64(len(dirty)) {
		t.Fatalf("tiles_checked = %d, want exactly the %d dirty tiles",
			m.Get(obs.TilesChecked), len(dirty))
	}

	// A clean mutation elsewhere: re-verifying its tiles reports nothing.
	wires[3] = old
	dirty = dirty[:0]
	tl.WireTiles(&old, func(tile int) { dirty = append(dirty, tile) })
	if vs, err := ReverifyTiles(nil, wires, tl, dirty, tiledOpts(1, 128)); err != nil || len(vs) != 0 {
		t.Fatalf("clean re-verify: %v %v", vs, err)
	}
}

func TestReverifyTilesErrors(t *testing.T) {
	wires := []Wire{
		wire(0, Point{0, 0, 1}, Point{64, 0, 1}),
		wire(1, Point{0, 8, 1}, Point{64, 8, 1}),
	}
	tl, ok := NewTiling(wires, 128, 1)
	if !ok {
		t.Fatal("tiling refused")
	}
	// Geometry outgrowing the tiling's box must be rejected, not silently
	// dropped from the partition.
	grown := append(wires[:len(wires):len(wires)],
		wire(2, Point{0, 100, 1}, Point{5, 100, 1}))
	if _, err := ReverifyTiles(nil, grown, tl, []int{0}, CheckOptions{}); !errors.Is(err, ErrOutsideTiling) {
		t.Fatalf("outgrown wire set: err = %v, want ErrOutsideTiling", err)
	}
	if _, err := ReverifyTiles(nil, wires, tl, []int{tl.Tiles()}, CheckOptions{}); err == nil {
		t.Fatal("out-of-range dirty index accepted")
	}
	if _, err := ReverifyTiles(nil, wires, Tiling{}, []int{0}, CheckOptions{}); err == nil {
		t.Fatal("zero tiling accepted")
	}
	if vs, err := ReverifyTiles(nil, wires, tl, nil, CheckOptions{}); err != nil || vs != nil {
		t.Fatalf("empty dirty set: %v %v, want nil nil", vs, err)
	}
}

// TestVerifyTiledLadderFallThrough pins the ladder decision: a ceiling
// roomy enough for the dense working set must not engage the tiled rung.
func TestVerifyTiledLadderFallThrough(t *testing.T) {
	wires := []Wire{wire(0, Point{0, 0, 1}, Point{8, 0, 1})}
	ob := obs.New()
	opts := CheckOptions{Workers: 1, TileBytes: 1 << 20, Observer: ob}
	if vs, err := Verify(nil, wires, opts); err != nil || len(vs) != 0 {
		t.Fatalf("legal wire: %v %v", vs, err)
	}
	m := ob.Snapshot()
	if m.Get(obs.TiledChecks) != 0 {
		t.Fatal("roomy ceiling engaged the tiled rung")
	}
	if m.Get(obs.DenseChecks) != 1 {
		t.Fatalf("dense_checks = %d, want 1", m.Get(obs.DenseChecks))
	}
}
