package grid

// The tiled streaming verifier is the middle rung of the dense→tiled→map
// ladder (see CheckOptions.TileBytes). The dense bitset sizes its store by
// the full bounding box — 3·W·H·D unit-edge slots — which for
// Hypercube(20)-class layouts (area Θ(N²), Greenberg & Guan) either falls
// back to the slow map path or does not fit in RAM. Tiling bounds the
// working set by a *tile* instead: the box is partitioned into planar tiles
// (full Z depth) whose pooled bitsets fit a configurable budget, wires are
// streamed through the tiles their segments intersect (clipped at tile
// borders, never re-walked whole per tile), tiles are verified
// independently on the par pool, and unit edges straddling a tile seam are
// reconciled in a final pass so no overlap spanning a boundary is missed.
//
// Edge→tile assignment is total and order-free: every unit edge belongs to
// the tile containing its lower endpoint. An X-edge whose lower endpoint
// sits on its tile's last lattice column (and likewise a Y-edge on the last
// row) crosses into the neighboring tile; those are the border edges,
// collected as packed claims instead of bitset marks. Z-edges never cross a
// seam — tiles span the full depth. Interior conflicts are found by the
// per-tile pooled bitset exactly as in the dense checker; border conflicts
// by a hash map over the sorted claims, processed in global wire order so
// ownership attribution matches the serial checker's rule.
//
// The output contract is the parallel checker's: checkTiled produces
// CheckParallel's canonical violation set byte for byte, for every worker
// count and every tile geometry — the three-way differential tests pin
// tiled against both the dense and the map engines.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
)

// defaultTileBytes is the per-tile bitset budget used when TileBytes < 0
// forces the tiled rung without naming a ceiling: 1 MiB per tile keeps the
// working set cache-resident while the tile count stays small on layouts up
// to the mid hypercube sizes.
const defaultTileBytes = 1 << 20

// maxTiles bounds the partition size; a budget/box combination that would
// shatter the plane into more tiles than this (adversarially sparse
// geometry, sub-kilobyte ceilings over huge boxes) makes the tiled rung
// refuse, and the ladder falls back to the unbudgeted dense→map choice.
const maxTiles = 1 << 16

// stopNone marks a wire whose walk hits no layer-range or discipline
// violation; every real stop position is smaller.
const stopNone = int32(1<<31 - 1)

// ErrOutsideTiling is returned by ReverifyTiles when a wire's geometry
// leaves the tiling's bounding box: the partition no longer covers the wire
// set, so the caller must re-tile (NewTiling) and run a full check.
var ErrOutsideTiling = errors.New("grid: wire set extends outside the tiling's bounding box")

// Tiling is a spatial partition of a wire set's bounding box into NX×NY
// planar tiles of TileW×TileH lattice points (edge tiles may be smaller);
// tiles span the full Z depth, so vias never cross tile seams. Build one
// with NewTiling; the zero value is not a valid tiling.
type Tiling struct {
	Box          BoundingBox
	TileW, TileH int
	NX, NY       int
}

// NewTiling measures the wire set and partitions its bounding box so that
// one tile's occupancy bitset fits the per-tile share of tileBytes
// (tileBytes/workers with the fan-out resolved as in Verify; tileBytes <= 0
// selects the default per-tile budget). ok is false when the set is empty
// or the partition would be degenerate (see maxTiles) — the same admission
// rule Verify's tiled rung applies, so a NewTiling built from the same
// inputs reproduces that rung's geometry exactly.
func NewTiling(wires []Wire, tileBytes, workers int) (Tiling, bool) {
	box, _ := Wires(wires).measure()
	per := defaultTileBytes
	if tileBytes > 0 {
		per = tileBytes / par.Workers(workers)
	}
	tl, _, ok := newTilingFromBox(box, per)
	return tl, ok
}

// newTilingFromBox picks the tile dimensions for a measured box: start at
// the whole box and halve the larger planar side until the tile's bitset
// (3·tw·th·d slots) fits perTileBytes. It also derives the packed edge
// encoder border reconciliation uses. ok is false when the box is empty,
// coordinates cannot pack into 64 bits, the partition would exceed
// maxTiles, or even a 1×1 tile cannot fit the budget (a Z extent taller
// than the budget's bit count).
func newTilingFromBox(box BoundingBox, perTileBytes int) (Tiling, edgeEncoder, bool) {
	if box.Empty() {
		return Tiling{}, edgeEncoder{}, false
	}
	enc, ok := newEdgeEncoderFromBox(box)
	if !ok {
		return Tiling{}, edgeEncoder{}, false
	}
	w := box.MaxX - box.MinX + 1
	h := box.MaxY - box.MinY + 1
	d := box.MaxZ - box.MinZ + 1
	bits := 8
	if perTileBytes > 1 {
		bits = perTileBytes * 8
	}
	tw, th := w, h
	for !tileFits(tw, th, d, bits) && (tw > 1 || th > 1) {
		if tw >= th {
			tw = (tw + 1) / 2
		} else {
			th = (th + 1) / 2
		}
	}
	if !tileFits(tw, th, d, bits) {
		return Tiling{}, edgeEncoder{}, false
	}
	nx := (w + tw - 1) / tw
	ny := (h + th - 1) / th
	if nx > maxTiles || ny > maxTiles || nx*ny > maxTiles {
		return Tiling{}, edgeEncoder{}, false
	}
	return Tiling{Box: box, TileW: tw, TileH: th, NX: nx, NY: ny}, enc, true
}

// tileFits reports whether a tw×th×d tile's slot count 3·tw·th·d stays at
// or below limit, overflow-safe (the stepwise form newOccIndexer uses).
func tileFits(tw, th, d, limit int) bool {
	cells := 3
	for _, extent := range [...]int{tw, th, d} {
		if extent > limit/cells {
			return false
		}
		cells *= extent
	}
	return true
}

// Tiles returns the number of tiles in the partition.
func (t Tiling) Tiles() int { return t.NX * t.NY }

// TileIndex returns the tile holding the planar lattice point (x, y); the
// point must lie inside the tiling's box.
func (t Tiling) TileIndex(x, y int) int {
	return (y-t.Box.MinY)/t.TileH*t.NX + (x-t.Box.MinX)/t.TileW
}

// tileSpan returns the tile's inclusive planar lattice ranges.
func (t Tiling) tileSpan(tile int) (x0, x1, y0, y1 int) {
	tx, ty := tile%t.NX, tile/t.NX
	x0 = t.Box.MinX + tx*t.TileW
	x1 = minInt(x0+t.TileW-1, t.Box.MaxX)
	y0 = t.Box.MinY + ty*t.TileH
	y1 = minInt(y0+t.TileH-1, t.Box.MaxY)
	return
}

// cells returns one tile's unit-edge slot count. It is uniform across
// tiles — edge tiles waste the tail of the shared pooled bitset, which is
// what lets every tile reuse buffers of one size from the occ pool.
func (t Tiling) cells() int {
	return 3 * t.TileW * t.TileH * (t.Box.MaxZ - t.Box.MinZ + 1)
}

// indexer returns the occupancy indexer for one tile's sub-box.
func (t Tiling) indexer(tile int) occIndexer {
	x0, _, y0, _ := t.tileSpan(tile)
	return occIndexer{
		minX: x0, minY: y0, minZ: t.Box.MinZ,
		w: t.TileW, h: t.TileH, cells: t.cells(),
	}
}

// contains reports whether every path vertex lies inside the tiling's box.
func (t Tiling) contains(w *Wire) bool {
	for _, p := range w.Path {
		if p.X < t.Box.MinX || p.X > t.Box.MaxX ||
			p.Y < t.Box.MinY || p.Y > t.Box.MaxY ||
			p.Z < t.Box.MinZ || p.Z > t.Box.MaxZ {
			return false
		}
	}
	return true
}

// WireTiles visits (once each, unordered) the tiles holding at least one of
// the wire's unit edges. This is the dirty-set primitive for ReverifyTiles:
// a mutation protocol marks dirty every tile of the wire's old route and
// every tile of its new route, which guarantees any edge the mutation could
// conflict on lies in a dirty tile. Wires with malformed paths or geometry
// outside the box visit nothing.
func (t Tiling) WireTiles(w *Wire, visit func(tile int)) {
	if _, bad := w.structural(); bad || !t.contains(w) {
		return
	}
	seen := make(map[int]struct{}, 4)
	mark := func(tile int) {
		if _, dup := seen[tile]; !dup {
			seen[tile] = struct{}{}
			visit(tile)
		}
	}
	for i := 1; i < len(w.Path); i++ {
		a := w.Path[i-1]
		axis, lo, hi := hopRange(a, w.Path[i])
		end := hi - 1 // last edge's low coordinate
		switch axis {
		case AxisX:
			row := (a.Y - t.Box.MinY) / t.TileH * t.NX
			for c := (lo - t.Box.MinX) / t.TileW; c <= (end-t.Box.MinX)/t.TileW; c++ {
				mark(row + c)
			}
		case AxisY:
			col := (a.X - t.Box.MinX) / t.TileW
			for r := (lo - t.Box.MinY) / t.TileH; r <= (end-t.Box.MinY)/t.TileH; r++ {
				mark(r*t.NX + col)
			}
		default:
			mark(t.TileIndex(a.X, a.Y))
		}
	}
}

// hopRange decomposes a path hop into its axis and the ascending coordinate
// range [lo, hi] of its endpoints; the hop's unit edges have lower-endpoint
// coordinates lo..hi-1 and are walked in ascending order regardless of the
// hop's direction (Wire.UnitEdges' order). Callers have already rejected
// malformed hops, so exactly one delta is nonzero.
func hopRange(a, b Point) (Axis, int, int) {
	switch {
	case b.X != a.X:
		lo, hi := a.X, b.X
		if hi < lo {
			lo, hi = hi, lo
		}
		return AxisX, lo, hi
	case b.Y != a.Y:
		lo, hi := a.Y, b.Y
		if hi < lo {
			lo, hi = hi, lo
		}
		return AxisY, lo, hi
	default:
		lo, hi := a.Z, b.Z
		if hi < lo {
			lo, hi = hi, lo
		}
		return AxisZ, lo, hi
	}
}

// hopStop finds the hop's first layer-range or discipline violation without
// visiting its edges: planar verdicts are uniform along a hop (every edge
// shares the same Z), and a via run's only mid-hop failure is climbing past
// the top wiring layer, whose first violating edge follows from the
// endpoints. k is the violating edge's index in ascending walk order.
func hopStop(w *Wire, a Point, axis Axis, lo, hi int, opts *CheckOptions) (int, Violation, bool) {
	first := a
	switch axis {
	case AxisX:
		first.X = lo
	case AxisY:
		first.Y = lo
	default:
		first.Z = lo
	}
	if v, bad := edgeViolation(w, first, axis, opts); bad {
		return 0, v, true
	}
	if axis == AxisZ && opts.Layers > 0 && hi > opts.Layers {
		// The first edge was legal, so lo >= 0 and the run fails first at
		// the edge leaving the top layer: lower endpoint Z == Layers.
		v, _ := edgeViolation(w, Point{a.X, a.Y, opts.Layers}, AxisZ, opts)
		return opts.Layers - lo, v, true
	}
	return 0, Violation{}, false
}

// tileEdges walks w's unit edges clipped to one tile's lattice ranges, in
// global walk order, calling fn for every edge whose walk position is below
// stop. border reports a seam edge (an X-edge whose lower endpoint is on
// the tile's last column, or a Y-edge on its last row): its other endpoint
// lies in the neighboring tile, so it is claimed for reconciliation instead
// of marked in the tile bitset. The box's own last column and row never
// yield border edges — an edge's far endpoint would leave the bounding box.
// fn returning false aborts the walk.
func tileEdges(w *Wire, x0, x1, y0, y1 int, stop int32, fn func(low Point, axis Axis, seq int32, border bool) bool) {
	seq := int32(0)
	for i := 1; i < len(w.Path); i++ {
		a := w.Path[i-1]
		axis, lo, hi := hopRange(a, w.Path[i])
		cnt := hi - lo
		if int64(cnt) > int64(stop-seq) {
			cnt = int(stop - seq)
		}
		if cnt > 0 {
			end := lo + cnt - 1 // last walked edge's low coordinate
			switch axis {
			case AxisX:
				if a.Y >= y0 && a.Y <= y1 {
					for x := maxInt(lo, x0); x <= minInt(end, x1); x++ {
						if !fn(Point{x, a.Y, a.Z}, AxisX, seq+int32(x-lo), x == x1) {
							return
						}
					}
				}
			case AxisY:
				if a.X >= x0 && a.X <= x1 {
					for y := maxInt(lo, y0); y <= minInt(end, y1); y++ {
						if !fn(Point{a.X, y, a.Z}, AxisY, seq+int32(y-lo), y == y1) {
							return
						}
					}
				}
			default:
				if a.X >= x0 && a.X <= x1 && a.Y >= y0 && a.Y <= y1 {
					for z := lo; z < lo+cnt; z++ {
						if !fn(Point{a.X, a.Y, z}, AxisZ, seq+int32(z-lo), false) {
							return
						}
					}
				}
			}
		}
		seq += int32(hi - lo)
		if seq >= stop {
			return
		}
	}
}

// ReverifyTiles is the incremental primitive behind interactive editing: it
// re-checks only the tiles in dirty (indices into tl's partition,
// duplicates allowed), streaming every wire's clipped edges through those
// tiles but never materializing — or even visiting — the untouched tiles'
// occupancy. The obs.TilesChecked counter advances by exactly the number of
// distinct dirty tiles, which is what the incremental tests assert.
//
// The returned violations are those detectable within the dirty tiles:
// interior and border conflicts on their edges, plus the walk, terminal,
// and structural violations of wires intersecting them (a wire whose walk
// stops before its first edge intersects no tile and is reported only by a
// full check). Correctness requires the dirty set to cover every tile of
// each mutated wire's old and new routes — use Tiling.WireTiles — and the
// wires to stay inside tl.Box; geometry outside the box returns
// ErrOutsideTiling, the signal to re-tile and run a full Verify.
func ReverifyTiles(ctx context.Context, wires []Wire, tl Tiling, dirty []int, opts CheckOptions) ([]Violation, error) {
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}
	if len(wires) == 0 || len(dirty) == 0 {
		return nil, nil
	}
	if tl.TileW <= 0 || tl.TileH <= 0 || tl.NX <= 0 || tl.NY <= 0 || tl.Box.Empty() {
		return nil, fmt.Errorf("grid: ReverifyTiles on an invalid tiling %+v", tl)
	}
	enc, ok := newEdgeEncoderFromBox(tl.Box)
	if !ok {
		return nil, fmt.Errorf("grid: tiling box %+v cannot pack edge keys", tl.Box)
	}
	mask := make([]bool, tl.Tiles())
	for _, tile := range dirty {
		if tile < 0 || tile >= len(mask) {
			return nil, fmt.Errorf("grid: dirty tile %d outside partition of %d tiles", tile, len(mask))
		}
		mask[tile] = true
	}
	return checkTiled(ctx, wires, opts, tl, enc, par.Workers(opts.Workers), 0, mask)
}

// verifyBudgeted applies the TileBytes memory ceiling: it decides the rung
// of the dense→tiled→map ladder and runs the tiled rung when selected.
// handled is false when the ceiling admits the full dense working set
// (every shard's bitset together under TileBytes) or when tiling is
// infeasible — both fall back to the unbudgeted engines.
func verifyBudgeted(ctx context.Context, wires []Wire, opts CheckOptions) ([]Violation, error, bool) {
	w := par.Workers(opts.Workers)
	ms := opts.Span.Child("measure")
	box, total := parMeasure(wires, w)
	ms.End()
	if box.Empty() {
		return nil, nil, false
	}
	if opts.TileBytes > 0 {
		if ix, ok := newOccIndexer(box, opts.DenseLimit, total); ok {
			// Mirror verifyParallel's shard count: the dense working set is
			// one full-box bitset per shard.
			shards := 1
			if opts.Workers != 1 {
				dw := w
				if maxp := runtime.GOMAXPROCS(0); dw > maxp && total >= denseClampEdges {
					dw = maxp
				}
				shards = par.NumChunks(dw, len(wires))
			}
			if shards*ix.words()*8 <= opts.TileBytes {
				return nil, nil, false
			}
		}
	}
	perTile := defaultTileBytes
	if opts.TileBytes > 0 {
		perTile = opts.TileBytes / w
	}
	tl, enc, ok := newTilingFromBox(box, perTile)
	if !ok {
		return nil, nil, false
	}
	vs, err := checkTiled(ctx, wires, opts, tl, enc, w, total, nil)
	return vs, err, true
}

// tileBin is the output of the binning pass: per-tile wire lists in
// ascending wire order, each wire's walk-stop position, the violations
// found outside the occupancy walk (structural, first layer/discipline
// stop, terminals), and the edge total of the wires an incremental check
// re-walks.
type tileBin struct {
	tileWires  [][]int32
	stopSeq    []int32
	pre        []seqViolation
	dirtyEdges int64
}

// binWires routes every wire to the tiles its unit edges occupy, walking
// segments (path hops), not edges — O(vertices + tiles touched) per wire on
// the coordinator — and computes each wire's walk-stop position
// arithmetically via hopStop, so the per-edge checks never run here. mask
// non-nil applies ReverifyTiles' dirty-mode reporting rule: a wire's stop,
// terminal, and edge-total contributions count only when the wire touches a
// dirty tile (structural violations always count). ok is false when a wire
// leaves the tiling's box.
func binWires(wires []Wire, opts *CheckOptions, tl Tiling, mask []bool, cancel *canceler) (tileBin, bool) {
	bin := tileBin{
		tileWires: make([][]int32, tl.Tiles()),
		stopSeq:   make([]int32, len(wires)),
	}
	for i := range bin.stopSeq {
		bin.stopSeq[i] = stopNone
	}
	// seen[tile] holds wi+1 for the last wire routed there, deduplicating a
	// wire that re-enters a tile on a later hop without a per-wire set.
	seen := make([]int32, tl.Tiles())
	for wi := range wires {
		if cancel.hit(wi) {
			return bin, true
		}
		w := &wires[wi]
		if v, bad := w.structural(); bad {
			bin.pre = append(bin.pre, seqViolation{wire: int32(wi), seq: seqValidate, v: v})
			continue
		}
		if !tl.contains(w) {
			return bin, false
		}
		touched := mask == nil
		route := func(tile int) {
			if mask != nil && mask[tile] {
				touched = true
			}
			if seen[tile] != int32(wi)+1 {
				seen[tile] = int32(wi) + 1
				bin.tileWires[tile] = append(bin.tileWires[tile], int32(wi))
			}
		}
		var stopV Violation
		seq, stop := int32(0), stopNone
		edges := int64(0)
		for i := 1; i < len(w.Path); i++ {
			a := w.Path[i-1]
			axis, lo, hi := hopRange(a, w.Path[i])
			edges += int64(hi - lo)
			cnt := 0
			if stop == stopNone {
				cnt = hi - lo
				if k, v, bad := hopStop(w, a, axis, lo, hi, opts); bad {
					stop, stopV = seq+int32(k), v
					cnt = k
				}
			}
			if cnt > 0 {
				end := lo + cnt - 1 // last walked edge's low coordinate
				switch axis {
				case AxisX:
					row := (a.Y - tl.Box.MinY) / tl.TileH * tl.NX
					for c := (lo - tl.Box.MinX) / tl.TileW; c <= (end-tl.Box.MinX)/tl.TileW; c++ {
						route(row + c)
					}
				case AxisY:
					col := (a.X - tl.Box.MinX) / tl.TileW
					for r := (lo - tl.Box.MinY) / tl.TileH; r <= (end-tl.Box.MinY)/tl.TileH; r++ {
						route(r*tl.NX + col)
					}
				default:
					route(tl.TileIndex(a.X, a.Y))
				}
			}
			seq += int32(hi - lo)
		}
		bin.stopSeq[wi] = stop
		if mask == nil || touched {
			bin.dirtyEdges += edges
			if stop != stopNone {
				bin.pre = append(bin.pre, seqViolation{wire: int32(wi), seq: stop, v: stopV})
			}
			collectTerminals(w, int32(wi), opts.Nodes, &bin.pre)
		}
	}
	return bin, true
}

// tileResult is one walked tile's output: interior shared-edge violations
// (already owner-attributed by the per-tile replay) and the border claims
// awaiting cross-tile reconciliation.
type tileResult struct {
	violations []seqViolation
	claims     []claim
}

// walkTile verifies one tile: every listed wire's clipped edges are marked
// in the tile's pooled bitset (border edges become claims instead), and if
// any slot was hit twice the clipped walk replays in global wire order to
// attribute owners — the dense checker's contested/replay protocol scoped
// to the tile, valid because an interior edge's every claimant is in this
// tile's list.
func walkTile(wires []Wire, list []int32, tl Tiling, tile int, enc edgeEncoder, occ []uint64, stopSeq []int32, res *tileResult, cancel *canceler) {
	x0, x1, y0, y1 := tl.tileSpan(tile)
	ix := tl.indexer(tile)
	var contested []int
	for k, wi := range list {
		if cancel.hit(k) {
			return
		}
		w := &wires[wi]
		c := wi
		tileEdges(w, x0, x1, y0, y1, stopSeq[wi], func(low Point, axis Axis, seq int32, border bool) bool {
			if border {
				res.claims = append(res.claims, claim{key: enc.pack(low, axis), wire: c, seq: seq})
				return true
			}
			idx := ix.index(low, axis)
			word, mask := idx>>6, uint64(1)<<(idx&63)
			if occ[word]&mask != 0 {
				contested = append(contested, idx)
			} else {
				occ[word] |= mask
			}
			return true
		})
	}
	if len(contested) == 0 {
		return
	}
	targets := make(map[int]int, len(contested))
	for _, idx := range contested {
		targets[idx] = -1
	}
	for _, wi := range list {
		w := &wires[wi]
		c := wi
		tileEdges(w, x0, x1, y0, y1, stopSeq[wi], func(low Point, axis Axis, seq int32, border bool) bool {
			if border {
				return true
			}
			idx := ix.index(low, axis)
			if owner, hit := targets[idx]; hit {
				if owner < 0 {
					targets[idx] = w.ID
				} else {
					res.violations = append(res.violations, seqViolation{wire: c, seq: seq, v: Violation{
						WireID: w.ID, OtherID: owner, Where: low,
						Code: ReasonSharedEdge, EdgeAxis: axis,
					}})
				}
			}
			return true
		})
	}
}

// checkTiled runs the tiled verification protocol: a serial binning pass
// over path hops, an independent pooled-bitset walk per tile on the par
// pool, and a border-claim reconciliation on the coordinator, all flowing
// through canonicalize for byte-identical parity with the parallel checker.
// mask non-nil restricts the walk to the dirty tiles (ReverifyTiles); total
// is the full-mode unit-edge count from the measure pass.
func checkTiled(ctx context.Context, wires []Wire, opts CheckOptions, tl Tiling, enc edgeEncoder, workers, total int, mask []bool) ([]Violation, error) {
	ob := opts.observer()
	ob.Set(obs.WorkerCount, int64(workers))
	cancel := &canceler{ctx: ctx}

	bs := opts.Span.Child("bin")
	bin, ok := binWires(wires, &opts, tl, mask, cancel)
	bs.End()
	if !ok {
		return nil, ErrOutsideTiling
	}
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}

	checked := int64(tl.Tiles())
	if mask != nil {
		ob.Add(obs.UnitEdgesChecked, bin.dirtyEdges)
		checked = 0
		for _, dirty := range mask {
			if dirty {
				checked++
			}
		}
	} else {
		ob.Add(obs.UnitEdgesChecked, int64(total))
	}
	ob.Add(obs.TiledChecks, 1)
	ob.Add(obs.TilesChecked, checked)

	// Tiles to walk: the dirty ones in incremental mode, all of them on a
	// full check — minus tiles no wire touches, which are vacuously legal.
	var work []int32
	for t := range bin.tileWires {
		if (mask == nil || mask[t]) && len(bin.tileWires[t]) > 0 {
			work = append(work, int32(t))
		}
	}
	words := (tl.cells() + 63) / 64
	results := make([]tileResult, len(work))
	ws := opts.Span.Child("walk")
	par.ForEach(workers, len(work), func(i int) {
		if cancel.stop.Load() {
			return
		}
		buf := occGet(words)
		t := int(work[i])
		walkTile(wires, bin.tileWires[t], tl, t, enc, buf.bits, bin.stopSeq, &results[i], cancel)
		occPut(buf)
	})
	ws.End()
	if err := par.Canceled(ctx); err != nil {
		return nil, err
	}
	inflight := int64(workers)
	if int64(len(work)) < inflight {
		inflight = int64(len(work))
	}
	ob.Set(obs.TileBytesPeak, int64(words)*8*inflight)

	rs := opts.Span.Child("reconcile")
	all := bin.pre
	nclaims := 0
	for i := range results {
		all = append(all, results[i].violations...)
		nclaims += len(results[i].claims)
	}
	if nclaims > 0 {
		claims := make([]claim, 0, nclaims)
		for i := range results {
			claims = append(claims, results[i].claims...)
		}
		// Global wire order, then walk order: the first claimant of each
		// seam edge under this order owns it — Check's attribution rule.
		sort.Slice(claims, func(i, j int) bool {
			if claims[i].wire != claims[j].wire {
				return claims[i].wire < claims[j].wire
			}
			return claims[i].seq < claims[j].seq
		})
		owner := make(map[uint64]int32, nclaims)
		for _, c := range claims {
			if first, dup := owner[c.key]; dup {
				all = append(all, seqViolation{wire: c.wire, seq: c.seq, v: Violation{
					WireID: wires[c.wire].ID, OtherID: wires[first].ID,
					Where: enc.unpack(c.key),
					Code:  ReasonSharedEdge, EdgeAxis: Axis(c.key & 3),
				}})
			} else {
				owner[c.key] = c.wire
			}
		}
	}
	ob.Add(obs.BorderEdgesReconciled, int64(nclaims))
	rs.End()
	return canonicalize(wires, all), nil
}
