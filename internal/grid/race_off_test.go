//go:build !race

package grid

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
