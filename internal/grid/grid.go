// Package grid provides the geometric substrate for multilayer VLSI layouts:
// points and rectilinear wires in a 3-D grid, a legality verifier that checks
// edge-disjointness of wire paths, and bounding-box / length measurements.
//
// Coordinate convention: X and Y are the planar directions, Z is the layer
// index. The active layer (where network nodes live) is Z = 0; wiring layers
// are Z = 1..L. Under the direction discipline used throughout this module,
// X-runs (horizontal trunks) occupy odd wiring layers and Y-runs (vertical
// trunks) occupy even wiring layers, mirroring the Thompson model's
// one-layer-per-direction rule generalized to L layers.
package grid

import "fmt"

// Point is a lattice point in the 3-D layout grid.
type Point struct {
	X, Y, Z int
}

// Add returns p translated by (dx, dy, dz).
func (p Point) Add(dx, dy, dz int) Point {
	return Point{p.X + dx, p.Y + dy, p.Z + dz}
}

func (p Point) String() string {
	return fmt.Sprintf("(%d,%d,%d)", p.X, p.Y, p.Z)
}

// Axis identifies one of the three grid directions.
type Axis uint8

const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	}
	return "?"
}

// Wire is a rectilinear path through the grid realizing one network link.
// Path holds the polyline vertices; consecutive vertices must differ in
// exactly one coordinate. U and V are the endpoint node IDs of the link the
// wire realizes (U == V == -1 for auxiliary wires).
type Wire struct {
	ID   int
	U, V int
	Path []Point
}

// Validate checks that the path is a well-formed rectilinear polyline:
// at least two vertices and every hop axis-aligned with nonzero length.
func (w *Wire) Validate() error {
	v, bad := w.structural()
	if !bad {
		return nil
	}
	if v.Code == ReasonShortPath {
		return fmt.Errorf("wire %d: path has %d vertices, need at least 2", w.ID, len(w.Path))
	}
	i := int(v.Aux)
	return fmt.Errorf("wire %d: hop %d from %v to %v is not a straight axis-aligned segment", w.ID, i, w.Path[i-1], w.Path[i])
}

// Length returns the total geometric length of the wire, including vias
// (Z-direction runs).
func (w *Wire) Length() int {
	total := 0
	for i := 1; i < len(w.Path); i++ {
		total += absInt(w.Path[i].X-w.Path[i-1].X) +
			absInt(w.Path[i].Y-w.Path[i-1].Y) +
			absInt(w.Path[i].Z-w.Path[i-1].Z)
	}
	return total
}

// PlanarLength returns the wire length counting only X and Y runs, the
// quantity the paper calls "wire length" (vias are inter-layer connectors,
// not tracks).
func (w *Wire) PlanarLength() int {
	total := 0
	for i := 1; i < len(w.Path); i++ {
		total += absInt(w.Path[i].X-w.Path[i-1].X) + absInt(w.Path[i].Y-w.Path[i-1].Y)
	}
	return total
}

// Segments calls fn for every maximal straight segment of the wire with the
// segment's start point, axis, and (signed) length.
func (w *Wire) Segments(fn func(start Point, axis Axis, length int)) {
	for i := 1; i < len(w.Path); i++ {
		a, b := w.Path[i-1], w.Path[i]
		switch {
		case b.X != a.X:
			fn(a, AxisX, b.X-a.X)
		case b.Y != a.Y:
			fn(a, AxisY, b.Y-a.Y)
		case b.Z != a.Z:
			fn(a, AxisZ, b.Z-a.Z)
		}
	}
}

// UnitEdges calls fn for every unit grid edge traversed by the wire. Each
// edge is identified by its lower endpoint (the endpoint with the smaller
// coordinate on the edge's axis) and its axis. Returning false stops the walk.
//
//mlvlsi:hotpath
func (w *Wire) UnitEdges(fn func(low Point, axis Axis) bool) {
	for i := 1; i < len(w.Path); i++ {
		a, b := w.Path[i-1], w.Path[i]
		switch {
		case b.X != a.X:
			lo, hi := minInt(a.X, b.X), maxInt(a.X, b.X)
			for x := lo; x < hi; x++ {
				if !fn(Point{x, a.Y, a.Z}, AxisX) {
					return
				}
			}
		case b.Y != a.Y:
			lo, hi := minInt(a.Y, b.Y), maxInt(a.Y, b.Y)
			for y := lo; y < hi; y++ {
				if !fn(Point{a.X, y, a.Z}, AxisY) {
					return
				}
			}
		case b.Z != a.Z:
			lo, hi := minInt(a.Z, b.Z), maxInt(a.Z, b.Z)
			for z := lo; z < hi; z++ {
				if !fn(Point{a.X, a.Y, z}, AxisZ) {
					return
				}
			}
		}
	}
}

// Wires is a set of wires with aggregate measurements.
type Wires []Wire

// Bounds returns the smallest bounding box containing every path vertex of
// every wire in the set.
func (ws Wires) Bounds() BoundingBox {
	box, _ := ws.measure()
	return box
}

// measure walks every path vertex exactly once, returning the vertex
// bounding box together with the total unit-edge count (the sum of wire
// lengths). The checkers use the box to size the dense occupancy grid and
// the count to pre-size the sparse fallback's map, so neither needs a
// second pass over the geometry.
//
//mlvlsi:hotpath
func (ws Wires) measure() (BoundingBox, int) {
	box := NewBoundingBox()
	total := 0
	for i := range ws {
		path := ws[i].Path
		for j, p := range path {
			box.AddPoint(p)
			if j > 0 {
				q := path[j-1]
				total += absInt(p.X-q.X) + absInt(p.Y-q.Y) + absInt(p.Z-q.Z)
			}
		}
	}
	return box, total
}

// Rect is an axis-aligned rectangle on the active layer occupied by a node.
type Rect struct {
	X, Y int // lower-left corner
	W, H int // side lengths (in grid units)
}

// Contains reports whether planar point (x, y) lies inside the rectangle
// (inclusive of the boundary).
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && x <= r.X+r.W && y >= r.Y && y <= r.Y+r.H
}

// BoundingBox is the smallest upright box containing a set of geometry.
type BoundingBox struct {
	MinX, MinY, MinZ int
	MaxX, MaxY, MaxZ int
	empty            bool
}

// NewBoundingBox returns an empty bounding box.
func NewBoundingBox() BoundingBox {
	return BoundingBox{empty: true}
}

// AddPoint grows the box to include p.
func (b *BoundingBox) AddPoint(p Point) {
	if b.empty {
		b.MinX, b.MinY, b.MinZ = p.X, p.Y, p.Z
		b.MaxX, b.MaxY, b.MaxZ = p.X, p.Y, p.Z
		b.empty = false
		return
	}
	b.MinX = minInt(b.MinX, p.X)
	b.MinY = minInt(b.MinY, p.Y)
	b.MinZ = minInt(b.MinZ, p.Z)
	b.MaxX = maxInt(b.MaxX, p.X)
	b.MaxY = maxInt(b.MaxY, p.Y)
	b.MaxZ = maxInt(b.MaxZ, p.Z)
}

// AddRect grows the box to include r at layer z.
func (b *BoundingBox) AddRect(r Rect, z int) {
	b.AddPoint(Point{r.X, r.Y, z})
	b.AddPoint(Point{r.X + r.W, r.Y + r.H, z})
}

// Empty reports whether nothing has been added.
func (b *BoundingBox) Empty() bool { return b.empty }

// Width is the X extent of the box in grid units.
func (b *BoundingBox) Width() int {
	if b.empty {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height is the Y extent of the box in grid units.
func (b *BoundingBox) Height() int {
	if b.empty {
		return 0
	}
	return b.MaxY - b.MinY
}

// Area is the planar area of the box: the paper's layout-area measure
// (area of the smallest upright rectangle containing all nodes and wires).
func (b *BoundingBox) Area() int {
	return b.Width() * b.Height()
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
