package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlvlsi"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
	"mlvlsi/internal/resilience"
)

// canonicalRequest returns a small canonical build request and its key.
func canonicalRequest(t *testing.T, name string, params map[string]int, layers int) (mlvlsi.BuildRequest, string) {
	t.Helper()
	req := mlvlsi.BuildRequest{Family: mlvlsi.FamilySpec{Name: name, Params: params}, Layers: layers}
	canon, err := req.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	return canon, canon.Key()
}

// TestCacheLeaderCancellationDoesNotPoisonWaiters is the singleflight race
// the resilience PR fixes: the leader's request is canceled mid-build, and a
// waiter whose own context is live must not inherit that cancellation — it
// retries and becomes the new leader.
func TestCacheLeaderCancellationDoesNotPoisonWaiters(t *testing.T) {
	o := obs.New()
	c := NewCache(0, o)
	req, key := canonicalRequest(t, "hypercube", map[string]int{"n": 3}, 2)

	var builds atomic.Int32
	inBuild := make(chan struct{})
	build := func(ctx context.Context, r mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
		if builds.Add(1) == 1 {
			close(inBuild)
			<-ctx.Done()
			return nil, par.Canceled(ctx)
		}
		return mlvlsi.BuildSpecObserved(ctx, r, nil)
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.GetKeyed(leaderCtx, key, req, build)
		leaderDone <- err
	}()
	<-inBuild

	waiterDone := make(chan error, 1)
	go func() {
		res, _, err := c.GetKeyed(context.Background(), key, req, build)
		if err == nil && res == nil {
			err = errors.New("nil result without error")
		}
		waiterDone <- err
	}()
	// The inflight-waits counter ticking is the proof the waiter is parked on
	// the leader's entry before we cancel the leader.
	waitForCond(t, func() bool { return o.Snapshot().Get(obs.CacheInflightWaits) >= 1 })

	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("leader err = %v, want its own cancellation", err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("live waiter poisoned by leader cancellation: %v", err)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("builds = %d, want 2 (canceled leader + retried waiter)", n)
	}
}

// TestCachePanickingBuildDoesNotWedgeKey: a panic mid-build unblocks waiters
// with an error and leaves the key retryable instead of wedging it behind a
// never-ready entry.
func TestCachePanickingBuildDoesNotWedgeKey(t *testing.T) {
	c := NewCache(0, nil)
	req, key := canonicalRequest(t, "hypercube", map[string]int{"n": 3}, 2)
	var calls atomic.Int32
	build := func(ctx context.Context, r mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
		if calls.Add(1) == 1 {
			panic("engine bug")
		}
		return mlvlsi.BuildSpecObserved(ctx, r, nil)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate to the caller")
			}
		}()
		_, _, _ = c.GetKeyed(context.Background(), key, req, build)
	}()
	// The key must retry cleanly.
	res, out, err := c.GetKeyed(context.Background(), key, req, build)
	if err != nil || res == nil || out != Miss {
		t.Fatalf("retry after panic = %v/%v/%v, want a clean miss", res, out, err)
	}
}

// blockingServer returns a server whose builds park until release is closed,
// so tests can hold its one admission slot deterministically.
func blockingServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}, chan struct{}) {
	t.Helper()
	s := New(cfg)
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	s.buildFn = func(ctx context.Context, req mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, par.Canceled(ctx)
		}
		return mlvlsi.BuildSpecObserved(ctx, req, nil)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, release, entered
}

func TestServerShedsWithOverloadEnvelope(t *testing.T) {
	o := obs.New()
	_, ts, release, entered := blockingServer(t, Config{MaxConcurrent: 1, MaxQueue: -1, Obs: o})

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/build", "application/json",
			strings.NewReader(`{"family":{"name":"hypercube","params":{"n":4}},"layers":2}`))
		if err != nil {
			firstDone <- 0
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-entered // the slot is now held

	resp, err := http.Post(ts.URL+"/v1/build", "application/json",
		strings.NewReader(`{"family":{"name":"hypercube","params":{"n":5}},"layers":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(resilience.RetryAfterMillisHeader) == "" || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response missing retry-after headers: %v", resp.Header)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	e := body.Error
	if e.Kind != "overload" || e.Reason != "queue_full" || e.Status != 503 || e.RetryAfterMS < 1 {
		t.Fatalf("shed envelope = %+v, want kind overload reason queue_full", e)
	}
	if got := o.Snapshot().Get(obs.ShedQueueFull); got != 1 {
		t.Fatalf("shed_queue_full = %d, want 1", got)
	}

	close(release)
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("slot-holding build finished %d, want 200", status)
	}
}

func TestServerDegradedFallback(t *testing.T) {
	o := obs.New()
	s, ts, release, entered := blockingServer(t, Config{
		MaxConcurrent: 1, MaxQueue: -1, Degrade: true, Obs: o,
	})

	// Warm the coarse sibling (layers 2) through the real engine.
	coarse := `{"family":{"name":"hypercube","params":{"n":5}},"layers":2}`
	warmDone := make(chan struct{})
	go func() {
		resp, err := http.Post(ts.URL+"/v1/build", "application/json", strings.NewReader(coarse))
		if err == nil {
			resp.Body.Close()
		}
		close(warmDone)
	}()
	<-entered
	release <- struct{}{} // let exactly the warm build through
	<-warmDone
	_, coarseKey := canonicalRequest(t, "hypercube", map[string]int{"n": 5}, 2)
	if _, ok := s.Cache().Peek(coarseKey); !ok {
		t.Fatal("coarse sibling not cached after warm build")
	}

	// Hold the only slot with an unrelated build, then ask for the fine
	// variant: shed, but answered degraded from the coarse slot.
	holdDone := make(chan struct{})
	go func() {
		resp, err := http.Post(ts.URL+"/v1/build", "application/json",
			strings.NewReader(`{"family":{"name":"kary"},"layers":2}`))
		if err == nil {
			resp.Body.Close()
		}
		close(holdDone)
	}()
	<-entered

	resp, err := http.Post(ts.URL+"/v1/build", "application/json",
		strings.NewReader(`{"family":{"name":"hypercube","params":{"n":5}},"layers":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status = %d, want 200", resp.StatusCode)
	}
	var out buildResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	_, fineKey := canonicalRequest(t, "hypercube", map[string]int{"n": 5}, 4)
	if !out.Degraded || out.DegradedKey != coarseKey || out.Key != fineKey || out.Cache != "DEGRADED" {
		t.Fatalf("degraded body = %+v, want degraded from %s under requested key %s", out, coarseKey, fineKey)
	}
	if resp.Header.Get("X-Cache") != "DEGRADED" || resp.Header.Get("X-Degraded") != coarseKey {
		t.Fatalf("degraded headers = %v", resp.Header)
	}
	if got := o.Snapshot().Get(obs.DegradedServed); got != 1 {
		t.Fatalf("degraded_served = %d, want 1", got)
	}

	close(release)
	<-holdDone
}

// TestPanicRecoveryMiddleware drives a panicking fake engine through the
// full HTTP stack: 500 "internal" envelope, panics_recovered counts, the
// stack reaches the log, and the server keeps serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	o := obs.New()
	var log bytes.Buffer
	s := New(Config{Obs: o, Log: &log})
	s.buildFn = func(ctx context.Context, req mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
		panic("fake engine exploded")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 1; i <= 2; i++ { // twice: the panicked key must not wedge
		resp, err := http.Post(ts.URL+"/v1/build", "application/json",
			strings.NewReader(`{"family":{"name":"hypercube","params":{"n":4}},"layers":2}`))
		if err != nil {
			t.Fatalf("request %d after panic: %v", i, err)
		}
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic status = %d, want 500", resp.StatusCode)
		}
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body.Error.Kind != "internal" || !strings.Contains(body.Error.Message, "panic") {
			t.Fatalf("panic envelope = %+v, want kind internal mentioning the panic", body.Error)
		}
	}
	if got := o.Snapshot().Get(obs.PanicsRecovered); got != 2 {
		t.Fatalf("panics_recovered = %d, want 2", got)
	}
	if !strings.Contains(log.String(), "fake engine exploded") || !strings.Contains(log.String(), "goroutine") {
		t.Fatalf("panic log missing value or stack:\n%s", log.String())
	}
	// The server is still alive and serving unaffected routes.
	resp, err := http.Get(ts.URL + "/v1/families")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("families after panics = %v %v, want 200", resp, err)
	}
	resp.Body.Close()
}

func TestReadinessSplitsFromLiveness(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, readyResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body readyResponse
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	if status, body := get("/readyz"); status != http.StatusOK || !body.Ready {
		t.Fatalf("fresh /readyz = %d %+v, want 200 ready", status, body)
	}
	s.BeginDrain()
	status, body := get("/readyz")
	if status != http.StatusServiceUnavailable || body.Ready || !body.Draining {
		t.Fatalf("draining /readyz = %d %+v, want 503 draining", status, body)
	}
	// Liveness is unmoved by drain, on both spellings.
	for _, path := range []string{"/healthz", "/livez"} {
		if status, _ := get(path); status != http.StatusOK {
			t.Fatalf("draining %s = %d, want 200 (drain is not death)", path, status)
		}
	}
	// And new builds are shed with the draining reason.
	resp, err := http.Post(ts.URL+"/v1/build", "application/json",
		strings.NewReader(`{"family":{"name":"hypercube","params":{"n":4}},"layers":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Error.Reason != "draining" {
		t.Fatalf("draining build = %d %+v, want 503 reason draining", resp.StatusCode, eb.Error)
	}
}

// validateBuild is the sweep's response validation: a 200 must carry a
// parseable build body with a key — garbled or truncated bodies fail here,
// inside the client's retry loop.
func validateBuild(status int, body []byte) error {
	var out buildResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return err
	}
	if out.Key == "" {
		return errors.New("build response without key")
	}
	return nil
}

// TestChaosSweepConverges is the acceptance gate: for every fault class at a
// 20% injection rate, resilience.Client against the resilient server reaches
// at least 99% success; the admission queue never exceeds its bound (read
// back through the queue_max_depth gauge); and the server leaks no
// goroutines.
func TestChaosSweepConverges(t *testing.T) {
	before := runtime.NumGoroutine()
	o := obs.New()
	s := New(Config{MaxConcurrent: 2, MaxQueue: 4, Timeout: 2 * time.Second, Obs: o})
	ts := httptest.NewServer(s.Handler())

	bodies := [][]byte{
		[]byte(`{"family":{"name":"hypercube","params":{"n":4}},"layers":2}`),
		[]byte(`{"family":{"name":"hypercube","params":{"n":5}},"layers":4}`),
		[]byte(`{"family":{"name":"kary"},"layers":2}`),
		[]byte(`{"family":{"name":"butterfly"},"layers":2}`),
	}
	policy := resilience.Policy{
		MaxAttempts: 6,
		BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		BreakerThreshold: 10, BreakerCooldown: 20 * time.Millisecond,
	}

	const perClass = 120
	for _, f := range resilience.Faults() {
		chaos := resilience.NewChaos(resilience.ChaosConfig{
			Rates: map[resilience.Fault]float64{f: 0.20},
			Seed:  int64(f) + 1,
			Base:  ts.Client().Transport,
			Obs:   o,
		})
		client := resilience.NewClient(&http.Client{Transport: chaos}, policy, o)
		ok := 0
		for i := 0; i < perClass; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			resp, err := client.Post(ctx, ts.URL+"/v1/build", bodies[i%len(bodies)], validateBuild)
			cancel()
			if err == nil && resp.Status == http.StatusOK {
				ok++
			}
		}
		if pct := 100 * float64(ok) / perClass; pct < 99 {
			t.Errorf("fault %s at 20%%: %d/%d succeeded (%.1f%%), want >= 99%%", f, ok, perClass, pct)
		}
		if chaos.Injected()[f] == 0 {
			t.Errorf("fault %s: nothing injected at a 20%% rate over %d requests", f, perClass)
		}
	}

	// A concurrent burst with every class live at once: the shared client's
	// breaker and the server's queue under real contention.
	chaos := resilience.NewChaos(resilience.ChaosConfig{
		Rates: map[resilience.Fault]float64{
			resilience.FaultLatency: 0.05, resilience.Fault5xx: 0.05, resilience.FaultReset: 0.05,
			resilience.FaultTruncate: 0.05, resilience.FaultGarble: 0.05,
		},
		Seed: 99,
		Base: ts.Client().Transport,
		Obs:  o,
	})
	client := resilience.NewClient(&http.Client{Transport: chaos}, policy, o)
	const workers, perWorker = 4, 25
	var okCount atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				resp, err := client.Post(ctx, ts.URL+"/v1/build", bodies[(w+i)%len(bodies)], validateBuild)
				cancel()
				if err == nil && resp.Status == http.StatusOK {
					okCount.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if pct := 100 * float64(okCount.Load()) / (workers * perWorker); pct < 99 {
		t.Errorf("concurrent mixed-fault burst: %.1f%% success, want >= 99%%", pct)
	}

	snap := o.Snapshot()
	if got, bound := snap.Get(obs.QueueMaxDepth), int64(s.Queue().Bound()); got > bound {
		t.Errorf("queue_max_depth = %d exceeds configured bound %d", got, bound)
	}
	if snap.Get(obs.ChaosInjected) == 0 {
		t.Error("chaos_injected = 0 across the whole sweep")
	}

	// Tear down and prove nothing leaked: the goroutine count returns to
	// (about) where it started once connections and timers wind down.
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before sweep, %d after teardown — leak", before, runtime.NumGoroutine())
}

// waitForCond polls cond for up to two seconds.
func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
