package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"time"

	"mlvlsi"
	"mlvlsi/internal/grid"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
	"mlvlsi/internal/resilience"
	"mlvlsi/internal/stack"
)

// Config tunes the server. Every field has a serving-safe zero value.
type Config struct {
	// CacheBytes is the build cache's byte budget (Layout.MemBytes
	// accounting); <= 0 means unlimited retention.
	CacheBytes int64
	// MaxCells is the admission ceiling: every request's cell budget is
	// clamped to it (a request asking for more, or for no budget at all,
	// gets this one). 0 admits everything.
	MaxCells int
	// Workers clamps per-request build/verify fan-out; 0 leaves requests at
	// their own setting (which itself degrades to GOMAXPROCS).
	Workers int
	// VerifyMemBytes caps each request's verifier working set: requests
	// asking for more (or for no cap at all) are clamped to it, engaging
	// the tiled streaming rung when the dense bit-grid would not fit (see
	// Options.VerifyMemBytes). 0 leaves requests at their own setting.
	VerifyMemBytes int
	// Timeout is the per-request deadline, layered over the client's own
	// disconnect cancellation. 0 means no server-side deadline.
	Timeout time.Duration
	// MaxConcurrent bounds builds/verifies running at once; <= 0 means the
	// available parallelism (see resilience.QueueConfig).
	MaxConcurrent int
	// MaxQueue bounds admission waiters beyond the concurrent slots; 0 means
	// 4x the resolved MaxConcurrent, negative means no waiting at all.
	MaxQueue int
	// FamilyLimits caps concurrent builds per family name under the global
	// MaxConcurrent; absent families are uncapped.
	FamilyLimits map[string]int
	// Degrade enables graceful degradation: a build shed by admission (or
	// rejected by the cell budget) is answered with a retained coarser layout
	// of the same network when one exists, marked degraded, instead of the
	// error.
	Degrade bool
	// Obs receives cache counters and build/verify spans. Nil gets a
	// fresh sink-less observer so /metricsz always has counters to report.
	Obs *obs.Observer
	// Log receives recovered-panic stacks; nil means os.Stderr.
	Log io.Writer
}

// Server serves build/verify/render requests over the registry engines with
// a content-addressed cache and bounded admission in front. Create one with
// New; it is an http.Handler factory (Handler) plus a graceful Serve loop.
type Server struct {
	cfg   Config
	obs   *obs.Observer
	cache *Cache
	queue *resilience.Queue
	mux   *http.ServeMux
	log   io.Writer
	// buildFn runs one cache miss; tests substitute failing or panicking
	// engines here.
	buildFn BuildFunc
	// scratches pools arena build scratches, one slot per admitted
	// concurrent build (sized by Config.Workers): cache misses draw a warm
	// scratch and return it after the build. Take never blocks — an empty
	// pool hands out a fresh scratch — and extras beyond the pool size are
	// dropped, so a burst can only cost allocations, never progress.
	scratches chan *mlvlsi.BuildScratch
}

// New creates a server with its cache, admission queue, and routes installed.
func New(cfg Config) *Server {
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	if cfg.Log == nil {
		cfg.Log = os.Stderr
	}
	s := &Server{
		cfg:   cfg,
		obs:   cfg.Obs,
		cache: NewCache(cfg.CacheBytes, cfg.Obs),
		queue: resilience.NewQueue(resilience.QueueConfig{
			MaxConcurrent: cfg.MaxConcurrent,
			MaxQueue:      cfg.MaxQueue,
			FamilyLimits:  cfg.FamilyLimits,
			Obs:           cfg.Obs,
		}),
		mux:       http.NewServeMux(),
		log:       cfg.Log,
		scratches: make(chan *mlvlsi.BuildScratch, par.Workers(cfg.Workers)),
	}
	s.buildFn = func(ctx context.Context, req mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
		scratch := s.takeScratch()
		defer s.putScratch(scratch)
		return mlvlsi.BuildSpecWith(ctx, req, s.obs, scratch)
	}
	s.mux.HandleFunc("/v1/build", s.handleBuild)
	s.mux.HandleFunc("/v1/build_batch", s.handleBuildBatch)
	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	s.mux.HandleFunc("/v1/svg", s.handleSVG)
	s.mux.HandleFunc("/v1/families", s.handleFamilies)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/livez", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/metricsz", s.handleMetrics)
	return s
}

// Handler returns the server's route table wrapped in the panic-recovery
// middleware: a handler panic becomes a 500 "internal" envelope (when no
// response has started), a panics_recovered count, and a logged stack —
// never a torn-down server.
func (s *Server) Handler() http.Handler { return s.recovered(s.mux) }

// recovered is the outermost middleware. http.ErrAbortHandler passes through
// (it is net/http's own control flow for aborting a response).
func (s *Server) recovered(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rw := &startedWriter{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.obs.Add(obs.PanicsRecovered, 1)
			fmt.Fprintf(s.log, "serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			if !rw.started {
				writeJSON(rw, http.StatusInternalServerError, errorBody{Error: errorInfo{
					Status: http.StatusInternalServerError, Kind: "internal",
					Message: fmt.Sprintf("panic: %v", v),
				}})
			}
		}()
		h.ServeHTTP(rw, r)
	})
}

// startedWriter tracks whether the response has started, so the recovery
// middleware knows if a clean error envelope is still possible.
type startedWriter struct {
	http.ResponseWriter
	started bool
}

func (w *startedWriter) WriteHeader(code int) {
	w.started = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *startedWriter) Write(p []byte) (int, error) {
	w.started = true
	return w.ResponseWriter.Write(p)
}

// Cache exposes the build cache (tests and the replay driver read its
// occupancy).
func (s *Server) Cache() *Cache { return s.cache }

// Queue exposes the admission queue (tests assert its bounds; layoutd reads
// drain state).
func (s *Server) Queue() *resilience.Queue { return s.queue }

// BeginDrain flips the server into drain mode: readiness goes false and
// every new build is shed with ReasonDraining, while in-flight work and
// already-queued waiters complete normally. Callers flip this on SIGTERM,
// give the fronting balancer a beat to observe /readyz, then cancel Serve's
// context for the graceful shutdown.
func (s *Server) BeginDrain() { s.queue.SetDraining(true) }

// Serve accepts connections on ln until ctx is done, then shuts down
// gracefully (in-flight requests get five seconds to drain). A nil ctx
// serves until the listener closes. The accept loop runs on a goroutine
// whose lifetime net/http owns — Shutdown joins it — which is why the
// repolint goroutine analyzer admits it (see internal/analyze).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if ctx == nil {
		return serveResult(<-errc)
	}
	select {
	case err := <-errc:
		return serveResult(err)
	case <-ctx.Done():
		// Stop admitting new builds before tearing down connections, so
		// requests racing the shutdown get a typed shed instead of a reset.
		s.BeginDrain()
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := hs.Shutdown(shctx)
		<-errc // always http.ErrServerClosed after Shutdown
		return err
	}
}

// ListenAndServe binds addr and serves until ctx is done. The ready
// callback, when non-nil, receives the bound address before serving starts
// (addr ":0" binds an ephemeral port).
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	return s.Serve(ctx, ln)
}

// serveResult normalizes http.Server's sentinel: a closed listener is a
// clean exit, not an error.
func serveResult(err error) error {
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// The error envelope. Every failure leaves the server as one JSON shape
// with a stable kind and the typed error's fields, so clients switch on
// kind/status instead of parsing prose:
//
//	{"error":{"status":400,"kind":"param","message":"...","family":"kary","param":"k"}}
//
// Mapping: *ParamError and *SideError → 400 param, *BudgetError → 413
// budget, Violation → 422 violation, *OverloadError → 429/503 overload
// (with reason and retry_after_ms), *BreakerOpenError → 503 overload,
// *StatusError → 502 upstream, *PanicError → 500 internal (explicitly,
// so the catch-all below stays for truly unknown errors), cancellation/
// deadline → 504 canceled, malformed requests → 400 request, anything
// else → 500 internal. The envelope analyzer (internal/analyze) fails the
// lint if a typed error is ever defined without a case here, and the
// audit in envelope_test.go proves the catch-all unreachable for the
// engines' typed rejections.
type errorInfo struct {
	Status       int    `json:"status"`
	Kind         string `json:"kind"`
	Message      string `json:"message"`
	Family       string `json:"family,omitempty"`
	Param        string `json:"param,omitempty"`
	Cells        int    `json:"cells,omitempty"`
	Budget       int    `json:"budget,omitempty"`
	Reason       string `json:"reason,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

type errorBody struct {
	Error errorInfo `json:"error"`
}

// envelope maps an error onto the wire envelope.
func envelope(err error) errorInfo {
	var pe *mlvlsi.ParamError
	var be *mlvlsi.BudgetError
	var se *stack.SideError
	var vio mlvlsi.Violation
	var oe *resilience.OverloadError
	var boe *resilience.BreakerOpenError
	var ste *resilience.StatusError
	var pa *mlvlsi.PanicError
	switch {
	case errors.As(err, &pe):
		return errorInfo{Status: http.StatusBadRequest, Kind: "param",
			Message: pe.Error(), Family: pe.Family, Param: pe.Param}
	case errors.As(err, &se):
		// The stacked engines convert SideError to ParamError at the API
		// boundary (stackErr); this case keeps a raw one equally typed.
		return errorInfo{Status: http.StatusBadRequest, Kind: "param",
			Message: se.Error(), Family: se.Name, Param: "NodeSide"}
	case errors.As(err, &be):
		return errorInfo{Status: http.StatusRequestEntityTooLarge, Kind: "budget",
			Message: be.Error(), Family: be.Name, Cells: be.Cells, Budget: be.Budget}
	case errors.As(err, &vio):
		// An illegal layout surfacing as an error (e.g. a joined
		// VerifyFolded result) is a rejected input, not a server fault.
		return errorInfo{Status: http.StatusUnprocessableEntity, Kind: "violation",
			Message: vio.Error()}
	case errors.As(err, &oe):
		return errorInfo{Status: oe.Status(), Kind: "overload", Message: oe.Error(),
			Reason: oe.Reason.String(), RetryAfterMS: retryAfterMS(oe.RetryAfter)}
	case errors.As(err, &boe):
		return errorInfo{Status: http.StatusServiceUnavailable, Kind: "overload",
			Message: boe.Error(), Reason: "breaker_open", RetryAfterMS: retryAfterMS(boe.RetryAfter)}
	case errors.As(err, &ste):
		// Client-side resilience errors can only reach an envelope through
		// a proxying deployment; 502 keeps the upstream status visible.
		return errorInfo{Status: http.StatusBadGateway, Kind: "upstream", Message: ste.Error()}
	case errors.As(err, &pa):
		return errorInfo{Status: http.StatusInternalServerError, Kind: "internal", Message: pa.Error()}
	case errors.Is(err, grid.ErrOutsideTiling):
		// A stale incremental re-verify (the wire set outgrew its tiling
		// partition) is a conflicting client precondition, not a server
		// fault: the client re-tiles and retries with a full verify.
		return errorInfo{Status: http.StatusConflict, Kind: "stale_tiling", Message: err.Error()}
	case errors.Is(err, mlvlsi.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return errorInfo{Status: http.StatusGatewayTimeout, Kind: "canceled", Message: err.Error()}
	}
	return errorInfo{Status: http.StatusInternalServerError, Kind: "internal", Message: err.Error()}
}

// retryAfterMS rounds a shed's wait hint up to whole milliseconds, flooring
// at one so an "overload" envelope always carries a usable hint even before
// the queue's service-time estimate has warmed up.
func retryAfterMS(d time.Duration) int64 {
	ms := (d + time.Millisecond - 1).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

func writeError(w http.ResponseWriter, err error) {
	info := envelope(err)
	if info.RetryAfterMS > 0 {
		// Standard Retry-After is whole seconds, too coarse for millisecond
		// sheds, so the precise hint rides a custom header the resilience
		// client prefers.
		w.Header().Set("Retry-After", strconv.FormatInt(info.RetryAfterMS/1000, 10))
		w.Header().Set(resilience.RetryAfterMillisHeader, strconv.FormatInt(info.RetryAfterMS, 10))
	}
	writeJSON(w, info.Status, errorBody{Error: info})
}

// badRequest reports a malformed request (undecodable body, wrong method)
// without consulting the typed mapping.
func badRequest(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: errorInfo{
		Status: status, Kind: "request", Message: fmt.Sprintf(format, args...),
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	// Encoding errors past WriteHeader can only be client disconnects;
	// nothing useful to do with them.
	_ = enc.Encode(v)
}

// requestContext layers the server's deadline over the client's disconnect
// cancellation.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(ctx, s.cfg.Timeout)
	}
	return context.WithCancel(ctx)
}

// takeScratch draws a warm scratch from the pool, or makes a fresh one when
// every pooled scratch is in use — builds never wait on scratch
// availability.
func (s *Server) takeScratch() *mlvlsi.BuildScratch {
	select {
	case sc := <-s.scratches:
		return sc
	default:
		return mlvlsi.NewBuildScratch()
	}
}

// putScratch returns a scratch for reuse, dropping it when the pool is
// already full (the burst that created it has passed).
func (s *Server) putScratch(sc *mlvlsi.BuildScratch) {
	select {
	case s.scratches <- sc:
	default:
	}
}

// build runs one request through the cache under its precomputed key.
// Admission happens inside the miss path: cache hits and in-flight waits
// never occupy a queue slot, only the request that actually runs an engine
// does.
func (s *Server) build(ctx context.Context, key string, req mlvlsi.BuildRequest) (*Result, Outcome, error) {
	return s.cache.GetKeyed(ctx, key, req, func(ctx context.Context, req mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
		release, err := s.queue.Acquire(ctx, req.Family.Name)
		if err != nil {
			return nil, err
		}
		defer release()
		return s.buildFn(ctx, req)
	})
}

// buildResponse is the /v1/build success body. Degraded marks a response
// answered with a retained coarser layout (DegradedKey's slot) because the
// requested build was shed; Key always remains the key the client asked for.
type buildResponse struct {
	Key         string       `json:"key"`
	Cache       string       `json:"cache"`
	Stats       mlvlsi.Stats `json:"stats"`
	MemBytes    int64        `json:"mem_bytes"`
	Degraded    bool         `json:"degraded,omitempty"`
	DegradedKey string       `json:"degraded_key,omitempty"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	req, key, ok := s.decode(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, out, err := s.build(ctx, key, req)
	if err != nil {
		if res, dkey, ok := s.degraded(req, err); ok {
			s.obs.Add(obs.DegradedServed, 1)
			w.Header().Set("X-Cache", "DEGRADED")
			w.Header().Set("X-Degraded", dkey)
			writeJSON(w, http.StatusOK, buildResponse{
				Key:         key,
				Cache:       "DEGRADED",
				Stats:       res.Stats,
				MemBytes:    res.MemBytes,
				Degraded:    true,
				DegradedKey: dkey,
			})
			return
		}
		writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", out.String())
	writeJSON(w, http.StatusOK, buildResponse{
		Key:      key,
		Cache:    out.String(),
		Stats:    res.Stats,
		MemBytes: res.MemBytes,
	})
}

// maxBatchItems bounds one /v1/build_batch request; bigger sweeps should be
// split so admission and deadlines see work at request granularity.
const maxBatchItems = 1024

// batchRequest is the /v1/build_batch request body.
type batchRequest struct {
	Requests []mlvlsi.BuildRequest `json:"requests"`
}

// batchItem is one /v1/build_batch item outcome: either the buildResponse
// fields or an error envelope, mirroring what /v1/build would have answered
// for the same request — batching changes amortization, never semantics.
type batchItem struct {
	Key      string       `json:"key,omitempty"`
	Cache    string       `json:"cache,omitempty"`
	Stats    mlvlsi.Stats `json:"stats,omitempty"`
	MemBytes int64        `json:"mem_bytes,omitempty"`
	Error    *errorInfo   `json:"error,omitempty"`
}

// batchResponse is the /v1/build_batch success body; Results aligns with
// the request's Requests slice index for index.
type batchResponse struct {
	Results []batchItem `json:"results"`
}

// handleBuildBatch runs many builds in one request, sharing the batch's
// deadline. Each item goes through the same path as /v1/build — canonical
// key, cache with singleflight, admission on the miss, pooled scratch — and
// fails independently: one bad item yields one error envelope in its result
// slot, never a failed batch. Identical items therefore collapse onto one
// engine run, and distinct cache-miss items reuse the pool's warm scratches
// back to back.
func (s *Server) handleBuildBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		badRequest(w, http.StatusMethodNotAllowed, "%s needs POST with a JSON {\"requests\": [...]} body", r.URL.Path)
		return
	}
	var breq batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		badRequest(w, http.StatusBadRequest, "decoding batch request: %v", err)
		return
	}
	if len(breq.Requests) == 0 {
		badRequest(w, http.StatusBadRequest, "batch has no requests")
		return
	}
	if len(breq.Requests) > maxBatchItems {
		badRequest(w, http.StatusBadRequest, "batch has %d requests, limit is %d", len(breq.Requests), maxBatchItems)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	span := s.obs.StartSpan("batch")
	span.SetAttr("items", int64(len(breq.Requests)))
	defer span.End()
	resp := batchResponse{Results: make([]batchItem, len(breq.Requests))}
	for i, req := range breq.Requests {
		resp.Results[i] = s.batchOne(ctx, req)
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchOne runs one batch item, containing its failures — including panics,
// which for a single request the recovery middleware would map to a 500 —
// to the item's own error envelope.
func (s *Server) batchOne(ctx context.Context, req mlvlsi.BuildRequest) (item batchItem) {
	defer func() {
		if v := recover(); v != nil {
			s.obs.Add(obs.PanicsRecovered, 1)
			fmt.Fprintf(s.log, "serve: panic in batch item: %v\n%s", v, debug.Stack())
			item = batchItem{Error: &errorInfo{
				Status: http.StatusInternalServerError, Kind: "internal",
				Message: fmt.Sprintf("panic: %v", v),
			}}
		}
	}()
	canon, err := req.Canonical()
	if err != nil {
		info := envelope(err)
		return batchItem{Error: &info}
	}
	key := canon.Key()
	res, out, err := s.build(ctx, key, s.admit(canon))
	if err != nil {
		info := envelope(err)
		return batchItem{Key: key, Error: &info}
	}
	return batchItem{Key: key, Cache: out.String(), Stats: res.Stats, MemBytes: res.MemBytes}
}

// degraded decides whether a failed build can be answered with a retained
// coarser sibling: enabled by Config.Degrade, only for overload sheds and
// cell-budget rejections (never for bad parameters or cancellation), and
// only when a candidate is already in cache — degradation never builds.
func (s *Server) degraded(req mlvlsi.BuildRequest, err error) (*Result, string, bool) {
	if !s.cfg.Degrade {
		return nil, "", false
	}
	var oe *resilience.OverloadError
	var be *mlvlsi.BudgetError
	if !errors.As(err, &oe) && !errors.As(err, &be) {
		return nil, "", false
	}
	for _, cand := range degradedCandidates(req) {
		if res, ok := s.cache.Peek(cand.Key()); ok {
			return res, cand.Key(), true
		}
	}
	return nil, "", false
}

// degradedCandidates lists coarser variants of req, nearest first: halved
// layer counts down to two, then the default geometry (no node-side or
// folded-rows overrides). Same family and parameters throughout — a degraded
// answer is always the same network, laid out coarser.
func degradedCandidates(req mlvlsi.BuildRequest) []mlvlsi.BuildRequest {
	key := req.Key()
	var out []mlvlsi.BuildRequest
	push := func(cand mlvlsi.BuildRequest) {
		if cand.Key() == key {
			return
		}
		for _, prev := range out {
			if prev.Key() == cand.Key() {
				return
			}
		}
		out = append(out, cand)
	}
	for layers := req.Layers / 2; layers >= 2; layers /= 2 {
		cand := req
		cand.Layers = layers
		push(cand)
	}
	base := req
	base.Layers = 2
	base.NodeSide = 0
	base.FoldedRows = false
	push(base)
	return out
}

// verifyResponse is the /v1/verify success body. Violations carry the
// verifier's formatted findings; Legal is their absence.
type verifyResponse struct {
	Key        string   `json:"key"`
	Cache      string   `json:"cache"`
	Legal      bool     `json:"legal"`
	Violations []string `json:"violations,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	req, key, ok := s.decode(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, out, err := s.build(ctx, key, req)
	if err != nil {
		writeError(w, err)
		return
	}
	// Verification is engine work too: it takes an admission slot even when
	// the layout itself was a cache hit.
	release, err := s.queue.Acquire(ctx, req.Family.Name)
	if err != nil {
		writeError(w, err)
		return
	}
	o := req.Options()
	o.Context = ctx
	o.Observer = s.obs
	vs, err := mlvlsi.VerifyLayout(res.Layout, o)
	release()
	if err != nil {
		writeError(w, err)
		return
	}
	resp := verifyResponse{Key: key, Cache: out.String(), Legal: len(vs) == 0}
	for _, v := range vs {
		resp.Violations = append(resp.Violations, v.Error())
	}
	w.Header().Set("X-Cache", out.String())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSVG(w http.ResponseWriter, r *http.Request) {
	req, key, ok := s.decode(w, r)
	if !ok {
		return
	}
	scale := 4
	if v := r.URL.Query().Get("scale"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 64 {
			badRequest(w, http.StatusBadRequest, "scale %q is not an integer in [1, 64]", v)
			return
		}
		scale = n
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, out, err := s.build(ctx, key, req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", out.String())
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(mlvlsi.RenderSVG(res.Layout, scale)))
}

func (s *Server) handleFamilies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		badRequest(w, http.StatusMethodNotAllowed, "%s is GET-only", r.URL.Path)
		return
	}
	writeJSON(w, http.StatusOK, mlvlsi.Families())
}

// handleHealth is liveness (/healthz and /livez): the process is up and the
// handler chain works. It stays 200 through drain — a draining server is
// alive, just not ready.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// readyResponse is the /readyz body; the status code carries the verdict
// (200 ready, 503 not), the body says why.
type readyResponse struct {
	Ready      bool `json:"ready"`
	Draining   bool `json:"draining"`
	Saturated  bool `json:"saturated"`
	QueueDepth int  `json:"queue_depth"`
	QueueBound int  `json:"queue_bound"`
}

// handleReady is readiness: whether this server should receive new traffic.
// It flips false while draining for shutdown and while the admission queue
// sits at its bound (new builds would only be shed).
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := readyResponse{
		Draining:   s.queue.Draining(),
		Saturated:  s.queue.Saturated(),
		QueueDepth: s.queue.Depth(),
		QueueBound: s.queue.Bound(),
	}
	resp.Ready = !resp.Draining && !resp.Saturated
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		badRequest(w, http.StatusMethodNotAllowed, "%s is GET-only", r.URL.Path)
		return
	}
	m := s.obs.Snapshot()
	counters := make(map[string]int64, obs.NumCounters)
	for c := obs.Counter(0); int(c) < obs.NumCounters; c++ {
		counters[c.String()] = m.Get(c)
	}
	writeJSON(w, http.StatusOK, counters)
}

// decode reads, canonicalizes, and admission-clamps a request, returning it
// with its content key (computed once here; the handlers reuse it for the
// cache lookup and the response).
func (s *Server) decode(w http.ResponseWriter, r *http.Request) (mlvlsi.BuildRequest, string, bool) {
	if r.Method != http.MethodPost {
		badRequest(w, http.StatusMethodNotAllowed, "%s needs POST with a JSON BuildRequest body", r.URL.Path)
		return mlvlsi.BuildRequest{}, "", false
	}
	var req mlvlsi.BuildRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		badRequest(w, http.StatusBadRequest, "decoding BuildRequest: %v", err)
		return mlvlsi.BuildRequest{}, "", false
	}
	canon, err := req.Canonical()
	if err != nil {
		writeError(w, err)
		return mlvlsi.BuildRequest{}, "", false
	}
	return s.admit(canon), canon.Key(), true
}

// admit applies the server's admission clamps: a request never runs wider
// than Config.Workers nor bigger than Config.MaxCells, whatever it asked
// for. Clamped fields are execution knobs, so the content key is unchanged.
func (s *Server) admit(req mlvlsi.BuildRequest) mlvlsi.BuildRequest {
	if s.cfg.Workers > 0 && (req.Workers == 0 || req.Workers > s.cfg.Workers) {
		req.Workers = s.cfg.Workers
	}
	if s.cfg.MaxCells > 0 && (req.MaxCells == 0 || req.MaxCells > s.cfg.MaxCells) {
		req.MaxCells = s.cfg.MaxCells
	}
	if s.cfg.VerifyMemBytes > 0 && (req.VerifyMemBytes <= 0 || req.VerifyMemBytes > s.cfg.VerifyMemBytes) {
		req.VerifyMemBytes = s.cfg.VerifyMemBytes
	}
	return req
}
