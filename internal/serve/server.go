package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"mlvlsi"
	"mlvlsi/internal/obs"
)

// Config tunes the server. Every field has a serving-safe zero value.
type Config struct {
	// CacheBytes is the build cache's byte budget (Layout.MemBytes
	// accounting); <= 0 means unlimited retention.
	CacheBytes int64
	// MaxCells is the admission ceiling: every request's cell budget is
	// clamped to it (a request asking for more, or for no budget at all,
	// gets this one). 0 admits everything.
	MaxCells int
	// Workers clamps per-request build/verify fan-out; 0 leaves requests at
	// their own setting (which itself degrades to GOMAXPROCS).
	Workers int
	// Timeout is the per-request deadline, layered over the client's own
	// disconnect cancellation. 0 means no server-side deadline.
	Timeout time.Duration
	// Obs receives cache counters and build/verify spans. Nil gets a
	// fresh sink-less observer so /metricsz always has counters to report.
	Obs *obs.Observer
}

// Server serves build/verify/render requests over the registry engines with
// a content-addressed cache in front. Create one with New; it is an
// http.Handler factory (Handler) plus a graceful Serve loop.
type Server struct {
	cfg   Config
	obs   *obs.Observer
	cache *Cache
	mux   *http.ServeMux
}

// New creates a server with its cache and routes installed.
func New(cfg Config) *Server {
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := &Server{
		cfg:   cfg,
		obs:   cfg.Obs,
		cache: NewCache(cfg.CacheBytes, cfg.Obs),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/build", s.handleBuild)
	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	s.mux.HandleFunc("/v1/svg", s.handleSVG)
	s.mux.HandleFunc("/v1/families", s.handleFamilies)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/metricsz", s.handleMetrics)
	return s
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the build cache (tests and the replay driver read its
// occupancy).
func (s *Server) Cache() *Cache { return s.cache }

// Serve accepts connections on ln until ctx is done, then shuts down
// gracefully (in-flight requests get five seconds to drain). A nil ctx
// serves until the listener closes. The accept loop runs on a goroutine
// whose lifetime net/http owns — Shutdown joins it — which is why the
// repolint goroutine analyzer admits it (see internal/analyze).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if ctx == nil {
		return serveResult(<-errc)
	}
	select {
	case err := <-errc:
		return serveResult(err)
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := hs.Shutdown(shctx)
		<-errc // always http.ErrServerClosed after Shutdown
		return err
	}
}

// ListenAndServe binds addr and serves until ctx is done. The ready
// callback, when non-nil, receives the bound address before serving starts
// (addr ":0" binds an ephemeral port).
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	return s.Serve(ctx, ln)
}

// serveResult normalizes http.Server's sentinel: a closed listener is a
// clean exit, not an error.
func serveResult(err error) error {
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// The error envelope. Every failure leaves the server as one JSON shape
// with a stable kind and the typed error's fields, so clients switch on
// kind/status instead of parsing prose:
//
//	{"error":{"status":400,"kind":"param","message":"...","family":"kary","param":"k"}}
//
// Mapping: *ParamError → 400 param, *BudgetError → 413 budget,
// cancellation/deadline → 504 canceled, malformed requests → 400 request,
// anything else → 500 internal (which the envelope audit in
// envelope_test.go proves unreachable for the engines' typed rejections).
type errorInfo struct {
	Status  int    `json:"status"`
	Kind    string `json:"kind"`
	Message string `json:"message"`
	Family  string `json:"family,omitempty"`
	Param   string `json:"param,omitempty"`
	Cells   int    `json:"cells,omitempty"`
	Budget  int    `json:"budget,omitempty"`
}

type errorBody struct {
	Error errorInfo `json:"error"`
}

// envelope maps an error onto the wire envelope.
func envelope(err error) errorInfo {
	var pe *mlvlsi.ParamError
	var be *mlvlsi.BudgetError
	switch {
	case errors.As(err, &pe):
		return errorInfo{Status: http.StatusBadRequest, Kind: "param",
			Message: pe.Error(), Family: pe.Family, Param: pe.Param}
	case errors.As(err, &be):
		return errorInfo{Status: http.StatusRequestEntityTooLarge, Kind: "budget",
			Message: be.Error(), Family: be.Name, Cells: be.Cells, Budget: be.Budget}
	case errors.Is(err, mlvlsi.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return errorInfo{Status: http.StatusGatewayTimeout, Kind: "canceled", Message: err.Error()}
	}
	return errorInfo{Status: http.StatusInternalServerError, Kind: "internal", Message: err.Error()}
}

func writeError(w http.ResponseWriter, err error) {
	info := envelope(err)
	writeJSON(w, info.Status, errorBody{Error: info})
}

// badRequest reports a malformed request (undecodable body, wrong method)
// without consulting the typed mapping.
func badRequest(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: errorInfo{
		Status: status, Kind: "request", Message: fmt.Sprintf(format, args...),
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	// Encoding errors past WriteHeader can only be client disconnects;
	// nothing useful to do with them.
	_ = enc.Encode(v)
}

// requestContext layers the server's deadline over the client's disconnect
// cancellation.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(ctx, s.cfg.Timeout)
	}
	return context.WithCancel(ctx)
}

// build runs one request through the cache under its precomputed key.
func (s *Server) build(ctx context.Context, key string, req mlvlsi.BuildRequest) (*Result, Outcome, error) {
	return s.cache.GetKeyed(ctx, key, req, func(ctx context.Context, req mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
		return mlvlsi.BuildSpecObserved(ctx, req, s.obs)
	})
}

// buildResponse is the /v1/build success body.
type buildResponse struct {
	Key      string       `json:"key"`
	Cache    string       `json:"cache"`
	Stats    mlvlsi.Stats `json:"stats"`
	MemBytes int64        `json:"mem_bytes"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	req, key, ok := s.decode(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, out, err := s.build(ctx, key, req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", out.String())
	writeJSON(w, http.StatusOK, buildResponse{
		Key:      key,
		Cache:    out.String(),
		Stats:    res.Stats,
		MemBytes: res.MemBytes,
	})
}

// verifyResponse is the /v1/verify success body. Violations carry the
// verifier's formatted findings; Legal is their absence.
type verifyResponse struct {
	Key        string   `json:"key"`
	Cache      string   `json:"cache"`
	Legal      bool     `json:"legal"`
	Violations []string `json:"violations,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	req, key, ok := s.decode(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, out, err := s.build(ctx, key, req)
	if err != nil {
		writeError(w, err)
		return
	}
	o := req.Options()
	o.Context = ctx
	o.Observer = s.obs
	vs, err := mlvlsi.VerifyLayout(res.Layout, o)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := verifyResponse{Key: key, Cache: out.String(), Legal: len(vs) == 0}
	for _, v := range vs {
		resp.Violations = append(resp.Violations, v.Error())
	}
	w.Header().Set("X-Cache", out.String())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSVG(w http.ResponseWriter, r *http.Request) {
	req, key, ok := s.decode(w, r)
	if !ok {
		return
	}
	scale := 4
	if v := r.URL.Query().Get("scale"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 64 {
			badRequest(w, http.StatusBadRequest, "scale %q is not an integer in [1, 64]", v)
			return
		}
		scale = n
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, out, err := s.build(ctx, key, req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", out.String())
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(mlvlsi.RenderSVG(res.Layout, scale)))
}

func (s *Server) handleFamilies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		badRequest(w, http.StatusMethodNotAllowed, "%s is GET-only", r.URL.Path)
		return
	}
	writeJSON(w, http.StatusOK, mlvlsi.Families())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		badRequest(w, http.StatusMethodNotAllowed, "%s is GET-only", r.URL.Path)
		return
	}
	m := s.obs.Snapshot()
	counters := make(map[string]int64, obs.NumCounters)
	for c := obs.Counter(0); int(c) < obs.NumCounters; c++ {
		counters[c.String()] = m.Get(c)
	}
	writeJSON(w, http.StatusOK, counters)
}

// decode reads, canonicalizes, and admission-clamps a request, returning it
// with its content key (computed once here; the handlers reuse it for the
// cache lookup and the response).
func (s *Server) decode(w http.ResponseWriter, r *http.Request) (mlvlsi.BuildRequest, string, bool) {
	if r.Method != http.MethodPost {
		badRequest(w, http.StatusMethodNotAllowed, "%s needs POST with a JSON BuildRequest body", r.URL.Path)
		return mlvlsi.BuildRequest{}, "", false
	}
	var req mlvlsi.BuildRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		badRequest(w, http.StatusBadRequest, "decoding BuildRequest: %v", err)
		return mlvlsi.BuildRequest{}, "", false
	}
	canon, err := req.Canonical()
	if err != nil {
		writeError(w, err)
		return mlvlsi.BuildRequest{}, "", false
	}
	return s.admit(canon), canon.Key(), true
}

// admit applies the server's admission clamps: a request never runs wider
// than Config.Workers nor bigger than Config.MaxCells, whatever it asked
// for. Clamped fields are execution knobs, so the content key is unchanged.
func (s *Server) admit(req mlvlsi.BuildRequest) mlvlsi.BuildRequest {
	if s.cfg.Workers > 0 && (req.Workers == 0 || req.Workers > s.cfg.Workers) {
		req.Workers = s.cfg.Workers
	}
	if s.cfg.MaxCells > 0 && (req.MaxCells == 0 || req.MaxCells > s.cfg.MaxCells) {
		req.MaxCells = s.cfg.MaxCells
	}
	return req
}
