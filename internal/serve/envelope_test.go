package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"mlvlsi"
)

// These tests are the typed-error audit the envelope depends on: every
// engine behind the registry — the core single-network builder, the
// cluster composer, the stacking combinators, and the generic group
// builder — must surface *ParamError, *BudgetError, and ErrCanceled
// through BuildSpec with their types intact, including through additional
// %w wrap layers a caller may add. If any engine path flattened a typed
// error with %v, the server would answer 500 internal instead of the
// contract's 400/413/504, and these tests would catch it at the envelope.

// engineFamilies picks one registry family per engine.
var engineFamilies = []struct {
	engine string
	spec   mlvlsi.FamilySpec
	layers int
}{
	{"core", mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": 6}}, 4},
	{"cluster", mlvlsi.FamilySpec{Name: "clusterc", Params: map[string]int{"k": 4, "n": 2, "c": 4}}, 4},
	{"stack", mlvlsi.FamilySpec{Name: "butterfly", Params: map[string]int{"m": 4}}, 4},
	{"group", mlvlsi.FamilySpec{Name: "star", Params: map[string]int{"n": 5}}, 2},
}

func TestParamErrorSurvivesEveryEngine(t *testing.T) {
	for _, tc := range engineFamilies {
		t.Run(tc.engine, func(t *testing.T) {
			spec := mlvlsi.FamilySpec{Name: tc.spec.Name, Params: map[string]int{"nonsense": 1}}
			_, err := mlvlsi.BuildSpec(nil, mlvlsi.BuildRequest{Family: spec, Layers: tc.layers})
			var pe *mlvlsi.ParamError
			if !errors.As(err, &pe) {
				t.Fatalf("unknown param error is not a *ParamError: %v", err)
			}
			if pe.Family != tc.spec.Name || pe.Param != "nonsense" {
				t.Errorf("ParamError fields = %q/%q, want %q/nonsense", pe.Family, pe.Param, tc.spec.Name)
			}
			// A caller wrapping the error must not hide it from the envelope.
			wrapped := fmt.Errorf("request failed: %w", fmt.Errorf("retry 1: %w", err))
			if info := envelope(wrapped); info.Status != http.StatusBadRequest || info.Kind != "param" {
				t.Errorf("wrapped ParamError envelope = %+v, want 400 param", info)
			}
		})
	}
}

func TestBudgetErrorSurvivesEveryEngine(t *testing.T) {
	for _, tc := range engineFamilies {
		t.Run(tc.engine, func(t *testing.T) {
			req := mlvlsi.BuildRequest{Family: tc.spec, Layers: tc.layers, MaxCells: 1}
			_, err := mlvlsi.BuildSpec(nil, req)
			var be *mlvlsi.BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("over-budget build error is not a *BudgetError: %v", err)
			}
			if be.Budget != 1 || be.Cells <= 1 {
				t.Errorf("BudgetError fields = cells %d budget %d, want cells > budget 1", be.Cells, be.Budget)
			}
			wrapped := fmt.Errorf("serve: %w", err)
			if info := envelope(wrapped); info.Status != http.StatusRequestEntityTooLarge || info.Kind != "budget" {
				t.Errorf("wrapped BudgetError envelope = %+v, want 413 budget", info)
			}
		})
	}
}

func TestCancellationSurvivesEveryEngine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range engineFamilies {
		t.Run(tc.engine, func(t *testing.T) {
			req := mlvlsi.BuildRequest{Family: tc.spec, Layers: tc.layers}
			_, err := mlvlsi.BuildSpec(ctx, req)
			if !errors.Is(err, mlvlsi.ErrCanceled) {
				t.Fatalf("pre-canceled build error is not ErrCanceled: %v", err)
			}
			wrapped := fmt.Errorf("serve: %w", err)
			if info := envelope(wrapped); info.Status != http.StatusGatewayTimeout || info.Kind != "canceled" {
				t.Errorf("wrapped cancellation envelope = %+v, want 504 canceled", info)
			}
		})
	}
}

// TestEnvelopeInternalFallback pins the catch-all: an untyped error maps to
// 500 internal, never to one of the typed kinds.
func TestEnvelopeInternalFallback(t *testing.T) {
	info := envelope(errors.New("disk on fire"))
	if info.Status != http.StatusInternalServerError || info.Kind != "internal" {
		t.Fatalf("envelope = %+v, want 500 internal", info)
	}
}
