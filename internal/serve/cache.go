// Package serve is the layout-as-a-service layer: a content-addressed build
// cache and an HTTP/JSON server over the registry engines, the front door
// the earlier PRs built toward (typed ParamErrors, cancellation and MaxCells
// admission, the fast verifier, the zero-overhead observer).
//
// The constructions are pure functions of the canonical request
// (mlvlsi.BuildRequest.Key), so identical requests are served from memory:
// concurrent misses collapse onto one build (hand-rolled singleflight),
// completed layouts are retained LRU under a byte budget
// (Layout.MemBytes accounting), and every cache event flows through the
// internal/obs counters so -trace and /metricsz see hits, misses,
// evictions, in-flight waits, and retained bytes.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"mlvlsi"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
	"mlvlsi/internal/resilience"
)

// Outcome classifies how a cache lookup was satisfied.
type Outcome uint8

const (
	// Miss: this lookup ran the build (exactly one per singleflight group).
	Miss Outcome = iota
	// Hit: answered from a completed cached layout, no build ran.
	Hit
	// Inflight: an identical build was already running; this lookup waited
	// for its result instead of building again.
	Inflight
)

// String returns the outcome in X-Cache header casing.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "HIT"
	case Inflight:
		return "INFLIGHT"
	}
	return "MISS"
}

// BuildFunc runs one cache miss. It must honor ctx and return either a
// layout or an error; the cache never retains errors, so a failed build is
// retried by the next request for the same key.
type BuildFunc func(ctx context.Context, req mlvlsi.BuildRequest) (*mlvlsi.Layout, error)

// Result is a completed build as the cache retains it: the layout plus the
// derived values every response needs. Stats and MemBytes walk all wires
// (O(total wire length)), so they are computed once when the build lands
// rather than on every hit — on a big layout that walk costs more than the
// whole HTTP round trip.
type Result struct {
	Layout   *mlvlsi.Layout
	Stats    mlvlsi.Stats
	MemBytes int64
}

// entry is one cache slot. ready is closed once res/err are final; res and
// err are written exactly once, before the close, and never after, so
// readers that observed the close may read them without the cache lock.
// elem is the entry's LRU position — nil while the build is in flight and
// again after eviction (eviction never invalidates handed-out results:
// *Layout is immutable by convention, holders just keep it alive).
type entry struct {
	key   string
	ready chan struct{}
	res   *Result
	err   error
	elem  *list.Element
}

// Cache is a content-addressed layout cache: singleflight-deduplicated
// misses, LRU eviction under a byte budget, counters through internal/obs.
// The zero value is not usable; create one with NewCache. All methods are
// safe for concurrent use.
type Cache struct {
	budget int64
	obs    *obs.Observer

	mu      sync.Mutex
	used    int64
	entries map[string]*entry
	lru     *list.List // front = most recently used; element values are *entry
}

// NewCache creates a cache retaining at most budget bytes of completed
// layouts (MemBytes accounting); budget <= 0 means unlimited. Counters
// accumulate on o, which may be nil (disabled, the usual obs contract).
func NewCache(budget int64, o *obs.Observer) *Cache {
	return &Cache{
		budget:  budget,
		obs:     o,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
}

// Get returns the result for req's content key, building it with build on a
// miss. Concurrent callers with the same key collapse onto one build: the
// first caller runs build, the rest wait on its result (or their own ctx).
// A build error is returned to the leader and every waiter, then forgotten —
// the next request retries. ctx may be nil (no cancellation while waiting).
func (c *Cache) Get(ctx context.Context, req mlvlsi.BuildRequest, build BuildFunc) (*Result, Outcome, error) {
	return c.GetKeyed(ctx, req.Key(), req, build)
}

// GetKeyed is Get for callers that already hold req's content key (the
// server computes it once per request and reuses it in the response);
// passing a key that is not req.Key() silently poisons the cache, so only
// ever pass the canonical one.
func (c *Cache) GetKeyed(ctx context.Context, key string, req mlvlsi.BuildRequest, build BuildFunc) (*Result, Outcome, error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			break
		}
		select {
		case <-e.ready:
			// Completed entries in the map are always successes (finish
			// removes failures before closing ready), so this is a hit.
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			c.obs.Add(obs.CacheHits, 1)
			return e.res, Hit, nil
		default:
		}
		c.mu.Unlock()
		c.obs.Add(obs.CacheInflightWaits, 1)
		if err := waitReady(ctx, e.ready); err != nil {
			return nil, Inflight, err
		}
		if leaderScoped(e.err) && par.Canceled(ctx) == nil {
			// The leader failed for a reason scoped to its own request — its
			// context was canceled, or its deadline could not cover the
			// admission wait — which says nothing about this waiter's build.
			// finish already removed the entry, so loop: this waiter re-enters
			// the lookup and typically becomes the new leader.
			continue
		}
		return e.res, Inflight, e.err
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.obs.Add(obs.CacheMisses, 1)
	completed := false
	defer func() {
		if completed {
			return
		}
		// build panicked. Fail the entry anyway so waiters unblock and the
		// key retries, then let the panic continue up to the server's
		// recovery middleware; without this, the in-flight entry would hang
		// every future request for the key.
		e.err = fmt.Errorf("serve: build panicked for key %s", e.key)
		c.finish(e)
		close(e.ready)
	}()
	lay, err := build(ctx, req)
	completed = true
	if err != nil {
		e.err = err
	} else {
		// The derived values are computed here, outside the lock and once
		// per build, so hits and waiters read them for free.
		e.res = &Result{Layout: lay, Stats: lay.Stats(), MemBytes: lay.MemBytes()}
	}
	c.finish(e)
	close(e.ready)
	return e.res, Miss, e.err
}

// leaderScoped reports whether a singleflight leader's error is specific to
// the leader's own request rather than to the build: cancellation of the
// leader's context, or a deadline-infeasibility shed computed against the
// leader's deadline. Waiters whose own contexts are still live must not
// inherit such failures.
func leaderScoped(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, par.ErrCanceled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var oe *resilience.OverloadError
	return errors.As(err, &oe) && oe.Reason == resilience.ReasonDeadline
}

// Peek returns the completed result for key if one is retained, bumping its
// LRU recency; it never waits on an in-flight build and never builds. The
// degraded-serving path uses it to look for a coarser sibling of a request
// that admission shed.
func (c *Cache) Peek(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	select {
	case <-e.ready:
	default:
		return nil, false
	}
	if e.err != nil || e.elem == nil {
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	return e.res, true
}

// waitReady blocks until ready closes or ctx (which may be nil) is done.
func waitReady(ctx context.Context, ready <-chan struct{}) error {
	if ctx == nil {
		<-ready
		return nil
	}
	select {
	case <-ready:
		return nil
	case <-ctx.Done():
		return par.Canceled(ctx)
	}
}

// finish publishes a completed build under the lock: failures leave the map
// (so the key retries), successes join the LRU and the byte accounting, and
// the cache evicts from the cold end until it is back under budget. It runs
// before e.ready closes, so no reader ever sees a success missing from the
// LRU or a failure still occupying its key.
func (c *Cache) finish(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.err != nil {
		delete(c.entries, e.key)
		return
	}
	c.used += e.res.MemBytes
	e.elem = c.lru.PushFront(e)
	if c.budget > 0 {
		for c.used > c.budget && c.lru.Len() > 0 {
			oldest := c.lru.Back().Value.(*entry)
			c.lru.Remove(oldest.elem)
			oldest.elem = nil
			delete(c.entries, oldest.key)
			c.used -= oldest.res.MemBytes
			c.obs.Add(obs.CacheEvictions, 1)
		}
	}
	c.obs.Set(obs.CacheBytes, c.used)
}

// Len and UsedBytes report the current retained state (completed entries
// only; in-flight builds are not counted).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func (c *Cache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
