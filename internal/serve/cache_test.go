package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mlvlsi"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
)

// hyperReq names a hypercube build; n selects the content key.
func hyperReq(n int) mlvlsi.BuildRequest {
	return mlvlsi.BuildRequest{
		Family: mlvlsi.FamilySpec{Name: "hypercube", Params: map[string]int{"n": n}},
		Layers: 2,
	}
}

// realBuild is the production build path without observation.
func realBuild(ctx context.Context, req mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
	return mlvlsi.BuildSpec(ctx, req)
}

func counters(o *obs.Observer) (hits, misses, evicts, waits int64) {
	m := o.Snapshot()
	return m.Get(obs.CacheHits), m.Get(obs.CacheMisses), m.Get(obs.CacheEvictions), m.Get(obs.CacheInflightWaits)
}

func TestCacheHitReturnsSameLayout(t *testing.T) {
	o := obs.New()
	c := NewCache(0, o)
	first, out, err := c.Get(nil, hyperReq(4), realBuild)
	if err != nil || out != Miss {
		t.Fatalf("first Get = outcome %v err %v, want Miss nil", out, err)
	}
	second, out, err := c.Get(nil, hyperReq(4), realBuild)
	if err != nil || out != Hit {
		t.Fatalf("second Get = outcome %v err %v, want Hit nil", out, err)
	}
	if first != second || first.Layout != second.Layout {
		t.Fatalf("hit returned a different result")
	}
	if first.MemBytes != first.Layout.MemBytes() || first.Stats != first.Layout.Stats() {
		t.Fatalf("cached derived values diverge from the layout's own")
	}
	if hits, misses, _, _ := counters(o); hits != 1 || misses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1 and 1", hits, misses)
	}
	if c.UsedBytes() != first.MemBytes {
		t.Fatalf("UsedBytes = %d, want MemBytes %d", c.UsedBytes(), first.MemBytes)
	}
}

// TestCacheSingleflight piles concurrent identical requests onto a cold key
// and asserts exactly one build ran: the obs counters record one miss and
// len-1 in-flight waits, and every caller gets the one layout.
func TestCacheSingleflight(t *testing.T) {
	const callers = 8
	o := obs.New()
	c := NewCache(0, o)
	var builds int64
	var mu sync.Mutex
	build := func(ctx context.Context, req mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		// A slow build holds the singleflight window open so every other
		// caller lands in it.
		time.Sleep(100 * time.Millisecond)
		return realBuild(ctx, req)
	}
	results := make([]*Result, callers)
	par.Chunks(callers, callers, func(shard, lo, hi int) {
		for i := lo; i < hi; i++ {
			res, _, err := c.Get(nil, hyperReq(5), build)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}
	})
	if builds != 1 {
		t.Fatalf("build ran %d times, want exactly 1", builds)
	}
	hits, misses, _, waits := counters(o)
	if misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	if hits+waits != callers-1 {
		t.Errorf("hits+waits = %d+%d, want %d", hits, waits, callers-1)
	}
	for i, res := range results {
		if res != results[0] {
			t.Fatalf("caller %d got a different result", i)
		}
	}
}

// TestCacheLRUEviction fills a two-entry byte budget with three layouts and
// asserts the coldest was evicted, then proves hit-after-evict rebuilds.
func TestCacheLRUEviction(t *testing.T) {
	sizeOf := func(n int) int64 {
		lay, err := realBuild(nil, hyperReq(n))
		if err != nil {
			t.Fatal(err)
		}
		return lay.MemBytes()
	}
	a, b, cc := sizeOf(4), sizeOf(5), sizeOf(6)
	o := obs.New()
	cache := NewCache(b+cc, o) // exactly room for the two newest
	for _, n := range []int{4, 5, 6} {
		if _, _, err := cache.Get(nil, hyperReq(n), realBuild); err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.Len(); got != 2 {
		t.Fatalf("after overflow Len = %d, want 2", got)
	}
	if used := cache.UsedBytes(); used != b+cc {
		t.Fatalf("UsedBytes = %d, want %d (a=%d evicted)", used, b+cc, a)
	}
	if _, _, evicts, _ := counters(o); evicts != 1 {
		t.Fatalf("evictions = %d, want 1", evicts)
	}
	// The newest entries are hits...
	if _, out, _ := cache.Get(nil, hyperReq(6), realBuild); out != Hit {
		t.Fatalf("n=6 outcome %v, want Hit", out)
	}
	// ...and the evicted key misses, rebuilds, and re-enters the cache
	// (evicting the now-coldest survivor to stay under budget).
	if _, out, err := cache.Get(nil, hyperReq(4), realBuild); out != Miss || err != nil {
		t.Fatalf("evicted key outcome %v err %v, want Miss nil", out, err)
	}
	if _, out, _ := cache.Get(nil, hyperReq(4), realBuild); out != Hit {
		t.Fatalf("rebuilt key did not re-enter the cache")
	}
}

// TestCacheOversizedEntry: a layout bigger than the whole budget is served
// but not retained.
func TestCacheOversizedEntry(t *testing.T) {
	o := obs.New()
	cache := NewCache(1, o)
	lay, out, err := cache.Get(nil, hyperReq(4), realBuild)
	if err != nil || out != Miss || lay == nil {
		t.Fatalf("oversized Get = %v %v %v", lay, out, err)
	}
	if cache.Len() != 0 || cache.UsedBytes() != 0 {
		t.Fatalf("oversized entry retained: len=%d used=%d", cache.Len(), cache.UsedBytes())
	}
}

// TestCacheErrorNotCached: failures are returned but never retained, so the
// next request retries the build.
func TestCacheErrorNotCached(t *testing.T) {
	o := obs.New()
	cache := NewCache(0, o)
	boom := errors.New("boom")
	calls := 0
	build := func(ctx context.Context, req mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return realBuild(ctx, req)
	}
	if _, _, err := cache.Get(nil, hyperReq(4), build); !errors.Is(err, boom) {
		t.Fatalf("first Get err = %v, want boom", err)
	}
	lay, out, err := cache.Get(nil, hyperReq(4), build)
	if err != nil || out != Miss || lay == nil {
		t.Fatalf("retry Get = %v %v %v, want a fresh Miss build", lay, out, err)
	}
	if calls != 2 {
		t.Fatalf("build calls = %d, want 2", calls)
	}
}

// TestCacheWaiterCancellation: a waiter whose context dies while an
// identical build is in flight unblocks with ErrCanceled instead of
// waiting out the build.
func TestCacheWaiterCancellation(t *testing.T) {
	o := obs.New()
	cache := NewCache(0, o)
	started := make(chan struct{})
	release := make(chan struct{})
	build := func(ctx context.Context, req mlvlsi.BuildRequest) (*mlvlsi.Layout, error) {
		close(started)
		<-release
		return realBuild(ctx, req)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := cache.Get(nil, hyperReq(4), build)
		done <- err
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := cache.Get(ctx, hyperReq(4), realBuild)
	if out != Inflight || !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("canceled waiter = outcome %v err %v, want Inflight ErrCanceled", out, err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("leader failed: %v", err)
	}
}
