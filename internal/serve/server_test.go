package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// post sends a JSON body and decodes the JSON response into out (when out
// is non-nil), returning the raw response.
func post(t *testing.T, ts *httptest.Server, path, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading %s response: %v", path, err)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decoding %s response %q: %v", path, buf.String(), err)
		}
	}
	resp.Body.Close()
	resp.Request = nil
	resp.Body = nil
	return resp
}

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestBuildEndpointCachesByContent(t *testing.T) {
	ts := newTestServer(t, Config{})
	var first buildResponse
	resp := post(t, ts, "/v1/build", `{"family":{"name":"hypercube","params":{"n":5}},"layers":4}`, &first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if first.Cache != "MISS" || resp.Header.Get("X-Cache") != "MISS" {
		t.Errorf("first response cache = %q, want MISS", first.Cache)
	}
	if first.Stats.N != 32 || first.Stats.L != 4 || first.MemBytes <= 0 {
		t.Errorf("stats = %+v mem=%d, want a 32-node 4-layer hypercube", first.Stats, first.MemBytes)
	}
	// A differently-spelled identical request — execution knobs set, same
	// geometry — must hit the same slot.
	var second buildResponse
	post(t, ts, "/v1/build", `{"family":{"name":"hypercube","params":{"n":5}},"layers":4,"workers":2,"max_cells":99999999}`, &second)
	if second.Cache != "HIT" {
		t.Errorf("respelled request cache = %q, want HIT", second.Cache)
	}
	if second.Key != first.Key || second.Stats != first.Stats {
		t.Errorf("respelled request key/stats diverged: %+v vs %+v", second, first)
	}
	// Defaults spelled out match defaults omitted.
	var third buildResponse
	post(t, ts, "/v1/build", `{"family":{"name":"hypercube"},"layers":2}`, &third)
	var fourth buildResponse
	post(t, ts, "/v1/build", `{"family":{"name":"hypercube","params":{"n":4}}}`, &fourth)
	if third.Cache != "MISS" || fourth.Cache != "HIT" || third.Key != fourth.Key {
		t.Errorf("default resolution broke content addressing: %+v vs %+v", third, fourth)
	}
}

// TestErrorEnvelope drives every envelope class through the handler: typed
// rejections keep their status, kind, and fields.
func TestErrorEnvelope(t *testing.T) {
	ts := newTestServer(t, Config{MaxCells: 50})
	cases := []struct {
		name   string
		path   string
		body   string
		status int
		kind   string
		frag   string
	}{
		{"unknown family", "/v1/build", `{"family":{"name":"zzz"}}`,
			400, "param", "is not a registered family"},
		{"unknown param", "/v1/build", `{"family":{"name":"hypercube","params":{"zz":1}}}`,
			400, "param", "is not a parameter of this family"},
		{"out of range", "/v1/verify", `{"family":{"name":"hypercube","params":{"n":99}}}`,
			400, "param", "outside range"},
		{"bad option", "/v1/build", `{"family":{"name":"hypercube"},"layers":1}`,
			400, "param", "one wiring layer"},
		{"unknown field", "/v1/build", `{"family":{"name":"hypercube"},"layerz":4}`,
			400, "request", "unknown field"},
		{"malformed body", "/v1/build", `{"family":`,
			400, "request", "decoding BuildRequest"},
		{"over budget", "/v1/build", `{"family":{"name":"hypercube","params":{"n":6}}}`,
			413, "budget", "over the budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body errorBody
			resp := post(t, ts, tc.path, tc.body, &body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%+v)", resp.StatusCode, tc.status, body)
			}
			if body.Error.Kind != tc.kind || body.Error.Status != tc.status {
				t.Errorf("envelope = %+v, want kind %q status %d", body.Error, tc.kind, tc.status)
			}
			if !strings.Contains(body.Error.Message, tc.frag) {
				t.Errorf("message %q missing %q", body.Error.Message, tc.frag)
			}
		})
	}

	// Field checks: the typed errors' structure reaches the wire.
	var pe errorBody
	post(t, ts, "/v1/build", `{"family":{"name":"kary","params":{"k":999}}}`, &pe)
	if pe.Error.Family != "kary" || pe.Error.Param != "k" {
		t.Errorf("param envelope fields = %+v, want family=kary param=k", pe.Error)
	}
	var be errorBody
	post(t, ts, "/v1/build", `{"family":{"name":"hypercube","params":{"n":6}}}`, &be)
	if be.Error.Budget != 50 || be.Error.Cells <= 50 {
		t.Errorf("budget envelope fields = %+v, want budget=50 cells>50", be.Error)
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	ts := newTestServer(t, Config{Timeout: time.Nanosecond})
	var body errorBody
	resp := post(t, ts, "/v1/build", `{"family":{"name":"hypercube","params":{"n":10}},"layers":4}`, &body)
	if resp.StatusCode != http.StatusGatewayTimeout || body.Error.Kind != "canceled" {
		t.Fatalf("deadline response = %d %+v, want 504 canceled", resp.StatusCode, body.Error)
	}
}

func TestMethodDiscipline(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/build")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/build = %d, want 405", resp.StatusCode)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	var v verifyResponse
	resp := post(t, ts, "/v1/verify", `{"family":{"name":"kary","params":{"k":4,"n":2}},"layers":4}`, &v)
	if resp.StatusCode != http.StatusOK || !v.Legal || len(v.Violations) != 0 {
		t.Fatalf("verify = %d %+v, want 200 legal", resp.StatusCode, v)
	}
	if v.Cache != "MISS" {
		t.Errorf("first verify cache = %q, want MISS", v.Cache)
	}
	// The verify endpoint shares the build cache with /v1/build.
	var b buildResponse
	post(t, ts, "/v1/build", `{"family":{"name":"kary","params":{"k":4,"n":2}},"layers":4}`, &b)
	if b.Cache != "HIT" {
		t.Errorf("build after verify = %q, want HIT (shared cache)", b.Cache)
	}
}

func TestFamiliesAndHealthAndMetrics(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/families")
	if err != nil {
		t.Fatal(err)
	}
	var fams []struct {
		Name string `json:"Name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fams); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(fams) < 10 || fams[0].Name == "" {
		t.Fatalf("families = %d entries, want the registry", len(fams))
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	post(t, ts, "/v1/build", `{"family":{"name":"hypercube"}}`, nil)
	post(t, ts, "/v1/build", `{"family":{"name":"hypercube"}}`, nil)
	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics["cache_misses"] != 1 || metrics["cache_hits"] != 1 {
		t.Fatalf("metrics = %v, want cache_misses=1 cache_hits=1", metrics)
	}
	if metrics["wires_realized"] <= 0 || metrics["cache_bytes"] <= 0 {
		t.Fatalf("metrics = %v, want build counters flowing through the same observer", metrics)
	}
}

func TestSVGEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/svg?scale=2", "application/json",
		strings.NewReader(`{"family":{"name":"hypercube","params":{"n":3}}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "image/svg+xml" {
		t.Fatalf("svg = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatalf("svg body does not look like SVG: %.80s", buf.String())
	}
}

// TestAdmissionClamp: the server's MaxCells ceiling applies even when the
// request asks for more (or for no budget), and the clamp does not change
// the content key.
func TestAdmissionClamp(t *testing.T) {
	s := New(Config{MaxCells: 100, Workers: 2})
	req, err := hyperReq(6).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	unclamped := req.Key()
	admitted := s.admit(req)
	if admitted.MaxCells != 100 || admitted.Workers != 2 {
		t.Fatalf("admit = max_cells %d workers %d, want 100 and 2", admitted.MaxCells, admitted.Workers)
	}
	req.MaxCells = 1 << 40
	req.Workers = 512
	if got := s.admit(req); got.MaxCells != 100 || got.Workers != 2 {
		t.Fatalf("admit left oversized knobs = %d/%d, want 100/2", got.MaxCells, got.Workers)
	}
	if admitted.Key() != unclamped {
		t.Fatalf("admission clamp changed the content key")
	}
}

// TestServeGraceful: Serve accepts real connections and exits cleanly when
// its context is canceled.
func TestServeGraceful(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := New(Config{})
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	url := fmt.Sprintf("http://%s/healthz", ln.Addr())
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
}
