// Package par is a small dependency-free worker pool used by the build and
// verify engines. All helpers share the same contract:
//
//   - bounded fan-out: at most Workers(w) goroutines run at once, and the
//     index space is split into contiguous chunks so shard-local state (maps,
//     scratch buffers) amortizes across many items;
//   - deterministic results: outputs are collected by index, never by
//     completion order, so callers observe the same result regardless of the
//     worker count or scheduling;
//   - full error collection: ForEachErr runs every item even after failures
//     and joins all errors in index order, mirroring how grid.Check reports
//     every violation instead of the first.
package par

import (
	"errors"
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: n >= 1 means exactly n workers,
// anything else (the zero value) means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Chunks splits [0, n) into at most Workers(workers) contiguous, balanced,
// non-empty ranges and calls fn(shard, lo, hi) for each concurrently. It
// returns after every shard completes. The shard index is dense in
// [0, shards) so callers can preallocate per-shard result slots.
func Chunks(workers, n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for shard := 0; shard < w; shard++ {
		lo := shard * n / w
		hi := (shard + 1) * n / w
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(shard, lo, hi)
	}
	wg.Wait()
}

// NumChunks returns the number of shards Chunks will use for n items.
func NumChunks(workers, n int) int {
	if n <= 0 {
		return 0
	}
	if w := Workers(workers); w < n {
		return w
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) across the worker pool.
func ForEach(workers, n int, fn func(i int)) {
	Chunks(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachErr runs fn(i) for every i in [0, n), collects every returned
// error, and joins them in index order (nil when all calls succeed). Unlike
// errgroup-style helpers it does not cancel on first failure: the engines
// here want the complete violation/error set.
func ForEachErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	Chunks(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = fn(i)
		}
	})
	return errors.Join(errs...)
}

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
