// Package par is a small dependency-free worker pool used by the build and
// verify engines. All helpers share the same contract:
//
//   - bounded fan-out: at most Workers(w) goroutines run at once, and the
//     index space is split into contiguous chunks so shard-local state (maps,
//     scratch buffers) amortizes across many items;
//   - deterministic results: outputs are collected by index, never by
//     completion order, so callers observe the same result regardless of the
//     worker count or scheduling;
//   - full error collection: ForEachErr runs every item even after failures
//     and joins all errors in index order, mirroring how grid.Check reports
//     every violation instead of the first;
//   - panic containment: a panic in a worker goroutine is captured with its
//     stack and rethrown exactly once on the caller's goroutine as a *Panic,
//     so callers can recover it (a panic on a bare goroutine would kill the
//     process no matter what the caller does);
//   - cooperative cancellation: the Ctx variants stop dispatching new items
//     once the context is done and return an error wrapping ErrCanceled.
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrCanceled is wrapped by every error the Ctx helpers return when a
// context expires; errors.Is(err, ErrCanceled) identifies a canceled or
// timed-out build/verify. The context's own cause (context.Canceled or
// context.DeadlineExceeded) is wrapped too.
var ErrCanceled = errors.New("mlvlsi: canceled")

// Canceled returns nil while ctx (which may be nil) is live, and an error
// wrapping both ErrCanceled and the context's cause once it is done.
func Canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// Panic carries a panic captured in a worker goroutine: the original panic
// value plus the worker's stack at the point of the panic. Chunks rethrows
// it on the caller's goroutine; ForEachErr returns it as an error.
type Panic struct {
	Value any
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("panic in parallel worker: %v\n%s", p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it was an error.
func (p *Panic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// maxWorkers bounds the goroutine fan-out a caller can request. Requests
// beyond it degrade to GOMAXPROCS (the available parallelism) instead of
// erroring or fork-bombing the scheduler.
const maxWorkers = 1 << 12

// Workers resolves a worker-count knob: 1 <= n <= 4096 means exactly n
// workers, larger values degrade gracefully to runtime.GOMAXPROCS(0), and
// anything else (the zero value) means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n >= 1 {
		if n > maxWorkers {
			return runtime.GOMAXPROCS(0)
		}
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Chunks splits [0, n) into at most Workers(workers) contiguous, balanced,
// non-empty ranges and calls fn(shard, lo, hi) for each concurrently. It
// returns after every shard completes. The shard index is dense in
// [0, shards) so callers can preallocate per-shard result slots.
//
// A panic in any shard is captured (first one wins) and rethrown as a
// *Panic on the caller's goroutine after all shards finish, for both the
// serial and the concurrent path.
func Chunks(workers, n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	var captured atomic.Pointer[Panic]
	capture := func() {
		if v := recover(); v != nil {
			p, ok := v.(*Panic)
			if !ok {
				p = &Panic{Value: v, Stack: debug.Stack()}
			}
			captured.CompareAndSwap(nil, p)
		}
	}
	if w == 1 {
		func() {
			defer capture()
			fn(0, 0, n)
		}()
	} else {
		var wg sync.WaitGroup
		for shard := 0; shard < w; shard++ {
			lo := shard * n / w
			hi := (shard + 1) * n / w
			wg.Add(1)
			go func(shard, lo, hi int) {
				defer wg.Done()
				defer capture()
				fn(shard, lo, hi)
			}(shard, lo, hi)
		}
		wg.Wait()
	}
	if p := captured.Load(); p != nil {
		panic(p)
	}
}

// AlignedChunks is Chunks with every boundary rounded to a multiple of
// align: [0, n) is split into contiguous ranges whose lo — and hi, except on
// the final range — are multiples of align. The dense verifier hands each
// worker whole cache lines of a flat occupancy array this way, so no two
// shards' ranges straddle a line. align < 2 degrades to Chunks.
//
//mlvlsi:hotpath
func AlignedChunks(workers, n, align int, fn func(chunk, lo, hi int)) {
	if align < 2 {
		Chunks(workers, n, fn)
		return
	}
	units := (n + align - 1) / align
	Chunks(workers, units, func(chunk, ulo, uhi int) {
		lo, hi := ulo*align, uhi*align
		if hi > n {
			hi = n
		}
		fn(chunk, lo, hi)
	})
}

// NumAlignedChunks returns the number of ranges AlignedChunks will use for
// n items at the given alignment.
func NumAlignedChunks(workers, n, align int) int {
	if align < 2 {
		return NumChunks(workers, n)
	}
	return NumChunks(workers, (n+align-1)/align)
}

// NumChunks returns the number of shards Chunks will use for n items.
func NumChunks(workers, n int) int {
	if n <= 0 {
		return 0
	}
	if w := Workers(workers); w < n {
		return w
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) across the worker pool.
func ForEach(workers, n int, fn func(i int)) {
	Chunks(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ctxCheckStride bounds how many items a worker processes between context
// polls: cheap enough to be negligible per item, frequent enough that
// cancellation latency stays well under the cost of a handful of items.
const ctxCheckStride = 64

// ForEachCtx is ForEach with cooperative cancellation: once ctx (which may
// be nil, meaning no cancellation) is done, workers stop picking up new
// items and the call returns an error wrapping ErrCanceled. Items already
// started run to completion; on a nil error every item ran.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if ctx == nil {
		ForEach(workers, n, fn)
		return nil
	}
	if err := Canceled(ctx); err != nil {
		return err
	}
	var stop atomic.Bool
	Chunks(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i%ctxCheckStride == 0 {
				if stop.Load() {
					return
				}
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
			}
			fn(i)
		}
	})
	return Canceled(ctx)
}

// ForEachErr runs fn(i) for every i in [0, n), collects every returned
// error, and joins them in index order (nil when all calls succeed). Unlike
// errgroup-style helpers it does not cancel on first failure: the engines
// here want the complete violation/error set. A panic in fn surfaces as a
// *Panic error on the caller instead of crashing the process.
func ForEachErr(workers, n int, fn func(i int) error) (err error) {
	if n <= 0 {
		return nil
	}
	defer func() {
		if v := recover(); v != nil {
			if p, ok := v.(*Panic); ok {
				err = p
				return
			}
			panic(v)
		}
	}()
	errs := make([]error, n)
	Chunks(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = fn(i)
		}
	})
	return errors.Join(errs...)
}

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
