package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Errorf("Workers(3) = %d", Workers(3))
	}
	if Workers(1) != 1 {
		t.Errorf("Workers(1) = %d", Workers(1))
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("Workers must resolve to >= 1")
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			visits := make([]int32, n)
			Chunks(workers, n, func(shard, lo, hi int) {
				if lo >= hi {
					t.Errorf("w=%d n=%d: empty shard [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("w=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

func TestChunksShardIndicesDense(t *testing.T) {
	n := 37
	workers := 4
	want := NumChunks(workers, n)
	seen := make([]atomic.Bool, want)
	Chunks(workers, n, func(shard, lo, hi int) {
		if shard < 0 || shard >= want {
			t.Errorf("shard %d out of [0,%d)", shard, want)
			return
		}
		if seen[shard].Swap(true) {
			t.Errorf("shard %d ran twice", shard)
		}
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Errorf("shard %d never ran", i)
		}
	}
}

func TestForEachBoundedFanOut(t *testing.T) {
	var inFlight, peak atomic.Int32
	ForEach(3, 100, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent workers, want <= 3", p)
	}
}

func TestForEachErrJoinsAllInOrder(t *testing.T) {
	err := ForEachErr(4, 10, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected joined error")
	}
	msg := err.Error()
	wantOrder := []string{"item 0", "item 3", "item 6", "item 9"}
	last := -1
	for _, w := range wantOrder {
		idx := strings.Index(msg, w)
		if idx < 0 {
			t.Fatalf("error %q missing from %q", w, msg)
		}
		if idx < last {
			t.Errorf("error %q out of index order in %q", w, msg)
		}
		last = idx
	}
	if err := ForEachErr(4, 10, func(int) error { return nil }); err != nil {
		t.Errorf("all-nil run returned %v", err)
	}
	if err := ForEachErr(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("empty run returned %v", err)
	}
}

func TestWorkersDegradesAbsurdRequests(t *testing.T) {
	if got := Workers(maxWorkers); got != maxWorkers {
		t.Errorf("Workers(maxWorkers) = %d, want %d", got, maxWorkers)
	}
	if got := Workers(maxWorkers + 1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(maxWorkers+1) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(1 << 30); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(1<<30) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestChunksRethrowsWorkerPanicOnCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panic was swallowed", workers)
				}
				p, ok := v.(*Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *Panic", workers, v)
				}
				if p.Value != "boom" {
					t.Errorf("workers=%d: panic value %v, want boom", workers, p.Value)
				}
				if len(p.Stack) == 0 {
					t.Errorf("workers=%d: panic stack not captured", workers)
				}
			}()
			Chunks(workers, 16, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					if i == 7 {
						panic("boom")
					}
				}
			})
		}()
	}
}

func TestPanicUnwrapsErrorValue(t *testing.T) {
	sentinel := errors.New("worker failed")
	err := ForEachErr(2, 8, func(i int) error {
		if i == 3 {
			panic(sentinel)
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	var p *Panic
	if !errors.As(err, &p) {
		t.Fatalf("error %T is not a *Panic", err)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("panic with error value should unwrap to it; got %v", err)
	}
}

func TestForEachErrReturnsPanicAsError(t *testing.T) {
	err := ForEachErr(4, 100, func(i int) error {
		if i == 50 {
			panic("kaput")
		}
		return nil
	})
	var p *Panic
	if !errors.As(err, &p) {
		t.Fatalf("ForEachErr returned %v (%T), want *Panic", err, err)
	}
	if !strings.Contains(err.Error(), "kaput") {
		t.Errorf("panic message lost: %v", err)
	}
}

func TestForEachCtxNilAndLiveContexts(t *testing.T) {
	var count atomic.Int32
	if err := ForEachCtx(nil, 4, 200, func(int) { count.Add(1) }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if count.Load() != 200 {
		t.Errorf("nil ctx ran %d items, want 200", count.Load())
	}
	count.Store(0)
	if err := ForEachCtx(context.Background(), 4, 200, func(int) { count.Add(1) }); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	if count.Load() != 200 {
		t.Errorf("live ctx ran %d items, want 200", count.Load())
	}
}

func TestForEachCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEachCtx(ctx, 2, 50, func(int) { ran = true })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v should wrap context.Canceled", err)
	}
	if ran {
		t.Error("pre-canceled context still ran items")
	}
}

func TestForEachCtxStopsMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int32
	const n = 1 << 20
	err := ForEachCtx(ctx, 2, n, func(i int) {
		if count.Add(1) == 100 {
			cancel()
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if c := count.Load(); int(c) >= n {
		t.Errorf("cancellation did not stop the loop: ran all %d items", c)
	}
}

func TestForEachCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := ForEachCtx(ctx, 2, 1<<20, func(int) { time.Sleep(10 * time.Microsecond) })
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

func TestCanceledHelper(t *testing.T) {
	if err := Canceled(nil); err != nil {
		t.Errorf("Canceled(nil) = %v", err)
	}
	if err := Canceled(context.Background()); err != nil {
		t.Errorf("Canceled(live) = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Canceled(ctx); !errors.Is(err, ErrCanceled) {
		t.Errorf("Canceled(done) = %v, want ErrCanceled", err)
	}
}

func TestMapDeterministicOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestAlignedChunksCoverAndAlign(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 7, 8, 64, 100, 1000} {
			for _, align := range []int{1, 4, 8, 64} {
				var mu sync.Mutex
				covered := make([]bool, n)
				chunks := 0
				AlignedChunks(workers, n, align, func(chunk, lo, hi int) {
					mu.Lock()
					defer mu.Unlock()
					chunks++
					if align >= 2 {
						if lo%align != 0 {
							t.Errorf("workers=%d n=%d align=%d: lo %d not aligned", workers, n, align, lo)
						}
						if hi != n && hi%align != 0 {
							t.Errorf("workers=%d n=%d align=%d: interior hi %d not aligned", workers, n, align, hi)
						}
					}
					for i := lo; i < hi; i++ {
						if covered[i] {
							t.Errorf("workers=%d n=%d align=%d: index %d covered twice", workers, n, align, i)
						}
						covered[i] = true
					}
				})
				for i, ok := range covered {
					if !ok {
						t.Fatalf("workers=%d n=%d align=%d: index %d never covered", workers, n, align, i)
					}
				}
				if want := NumAlignedChunks(workers, n, align); chunks != want {
					t.Errorf("workers=%d n=%d align=%d: %d chunks ran, NumAlignedChunks says %d",
						workers, n, align, chunks, want)
				}
			}
		}
	}
}
