package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Errorf("Workers(3) = %d", Workers(3))
	}
	if Workers(1) != 1 {
		t.Errorf("Workers(1) = %d", Workers(1))
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("Workers must resolve to >= 1")
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			visits := make([]int32, n)
			Chunks(workers, n, func(shard, lo, hi int) {
				if lo >= hi {
					t.Errorf("w=%d n=%d: empty shard [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("w=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

func TestChunksShardIndicesDense(t *testing.T) {
	n := 37
	workers := 4
	want := NumChunks(workers, n)
	seen := make([]atomic.Bool, want)
	Chunks(workers, n, func(shard, lo, hi int) {
		if shard < 0 || shard >= want {
			t.Errorf("shard %d out of [0,%d)", shard, want)
			return
		}
		if seen[shard].Swap(true) {
			t.Errorf("shard %d ran twice", shard)
		}
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Errorf("shard %d never ran", i)
		}
	}
}

func TestForEachBoundedFanOut(t *testing.T) {
	var inFlight, peak atomic.Int32
	ForEach(3, 100, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent workers, want <= 3", p)
	}
}

func TestForEachErrJoinsAllInOrder(t *testing.T) {
	err := ForEachErr(4, 10, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected joined error")
	}
	msg := err.Error()
	wantOrder := []string{"item 0", "item 3", "item 6", "item 9"}
	last := -1
	for _, w := range wantOrder {
		idx := strings.Index(msg, w)
		if idx < 0 {
			t.Fatalf("error %q missing from %q", w, msg)
		}
		if idx < last {
			t.Errorf("error %q out of index order in %q", w, msg)
		}
		last = idx
	}
	if err := ForEachErr(4, 10, func(int) error { return nil }); err != nil {
		t.Errorf("all-nil run returned %v", err)
	}
	if err := ForEachErr(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("empty run returned %v", err)
	}
}

func TestMapDeterministicOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}
