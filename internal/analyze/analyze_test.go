package analyze

import (
	"flag"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden expect.txt files under testdata")

// formatReport renders a report in the golden-file shape: active findings
// first, then suppressed ones prefixed "suppressed:", both already in the
// framework's canonical order.
func formatReport(rep Report) string {
	var b strings.Builder
	for _, f := range rep.Findings {
		fmt.Fprintf(&b, "%s:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
	}
	for _, f := range rep.Suppressed {
		fmt.Fprintf(&b, "suppressed: %s:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
	}
	return b.String()
}

// loadFixture loads one testdata module, failing the test on loader or
// type-check errors (fixtures must compile: a broken fixture would silently
// weaken every assertion made against it).
func loadFixture(t *testing.T, dir string) *Module {
	t.Helper()
	m, err := Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	for _, pkg := range m.Packages {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture type error in %s: %v", pkg.ImportPath, terr)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	return m
}

// TestGolden runs the full analyzer set over every fixture module under
// testdata and compares the diagnostics against the fixture's expect.txt.
// Each fixture contains both flagging and non-flagging cases, so a pass
// asserts presence and absence at once. Run with -update to regenerate.
func TestGolden(t *testing.T) {
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			rep := Run(loadFixture(t, dir), Analyzers())
			got := formatReport(rep)
			golden := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenFixturesFlagAndPass asserts the structural property the issue
// demands of every analyzer: at least one fixture finding and at least one
// clean (non-flagging) declaration per analyzer. A fixture edit that
// accidentally empties one side fails here even if the golden file was
// regenerated.
func TestGoldenFixturesFlagAndPass(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := fixtureFor(a.Name)
			rep := Run(loadFixture(t, filepath.Join("testdata", dir)), []*Analyzer{a})
			if len(rep.Findings) == 0 {
				t.Errorf("analyzer %s flags nothing in its fixture", a.Name)
			}
			// The fixtures document their clean cases with "not flagged";
			// golden agreement (TestGolden) proves they stay clean.
			if !strings.Contains(readFixtureSource(t, dir), "not flagged") {
				t.Errorf("fixture %s declares no non-flagging case", dir)
			}
		})
	}
}

// fixtureFor maps an analyzer name to its dedicated fixture directory.
func fixtureFor(analyzer string) string {
	if analyzer == "mapdeterminism" {
		return "mapdet"
	}
	return analyzer
}

// readFixtureSource concatenates every .go file of a fixture.
func readFixtureSource(t *testing.T, dir string) string {
	t.Helper()
	var b strings.Builder
	root := filepath.Join("testdata", dir)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			b.Write(data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestModuleClean is the acceptance gate: the repo's own tree must lint
// clean (no active findings; declared exceptions are allowed and must stay
// few). This is the same check `make lint` and CI run via cmd/repolint.
func TestModuleClean(t *testing.T) {
	m, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range m.Packages {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", pkg.ImportPath, terr)
		}
	}
	rep := Run(m, Analyzers())
	for _, f := range rep.Findings {
		t.Errorf("active finding: %s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
	}
	if n := len(rep.Suppressed); n > 3 {
		t.Errorf("suppression creep: %d //mlvlsi:allow exceptions (want <= 3); stop and fix instead of waiving", n)
	}
}

// TestModuleCoversHotpaths pins the load-bearing annotations: the dense
// checker core and its feeders must carry the hotpath directive so the
// 0-alloc invariant stays enforced, not aspirational. Each entry is
// "package-path-suffix funcname".
func TestModuleCoversHotpaths(t *testing.T) {
	m, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"internal/grid measure":            false, // Wires.measure
		"internal/grid UnitEdges":          false, // Wire.UnitEdges
		"internal/grid edgeViolation":      false,
		"internal/grid checkDense":         false,
		"internal/grid collectWireDense":   false,
		"internal/grid checkDenseParallel": false, // includes the shard merge scan
		"internal/grid index":              false, // occIndexer.index
		"internal/par AlignedChunks":       false,
		"internal/core lookup":             false, // trackTable.lookup
		"internal/core port":               false, // portTable.port
		"internal/core realize":            false, // realizeCtx.realize
	}
	for _, pkg := range m.Packages {
		i := strings.LastIndex(pkg.ImportPath, "internal/")
		if i < 0 {
			continue
		}
		suffix := pkg.ImportPath[i:]
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			key := suffix + " " + fd.Name.Name
			if _, tracked := want[key]; tracked && isHotpath(fd) {
				want[key] = true
			}
		})
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !want[name] {
			t.Errorf("hot function %q has lost its //mlvlsi:hotpath directive", name)
		}
	}
}

// TestByName checks analyzer lookup.
func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}
