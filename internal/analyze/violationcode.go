package analyze

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// violationCodeAnalyzer closes the loop between the verifier's violation
// vocabulary and the fault-injection harness: every reason code the grid
// checkers can emit must be claimed by some corruption class in the
// internal/fault Class→Codes mapping, or the chaos sweep can never prove
// the checkers catch it. Adding a Reason constant without teaching the
// harness about it is exactly the silent gap this analyzer exists to stop.
//
// Detection is structural, not name-bound: the analyzer finds every method
// named Codes returning a slice of a named constant type declared in this
// module, gathers that type's nonzero constants, and requires each to be
// referenced somewhere in a Codes body. Zero values (ReasonNone-style
// sentinels) are exempt; genuinely unreachable codes carry an explicit
// //mlvlsi:allow violationcode directive at their declaration.
var violationCodeAnalyzer = &Analyzer{
	Name: "violationcode",
	Doc:  "every nonzero violation reason constant must appear in a Class→Codes mapping",
	Run: func(m *Module, report func(pos token.Pos, message string)) {
		used := map[types.Object]bool{}
		targets := map[*types.TypeName]string{}
		for _, pkg := range m.Packages {
			eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
				elem := codesElemType(pkg, fd)
				if elem == nil || !m.declares(elem) {
					return
				}
				recv := ""
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					recv = typeBaseName(fd.Recv.List[0].Type)
				}
				targets[elem] = recv + "." + fd.Name.Name
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						if c, ok := pkg.Info.Uses[id].(*types.Const); ok && isNamedBy(c.Type(), elem) {
							used[c] = true
						}
					}
					return true
				})
			})
		}
		for _, pkg := range m.Packages {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				c, ok := scope.Lookup(name).(*types.Const)
				if !ok {
					continue
				}
				for elem, mapping := range targets {
					if !isNamedBy(c.Type(), elem) || used[c] || isZeroConst(c) {
						continue
					}
					report(c.Pos(), fmt.Sprintf("%s is not claimed by any corruption class in the %s mapping; add a fault class covering it (or declare the exception) so the chaos sweep proves the checkers catch it", c.Name(), mapping))
				}
			}
		}
	},
}

// codesElemType returns the named element type of a method/function named
// Codes returning a single slice of a named type, or nil.
func codesElemType(pkg *Package, fd *ast.FuncDecl) *types.TypeName {
	if fd.Name.Name != "Codes" || fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return nil
	}
	tv, ok := pkg.Info.Types[fd.Type.Results.List[0].Type]
	if !ok || tv.Type == nil {
		return nil
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	named, ok := slice.Elem().(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// declares reports whether the type name belongs to a package of this
// module (as opposed to the standard library).
func (m *Module) declares(tn *types.TypeName) bool {
	return tn.Pkg() != nil && (tn.Pkg().Path() == m.Path || strings.HasPrefix(tn.Pkg().Path(), m.Path+"/"))
}

// isNamedBy reports whether t is the named type declared by tn.
func isNamedBy(t types.Type, tn *types.TypeName) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() == tn
}

// isZeroConst reports whether the constant's value is exactly zero (the
// ReasonNone-style sentinel no valid violation carries).
func isZeroConst(c *types.Const) bool {
	v, ok := constant.Int64Val(c.Val())
	return ok && v == 0
}
