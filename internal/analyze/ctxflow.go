package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflowAnalyzer enforces the cancellation-plumbing contract earned in the
// fault-injection PR: context-aware entry points must actually honor their
// context, and convenience wrappers must stay wrappers.
//
//  1. Every exported function with a context.Context parameter must consult
//     it — pass it to a callee, or call Done()/Err()/Value on it. A ctx
//     that is accepted and dropped silently breaks end-to-end cancellation.
//  2. For every exported Foo with a sibling FooCtx or FooContext (same
//     receiver), one of the pair must call the other. Delegation in either
//     direction keeps a single implementation; two disconnected bodies fork
//     the logic and drift apart.
var ctxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "context-taking exported functions must consult ctx; non-Ctx wrappers must delegate to their Ctx variants",
	Run: func(m *Module, report func(pos token.Pos, message string)) {
		for _, pkg := range m.Packages {
			checkCtxUse(pkg, report)
			checkCtxPairs(pkg, report)
		}
	},
}

// ctxSuffixes are the naming conventions for context-aware variants, in
// the order they are tried.
var ctxSuffixes = [...]string{"Ctx", "Context"}

// checkCtxUse flags exported functions that take a context.Context but
// never reference the parameter.
func checkCtxUse(pkg *Package, report func(pos token.Pos, message string)) {
	eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if !fd.Name.IsExported() {
			return
		}
		for _, field := range fd.Type.Params.List {
			if !isContextType(pkg, field.Type) {
				continue
			}
			if len(field.Names) == 0 {
				report(field.Pos(), fmt.Sprintf("%s declares an unnamed context.Context parameter it cannot consult; name it and honor cancellation (or drop it)", fd.Name.Name))
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					report(name.Pos(), fmt.Sprintf("%s discards its context.Context parameter; consult it (pass it on, or check Done()/Err()) so cancellation flows end to end", fd.Name.Name))
					continue
				}
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if !identUsed(pkg, fd.Body, obj) {
					report(name.Pos(), fmt.Sprintf("%s never consults its context parameter %q; pass it to a callee or check Done()/Err() so cancellation flows end to end", fd.Name.Name, name.Name))
				}
			}
		}
	})
}

// isContextType reports whether the expression denotes context.Context.
func isContextType(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// identUsed reports whether any identifier in body resolves to obj.
func identUsed(pkg *Package, body ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}

// checkCtxPairs flags exported Foo whose FooCtx/FooContext sibling exists
// but where neither function's body references the other.
func checkCtxPairs(pkg *Package, report func(pos token.Pos, message string)) {
	type fn struct {
		decl *ast.FuncDecl
		obj  types.Object
	}
	decls := map[string]fn{}
	key := func(fd *ast.FuncDecl) string {
		recv := ""
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			recv = typeBaseName(fd.Recv.List[0].Type)
		}
		return recv + "." + fd.Name.Name
	}
	eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		decls[key(fd)] = fn{decl: fd, obj: pkg.Info.Defs[fd.Name]}
	})
	eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if !fd.Name.IsExported() {
			return
		}
		name := fd.Name.Name
		for _, suffix := range ctxSuffixes {
			variant, ok := decls[key(fd)+suffix]
			if !ok || variant.obj == nil {
				continue
			}
			base := decls[key(fd)]
			if identUsed(pkg, fd.Body, variant.obj) || (base.obj != nil && identUsed(pkg, variant.decl.Body, base.obj)) {
				return
			}
			report(fd.Pos(), fmt.Sprintf("%s does not delegate to its context variant %s%s (and %s%s does not delegate back); forked implementations drift — one must call the other", name, name, suffix, name, suffix))
			return
		}
	})
}

// typeBaseName returns the receiver base type name of a method receiver
// expression ("*Layout" and "Layout" both yield "Layout").
func typeBaseName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return typeBaseName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return typeBaseName(t.X)
	case *ast.IndexListExpr:
		return typeBaseName(t.X)
	}
	return ""
}
