// Package analyze is a stdlib-only static analyzer for this module: it
// loads every package from source (go/parser + go/types, no external
// dependencies), runs a set of domain analyzers, and reports findings that
// would erode the repo's three hard invariants:
//
//   - all parallelism flows through the internal/par pool, so cancellation
//     and panic containment stay total (analyzer "goroutine");
//   - verifier output is byte-identical across worker counts, so no map
//     iteration order may leak into appended or printed results (analyzer
//     "mapdeterminism");
//   - the dense checker's legal path allocates nothing, enforced on
//     functions annotated //mlvlsi:hotpath (analyzer "hotpath").
//
// Two more analyzers guard API structure: "ctxflow" (context-taking
// functions must consult their context, and non-Ctx wrappers must delegate
// to their Ctx variants) and "violationcode" (every grid.Violation reason
// constant must appear in the internal/fault Class→Codes mapping, so new
// violation kinds cannot escape the chaos sweep).
//
// Intentional exceptions are declared in source with a
// "//mlvlsi:allow <analyzer>" comment on the flagged line or the line
// above; suppressed findings are counted and reported, never silent.
package analyze

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the package's import path (module path + directory).
	ImportPath string
	// Dir is the package directory, relative to the module root.
	Dir string
	// Files holds the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression, definition, and use maps.
	Info *types.Info
	// TypeErrors collects type-checking errors (empty on a building tree;
	// the analyzers still run on whatever was checked).
	TypeErrors []error

	imports []string
}

// Module is a fully loaded module: every package parsed and type-checked.
type Module struct {
	// Root is the absolute filesystem path of the module root.
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset positions every parsed file.
	Fset *token.FileSet
	// Packages lists the module's packages in dependency order.
	Packages []*Package
}

// Load parses and type-checks every package of the module rooted at root
// (the directory containing go.mod). Test files (*_test.go), testdata
// directories, and directories whose name starts with "." or "_" are
// skipped. Standard-library imports are type-checked from $GOROOT source,
// so no compiled export data is required.
func Load(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Root: abs, Path: modPath, Fset: token.NewFileSet()}

	dirs, err := packageDirs(abs)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*Package, len(dirs))
	var all []*Package
	for _, dir := range dirs {
		pkg, err := m.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		byPath[pkg.ImportPath] = pkg
		all = append(all, pkg)
	}

	ordered, err := topoSort(all, byPath)
	if err != nil {
		return nil, err
	}
	m.Packages = ordered

	src := importer.ForCompiler(m.Fset, "source", nil)
	imp := &moduleImporter{local: byPath, fallback: src}
	for _, pkg := range m.Packages {
		checkPackage(m.Fset, pkg, imp)
	}
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analyze: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analyze: no module directive in %s", gomod)
}

// packageDirs walks the module tree for directories that contain at least
// one non-test .go file, returning module-root-relative paths in sorted
// order.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				dirs = append(dirs, rel)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// parseDir parses the non-test files of one directory into a Package (nil
// when the directory holds no source files after filtering).
func (m *Module) parseDir(rel string) (*Package, error) {
	dir := filepath.Join(m.Root, rel)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	importPath := m.Path
	if rel != "." {
		importPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{ImportPath: importPath, Dir: rel}
	seen := map[string]bool{}
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analyze: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				pkg.imports = append(pkg.imports, p)
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// topoSort orders packages so every module-internal import precedes its
// importers; imports outside the module are resolved by the fallback
// importer and impose no ordering.
func topoSort(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[*Package]int, len(pkgs))
	ordered := make([]*Package, 0, len(pkgs))
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analyze: import cycle through %s", p.ImportPath)
		}
		state[p] = visiting
		for _, imp := range p.imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = done
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// moduleImporter resolves module-internal imports from the packages already
// type-checked this load, delegating everything else (the standard library)
// to the source importer.
type moduleImporter struct {
	local    map[string]*Package
	fallback types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.local[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("analyze: import %s before it was checked", path)
		}
		return p.Types, nil
	}
	return mi.fallback.Import(path)
}

// checkPackage type-checks one package, collecting (rather than failing on)
// type errors so a partially broken tree still gets analyzed.
func checkPackage(fset *token.FileSet, pkg *Package, imp types.Importer) {
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never returns a nil package; on errors it returns what it could
	// type-check, which is what the analyzers want.
	pkg.Types, _ = conf.Check(pkg.ImportPath, fset, pkg.Files, pkg.Info)
}
