// Package fix exercises the arenaescape analyzer: memory carved from a
// BuildScratch (slab take results, pointers into the scratch) must not
// flow into Layout/Wires/Result values outside a transient-mode path.
package fix

// Point is a path coordinate.
type Point struct{ X, Y int }

// Wire is a routed wire; Wires is the protected collection type.
type Wire struct{ Path []Point }

// Wires is a protected sink type.
type Wires []Wire

// Layout is the protected result type.
type Layout struct {
	Name  string
	Nodes []int
	Wires Wires
}

// slab is a bump allocator for ints.
type slab struct{ buf []int }

func (s *slab) take(n int) []int {
	if len(s.buf) < n {
		s.buf = make([]int, n)
	}
	return s.buf[:n]
}

// wireSlab is a bump allocator for wires.
type wireSlab struct{ buf Wires }

func (s *wireSlab) take(n int) Wires {
	if len(s.buf) < n {
		s.buf = make(Wires, n)
	}
	return s.buf[:n]
}

// BuildScratch is the arena; its name is what roots the taint sources.
type BuildScratch struct {
	transient bool
	ints      slab
	wires     wireSlab
	lay       Layout
}

// escapeField aliases a scratch slab straight into a Layout field with no
// transient guard: flagged at the field write (and again at the return,
// since the layout now carries the alias out).
func escapeField(s *BuildScratch) *Layout {
	lay := &Layout{Name: "leak"}
	lay.Nodes = s.ints.take(4)
	return lay
}

// escapeChain leaks through a def-use chain — take, local, reslice — into
// a sink-typed return; the finding prints every hop.
func escapeChain(s *BuildScratch) Wires {
	buf := s.wires.take(8)
	part := buf[2:4]
	return part
}

// escapeLayoutPtr hands out a pointer into the scratch itself without the
// transient guard: flagged at the return.
func escapeLayoutPtr(s *BuildScratch) *Layout {
	lay := &s.lay
	return lay
}

// transientBuild hands out scratch-backed results only under the
// transient flag — the sanctioned ownership hand-off: not flagged.
func transientBuild(s *BuildScratch) *Layout {
	if s != nil && s.transient {
		lay := &s.lay
		lay.Nodes = s.ints.take(4)
		return lay
	}
	lay := &Layout{}
	lay.Nodes = make([]int, 4)
	return lay
}

// scratchLocal keeps scratch memory internal to the computation; scalars
// read off a slab copy by value: not flagged.
func scratchLocal(s *BuildScratch) int {
	tmp := s.ints.take(8)
	sum := 0
	for _, v := range tmp {
		sum += v
	}
	return sum
}

// copyOut copies scratch-backed values into fresh memory before
// publishing, which breaks the alias: not flagged.
func copyOut(s *BuildScratch) *Layout {
	tmp := s.ints.take(4)
	lay := &Layout{}
	lay.Nodes = make([]int, len(tmp))
	copy(lay.Nodes, tmp)
	return lay
}
