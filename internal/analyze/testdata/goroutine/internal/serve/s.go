// Package serve mirrors the serving layer: a goroutine that drives a
// *net/http.Server is owned by net/http (Shutdown joins it) and is allowed;
// any other goroutine here is still flagged.
package serve

import (
	"context"
	"net"
	"net/http"
)

// Graceful runs the accept loop on a goroutine the http server owns: not
// flagged, because Shutdown joins it and net/http contains handler panics.
func Graceful(ctx context.Context, hs *http.Server, ln net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	<-ctx.Done()
	if err := hs.Shutdown(context.Background()); err != nil {
		return err
	}
	return <-errc
}

// Spawn leaks an unowned goroutine: flagged even in this package.
func Spawn(fn func()) {
	go fn()
}
