// Package par is the worker pool: the one place raw go statements are
// allowed.
package par

import "sync"

// Go runs fn on a bare goroutine; legal here and only here.
func Go(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
	wg.Wait()
}
