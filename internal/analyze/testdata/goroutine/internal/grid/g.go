// Package grid mirrors the seeded regression from the issue: a careless
// raw go statement in the verifier package must be caught.
package grid

// CheckAsync forks the verifier outside the pool: flagged.
func CheckAsync(done chan<- bool) {
	go func() {
		done <- true
	}()
}
