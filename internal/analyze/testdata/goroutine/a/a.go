// Package a spawns a goroutine outside the pool: flagged.
package a

// Spawn leaks a goroutine with no cancellation or panic containment.
func Spawn(fn func()) {
	go fn()
}

// Serial is ordinary code: not flagged.
func Serial(fn func()) {
	fn()
}
