// Package ctxflow exercises the context-plumbing analyzer: exported
// functions with a context.Context parameter must consult it, and an
// exported Foo with a FooCtx/FooContext sibling must delegate to it (in
// either direction).
package ctxflow

import "context"

// SleepCtx accepts a context and ignores it: flagged.
func SleepCtx(ctx context.Context, n int) int {
	return n * 2
}

// WorkCtx discards its context with a blank name: flagged.
func WorkCtx(_ context.Context, n int) int {
	return n * 3
}

// PollCtx cannot consult an unnamed context: flagged.
func PollCtx(context.Context) {}

// RunCtx consults its context: not flagged. It also delegates from Run, so
// the pair is clean.
func RunCtx(ctx context.Context, n int) (int, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	return n + 1, nil
}

// Run delegates to RunCtx: not flagged.
func Run(n int) int {
	v, _ := RunCtx(nil, n)
	return v
}

// ScanCtx consults its context, but Scan forks the logic instead of
// delegating: Scan is flagged.
func ScanCtx(ctx context.Context, xs []int) (int, error) {
	total := 0
	for i, x := range xs {
		if i%64 == 0 && ctx != nil && ctx.Err() != nil {
			return 0, ctx.Err()
		}
		total += x
	}
	return total, nil
}

// Scan duplicates ScanCtx's loop rather than calling it: flagged.
func Scan(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Gather is the shared-core shape: GatherCtx delegates to Gather for the
// nil-context fast path, so the pair is connected and neither is flagged.
func Gather(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// GatherCtx wraps Gather with cancellation: not flagged.
func GatherCtx(ctx context.Context, xs []int) (int, error) {
	if ctx == nil {
		return Gather(xs), nil
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return Gather(xs), nil
}

// EmitContext covers the Context naming convention; Emit delegates to it:
// not flagged.
func EmitContext(ctx context.Context, n int) (int, error) {
	if ctx != nil && ctx.Err() != nil {
		return 0, ctx.Err()
	}
	return n, nil
}

// Emit delegates to EmitContext: not flagged.
func Emit(n int) int {
	v, _ := EmitContext(nil, n)
	return v
}

// helperCtx is unexported: the consult rule applies to exported API only.
func helperCtx(ctx context.Context, n int) int {
	return n
}
