// Package mapdet exercises the map-iteration determinism analyzer: ranging
// over a map to append or print is flagged unless a sort follows in the
// same function.
package mapdet

import (
	"fmt"
	"slices"
	"sort"
)

// FlagAppend leaks map order into a slice and never sorts: flagged. This is
// the seeded regression shape — an unsorted map-range emit.
func FlagAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// FlagPrint leaks map order straight to output: flagged.
func FlagPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// OKSorted is the canonical deterministic shape: not flagged.
func OKSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OKSlices sorts with the slices package: not flagged.
func OKSlices(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	return vals
}

// OKSum is order-insensitive: not flagged.
func OKSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// OKSliceRange ranges over a slice, not a map: not flagged.
func OKSliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
