// Package apperr defines the module's typed error surface for the
// envelope fixture: types and sentinels the serve envelope must claim.
package apperr

import "errors"

// ParamError is matched by the serve envelope via errors.As: not flagged.
type ParamError struct{ Param string }

func (e *ParamError) Error() string { return "bad param " + e.Param }

// DriftError is constructed here but never matched in internal/serve's
// envelope, so it would fall through to a generic 500: flagged.
type DriftError struct{ Name string }

func (e *DriftError) Error() string { return "drift in " + e.Name }

// ErrStale is matched by the serve envelope through its re-export
// ErrStaleAlias; claiming any member of the alias group claims the group:
// not flagged.
var ErrStale = errors.New("stale")

// ErrStaleAlias re-exports ErrStale: not flagged (audited at the root).
var ErrStaleAlias = ErrStale

// ErrOrphan has no errors.Is case in the serve envelope: flagged.
var ErrOrphan = errors.New("orphan")

// internalErr is unexported plumbing, wrapped before it escapes the
// package, so the envelope owes it nothing: not flagged.
var internalErr = errors.New("internal detail")

// Wrap is the only way internalErr escapes.
func Wrap(op string) error {
	return errors.Join(internalErr, errors.New(op))
}
