// Package serve holds the envelope mapping the analyzer audits: every
// exported typed error and sentinel elsewhere in the module must have an
// errors.As / errors.Is claim here.
package serve

import (
	"errors"

	"fix/internal/apperr"
)

// Envelope maps typed errors onto (status, message) pairs.
func Envelope(err error) (int, string) {
	var pe *apperr.ParamError
	switch {
	case errors.As(err, &pe):
		return 400, pe.Error()
	case errors.Is(err, apperr.ErrStaleAlias):
		return 410, err.Error()
	}
	return 500, err.Error()
}
