// Package hotpath exercises the zero-alloc hot-path analyzer: inside a
// //mlvlsi:hotpath function, fmt calls, map/slice literals, string
// concatenation, and interface conversions are flagged; the same code in
// an unannotated function is not.
package hotpath

import "fmt"

type pair struct{ a, b int }

// HotBad violates every ban at least once. The seeded regression shape —
// a fmt.Sprintf in a hotpath function — is the first line.
//
//mlvlsi:hotpath
func HotBad(n int) string {
	s := fmt.Sprintf("%d", n)
	err := fmt.Errorf("n = %d", n)
	_ = err
	xs := []int{1, 2}
	m := map[int]int{1: 2}
	_, _ = xs, m
	s = s + "!"
	s += "?"
	var v any = any(n)
	_ = v
	return s
}

// HotClean uses only allocation-free (or pooled/reused) constructs: struct
// literals, make, append, arithmetic. Not flagged.
//
//mlvlsi:hotpath
func HotClean(xs []int) int {
	p := pair{a: 1, b: 2}
	buf := make([]int, 0, len(xs))
	buf = append(buf, p.a)
	for _, x := range xs {
		buf[0] += x
	}
	var e error = nil
	_ = e
	return buf[0] + p.b
}

// ColdOK does everything HotBad does without the directive: not flagged.
func ColdOK(n int) string {
	s := fmt.Sprintf("%d", n)
	xs := []int{1, 2}
	_ = xs
	return s + "!"
}
