// Package hotpath exercises the zero-alloc hot-path analyzer: inside a
// //mlvlsi:hotpath function, fmt calls, map/slice literals, string
// concatenation, and interface conversions are flagged; the same code in
// an unannotated function is not.
package hotpath

import "fmt"

type pair struct{ a, b int }

// HotBad violates every ban at least once. The seeded regression shape —
// a fmt.Sprintf in a hotpath function — is the first line.
//
//mlvlsi:hotpath
func HotBad(n int) string {
	s := fmt.Sprintf("%d", n)
	err := fmt.Errorf("n = %d", n)
	_ = err
	xs := []int{1, 2}
	m := map[int]int{1: 2}
	_, _ = xs, m
	s = s + "!"
	s += "?"
	var v any = any(n)
	_ = v
	return s
}

// HotClean uses only allocation-free (or pooled/reused) constructs: struct
// literals, make, append, arithmetic. Not flagged.
//
//mlvlsi:hotpath
func HotClean(xs []int) int {
	p := pair{a: 1, b: 2}
	buf := make([]int, 0, len(xs))
	buf = append(buf, p.a)
	for _, x := range xs {
		buf[0] += x
	}
	var e error = nil
	_ = e
	return buf[0] + p.b
}

// HotAppend grows capacity-less slices on every iteration of its loops —
// the append rule's flagged shape. Targets sized before the loop,
// pointer-deref targets (the caller owns their sizing), parameters, and
// appends behind a conditional (the rare path) are not flagged.
//
//mlvlsi:hotpath
func HotAppend(xs []int, out *[]int) int {
	var acc []int
	zero := make([]int, 0)
	sized := make([]int, 0, len(xs))
	for _, x := range xs {
		acc = append(acc, x)
		zero = append(zero, x)
		sized = append(sized, x) // not flagged: capacity preallocated
		*out = append(*out, x)   // not flagged: caller-owned target
		if x < 0 {
			acc = append(acc, -x) // not flagged: guarded, the rare path
		}
	}
	for i := 0; i < 2; i++ {
		xs = append(xs, i) // not flagged: parameter, caller sized it
	}
	acc = append(acc, 0) // not flagged: outside any loop
	return len(acc) + len(zero) + len(sized) + len(xs)
}

// ColdOK does everything HotBad does without the directive: not flagged.
func ColdOK(n int) string {
	s := fmt.Sprintf("%d", n)
	xs := []int{1, 2}
	for i := 0; i < n; i++ {
		xs = append(xs, i)
	}
	return s + "!"
}
