// Package fix exercises counter discipline: coordinator-side increments
// are legal, work-class increments inside par worker closures are not.
package fix

import (
	"fix/internal/obs"
	"fix/internal/par"
)

// Run drives the counters.
func Run(o *obs.Observer) {
	// Coordinator-side Add/Set is the discipline: not flagged.
	o.Add(obs.CounterBuilds, 1)
	o.Set(obs.CounterGhost, 2)
	par.Chunks(2, 2, func(i int) {
		// A work counter incremented per worker makes totals depend on
		// scheduling: flagged.
		o.Add(obs.CounterBuilds, 1)
		// Serve-class counters count scheduling events on purpose:
		// not flagged.
		o.Add(obs.CounterStalls, 1)
	})
}
