// Package par mirrors the worker-pool entry points the counterdiscipline
// analyzer treats as worker-closure boundaries.
package par

// Chunks fans f out over shards.
func Chunks(shards, workers int, f func(i int)) {
	for i := 0; i < shards; i++ {
		f(i)
	}
}
