// Package obs mirrors the module's counter registry shape: a closed
// Counter enum, a String registration switch, a Class bucketing (anything
// omitted is work-class and must stay deterministic across worker
// counts), and a nil-safe Observer.
package obs

// Counter identifies one metric.
type Counter int

const (
	// CounterBuilds is registered and incremented: not flagged.
	CounterBuilds Counter = iota
	// CounterOrphan is registered but never incremented: flagged.
	CounterOrphan
	// CounterGhost is incremented but missing from String: flagged.
	CounterGhost
	// CounterStalls is serve-class (listed in Class); incrementing it
	// inside a par worker closure is legal: not flagged.
	CounterStalls
	numCounters
)

func (c Counter) String() string {
	switch c {
	case CounterBuilds:
		return "builds"
	case CounterOrphan:
		return "orphan"
	case CounterStalls:
		return "stalls"
	}
	return "counter_unknown"
}

// Class buckets counters by how they may be counted.
type Class int

const (
	// ClassWork counters must be byte-identical across worker counts.
	ClassWork Class = iota
	// ClassServe counters measure scheduling on purpose.
	ClassServe
)

// Class reports a counter's bucket; anything unlisted is work-class.
func (c Counter) Class() Class {
	switch c {
	case CounterStalls:
		return ClassServe
	}
	return ClassWork
}

// Observer accumulates counters.
type Observer struct{ counts [int(numCounters)]int64 }

// Add increments a counter.
func (o *Observer) Add(c Counter, n int64) { o.counts[c] += n }

// Set overwrites a counter.
func (o *Observer) Set(c Counter, n int64) { o.counts[c] = n }
