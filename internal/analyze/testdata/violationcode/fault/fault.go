// Package fault mirrors the corruption harness's Class→Codes mapping.
package fault

import "fix/grid"

// Class enumerates corruption classes.
type Class int

// Overlap and Detach are the two wired-up classes.
const (
	Overlap Class = iota
	Detach
)

// Codes returns the violation reasons that count as detecting the class.
func (c Class) Codes() []grid.Reason {
	switch c {
	case Overlap:
		return []grid.Reason{grid.ReasonOverlap}
	case Detach:
		return []grid.Reason{grid.ReasonDetach}
	}
	return nil
}
