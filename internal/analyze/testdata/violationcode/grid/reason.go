// Package grid mirrors the verifier's typed violation reasons.
package grid

// Reason is a typed violation cause.
type Reason uint8

const (
	// ReasonNone is the zero sentinel: exempt from the mapping rule.
	ReasonNone Reason = iota
	// ReasonOverlap is claimed by a fault class: not flagged.
	ReasonOverlap
	// ReasonDetach is claimed by a fault class: not flagged.
	ReasonDetach
	// ReasonMissing is emitted by the checker but claimed by no fault
	// class: flagged.
	ReasonMissing
	// ReasonWaived is unclaimed but carries a declared exception:
	// suppressed, counted, reported.
	ReasonWaived //mlvlsi:allow violationcode (never emitted by the standard checkers)
)
