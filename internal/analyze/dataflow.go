package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Intra-procedural value-flow framework. The per-node analyzers (hotpath,
// goroutine, ...) match single AST shapes; the dataflow analyzers built
// here (arenaescape first) need to know where a value came FROM, which
// requires following def-use chains: a configured source expression
// introduces taint, assignments / slicing / indexing / address-taking /
// append / composite literals propagate it between the function's objects
// until a fixpoint, and configured sinks (writes into protected types,
// returns at protected result positions) report any flow that was not
// sanctioned. Each propagated taint carries the chain of hops that built
// it, so a finding can print the whole offending def-use path.
//
// Two deliberate limits keep this stdlib-only and fast:
//
//   - Path-insensitive: a value tainted on any control path counts as
//     tainted on all of them, and an if-condition that sanctions a flow
//     (for arenaescape: one consulting the scratch's transient flag)
//     sanctions both branches.
//   - Intra-procedural: taint never crosses a call. That matches how the
//     checked contracts are written — every build-path helper re-derives
//     scratch values from the *BuildScratch it was handed — and means a
//     helper's return is only a sink when its declared result type is
//     itself protected.

// valueStep is one hop in a def-use chain: where a value was produced or
// rebound, and a short rendering of the expression that carried it.
type valueStep struct {
	pos  token.Pos
	desc string
}

// valueTaint is the state attached to one tainted object: the hop chain
// back to the source, and whether the taint was introduced under a
// sanctioning guard (which legalizes every downstream sink).
type valueTaint struct {
	sanctioned bool
	chain      []valueStep
}

// maxChain bounds recorded def-use chains; hops past the cap are dropped
// (the source and earliest hops are the ones that matter in a message).
const maxChain = 8

// flowSpec configures one taint pass over a function.
type flowSpec struct {
	info *types.Info
	// source classifies an expression as a taint origin and names it.
	source func(expr ast.Expr) (string, bool)
	// sanctions reports whether an if-condition legalizes flows beneath it.
	sanctions func(cond ast.Expr) bool
	// sinkType reports whether values of t are protected results.
	sinkType func(t types.Type) bool
	// report receives each unsanctioned source-to-sink flow.
	report func(pos token.Pos, sink string, t *valueTaint)
}

// flowFunc runs the taint pass over one declared function: propagation
// passes until the object-taint map is stable, then one reporting pass
// over the sinks.
func flowFunc(spec *flowSpec, decl *ast.FuncDecl) {
	fn, ok := spec.info.Defs[decl.Name].(*types.Func)
	if !ok || decl.Body == nil {
		return
	}
	p := &flowPass{
		flowSpec: spec,
		taint:    map[types.Object]*valueTaint{},
		sig:      fn.Type().(*types.Signature),
	}
	// The chain length bound also bounds the iteration count: each pass
	// either taints a new object, extends sanctioning knowledge, or stops.
	for i := 0; i < maxChain+2; i++ {
		p.changed = false
		p.stmt(decl.Body, false)
		if !p.changed {
			break
		}
	}
	p.reporting = true
	p.stmt(decl.Body, false)
}

type flowPass struct {
	*flowSpec
	taint     map[types.Object]*valueTaint
	sig       *types.Signature // innermost function/literal signature
	changed   bool
	reporting bool
}

// stmt walks one statement; g is true inside a sanctioning guard.
func (p *flowPass) stmt(s ast.Stmt, g bool) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s2 := range x.List {
			p.stmt(s2, g)
		}
	case *ast.IfStmt:
		p.stmt(x.Init, g)
		p.funcLits(x.Cond, g)
		// Path-insensitive sanctioning: a condition consulting the guard
		// flag sanctions the whole statement, both branches.
		g2 := g || p.sanctions(x.Cond)
		p.stmt(x.Body, g2)
		p.stmt(x.Else, g2)
	case *ast.ForStmt:
		p.stmt(x.Init, g)
		p.funcLits(x.Cond, g)
		p.stmt(x.Post, g)
		p.stmt(x.Body, g)
	case *ast.RangeStmt:
		p.funcLits(x.X, g)
		if t := p.taintOf(x.X, g); t != nil {
			// Ranging over a tainted slice/array taints the element
			// binding (and the key, for maps of reference values; the
			// scalar cut in setTaint drops int indexes).
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					p.setTaint(p.info.ObjectOf(id), t, id.Name, id.Pos())
				}
			}
		}
		p.stmt(x.Body, g)
	case *ast.SwitchStmt:
		p.stmt(x.Init, g)
		p.funcLits(x.Tag, g)
		p.stmt(x.Body, g)
	case *ast.TypeSwitchStmt:
		p.stmt(x.Init, g)
		p.stmt(x.Assign, g)
		p.stmt(x.Body, g)
	case *ast.SelectStmt:
		p.stmt(x.Body, g)
	case *ast.CaseClause:
		for _, s2 := range x.Body {
			p.stmt(s2, g)
		}
	case *ast.CommClause:
		p.stmt(x.Comm, g)
		for _, s2 := range x.Body {
			p.stmt(s2, g)
		}
	case *ast.AssignStmt:
		p.assign(x, g)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				vs, ok := sp.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					p.funcLits(vs.Values[i], g)
					p.flow(name, vs.Values[i], g, name.Pos())
				}
			}
		}
	case *ast.ReturnStmt:
		p.ret(x, g)
	case *ast.ExprStmt:
		p.funcLits(x.X, g)
	case *ast.SendStmt:
		p.funcLits(x.Value, g)
	case *ast.DeferStmt:
		p.funcLits(x.Call, g)
	case *ast.GoStmt:
		p.funcLits(x.Call, g)
	case *ast.LabeledStmt:
		p.stmt(x.Stmt, g)
	}
}

// funcLits walks the bodies of any function literals inside e: closures
// share the enclosing function's objects, so their statements join the
// same pass (under the literal's own signature, for return sinks).
func (p *flowPass) funcLits(e ast.Expr, g bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		old := p.sig
		if sig, ok := p.info.TypeOf(lit).(*types.Signature); ok {
			p.sig = sig
		}
		p.stmt(lit.Body, g)
		p.sig = old
		return false
	})
}

func (p *flowPass) assign(x *ast.AssignStmt, g bool) {
	for _, r := range x.Rhs {
		p.funcLits(r, g)
	}
	if len(x.Lhs) != len(x.Rhs) {
		// Multi-value RHS is a call, map index, or type assertion; calls
		// cut taint by design and the others carry none to split.
		return
	}
	for i := range x.Lhs {
		p.flow(x.Lhs[i], x.Rhs[i], g, x.Lhs[i].Pos())
	}
}

// flow handles one lhs ← rhs pair: sink detection on protected
// destinations, then taint propagation to the destination's root object.
func (p *flowPass) flow(lhs, rhs ast.Expr, g bool, pos token.Pos) {
	t := p.taintOf(rhs, g)
	if t == nil {
		return
	}
	if p.reporting && !t.sanctioned && !g {
		if name, ok := p.sinkWrite(lhs); ok {
			p.report(pos, name, t)
		}
	}
	if root, desc := p.bindTarget(lhs); root != nil {
		p.setTaint(root, t, desc, lhs.Pos())
	}
}

func (p *flowPass) ret(x *ast.ReturnStmt, g bool) {
	for _, r := range x.Results {
		p.funcLits(r, g)
	}
	if p.sig == nil {
		return
	}
	res := p.sig.Results()
	switch {
	case len(x.Results) == res.Len():
		for i, r := range x.Results {
			t := p.taintOf(r, g)
			if t != nil && p.reporting && !t.sanctioned && !g && p.sinkType(res.At(i).Type()) {
				p.report(x.Pos(), "return "+exprString(r), t)
			}
		}
	case len(x.Results) == 0:
		// Bare return: named results carry whatever they were assigned.
		for i := 0; i < res.Len(); i++ {
			v := res.At(i)
			t := p.taint[v]
			if v.Name() != "" && t != nil && p.reporting && !t.sanctioned && !g && p.sinkType(v.Type()) {
				p.report(x.Pos(), "return "+v.Name(), t)
			}
		}
	}
}

// taintOf computes the taint carried by an expression, or nil.
func (p *flowPass) taintOf(e ast.Expr, g bool) *valueTaint {
	e = ast.Unparen(e)
	if typ := p.info.TypeOf(e); typ != nil && isScalarType(typ) {
		// Scalars copy by value; reading one off a tainted carrier does
		// not alias the source.
		return nil
	}
	if desc, ok := p.source(e); ok {
		return &valueTaint{sanctioned: g, chain: []valueStep{{e.Pos(), desc}}}
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := p.info.ObjectOf(x); obj != nil {
			return p.taint[obj]
		}
	case *ast.SelectorExpr:
		return p.taintOf(x.X, g)
	case *ast.IndexExpr:
		return p.taintOf(x.X, g)
	case *ast.SliceExpr:
		return p.taintOf(x.X, g)
	case *ast.StarExpr:
		return p.taintOf(x.X, g)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return p.taintOf(x.X, g)
		}
	case *ast.CompositeLit:
		var out *valueTaint
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			out = mergeTaint(out, p.taintOf(v, g))
		}
		return out
	case *ast.CallExpr:
		if tv, ok := p.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return p.taintOf(x.Args[0], g) // conversion: same backing memory
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := p.info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
				var out *valueTaint
				for _, a := range x.Args {
					out = mergeTaint(out, p.taintOf(a, g))
				}
				return out
			}
		}
		// Every other call cuts taint (intra-procedural by design; copy()
		// in statement position duplicates rather than aliases).
	}
	return nil
}

// sinkWrite reports whether lhs writes through a protected root: a field,
// element, or pointee of an object with a sink type. A bare identifier is
// only a local rebind, never a sink (escape happens at a field write or a
// protected return).
func (p *flowPass) sinkWrite(lhs ast.Expr) (string, bool) {
	if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return "", false
	}
	root := rootIdent(lhs)
	if root == nil {
		return "", false
	}
	obj := p.info.ObjectOf(root)
	if obj == nil || !p.sinkType(obj.Type()) {
		return "", false
	}
	return exprString(lhs), true
}

// bindTarget resolves the object an assignment binds taint to: the
// identifier itself, or the root of a field/element write (writing a
// tainted value into any part of x taints x).
func (p *flowPass) bindTarget(lhs ast.Expr) (types.Object, string) {
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return nil, ""
	}
	return p.info.ObjectOf(root), exprString(lhs)
}

// setTaint records taint on an object. First taint wins except that an
// unsanctioned flow overrides a sanctioned one (the conservative union of
// all paths); this also keeps chains from growing without bound.
func (p *flowPass) setTaint(obj types.Object, t *valueTaint, desc string, pos token.Pos) {
	if obj == nil || t == nil || isScalarType(obj.Type()) {
		return
	}
	if cur := p.taint[obj]; cur != nil && (!cur.sanctioned || t.sanctioned) {
		return
	}
	nt := &valueTaint{sanctioned: t.sanctioned, chain: t.chain}
	if len(t.chain) < maxChain && desc != "" {
		if n := len(t.chain); n == 0 || t.chain[n-1].desc != desc {
			nt.chain = append(append([]valueStep{}, t.chain...), valueStep{pos, desc})
		}
	}
	p.taint[obj] = nt
	p.changed = true
}

func mergeTaint(a, b *valueTaint) *valueTaint {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.sanctioned && !b.sanctioned:
		return b
	}
	return a
}

// isScalarType reports types whose values copy rather than alias: basic
// types and channels/functions (no memory an arena slab could back).
func isScalarType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Basic, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// rootIdent returns the base identifier of a selector / index / deref /
// address chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// renderChain formats a def-use chain for a finding message:
// "s.wires.take(...) (engine.go:393) -> lay.Wires (engine.go:393)".
func (m *Module) renderChain(t *valueTaint) string {
	parts := make([]string, 0, len(t.chain))
	for _, s := range t.chain {
		pos := m.Fset.Position(s.pos)
		parts = append(parts, fmt.Sprintf("%s (%s:%d)", s.desc, filepath.Base(pos.Filename), pos.Line))
	}
	return strings.Join(parts, " -> ")
}
