package analyze

import (
	"go/ast"
	"go/token"
	"strings"
)

// poolPackageSuffix identifies the one package allowed to start goroutines:
// the worker pool itself.
const poolPackageSuffix = "internal/par"

// goroutineAnalyzer enforces the first hard invariant: all parallelism
// flows through the internal/par pool. A raw go statement anywhere else
// escapes the pool's bounded fan-out, cooperative cancellation, and panic
// containment (a panic on a bare goroutine kills the process no matter
// what the caller recovers).
var goroutineAnalyzer = &Analyzer{
	Name: "goroutine",
	Doc:  "no raw go statements outside internal/par; use the par worker pool",
	Run: func(m *Module, report func(pos token.Pos, message string)) {
		for _, pkg := range m.Packages {
			if strings.HasSuffix(pkg.ImportPath, poolPackageSuffix) {
				continue
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						report(g.Pos(), "raw go statement outside internal/par; route fan-out through the par pool (par.Chunks/ForEach/ForEachCtx) so cancellation and panic containment stay total")
					}
					return true
				})
			}
		}
	},
}
