package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// poolPackageSuffix identifies the one package allowed to start arbitrary
// goroutines: the worker pool itself.
const poolPackageSuffix = "internal/par"

// httpOwnedPackageSuffix identifies the serving layer, where one narrow
// exception applies: a goroutine that drives a *net/http.Server (its accept
// loop) is owned by net/http — Shutdown/Close join it, the http server
// recovers handler panics, and request contexts carry cancellation — so the
// pool's guarantees are provided by the standard library instead. Any other
// goroutine there is still flagged.
const httpOwnedPackageSuffix = "internal/serve"

// goroutineAnalyzer enforces the first hard invariant: all parallelism
// flows through the internal/par pool. A raw go statement anywhere else
// escapes the pool's bounded fan-out, cooperative cancellation, and panic
// containment (a panic on a bare goroutine kills the process no matter
// what the caller recovers). The single exception is the serving layer's
// http accept loop — see httpOwnedPackageSuffix.
var goroutineAnalyzer = &Analyzer{
	Name: "goroutine",
	Doc:  "no raw go statements outside internal/par; use the par worker pool (internal/serve may spawn goroutines a *net/http.Server owns)",
	Run: func(m *Module, report func(pos token.Pos, message string)) {
		for _, pkg := range m.Packages {
			if strings.HasSuffix(pkg.ImportPath, poolPackageSuffix) {
				continue
			}
			httpOwned := strings.HasSuffix(pkg.ImportPath, httpOwnedPackageSuffix)
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if httpOwned {
						if callsHTTPServer(pkg, g) {
							return true
						}
						report(g.Pos(), "raw go statement in internal/serve that no *net/http.Server owns; drive the http server (Serve/Shutdown join it) or route fan-out through the par pool")
						return true
					}
					report(g.Pos(), "raw go statement outside internal/par; route fan-out through the par pool (par.Chunks/ForEach/ForEachCtx) so cancellation and panic containment stay total")
					return true
				})
			}
		}
	},
}

// callsHTTPServer reports whether the go statement's subtree calls a method
// on net/http's Server type — the signature of an accept-loop goroutine the
// http server owns and joins.
func callsHTTPServer(pkg *Package, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(g, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selInfo, ok := pkg.Info.Selections[sel]
		if !ok {
			return true
		}
		recv := selInfo.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return true
		}
		obj := named.Obj()
		if obj.Name() == "Server" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			found = true
		}
		return true
	})
	return found
}
