package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// envelopeAnalyzer keeps the serving layer's error envelope total: every
// exported typed error the module defines — error-implementing named types
// like *ParamError or *BudgetError, and exported error sentinels like
// ErrCanceled — must be claimed by an errors.As / errors.Is in the
// internal/serve package, where the envelope function maps typed failures
// onto stable HTTP statuses and kinds. A typed error nobody maps falls
// through to the generic 500 "internal" case, silently downgrading a
// structured rejection into an opaque server error; this analyzer makes
// adding a typed error without extending the envelope a lint failure.
//
// Two scoping rules keep the contract honest: types and sentinels defined
// in main packages (cmd/*, examples/*) are tooling-local and exempt, and
// so are ones defined inside internal/serve itself (its own plumbing).
// Sentinel re-exports (var ErrCanceled = par.ErrCanceled) form an alias
// group; claiming any member claims the group.
var envelopeAnalyzer = &Analyzer{
	Name: "envelope",
	Doc:  "every exported typed error and sentinel must be matched by errors.As/Is in internal/serve's envelope mapping",
	Run:  runEnvelope,
}

func runEnvelope(m *Module, report func(pos token.Pos, message string)) {
	var servePkg *Package
	for _, pkg := range m.Packages {
		if pkg.Types != nil && strings.HasSuffix(pkg.ImportPath, "internal/serve") {
			servePkg = pkg
			break
		}
	}
	if servePkg == nil {
		return // nothing serves errors; no envelope to keep total
	}
	claimedTypes, claimedObjs := envelopeClaims(servePkg)

	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	aliasRoot := sentinelAliases(m)
	// Alias-group claims: claiming any member claims the whole group.
	claimedRoots := map[types.Object]bool{}
	for obj := range claimedObjs {
		claimedRoots[rootSentinel(obj, aliasRoot)] = true
	}

	for _, pkg := range m.Packages {
		if pkg.Types == nil || pkg == servePkg || pkg.Types.Name() == "main" {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() {
				continue
			}
			switch o := obj.(type) {
			case *types.TypeName:
				if o.IsAlias() {
					continue // the aliased named type is audited at its definition
				}
				named, ok := o.Type().(*types.Named)
				if !ok || !implementsError(named, errIface) {
					continue
				}
				if !claimedTypes[o] {
					report(o.Pos(), fmt.Sprintf(
						"typed error %s.%s is not matched in internal/serve's envelope mapping; add an errors.As case so it cannot fall through to a generic 500",
						pkg.Types.Name(), o.Name()))
				}
			case *types.Var:
				if !types.Identical(o.Type(), errIface) && !implementsError(o.Type(), errIface) {
					continue
				}
				root := rootSentinel(o, aliasRoot)
				if root != o {
					continue // re-export: audited at the group root
				}
				if !claimedRoots[o] {
					report(o.Pos(), fmt.Sprintf(
						"error sentinel %s.%s is not matched in internal/serve's envelope mapping; add an errors.Is case so it cannot fall through to a generic 500",
						pkg.Types.Name(), o.Name()))
				}
			}
		}
	}
}

// envelopeClaims scans the serve package for errors.As / errors.Is calls
// and returns the claimed named-type objects and sentinel objects.
func envelopeClaims(pkg *Package) (map[*types.TypeName]bool, map[types.Object]bool) {
	claimedTypes := map[*types.TypeName]bool{}
	claimedObjs := map[types.Object]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "errors" {
				return true
			}
			switch sel.Sel.Name {
			case "As":
				if tn := claimedTypeName(pkg.Info.TypeOf(call.Args[1])); tn != nil {
					claimedTypes[tn] = true
				}
			case "Is":
				switch target := ast.Unparen(call.Args[1]).(type) {
				case *ast.Ident:
					if obj := pkg.Info.ObjectOf(target); obj != nil {
						claimedObjs[obj] = true
					}
				case *ast.SelectorExpr:
					if obj := pkg.Info.ObjectOf(target.Sel); obj != nil {
						claimedObjs[obj] = true
					}
				}
			}
			return true
		})
	}
	return claimedTypes, claimedObjs
}

// claimedTypeName strips the errors.As target's pointers down to the
// claimed named type: **T and *T both claim T.
func claimedTypeName(t types.Type) *types.TypeName {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj()
		case *types.Alias:
			t = types.Unalias(x)
		default:
			return nil
		}
	}
}

func implementsError(t types.Type, errIface *types.Interface) bool {
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// sentinelAliases maps each package-level error var initialized from
// another package-level var (a re-export like mlvlsi.ErrCanceled =
// par.ErrCanceled) to its initializer's object.
func sentinelAliases(m *Module) map[types.Object]types.Object {
	out := map[types.Object]types.Object{}
	for _, pkg := range m.Packages {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, sp := range gd.Specs {
					vs, ok := sp.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue
					}
					for i, name := range vs.Names {
						def := pkg.Info.ObjectOf(name)
						var init types.Object
						switch v := ast.Unparen(vs.Values[i]).(type) {
						case *ast.Ident:
							init = pkg.Info.ObjectOf(v)
						case *ast.SelectorExpr:
							init = pkg.Info.ObjectOf(v.Sel)
						}
						if def != nil && init != nil {
							if _, ok := init.(*types.Var); ok {
								out[def] = init
							}
						}
					}
				}
			}
		}
	}
	return out
}

// rootSentinel follows re-export links to the originally defined sentinel.
func rootSentinel(obj types.Object, alias map[types.Object]types.Object) types.Object {
	for i := 0; i < 8; i++ { // cycle guard
		next, ok := alias[obj]
		if !ok {
			return obj
		}
		obj = next
	}
	return obj
}
