package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// counterDisciplineAnalyzer keeps the observability counters honest. The
// internal/obs registry is a closed enum — every exported Counter constant
// must be (a) registered in Counter.String, or snapshots render it as
// counter_unknown, and (b) incremented somewhere (an Observer.Add or
// Observer.Set site), or it is dead weight that dashboards will chart as
// an eternal zero. On top of the registry audit, the analyzer pins the
// PR5 determinism invariant — work-class counter totals are byte-identical
// across worker counts — by banning Add/Set of a work-class counter
// lexically inside a function literal handed to the internal/par pool:
// per-worker increments of a deterministic counter make the totals depend
// on scheduling. Serve/timing/config-class counters (anything listed in
// Counter.Class) measure scheduling on purpose — pipeline stalls, queue
// depths — and are exempt.
//
// The worker-closure check is lexical (a literal that is an argument of a
// call into internal/par): that is the shape every pool dispatch in the
// tree uses, and a helper closure invoked from a worker is the
// coordinator's responsibility at its definition site.
var counterDisciplineAnalyzer = &Analyzer{
	Name: "counterdiscipline",
	Doc:  "every exported obs.Counter is registered in String and incremented somewhere; work-class counters never count inside par worker closures",
	Run:  runCounterDiscipline,
}

func runCounterDiscipline(m *Module, report func(pos token.Pos, message string)) {
	var obsPkg *Package
	for _, pkg := range m.Packages {
		if pkg.Types != nil && strings.HasSuffix(pkg.ImportPath, "internal/obs") {
			obsPkg = pkg
			break
		}
	}
	if obsPkg == nil {
		return
	}
	counterType, _ := obsPkg.Types.Scope().Lookup("Counter").(*types.TypeName)
	if counterType == nil {
		return
	}

	// The registry: every exported constant of type Counter.
	var counters []*types.Const
	scope := obsPkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && c.Exported() && namedTypeName(c.Type()) == "Counter" {
			counters = append(counters, c)
		}
	}
	registered := methodConstRefs(obsPkg, counterType, "String")
	classified := methodConstRefs(obsPkg, counterType, "Class")

	incremented := map[types.Object]bool{}
	for _, pkg := range m.Packages {
		if pkg.Types == nil {
			continue
		}
		// Increment sites, and the worker-closure rule.
		parLits := parWorkerLits(pkg)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				c := counterArg(pkg, n)
				if c == nil {
					return true
				}
				incremented[c] = true
				call := n.(*ast.CallExpr)
				if !classified[c] && inAnyLit(parLits, call.Pos()) {
					report(call.Pos(), fmt.Sprintf(
						"work counter %s is incremented inside a par worker closure; totals would depend on scheduling — count in the coordinator (or classify the counter in Counter.Class)",
						c.Name()))
				}
				return true
			})
		}
	}

	for _, c := range counters {
		if !registered[c] {
			report(c.Pos(), fmt.Sprintf(
				"counter %s is not registered in Counter.String; its snapshots would render as counter_unknown", c.Name()))
		}
		if !incremented[c] {
			report(c.Pos(), fmt.Sprintf(
				"counter %s is never incremented (no Observer.Add/Set site); wire it up or retire it", c.Name()))
		}
	}
}

// counterArg returns the Counter constant passed to an Observer.Add/Set
// call, or nil if n is not such a call.
func counterArg(pkg *Package, n ast.Node) *types.Const {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Add" && sel.Sel.Name != "Set") {
		return nil
	}
	if namedTypeName(pkg.Info.TypeOf(sel.X)) != "Observer" {
		return nil
	}
	var obj types.Object
	switch a := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		obj = pkg.Info.ObjectOf(a)
	case *ast.SelectorExpr:
		obj = pkg.Info.ObjectOf(a.Sel)
	}
	c, ok := obj.(*types.Const)
	if !ok || namedTypeName(c.Type()) != "Counter" {
		return nil
	}
	return c
}

// methodConstRefs collects the Counter constants referenced in the body of
// the named method on the Counter type (String for registration, Class for
// the scheduling-dependent classification; anything Class omits defaults
// to work-class).
func methodConstRefs(pkg *Package, counter *types.TypeName, method string) map[types.Object]bool {
	refs := map[types.Object]bool{}
	eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Name.Name != method || fd.Recv == nil || len(fd.Recv.List) != 1 {
			return
		}
		if namedTypeName(pkg.Info.TypeOf(fd.Recv.List[0].Type)) != counter.Name() {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if c, ok := pkg.Info.Uses[id].(*types.Const); ok && namedTypeName(c.Type()) == counter.Name() {
				refs[c] = true
			}
			return true
		})
	})
	return refs
}

// litRange is the source extent of one par worker literal.
type litRange struct{ lo, hi token.Pos }

// parWorkerLits finds every function literal passed directly as an
// argument to a call into the internal/par package.
func parWorkerLits(pkg *Package) []litRange {
	var lits []litRange
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok || !strings.HasSuffix(pn.Imported().Path(), "internal/par") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					lits = append(lits, litRange{lit.Pos(), lit.End()})
				}
			}
			return true
		})
	}
	return lits
}

func inAnyLit(lits []litRange, pos token.Pos) bool {
	for _, r := range lits {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}
