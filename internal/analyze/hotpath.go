package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathAnalyzer enforces the zero-allocation property of functions marked
// //mlvlsi:hotpath (the dense checker core, Wires.measure, the occupancy
// indexer, the pool's chunking). The dense verifier's 35x win over the map
// path is a constant-factor result — exactly the kind the source paper
// fights for — and one fmt.Sprintf per edge erases it. Inside a marked
// function (including nested function literals) the analyzer bans:
//
//   - calls into package fmt (every variant formats through reflection and
//     allocates);
//   - composite map and slice literals (each evaluation allocates; struct
//     and array literals are fine);
//   - string concatenation via + or += (allocates the joined string);
//   - explicit conversions of non-interface values to interface types
//     (boxes the value onto the heap);
//   - append on every loop iteration onto a slice the function declared
//     without capacity (each doubling reallocates and copies; size the
//     slice before the loop or draw it from a scratch slab). Targets that
//     are parameters, outer-scope variables, or pointer dereferences are
//     the caller's to size, and appends behind a conditional are the rare
//     path (violations, contested slots); neither is flagged.
//
// The directive is a contract, not a heuristic: annotate only functions
// whose legal path must stay allocation-free, and keep cold error handling
// in unannotated helpers.
var hotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "no fmt calls, map/slice literals, string concatenation, interface conversions, or capacity-less loop appends in //mlvlsi:hotpath functions",
	Run: func(m *Module, report func(pos token.Pos, message string)) {
		for _, pkg := range m.Packages {
			eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
				if isHotpath(fd) {
					checkHotBody(pkg, fd, report)
					checkAppendGrowth(pkg, fd, report)
				}
			})
		}
	},
}

func checkHotBody(pkg *Package, fd *ast.FuncDecl, report func(pos token.Pos, message string)) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
						report(n.Pos(), fmt.Sprintf("fmt.%s call in hotpath function %s allocates; format lazily outside the hot path (cf. Violation's coded reasons)", sel.Sel.Name, name))
					}
				}
			}
			if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.IsType() {
				checkInterfaceConversion(pkg, n, name, report)
			}
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), fmt.Sprintf("map literal in hotpath function %s allocates; hoist it to a package variable or an unannotated cold path", name))
				case *types.Slice:
					report(n.Pos(), fmt.Sprintf("slice literal in hotpath function %s allocates; reuse a scratch buffer or move it off the hot path", name))
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pkg, n.X) {
				report(n.Pos(), fmt.Sprintf("string concatenation in hotpath function %s allocates; use coded values and format lazily", name))
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pkg, n.Lhs[0]) {
				report(n.Pos(), fmt.Sprintf("string concatenation in hotpath function %s allocates; use coded values and format lazily", name))
			}
		}
		return true
	})
}

// checkInterfaceConversion flags explicit conversions T(x) where T is an
// interface type and x is not already an interface.
func checkInterfaceConversion(pkg *Package, call *ast.CallExpr, name string, report func(pos token.Pos, message string)) {
	if len(call.Args) != 1 {
		return
	}
	target, ok := pkg.Info.Types[call.Fun]
	if !ok || target.Type == nil {
		return
	}
	if !types.IsInterface(target.Type) {
		return
	}
	arg, ok := pkg.Info.Types[call.Args[0]]
	if ok && arg.Type != nil && !types.IsInterface(arg.Type) {
		report(call.Pos(), fmt.Sprintf("conversion to interface type %s in hotpath function %s boxes its operand onto the heap; keep hot-path values concrete", target.Type.String(), name))
	}
}

// checkAppendGrowth flags `x = append(x, ...)` that runs on every iteration
// of a for or range loop when x is a slice this function declared without
// preallocated capacity (`var x []T`, an empty literal, or a zero-capacity
// make). Such a loop reallocates on every doubling — the exact allocation
// profile the arena slabs exist to remove. Three shapes are deliberately
// exempt: targets sized up front; targets the caller owns (a parameter, an
// outer-scope variable, a pointer dereference like `*out = append(*out,
// ...)`); and appends nested under an if/switch/select inside the loop,
// which are the rare path — a violation or contested slot — where the legal
// path never allocates and lazy growth is the right call.
func checkAppendGrowth(pkg *Package, fd *ast.FuncDecl, report func(pos token.Pos, message string)) {
	name := fd.Name.Name
	// Pass 1: local slice variables declared without capacity.
	noCap := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					obj := pkg.Info.Defs[id]
					if obj == nil || !isSliceVar(obj) {
						continue
					}
					if len(vs.Values) == 0 || (i < len(vs.Values) && isCapacityless(pkg, vs.Values[i])) {
						noCap[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj != nil && isSliceVar(obj) && isCapacityless(pkg, n.Rhs[i]) {
					noCap[obj] = true
				}
			}
		}
		return true
	})
	if len(noCap) == 0 {
		return
	}
	// Pass 2: unconditional appends onto those variables inside loop bodies.
	// The outer walk visits every loop, nested ones included, so each body
	// scan stops at conditionals (the rare path) and at nested loops (they
	// get their own scan, against their own per-iteration cost).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			switch m.(type) {
			case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
				*ast.SelectStmt, *ast.ForStmt, *ast.RangeStmt:
				return false
			}
			as, ok := m.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pkg, call) || len(call.Args) == 0 {
				return true
			}
			arg, ok := call.Args[0].(*ast.Ident)
			obj := pkg.Info.Uses[id]
			if !ok || obj == nil || pkg.Info.Uses[arg] != obj {
				return true
			}
			if noCap[obj] {
				report(as.Pos(), fmt.Sprintf("append grows %s on every iteration of a loop in hotpath function %s without preallocated capacity; size it before the loop or draw it from a scratch slab", id.Name, name))
			}
			return true
		})
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := pkg.Info.Uses[id].(*types.Builtin)
	return builtin
}

// isSliceVar reports whether obj is a variable of slice type.
func isSliceVar(obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	_, ok := obj.Type().Underlying().(*types.Slice)
	return ok
}

// isCapacityless reports whether expr initializes a slice with no usable
// capacity: nil, an empty slice literal, or make with a constant-zero
// length and no capacity argument. A make with a nonzero or non-constant
// size, a slicing expression, or any call result counts as sized — the
// capacity decision happened elsewhere.
func isCapacityless(pkg *Package, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		tv, ok := pkg.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) != 2 {
			return false
		}
		if _, builtin := pkg.Info.Uses[id].(*types.Builtin); !builtin {
			return false
		}
		tv, ok := pkg.Info.Types[e.Args[1]]
		return ok && tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

func isStringExpr(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
