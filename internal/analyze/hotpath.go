package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathAnalyzer enforces the zero-allocation property of functions marked
// //mlvlsi:hotpath (the dense checker core, Wires.measure, the occupancy
// indexer, the pool's chunking). The dense verifier's 35x win over the map
// path is a constant-factor result — exactly the kind the source paper
// fights for — and one fmt.Sprintf per edge erases it. Inside a marked
// function (including nested function literals) the analyzer bans:
//
//   - calls into package fmt (every variant formats through reflection and
//     allocates);
//   - composite map and slice literals (each evaluation allocates; struct
//     and array literals are fine);
//   - string concatenation via + or += (allocates the joined string);
//   - explicit conversions of non-interface values to interface types
//     (boxes the value onto the heap).
//
// The directive is a contract, not a heuristic: annotate only functions
// whose legal path must stay allocation-free, and keep cold error handling
// in unannotated helpers.
var hotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "no fmt calls, map/slice literals, string concatenation, or interface conversions in //mlvlsi:hotpath functions",
	Run: func(m *Module, report func(pos token.Pos, message string)) {
		for _, pkg := range m.Packages {
			eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
				if isHotpath(fd) {
					checkHotBody(pkg, fd, report)
				}
			})
		}
	},
}

func checkHotBody(pkg *Package, fd *ast.FuncDecl, report func(pos token.Pos, message string)) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
						report(n.Pos(), fmt.Sprintf("fmt.%s call in hotpath function %s allocates; format lazily outside the hot path (cf. Violation's coded reasons)", sel.Sel.Name, name))
					}
				}
			}
			if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.IsType() {
				checkInterfaceConversion(pkg, n, name, report)
			}
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), fmt.Sprintf("map literal in hotpath function %s allocates; hoist it to a package variable or an unannotated cold path", name))
				case *types.Slice:
					report(n.Pos(), fmt.Sprintf("slice literal in hotpath function %s allocates; reuse a scratch buffer or move it off the hot path", name))
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pkg, n.X) {
				report(n.Pos(), fmt.Sprintf("string concatenation in hotpath function %s allocates; use coded values and format lazily", name))
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pkg, n.Lhs[0]) {
				report(n.Pos(), fmt.Sprintf("string concatenation in hotpath function %s allocates; use coded values and format lazily", name))
			}
		}
		return true
	})
}

// checkInterfaceConversion flags explicit conversions T(x) where T is an
// interface type and x is not already an interface.
func checkInterfaceConversion(pkg *Package, call *ast.CallExpr, name string, report func(pos token.Pos, message string)) {
	if len(call.Args) != 1 {
		return
	}
	target, ok := pkg.Info.Types[call.Fun]
	if !ok || target.Type == nil {
		return
	}
	if !types.IsInterface(target.Type) {
		return
	}
	arg, ok := pkg.Info.Types[call.Args[0]]
	if ok && arg.Type != nil && !types.IsInterface(arg.Type) {
		report(call.Pos(), fmt.Sprintf("conversion to interface type %s in hotpath function %s boxes its operand onto the heap; keep hot-path values concrete", target.Type.String(), name))
	}
}

func isStringExpr(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
