package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// arenaEscapeAnalyzer enforces the arena ownership contract (DESIGN §9):
// memory carved from a BuildScratch — a slab take() result or a pointer
// into the scratch itself — must never flow into a Layout / Wires / Result
// value or be returned at such a position, unless the flow happens on a
// transient-mode path (a branch consulting the scratch's transient flag,
// where the caller has opted into scratch-backed results that die at the
// next build). The engine's differential tests catch an escape only when
// a reused scratch happens to corrupt a compared layout; this analyzer
// catches the alias itself, at the write, with the def-use chain that
// carried it. Scalars loaded off scratch memory (an int read from a slab
// slice) copy by value and are exempt.
//
// The tracking is intra-procedural and path-insensitive (see dataflow.go),
// which is exactly the strength the contract needs: every build-path
// helper takes the *BuildScratch it draws from as a parameter, so each
// escape is visible inside one function.
var arenaEscapeAnalyzer = &Analyzer{
	Name: "arenaescape",
	Doc:  "scratch-backed memory must not reach Layout/Wires/Result values outside a transient-mode path",
	Run:  runArenaEscape,
}

// arenaSinkNames are the protected result types, matched by name so the
// contract follows the types through the public aliases (mlvlsi.Layout =
// layout.Layout) and applies to fixtures.
var arenaSinkNames = map[string]bool{
	"Layout": true,
	"Result": true,
	"Wires":  true,
	"Wire":   true,
}

func runArenaEscape(m *Module, report func(pos token.Pos, message string)) {
	for _, pkg := range m.Packages {
		if pkg.Types == nil {
			continue
		}
		info := pkg.Info
		spec := &flowSpec{
			info:      info,
			source:    func(e ast.Expr) (string, bool) { return arenaSource(info, e) },
			sanctions: mentionsTransient,
			sinkType:  isArenaSinkType,
			report: func(pos token.Pos, sink string, t *valueTaint) {
				report(pos, fmt.Sprintf(
					"scratch-backed memory reaches %s outside a transient-mode path (def-use: %s -> %s); copy into fresh memory or guard the hand-off with the scratch's transient flag",
					sink, m.renderChain(t), sink))
			},
		}
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			flowFunc(spec, fd)
		})
	}
}

// arenaSource classifies the two ways scratch memory enters circulation:
// a take() call on a slab reached through a BuildScratch, and taking the
// address of a field of the scratch itself (&s.lay).
func arenaSource(info *types.Info, e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.CallExpr:
		sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "take" && chainRootIsScratch(info, sel.X) {
			return exprString(x), true
		}
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			break
		}
		sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr)
		if ok && chainRootIsScratch(info, sel.X) {
			return exprString(x), true
		}
	}
	return "", false
}

// chainRootIsScratch walks a selector/index chain to its base expression
// and reports whether that base is a BuildScratch (or pointer to one).
func chainRootIsScratch(info *types.Info, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if isScratchType(info.TypeOf(x.X)) {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return isScratchType(info.TypeOf(e))
		}
	}
}

func isScratchType(t types.Type) bool {
	return namedTypeName(t) == "BuildScratch"
}

// isArenaSinkType reports the protected result types, looking through
// pointers, slices, and arrays (a *Layout, a []Wire, and a Wires are all
// protected destinations).
func isArenaSinkType(t types.Type) bool {
	return arenaSinkNames[namedTypeName(t)]
}

// namedTypeName unwraps pointers/slices/arrays and returns the named
// type's name, or "".
func namedTypeName(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Array:
			t = x.Elem()
		case *types.Named:
			return x.Obj().Name()
		case *types.Alias:
			t = types.Unalias(x)
		default:
			return ""
		}
	}
}

// mentionsTransient reports whether an if-condition consults the
// transient flag (the `s != nil && s.transient` guard shape, or a
// Transient() accessor). The match is lexical by design: the guard is a
// contract marker, and a dedicated flag read is what the contract's
// sanctioned branch looks like.
func mentionsTransient(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "transient" || x.Sel.Name == "Transient" {
				found = true
			}
		case *ast.Ident:
			if x.Name == "transient" {
				found = true
			}
		}
		return !found
	})
	return found
}
