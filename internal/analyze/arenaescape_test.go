package analyze

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestArenaEscapeCatchesEngineMutation is the acceptance check for the
// arena ownership contract: deliberately aliasing a scratch slice into the
// engine's result outside the transient guard must produce an arenaescape
// finding whose message carries the offending def-use chain. The mutation
// is applied to a temporary copy of the module so the real tree stays
// clean (TestModuleClean proves the unmutated tree has no findings).
func TestArenaEscapeCatchesEngineMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks the whole module")
	}
	tmp := t.TempDir()
	copyModule(t, "../..", tmp)

	enginePath := filepath.Join(tmp, "internal/core/engine.go")
	src, err := os.ReadFile(enginePath)
	if err != nil {
		t.Fatal(err)
	}
	// Re-alias the result's wire slice to scratch memory right before the
	// engine returns, outside any transient guard — the exact bug class
	// the analyzer exists for.
	const anchor = "\treturn lay, geom, nil"
	mutation := "\tif s != nil {\n\t\tlay.Wires = s.wires.take(1, false)\n\t}\n" + anchor
	if !strings.Contains(string(src), anchor) {
		t.Fatalf("engine.go no longer contains %q; update the mutation anchor", anchor)
	}
	mutated := strings.Replace(string(src), anchor, mutation, 1)
	if err := os.WriteFile(enginePath, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := Load(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range m.Packages {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("mutated module must still type-check, got: %v", terr)
		}
	}
	rep := Run(m, []*Analyzer{arenaEscapeAnalyzer})
	var hit bool
	for _, f := range rep.Findings {
		if f.Pos.Filename != "internal/core/engine.go" {
			t.Errorf("unexpected finding outside engine.go: %s", f)
			continue
		}
		if strings.Contains(f.Message, "s.wires.take") && strings.Contains(f.Message, "->") &&
			strings.Contains(f.Message, "lay.Wires") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("mutated engine produced no arenaescape finding naming the s.wires.take -> lay.Wires chain; findings: %v", rep.Findings)
	}
}

// copyModule copies the module's go.mod and non-test Go sources into dst,
// skipping testdata (fixture modules), dot-directories, and build
// artifacts, so the copy type-checks exactly like the original.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if rel != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") && d.Name() != "go.mod" {
			return nil
		}
		if strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
