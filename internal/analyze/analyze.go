package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Pos locates the finding (filename is absolute at load time; Report
	// rewrites it relative to the module root).
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the invariant breach and how to fix it.
	Message string
	// Suppressed marks findings covered by a //mlvlsi:allow directive; they
	// are counted and reported but do not fail the lint.
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// An Analyzer checks one invariant across the whole module. Run reports
// findings through report; suppression and ordering are handled by the
// framework.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// //mlvlsi:allow directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects the module and reports findings.
	Run func(m *Module, report func(pos token.Pos, message string))
}

// Analyzers returns the full analyzer set, in name order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		arenaEscapeAnalyzer,
		counterDisciplineAnalyzer,
		ctxflowAnalyzer,
		envelopeAnalyzer,
		goroutineAnalyzer,
		hotpathAnalyzer,
		mapDeterminismAnalyzer,
		violationCodeAnalyzer,
	}
}

// ByName resolves an analyzer by name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Report is the outcome of running analyzers over a module: the active
// findings (which should fail a build) and the suppressed ones (declared
// exceptions, reported for visibility).
type Report struct {
	// Findings holds the active findings in (file, line, analyzer) order.
	Findings []Finding
	// Suppressed holds the findings covered by //mlvlsi:allow directives.
	Suppressed []Finding
}

// Run executes the analyzers over the module and splits the findings by
// suppression state. Finding positions are rewritten relative to the module
// root so output is stable across checkouts.
func Run(m *Module, analyzers []*Analyzer) Report {
	allow := m.allowDirectives()
	var rep Report
	for _, a := range analyzers {
		name := a.Name
		a.Run(m, func(pos token.Pos, message string) {
			p := m.Fset.Position(pos)
			f := Finding{Pos: p, Analyzer: name, Message: message}
			if rel, err := filepath.Rel(m.Root, p.Filename); err == nil {
				f.Pos.Filename = filepath.ToSlash(rel)
			}
			if allow.covers(f.Pos.Filename, f.Pos.Line, name) {
				f.Suppressed = true
				rep.Suppressed = append(rep.Suppressed, f)
			} else {
				rep.Findings = append(rep.Findings, f)
			}
		})
	}
	sortFindings(rep.Findings)
	sortFindings(rep.Suppressed)
	return rep
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Pos.Filename != fs[j].Pos.Filename {
			return fs[i].Pos.Filename < fs[j].Pos.Filename
		}
		if fs[i].Pos.Line != fs[j].Pos.Line {
			return fs[i].Pos.Line < fs[j].Pos.Line
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Message < fs[j].Message
	})
}

// Source directives. Both use the compiler-directive comment shape (no
// space after //):
//
//	//mlvlsi:hotpath
//	    marks the following function declaration as a zero-alloc hot path;
//	    the hotpath analyzer bans allocation-prone constructs inside it.
//
//	//mlvlsi:allow <analyzer> [rationale...]
//	    declares an intentional exception: findings of the named analyzer
//	    on this comment's line or the line below are suppressed (counted
//	    and reported, never silent).
const (
	hotpathDirective = "//mlvlsi:hotpath"
	allowDirective   = "//mlvlsi:allow"
)

// isHotpath reports whether fn carries the //mlvlsi:hotpath directive in
// its doc comment.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// allowSet indexes //mlvlsi:allow directives: module-relative filename →
// line → analyzer names allowed on that line.
type allowSet map[string]map[int][]string

// covers reports whether a finding of analyzer at file:line is suppressed:
// an allow directive on the finding's own line (trailing comment) or on the
// line directly above it (own-line comment) covers it.
func (s allowSet) covers(file string, line int, analyzer string) bool {
	lines := s[file]
	for _, l := range [...]int{line, line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// allowDirectives scans every file's comments for //mlvlsi:allow.
func (m *Module) allowDirectives() allowSet {
	set := allowSet{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, allowDirective+" ")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					file := pos.Filename
					if rel, err := filepath.Rel(m.Root, file); err == nil {
						file = filepath.ToSlash(rel)
					}
					if set[file] == nil {
						set[file] = map[int][]string{}
					}
					set[file][pos.Line] = append(set[file][pos.Line], fields[0])
				}
			}
		}
	}
	return set
}

// eachFunc invokes fn for every function declaration in the package that
// has a body.
func eachFunc(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}
