package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapDeterminismAnalyzer enforces the second hard invariant: verifier and
// tooling output is byte-identical across worker counts and runs. Go map
// iteration order is deliberately randomized, so a range over a map whose
// body accumulates ordered output — appending to a slice (violation lists,
// spec lines) or printing — produces a different byte stream every run
// unless the function sorts afterwards. The analyzer flags such loops when
// no sort.*/slices.Sort* call follows the loop in the same function.
//
// The canonical deterministic shape passes clean:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)               // or slices.Sort(keys)
//
// Order-insensitive bodies (summing, counting, building another map) are
// never flagged.
var mapDeterminismAnalyzer = &Analyzer{
	Name: "mapdeterminism",
	Doc:  "ranging over a map to append or print requires a subsequent sort in the same function",
	Run: func(m *Module, report func(pos token.Pos, message string)) {
		for _, pkg := range m.Packages {
			eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
				checkMapRanges(pkg, fd, report)
			})
		}
	},
}

func checkMapRanges(pkg *Package, fd *ast.FuncDecl, report func(pos token.Pos, message string)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapExpr(pkg, rs.X) {
			return true
		}
		kind, ok := orderSensitiveUse(pkg, rs.Body)
		if !ok {
			return true
		}
		if sortedAfter(pkg, fd.Body, rs.End()) {
			return true
		}
		report(rs.Pos(), fmt.Sprintf("range over map %s %s in nondeterministic iteration order with no subsequent sort.* call in %s; collect and sort (or iterate sorted keys) so output is byte-identical across runs", exprString(rs.X), kind, fd.Name.Name))
		return true
	})
}

func isMapExpr(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderSensitiveUse reports whether the loop body leaks iteration order:
// appending to a slice or emitting output through fmt.
func orderSensitiveUse(pkg *Package, body *ast.BlockStmt) (string, bool) {
	kind, found := "", false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				kind, found = "appends", true
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" && strings.Contains(sel.Sel.Name, "rint") {
					kind, found = "prints", true
					return false
				}
			}
		}
		return true
	})
	return kind, found
}

// sortedAfter reports whether a call into package sort, or a slices.Sort*
// call, appears after position end within the function body.
func sortedAfter(pkg *Package, body *ast.BlockStmt, end token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= end {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(sel.Sel.Name, "Sort") {
				found = true
			}
		}
		return true
	})
	return found
}

// exprString renders a short source form of an expression for messages.
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return "&" + exprString(e.X)
		}
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "expression"
}
