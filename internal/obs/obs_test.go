package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeObserver returns an observer whose clock advances by step on every
// reading, making span timestamps and durations deterministic.
func fakeObserver(step time.Duration, sinks ...Sink) *Observer {
	o := New(sinks...)
	var t time.Duration
	o.now = func() time.Duration {
		t += step
		return t
	}
	return o
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.Add(WiresRealized, 5)
	o.Set(WorkerCount, 3)
	if m := o.Snapshot(); m.Get(WiresRealized) != 0 {
		t.Fatalf("nil observer snapshot not zero: %+v", m)
	}
	if m := o.Flush(); m.Get(WorkerCount) != 0 {
		t.Fatalf("nil observer flush not zero: %+v", m)
	}
	sp := o.StartSpan("root")
	if sp != nil {
		t.Fatalf("nil observer returned a non-nil span")
	}
	child := sp.Child("child").SetAttr("k", 1)
	if child != nil {
		t.Fatalf("nil span Child/SetAttr returned non-nil")
	}
	if d := child.End(); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
	if child.Observer() != nil {
		t.Fatalf("nil span Observer() not nil")
	}
}

func TestNilObserverZeroAllocs(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(100, func() {
		sp := o.StartSpan("root")
		c := sp.Child("child")
		c.SetAttr("k", 1)
		o.Add(UnitEdgesChecked, 10)
		o.Set(WorkerCount, 4)
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled observer allocates: %v allocs/op", allocs)
	}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	sink := NewMetricsSink()
	o := fakeObserver(time.Microsecond, sink)

	root := o.StartSpan("build")
	a := root.Child("placement")
	a.End()
	b := root.Child("routing")
	bb := b.Child("tracks")
	bb.End()
	b.End()
	root.SetAttr("rows", 4).End()

	spans := sink.Spans()
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	// Sinks see spans in end order: children before their parents.
	want := []string{"placement", "tracks", "routing", "build"}
	if len(names) != len(want) {
		t.Fatalf("got spans %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("span order %v, want %v", names, want)
		}
	}

	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["placement"].Parent != byName["build"].ID {
		t.Errorf("placement parent = %d, want build's id %d", byName["placement"].Parent, byName["build"].ID)
	}
	if byName["tracks"].Parent != byName["routing"].ID {
		t.Errorf("tracks parent = %d, want routing's id %d", byName["tracks"].Parent, byName["routing"].ID)
	}
	if byName["build"].Parent != 0 {
		t.Errorf("root has parent %d, want 0", byName["build"].Parent)
	}
	if len(byName["build"].Attrs) != 1 || byName["build"].Attrs[0] != (Attr{Key: "rows", Val: 4}) {
		t.Errorf("build attrs = %v", byName["build"].Attrs)
	}
	// IDs are unique.
	seen := map[uint64]bool{}
	for _, s := range spans {
		if s.ID == 0 || seen[s.ID] {
			t.Fatalf("span id %d zero or duplicated", s.ID)
		}
		seen[s.ID] = true
	}
	// The fake clock ticks once per reading, so every span has dur > 0 and
	// children start after their parents.
	for _, s := range spans {
		if s.Dur <= 0 {
			t.Errorf("span %s has dur %v", s.Name, s.Dur)
		}
	}
	if byName["placement"].Start <= byName["build"].Start {
		t.Errorf("child started before parent")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	sink := NewMetricsSink()
	o := fakeObserver(time.Microsecond, sink)
	sp := o.StartSpan("once")
	d1 := sp.End()
	if d1 <= 0 {
		t.Fatalf("first End = %v, want > 0", d1)
	}
	if d2 := sp.End(); d2 != 0 {
		t.Fatalf("second End = %v, want 0", d2)
	}
	if n := len(sink.Spans()); n != 1 {
		t.Fatalf("double End delivered %d spans, want 1", n)
	}
}

func TestCountersConcurrent(t *testing.T) {
	o := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o.Add(UnitEdgesChecked, 2)
			}
		}()
	}
	wg.Wait()
	if got := o.Snapshot().Get(UnitEdgesChecked); got != workers*per*2 {
		t.Fatalf("concurrent adds lost updates: %d, want %d", got, workers*per*2)
	}
}

func TestFlushDeliversSnapshot(t *testing.T) {
	sink := NewMetricsSink()
	o := New(sink)
	o.Add(WiresRealized, 7)
	o.Set(WorkerCount, 2)
	if _, ok := sink.Metrics(); ok {
		t.Fatalf("sink flushed before Flush")
	}
	m := o.Flush()
	got, ok := sink.Metrics()
	if !ok {
		t.Fatalf("Flush did not reach the sink")
	}
	if got != m || got.Get(WiresRealized) != 7 || got.Get(WorkerCount) != 2 {
		t.Fatalf("sink snapshot %+v, want %+v", got, m)
	}
}

func TestCounterNamesAndClasses(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if name == "" || name == "counter_unknown" {
			t.Errorf("counter %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if Counter(200).String() != "counter_unknown" {
		t.Errorf("out-of-range counter name = %q", Counter(200).String())
	}
	for c, want := range map[Counter]Class{
		WiresRealized:      ClassWork,
		UnitEdgesChecked:   ClassWork,
		DenseChecks:        ClassWork,
		SparseChecks:       ClassWork,
		CellsPlanned:       ClassWork,
		CellsAllocated:     ClassWork,
		BudgetHeadroom:     ClassConfig,
		WorkerCount:        ClassConfig,
		MergeNanos:         ClassTiming,
		CacheHits:          ClassServe,
		CacheMisses:        ClassServe,
		CacheEvictions:     ClassServe,
		CacheInflightWaits: ClassServe,
		CacheBytes:         ClassServe,
		QueueDepth:         ClassServe,
		QueueMaxDepth:      ClassServe,
		ShedQueueFull:      ClassServe,
		ShedDeadline:       ClassServe,
		ShedDraining:       ClassServe,
		DegradedServed:     ClassServe,
		PanicsRecovered:    ClassServe,
		ClientRetries:      ClassServe,
		BreakerOpens:       ClassServe,
		ChaosInjected:      ClassServe,
	} {
		if c.Class() != want {
			t.Errorf("%s.Class() = %d, want %d", c, c.Class(), want)
		}
	}
}
