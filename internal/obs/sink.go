package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// traceEvent is one line of the Chrome trace event format
// (chrome://tracing, also readable by Perfetto). Spans are "X" (complete)
// events with microsecond timestamps; the counter snapshot is a single "C"
// event written at flush time.
type traceEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`
	Dur  float64          `json:"dur"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	ID   uint64           `json:"id,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

// micros converts a duration to the trace format's microsecond unit,
// keeping sub-microsecond resolution as a fraction.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// TraceSink writes spans as a Chrome-trace JSON array, one event per line,
// suitable for loading into chrome://tracing or Perfetto. Events stream out
// as spans end; Flush appends the counter snapshot as a "C" event and the
// closing bracket, making the file a strictly valid JSON document. A file
// from an aborted run that never flushed lacks the bracket but still loads:
// the trace format explicitly tolerates a missing terminator.
type TraceSink struct {
	mu     sync.Mutex
	w      io.Writer
	err    error
	wrote  bool // array bracket and at least one event written
	closed bool
	lastTs float64
}

// NewTraceSink wraps a writer. The caller owns the writer's lifetime:
// call Observer.Flush before closing it, then check Err.
func NewTraceSink(w io.Writer) *TraceSink { return &TraceSink{w: w} }

// SpanEnd writes one complete event. Attributes become args entries, and
// the parent link is preserved as args.parent so tools (and ValidateTrace)
// can rebuild the span tree.
func (t *TraceSink) SpanEnd(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	var args map[string]int64
	if rec.Parent != 0 || len(rec.Attrs) > 0 {
		args = make(map[string]int64, len(rec.Attrs)+1)
		if rec.Parent != 0 {
			args["parent"] = int64(rec.Parent)
		}
		for _, a := range rec.Attrs {
			args[a.Key] = a.Val
		}
	}
	ts := micros(rec.Start)
	if end := ts + micros(rec.Dur); end > t.lastTs {
		t.lastTs = end
	}
	t.event(traceEvent{
		Name: rec.Name, Cat: "mlvlsi", Ph: "X",
		Ts: ts, Dur: micros(rec.Dur),
		Pid: 1, Tid: 1, ID: rec.ID, Args: args,
	})
}

// Flush writes the counter snapshot as a "C" event followed by the closing
// bracket; the sink ignores any events after it.
func (t *TraceSink) Flush(m Metrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	args := make(map[string]int64, NumCounters)
	for c := Counter(0); c < numCounters; c++ {
		args[c.String()] = m.Get(c)
	}
	t.event(traceEvent{Name: "counters", Ph: "C", Ts: t.lastTs, Pid: 1, Tid: 1, Args: args})
	t.write("\n]\n")
	t.closed = true
}

// Err returns the first write or encoding error, if any.
func (t *TraceSink) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// event encodes one trace event onto its own line. Callers hold t.mu.
func (t *TraceSink) event(ev traceEvent) {
	buf, err := json.Marshal(ev)
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	if !t.wrote {
		t.write("[\n")
		t.wrote = true
	} else {
		t.write(",\n")
	}
	t.write(string(buf))
}

func (t *TraceSink) write(s string) {
	if t.err != nil {
		return
	}
	if _, err := io.WriteString(t.w, s); err != nil {
		t.err = err
	}
}

// MetricsSink retains completed spans in memory and the counter snapshot
// delivered at flush time. It is the in-process counterpart of TraceSink,
// used by cmd/benchjson to fold phase timings and counters into benchmark
// snapshots, and by tests to assert on span trees.
type MetricsSink struct {
	mu      sync.Mutex
	spans   []SpanRecord
	metrics Metrics
	flushed bool
}

// NewMetricsSink returns an empty in-memory sink.
func NewMetricsSink() *MetricsSink { return &MetricsSink{} }

// SpanEnd retains the span.
func (m *MetricsSink) SpanEnd(rec SpanRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spans = append(m.spans, rec)
}

// Flush retains the counter snapshot.
func (m *MetricsSink) Flush(met Metrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.metrics = met
	m.flushed = true
}

// Spans returns a copy of the retained spans, in end order (children
// precede their parents).
func (m *MetricsSink) Spans() []SpanRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]SpanRecord(nil), m.spans...)
}

// Span returns the first retained span with the given name and whether one
// exists.
func (m *MetricsSink) Span(name string) (SpanRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.spans {
		if s.Name == name {
			return s, true
		}
	}
	return SpanRecord{}, false
}

// Metrics returns the snapshot delivered by the last flush and whether a
// flush happened yet.
func (m *MetricsSink) Metrics() (Metrics, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.metrics, m.flushed
}

// ValidateTrace checks that data is a well-formed trace file as TraceSink
// writes it: a JSON array of events, each with a name, a known phase, and
// non-negative timestamps; at least one complete ("X") span event whose
// parent references (args.parent) resolve to other span events; and at
// least one counter ("C") event carrying every defined counter. It is the
// schema gate behind cmd/tracelint and `make trace-smoke`.
func ValidateTrace(data []byte) error {
	var events []traceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("trace is not a JSON event array: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("trace has no events")
	}
	spanIDs := make(map[uint64]bool)
	for _, ev := range events {
		if ev.Ph == "X" && ev.ID != 0 {
			spanIDs[ev.ID] = true
		}
	}
	nspans, ncounters := 0, 0
	for i, ev := range events {
		if ev.Name == "" {
			return fmt.Errorf("event %d: missing name", i)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return fmt.Errorf("event %d (%s): negative timestamp", i, ev.Name)
		}
		switch ev.Ph {
		case "X":
			nspans++
			if ev.ID == 0 {
				return fmt.Errorf("event %d (%s): span event without id", i, ev.Name)
			}
			if parent, ok := ev.Args["parent"]; ok && !spanIDs[uint64(parent)] {
				return fmt.Errorf("event %d (%s): parent %d is not a span in this trace", i, ev.Name, parent)
			}
		case "C":
			ncounters++
			for c := Counter(0); c < numCounters; c++ {
				if _, ok := ev.Args[c.String()]; !ok {
					return fmt.Errorf("event %d (%s): counter snapshot missing %q", i, ev.Name, c.String())
				}
			}
		default:
			return fmt.Errorf("event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	if nspans == 0 {
		return fmt.Errorf("trace has no span events")
	}
	if ncounters == 0 {
		return fmt.Errorf("trace has no counter snapshot (was the observer flushed?)")
	}
	return nil
}
