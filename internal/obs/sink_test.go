package obs

import (
	"strings"
	"testing"
	"time"
)

// buildGoldenTrace drives a fixed span tree and counter set through a
// TraceSink under the fake clock, producing a byte-identical file on every
// run.
func buildGoldenTrace(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	sink := NewTraceSink(&sb)
	o := fakeObserver(time.Microsecond, sink)

	root := o.StartSpan("build")
	root.SetAttr("rows", 4)
	place := root.Child("placement")
	place.End()
	root.End()
	o.Add(WiresRealized, 12)
	o.Set(WorkerCount, 2)
	o.Flush()
	if err := sink.Err(); err != nil {
		t.Fatalf("trace sink error: %v", err)
	}
	return sb.String()
}

// golden is the exact trace buildGoldenTrace writes: the fake clock ticks
// 1µs per reading, so build starts at t=1 and ends at the 4th reading
// (dur 3), placement spans readings 2..3 (dur 1). Keeping the literal here
// pins the wire format — field order, timestamp unit, parent links, the
// counter event, and the closing bracket.
const golden = `[
{"name":"placement","cat":"mlvlsi","ph":"X","ts":2,"dur":1,"pid":1,"tid":1,"id":2,"args":{"parent":1}},
{"name":"build","cat":"mlvlsi","ph":"X","ts":1,"dur":3,"pid":1,"tid":1,"id":1,"args":{"rows":4}},
{"name":"counters","ph":"C","ts":4,"dur":0,"pid":1,"tid":1,"args":{"batch_pipeline_stalls":0,"border_edges_reconciled":0,"breaker_opens":0,"budget_headroom":0,"cache_bytes":0,"cache_evictions":0,"cache_hits":0,"cache_inflight_waits":0,"cache_misses":0,"cells_allocated":0,"cells_planned":0,"chaos_injected":0,"client_retries":0,"degraded_served":0,"dense_checks":0,"merge_ns":0,"panics_recovered":0,"queue_depth":0,"queue_max_depth":0,"scratch_bytes":0,"scratch_reuses":0,"shed_deadline":0,"shed_draining":0,"shed_queue_full":0,"sparse_checks":0,"tile_bytes_peak":0,"tiled_checks":0,"tiles_checked":0,"unit_edges_checked":0,"wires_realized":12,"worker_count":2}}
]
`

func TestTraceSinkGolden(t *testing.T) {
	got := buildGoldenTrace(t)
	if got != golden {
		t.Fatalf("trace output changed:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

func TestGoldenTraceValidates(t *testing.T) {
	if err := ValidateTrace([]byte(buildGoldenTrace(t))); err != nil {
		t.Fatalf("golden trace rejected: %v", err)
	}
}

func TestTraceSinkIgnoresEventsAfterFlush(t *testing.T) {
	var sb strings.Builder
	sink := NewTraceSink(&sb)
	o := fakeObserver(time.Microsecond, sink)
	o.StartSpan("a").End()
	o.Flush()
	before := sb.String()
	o.StartSpan("late").End()
	o.Flush()
	if sb.String() != before {
		t.Fatalf("sink accepted events after Flush")
	}
	if err := ValidateTrace([]byte(sb.String())); err != nil {
		t.Fatalf("flushed trace invalid: %v", err)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not json", "hello", "not a JSON event array"},
		{"empty array", "[]", "no events"},
		{"missing name", `[{"ph":"X","ts":1,"dur":1,"id":1}]`, "missing name"},
		{"negative ts", `[{"name":"a","ph":"X","ts":-1,"dur":1,"id":1}]`, "negative timestamp"},
		{"span without id", `[{"name":"a","ph":"X","ts":1,"dur":1}]`, "without id"},
		{"dangling parent", `[{"name":"a","ph":"X","ts":1,"dur":1,"id":1,"args":{"parent":99}}]`, "not a span"},
		{"unknown phase", `[{"name":"a","ph":"Q","ts":1,"dur":1}]`, "unknown phase"},
		{"no counters", `[{"name":"a","ph":"X","ts":1,"dur":1,"id":1}]`, "no counter snapshot"},
		{"incomplete counters", `[{"name":"a","ph":"X","ts":1,"dur":1,"id":1},{"name":"counters","ph":"C","ts":1,"dur":0,"args":{"wires_realized":1}}]`, "missing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateTrace([]byte(tc.data))
			if err == nil {
				t.Fatalf("accepted invalid trace %q", tc.data)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateTraceToleratesMissingTerminator(t *testing.T) {
	// A trace from an aborted run lacks the closing bracket; the Chrome
	// format tolerates that, but ValidateTrace (which gates finished files)
	// requires a complete document with the counter event.
	full := buildGoldenTrace(t)
	truncated := strings.TrimSuffix(full, "\n]\n")
	if err := ValidateTrace([]byte(truncated)); err == nil {
		t.Fatalf("truncated trace unexpectedly validated")
	}
}

func TestMetricsSinkSpanLookup(t *testing.T) {
	sink := NewMetricsSink()
	o := fakeObserver(time.Microsecond, sink)
	o.StartSpan("alpha").End()
	o.StartSpan("beta").End()
	if _, ok := sink.Span("alpha"); !ok {
		t.Fatalf("alpha span not retained")
	}
	if _, ok := sink.Span("gamma"); ok {
		t.Fatalf("phantom span found")
	}
	spans := sink.Spans()
	spans[0].Name = "mutated"
	if s, _ := sink.Span("alpha"); s.Name != "alpha" {
		t.Fatalf("Spans() exposed internal storage")
	}
}
