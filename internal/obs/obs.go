// Package obs is the observability layer for the build and verify engines:
// hierarchical spans over the pipeline phases (placement, routing,
// realization, verify and their sub-steps) plus a small set of typed
// counters, fanned out to pluggable sinks (a Chrome-trace writer and an
// in-memory metrics snapshot ship with the package).
//
// The central contract is zero overhead when disabled. The *Observer handle
// is a concrete pointer, not an interface, and every method — including
// those of the *Span values it hands out — is nil-safe: a nil observer
// yields nil spans, and calls on either are a nil-check branch that touches
// no memory and allocates nothing. Instrumentation points therefore sit at
// phase granularity on the engines' coordinator paths, never per wire or
// per unit edge, and the //mlvlsi:hotpath functions stay allocation-free
// with or without an observer attached (see DESIGN.md and BenchmarkCheck).
//
// Counters are classified (Class) by how they may vary across runs:
// ClassWork counters are schedule-independent — the engines add them once
// per phase from already-reduced aggregates, and atomic adds commute, so
// totals are identical for every worker count. ClassConfig gauges reflect
// the configuration and ClassTiming counters reflect wall time; neither is
// expected to reproduce.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter names one typed counter. Values index Metrics.Counts.
type Counter uint8

const (
	// WiresRealized counts wires realized by the build engines (ClassWork).
	WiresRealized Counter = iota
	// UnitEdgesChecked counts unit grid edges examined by the verifier
	// (ClassWork; added once per check from the measure pass's total).
	UnitEdgesChecked
	// DenseChecks counts verifier runs that took the dense bitset path
	// (ClassWork: the dense/sparse decision depends only on the input).
	DenseChecks
	// SparseChecks counts verifier runs that fell back to the hash path
	// (ClassWork).
	SparseChecks
	// CellsPlanned accumulates the planned grid occupancy of builds:
	// (width+1)·(height+1)·(L+1) per realized spec (ClassWork).
	CellsPlanned
	// CellsAllocated accumulates the dense verifier's unit-edge slot counts
	// (the occupancy bitset capacity, in bits) (ClassWork).
	CellsAllocated
	// BudgetHeadroom gauges MaxCells minus the planned cells of the most
	// recent budgeted build; negative when the plan was over budget
	// (ClassConfig, written with Set).
	BudgetHeadroom
	// WorkerCount gauges the most recently resolved worker fan-out
	// (ClassConfig, written with Set).
	WorkerCount
	// MergeNanos accumulates wall time of the parallel verifier's shard
	// merge scans, in nanoseconds (ClassTiming).
	MergeNanos
	// CacheHits counts serving-cache lookups answered from memory
	// (ClassServe).
	CacheHits
	// CacheMisses counts serving-cache lookups that had to build — exactly
	// one per singleflight group, however many requests piled onto it
	// (ClassServe).
	CacheMisses
	// CacheEvictions counts entries evicted to hold the cache under its byte
	// budget (ClassServe).
	CacheEvictions
	// CacheInflightWaits counts lookups that found an identical build already
	// in flight and waited for its result instead of building again
	// (ClassServe).
	CacheInflightWaits
	// CacheBytes gauges the retained bytes of the serving cache after the
	// most recent insert or eviction (ClassServe, written with Set).
	CacheBytes
	// QueueDepth gauges the admission queue's current waiter count
	// (ClassServe, written with Set).
	QueueDepth
	// QueueMaxDepth gauges the admission queue's high-water waiter count
	// since process start; the chaos sweep asserts it never exceeds the
	// configured bound (ClassServe, written with Set).
	QueueMaxDepth
	// ShedQueueFull counts requests shed because the admission queue was at
	// its bound (ClassServe).
	ShedQueueFull
	// ShedDeadline counts requests shed because their remaining deadline
	// could not cover the predicted queue wait (ClassServe).
	ShedDeadline
	// ShedDraining counts requests shed because the server was draining for
	// shutdown (ClassServe).
	ShedDraining
	// DegradedServed counts overloaded requests answered with a cached
	// coarser layout carrying an explicit degraded marker instead of a shed
	// rejection (ClassServe).
	DegradedServed
	// PanicsRecovered counts handler panics the recover middleware mapped to
	// the 500 internal envelope instead of killing the connection
	// (ClassServe).
	PanicsRecovered
	// ClientRetries counts retry attempts issued by resilience.Client after
	// a retryable failure (ClassServe).
	ClientRetries
	// BreakerOpens counts circuit-breaker transitions to the open state in
	// resilience.Client (ClassServe).
	BreakerOpens
	// ChaosInjected counts network faults injected by the resilience chaos
	// transport (ClassServe).
	ChaosInjected
	// ScratchReuses counts arena builds that reused an already-warm
	// BuildScratch (every build on a scratch after its first). Serial reuse
	// of one scratch is deterministic, but pooled scratches are handed to
	// builds in arrival order, so totals reproduce only for serial streams
	// (ClassServe).
	ScratchReuses
	// ScratchBytes gauges the retained slab capacity of the scratch used by
	// the most recent arena build (ClassConfig, written with Set).
	ScratchBytes
	// BatchPipelineStalls counts times a batch pipeline stage had to block —
	// the builder on a full hand-off queue or the verifier on an empty one —
	// a backpressure signal that depends on scheduling (ClassServe).
	BatchPipelineStalls
	// TiledChecks counts verifier runs that took the tiled streaming path —
	// the middle rung of the dense→tiled→map ladder, engaged when a memory
	// ceiling rejects the full dense bitset (ClassWork: the rung decision
	// depends only on the input and the configured ceiling).
	TiledChecks
	// TilesChecked counts tiles walked by the tiled verifier: every tile of
	// the partition on a full check, exactly the dirty tiles on a
	// ReverifyTiles call (ClassWork; added once per check from the tile
	// count, which is what lets tests assert incremental re-checks touched
	// only the k dirty tiles).
	TilesChecked
	// BorderEdgesReconciled counts unit-edge claims processed by the tiled
	// verifier's border-reconciliation pass — edges whose two endpoints lie
	// in different tiles, checked against a shared map after the per-tile
	// walks (ClassWork: border membership is a function of the tiling, not
	// the schedule).
	BorderEdgesReconciled
	// TileBytesPeak gauges the peak occupancy-bitset working set of the most
	// recent tiled check: per-tile bitset bytes times the number of tiles
	// concurrently in flight (ClassConfig, written with Set — it reflects
	// the configured ceiling and worker fan-out).
	TileBytesPeak

	numCounters
)

// NumCounters is the number of defined counters; Metrics.Counts has this
// length and every Counter constant is a valid index below it.
const NumCounters = int(numCounters)

// String returns the counter's snake_case name, used as the metrics key in
// trace files and benchmark snapshots.
func (c Counter) String() string {
	switch c {
	case WiresRealized:
		return "wires_realized"
	case UnitEdgesChecked:
		return "unit_edges_checked"
	case DenseChecks:
		return "dense_checks"
	case SparseChecks:
		return "sparse_checks"
	case CellsPlanned:
		return "cells_planned"
	case CellsAllocated:
		return "cells_allocated"
	case BudgetHeadroom:
		return "budget_headroom"
	case WorkerCount:
		return "worker_count"
	case MergeNanos:
		return "merge_ns"
	case CacheHits:
		return "cache_hits"
	case CacheMisses:
		return "cache_misses"
	case CacheEvictions:
		return "cache_evictions"
	case CacheInflightWaits:
		return "cache_inflight_waits"
	case CacheBytes:
		return "cache_bytes"
	case QueueDepth:
		return "queue_depth"
	case QueueMaxDepth:
		return "queue_max_depth"
	case ShedQueueFull:
		return "shed_queue_full"
	case ShedDeadline:
		return "shed_deadline"
	case ShedDraining:
		return "shed_draining"
	case DegradedServed:
		return "degraded_served"
	case PanicsRecovered:
		return "panics_recovered"
	case ClientRetries:
		return "client_retries"
	case BreakerOpens:
		return "breaker_opens"
	case ChaosInjected:
		return "chaos_injected"
	case ScratchReuses:
		return "scratch_reuses"
	case ScratchBytes:
		return "scratch_bytes"
	case BatchPipelineStalls:
		return "batch_pipeline_stalls"
	case TiledChecks:
		return "tiled_checks"
	case TilesChecked:
		return "tiles_checked"
	case BorderEdgesReconciled:
		return "border_edges_reconciled"
	case TileBytesPeak:
		return "tile_bytes_peak"
	}
	return "counter_unknown"
}

// Class groups counters by reproducibility.
type Class uint8

const (
	// ClassWork counters are deterministic: identical totals for every
	// worker count and schedule, given the same inputs and options.
	ClassWork Class = iota
	// ClassConfig gauges reflect the run's configuration (worker count,
	// budget headroom); they differ across configurations by design.
	ClassConfig
	// ClassTiming counters are wall-clock derived and never reproduce.
	ClassTiming
	// ClassServe counters belong to the serving layer's cache: their totals
	// depend on request arrival order and interleaving (a lookup is a hit,
	// a miss, or an in-flight wait depending on what raced it there), so
	// they reproduce only for serial request streams.
	ClassServe
)

// Class returns the counter's reproducibility class.
func (c Counter) Class() Class {
	switch c {
	case BudgetHeadroom, WorkerCount, ScratchBytes, TileBytesPeak:
		return ClassConfig
	case MergeNanos:
		return ClassTiming
	case CacheHits, CacheMisses, CacheEvictions, CacheInflightWaits, CacheBytes,
		QueueDepth, QueueMaxDepth, ShedQueueFull, ShedDeadline, ShedDraining,
		DegradedServed, PanicsRecovered, ClientRetries, BreakerOpens, ChaosInjected,
		ScratchReuses, BatchPipelineStalls:
		return ClassServe
	}
	return ClassWork
}

// Metrics is a point-in-time snapshot of every counter.
type Metrics struct {
	Counts [NumCounters]int64
}

// Get returns one counter's value.
func (m Metrics) Get(c Counter) int64 { return m.Counts[c] }

// Attr is one key/value annotation on a span. Values are int64 — the
// engines annotate with sizes and counts, never strings, so attribute
// recording stays cheap and trace files stay uniform.
type Attr struct {
	Key string
	Val int64
}

// SpanRecord is the immutable form of a completed span delivered to sinks.
// ID is unique within the observer and Parent is the enclosing span's ID
// (zero for roots). Start is monotonic time since the observer's creation.
type SpanRecord struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Sink receives completed spans and, at flush time, the counter snapshot.
// Sinks must tolerate concurrent SpanEnd calls being serialized by the
// observer: calls arrive one at a time, in span end order (children before
// their parents).
type Sink interface {
	SpanEnd(SpanRecord)
	Flush(Metrics)
}

// Observer collects spans and counters and fans them out to sinks. Create
// one with New; the zero value is not usable, but a nil *Observer is — it
// is the disabled state, and every method on it (and on the nil spans it
// returns) is a no-op.
type Observer struct {
	mu    sync.Mutex // serializes sink emission
	sinks []Sink
	epoch time.Time
	// now returns monotonic time since epoch; tests substitute a fake.
	now    func() time.Duration
	lastID atomic.Uint64
	counts [NumCounters]atomic.Int64
}

// New creates an observer fanning out to the given sinks. Sinks may be nil
// or empty, in which case only the counter snapshot (Snapshot/Flush) is
// observable.
func New(sinks ...Sink) *Observer {
	o := &Observer{sinks: sinks, epoch: time.Now()}
	o.now = func() time.Duration { return time.Since(o.epoch) }
	return o
}

// Add adds delta to a counter. Nil-safe and safe for concurrent use; adds
// commute, so ClassWork totals are schedule-independent.
func (o *Observer) Add(c Counter, delta int64) {
	if o == nil {
		return
	}
	o.counts[c].Add(delta)
}

// Set overwrites a gauge counter. Nil-safe and safe for concurrent use.
func (o *Observer) Set(c Counter, v int64) {
	if o == nil {
		return
	}
	o.counts[c].Store(v)
}

// Snapshot returns the current counter values without flushing sinks.
// Nil-safe: a nil observer returns zero metrics.
func (o *Observer) Snapshot() Metrics {
	var m Metrics
	if o == nil {
		return m
	}
	for i := range m.Counts {
		m.Counts[i] = o.counts[i].Load()
	}
	return m
}

// Flush snapshots the counters, delivers the snapshot to every sink, and
// returns it. Call it once after the observed work; trace sinks write their
// counter event and closing bracket here. Nil-safe.
func (o *Observer) Flush() Metrics {
	m := o.Snapshot()
	if o == nil {
		return m
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, s := range o.sinks {
		s.Flush(m)
	}
	return m
}

// StartSpan opens a root span. Nil-safe: a nil observer returns a nil span,
// on which every Span method is a no-op.
func (o *Observer) StartSpan(name string) *Span {
	if o == nil {
		return nil
	}
	return &Span{obs: o, id: o.lastID.Add(1), name: name, start: o.now()}
}

// emit delivers a completed span to the sinks, serialized under o.mu.
func (o *Observer) emit(rec SpanRecord) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, s := range o.sinks {
		s.SpanEnd(rec)
	}
}

// Span is one timed, attributed region of work. Spans form a tree through
// Child; a span is delivered to sinks when End is called (a span never
// ended is dropped). A single span's methods are not safe for concurrent
// use, but distinct spans of one observer may end concurrently.
//
// All methods are nil-safe: the nil *Span is the disabled state handed out
// by a nil observer, and Child on it returns nil again, so instrumented
// code never branches on observer presence itself.
type Span struct {
	obs    *Observer
	id     uint64
	parent uint64
	name   string
	start  time.Duration
	attrs  []Attr
	ended  bool
}

// Child opens a sub-span. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.obs.StartSpan(name)
	c.parent = s.id
	return c
}

// SetAttr annotates the span, returning it for chaining. Nil-safe.
func (s *Span) SetAttr(key string, v int64) *Span {
	if s == nil {
		return s
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
	return s
}

// Observer returns the owning observer, so code holding only a span can
// add counters. Nil-safe: a nil span yields a nil (disabled) observer.
func (s *Span) Observer() *Observer {
	if s == nil {
		return nil
	}
	return s.obs
}

// End completes the span, delivers it to the sinks, and returns its
// duration. Ending twice is a no-op the second time. Nil-safe: a nil span
// returns 0, which keeps derived timing counters silent when disabled.
func (s *Span) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	d := s.obs.now() - s.start
	if d < 0 {
		d = 0
	}
	s.obs.emit(SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    d,
		Attrs:  s.attrs,
	})
	return d
}
