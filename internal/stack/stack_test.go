package stack

import (
	"sort"
	"testing"

	"mlvlsi/internal/core"
	"mlvlsi/internal/topology"
	"mlvlsi/internal/track"
)

func mustBuild(t *testing.T) func(*Layout3D, error) *Layout3D {
	return func(s *Layout3D, err error) *Layout3D {
		t.Helper()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if v := s.Verify(); len(v) > 0 {
			t.Fatalf("%s: %d violations, first: %v", s.Name, len(v), v[0])
		}
		return s
	}
}

func sameGraph(t *testing.T, s *Layout3D, g *topology.Graph) {
	t.Helper()
	if len(s.Nodes) != g.N {
		t.Fatalf("%s: %d nodes, topology has %d", s.Name, len(s.Nodes), g.N)
	}
	if len(s.Wires) != len(g.Links) {
		t.Fatalf("%s: %d wires, topology has %d links", s.Name, len(s.Wires), len(g.Links))
	}
	got := make([]topology.Link, 0, len(s.Wires))
	for i := range s.Wires {
		u, v := s.Wires[i].U, s.Wires[i].V
		if u > v {
			u, v = v, u
		}
		got = append(got, topology.Link{U: u, V: v})
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].U != got[j].U {
			return got[i].U < got[j].U
		}
		return got[i].V < got[j].V
	})
	want := g.LinkSet()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: wires differ at %d: got %v want %v", s.Name, i, got[i], want[i])
		}
	}
}

func TestHypercube3DLegalAndCorrect(t *testing.T) {
	for _, tc := range []struct{ n, nz, l int }{
		{3, 1, 2}, {4, 1, 2}, {4, 2, 2}, {5, 2, 4}, {6, 2, 4}, {6, 3, 2},
	} {
		s := mustBuild(t)(Hypercube3D(tc.n, tc.nz, tc.l, Knobs{}))
		sameGraph(t, s, topology.Hypercube(tc.n))
	}
}

func TestKAry3DLegalAndCorrect(t *testing.T) {
	for _, tc := range []struct{ k, n, nz, l int }{
		{3, 2, 1, 2}, {4, 3, 1, 2}, {3, 3, 1, 4}, {4, 3, 2, 2},
	} {
		s := mustBuild(t)(KAryNCube3D(tc.k, tc.n, tc.nz, tc.l, false, Knobs{}))
		sameGraph(t, s, topology.KAryNCube(tc.k, tc.n))
	}
}

func TestStackingShrinksFootprint(t *testing.T) {
	// §2.2: moving dimensions onto active layers shrinks the footprint
	// area (by roughly the board count) while the volume stays comparable.
	flat, err := core.Hypercube(8, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stacked := mustBuild(t)(Hypercube3D(8, 2, 4, Knobs{})) // 4 boards
	fa, sa := flat.Area(), stacked.Area()
	if sa >= fa {
		t.Fatalf("stacked footprint %d not below flat %d", sa, fa)
	}
	gain := float64(fa) / float64(sa)
	if gain < 2.0 {
		t.Errorf("footprint gain %.2f with 4 boards, want > 2", gain)
	}
	// Volume comparable: within a factor ~3 either way (boards add idle
	// active layers).
	fv, sv := flat.Volume(), stacked.Volume()
	r := float64(sv) / float64(fv)
	if r < 0.3 || r > 3.0 {
		t.Errorf("volume ratio stacked/flat = %.2f, want comparable", r)
	}
}

func TestStackingShortensWires(t *testing.T) {
	flat, err := core.Hypercube(8, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stacked := mustBuild(t)(Hypercube3D(8, 2, 4, Knobs{}))
	if stacked.MaxWireLength() >= flat.MaxWireLength() {
		t.Errorf("stacked max wire %d not below flat %d",
			stacked.MaxWireLength(), flat.MaxWireLength())
	}
}

func TestStackStatsConsistency(t *testing.T) {
	s := mustBuild(t)(Hypercube3D(5, 1, 2, Knobs{}))
	st := s.Stats()
	if st.Boards != 2 || st.N != 32 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalLayers != 2*(2+1) {
		t.Errorf("total layers = %d, want 6", st.TotalLayers)
	}
	if st.Volume != st.TotalLayers*st.Area {
		t.Errorf("volume %d != layers %d × area %d", st.Volume, st.TotalLayers, st.Area)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Hypercube3D(4, 0, 2, Knobs{}); err == nil {
		t.Error("nz=0 accepted")
	}
	if _, err := Hypercube3D(4, 4, 2, Knobs{}); err == nil {
		t.Error("nz=n accepted")
	}
	if _, err := KAryNCube3D(3, 2, 2, 2, false, Knobs{}); err == nil {
		t.Error("nz=n accepted for kary")
	}
	bad := Spec{
		Name:     "bad",
		Board:    core.Spec{Rows: 1, Cols: 1, L: 1},
		BoardFac: track.Ring(2),
	}
	if _, err := Build(bad); err == nil {
		t.Error("L=1 board accepted")
	}
}

func TestElevatorsDoNotCollideAcrossTracks(t *testing.T) {
	// A board factor with several tracks and touching intervals exercises
	// the alternating column allocation: ring(6) has chains of touching
	// intervals on track 0.
	boardSpec := core.FromFactors("board", track.Ring(3), track.Ring(3), 2, 0)
	s, err := Build(Spec{
		Name:     "ring-stack",
		Board:    boardSpec,
		BoardFac: track.Ring(6),
	})
	mustBuild(t)(s, err)
	// 9 nodes/board × 6 boards; ring(3)² per board + ring(6) stack links.
	if len(s.Nodes) != 54 {
		t.Errorf("N = %d, want 54", len(s.Nodes))
	}
	want := 6*(9+9) + 6*9 // per-board wires + elevator wires (6 ring edges × 9 stacks)
	if len(s.Wires) != want {
		t.Errorf("wires = %d, want %d", len(s.Wires), want)
	}
}

// Property: stacked layouts stay legal across board factors with different
// track structures (paths, rings, folded rings, hypercubes).
func TestStackPropertyBoardFactors(t *testing.T) {
	boardSpec := core.FromFactors("board", track.Ring(4), track.Ring(4), 2, 0)
	factors := []*track.Collinear{
		track.Path(5),
		track.Ring(5),
		track.FoldedRing(6),
		track.Hypercube(3),
		track.Complete(4),
	}
	for _, bf := range factors {
		s, err := Build(Spec{Name: "prop-" + bf.Name, Board: boardSpec, BoardFac: bf})
		if err != nil {
			t.Fatalf("%s: %v", bf.Name, err)
		}
		if v := s.Verify(); len(v) > 0 {
			t.Fatalf("%s: %v", bf.Name, v[0])
		}
		wantElev := len(bf.Edges) * 16
		wantBoard := bf.N * 32 // ring(4)² has 32 links per board
		if len(s.Wires) != wantElev+wantBoard {
			t.Errorf("%s: wires = %d, want %d", bf.Name, len(s.Wires), wantElev+wantBoard)
		}
	}
}

func TestStackOddLayersPerBoard(t *testing.T) {
	s := mustBuild(t)(Hypercube3D(5, 1, 3, Knobs{}))
	if s.LayersPerBoard != 3 || s.TotalLayers != 2*4-1 {
		t.Errorf("odd-L stack: %d layers/board, %d total", s.LayersPerBoard, s.TotalLayers)
	}
}
