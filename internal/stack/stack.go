// Package stack implements the paper's multilayer 3-D grid model (§2.2):
// network nodes occupy L_A active layers ("boards") instead of one, with
// each board carrying a 2-D multilayer layout and the board-direction
// factor of a product network routed as vertical "elevator" columns through
// the stack. This realizes the paper's observation that the 2-D model is
// the special case L_A = 1, and lets experiments compare footprint area,
// volume, and wire length across the two models.
//
// Geometry: board b occupies the z-band [b·(L+1), b·(L+1)+L] — one active
// layer plus L wiring layers — with identical planar geometry on every
// board. A board-direction link between boards b1 < b2 is a single z-run
// (an inter-board via column) through the intervening bands at a planar
// coordinate inside its node's rectangle; elevator columns are allocated
// two per board-factor track (alternating between touching intervals) so
// distinct links never share a grid edge or a terminal point.
package stack

import (
	"context"
	"fmt"

	"mlvlsi/internal/core"
	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
	"mlvlsi/internal/track"
)

// Spec describes a stacked layout: a 2-D board spec replicated over the
// positions of a board-direction collinear factor.
type Spec struct {
	Name string
	// Board is the per-board 2-D spec. Its Label gives in-board labels;
	// its NodeSide is raised automatically to fit elevator columns.
	Board core.Spec
	// BoardFac is the collinear layout of the board-direction factor; its
	// N is the number of boards and its tracks allocate elevator columns.
	BoardFac *track.Collinear
	// Label combines a board-factor label and an in-board label into the
	// global node label. Nil means boardLabel·boardNodes + inBoard.
	Label func(boardLabel, inBoard int) int
}

// Knobs carries the cross-cutting build options of the 3-D constructors —
// the same set the 2-D engines take, interpreted stack-wide.
type Knobs struct {
	// NodeSide fixes the node square side (0 = minimal). An explicit side
	// too small for the stack's elevator columns is a *SideError; zero is
	// raised automatically as before.
	NodeSide int
	// Workers bounds the board realization fan-out (0 = GOMAXPROCS); the
	// realized stack is identical for every value.
	Workers int
	// Ctx cancels the build cooperatively (error wraps par.ErrCanceled);
	// replication and elevator allocation poll it between boards.
	Ctx context.Context
	// MaxCells bounds the planned grid occupancy of the WHOLE stack —
	// (width+1)·(height+1)·boards·(L+1) — not of a single board; overruns
	// return a *layout.BudgetError before any wire is realized.
	MaxCells int
	// Obs receives a "stack" span with replicate/elevators children plus
	// the board engine's build spans and counters; nil disables observation.
	Obs *obs.Observer
}

// apply copies the knobs onto a board spec. Build reinterprets the board
// spec's MaxCells as the stack-wide budget and enforces it against the
// whole-stack cell count, clearing it before the per-board engine runs.
func (k Knobs) apply(s core.Spec) core.Spec {
	s.NodeSide = k.NodeSide
	s.Workers = k.Workers
	s.Ctx = k.Ctx
	s.MaxCells = k.MaxCells
	s.Obs = k.Obs
	return s
}

// SideError reports an explicit node side too small to host the stack's
// elevator columns. Got is the requested side; Need is the minimum side
// whose square fits the elevator block.
type SideError struct {
	Name      string
	Got, Need int
}

func (e *SideError) Error() string {
	return fmt.Sprintf("stack %s: node side %d cannot host the elevator columns, needs >= %d", e.Name, e.Got, e.Need)
}

// Layout3D is a realized stacked layout.
type Layout3D struct {
	Name string
	// Boards is the number of active layers (the paper's L_A).
	Boards int
	// LayersPerBoard is the wiring-layer count L of each board.
	LayersPerBoard int
	// TotalLayers is the full z-extent: Boards·(L+1) grid layers.
	TotalLayers int
	// Nodes holds the planar rectangle and board of every node, indexed by
	// global label.
	Nodes []BoardRect
	// Wires holds all realized wires in global z coordinates.
	Wires []grid.Wire
	// boardWireCount is the number of wires per board (prefix of Wires,
	// Boards consecutive groups); the rest are elevators.
	boardWireCount int
}

// BoardRect locates a node: planar rectangle plus board index.
type BoardRect struct {
	grid.Rect
	Board int
}

// bandBase returns the z of board b's active layer.
func bandBase(b, layersPerBoard int) int { return b * (layersPerBoard + 1) }

// Build realizes the stacked layout. The board spec's MaxCells, if set, is
// the budget for the WHOLE stack (see Knobs.MaxCells); its Ctx is polled
// between boards during replication and elevator allocation; its Obs gets a
// "stack" span with replicate/elevators children alongside the board
// engine's own build span.
func Build(spec Spec) (*Layout3D, error) {
	boards := spec.BoardFac.N
	if boards < 1 {
		return nil, fmt.Errorf("%s: board factor has no positions", spec.Name)
	}
	if spec.Board.L < 2 {
		return nil, fmt.Errorf("%s: board spec needs L >= 2", spec.Name)
	}
	ob := spec.Board.Obs
	root := ob.StartSpan("stack")
	root.SetAttr("boards", int64(boards))
	defer root.End()
	// Elevator capacity: two columns per board-factor track, arranged in a
	// square block inside each node; the node side must fit the block and
	// the board spec's own ports.
	elevCols := 2 * spec.BoardFac.Tracks
	sideNeed := 1
	for sideNeed*sideNeed < elevCols {
		sideNeed++
	}
	boardSpec := spec.Board
	budget := boardSpec.MaxCells
	boardSpec.MaxCells = 0 // enforced stack-wide below, not per board
	if boardSpec.NodeSide > 0 && boardSpec.NodeSide < sideNeed {
		return nil, &SideError{Name: spec.Name, Got: boardSpec.NodeSide, Need: sideNeed}
	}
	// Planning passes run unobserved: only the realizing build below should
	// contribute spans and counters.
	planSpec := boardSpec
	planSpec.Obs = nil
	if boardSpec.NodeSide < sideNeed {
		// Let the board spec recompute with at least the elevator demand;
		// Plan tells us the port-driven minimum.
		geom, err := core.Plan(planSpec)
		if err != nil {
			return nil, err
		}
		if geom.Side > sideNeed {
			sideNeed = geom.Side
		}
		boardSpec.NodeSide = sideNeed
		planSpec.NodeSide = sideNeed
	}
	if budget > 0 {
		geom, err := core.Plan(planSpec)
		if err != nil {
			return nil, err
		}
		cells := (geom.Width + 1) * (geom.Height + 1) * boards * (spec.Board.L + 1)
		ob.Set(obs.BudgetHeadroom, int64(budget-cells))
		if cells > budget {
			return nil, &layout.BudgetError{Name: spec.Name, Cells: cells, Budget: budget}
		}
	}
	boardLay, err := core.Build(boardSpec)
	if err != nil {
		return nil, err
	}
	inBoardN := len(boardLay.Nodes)
	label := spec.Label
	if label == nil {
		label = func(bl, in int) int { return bl*inBoardN + in }
	}

	l := spec.Board.L
	out := &Layout3D{
		Name:           spec.Name,
		Boards:         boards,
		LayersPerBoard: l,
		TotalLayers:    boards*(l+1) - 1,
	}
	out.Nodes = make([]BoardRect, boards*inBoardN)
	for b := 0; b < boards; b++ {
		bl := spec.BoardFac.Label(b)
		for in, r := range boardLay.Nodes {
			out.Nodes[label(bl, in)] = BoardRect{Rect: r, Board: b}
		}
	}

	// Replicate board wires into each band.
	rep := root.Child("replicate")
	wireID := 0
	for b := 0; b < boards; b++ {
		if err := par.Canceled(boardSpec.Ctx); err != nil {
			return nil, err
		}
		base := bandBase(b, l)
		bl := spec.BoardFac.Label(b)
		for i := range boardLay.Wires {
			src := &boardLay.Wires[i]
			w := grid.Wire{
				ID: wireID,
				U:  label(bl, src.U),
				V:  label(bl, src.V),
			}
			wireID++
			w.Path = make([]grid.Point, len(src.Path))
			for j, p := range src.Path {
				w.Path[j] = grid.Point{X: p.X, Y: p.Y, Z: p.Z + base}
			}
			out.Wires = append(out.Wires, w)
		}
	}
	out.boardWireCount = len(out.Wires)
	rep.SetAttr("wires", int64(out.boardWireCount)).End()

	// Elevators: allocate per-track column pairs; edges on one track are
	// interval-disjoint, and alternating columns keep touching intervals
	// off each other's terminal points.
	elev := root.Child("elevators")
	side := boardLay.Nodes[0].W
	perTrackIdx := make(map[int]int) // track -> next alternation bit
	type colKey struct{ track, alt int }
	colOf := make(map[colKey]int)
	nextCol := 0
	for _, e := range spec.BoardFac.Edges {
		if err := par.Canceled(boardSpec.Ctx); err != nil {
			return nil, err
		}
		alt := perTrackIdx[e.Track] % 2
		perTrackIdx[e.Track]++
		k := colKey{e.Track, alt}
		col, ok := colOf[k]
		if !ok {
			col = nextCol
			nextCol++
			colOf[k] = col
		}
		ex, ey := col%side, col/side
		if ey >= side {
			return nil, fmt.Errorf("%s: node side %d cannot host %d elevator columns", spec.Name, side, nextCol)
		}
		zu := bandBase(e.U, l)
		zv := bandBase(e.V, l)
		lu, lv := spec.BoardFac.Label(e.U), spec.BoardFac.Label(e.V)
		for in, r := range boardLay.Nodes {
			w := grid.Wire{
				ID: wireID,
				U:  label(lu, in),
				V:  label(lv, in),
				Path: []grid.Point{
					{X: r.X + ex, Y: r.Y + ey, Z: zu},
					{X: r.X + ex, Y: r.Y + ey, Z: zv},
				},
			}
			wireID++
			out.Wires = append(out.Wires, w)
		}
	}
	elev.SetAttr("wires", int64(len(out.Wires)-out.boardWireCount)).End()
	// The board engine counted one board's worth; top up so the total
	// matches the wires the stack actually realized.
	ob.Add(obs.WiresRealized, int64(len(out.Wires)-len(boardLay.Wires)))
	return out, nil
}

// Area is the planar footprint (identical across boards). Wire z-extents
// don't matter here: BoundingBox.Area is width x height only.
func (s *Layout3D) Area() int {
	b := grid.Wires(s.Wires).Bounds()
	for _, n := range s.Nodes {
		b.AddRect(n.Rect, 0)
	}
	return b.Area()
}

// Volume is total layers × footprint area.
func (s *Layout3D) Volume() int {
	return (s.TotalLayers + 1) * s.Area()
}

// MaxWireLength is the longest planar wire length (elevators have zero
// planar length; their cost shows up in Volume and TotalLayers).
func (s *Layout3D) MaxWireLength() int {
	m := 0
	for i := range s.Wires {
		if n := s.Wires[i].PlanarLength(); n > m {
			m = n
		}
	}
	return m
}

// Verify checks the stacked layout: global edge-disjointness over all
// wires, plus per-board legality (direction discipline and terminals) of
// the in-board wiring after shifting each band back to z = 0.
func (s *Layout3D) Verify() []grid.Violation {
	// Global pass: pure edge-disjointness.
	if v := grid.Check(s.Wires, grid.CheckOptions{}); len(v) > 0 {
		return v
	}
	// Per-board pass: discipline within the band.
	perBoard := s.boardWireCount / s.Boards
	for b := 0; b < s.Boards; b++ {
		base := bandBase(b, s.LayersPerBoard)
		var shifted []grid.Wire
		for i := b * perBoard; i < (b+1)*perBoard; i++ {
			src := s.Wires[i]
			w := grid.Wire{ID: src.ID, U: src.U, V: src.V}
			for _, p := range src.Path {
				w.Path = append(w.Path, grid.Point{X: p.X, Y: p.Y, Z: p.Z - base})
			}
			shifted = append(shifted, w)
		}
		if v := grid.Check(shifted, grid.CheckOptions{Layers: s.LayersPerBoard, Discipline: true}); len(v) > 0 {
			return v
		}
	}
	return nil
}

// Stats summarizes the stacked layout.
type Stats struct {
	Name        string
	N           int
	Boards      int
	TotalLayers int
	Area        int
	Volume      int
	MaxWire     int
}

func (s *Layout3D) Stats() Stats {
	return Stats{
		Name:        s.Name,
		N:           len(s.Nodes),
		Boards:      s.Boards,
		TotalLayers: s.TotalLayers + 1,
		Area:        s.Area(),
		Volume:      s.Volume(),
		MaxWire:     s.MaxWireLength(),
	}
}

func (st Stats) String() string {
	return fmt.Sprintf("%s: N=%d boards=%d layers=%d area=%d volume=%d maxwire=%d",
		st.Name, st.N, st.Boards, st.TotalLayers, st.Area, st.Volume, st.MaxWire)
}

// KAryNCube3D lays out a k-ary n-cube in the 3-D model: nz dimensions run
// across boards (k^nz boards), the rest split over the per-board 2-D
// layout. Node labels match topology.KAryNCube: the board digits are the
// most significant. The knobs thread the cross-cutting build options
// through the board engine; Knobs{} reproduces the default build.
func KAryNCube3D(k, n, nz, l int, folded bool, kn Knobs) (*Layout3D, error) {
	if nz < 1 || nz >= n {
		return nil, fmt.Errorf("KAryNCube3D: need 1 <= nz < n")
	}
	planar := n - nz
	rowFac := track.KAryNCube(k, planar/2, folded)
	if planar/2 == 0 {
		rowFac = &track.Collinear{Name: "trivial", N: 1}
	}
	colFac := track.KAryNCube(k, (planar+1)/2, folded)
	boardFac := track.KAryNCube(k, nz, folded)
	boardSpec := kn.apply(core.FromFactors("board", rowFac, colFac, l, 0))
	inBoard := rowFac.N * colFac.N
	return Build(Spec{
		Name:     fmt.Sprintf("%d-ary %d-cube 3D(nz=%d) L=%d", k, n, nz, l),
		Board:    boardSpec,
		BoardFac: boardFac,
		Label: func(bl, in int) int {
			return bl*inBoard + in
		},
	})
}

// Hypercube3D lays out the binary n-cube with nz dimensions across boards.
// The knobs thread the cross-cutting build options through the board
// engine; Knobs{} reproduces the default build.
func Hypercube3D(n, nz, l int, kn Knobs) (*Layout3D, error) {
	if nz < 1 || nz >= n {
		return nil, fmt.Errorf("Hypercube3D: need 1 <= nz < n")
	}
	planar := n - nz
	rowFac := track.Hypercube(planar / 2)
	colFac := track.Hypercube((planar + 1) / 2)
	boardFac := track.Hypercube(nz)
	boardSpec := kn.apply(core.FromFactors("board", rowFac, colFac, l, 0))
	inBoard := rowFac.N * colFac.N
	return Build(Spec{
		Name:     fmt.Sprintf("%d-cube 3D(nz=%d) L=%d", n, nz, l),
		Board:    boardSpec,
		BoardFac: boardFac,
		Label: func(bl, in int) int {
			return bl*inBoard + in
		},
	})
}
