// Package extra implements §5.3 of the paper: hypercube layouts augmented
// with additional long links — the folded hypercube's N/2 diameter
// (bitwise-complement) links and the enhanced cube's N random extra links.
// Each extra link is routed on one dedicated horizontal track in its source
// row and one dedicated vertical track in its destination column (a bent
// edge), exactly the accounting behind the paper's (7N/3L)² and (10N/3L)²
// area results.
package extra

import (
	"fmt"

	"mlvlsi/internal/core"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/topology"
	"mlvlsi/internal/track"
)

// hypercubeSpec builds the base n-cube spec plus a position lookup from
// node label to grid coordinates.
func hypercubeSpec(n, l, nodeSide int, name string) (core.Spec, func(label int) (int, int)) {
	rowFac := track.Hypercube(n / 2)
	colFac := track.Hypercube((n + 1) / 2)
	spec := core.FromFactors(name, rowFac, colFac, l, nodeSide)
	rowPos := rowFac.PositionOf()
	colPos := colFac.PositionOf()
	cols := rowFac.N
	locate := func(label int) (int, int) {
		return colPos[label/cols], rowPos[label%cols]
	}
	return spec, locate
}

// FoldedHypercubeSpec assembles the folded n-cube spec without realizing
// it: the ⌊2N/3⌋-track hypercube layout plus one diameter link per
// complementary node pair. Callers may set Workers/Ctx/MaxCells on the
// result before core.Build.
func FoldedHypercubeSpec(n, l, nodeSide int) (core.Spec, error) {
	if n < 1 {
		return core.Spec{}, fmt.Errorf("FoldedHypercube: need n >= 1")
	}
	spec, locate := hypercubeSpec(n, l, nodeSide, fmt.Sprintf("folded %d-cube L=%d", n, l))
	mask := 1<<uint(n) - 1
	for u := 0; u < 1<<uint(n); u++ {
		v := u ^ mask
		if u > v {
			continue
		}
		ur, uc := locate(u)
		vr, vc := locate(v)
		spec.AddDedicatedBent(ur, uc, vr, vc)
	}
	return spec, nil
}

// FoldedHypercube lays out the folded n-cube; see FoldedHypercubeSpec.
func FoldedHypercube(n, l, nodeSide, workers int) (*layout.Layout, error) {
	spec, err := FoldedHypercubeSpec(n, l, nodeSide)
	if err != nil {
		return nil, err
	}
	spec.Workers = workers
	return core.Build(spec)
}

// EnhancedCubeSpec assembles Varvarigos's enhanced-cube spec without
// realizing it: the hypercube plus one pseudo-random outgoing link per
// node, drawn from the same deterministic stream as topology.EnhancedCube
// so the realized graph matches it exactly for the same seed.
func EnhancedCubeSpec(n int, seed uint64, l, nodeSide int) (core.Spec, error) {
	if n < 1 {
		return core.Spec{}, fmt.Errorf("EnhancedCube: need n >= 1")
	}
	g := topology.EnhancedCube(n, seed)
	spec, locate := hypercubeSpec(n, l, nodeSide, fmt.Sprintf("enhanced %d-cube L=%d", n, l))
	cubeLinks := n << uint(n-1)
	for _, lk := range g.Links[cubeLinks:] {
		ur, uc := locate(lk.U)
		vr, vc := locate(lk.V)
		spec.AddDedicatedBent(ur, uc, vr, vc)
	}
	return spec, nil
}

// EnhancedCube lays out Varvarigos's enhanced cube; see EnhancedCubeSpec.
func EnhancedCube(n int, seed uint64, l, nodeSide, workers int) (*layout.Layout, error) {
	spec, err := EnhancedCubeSpec(n, seed, l, nodeSide)
	if err != nil {
		return nil, err
	}
	spec.Workers = workers
	return core.Build(spec)
}
