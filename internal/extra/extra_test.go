package extra

import (
	"sort"
	"testing"

	"mlvlsi/internal/core"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/topology"
)

func mustBuild(t *testing.T) func(*layout.Layout, error) *layout.Layout {
	return func(lay *layout.Layout, err error) *layout.Layout {
		t.Helper()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if v := lay.Verify(); len(v) > 0 {
			t.Fatalf("%s: %d violations, first: %v", lay.Name, len(v), v[0])
		}
		return lay
	}
}

func sameGraph(t *testing.T, lay *layout.Layout, g *topology.Graph) {
	t.Helper()
	if len(lay.Wires) != len(g.Links) {
		t.Fatalf("%s: %d wires, topology has %d links", lay.Name, len(lay.Wires), len(g.Links))
	}
	got := make([]topology.Link, 0, len(lay.Wires))
	for i := range lay.Wires {
		u, v := lay.Wires[i].U, lay.Wires[i].V
		if u > v {
			u, v = v, u
		}
		got = append(got, topology.Link{U: u, V: v})
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].U != got[j].U {
			return got[i].U < got[j].U
		}
		return got[i].V < got[j].V
	})
	want := g.LinkSet()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: wire multiset differs at %d: got %v want %v", lay.Name, i, got[i], want[i])
		}
	}
}

func TestFoldedHypercubeLayout(t *testing.T) {
	for _, tc := range []struct{ n, l int }{
		{2, 2}, {3, 2}, {4, 2}, {5, 4}, {6, 4}, {5, 3},
	} {
		lay := mustBuild(t)(FoldedHypercube(tc.n, tc.l, 0, 0))
		sameGraph(t, lay, topology.FoldedHypercube(tc.n))
	}
}

func TestEnhancedCubeLayout(t *testing.T) {
	for _, tc := range []struct {
		n, l int
		seed uint64
	}{
		{3, 2, 1}, {4, 2, 42}, {5, 4, 7}, {6, 8, 99},
	} {
		lay := mustBuild(t)(EnhancedCube(tc.n, tc.seed, tc.l, 0, 0))
		sameGraph(t, lay, topology.EnhancedCube(tc.n, tc.seed))
	}
}

func TestFoldedAreaOverheadMatchesPaperShape(t *testing.T) {
	// §5.3 predicts folded-hypercube area (7N/3L)² versus hypercube
	// (4N/3L)²: overhead factor (7/4)² ≈ 3.06 in the track-dominated
	// regime. Require the measured overhead to be in a sane band.
	cube := mustBuild(t)(core.Hypercube(8, 2, 0, 0))
	folded := mustBuild(t)(FoldedHypercube(8, 2, 0, 0))
	ratio := float64(folded.Area()) / float64(cube.Area())
	if ratio < 1.3 || ratio > 4.5 {
		t.Errorf("folded/plain area ratio = %.2f, want ≈ 3 (paper's (7/4)²)", ratio)
	}
	// The enhanced cube has twice the extra links and should cost more.
	enhanced := mustBuild(t)(EnhancedCube(8, 5, 2, 0, 0))
	if enhanced.Area() <= folded.Area() {
		t.Errorf("enhanced area %d not above folded area %d", enhanced.Area(), folded.Area())
	}
}

func TestFoldedMultilayerScaling(t *testing.T) {
	a2 := mustBuild(t)(FoldedHypercube(7, 2, 0, 0)).Area()
	a4 := mustBuild(t)(FoldedHypercube(7, 4, 0, 0)).Area()
	a8 := mustBuild(t)(FoldedHypercube(7, 8, 0, 0)).Area()
	if !(a8 < a4 && a4 < a2) {
		t.Errorf("folded hypercube area not monotone in L: %d, %d, %d", a2, a4, a8)
	}
}
