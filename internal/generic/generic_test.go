package generic

import (
	"sort"
	"testing"

	"mlvlsi/internal/core"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/topology"
)

func build(t *testing.T, g *topology.Graph, l int) *layout.Layout {
	t.Helper()
	lay, err := Layout(g, Config{L: l})
	if err != nil {
		t.Fatalf("%s: %v", g.Name, err)
	}
	if v := lay.Verify(); len(v) > 0 {
		t.Fatalf("%s: %d violations, first: %v", lay.Name, len(v), v[0])
	}
	return lay
}

func sameGraph(t *testing.T, lay *layout.Layout, g *topology.Graph) {
	t.Helper()
	if len(lay.Wires) != len(g.Links) {
		t.Fatalf("%s: %d wires, want %d", lay.Name, len(lay.Wires), len(g.Links))
	}
	got := make([]topology.Link, 0, len(lay.Wires))
	for i := range lay.Wires {
		u, v := lay.Wires[i].U, lay.Wires[i].V
		if u > v {
			u, v = v, u
		}
		got = append(got, topology.Link{U: u, V: v})
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].U != got[j].U {
			return got[i].U < got[j].U
		}
		return got[i].V < got[j].V
	})
	want := g.LinkSet()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: wires differ at %d: got %v want %v", lay.Name, i, got[i], want[i])
		}
	}
}

func TestGenericLaysOutAnything(t *testing.T) {
	graphs := []*topology.Graph{
		topology.Hypercube(5),
		topology.KAryNCube(3, 3),
		topology.DeBruijn(5),
		topology.ShuffleExchange(5),
		topology.Star(4),
		topology.CCC(3),
		topology.Complete(9), // non-square N with padding
	}
	for _, g := range graphs {
		for _, l := range []int{2, 4, 8} {
			lay := build(t, g, l)
			sameGraph(t, lay, g)
		}
	}
}

func TestGenericMultilayerShrinks(t *testing.T) {
	g := topology.DeBruijn(7)
	a2 := build(t, g, 2).Area()
	a8 := build(t, g, 8).Area()
	if a8 >= a2 {
		t.Fatalf("generic layout area did not shrink with L: %d -> %d", a2, a8)
	}
	if r := float64(a2) / float64(a8); r < 1.5 {
		t.Errorf("generic L-gain %.2f too small; pool grouping is not engaging", r)
	}
}

func TestGenericVsSpecializedPremium(t *testing.T) {
	// The structured hypercube layout must beat the generic router; the
	// premium is what E18 reports.
	g := topology.Hypercube(7)
	gen := build(t, g, 4)
	spec, err := core.Hypercube(7, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Area() <= spec.Area() {
		t.Errorf("generic area %d not above specialized %d — suspicious", gen.Area(), spec.Area())
	}
	if gen.Area() > 40*spec.Area() {
		t.Errorf("generic premium %.1fx implausibly large", float64(gen.Area())/float64(spec.Area()))
	}
}

func TestGenericCustomPlacement(t *testing.T) {
	// Gray-code snake placement of a ring keeps links short.
	g := topology.KAryNCube(16, 1) // 16-node ring
	rowMajor := build(t, g, 2)
	snake, err := Layout(g, Config{L: 2, Place: func(label, rows, cols int) (int, int) {
		r := label / cols
		c := label % cols
		if r%2 == 1 {
			c = cols - 1 - c
		}
		return r, c
	}})
	if err != nil {
		t.Fatal(err)
	}
	if v := snake.Verify(); len(v) > 0 {
		t.Fatal(v[0])
	}
	if snake.MaxWireLength() > rowMajor.MaxWireLength() {
		t.Errorf("snake placement lengthened ring wires: %d vs %d",
			snake.MaxWireLength(), rowMajor.MaxWireLength())
	}
}

func TestGenericValidation(t *testing.T) {
	g := topology.Hypercube(3)
	if _, err := Layout(g, Config{L: 1}); err == nil {
		t.Error("L=1 accepted")
	}
	if _, err := Layout(g, Config{L: 2, Rows: 2, Cols: 2}); err == nil {
		t.Error("undersized grid accepted")
	}
	if _, err := Layout(g, Config{L: 2, Place: func(int, int, int) (int, int) { return 0, 0 }}); err == nil {
		t.Error("colliding placement accepted")
	}
}

func TestGenericClearanceClean(t *testing.T) {
	lay := build(t, topology.ShuffleExchange(4), 4)
	if v := lay.VerifyStrict(); len(v) > 0 {
		t.Errorf("generic layout not clearance-clean: %v", v[0])
	}
}

// Fuzz: random graphs of random density route legally at random L.
func TestGenericFuzzRandomGraphs(t *testing.T) {
	s := uint64(12345)
	next := func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
	for trial := 0; trial < 25; trial++ {
		n := 4 + next(40)
		g := topology.New("rand", n)
		seen := map[[2]int]bool{}
		edges := 1 + next(3*n)
		for i := 0; i < edges; i++ {
			u, v := next(n), next(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			g.AddLink(u, v)
		}
		l := 2 + next(7)
		lay, err := Layout(g, Config{L: l})
		if err != nil {
			t.Fatalf("trial %d (n=%d l=%d): %v", trial, n, l, err)
		}
		if v := lay.Verify(); len(v) > 0 {
			t.Fatalf("trial %d (n=%d l=%d): %v", trial, n, l, v[0])
		}
		if len(lay.Wires) != len(g.Links) {
			t.Fatalf("trial %d: wires %d != links %d", trial, len(lay.Wires), len(g.Links))
		}
	}
}

// Parallel links through the generic router.
func TestGenericParallelLinks(t *testing.T) {
	g := topology.New("multi", 4)
	g.AddLink(0, 3)
	g.AddLink(0, 3)
	g.AddLink(0, 3)
	g.AddLink(1, 2)
	lay, err := Layout(g, Config{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := lay.Verify(); len(v) > 0 {
		t.Fatal(v[0])
	}
	if len(lay.Wires) != 4 {
		t.Errorf("wires = %d, want 4", len(lay.Wires))
	}
}

// The macro-star network — the last family the paper names (§4.3) — lays
// out via the generally-applicable router.
func TestGenericMacroStar(t *testing.T) {
	g := topology.MacroStar(2, 2)
	for _, l := range []int{2, 4} {
		lay, err := Layout(g, Config{L: l})
		if err != nil {
			t.Fatal(err)
		}
		if v := lay.Verify(); len(v) > 0 {
			t.Fatalf("L=%d: %v", l, v[0])
		}
		sameGraph(t, lay, g)
	}
}
