// Package generic lays out arbitrary graphs under the multilayer grid
// model, realizing §2.3's claim that the recursive grid layout scheme is
// generally applicable: nodes are placed on a near-square grid and every
// link is routed as a bent edge (horizontal escape in the source row's
// channel, vertical trunk in the destination column's channel), with tracks
// shared by optimal greedy interval coloring inside ⌊L/2⌋ "pools" that the
// engine maps onto layer groups.
//
// The result is a legal, verified layout for any topology — at a cost. The
// specialized constructions in internal/core and internal/cluster exploit
// product structure for provably tight channels; the generic router pays a
// constant-factor premium, which experiment E18 quantifies (that premium is
// the measured value of the paper's structured layouts).
package generic

import (
	"context"
	"fmt"
	"math"

	"mlvlsi/internal/core"
	"mlvlsi/internal/intervals"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/topology"
)

// Config tunes the generic router.
type Config struct {
	Name string
	// L is the number of wiring layers (>= 2).
	L int
	// NodeSide fixes the node square side (0 = minimal).
	NodeSide int
	// Place maps a node label to its grid cell; nil uses row-major order
	// on a near-square grid. The placement must be injective; cells beyond
	// the graph's nodes are filled with isolated pad nodes.
	Place func(label, rows, cols int) (row, col int)
	// Rows/Cols force grid dimensions (0 = ⌈√N⌉ near-square).
	Rows, Cols int
	// Workers, Ctx and MaxCells forward to the engine spec: realization
	// fan-out bound, cooperative cancellation, and the planned-cell budget.
	// See core.Spec.
	Workers  int
	Ctx      context.Context
	MaxCells int
	// Obs receives a "generic-plan" span over placement and coloring plus
	// the engine's build spans and counters; nil disables observation.
	Obs *obs.Observer
}

// Layout routes the graph under the multilayer grid model.
func Layout(g *topology.Graph, cfg Config) (*layout.Layout, error) {
	if cfg.L < 2 {
		return nil, fmt.Errorf("%s: need L >= 2", cfg.Name)
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("generic(%s) L=%d", g.Name, cfg.L)
	}
	plan := cfg.Obs.StartSpan("generic-plan")
	plan.SetAttr("nodes", int64(g.N)).SetAttr("links", int64(len(g.Links)))
	defer plan.End() // idempotent: ended explicitly before the engine runs
	rows, cols := cfg.Rows, cfg.Cols
	if rows == 0 || cols == 0 {
		cols = int(math.Ceil(math.Sqrt(float64(g.N))))
		if cols < 1 {
			cols = 1
		}
		rows = (g.N + cols - 1) / cols
	}
	if rows*cols < g.N {
		return nil, fmt.Errorf("%s: grid %dx%d cannot hold %d nodes", cfg.Name, rows, cols, g.N)
	}
	place := cfg.Place
	if place == nil {
		place = func(label, _, cols int) (int, int) { return label / cols, label % cols }
	}
	// Cell assignment; pad labels fill the unused cells.
	cellOf := make([][2]int, rows*cols) // label -> (row, col)
	used := make([]bool, rows*cols)
	for v := 0; v < g.N; v++ {
		r, c := place(v, rows, cols)
		if r < 0 || r >= rows || c < 0 || c >= cols {
			return nil, fmt.Errorf("%s: placement of node %d out of grid", cfg.Name, v)
		}
		idx := r*cols + c
		if used[idx] {
			return nil, fmt.Errorf("%s: placement collision at (%d,%d)", cfg.Name, r, c)
		}
		used[idx] = true
		cellOf[v] = [2]int{r, c}
	}
	next := g.N
	for idx := 0; idx < rows*cols; idx++ {
		if !used[idx] {
			cellOf[next] = [2]int{idx / cols, idx % cols}
			next++
		}
	}
	cellLabel := make(map[[2]int]int, rows*cols)
	for l, rc := range cellOf {
		cellLabel[rc] = l
	}

	// Orient each link to balance port demand: U exits by top port, V
	// enters by right port.
	topLoad := make([]int, rows*cols)
	rightLoad := make([]int, rows*cols)
	type oriented struct {
		u, v int // labels
	}
	links := make([]oriented, len(g.Links))
	for i, lk := range g.Links {
		u, v := lk.U, lk.V
		if topLoad[u] > topLoad[v] || (topLoad[u] == topLoad[v] && rightLoad[v] > rightLoad[u]) {
			u, v = v, u
		}
		topLoad[u]++
		rightLoad[v]++
		links[i] = oriented{u, v}
	}

	// Pool each link (pools become layer groups via the engine's component
	// pinning), then greedy-color H segments per (row, pool) and V segments
	// per (column, pool).
	gMin := cfg.L / 2
	if gMin < 1 {
		gMin = 1
	}
	poolOf := func(i int) int { return i % gMin }
	const poolStride = 1 << 20

	hIvs := make(map[[2]int][]intervals.Interval) // (row, pool) -> intervals
	vIvs := make(map[[2]int][]intervals.Interval) // (col, pool)
	for i, lk := range links {
		ur, uc := cellOf[lk.u][0], cellOf[lk.u][1]
		vr, vc := cellOf[lk.v][0], cellOf[lk.v][1]
		p := poolOf(i)
		hu, hv := 2*uc, 2*vc+1
		if hu > hv {
			hu, hv = hv, hu
		}
		hIvs[[2]int{ur, p}] = append(hIvs[[2]int{ur, p}], intervals.Interval{U: hu, V: hv, ID: i})
		vu, vv := 2*ur+1, 2*vr
		if vu > vv {
			vu, vv = vv, vu
		}
		vIvs[[2]int{vc, p}] = append(vIvs[[2]int{vc, p}], intervals.Interval{U: vu, V: vv, ID: i})
	}
	hTrack := make([]int, len(links))
	for key, ivs := range hIvs {
		tr, _ := intervals.Color(ivs)
		for j, iv := range ivs {
			hTrack[iv.ID] = key[1]*poolStride + tr[j]
		}
	}
	vTrack := make([]int, len(links))
	for key, ivs := range vIvs {
		tr, _ := intervals.Color(ivs)
		for j, iv := range ivs {
			vTrack[iv.ID] = key[1]*poolStride + tr[j]
		}
	}

	spec := core.Spec{
		Name: cfg.Name,
		Rows: rows, Cols: cols,
		L: cfg.L, NodeSide: cfg.NodeSide,
		Label:    func(r, c int) int { return cellLabel[[2]int{r, c}] },
		Workers:  cfg.Workers,
		Ctx:      cfg.Ctx,
		MaxCells: cfg.MaxCells,
		Obs:      cfg.Obs,
	}
	for i, lk := range links {
		spec.Bent = append(spec.Bent, core.BentEdge{
			URow: cellOf[lk.u][0], UCol: cellOf[lk.u][1],
			VRow: cellOf[lk.v][0], VCol: cellOf[lk.v][1],
			HTrack: hTrack[i],
			VTrack: vTrack[i],
		})
	}
	plan.End()
	return core.Build(spec)
}
