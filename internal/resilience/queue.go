package resilience

import (
	"container/list"
	"context"
	"sync"
	"time"

	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
)

// QueueConfig tunes admission. The zero value is serving-safe: GOMAXPROCS
// concurrent slots, a queue bound of four waiters per slot, no per-family
// caps, no observation.
type QueueConfig struct {
	// MaxConcurrent bounds simultaneously running acquisitions; <= 0 means
	// par.Workers(0) (the available parallelism).
	MaxConcurrent int
	// MaxQueue bounds waiters beyond the concurrent slots: an acquisition
	// arriving with MaxQueue waiters already queued is shed immediately.
	// 0 means 4× the resolved MaxConcurrent; negative means no waiting at
	// all (shed whenever no slot is free).
	MaxQueue int
	// FamilyLimits caps concurrent acquisitions per family name, under the
	// global MaxConcurrent. Families absent from the map are uncapped. A
	// waiter whose family is at its cap is skipped (FIFO with skips), so one
	// expensive family cannot starve the rest of the mix.
	FamilyLimits map[string]int
	// Obs receives the queue gauges and shed counters; nil disables.
	Obs *obs.Observer
}

// Queue is bounded admission with deadline-aware load shedding: Acquire
// either grants a slot (possibly after a FIFO wait), or fails fast with a
// typed *OverloadError when the queue is at its bound, the server is
// draining, or the caller's remaining deadline cannot cover the predicted
// wait. All methods are safe for concurrent use; create one with NewQueue.
type Queue struct {
	maxConcurrent int
	maxQueue      int
	familyLimits  map[string]int
	obs           *obs.Observer

	mu           sync.Mutex
	active       int
	familyActive map[string]int
	waiters      *list.List // front = oldest; element values are *waiter
	draining     bool
	maxDepth     int
	// ewmaNs estimates one acquisition's hold time (exponentially weighted,
	// α=0.2), the basis of the predicted queue wait.
	ewmaNs float64
}

// waiter is one queued acquisition. granted and the list position are
// guarded by Queue.mu; ready is closed exactly once, after granted is set.
type waiter struct {
	family  string
	ready   chan struct{}
	granted bool
	elem    *list.Element
	grantAt time.Time
}

// NewQueue creates a queue from cfg, resolving defaulted bounds.
func NewQueue(cfg QueueConfig) *Queue {
	mc := cfg.MaxConcurrent
	if mc <= 0 {
		mc = par.Workers(0)
	}
	mq := cfg.MaxQueue
	switch {
	case mq == 0:
		mq = 4 * mc
	case mq < 0:
		mq = 0
	}
	return &Queue{
		maxConcurrent: mc,
		maxQueue:      mq,
		familyLimits:  cfg.FamilyLimits,
		obs:           cfg.Obs,
		familyActive:  make(map[string]int),
		waiters:       list.New(),
	}
}

// Acquire obtains a slot for one acquisition of the given family, blocking
// in FIFO order while the queue has room, and returns the release function
// that must be called (once) when the work completes. It fails with a typed
// *OverloadError — never by blocking indefinitely — when the queue is at its
// bound, the server is draining, or ctx's remaining deadline cannot cover
// the predicted wait; and with a cancellation error when ctx (which may be
// nil) expires while waiting.
func (q *Queue) Acquire(ctx context.Context, family string) (func(), error) {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		q.obs.Add(obs.ShedDraining, 1)
		return nil, &OverloadError{Reason: ReasonDraining, RetryAfter: time.Second}
	}
	if q.slotFree(family) {
		q.grantLocked(family)
		q.mu.Unlock()
		start := time.Now()
		return q.releaseFunc(family, start), nil
	}
	depth := q.waiters.Len()
	predicted := q.predictWaitLocked(depth)
	if depth >= q.maxQueue {
		q.mu.Unlock()
		q.obs.Add(obs.ShedQueueFull, 1)
		return nil, &OverloadError{Reason: ReasonQueueFull, RetryAfter: predicted, Queued: depth}
	}
	if deadline, ok := deadlineOf(ctx); ok && predicted > 0 && time.Until(deadline) < predicted {
		q.mu.Unlock()
		q.obs.Add(obs.ShedDeadline, 1)
		return nil, &OverloadError{Reason: ReasonDeadline, RetryAfter: predicted, Queued: depth}
	}
	w := &waiter{family: family, ready: make(chan struct{})}
	w.elem = q.waiters.PushBack(w)
	q.noteDepthLocked()
	q.mu.Unlock()

	if ctx == nil {
		<-w.ready
		return q.releaseFunc(family, w.grantAt), nil
	}
	select {
	case <-w.ready:
		return q.releaseFunc(family, w.grantAt), nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the slot is ours, so hand it
			// back through the normal release path and report the
			// cancellation.
			q.mu.Unlock()
			q.releaseFunc(family, w.grantAt)()
			return nil, par.Canceled(ctx)
		}
		q.waiters.Remove(w.elem)
		q.noteDepthLocked()
		q.mu.Unlock()
		return nil, par.Canceled(ctx)
	}
}

// slotFree reports whether an acquisition of family could start now.
// Callers hold q.mu.
func (q *Queue) slotFree(family string) bool {
	if q.active >= q.maxConcurrent {
		return false
	}
	if limit, ok := q.familyLimits[family]; ok && q.familyActive[family] >= limit {
		return false
	}
	return true
}

// grantLocked takes a slot for family. Callers hold q.mu.
func (q *Queue) grantLocked(family string) {
	q.active++
	q.familyActive[family]++
}

// releaseFunc builds the idempotent release closure for a granted slot:
// it returns the slot, folds the observed hold time into the EWMA, and
// promotes eligible waiters.
func (q *Queue) releaseFunc(family string, start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			held := float64(time.Since(start).Nanoseconds())
			q.mu.Lock()
			q.active--
			if q.familyActive[family] > 1 {
				q.familyActive[family]--
			} else {
				delete(q.familyActive, family)
			}
			if q.ewmaNs == 0 {
				q.ewmaNs = held
			} else {
				q.ewmaNs = 0.8*q.ewmaNs + 0.2*held
			}
			q.promoteLocked()
			q.mu.Unlock()
		})
	}
}

// promoteLocked grants freed slots to queued waiters in FIFO order,
// skipping waiters whose family is at its cap. Callers hold q.mu.
func (q *Queue) promoteLocked() {
	for e := q.waiters.Front(); e != nil && q.active < q.maxConcurrent; {
		next := e.Next()
		w := e.Value.(*waiter)
		if q.slotFree(w.family) {
			q.waiters.Remove(e)
			q.grantLocked(w.family)
			w.granted = true
			w.grantAt = time.Now()
			close(w.ready)
		}
		e = next
	}
	q.noteDepthLocked()
}

// predictWaitLocked estimates how long a request joining at the given queue
// position would wait for a slot: the positions ahead of it drain at
// maxConcurrent per EWMA hold time, plus the remainder of the holds now in
// flight (approximated as one full hold). Zero until a first completion
// seeds the EWMA. Callers hold q.mu.
func (q *Queue) predictWaitLocked(position int) time.Duration {
	if q.ewmaNs == 0 {
		return 0
	}
	rounds := 1 + position/q.maxConcurrent
	return time.Duration(float64(rounds) * q.ewmaNs)
}

// noteDepthLocked publishes the depth gauges. Callers hold q.mu.
func (q *Queue) noteDepthLocked() {
	depth := q.waiters.Len()
	if depth > q.maxDepth {
		q.maxDepth = depth
	}
	q.obs.Set(obs.QueueDepth, int64(depth))
	q.obs.Set(obs.QueueMaxDepth, int64(q.maxDepth))
}

// SetDraining flips drain mode: while draining, every Acquire is shed with
// ReasonDraining. In-flight work and already-queued waiters drain normally.
func (q *Queue) SetDraining(v bool) {
	q.mu.Lock()
	q.draining = v
	q.mu.Unlock()
}

// Draining reports drain mode.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// Depth returns the current waiter count.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiters.Len()
}

// MaxDepth returns the high-water waiter count since creation; it can never
// exceed Bound, which the chaos sweep asserts through the queue_max_depth
// gauge.
func (q *Queue) MaxDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.maxDepth
}

// Active returns the granted-slot count.
func (q *Queue) Active() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.active
}

// Bound returns the resolved queue bound (waiters beyond the concurrent
// slots).
func (q *Queue) Bound() int { return q.maxQueue }

// Saturated reports whether the queue is at its bound — the readiness
// signal a fronting balancer drains on.
func (q *Queue) Saturated() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiters.Len() >= q.maxQueue
}

// deadlineOf is ctx.Deadline on a possibly-nil context.
func deadlineOf(ctx context.Context) (time.Time, bool) {
	if ctx == nil {
		return time.Time{}, false
	}
	return ctx.Deadline()
}
