package resilience

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"

	"mlvlsi/internal/obs"
)

// Fault enumerates the network-level fault classes the chaos transport can
// inject — the internal/fault treatment applied at the HTTP boundary
// instead of the layout geometry.
type Fault uint8

const (
	// FaultLatency injects added latency before the exchange.
	FaultLatency Fault = iota
	// Fault5xx short-circuits the exchange with a synthesized 502 (the
	// request never reaches the server, as from a broken intermediary).
	Fault5xx
	// FaultReset fails the exchange with a connection-reset transport error.
	FaultReset
	// FaultTruncate cuts the response body short mid-read.
	FaultTruncate
	// FaultGarble flips bits in the response body, breaking its JSON while
	// keeping the HTTP framing intact.
	FaultGarble

	numFaults
)

// Faults returns every fault class, in declaration order.
func Faults() []Fault {
	out := make([]Fault, numFaults)
	for i := range out {
		out[i] = Fault(i)
	}
	return out
}

func (f Fault) String() string {
	switch f {
	case FaultLatency:
		return "latency"
	case Fault5xx:
		return "5xx"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultGarble:
		return "garble"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// ParseFaults parses a comma-separated fault class list ("reset,garble");
// "all" means every class, "" means none.
func ParseFaults(s string) ([]Fault, error) {
	if s == "" {
		return nil, nil
	}
	if s == "all" {
		return Faults(), nil
	}
	byName := make(map[string]Fault, numFaults)
	for _, f := range Faults() {
		byName[f.String()] = f
	}
	var out []Fault
	for _, name := range strings.Split(s, ",") {
		f, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown fault class %q (have %v, or \"all\")", name, Faults())
		}
		out = append(out, f)
	}
	return out, nil
}

// ChaosConfig tunes the injector.
type ChaosConfig struct {
	// Rates maps each fault class to its per-request injection probability
	// in [0, 1]; absent classes never fire. Each class draws independently,
	// so one exchange can suffer several faults (latency then a reset, say).
	Rates map[Fault]float64
	// Seed seeds the injection RNG; 0 means 1. Equal seeds over equal
	// request sequences inject identical fault schedules.
	Seed int64
	// Latency is the injected-latency magnitude ceiling; <= 0 means 5ms.
	// The draw is uniform in [Latency/2, Latency].
	Latency time.Duration
	// Base performs the real exchanges; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Obs (nil disables) receives chaos_injected.
	Obs *obs.Observer
}

// Chaos is a fault-injecting http.RoundTripper. Wrap any transport —
// httptest clients, the default transport, another Chaos — and every
// exchange rolls each configured fault class at its seeded rate. Safe for
// concurrent use.
type Chaos struct {
	cfg  ChaosConfig
	base http.RoundTripper
	obs  *obs.Observer

	mu       sync.Mutex
	rng      *rand.Rand
	injected [numFaults]int64
}

// NewChaos creates an injector from cfg.
func NewChaos(cfg ChaosConfig) *Chaos {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	base := cfg.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 5 * time.Millisecond
	}
	return &Chaos{cfg: cfg, base: base, obs: cfg.Obs, rng: rand.New(rand.NewSource(seed))}
}

// Injected returns per-class injection counts so far.
func (c *Chaos) Injected() map[Fault]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Fault]int64, numFaults)
	for f, n := range c.injected {
		if n > 0 {
			out[Fault(f)] = n
		}
	}
	return out
}

// roll draws this exchange's fault set and, when latency fires, its
// magnitude. One lock hold per exchange keeps draws ordered and replayable.
func (c *Chaos) roll() (fire [numFaults]bool, latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for f := Fault(0); f < numFaults; f++ {
		rate := c.cfg.Rates[f]
		if rate > 0 && c.rng.Float64() < rate {
			fire[f] = true
			c.injected[f]++
			c.obs.Add(obs.ChaosInjected, 1)
		}
	}
	if fire[FaultLatency] {
		half := c.cfg.Latency / 2
		latency = half + time.Duration(c.rng.Int63n(int64(half)+1))
	}
	return fire, latency
}

// RoundTrip applies the drawn faults around one real exchange.
func (c *Chaos) RoundTrip(req *http.Request) (*http.Response, error) {
	fire, latency := c.roll()
	if fire[FaultLatency] {
		t := time.NewTimer(latency)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	if fire[FaultReset] {
		closeBody(req)
		return nil, fmt.Errorf("chaos: injected reset: %w", syscall.ECONNRESET)
	}
	if fire[Fault5xx] {
		closeBody(req)
		return &http.Response{
			Status:     "502 Bad Gateway (chaos)",
			StatusCode: http.StatusBadGateway,
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:        http.Header{"X-Chaos": []string{"5xx"}},
			Body:          io.NopCloser(strings.NewReader("chaos: injected 502\n")),
			ContentLength: -1,
			Request:       req,
		}, nil
	}
	resp, err := c.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if fire[FaultTruncate] {
		resp.Body = &truncatingBody{rc: resp.Body, remaining: 12}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	} else if fire[FaultGarble] {
		resp.Body = &garblingBody{rc: resp.Body}
	}
	return resp, nil
}

// closeBody releases a request body the exchange will never send.
func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// truncatingBody yields the first remaining bytes, then fails the read the
// way a torn connection does.
type truncatingBody struct {
	rc        io.ReadCloser
	remaining int
}

func (t *truncatingBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.rc.Read(p)
	t.remaining -= n
	if err == io.EOF && t.remaining > 0 {
		// The real body was shorter than the cut: pass the clean EOF on.
		return n, err
	}
	if t.remaining <= 0 {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatingBody) Close() error { return t.rc.Close() }

// garblingBody XORs every read byte, corrupting content while preserving
// length and framing.
type garblingBody struct {
	rc io.ReadCloser
}

func (g *garblingBody) Read(p []byte) (int, error) {
	n, err := g.rc.Read(p)
	for i := 0; i < n; i++ {
		p[i] ^= 0x5a
	}
	return n, err
}

func (g *garblingBody) Close() error { return g.rc.Close() }
