// Package resilience is the robustness layer between the serving engines and
// the wire: server-side overload protection, a client that survives flaky
// networks, and a network-level chaos injector that proves the pair works.
//
// Three pieces compose:
//
//   - Queue is bounded admission with deadline-aware load shedding: at most
//     MaxConcurrent builds run at once (optionally capped per family), at
//     most MaxQueue more wait FIFO for a slot, and a request whose remaining
//     deadline cannot cover the predicted queue wait — an EWMA over observed
//     service times — is rejected immediately with a typed *OverloadError
//     instead of occupying a slot it can never use. The serving layer maps
//     that error to the 429/503 retry-after envelope.
//
//   - Client wraps an *http.Client with capped exponential backoff plus full
//     jitter, budget-aware retries (a retry never sleeps past the request
//     deadline and non-idempotent failures are never retried), and a
//     consecutive-failure circuit breaker with half-open probing. When the
//     breaker is open the client waits for the reopen instant if the
//     deadline affords it, so paced load converges instead of failing fast.
//
//   - Chaos is an httptest-composable RoundTripper injecting seeded,
//     per-class network faults — added latency, synthesized 5xx, connection
//     resets, truncated and garbled bodies — the internal/fault treatment
//     applied at the HTTP boundary instead of the geometry.
//
// Everything reports through internal/obs counters (sheds by reason, queue
// depth gauges, retries, breaker opens, injected faults), so /metricsz and
// the committed BENCH snapshots see the whole control loop.
package resilience

import (
	"fmt"
	"net/http"
	"time"
)

// ShedReason says why admission rejected a request.
type ShedReason uint8

const (
	// ReasonQueueFull: the admission queue was at its configured bound.
	ReasonQueueFull ShedReason = iota
	// ReasonDeadline: the request's remaining deadline could not cover the
	// predicted queue wait, so queueing it could only burn a slot on work
	// whose client is gone by completion.
	ReasonDeadline
	// ReasonDraining: the server is draining for shutdown and admits no new
	// builds.
	ReasonDraining
)

// String returns the reason in envelope casing.
func (r ShedReason) String() string {
	switch r {
	case ReasonQueueFull:
		return "queue_full"
	case ReasonDeadline:
		return "deadline"
	case ReasonDraining:
		return "draining"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// OverloadError is the typed shed rejection: the serving layer maps it onto
// the JSON error envelope with kind "overload", the Status() HTTP code, and
// a Retry-After header derived from RetryAfter.
type OverloadError struct {
	// Reason says which shed path rejected the request.
	Reason ShedReason
	// RetryAfter hints when the queue is likely to have room again (the
	// predicted wait at rejection time); zero means "immediately after a
	// backoff of the client's choosing".
	RetryAfter time.Duration
	// Queued is the queue depth observed at rejection.
	Queued int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("resilience: overloaded (%s): %d queued, retry after %v",
		e.Reason, e.Queued, e.RetryAfter)
}

// Status maps the shed reason onto its HTTP status: server-side conditions
// (queue at bound, draining) are 503 Service Unavailable, while a deadline
// the request itself cannot meet is 429 Too Many Requests — the client must
// come back with more budget or less traffic, not just later.
func (e *OverloadError) Status() int {
	if e.Reason == ReasonDeadline {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}
