package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

// chaosTarget serves a fixed JSON body.
func chaosTarget() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"key":"abcdef0123456789","cache":"HIT","stats":{"area":12345678}}`)
	}))
}

func chaosGet(t *testing.T, c *Chaos, url string) (*http.Response, []byte, error) {
	t.Helper()
	hc := &http.Client{Transport: c, Timeout: 5 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

func TestChaosReset(t *testing.T) {
	ts := chaosTarget()
	defer ts.Close()
	c := NewChaos(ChaosConfig{Rates: map[Fault]float64{FaultReset: 1}, Base: ts.Client().Transport})
	_, _, err := chaosGet(t, c, ts.URL)
	if err == nil || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("err = %v, want an injected connection reset", err)
	}
}

func TestChaos5xx(t *testing.T) {
	ts := chaosTarget()
	defer ts.Close()
	c := NewChaos(ChaosConfig{Rates: map[Fault]float64{Fault5xx: 1}, Base: ts.Client().Transport})
	resp, _, err := chaosGet(t, c, ts.URL)
	if err != nil || resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("resp = %v err = %v, want synthesized 502", resp, err)
	}
}

func TestChaosTruncate(t *testing.T) {
	ts := chaosTarget()
	defer ts.Close()
	c := NewChaos(ChaosConfig{Rates: map[Fault]float64{FaultTruncate: 1}, Base: ts.Client().Transport})
	_, body, err := chaosGet(t, c, ts.URL)
	if err == nil && len(body) >= 20 {
		t.Fatalf("truncated read returned %d clean bytes: %q", len(body), body)
	}
}

func TestChaosGarble(t *testing.T) {
	ts := chaosTarget()
	defer ts.Close()
	c := NewChaos(ChaosConfig{Rates: map[Fault]float64{FaultGarble: 1}, Base: ts.Client().Transport})
	resp, body, err := chaosGet(t, c, ts.URL)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("garble broke framing: %v %v", resp, err)
	}
	if strings.HasPrefix(string(body), `{"key"`) {
		t.Fatalf("body came through ungarbled: %q", body)
	}
}

func TestChaosLatency(t *testing.T) {
	ts := chaosTarget()
	defer ts.Close()
	c := NewChaos(ChaosConfig{Rates: map[Fault]float64{FaultLatency: 1},
		Latency: 50 * time.Millisecond, Base: ts.Client().Transport})
	start := time.Now()
	_, _, err := chaosGet(t, c, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 25*time.Millisecond {
		t.Fatalf("exchange took %v, want >= 25ms injected latency", took)
	}
	// Injected latency must respect the request's own deadline.
	hc := &http.Client{Transport: c}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if _, err := hc.Do(req); err == nil {
		t.Fatal("latency injection ignored the request deadline")
	}
}

// TestChaosSeededDeterminism: equal seeds produce identical fault
// schedules over identical request sequences, the property every committed
// chaos result depends on.
func TestChaosSeededDeterminism(t *testing.T) {
	ts := chaosTarget()
	defer ts.Close()
	rates := map[Fault]float64{Fault5xx: 0.3, FaultGarble: 0.3, FaultTruncate: 0.2}
	run := func(seed int64) map[Fault]int64 {
		c := NewChaos(ChaosConfig{Rates: rates, Seed: seed, Base: ts.Client().Transport})
		for i := 0; i < 60; i++ {
			if resp, _, err := chaosGet(t, c, ts.URL); err == nil {
				_ = resp
			}
		}
		return c.Injected()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	other := run(7)
	if reflect.DeepEqual(a, other) {
		t.Fatalf("different seeds produced identical schedules %v (suspicious)", a)
	}
	total := int64(0)
	for _, n := range a {
		total += n
	}
	if total == 0 {
		t.Fatal("no faults injected at 30/30/20% rates over 60 requests")
	}
}

func TestParseFaults(t *testing.T) {
	if fs, err := ParseFaults("all"); err != nil || len(fs) != len(Faults()) {
		t.Fatalf("ParseFaults(all) = %v, %v", fs, err)
	}
	if fs, err := ParseFaults(""); err != nil || fs != nil {
		t.Fatalf("ParseFaults(empty) = %v, %v", fs, err)
	}
	fs, err := ParseFaults("reset, garble")
	if err != nil || len(fs) != 2 || fs[0] != FaultReset || fs[1] != FaultGarble {
		t.Fatalf("ParseFaults(reset, garble) = %v, %v", fs, err)
	}
	if _, err := ParseFaults("bogus"); err == nil {
		t.Fatal("ParseFaults accepted an unknown class")
	}
}
