package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
)

func TestQueueGrantsUpToConcurrentThenQueues(t *testing.T) {
	q := NewQueue(QueueConfig{MaxConcurrent: 2, MaxQueue: 4})
	rel1, err := q.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := q.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if q.Active() != 2 {
		t.Fatalf("active = %d, want 2", q.Active())
	}
	granted := make(chan struct{})
	go func() {
		rel3, err := q.Acquire(context.Background(), "a")
		if err != nil {
			t.Error(err)
			close(granted)
			return
		}
		close(granted)
		rel3()
	}()
	waitFor(t, func() bool { return q.Depth() == 1 })
	select {
	case <-granted:
		t.Fatal("third acquisition granted beyond MaxConcurrent")
	case <-time.After(20 * time.Millisecond):
	}
	rel1()
	select {
	case <-granted:
	case <-time.After(time.Second):
		t.Fatal("release did not promote the waiter")
	}
	rel2()
	// Double release must be a no-op.
	rel2()
	waitFor(t, func() bool { return q.Active() == 0 })
}

func TestQueueShedsAtBound(t *testing.T) {
	o := obs.New()
	q := NewQueue(QueueConfig{MaxConcurrent: 1, MaxQueue: -1, Obs: o})
	rel, err := q.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, err = q.Acquire(context.Background(), "a")
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonQueueFull {
		t.Fatalf("err = %v, want OverloadError queue_full", err)
	}
	if oe.Status() != 503 {
		t.Fatalf("queue_full status = %d, want 503", oe.Status())
	}
	if got := o.Snapshot().Get(obs.ShedQueueFull); got != 1 {
		t.Fatalf("shed_queue_full = %d, want 1", got)
	}
}

func TestQueueDeadlineShed(t *testing.T) {
	o := obs.New()
	q := NewQueue(QueueConfig{MaxConcurrent: 1, MaxQueue: 8, Obs: o})
	// Seed the EWMA with one observed ~60ms hold.
	rel, err := q.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	rel()

	rel, err = q.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = q.Acquire(ctx, "a")
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want OverloadError deadline", err)
	}
	if oe.Status() != 429 {
		t.Fatalf("deadline status = %d, want 429", oe.Status())
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("deadline shed carries no retry-after hint")
	}
	if got := o.Snapshot().Get(obs.ShedDeadline); got != 1 {
		t.Fatalf("shed_deadline = %d, want 1", got)
	}
	// A deadline that covers the predicted wait queues instead of shedding.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		rel2, err := q.Acquire(ctx2, "a")
		if err == nil {
			rel2()
		}
		done <- err
	}()
	waitFor(t, func() bool { return q.Depth() == 1 })
	rel()
	if err := <-done; err != nil {
		t.Fatalf("covered-deadline acquire failed: %v", err)
	}
}

func TestQueueFamilyLimit(t *testing.T) {
	q := NewQueue(QueueConfig{MaxConcurrent: 4, MaxQueue: 4,
		FamilyLimits: map[string]int{"hyper": 1}})
	relH, err := q.Acquire(context.Background(), "hyper")
	if err != nil {
		t.Fatal(err)
	}
	// A second hyper must wait even though global slots are free...
	hyperDone := make(chan struct{})
	go func() {
		rel, err := q.Acquire(context.Background(), "hyper")
		if err != nil {
			t.Error(err)
		} else {
			rel()
		}
		close(hyperDone)
	}()
	waitFor(t, func() bool { return q.Depth() == 1 })
	// ...while another family sails through (FIFO with skips).
	relM, err := q.Acquire(context.Background(), "mesh")
	if err != nil {
		t.Fatalf("mesh blocked by hyper's family limit: %v", err)
	}
	relM()
	select {
	case <-hyperDone:
		t.Fatal("second hyper ran concurrently with the first")
	case <-time.After(20 * time.Millisecond):
	}
	relH()
	select {
	case <-hyperDone:
	case <-time.After(time.Second):
		t.Fatal("family slot release did not promote the hyper waiter")
	}
}

func TestQueueDrainingSheds(t *testing.T) {
	q := NewQueue(QueueConfig{MaxConcurrent: 2, MaxQueue: 2})
	q.SetDraining(true)
	_, err := q.Acquire(context.Background(), "a")
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonDraining {
		t.Fatalf("err = %v, want OverloadError draining", err)
	}
	q.SetDraining(false)
	rel, err := q.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatalf("acquire after drain lifted: %v", err)
	}
	rel()
}

func TestQueueWaiterCancellation(t *testing.T) {
	q := NewQueue(QueueConfig{MaxConcurrent: 1, MaxQueue: 4})
	rel, err := q.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx, "a")
		done <- err
	}()
	waitFor(t, func() bool { return q.Depth() == 1 })
	cancel()
	err = <-done
	if !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("canceled waiter returned %v, want ErrCanceled", err)
	}
	if q.Depth() != 0 {
		t.Fatalf("canceled waiter still queued (depth %d)", q.Depth())
	}
	// The held slot is unaffected and still releasable.
	rel()
	if q.Active() != 0 {
		t.Fatalf("active = %d after release, want 0", q.Active())
	}
}

// TestQueueDepthNeverExceedsBound hammers the queue from many goroutines
// and asserts the waiter count never passed the configured bound — the
// invariant the chaos sweep re-checks over real HTTP.
func TestQueueDepthNeverExceedsBound(t *testing.T) {
	o := obs.New()
	const bound = 3
	q := NewQueue(QueueConfig{MaxConcurrent: 2, MaxQueue: bound, Obs: o})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := q.Acquire(context.Background(), "a")
			if err != nil {
				var oe *OverloadError
				if !errors.As(err, &oe) {
					t.Errorf("unexpected acquire error %v", err)
				}
				return
			}
			time.Sleep(time.Millisecond)
			rel()
		}()
	}
	wg.Wait()
	if q.MaxDepth() > bound {
		t.Fatalf("queue depth reached %d, bound %d", q.MaxDepth(), bound)
	}
	if got := o.Snapshot().Get(obs.QueueMaxDepth); got > bound {
		t.Fatalf("queue_max_depth gauge %d exceeds bound %d", got, bound)
	}
	if q.Active() != 0 || q.Depth() != 0 {
		t.Fatalf("queue not drained: active %d depth %d", q.Active(), q.Depth())
	}
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
