package resilience

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mlvlsi/internal/obs"
	"mlvlsi/internal/par"
)

// RetryAfterMillisHeader carries the server's retry hint at millisecond
// resolution, alongside the standard (whole-second) Retry-After header that
// fronting proxies understand. The client prefers it when present.
const RetryAfterMillisHeader = "X-Retry-After-Ms"

// Policy tunes Client. Every field has a serving-safe zero value.
type Policy struct {
	// MaxAttempts bounds total attempts per request, the first included;
	// <= 0 means 4.
	MaxAttempts int
	// BaseBackoff is the pre-jitter backoff of the first retry; it doubles
	// per retry up to MaxBackoff. <= 0 means 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the pre-jitter backoff; <= 0 means 2s.
	MaxBackoff time.Duration
	// BreakerThreshold is the consecutive attempt-failure count that opens
	// the circuit breaker; <= 0 means 8.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before a half-open
	// probe; <= 0 means 250ms.
	BreakerCooldown time.Duration
	// Seed seeds the jitter RNG; 0 means 1, so runs are deterministic by
	// default (pass something varying for production spread).
	Seed int64
}

func (p Policy) maxAttempts() int { return defInt(p.MaxAttempts, 4) }
func (p Policy) base() time.Duration {
	return defDur(p.BaseBackoff, 25*time.Millisecond)
}
func (p Policy) cap() time.Duration      { return defDur(p.MaxBackoff, 2*time.Second) }
func (p Policy) threshold() int          { return defInt(p.BreakerThreshold, 8) }
func (p Policy) cooldown() time.Duration { return defDur(p.BreakerCooldown, 250*time.Millisecond) }

func defInt(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

func defDur(v, d time.Duration) time.Duration {
	if v <= 0 {
		return d
	}
	return v
}

// Request is one logical HTTP exchange the client will see through.
type Request struct {
	// Method and URL name the exchange; Method defaults to GET (POST when
	// Body is non-nil).
	Method string
	URL    string
	// Body is sent verbatim on every attempt (the client never retries a
	// half-sent stream — the body is a byte slice precisely so replays are
	// exact).
	Body []byte
	// ContentType defaults to application/json when Body is non-nil.
	ContentType string
	// Idempotent declares that re-sending after an ambiguous transport
	// failure (connection reset, truncated response) is safe. Only
	// idempotent requests are retried on such failures; definite rejections
	// (4xx other than 429) are never retried either way.
	Idempotent bool
	// Validate, when non-nil, inspects a 2xx response; an error marks the
	// attempt failed-retryable (the wire can garble a body without breaking
	// HTTP framing, so callers that parse should validate here, inside the
	// retry loop).
	Validate func(status int, body []byte) error
}

// Response is a completed exchange: the final attempt's status, headers,
// and fully-read body, plus how many attempts the request took.
type Response struct {
	Status   int
	Header   http.Header
	Body     []byte
	Attempts int
}

// StatusError reports a non-2xx HTTP response as an error.
type StatusError struct {
	Status    int
	Retryable bool
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("resilience: http status %d (retryable=%t)", e.Status, e.Retryable)
}

// BreakerOpenError reports a request refused (or abandoned) because the
// circuit breaker was open and the deadline could not cover the reopen wait.
type BreakerOpenError struct {
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resilience: circuit breaker open, retry after %v", e.RetryAfter)
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Client is a retrying HTTP client: capped exponential backoff with full
// jitter, budget-aware (no retry ever sleeps past the request deadline, no
// non-idempotent ambiguous failure is retried), plus a consecutive-failure
// circuit breaker with half-open probing. Create one with NewClient; all
// methods are safe for concurrent use and one Client should be shared by
// all workers talking to one server, so the breaker sees the whole stream.
type Client struct {
	httpc  *http.Client
	policy Policy
	obs    *obs.Observer

	mu          sync.Mutex
	rng         *rand.Rand
	consecutive int
	state       int
	reopenAt    time.Time
	probing     bool
}

// NewClient wraps h (nil means http.DefaultClient) with the policy. The
// observer (nil disables) receives client_retries and breaker_opens.
func NewClient(h *http.Client, p Policy, o *obs.Observer) *Client {
	if h == nil {
		h = http.DefaultClient
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Client{httpc: h, policy: p, obs: o, rng: rand.New(rand.NewSource(seed))}
}

// Post runs an idempotent JSON POST through the retry loop. Idempotency is
// the layoutd contract: every endpoint is a pure function of the canonical
// request (DESIGN §8), so replaying after an ambiguous failure cannot
// double-apply anything.
func (c *Client) Post(ctx context.Context, url string, body []byte, validate func(int, []byte) error) (*Response, error) {
	return c.Do(ctx, Request{Method: http.MethodPost, URL: url, Body: body,
		Idempotent: true, Validate: validate})
}

// Do sees req through: attempts, classifies, backs off, and retries until
// success, a definite rejection, exhausted attempts, or an exhausted
// deadline. The returned Response is the final attempt's (nil when no
// attempt produced one); on failure the error classifies it — *StatusError,
// *BreakerOpenError, a cancellation wrapping par.ErrCanceled, or the
// transport's own error.
func (c *Client) Do(ctx context.Context, req Request) (*Response, error) {
	var lastResp *Response
	var lastErr error
	for attempt := 0; attempt < c.policy.maxAttempts(); attempt++ {
		if attempt > 0 {
			c.obs.Add(obs.ClientRetries, 1)
		}
		if err := c.breakerAllow(ctx); err != nil {
			if lastErr != nil {
				return lastResp, lastErr
			}
			return lastResp, err
		}
		resp, err, retryable := c.attempt(ctx, req)
		if resp != nil {
			resp.Attempts = attempt + 1
			lastResp = resp
		}
		if err == nil {
			return lastResp, nil
		}
		lastErr = err
		if cerr := par.Canceled(ctx); cerr != nil {
			return lastResp, cerr
		}
		if !retryable {
			return lastResp, lastErr
		}
		if !c.sleepBackoff(ctx, attempt, retryAfterHint(resp)) {
			return lastResp, lastErr
		}
	}
	return lastResp, lastErr
}

// attempt runs one exchange and classifies the outcome: (resp, nil, _) on
// success, else the error and whether the failure class is retryable for
// this request. It also feeds the breaker: transport failures, 5xx other
// than the overload statuses, and validation failures count as breaker
// failures ("server broken"); clean responses — including explicit
// backpressure (429/503, which carry their own retry discipline) and
// definite rejections — count as contact.
func (c *Client) attempt(ctx context.Context, req Request) (*Response, error, bool) {
	method := req.Method
	if method == "" {
		method = http.MethodGet
		if req.Body != nil {
			method = http.MethodPost
		}
	}
	hr, err := http.NewRequestWithContext(orBackground(ctx), method, req.URL, bytes.NewReader(req.Body))
	if err != nil {
		return nil, err, false
	}
	if req.Body != nil {
		ct := req.ContentType
		if ct == "" {
			ct = "application/json"
		}
		hr.Header.Set("Content-Type", ct)
	}
	raw, err := c.httpc.Do(hr)
	if err != nil {
		if cerr := par.Canceled(ctx); cerr != nil {
			// The caller's own deadline or cancellation, not the server's
			// fault: no breaker damage, no retry.
			return nil, cerr, false
		}
		c.record(true)
		return nil, err, req.Idempotent
	}
	body, readErr := io.ReadAll(raw.Body)
	raw.Body.Close()
	resp := &Response{Status: raw.StatusCode, Header: raw.Header, Body: body}
	if readErr != nil {
		// The response broke mid-body: framing-wise this is the same
		// ambiguity as a connection reset.
		c.record(true)
		return resp, fmt.Errorf("resilience: reading response body: %w", readErr), req.Idempotent
	}
	switch {
	case raw.StatusCode == http.StatusTooManyRequests,
		raw.StatusCode == http.StatusServiceUnavailable:
		// Explicit backpressure: retry after the server's hint, but do not
		// count a deliberate shed as breaker damage.
		c.record(false)
		return resp, &StatusError{Status: raw.StatusCode, Retryable: true}, true
	case raw.StatusCode >= 500:
		c.record(true)
		return resp, &StatusError{Status: raw.StatusCode, Retryable: true}, true
	case raw.StatusCode >= 400:
		// A definite rejection (param, budget, malformed): retrying cannot
		// change the answer.
		c.record(false)
		return resp, &StatusError{Status: raw.StatusCode, Retryable: false}, false
	}
	if req.Validate != nil {
		if verr := req.Validate(raw.StatusCode, body); verr != nil {
			c.record(true)
			return resp, fmt.Errorf("resilience: response failed validation: %w", verr), true
		}
	}
	c.record(false)
	return resp, nil, false
}

// breakerAllow gates one attempt on the breaker. Closed passes immediately;
// half-open admits exactly one probe and parks the rest; open waits for the
// reopen instant when the deadline affords it (converging instead of
// failing fast under paced load) and otherwise fails with
// *BreakerOpenError.
func (c *Client) breakerAllow(ctx context.Context) error {
	for {
		c.mu.Lock()
		now := time.Now()
		if c.state == breakerOpen && !now.Before(c.reopenAt) {
			c.state = breakerHalfOpen
			c.probing = false
		}
		switch c.state {
		case breakerClosed:
			c.mu.Unlock()
			return nil
		case breakerHalfOpen:
			if !c.probing {
				c.probing = true
				c.mu.Unlock()
				return nil
			}
			c.mu.Unlock()
			// Another attempt holds the probe; poll for its verdict.
			if !c.sleep(ctx, c.policy.cooldown()/4) {
				return &BreakerOpenError{RetryAfter: c.policy.cooldown() / 4}
			}
		default: // breakerOpen
			wait := c.reopenAt.Sub(now)
			c.mu.Unlock()
			if !c.sleep(ctx, wait) {
				return &BreakerOpenError{RetryAfter: wait}
			}
		}
	}
}

// record feeds one attempt outcome to the breaker.
func (c *Client) record(failure bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !failure {
		c.consecutive = 0
		if c.state == breakerHalfOpen {
			c.state = breakerClosed
			c.probing = false
		}
		return
	}
	c.consecutive++
	switch {
	case c.state == breakerHalfOpen:
		// The probe failed: back to open for another cooldown.
		c.state = breakerOpen
		c.reopenAt = time.Now().Add(c.policy.cooldown())
		c.probing = false
		c.obs.Add(obs.BreakerOpens, 1)
	case c.state == breakerClosed && c.consecutive >= c.policy.threshold():
		c.state = breakerOpen
		c.reopenAt = time.Now().Add(c.policy.cooldown())
		c.obs.Add(obs.BreakerOpens, 1)
	}
}

// State returns the breaker state as a string (tests and reports).
func (c *Client) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// sleepBackoff sleeps the capped-exponential-full-jitter backoff for the
// given retry ordinal, floored at the server's Retry-After hint. It returns
// false — without sleeping — when the remaining deadline cannot cover the
// sleep, which is the budget-aware stop: better to hand the caller the last
// error while it still has time to act than to burn the budget waiting.
func (c *Client) sleepBackoff(ctx context.Context, attempt int, hint time.Duration) bool {
	ceil := c.policy.base() << attempt
	if max := c.policy.cap(); ceil > max || ceil <= 0 {
		ceil = max
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.mu.Unlock()
	if d < hint {
		d = hint
	}
	return c.sleep(ctx, d)
}

// sleep waits d under ctx (which may be nil), returning false without
// sleeping when the deadline cannot cover d, and false on cancellation.
func (c *Client) sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	if deadline, ok := deadlineOf(ctx); ok && time.Until(deadline) < d {
		return false
	}
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryAfterHint extracts the server's retry hint from a response, if any:
// X-Retry-After-Ms at millisecond resolution, else the standard
// whole-second Retry-After.
func retryAfterHint(resp *Response) time.Duration {
	if resp == nil {
		return 0
	}
	if ms := resp.Header.Get(RetryAfterMillisHeader); ms != "" {
		if n, err := strconv.ParseInt(ms, 10, 64); err == nil && n > 0 {
			return time.Duration(n) * time.Millisecond
		}
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 0
}

// orBackground substitutes the background context for nil.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
