package resilience

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mlvlsi/internal/obs"
)

// flakyHandler fails the first failures requests with status, then serves
// {"ok":true}.
func flakyHandler(failures int64, status int) (http.HandlerFunc, *atomic.Int64) {
	var n atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= failures {
			http.Error(w, "flaky", status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	}, &n
}

func jsonValidate(_ int, body []byte) error {
	var v map[string]any
	return json.Unmarshal(body, &v)
}

func TestClientRetriesTransient5xx(t *testing.T) {
	h, _ := flakyHandler(2, http.StatusBadGateway)
	ts := httptest.NewServer(h)
	defer ts.Close()
	o := obs.New()
	c := NewClient(ts.Client(), Policy{BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}, o)
	resp, err := c.Post(context.Background(), ts.URL, []byte(`{}`), jsonValidate)
	if err != nil {
		t.Fatalf("Do = %v, want success after retries", err)
	}
	if resp.Status != 200 || resp.Attempts != 3 {
		t.Fatalf("status %d attempts %d, want 200 after 3 attempts", resp.Status, resp.Attempts)
	}
	if got := o.Snapshot().Get(obs.ClientRetries); got != 2 {
		t.Fatalf("client_retries = %d, want 2", got)
	}
}

func TestClientNeverRetriesDefiniteRejections(t *testing.T) {
	h, hits := flakyHandler(1000, http.StatusBadRequest)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.Client(), Policy{BaseBackoff: time.Millisecond}, nil)
	resp, err := c.Post(context.Background(), ts.URL, []byte(`{}`), jsonValidate)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 400 || se.Retryable {
		t.Fatalf("err = %v, want permanent StatusError 400", err)
	}
	if resp == nil || resp.Attempts != 1 || hits.Load() != 1 {
		t.Fatalf("400 was retried: attempts %v, hits %d", resp, hits.Load())
	}
}

func TestClientRespectsRetryAfterHint(t *testing.T) {
	var n atomic.Int64
	var gap atomic.Int64
	var last atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if n.Add(1) == 1 {
			w.Header().Set(RetryAfterMillisHeader, "80")
			http.Error(w, "shed", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	c := NewClient(ts.Client(), Policy{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}, nil)
	if _, err := c.Post(context.Background(), ts.URL, []byte(`{}`), nil); err != nil {
		t.Fatal(err)
	}
	if g := time.Duration(gap.Load()); g < 75*time.Millisecond {
		t.Fatalf("retry came %v after the 503, want the 80ms Retry-After floor respected", g)
	}
}

func TestClientBudgetAwareNoRetryPastDeadline(t *testing.T) {
	h, hits := flakyHandler(1000, http.StatusBadGateway)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.Client(), Policy{BaseBackoff: 300 * time.Millisecond, MaxBackoff: 300 * time.Millisecond, MaxAttempts: 10}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Post(ctx, ts.URL, []byte(`{}`), nil)
	if err == nil {
		t.Fatal("want failure against an always-502 server")
	}
	// The client must give up without sleeping the 300ms backoff it cannot
	// afford, and without burning attempts it has no budget for.
	if took := time.Since(start); took > 250*time.Millisecond {
		t.Fatalf("Do took %v, want it to stop before the un-affordable backoff", took)
	}
	if hits.Load() > 5 {
		t.Fatalf("server saw %d attempts inside a 100ms budget with 300ms backoff", hits.Load())
	}
}

func TestClientNonIdempotentAmbiguousFailureNotRetried(t *testing.T) {
	h, hits := flakyHandler(0, 0)
	ts := httptest.NewServer(h)
	defer ts.Close()
	// Reset every exchange at the transport.
	chaos := NewChaos(ChaosConfig{Rates: map[Fault]float64{FaultReset: 1}, Base: ts.Client().Transport})
	hc := &http.Client{Transport: chaos}
	c := NewClient(hc, Policy{BaseBackoff: time.Millisecond}, nil)

	_, err := c.Do(context.Background(), Request{Method: http.MethodPost, URL: ts.URL,
		Body: []byte(`{}`), Idempotent: false})
	if err == nil {
		t.Fatal("want transport error")
	}
	if hits.Load() != 0 {
		t.Fatalf("request reached the server despite the reset")
	}
	if injected := chaos.Injected()[FaultReset]; injected != 1 {
		t.Fatalf("non-idempotent request was retried: %d resets injected", injected)
	}
	// The same failure on an idempotent request is retried.
	_, _ = c.Do(context.Background(), Request{Method: http.MethodPost, URL: ts.URL,
		Body: []byte(`{}`), Idempotent: true})
	if injected := chaos.Injected()[FaultReset]; injected != 5 {
		t.Fatalf("idempotent request attempts = %d resets total, want 5 (1 + MaxAttempts 4)", injected)
	}
}

func TestClientValidationFailureRetries(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			fmt.Fprint(w, `{"truncated...`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()
	c := NewClient(ts.Client(), Policy{BaseBackoff: time.Millisecond}, nil)
	resp, err := c.Post(context.Background(), ts.URL, []byte(`{}`), jsonValidate)
	if err != nil || resp.Attempts != 2 {
		t.Fatalf("Do = %v attempts %v, want success on attempt 2", err, resp)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	var broken atomic.Bool
	broken.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	o := obs.New()
	c := NewClient(ts.Client(), Policy{
		MaxAttempts: 1, BaseBackoff: time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond,
	}, o)
	for i := 0; i < 3; i++ {
		if _, err := c.Post(context.Background(), ts.URL, []byte(`{}`), nil); err == nil {
			t.Fatal("want failure from broken server")
		}
	}
	if c.State() != "open" {
		t.Fatalf("breaker state after %d consecutive failures = %q, want open", 3, c.State())
	}
	if got := o.Snapshot().Get(obs.BreakerOpens); got != 1 {
		t.Fatalf("breaker_opens = %d, want 1", got)
	}
	// While open, a request with a tight deadline fails fast with the typed
	// error instead of hammering the server.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	_, err := c.Post(ctx, ts.URL, []byte(`{}`), nil)
	cancel()
	var be *BreakerOpenError
	if !errors.As(err, &be) {
		t.Fatalf("open-breaker short-deadline err = %v, want BreakerOpenError", err)
	}
	// Heal the server; a patient request waits out the cooldown, probes, and
	// closes the breaker.
	broken.Store(false)
	resp, err := c.Post(context.Background(), ts.URL, []byte(`{}`), nil)
	if err != nil || resp.Status != 200 {
		t.Fatalf("post-recovery request = %v %v, want 200", resp, err)
	}
	if c.State() != "closed" {
		t.Fatalf("breaker state after successful probe = %q, want closed", c.State())
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	h, _ := flakyHandler(1<<40, http.StatusInternalServerError)
	ts := httptest.NewServer(h)
	defer ts.Close()
	o := obs.New()
	c := NewClient(ts.Client(), Policy{
		MaxAttempts: 1, BreakerThreshold: 2, BreakerCooldown: 30 * time.Millisecond,
	}, o)
	for i := 0; i < 2; i++ {
		_, _ = c.Post(context.Background(), ts.URL, []byte(`{}`), nil)
	}
	if c.State() != "open" {
		t.Fatalf("state = %q, want open", c.State())
	}
	time.Sleep(40 * time.Millisecond)
	// The probe fails against the still-broken server: back to open.
	_, _ = c.Post(context.Background(), ts.URL, []byte(`{}`), nil)
	if c.State() != "open" {
		t.Fatalf("state after failed probe = %q, want open again", c.State())
	}
	if got := o.Snapshot().Get(obs.BreakerOpens); got != 2 {
		t.Fatalf("breaker_opens = %d, want 2 (initial + reopen)", got)
	}
}
