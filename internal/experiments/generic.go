package experiments

import (
	"mlvlsi/internal/core"
	"mlvlsi/internal/generic"
	"mlvlsi/internal/topology"
)

// E18GenericVsSpecialized quantifies the value of the paper's structured
// constructions: the generic §2.3 router lays out any graph legally, but
// the product-structured layouts use provably tight channels. The premium
// column is the measured price of ignoring structure — and the generic
// rows for de Bruijn / shuffle-exchange graphs (networks the paper's
// context mentions but gives no construction for) show the scheme's
// general applicability.
func E18GenericVsSpecialized() *Table {
	t := &Table{
		ID:    "E18 (§2.3, generic router)",
		Title: "generic multilayer router vs structured constructions",
		Header: []string{"network", "N", "L", "generic-area", "specialized-area",
			"premium", "generic-maxwire", "spec-maxwire"},
	}
	type specialized func(l int) (area, maxwire int, err error)
	cases := []struct {
		g    *topology.Graph
		spec specialized
	}{
		{topology.Hypercube(7), func(l int) (int, int, error) {
			lay, err := core.Hypercube(7, l, 0, 0)
			if err != nil {
				return 0, 0, err
			}
			return lay.Area(), lay.MaxWireLength(), nil
		}},
		{topology.KAryNCube(5, 3), func(l int) (int, int, error) {
			lay, err := core.KAryNCube(5, 3, l, false, 0, 0)
			if err != nil {
				return 0, 0, err
			}
			return lay.Area(), lay.MaxWireLength(), nil
		}},
		{topology.GeneralizedHypercube([]int{8, 8}), func(l int) (int, int, error) {
			lay, err := core.GeneralizedHypercube([]int{8, 8}, l, 0, 0)
			if err != nil {
				return 0, 0, err
			}
			return lay.Area(), lay.MaxWireLength(), nil
		}},
	}
	for _, c := range cases {
		for _, l := range []int{2, 4, 8} {
			gen, err := generic.Layout(c.g, generic.Config{L: l})
			if err != nil {
				t.Note("generic build failed %s L=%d: %v", c.g.Name, l, err)
				continue
			}
			gs := checkedStats(t, gen)
			sa, sw, err := c.spec(l)
			if err != nil {
				t.Note("specialized build failed %s L=%d: %v", c.g.Name, l, err)
				continue
			}
			t.Add(c.g.Name, c.g.N, l, gs.Area, sa,
				ratio(float64(gs.Area), float64(sa)), gs.MaxWire, sw)
		}
	}
	// Families with no specialized construction: generic-only rows.
	for _, g := range []*topology.Graph{topology.DeBruijn(7), topology.ShuffleExchange(7)} {
		for _, l := range []int{2, 4, 8} {
			gen, err := generic.Layout(g, generic.Config{L: l})
			if err != nil {
				t.Note("generic build failed %s L=%d: %v", g.Name, l, err)
				continue
			}
			gs := checkedStats(t, gen)
			t.Add(g.Name, g.N, l, gs.Area, "-", "-", gs.MaxWire, "-")
		}
	}
	t.Note("N is the graph's node count; the router pads the grid with isolated cells when N is")
	t.Note("not a product of the grid sides. L-scaling can be mildly non-monotone: more layer")
	t.Note("pools split the interval sets, and per-pool congestion sums need not shrink evenly.")
	t.Note("the premium (2-8x typical) is the measured value of exploiting product structure,")
	t.Note("§2.4's whole point; the de Bruijn / shuffle-exchange rows show §2.3's claim that the")
	t.Note("grid scheme lays out arbitrary networks under the multilayer model.")
	return t
}
