package experiments

import (
	"mlvlsi/internal/core"
	"mlvlsi/internal/formulas"
	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/route"
	"mlvlsi/internal/track"
)

// verifyLimit bounds the instance size for full legality verification
// inside experiments (the verifier hashes every unit wire edge; all
// constructions are verified exhaustively at moderate sizes in the test
// suite, so experiments re-verify only the smaller instances).
const verifyLimit = 1100

// VerifyMemBytes, when non-zero, caps the verifier working set of every
// experiment re-verification, engaging the tiled streaming rung when the
// dense bitset would not fit (see Options.VerifyMemBytes at the module
// root). paperbench's -verify-mem flag sets it before any experiment runs;
// zero (the default) leaves the dense→map ladder unbudgeted.
var VerifyMemBytes int

// checkedStats verifies the layout when it is small enough and returns its
// stats; verification failures are reported in the table notes.
func checkedStats(t *Table, lay *layout.Layout) layout.Stats {
	if len(lay.Nodes) <= verifyLimit {
		if v, _ := lay.VerifyOpts(nil, grid.CheckOptions{TileBytes: VerifyMemBytes}); len(v) > 0 {
			t.Note("VERIFY FAILED %s: %v", lay.Name, v[0])
		}
	}
	return lay.Stats()
}

// E4KAryNCube regenerates §3.1: k-ary n-cube multilayer layouts versus the
// closed forms 16N²/(L²k²) (area), 16N²/(Lk²) (volume), the odd-L variants,
// and the folded-row O(N/(Lk²)) max wire length.
func E4KAryNCube() *Table {
	t := &Table{
		ID:    "E4 (§3.1)",
		Title: "k-ary n-cube: measured vs paper 16N²/(L²k²) area, 16N²/(Lk²) volume",
		Header: []string{"k", "n", "N", "L", "area", "chan-area", "paper-area",
			"chan/paper", "maxwire", "maxwire(folded)", "paper-mw-bound"},
	}
	for _, kn := range [][2]int{{4, 2}, {4, 3}, {4, 4}, {8, 2}, {8, 3}, {16, 2}} {
		k, n := kn[0], kn[1]
		for _, l := range []int{2, 3, 4, 8} {
			lay, err := core.KAryNCube(k, n, l, false, 0, 0)
			if err != nil {
				t.Note("build failed k=%d n=%d L=%d: %v", k, n, l, err)
				continue
			}
			st := checkedStats(t, lay)
			folded, err := core.KAryNCube(k, n, l, true, 0, 0)
			if err != nil {
				t.Note("folded build failed: %v", err)
				continue
			}
			fst := folded.Stats()
			geom, _ := core.Plan(core.FromFactors("plan",
				karyFactor(k, n/2), karyFactor(k, (n+1)/2), l, 0))
			paperArea := formulas.KAryArea(st.N, k, l)
			t.Add(k, n, st.N, l, st.Area, geom.ChannelArea(), paperArea,
				ratio(float64(geom.ChannelArea()), paperArea),
				st.MaxWire, fst.MaxWire, formulas.KAryMaxWireBound(st.N, k, l))
		}
	}
	t.Note("chan-area is the wiring-only area the paper's leading term predicts;")
	t.Note("full area adds the node squares the paper treats as o(N²/(L²k²)).")
	t.Note("the chan/paper ratio includes the (k/(k−1))² factor the paper absorbs for non-constant k.")
	return t
}

func karyFactor(k, m int) *track.Collinear {
	if m == 0 {
		return &track.Collinear{Name: "trivial", N: 1}
	}
	return track.KAryNCube(k, m, false)
}

// E5GeneralizedHypercube regenerates §4.1: GHC area r²N²/(4L²), volume
// r²N²/(4L), max wire rN/(2L), and the routing-path wire bound rN/L.
func E5GeneralizedHypercube() *Table {
	t := &Table{
		ID:    "E5 (§4.1)",
		Title: "generalized hypercube: measured vs r²N²/(4L²) area, rN/(2L) max wire, rN/L path wire",
		Header: []string{"r", "dims", "N", "L", "chan-area", "paper-area", "ratio",
			"maxwire", "paper-mw", "pathwire", "paper-pw"},
	}
	for _, rd := range [][2]int{{3, 2}, {4, 2}, {5, 2}, {3, 3}, {4, 3}, {8, 2}} {
		r, dims := rd[0], rd[1]
		radices := make([]int, dims)
		for i := range radices {
			radices[i] = r
		}
		for _, l := range []int{2, 4, 5, 8} {
			lay, err := core.GeneralizedHypercube(radices, l, 0, 0)
			if err != nil {
				t.Note("build failed r=%d dims=%d L=%d: %v", r, dims, l, err)
				continue
			}
			st := checkedStats(t, lay)
			m := dims / 2
			geom, _ := core.Plan(core.FromFactors("plan",
				ghcFactor(radices[:m]), ghcFactor(radices[m:]), l, 0))
			paperArea := formulas.GHCArea(st.N, r, l)
			pathWire := route.MaxPathWire(lay, 16, 0)
			t.Add(r, dims, st.N, l,
				geom.ChannelArea(), paperArea, ratio(float64(geom.ChannelArea()), paperArea),
				st.MaxWire, formulas.GHCMaxWire(st.N, r, l),
				pathWire, formulas.GHCPathWire(st.N, r, l))
		}
	}
	t.Note("path wire is the max total wire length along hop-shortest routes (claim (4) of §2.2).")
	t.Note("odd radices run below 1.0: the construction uses ⌊r²/4⌋ tracks per K_r where the")
	t.Note("formula's leading term uses r²/4 (the paper assumes r non-constant).")
	return t
}

func ghcFactor(radices []int) *track.Collinear {
	if len(radices) == 0 {
		return &track.Collinear{Name: "trivial", N: 1}
	}
	return track.GeneralizedHypercube(radices)
}

// E8Hypercube regenerates §5.1: hypercube area 16N²/(9L²), volume
// 16N²/(9L), max wire 2N/(3L).
func E8Hypercube() *Table {
	t := &Table{
		ID:    "E8 (§5.1)",
		Title: "hypercube: measured vs 16N²/(9L²) area, 2N/(3L) max wire",
		Header: []string{"n", "N", "L", "area", "chan-area", "paper-area", "ratio",
			"maxwire", "paper-mw", "volume", "paper-vol"},
	}
	for _, n := range []int{6, 8, 10, 12} {
		for _, l := range []int{2, 3, 4, 8} {
			lay, err := core.Hypercube(n, l, 0, 0)
			if err != nil {
				t.Note("build failed n=%d L=%d: %v", n, l, err)
				continue
			}
			st := checkedStats(t, lay)
			geom, _ := core.Plan(core.FromFactors("plan",
				track.Hypercube(n/2), track.Hypercube((n+1)/2), l, 0))
			paperArea := formulas.HypercubeArea(st.N, l)
			t.Add(n, st.N, l, st.Area, geom.ChannelArea(), paperArea,
				ratio(float64(geom.ChannelArea()), paperArea),
				st.MaxWire, formulas.HypercubeMaxWire(st.N, l),
				st.Volume, formulas.HypercubeVolume(st.N, l))
		}
	}
	t.Note("node squares add ~N·(n/2+1)² = o(N²) area; at n=12 they are already under 25%% of the total.")
	return t
}
