package experiments

import (
	"mlvlsi/internal/cluster"
	"mlvlsi/internal/core"
	"mlvlsi/internal/formulas"
	"mlvlsi/internal/route"
)

// E6Butterfly regenerates §4.2: butterfly area 4N²/(L² log₂²N), volume
// /L, max wire 2N/(L log₂N), via the PN-cluster construction over the
// hypercube quotient (multiplicity 2; see DESIGN.md substitution notes).
func E6Butterfly() *Table {
	t := &Table{
		ID:    "E6 (§4.2)",
		Title: "butterfly: measured vs 4N²/(L²log₂²N) area, 2N/(L log₂N) max wire",
		Header: []string{"m", "N", "L", "area", "chan-area", "paper-area", "chan/paper",
			"maxwire", "paper-mw", "volume", "paper-vol"},
	}
	for _, m := range []int{4, 5, 6, 7} {
		for _, l := range []int{2, 4, 8} {
			lay, err := cluster.Butterfly(m, l, 0, 0)
			if err != nil {
				t.Note("build failed m=%d L=%d: %v", m, l, err)
				continue
			}
			st := checkedStats(t, lay)
			geom, _ := cluster.ButterflyGeometry(m, l)
			paperArea := formulas.ButterflyArea(st.N, l)
			t.Add(m, st.N, l, st.Area, geom.ChannelArea(), paperArea,
				ratio(float64(geom.ChannelArea()), paperArea),
				st.MaxWire, formulas.ButterflyMaxWire(st.N, l),
				st.Volume, formulas.ButterflyVolume(st.N, l))
		}
	}
	t.Note("quotient is the binary hypercube with 2 links per pair (the exact [35] clustering")
	t.Note("is unpublished; see DESIGN.md); the Θ(N²/(L²log²N)) shape is preserved, the measured")
	t.Note("constant is reported against the paper's 4. chan/paper grows with L at small m because")
	t.Note("per-channel ceilings floor every channel at one track per layer group; along fixed L it")
	t.Note("stabilizes (5.5-7 at L=2), the engine's constant overhead for bent cross links.")
	return t
}

// E7SwapNetworks regenerates §4.3: HSN area N²/(4L²), max wire N/(2L),
// path wire N/L; HHN matches HSN; ISN versus butterfly factors.
func E7SwapNetworks() *Table {
	t := &Table{
		ID:    "E7 (§4.3)",
		Title: "swap networks: HSN vs N²/(4L²) area; HHN; ISN vs butterfly (÷4 area, ÷2 wire)",
		Header: []string{"network", "N", "L", "area", "chan-area", "paper-area", "chan/paper",
			"maxwire", "paper-mw", "pathwire", "paper-pw"},
	}
	for _, lr := range [][2]int{{2, 4}, {2, 8}, {3, 4}, {3, 8}, {4, 4}} {
		lvl, r := lr[0], lr[1]
		for _, l := range []int{2, 4, 8} {
			lay, err := cluster.HSN(lvl, r, l, 0, 0, nil)
			if err != nil {
				t.Note("HSN build failed lvl=%d r=%d L=%d: %v", lvl, r, l, err)
				continue
			}
			st := checkedStats(t, lay)
			geom, _ := cluster.HSNGeometry(lvl, r, l)
			paperArea := formulas.HSNArea(st.N, l)
			pw := route.MaxPathWire(lay, 16, 0)
			t.Add(lay.Name, st.N, l, st.Area, geom.ChannelArea(), paperArea,
				ratio(float64(geom.ChannelArea()), paperArea),
				st.MaxWire, formulas.HSNMaxWire(st.N, l),
				pw, formulas.HSNPathWire(st.N, l))
		}
	}
	for _, lm := range [][2]int{{2, 3}, {3, 2}} {
		lay, err := cluster.HHN(lm[0], lm[1], 4, 0, 0)
		if err != nil {
			t.Note("HHN build failed: %v", err)
			continue
		}
		st := checkedStats(t, lay)
		paperArea := formulas.HSNArea(st.N, 4)
		pw := route.MaxPathWire(lay, 16, 0)
		t.Add(lay.Name, st.N, 4, st.Area, "-", paperArea, ratio(float64(st.Area), paperArea),
			st.MaxWire, formulas.HSNMaxWire(st.N, 4), pw, formulas.HSNPathWire(st.N, 4))
	}
	// ISN vs butterfly comparison rows.
	for _, m := range []int{5, 6, 7} {
		bf, err1 := cluster.Butterfly(m, 4, 0, 0)
		isn, err2 := cluster.ISN(m, 4, 0, 0)
		if err1 != nil || err2 != nil {
			t.Note("ISN/butterfly build failed m=%d: %v %v", m, err1, err2)
			continue
		}
		bs, is := bf.Stats(), isn.Stats()
		t.Add("ISN/butterfly m="+itoa(m), is.N, 4,
			is.Area, "-", float64(bs.Area)/4, ratio(float64(is.Area), float64(bs.Area)/4),
			is.MaxWire, float64(bs.MaxWire)/2, "-", "-")
	}
	t.Note("ISN rows compare against a quarter of the measured butterfly area and half its wire,")
	t.Note("the paper's stated relation; convergence to 4 and 2 is asymptotic in m.")
	t.Note("l=2 rows have a 1-D (single-digit) quotient, outside the orthogonal scheme's sweet spot;")
	t.Note("for l>=3 the chan/paper constant settles at ≈3.5-4: the swap attachments make every")
	t.Note("column link a bent edge whose escape + trunk tracks cost a small constant factor over")
	t.Note("the paper's idealized in-block wiring, stable in N (compare N=64 -> N=512 rows).")
	return t
}

func itoa(v int) string {
	return fmtF(float64(v))
}

// E9CCC regenerates §5.2: CCC area 16N²/(9L² log₂²N); reduced hypercubes
// lay out in asymptotically the same area.
func E9CCC() *Table {
	t := &Table{
		ID:     "E9 (§5.2)",
		Title:  "CCC and reduced hypercube: measured vs 16N²/(9L²log₂²N) area",
		Header: []string{"network", "N", "L", "area", "chan-area", "paper-area", "chan/paper", "maxwire", "volume"},
	}
	for _, n := range []int{3, 4, 5, 6} {
		for _, l := range []int{2, 4, 8} {
			lay, err := cluster.CCC(n, l, 0, 0)
			if err != nil {
				t.Note("CCC build failed n=%d L=%d: %v", n, l, err)
				continue
			}
			st := checkedStats(t, lay)
			geom, _ := cluster.CCCGeometry(n, l)
			paperArea := formulas.CCCArea(st.N, l)
			t.Add(lay.Name, st.N, l, st.Area, geom.ChannelArea(), paperArea,
				ratio(float64(geom.ChannelArea()), paperArea), st.MaxWire, st.Volume)
		}
	}
	for _, nl := range [][2]int{{4, 2}, {4, 4}, {8, 2}} {
		lay, err := cluster.ReducedHypercube(nl[0], nl[1], 0, 0)
		if err != nil {
			t.Note("RH build failed: %v", err)
			continue
		}
		st := checkedStats(t, lay)
		paperArea := formulas.CCCArea(st.N, nl[1])
		t.Add(lay.Name, st.N, nl[1], st.Area, "-", paperArea,
			ratio(float64(st.Area), paperArea), st.MaxWire, st.Volume)
	}
	t.Note("the paper reports this layout beats the Chen–Lau CCC layout [8]; the 16/9 constant")
	t.Note("comes from the hypercube quotient, with cycle strips absorbed into the o(·) term.")
	return t
}

// E11PNCluster regenerates §3.2: k-ary n-cube cluster-c area stays within
// (1 + o(1)) of the quotient k-ary n-cube for small c.
func E11PNCluster() *Table {
	t := &Table{
		ID:     "E11 (§3.2)",
		Title:  "k-ary n-cube cluster-c: area overhead vs plain k-ary n-cube",
		Header: []string{"k", "n", "c", "N", "L", "area", "base-area", "overhead"},
	}
	for _, l := range []int{2, 4} {
		base, err := core.KAryNCube(4, 4, l, false, 0, 0)
		if err != nil {
			t.Note("base build failed: %v", err)
			continue
		}
		bs := base.Stats()
		for _, c := range []int{2, 4, 8} {
			lay, err := cluster.KAryClusterC(4, 4, c, l, 0, 0)
			if err != nil {
				t.Note("cluster build failed c=%d: %v", c, err)
				continue
			}
			st := checkedStats(t, lay)
			t.Add(4, 4, c, st.N, l, st.Area, bs.Area, ratio(float64(st.Area), float64(bs.Area)))
		}
	}
	t.Note("§3.2 predicts overhead → 1 while c = o(k^{n/2−1}); growth with c is the expected")
	t.Note("departure once cluster strips stop being negligible.")
	return t
}
