package experiments

import (
	"mlvlsi/internal/core"
	"mlvlsi/internal/track"
)

// E17Compaction is the track-assignment ablation DESIGN.md calls out: the
// paper's structured track recurrences (product-combinator track ids)
// versus per-instance optimal greedy recoloring. For every construction in
// the paper the two coincide — the recurrences are congestion-optimal for
// their placements — which is itself a result worth machine-checking; a
// deliberately wasteful assignment shows the compactor is not a no-op.
func E17Compaction() *Table {
	t := &Table{
		ID:    "E17 (ablation)",
		Title: "structured track recurrences vs optimal per-channel recoloring",
		Header: []string{"spec", "chanW", "chanH", "compact-chanW", "compact-chanH",
			"changed"},
	}
	cases := []struct {
		name string
		spec core.Spec
	}{
		{"hypercube n=10", core.FromFactors("h10", track.Hypercube(5), track.Hypercube(5), 2, 0)},
		{"4-ary 4-cube", core.FromFactors("k44", track.KAryNCube(4, 2, false), track.KAryNCube(4, 2, false), 2, 0)},
		{"8-ary 2-cube", core.FromFactors("k82", track.KAryNCube(8, 1, false), track.KAryNCube(8, 1, false), 2, 0)},
		{"GHC(8,8)", core.FromFactors("g88", track.GeneralizedHypercube([]int{8}), track.GeneralizedHypercube([]int{8}), 2, 0)},
		{"GHC(5,5) odd r", core.FromFactors("g55", track.GeneralizedHypercube([]int{5}), track.GeneralizedHypercube([]int{5}), 2, 0)},
		{"folded 16-ring²", core.FromFactors("f16", track.FoldedRing(16), track.FoldedRing(16), 2, 0)},
	}
	// A wasteful control: every edge on its own track.
	wasteful := core.Spec{Name: "wasteful-control", Rows: 1, Cols: 16, L: 2}
	for i := 0; i+1 < 16; i++ {
		wasteful.RowEdges = append(wasteful.RowEdges, core.ChannelEdge{
			Index: 0, U: i, V: i + 1, Track: i,
		})
	}
	cases = append(cases, struct {
		name string
		spec core.Spec
	}{"path-16 one-track-per-edge", wasteful})

	for _, c := range cases {
		before, err := core.Plan(c.spec)
		if err != nil {
			t.Note("plan failed %s: %v", c.name, err)
			continue
		}
		after, err := core.Plan(core.CompactTracks(c.spec))
		if err != nil {
			t.Note("compact plan failed %s: %v", c.name, err)
			continue
		}
		changed := "no"
		if after.ChannelWidth != before.ChannelWidth || after.ChannelHeight != before.ChannelHeight {
			changed = "YES"
		}
		t.Add(c.name, before.ChannelWidth, before.ChannelHeight,
			after.ChannelWidth, after.ChannelHeight, changed)
	}
	t.Note("'no' on every paper construction = the recurrences already meet the per-placement")
	t.Note("congestion bound; the control row shows the compactor finds real slack when it exists.")
	return t
}
