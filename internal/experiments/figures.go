package experiments

import (
	"mlvlsi/internal/track"
)

// E1CollinearKAry regenerates the construction behind Figure 2: collinear
// k-ary n-cube layouts and their track recurrence f_k(n) = 2(kⁿ−1)/(k−1).
func E1CollinearKAry() *Table {
	t := &Table{
		ID:     "E1 (Fig. 2, §3.1)",
		Title:  "collinear k-ary n-cube track counts vs f_k(n) = 2(kⁿ−1)/(k−1)",
		Header: []string{"k", "n", "N", "tracks", "paper", "match", "max-cut"},
	}
	for _, k := range []int{2, 3, 4, 5, 6, 8} {
		for n := 1; n <= 4; n++ {
			c := track.KAryNCube(k, n, false)
			if err := c.Verify(); err != nil {
				t.Note("VERIFY FAILED k=%d n=%d: %v", k, n, err)
				continue
			}
			paper := track.TrackCountKAry(k, n)
			if k == 2 {
				// A 2-node ring is a single link: f(n) = 2f(n−1)+1.
				paper = 1<<uint(n) - 1
			}
			match := "yes"
			if c.Tracks != paper {
				match = "NO"
			}
			t.Add(k, n, c.N, c.Tracks, paper, match, c.MaxCut())
		}
	}
	t.Note("Figure 2 itself (3-ary 2-cube, 8 tracks) renders via cmd/figures.")
	return t
}

// E2CollinearComplete regenerates Figure 3: the strictly optimal ⌊N²/4⌋
// track collinear layouts of complete graphs.
func E2CollinearComplete() *Table {
	t := &Table{
		ID:     "E2 (Fig. 3, §4.1)",
		Title:  "collinear complete-graph track counts vs ⌊N²/4⌋ (strictly optimal)",
		Header: []string{"N", "tracks", "paper", "match", "max-cut"},
	}
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 24, 32, 48, 64} {
		c := track.Complete(n)
		if err := c.Verify(); err != nil {
			t.Note("VERIFY FAILED N=%d: %v", n, err)
			continue
		}
		paper := n * n / 4
		match := "yes"
		if c.Tracks != paper {
			match = "NO"
		}
		t.Add(n, c.Tracks, paper, match, c.MaxCut())
	}
	t.Note("tracks == max-cut everywhere: the layout meets the cut lower bound exactly.")
	return t
}

// E3CollinearHypercube regenerates Figure 4: ⌊2N/3⌋-track collinear
// hypercube layouts.
func E3CollinearHypercube() *Table {
	t := &Table{
		ID:     "E3 (Fig. 4, §5.1)",
		Title:  "collinear hypercube track counts vs ⌊2N/3⌋",
		Header: []string{"n", "N", "tracks", "paper", "match", "max-cut"},
	}
	for n := 1; n <= 14; n++ {
		c := track.Hypercube(n)
		paper := track.TrackCountHypercube(n)
		match := "yes"
		if c.Tracks != paper {
			match = "NO"
		}
		t.Add(n, c.N, c.Tracks, paper, match, c.MaxCut())
	}
	t.Note("base block: the 2-track 4-cycle (2-cube) of Fig. 4, two dimensions per product step.")
	return t
}
