package experiments

// Experiment pairs an experiment id and title with its table generator.
type Experiment struct {
	ID, Title string
	Run       func() *Table
}

// Registry enumerates every experiment table of the reproduction in
// presentation order (the ids match DESIGN.md and EXPERIMENTS.md); consumers
// like cmd/paperbench iterate this instead of hand-rolling the list.
func Registry() []Experiment {
	return []Experiment{
		{"E1", "collinear k-ary n-cubes (Fig. 2)", E1CollinearKAry},
		{"E2", "collinear complete graphs (Fig. 3)", E2CollinearComplete},
		{"E3", "collinear hypercubes (Fig. 4)", E3CollinearHypercube},
		{"E4", "k-ary n-cube multilayer layouts (§3.1)", E4KAryNCube},
		{"E5", "generalized hypercubes (§4.1)", E5GeneralizedHypercube},
		{"E6", "butterflies (§4.2)", E6Butterfly},
		{"E7", "swap networks HSN/HHN/ISN (§4.3)", E7SwapNetworks},
		{"E8", "hypercubes (§5.1)", E8Hypercube},
		{"E9", "CCC and reduced hypercubes (§5.2)", E9CCC},
		{"E10", "folded and enhanced hypercubes (§5.3)", E10FoldedEnhanced},
		{"E11", "k-ary n-cube cluster-c (§3.2)", E11PNCluster},
		{"E12", "direct vs folding vs stacked collinear (§2.2)", E12Baselines},
		{"E13", "bisection lower bounds (§1)", E13LowerBounds},
		{"E14", "wire-delay simulation (§2.2)", E14WireDelay},
		{"E15", "Cayley-family extension layouts (§4.3)", E15Cayley},
		{"E16", "2-D vs 3-D multilayer grid model (§2.2)", E16Stack3D},
		{"E17", "track-assignment ablation", E17Compaction},
		{"E18", "generic router vs structured constructions (§2.3)", E18GenericVsSpecialized},
		{"E19", "wire-length distribution (§2.2)", E19WireDistribution},
	}
}
