package experiments

import (
	"mlvlsi/internal/core"
	"mlvlsi/internal/stack"
)

// E16Stack3D compares the multilayer 2-D grid model against the multilayer
// 3-D grid model of §2.2 (nodes on L_A active layers): moving dimensions
// onto boards divides the footprint by about the board count while volume
// stays comparable — the paper's motivation for defining both models.
func E16Stack3D() *Table {
	t := &Table{
		ID:    "E16 (§2.2, 3-D model)",
		Title: "2-D vs 3-D multilayer grid model: footprint, volume, max wire",
		Header: []string{"network", "model", "boards", "L", "area", "volume",
			"maxwire", "footprint-gain"},
	}
	add3D := func(name string, flatArea int, s *stack.Layout3D) {
		if v := s.Verify(); len(v) > 0 {
			t.Note("VERIFY FAILED %s: %v", s.Name, v[0])
		}
		st := s.Stats()
		t.Add(name, "3-D", st.Boards, s.LayersPerBoard, st.Area, st.Volume,
			st.MaxWire, ratio(float64(flatArea), float64(st.Area)))
	}
	for _, tc := range []struct{ n, l int }{{8, 2}, {8, 4}, {10, 4}} {
		flat, err := core.Hypercube(tc.n, tc.l, 0, 0)
		if err != nil {
			t.Note("flat build failed: %v", err)
			continue
		}
		fs := checkedStats(t, flat)
		t.Add(flat.Name, "2-D", 1, tc.l, fs.Area, fs.Volume, fs.MaxWire, 1.0)
		for _, nz := range []int{1, 2, 3} {
			s, err := stack.Hypercube3D(tc.n, nz, tc.l, stack.Knobs{})
			if err != nil {
				t.Note("3D build failed nz=%d: %v", nz, err)
				continue
			}
			add3D(flat.Name, fs.Area, s)
		}
	}
	for _, tc := range []struct{ k, n, nz, l int }{{4, 3, 1, 4}, {8, 3, 1, 4}} {
		flat, err := core.KAryNCube(tc.k, tc.n, tc.l, false, 0, 0)
		if err != nil {
			t.Note("flat kary build failed: %v", err)
			continue
		}
		fs := checkedStats(t, flat)
		t.Add(flat.Name, "2-D", 1, tc.l, fs.Area, fs.Volume, fs.MaxWire, 1.0)
		s, err := stack.KAryNCube3D(tc.k, tc.n, tc.nz, tc.l, false, stack.Knobs{})
		if err != nil {
			t.Note("3D kary build failed: %v", err)
			continue
		}
		add3D(flat.Name, fs.Area, s)
	}
	t.Note("each board spends L wiring layers plus one active layer, so a B-board stack uses")
	t.Note("B·(L+1) grid layers. Footprint gain tracks ≈ B² (the per-board sub-network is B×")
	t.Note("smaller and layout area is quadratic in node count) while volume improves by ≈ B —")
	t.Note("the 3-D-model side of §2.2's accounting, where folding a 2-D layout onto B boards")
	t.Note("would gain only B in footprint with volume unchanged.")
	return t
}
