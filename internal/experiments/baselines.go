package experiments

import (
	"mlvlsi/internal/bounds"
	"mlvlsi/internal/cluster"
	"mlvlsi/internal/core"
	"mlvlsi/internal/extra"
	"mlvlsi/internal/fold"
	"mlvlsi/internal/formulas"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/sim"
	"mlvlsi/internal/track"
)

// E10FoldedEnhanced regenerates §5.3: folded hypercube area 49N²/(9L²) and
// enhanced cube area 100N²/(9L²).
func E10FoldedEnhanced() *Table {
	t := &Table{
		ID:    "E10 (§5.3)",
		Title: "folded hypercube vs 49N²/(9L²); enhanced cube vs 100N²/(9L²)",
		Header: []string{"network", "n", "N", "L", "area", "paper-area", "ratio",
			"vs-plain-cube", "paper-factor"},
	}
	for _, n := range []int{6, 8, 10} {
		for _, l := range []int{2, 4, 8} {
			plain, err := core.Hypercube(n, l, 0, 0)
			if err != nil {
				t.Note("plain build failed: %v", err)
				continue
			}
			pa := plain.Stats().Area
			if lay, err := extra.FoldedHypercube(n, l, 0, 0); err == nil {
				st := checkedStats(t, lay)
				paper := formulas.FoldedHypercubeArea(st.N, l)
				t.Add("folded", n, st.N, l, st.Area, paper, ratio(float64(st.Area), paper),
					ratio(float64(st.Area), float64(pa)), (7.0*7)/(4*4))
			} else {
				t.Note("folded build failed n=%d L=%d: %v", n, l, err)
			}
			if lay, err := extra.EnhancedCube(n, 12345, l, 0, 0); err == nil {
				st := checkedStats(t, lay)
				paper := formulas.EnhancedCubeArea(st.N, l)
				t.Add("enhanced", n, st.N, l, st.Area, paper, ratio(float64(st.Area), paper),
					ratio(float64(st.Area), float64(pa)), (10.0*10)/(4*4))
			} else {
				t.Note("enhanced build failed n=%d L=%d: %v", n, l, err)
			}
		}
	}
	t.Note("vs-plain-cube compares against the measured plain hypercube; the paper's factors are")
	t.Note("(7/4)² ≈ 3.06 (folded) and (10/4)² = 6.25 (enhanced) in the track-dominated limit.")
	return t
}

// E12Baselines regenerates the §2.2 comparison: direct multilayer design
// (area ÷ L²/4, volume ÷ L/2, wires ÷ L/2) versus folding a 2-layer layout
// (area ÷ L/2 only) versus the stacked collinear model.
func E12Baselines() *Table {
	t := &Table{
		ID:    "E12 (§2.2)",
		Title: "direct multilayer design vs folding vs stacked collinear (hypercube n=9)",
		Header: []string{"L", "direct-area", "folded-area", "direct-gain", "chan-gain", "paper L²/4",
			"fold-gain", "paper L/2", "direct-maxwire", "folded-maxwire",
			"direct-vol", "folded-vol"},
	}
	const n = 9
	base, err := core.Hypercube(n, 2, 0, 0)
	if err != nil {
		t.Note("base build failed: %v", err)
		return t
	}
	b := base.Stats()
	baseGeom, _ := core.Plan(core.FromFactors("plan",
		track.Hypercube(n/2), track.Hypercube((n+1)/2), 2, 0))
	for _, l := range []int{2, 4, 8, 16} {
		direct, err := core.Hypercube(n, l, 0, 0)
		if err != nil {
			t.Note("direct build failed L=%d: %v", l, err)
			continue
		}
		d := checkedStats(t, direct)
		folded, err := fold.Fold(base, l)
		if err != nil {
			t.Note("fold failed L=%d: %v", l, err)
			continue
		}
		if v := fold.Verify(folded); len(v) > 0 {
			t.Note("FOLD VERIFY FAILED L=%d: %v", l, v[0])
		}
		f := fold.Measure(folded)
		dg, _ := core.Plan(core.FromFactors("plan",
			track.Hypercube(n/2), track.Hypercube((n+1)/2), l, 0))
		t.Add(l, d.Area, f.Area,
			ratio(float64(b.Area), float64(d.Area)),
			ratio(float64(baseGeom.ChannelArea()), float64(dg.ChannelArea())),
			formulas.DirectAreaGain(l),
			ratio(float64(b.Area), float64(f.Area)), formulas.FoldingAreaGain(l),
			d.MaxWire, f.MaxWire, d.Volume, f.Volume)
	}
	c := track.Hypercube(n)
	s2 := fold.StackedCollinear(c, 2)
	s8 := fold.StackedCollinear(c, 8)
	t.Note("stacked collinear baseline (n=%d): area %d -> %d at L=8 (gain %.1f <= L/2), volume %d -> %d (no gain), maxwire unchanged at %d.",
		n, s2.Area, s8.Area, float64(s2.Area)/float64(s8.Area), s2.Volume, s8.Volume, s2.MaxWire)
	t.Note("chan-gain is the wiring-only gain: it tracks the paper's L²/4 exactly (up to ceilings);")
	t.Note("the full-area direct gain approaches it as N grows (node squares are the o(1) gap) — at")
	t.Note("this size folding can even win on raw area at L=16 while losing on volume and max wire,")
	t.Note("which is precisely the trade §2.2 describes.")
	return t
}

// E13LowerBounds regenerates the §1 optimality claims: measured areas
// versus the bisection-width lower bounds under the Thompson (L=2) and
// multilayer models.
func E13LowerBounds() *Table {
	t := &Table{
		ID:     "E13 (§1)",
		Title:  "optimality: measured area vs bisection lower bounds",
		Header: []string{"network", "N", "L", "area", "bisection", "LB", "area/LB"},
	}
	type entry struct {
		name  string
		area  int
		n     int
		l     int
		bisec int
	}
	var entries []entry
	for _, l := range []int{2, 4, 8} {
		if lay, err := core.Hypercube(9, l, 0, 0); err == nil {
			st := lay.Stats()
			entries = append(entries, entry{"hypercube(9)", st.Area, st.N, l, bounds.BisectionHypercube(9)})
		}
		if lay, err := core.KAryNCube(8, 3, l, false, 0, 0); err == nil {
			st := lay.Stats()
			entries = append(entries, entry{"8-ary 3-cube", st.Area, st.N, l, bounds.BisectionKAry(8, 3)})
		}
		if lay, err := core.GeneralizedHypercube([]int{8, 8}, l, 0, 0); err == nil {
			st := lay.Stats()
			entries = append(entries, entry{"GHC(8,8)", st.Area, st.N, l, bounds.BisectionGHC(8, 2)})
		}
		if lay, err := cluster.Butterfly(6, l, 0, 0); err == nil {
			st := lay.Stats()
			entries = append(entries, entry{"butterfly(6)", st.Area, st.N, l, bounds.BisectionButterfly(6)})
		}
		if lay, err := cluster.CCC(6, l, 0, 0); err == nil {
			st := lay.Stats()
			entries = append(entries, entry{"CCC(6)", st.Area, st.N, l, bounds.BisectionCCC(6)})
		}
		if lay, err := cluster.HSN(2, 16, l, 0, 0, nil); err == nil {
			st := lay.Stats()
			// 2-level HSN quotient is K_16; its bisection is that of the
			// complete graph over clusters times one link per pair.
			entries = append(entries, entry{"HSN(2,16)", st.Area, st.N, l, bounds.BisectionComplete(16)})
		}
	}
	for _, e := range entries {
		lb := bounds.MultilayerAreaLB(e.bisec, e.l)
		t.Add(e.name, e.n, e.l, e.area, e.bisec, lb, ratio(float64(e.area), lb))
	}
	t.Note("every ratio >= 1 (legality); the multilayer bound (B/L)² is the paper's trivial bound,")
	t.Note("loose by design — the paper's 'within 2+o(1)' claims are against tighter counting")
	t.Note("arguments; shrinking ratios with L show the constructions track the bound's scaling.")
	return t
}

// E14WireDelay regenerates the §2.2 performance motivation: simulated
// message latency under wire-proportional link delays drops by ≈ L/2.
func E14WireDelay() *Table {
	t := &Table{
		ID:    "E14 (§2.2 performance)",
		Title: "wire-delay simulation: latency vs layers (velocity 1 grid unit/cycle)",
		Header: []string{"network", "L", "pattern", "delivered", "avg-latency",
			"max-latency", "speedup-vs-L2"},
	}
	networks := []struct {
		name  string
		build func(l int) (*layout.Layout, error)
	}{
		{"hypercube(8)", func(l int) (*layout.Layout, error) { return core.Hypercube(8, l, 0, 0) }},
		{"8-ary 2-cube", func(l int) (*layout.Layout, error) { return core.KAryNCube(8, 2, l, true, 0, 0) }},
	}
	for _, nw := range networks {
		var baseAvg float64
		for _, l := range []int{2, 4, 8} {
			lay, err := nw.build(l)
			if err != nil {
				t.Note("build failed %s L=%d: %v", nw.name, l, err)
				continue
			}
			for _, p := range []sim.Pattern{sim.Permutation, sim.BitComplement} {
				res := sim.Run(lay, sim.Config{Pattern: p, Velocity: 1, Seed: 7})
				speed := "-"
				if p == sim.Permutation {
					if l == 2 {
						baseAvg = res.AvgLatency
					}
					if baseAvg > 0 {
						speed = fmtF(baseAvg / res.AvgLatency)
					}
				}
				t.Add(nw.name, l, p.String(), res.Delivered, res.AvgLatency, res.MaxLatency, speed)
			}
		}
	}
	t.Note("speedup at L=8 approaches the paper's L/2 = 4 as wires dominate hop overheads.")
	return t
}
