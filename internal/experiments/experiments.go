// Package experiments regenerates every quantitative result in the paper:
// the track counts behind Figures 2-4, the closed-form area / volume /
// wire-length results of §3-§5 for each network family, the §2.2 baseline
// comparisons (direct multilayer design vs folding vs stacked collinear),
// the optimality ratios against bisection lower bounds, and the wire-delay
// performance claim. Each experiment returns a Table pairing the paper's
// predicted leading term with the measured value from a realized (and,
// at moderate sizes, machine-verified) layout.
//
// The paper's formulas are leading terms as N → ∞ with negligible node
// sizes; at laptop sizes the measured full areas carry the node-square and
// rounding terms the paper writes as o(·). Tables therefore report both the
// full measured area and the wiring-only (channel) area, whose leading
// constant is the quantity the paper derives.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row of cells, formatting each with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtF(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends an annotation printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// CSV renders the table as RFC-4180-ish CSV (header row first; notes are
// omitted). Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		return c
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ratio formats measured/predicted, guarding zero.
func ratio(measured float64, predicted float64) string {
	if predicted == 0 {
		return "-"
	}
	return fmtF(measured / predicted)
}

// All runs every experiment in paper order.
func All() []*Table {
	return []*Table{
		E1CollinearKAry(),
		E2CollinearComplete(),
		E3CollinearHypercube(),
		E4KAryNCube(),
		E5GeneralizedHypercube(),
		E6Butterfly(),
		E7SwapNetworks(),
		E8Hypercube(),
		E9CCC(),
		E10FoldedEnhanced(),
		E11PNCluster(),
		E12Baselines(),
		E13LowerBounds(),
		E14WireDelay(),
		E15Cayley(),
		E16Stack3D(),
		E17Compaction(),
		E18GenericVsSpecialized(),
		E19WireDistribution(),
	}
}
