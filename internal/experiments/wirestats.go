package experiments

import (
	"mlvlsi/internal/core"
	"mlvlsi/internal/formulas"
)

// E19WireDistribution examines the whole wire-length distribution, not just
// the maximum: §2.2's claim (3) is about the longest wire, but the layouts
// shorten every quantile by ≈ L/2, which is what actually buys clock
// frequency and energy.
func E19WireDistribution() *Table {
	t := &Table{
		ID:    "E19 (§2.2, distribution)",
		Title: "wire-length quantiles vs layers (hypercube n=9)",
		Header: []string{"L", "p50", "p90", "p99", "max", "mean",
			"paper-maxwire", "max-gain-vs-L2"},
	}
	var base int
	for _, l := range []int{2, 3, 4, 8} {
		lay, err := core.Hypercube(9, l, 0, 0)
		if err != nil {
			t.Note("build failed L=%d: %v", l, err)
			continue
		}
		d := lay.WireDistribution()
		if l == 2 {
			base = d.Max
		}
		t.Add(l, d.P50, d.P90, d.P99, d.Max, d.Mean,
			formulas.HypercubeMaxWire(512, l),
			ratio(float64(base), float64(d.Max)))
	}
	t.Note("every quantile shrinks with L — the multilayer gain is distribution-wide, not a")
	t.Note("tail effect; short wires (stubs, ports) floor the p50 at O(node side + channel).")
	return t
}
