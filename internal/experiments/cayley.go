package experiments

import (
	"mlvlsi/internal/cluster"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/route"
)

// E15Cayley measures the §4.3 extension layouts: star, pancake,
// bubble-sort, and transposition networks laid out over their
// complete-graph last-symbol quotients. The ICPP paper promises these
// families the same multilayer gains without deriving constants, so the
// table reports measured area/wire data and the L-scaling.
func E15Cayley() *Table {
	t := &Table{
		ID:    "E15 (§4.3 extension)",
		Title: "Cayley families over K_n quotients: measured costs and L-scaling",
		Header: []string{"network", "N", "L", "area", "maxwire", "pathwire",
			"area-gain-vs-L2"},
	}
	families := []struct {
		name  string
		build func(n, l, nodeSide, workers int) (*layout.Layout, error)
		n     int
	}{
		{"star", cluster.Star, 5},
		{"pancake", cluster.Pancake, 5},
		{"bubblesort", cluster.BubbleSort, 5},
		{"transposition", cluster.Transposition, 4},
		{"SCC", cluster.SCC, 5},
	}
	for _, f := range families {
		var base int
		for _, l := range []int{2, 4, 8} {
			lay, err := f.build(f.n, l, 0, 0)
			if err != nil {
				t.Note("build failed %s L=%d: %v", f.name, l, err)
				continue
			}
			st := checkedStats(t, lay)
			if l == 2 {
				base = st.Area
			}
			t.Add(lay.Name, st.N, l, st.Area, st.MaxWire,
				route.MaxPathWire(lay, 16, 0), ratio(float64(base), float64(st.Area)))
		}
	}
	t.Note("the paper defers these families to the strategies of [30] (complete-graph and star")
	t.Note("layouts); measured gains confirm the same multilayer behaviour carries over.")
	return t
}
