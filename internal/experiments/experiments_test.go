package experiments

import (
	"strings"
	"testing"
)

// noFailures asserts a table has rows and no embedded failure notes.
func noFailures(t *testing.T, tab *Table) {
	t.Helper()
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: no rows", tab.ID)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "FAILED") || strings.Contains(n, "failed") {
			t.Errorf("%s: %s", tab.ID, n)
		}
	}
}

func TestE1TracksMatchPaper(t *testing.T) {
	tab := E1CollinearKAry()
	noFailures(t, tab)
	for _, r := range tab.Rows {
		if r[5] != "yes" {
			t.Errorf("E1 row %v: track count mismatch", r)
		}
	}
}

func TestE2TracksMatchPaper(t *testing.T) {
	tab := E2CollinearComplete()
	noFailures(t, tab)
	for _, r := range tab.Rows {
		if r[3] != "yes" {
			t.Errorf("E2 row %v: track count mismatch", r)
		}
		if r[1] != r[4] {
			t.Errorf("E2 row %v: tracks != max cut (not strictly optimal)", r)
		}
	}
}

func TestE3TracksMatchPaper(t *testing.T) {
	tab := E3CollinearHypercube()
	noFailures(t, tab)
	for _, r := range tab.Rows {
		if r[4] != "yes" {
			t.Errorf("E3 row %v: track count mismatch", r)
		}
	}
}

func TestFamilyExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("family experiments are slow")
	}
	for _, tab := range []*Table{
		E4KAryNCube(), E5GeneralizedHypercube(), E8Hypercube(),
	} {
		noFailures(t, tab)
		if len(tab.String()) == 0 {
			t.Errorf("%s: empty rendering", tab.ID)
		}
	}
}

func TestClusterExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiments are slow")
	}
	for _, tab := range []*Table{
		E6Butterfly(), E7SwapNetworks(), E9CCC(), E11PNCluster(),
	} {
		noFailures(t, tab)
	}
}

func TestBaselineExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline experiments are slow")
	}
	for _, tab := range []*Table{
		E10FoldedEnhanced(), E12Baselines(), E13LowerBounds(), E14WireDelay(),
	} {
		noFailures(t, tab)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
	}
	tab.Add(1, 2.5)
	tab.Add("xx", 10000.0)
	tab.Note("hello %d", 42)
	out := tab.String()
	if !strings.Contains(out, "T — demo") || !strings.Contains(out, "hello 42") {
		t.Errorf("rendering broken:\n%s", out)
	}
	if !strings.Contains(out, "2.50") || !strings.Contains(out, "10000") {
		t.Errorf("number formatting broken:\n%s", out)
	}
}

func TestRatioGuards(t *testing.T) {
	if ratio(5, 0) != "-" {
		t.Error("zero denominator should render '-'")
	}
	if ratio(5, 2) != "2.50" {
		t.Errorf("ratio(5,2) = %s", ratio(5, 2))
	}
}

func TestE15CayleyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	noFailures(t, E15Cayley())
}

func TestE16Stack3DRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := E16Stack3D()
	noFailures(t, tab)
}

func TestE17CompactionRuns(t *testing.T) {
	tab := E17Compaction()
	noFailures(t, tab)
	for _, r := range tab.Rows {
		changed := r[len(r)-1]
		if r[0] == "path-16 one-track-per-edge" {
			if changed != "YES" {
				t.Errorf("control row not compacted: %v", r)
			}
		} else if changed != "no" {
			t.Errorf("paper construction %s was compacted — recurrence not optimal: %v", r[0], r)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Header: []string{"a", "b"}}
	tab.Add("x,y", 1)
	tab.Add(`quo"te`, 2)
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("missing header: %q", csv)
	}
	if !strings.Contains(csv, `"x,y",1`) {
		t.Errorf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"quo""te",2`) {
		t.Errorf("quote cell not escaped: %q", csv)
	}
}

func TestE18GenericRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	noFailures(t, E18GenericVsSpecialized())
}

func TestE19WireDistributionRuns(t *testing.T) {
	tab := E19WireDistribution()
	noFailures(t, tab)
}
