// Package fold implements the baselines the paper compares against in §2.2:
//
//   - Fold: accordion-folding a finished 2-layer (Thompson) layout into L
//     layers. The fold divides the area by about L/2 but leaves the volume
//     and the wire lengths essentially unchanged — which is exactly why the
//     paper designs layouts directly for the multilayer model instead.
//   - StackedCollinear: the multilayer extension of the collinear layout
//     model, whose area shrinks by at most L/2 with volume unchanged.
//
// The fold is a real coordinate transformation, not an estimate: every wire
// path is rewritten strip by strip, fold crossings are routed through
// dedicated gutter columns with inter-layer vias, and the result is checked
// for edge-disjointness by the same verifier as engine-built layouts. Nodes
// of folded strips land on raised active layers (the multilayer 3-D grid
// model with L_A = L/2 active layers, as §2.2 requires for folding), so the
// folded layout carries no node rectangles and skips terminal verification.
package fold

import (
	"context"
	"fmt"

	"mlvlsi/internal/grid"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/track"
)

// Fold accordion-folds a 2-layer layout into l layers (l even, >= 2).
// Strip s of the original x-range lands on layers 2s+1 and 2s+2; wires
// crossing a fold boundary detour through a gutter column and change layer
// pairs through a via.
func Fold(lay *layout.Layout, l int) (*layout.Layout, error) {
	if lay.L != 2 {
		return nil, fmt.Errorf("fold: input must be a 2-layer layout, has %d", lay.L)
	}
	if l < 2 || l%2 != 0 {
		return nil, fmt.Errorf("fold: target layer count %d must be even and >= 2", l)
	}
	strips := l / 2
	b := lay.Bounds()
	if b.Empty() {
		return &layout.Layout{Name: lay.Name + "/folded", L: l}, nil
	}
	total := b.Width() + 1 // number of distinct x coordinates
	stripW := (total + strips - 1) / strips
	if stripW < 2 {
		stripW = 2
	}
	f := folder{minX: b.MinX, stripW: stripW}

	out := &layout.Layout{Name: fmt.Sprintf("%s/folded-L%d", lay.Name, l), L: l}
	for i := range lay.Wires {
		w := &lay.Wires[i]
		nw := grid.Wire{ID: w.ID, U: w.U, V: w.V}
		nw.Path = f.mapPath(w.Path)
		out.Wires = append(out.Wires, nw)
	}
	return out, nil
}

type folder struct {
	minX   int
	stripW int
}

// strip returns the strip index and the folded x coordinate of x.
func (f *folder) strip(x int) (int, int) {
	rel := x - f.minX
	s := rel / f.stripW
	off := rel - s*f.stripW
	if s%2 == 1 {
		off = f.stripW - 1 - off
	}
	return s, off
}

// mapZ lifts an original layer z in {0, 1, 2} into strip s's layer pair.
func mapZ(s, z int) int { return 2*s + z }

func (f *folder) mapPoint(p grid.Point) grid.Point {
	s, x := f.strip(p.X)
	return grid.Point{X: x, Y: p.Y, Z: mapZ(s, p.Z)}
}

// mapPath rewrites one rectilinear path. Y- and Z-segments stay within
// their strip; X-segments are split at fold boundaries with a gutter detour:
// step into the gutter column just outside the strip edge, via to the next
// strip's layer pair, and step back in.
func (f *folder) mapPath(path []grid.Point) []grid.Point {
	out := []grid.Point{f.mapPoint(path[0])}
	appendPt := func(p grid.Point) {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		if b.X == a.X {
			appendPt(f.mapPoint(b))
			continue
		}
		dir := 1
		if b.X < a.X {
			dir = -1
		}
		x := a.X
		for x != b.X {
			sHere, _ := f.strip(x)
			sNext, _ := f.strip(x + dir)
			if sNext == sHere {
				x += dir
				continue
			}
			// Crossing a fold boundary: walk to the strip edge, detour
			// through the gutter, and re-enter at the mirrored position.
			edgeS, edgeX := f.strip(x)
			z := mapZ(edgeS, a.Z)
			gutter := gutterX(edgeX)
			appendPt(grid.Point{X: edgeX, Y: a.Y, Z: z})
			appendPt(grid.Point{X: gutter, Y: a.Y, Z: z})
			zNext := mapZ(sNext, a.Z)
			appendPt(grid.Point{X: gutter, Y: a.Y, Z: zNext})
			appendPt(grid.Point{X: edgeX, Y: a.Y, Z: zNext})
			x += dir
			// The re-entry x equals edgeX by the accordion mirror; continue
			// the walk from there.
		}
		appendPt(f.mapPoint(b))
	}
	return out
}

// gutterX returns the gutter column adjacent to a strip edge: edges at
// offset 0 use column -1, edges at the right edge use column stripW.
func gutterX(edgeX int) int {
	if edgeX == 0 {
		return -1
	}
	return edgeX + 1
}

// VerifyOpts checks a folded layout for rectilinearity, edge-disjointness
// and the direction discipline. Terminal checks are skipped — folded nodes
// live on raised active layers, so opts.Nodes is cleared — while the
// engine, memory-ladder, and instrumentation knobs pass through to
// grid.Verify exactly as Layout.VerifyOpts does for engine-built layouts
// (including rooting a "verify" span on opts.Observer when opts.Span is
// nil).
func VerifyOpts(ctx context.Context, lay *layout.Layout, opts grid.CheckOptions) ([]grid.Violation, error) {
	opts.Layers = lay.L
	opts.Discipline = true
	opts.Nodes = nil
	var sp *obs.Span
	if opts.Span == nil {
		sp = opts.Observer.StartSpan("verify")
		sp.SetAttr("wires", int64(len(lay.Wires)))
		opts.Span = sp
	}
	vs, err := grid.Verify(ctx, lay.Wires, opts)
	sp.SetAttr("violations", int64(len(vs))).End()
	return vs, err
}

// Verify checks a folded layout with the serial engine.
//
// Deprecated: equivalent to VerifyOpts with Workers: 1.
func Verify(lay *layout.Layout) []grid.Violation {
	vs, _ := VerifyOpts(nil, lay, grid.CheckOptions{Workers: 1})
	return vs
}

// VerifyObserved is Verify with the worker fan-out, dense-occupancy
// threshold, cancellation, and observer exposed.
//
// Deprecated: equivalent to VerifyOpts with Workers, DenseLimit, and
// Observer set.
func VerifyObserved(ctx context.Context, lay *layout.Layout, workers, denseLimit int, o *obs.Observer) ([]grid.Violation, error) {
	return VerifyOpts(ctx, lay, grid.CheckOptions{Workers: workers, DenseLimit: denseLimit, Observer: o})
}

// Stats summarizes a folded layout against its source, the comparison §2.2
// draws: area shrinks by ≈ L/2, volume and max wire length stay put.
type Stats struct {
	L                  int
	Area, Volume       int
	MaxWire, TotalWire int
}

// Measure computes the folded layout's cost measures from its wires.
func Measure(lay *layout.Layout) Stats {
	b := grid.Wires(lay.Wires).Bounds()
	s := Stats{L: lay.L, Area: b.Area(), Volume: lay.L * b.Area()}
	for i := range lay.Wires {
		n := lay.Wires[i].PlanarLength()
		s.TotalWire += n
		if n > s.MaxWire {
			s.MaxWire = n
		}
	}
	return s
}

// StackedCollinear predicts the cost of extending a collinear layout to L
// layers (the "multilayer collinear model" baseline of §2.2): the track
// bundle splits across ⌊L/2⌋ layer pairs, so the height shrinks by at most
// L/2 while the length — and hence the volume and the maximum wire length —
// do not improve.
func StackedCollinear(c *track.Collinear, l int) Stats {
	pairs := l / 2
	if pairs < 1 {
		pairs = 1
	}
	perLayer := (c.Tracks + pairs - 1) / pairs
	// One unit of width per node plus the track bundle height.
	area := c.N * (perLayer + 1)
	return Stats{
		L:       l,
		Area:    area,
		Volume:  l * area,
		MaxWire: c.MaxSpan(),
	}
}
