package fold

import (
	"testing"

	"mlvlsi/internal/core"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/track"
)

func buildHypercube2(t *testing.T, n int) *layout.Layout {
	t.Helper()
	lay, err := core.Hypercube(n, 2, 0, 0)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if v := lay.Verify(); len(v) > 0 {
		t.Fatalf("source layout illegal: %v", v[0])
	}
	return lay
}

func TestFoldLegality(t *testing.T) {
	src := buildHypercube2(t, 6)
	for _, l := range []int{2, 4, 8, 16} {
		folded, err := Fold(src, l)
		if err != nil {
			t.Fatalf("Fold L=%d: %v", l, err)
		}
		if v := Verify(folded); len(v) > 0 {
			t.Fatalf("folded L=%d illegal: %d violations, first %v", l, len(v), v[0])
		}
		if len(folded.Wires) != len(src.Wires) {
			t.Errorf("L=%d: wire count changed %d -> %d", l, len(src.Wires), len(folded.Wires))
		}
	}
}

func TestFoldAreaShrinksVolumeDoesNot(t *testing.T) {
	src := buildHypercube2(t, 7)
	srcStats := Measure(src)
	folded, err := Fold(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v := Verify(folded); len(v) > 0 {
		t.Fatalf("illegal: %v", v[0])
	}
	f := Measure(folded)
	areaGain := float64(srcStats.Area) / float64(f.Area)
	// §2.2: folding into L=8 gains ≈ L/2 = 4 in area (gutters cost a bit).
	if areaGain < 3.0 || areaGain > 4.6 {
		t.Errorf("fold area gain = %.2f, want ≈ 4", areaGain)
	}
	volGain := float64(srcStats.Volume) / float64(f.Volume)
	// Volume is essentially unchanged (ratio ≈ 1).
	if volGain < 0.8 || volGain > 1.3 {
		t.Errorf("fold volume ratio = %.2f, want ≈ 1", volGain)
	}
	// Max wire length does not improve (gutter detours may lengthen a bit).
	if f.MaxWire < srcStats.MaxWire {
		t.Errorf("fold shortened max wire %d -> %d, expected no improvement",
			srcStats.MaxWire, f.MaxWire)
	}
	if f.MaxWire > srcStats.MaxWire*2 {
		t.Errorf("fold more than doubled max wire %d -> %d", srcStats.MaxWire, f.MaxWire)
	}
}

func TestFoldPreservesEndpointsAndLength(t *testing.T) {
	src := buildHypercube2(t, 5)
	folded, err := Fold(src, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range folded.Wires {
		fw, sw := &folded.Wires[i], &src.Wires[i]
		if fw.U != sw.U || fw.V != sw.V {
			t.Fatalf("wire %d endpoints changed", i)
		}
		if fw.PlanarLength() < sw.PlanarLength() {
			t.Errorf("wire %d planar length shrank %d -> %d (folding cannot shorten)",
				i, sw.PlanarLength(), fw.PlanarLength())
		}
		// Each fold crossing adds exactly 2 planar units (the gutter
		// detour); with 3 strips a wire crosses at most a few boundaries.
		if fw.PlanarLength() > sw.PlanarLength()+2*2*6 {
			t.Errorf("wire %d gained too much length: %d -> %d",
				i, sw.PlanarLength(), fw.PlanarLength())
		}
	}
}

func TestFoldRejectsBadInput(t *testing.T) {
	src := buildHypercube2(t, 3)
	if _, err := Fold(src, 5); err == nil {
		t.Error("odd L accepted")
	}
	if _, err := Fold(src, 0); err == nil {
		t.Error("L=0 accepted")
	}
	src.L = 4
	if _, err := Fold(src, 8); err == nil {
		t.Error("non-2-layer input accepted")
	}
}

func TestFoldIdentityAtL2(t *testing.T) {
	src := buildHypercube2(t, 4)
	folded, err := Fold(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, f := Measure(src), Measure(folded)
	if s.Area != f.Area || s.MaxWire != f.MaxWire {
		t.Errorf("L=2 fold changed metrics: %+v vs %+v", s, f)
	}
}

func TestStackedCollinear(t *testing.T) {
	c := track.Hypercube(8) // 256 nodes, 170 tracks
	s2 := StackedCollinear(c, 2)
	s8 := StackedCollinear(c, 8)
	gain := float64(s2.Area) / float64(s8.Area)
	if gain < 3.0 || gain > 4.2 {
		t.Errorf("stacked collinear area gain at L=8 = %.2f, want <= ~4", gain)
	}
	// Volume does not improve: L × (area/L/2) ≈ 2 × area(L=2)/2.
	if float64(s8.Volume) < 0.8*float64(s2.Volume) {
		t.Errorf("stacked collinear volume improved: %d -> %d", s2.Volume, s8.Volume)
	}
	if s8.MaxWire != s2.MaxWire {
		t.Errorf("stacked collinear max wire changed: %d -> %d", s2.MaxWire, s8.MaxWire)
	}
}

// Property: folding any verified 2-layer engine output stays legal for all
// even L, preserves endpoints, and never shortens planar wire lengths.
func TestFoldPropertyRandomLayouts(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		k := 3 + int(seed%3)
		n := 2
		src, err := core.KAryNCube(k, n, 2, seed%2 == 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range []int{4, 6, 10} {
			folded, err := Fold(src, l)
			if err != nil {
				t.Fatalf("seed %d L=%d: %v", seed, l, err)
			}
			if v := Verify(folded); len(v) > 0 {
				t.Fatalf("seed %d L=%d: %v", seed, l, v[0])
			}
			for i := range folded.Wires {
				if folded.Wires[i].PlanarLength() < src.Wires[i].PlanarLength() {
					t.Fatalf("seed %d L=%d: wire %d shortened", seed, l, i)
				}
			}
		}
	}
}

// Folding GHC and hypercube layouts of different aspect ratios.
func TestFoldVariousSources(t *testing.T) {
	sources := []func() (*layout.Layout, error){
		func() (*layout.Layout, error) { return core.GeneralizedHypercube([]int{4, 4}, 2, 0, 0) },
		func() (*layout.Layout, error) { return core.Mesh([]int{5, 7}, 2, 0, 0) },
		func() (*layout.Layout, error) { return core.Hypercube(5, 2, 3, 0) }, // forced node side
	}
	for _, mk := range sources {
		src, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		folded, err := Fold(src, 6)
		if err != nil {
			t.Fatal(err)
		}
		if v := Verify(folded); len(v) > 0 {
			t.Fatalf("%s: %v", src.Name, v[0])
		}
	}
}
