package topology

import "fmt"

// Permutation ranking via the factorial number system gives each of the n!
// permutations of {0..n−1} a canonical label, used by the Cayley-graph
// generators below (star, pancake, bubble-sort, transposition networks),
// the families the paper lists in §4.3 as amenable to the same layout
// strategies.

// Factorial returns n! (panics on overflow-prone n > 20).
func Factorial(n int) int {
	if n < 0 || n > 20 {
		panic("Factorial: n out of range")
	}
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// RankPermutation returns the factorial-number-system rank of perm, a
// permutation of {0..n−1}.
func RankPermutation(perm []int) int {
	n := len(perm)
	rank := 0
	work := append([]int(nil), perm...)
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if work[j] < work[i] {
				smaller++
			}
		}
		rank = rank*(n-i) + smaller
	}
	return rank
}

// UnrankPermutation inverts RankPermutation for permutations of length n.
func UnrankPermutation(rank, n int) []int {
	digits := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		digits[i] = rank % (n - i)
		rank /= (n - i)
	}
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		d := digits[i]
		perm[i] = avail[d]
		avail = append(avail[:d], avail[d+1:]...)
	}
	return perm
}

// cayley builds the Cayley graph of the symmetric group S_n under the given
// set of involutive generators (each generator applied to a permutation
// must be an involution on positions so links are undirected).
func cayley(name string, n int, gens []func([]int) []int) *Graph {
	g := New(name, Factorial(n))
	perm := make([]int, n)
	for v := 0; v < g.N; v++ {
		copy(perm, UnrankPermutation(v, n))
		for _, gen := range gens {
			w := RankPermutation(gen(perm))
			if v < w {
				g.AddLink(v, w)
			}
		}
	}
	return g
}

func swapGen(i, j int) func([]int) []int {
	return func(p []int) []int {
		q := append([]int(nil), p...)
		q[i], q[j] = q[j], q[i]
		return q
	}
}

func reverseGen(prefix int) func([]int) []int {
	return func(p []int) []int {
		q := append([]int(nil), p...)
		for a, b := 0, prefix-1; a < b; a, b = a+1, b-1 {
			q[a], q[b] = q[b], q[a]
		}
		return q
	}
}

// Star returns the n-dimensional star graph (Akers & Krishnamurthy):
// generators swap position 0 with position i, i = 1..n−1. N = n!.
func Star(n int) *Graph {
	var gens []func([]int) []int
	for i := 1; i < n; i++ {
		gens = append(gens, swapGen(0, i))
	}
	return cayley(fmt.Sprintf("star(%d)", n), n, gens)
}

// Pancake returns the n-dimensional pancake graph: generators reverse
// prefixes of length 2..n. N = n!.
func Pancake(n int) *Graph {
	var gens []func([]int) []int
	for l := 2; l <= n; l++ {
		gens = append(gens, reverseGen(l))
	}
	return cayley(fmt.Sprintf("pancake(%d)", n), n, gens)
}

// BubbleSort returns the bubble-sort graph: generators are adjacent
// transpositions (i, i+1). N = n!.
func BubbleSort(n int) *Graph {
	var gens []func([]int) []int
	for i := 0; i+1 < n; i++ {
		gens = append(gens, swapGen(i, i+1))
	}
	return cayley(fmt.Sprintf("bubblesort(%d)", n), n, gens)
}

// Transposition returns the transposition network: generators are all
// transpositions (i, j). N = n!.
func Transposition(n int) *Graph {
	var gens []func([]int) []int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			gens = append(gens, swapGen(i, j))
		}
	}
	return cayley(fmt.Sprintf("transposition(%d)", n), n, gens)
}

// ISN returns the indirect swap network substitute documented in DESIGN.md:
// a wrapped butterfly with 2^m rows and m levels in which each (level, row
// pair) boundary carries a single cross link instead of the butterfly's two
// — node (ℓ, w) with bit ℓ of w clear links to ((ℓ+1) mod m, w ⊕ 2^ℓ). The
// quotient over row clusters then has 2 parallel links per neighboring
// cluster pair versus the butterfly's 4, the property §4.3 uses to claim a
// factor-4 area and factor-2 wire-length advantage.
func ISN(m int) *Graph {
	if m < 2 {
		panic("ISN: need m >= 2")
	}
	rows := 1 << uint(m)
	g := New(fmt.Sprintf("ISN(%d)", m), m*rows)
	id := func(l, w int) int { return l*rows + w }
	for l := 0; l < m; l++ {
		nl := (l + 1) % m
		for w := 0; w < rows; w++ {
			if m == 2 && nl < l {
				g.AddLinkOnce(id(l, w), id(nl, w))
				if w&(1<<uint(l)) == 0 {
					g.AddLinkOnce(id(l, w), id(nl, w^(1<<uint(l))))
				}
				continue
			}
			g.AddLink(id(l, w), id(nl, w))
			if w&(1<<uint(l)) == 0 {
				g.AddLink(id(l, w), id(nl, w^(1<<uint(l))))
			}
		}
	}
	return g
}

// SCC returns the star-connected cycles network of Latifi, de Azevedo &
// Bagherzadeh: each node of the n-dimensional star graph is replaced by an
// (n−1)-node cycle, and cycle position i carries the lateral (star) link of
// generator swap(0, i+1). Node (v, i) has label v·(n−1) + i with v the
// permutation rank. N = n!·(n−1); degree 3 for n >= 4.
func SCC(n int) *Graph {
	if n < 3 {
		panic("SCC: need n >= 3")
	}
	cyc := n - 1
	g := New(fmt.Sprintf("SCC(%d)", n), Factorial(n)*cyc)
	id := func(v, i int) int { return v*cyc + i }
	for v := 0; v < Factorial(n); v++ {
		perm := UnrankPermutation(v, n)
		// Cycle links (a single link when the cycle has 2 nodes).
		if cyc == 2 {
			g.AddLink(id(v, 0), id(v, 1))
		} else {
			for i := 0; i < cyc; i++ {
				g.AddLink(id(v, i), id(v, (i+1)%cyc))
			}
		}
		// Lateral links: position i applies generator swap(0, i+1).
		for i := 0; i < cyc; i++ {
			q := append([]int(nil), perm...)
			q[0], q[i+1] = q[i+1], q[0]
			w := RankPermutation(q)
			if v < w {
				g.AddLink(id(v, i), id(w, i))
			}
		}
	}
	return g
}

// MacroStar returns the macro-star network MS(l, n) of Yeh & Varvarigos
// [29]: a Cayley graph on the permutations of l·n+1 symbols whose
// generators are the n nucleus star transpositions (position 0 with
// positions 1..n) plus l−1 block-swap involutions exchanging the first
// n-symbol block with each other block. Degree n+l−1, N = (l·n+1)!.
// The ICPP paper names this family among the §4.3 targets.
func MacroStar(l, n int) *Graph {
	if l < 1 || n < 1 {
		panic("MacroStar: need l >= 1, n >= 1")
	}
	total := l*n + 1
	var gens []func([]int) []int
	for i := 1; i <= n; i++ {
		gens = append(gens, swapGen(0, i))
	}
	for j := 1; j < l; j++ {
		base := j*n + 1
		gens = append(gens, blockSwapGen(1, base, n))
	}
	g := cayley(fmt.Sprintf("macrostar(%d,%d)", l, n), total, gens)
	return g
}

// blockSwapGen exchanges the n-symbol blocks starting at positions a and b.
func blockSwapGen(a, b, n int) func([]int) []int {
	return func(p []int) []int {
		q := append([]int(nil), p...)
		for i := 0; i < n; i++ {
			q[a+i], q[b+i] = q[b+i], q[a+i]
		}
		return q
	}
}
