package topology

import "fmt"

// KAryNCube returns the k-ary n-cube (torus): node labels are n-digit
// base-k numbers, digit 0 least significant; links join labels differing by
// ±1 (mod k) in one digit. For k = 2 the +1 and −1 neighbors coincide, so
// each dimension contributes one link per node pair (the binary hypercube).
func KAryNCube(k, n int) *Graph {
	if k < 2 || n < 1 {
		panic("KAryNCube: need k >= 2, n >= 1")
	}
	g := New(fmt.Sprintf("%d-ary %d-cube", k, n), pow(k, n))
	stride := 1
	for d := 0; d < n; d++ {
		for v := 0; v < g.N; v++ {
			digit := (v / stride) % k
			up := v + stride
			if digit == k-1 {
				up = v - (k-1)*stride
			}
			if k == 2 {
				if digit == 0 {
					g.AddLink(v, v+stride)
				}
				continue
			}
			g.AddLink(v, up) // each node contributes its +1 link once
		}
		stride *= k
	}
	return g
}

// Mesh returns the n-dimensional mesh with the given per-dimension extents
// (dims[0] least significant). Links join labels differing by 1 in one
// coordinate (no wraparound).
func Mesh(dims []int) *Graph {
	n := 1
	for _, d := range dims {
		if d < 1 {
			panic("Mesh: extents must be >= 1")
		}
		n *= d
	}
	g := New(fmt.Sprintf("mesh%v", dims), n)
	stride := 1
	for _, d := range dims {
		for v := 0; v < n; v++ {
			if (v/stride)%d < d-1 {
				g.AddLink(v, v+stride)
			}
		}
		stride *= d
	}
	return g
}

// Hypercube returns the binary n-cube: 2ⁿ nodes, links between labels
// differing in exactly one bit.
func Hypercube(n int) *Graph {
	g := New(fmt.Sprintf("%d-cube", n), 1<<uint(n))
	for v := 0; v < g.N; v++ {
		for b := 0; b < n; b++ {
			w := v ^ (1 << uint(b))
			if v < w {
				g.AddLink(v, w)
			}
		}
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(fmt.Sprintf("K%d", n), n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddLink(u, v)
		}
	}
	return g
}

// GeneralizedHypercube returns the n-dimensional mixed-radix generalized
// hypercube of Bhuyan & Agrawal: labels are mixed-radix numbers with
// radices[0] least significant, and two labels are linked iff they differ
// in exactly one digit (each dimension is a complete graph).
func GeneralizedHypercube(radices []int) *Graph {
	n := 1
	for _, r := range radices {
		if r < 2 {
			panic("GeneralizedHypercube: radices must be >= 2")
		}
		n *= r
	}
	g := New(fmt.Sprintf("GHC%v", radices), n)
	stride := 1
	for _, r := range radices {
		for v := 0; v < n; v++ {
			digit := (v / stride) % r
			for other := digit + 1; other < r; other++ {
				g.AddLink(v, v+(other-digit)*stride)
			}
		}
		stride *= r
	}
	return g
}

// FoldedHypercube returns the n-cube plus one diameter (bitwise-complement)
// link per node pair: N/2 extra links (§5.3, citing El-Amawy & Latifi [1]).
func FoldedHypercube(n int) *Graph {
	g := Hypercube(n)
	g.Name = fmt.Sprintf("folded %d-cube", n)
	mask := 1<<uint(n) - 1
	for v := 0; v < g.N; v++ {
		w := v ^ mask
		if v < w {
			g.AddLink(v, w)
		}
	}
	return g
}

// EnhancedCube returns the n-cube with one additional outgoing link per node
// leading to a pseudo-random node (§5.3, citing Varvarigos [26]): N extra
// links. The destination of node v's extra link is drawn from a
// deterministic xorshift stream seeded by seed, skipping self-loops.
func EnhancedCube(n int, seed uint64) *Graph {
	g := Hypercube(n)
	g.Name = fmt.Sprintf("enhanced %d-cube", n)
	s := seed*2862933555777941757 + 3037000493
	next := func(m int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(m))
	}
	for v := 0; v < g.N; v++ {
		w := next(g.N)
		for w == v {
			w = next(g.N)
		}
		g.AddLink(v, w)
	}
	return g
}

// CCC returns the n-dimensional cube-connected cycles graph of Preparata &
// Vuillemin: each n-cube node w is replaced by an n-node cycle; cycle node
// (w, i) has label w·n + i, cycle links join consecutive i, and the cube
// link at position i joins (w, i) to (w ⊕ 2^i, i). N = n·2ⁿ.
func CCC(n int) *Graph {
	if n < 1 {
		panic("CCC: need n >= 1")
	}
	g := New(fmt.Sprintf("CCC(%d)", n), n<<uint(n))
	id := func(w, i int) int { return w*n + i }
	for w := 0; w < 1<<uint(n); w++ {
		// Cycle links: an n-node cycle for n >= 3, a single link for n = 2,
		// nothing for n = 1.
		switch {
		case n >= 3:
			for i := 0; i < n; i++ {
				g.AddLink(id(w, i), id(w, (i+1)%n))
			}
		case n == 2:
			g.AddLink(id(w, 0), id(w, 1))
		}
		// Cube links: position i handles dimension i.
		for i := 0; i < n; i++ {
			wx := w ^ (1 << uint(i))
			if w < wx {
				g.AddLink(id(w, i), id(wx, i))
			}
		}
	}
	return g
}

// ReducedHypercube returns Ziavras's reduced hypercube RH obtained from
// CCC(n) by replacing each n-node cycle with a log2(n)-dimensional
// hypercube; n must be a power of two. Node (w, i) keeps the cube link to
// (w ⊕ 2^i, i); intra-cluster links join i's differing in one bit.
func ReducedHypercube(n int) *Graph {
	if n < 2 || n&(n-1) != 0 {
		panic("ReducedHypercube: cluster size n must be a power of two >= 2")
	}
	g := New(fmt.Sprintf("RH(%d)", n), n<<uint(n))
	id := func(w, i int) int { return w*n + i }
	logn := 0
	for 1<<uint(logn) < n {
		logn++
	}
	for w := 0; w < 1<<uint(n); w++ {
		for i := 0; i < n; i++ {
			for b := 0; b < logn; b++ {
				j := i ^ (1 << uint(b))
				if i < j {
					g.AddLink(id(w, i), id(w, j))
				}
			}
			wx := w ^ (1 << uint(i))
			if w < wx {
				g.AddLink(id(w, i), id(wx, i))
			}
		}
	}
	return g
}

// Butterfly returns the wrapped butterfly with 2^m rows and m levels:
// N = m·2^m nodes labeled (level ℓ, row w) -> ℓ·2^m + w. Node (ℓ, w)
// connects to ((ℓ+1) mod m, w) (straight) and ((ℓ+1) mod m, w ⊕ 2^ℓ)
// (cross). The paper's "R×R butterfly" has R = 2^m rows and N = R·log2 R.
func Butterfly(m int) *Graph {
	if m < 2 {
		panic("Butterfly: need m >= 2")
	}
	rows := 1 << uint(m)
	g := New(fmt.Sprintf("butterfly(%d)", m), m*rows)
	id := func(l, w int) int { return l*rows + w }
	for l := 0; l < m; l++ {
		nl := (l + 1) % m
		for w := 0; w < rows; w++ {
			if m == 2 && nl < l {
				// With m=2 the wrap level pairs repeat; still add one copy
				// of each distinct link.
				g.AddLinkOnce(id(l, w), id(nl, w))
				g.AddLinkOnce(id(l, w), id(nl, w^(1<<uint(l))))
				continue
			}
			g.AddLink(id(l, w), id(nl, w))
			g.AddLink(id(l, w), id(nl, w^(1<<uint(l))))
		}
	}
	return g
}

// OrdinaryButterfly returns the unwrapped butterfly with m+1 levels and 2^m
// rows: N = (m+1)·2^m. Used by tests comparing against wrapped counts.
func OrdinaryButterfly(m int) *Graph {
	rows := 1 << uint(m)
	g := New(fmt.Sprintf("obutterfly(%d)", m), (m+1)*rows)
	id := func(l, w int) int { return l*rows + w }
	for l := 0; l < m; l++ {
		for w := 0; w < rows; w++ {
			g.AddLink(id(l, w), id(l+1, w))
			g.AddLink(id(l, w), id(l+1, w^(1<<uint(l))))
		}
	}
	return g
}

// HSN returns an l-level hierarchical swap network: the quotient over
// clusters is an (l−1)-dimensional radix-r generalized hypercube, each
// cluster is an r-node nucleus graph, and the level-d link between clusters
// c and c' differing in digit d (values a = digit_d(c), b = digit_d(c'))
// joins node (c, b) to (c', a) — one link per neighboring cluster pair, the
// swap wiring of Yeh & Parhami's index-permutation model. nucleus builds the
// intra-cluster graph (must have r nodes); nil means K_r.
func HSN(l, r int, nucleus func(int) *Graph) *Graph {
	if l < 2 || r < 2 {
		panic("HSN: need l >= 2, r >= 2")
	}
	if nucleus == nil {
		nucleus = Complete
	}
	nuc := nucleus(r)
	if nuc.N != r {
		panic("HSN: nucleus must have r nodes")
	}
	clusters := pow(r, l-1)
	g := New(fmt.Sprintf("HSN(l=%d,r=%d,%s)", l, r, nuc.Name), clusters*r)
	id := func(c, i int) int { return c*r + i }
	for c := 0; c < clusters; c++ {
		for _, lk := range nuc.Links {
			g.AddLink(id(c, lk.U), id(c, lk.V))
		}
		stride := 1
		for d := 0; d < l-1; d++ {
			a := (c / stride) % r
			for b := a + 1; b < r; b++ {
				c2 := c + (b-a)*stride
				g.AddLink(id(c, b), id(c2, a))
			}
			stride *= r
		}
	}
	return g
}

// HHN returns a hierarchical hypercube network: an HSN whose nuclei are
// hypercubes of 2^m nodes (so r = 2^m) with l levels.
func HHN(l, m int) *Graph {
	r := 1 << uint(m)
	g := HSN(l, r, func(n int) *Graph { return Hypercube(m) })
	g.Name = fmt.Sprintf("HHN(l=%d,m=%d)", l, m)
	return g
}

// PNCluster replaces each node of quotient with a cluster graph of c nodes:
// node (q, i) -> q·c + i. Intra-cluster links come from cluster(); the j-th
// quotient link incident to cluster q attaches at cluster node j mod c, so
// inter-cluster links spread round-robin over cluster nodes. multiplicity
// parallel links realize each quotient link (the paper's butterfly quotient
// uses 4). This is the generic PN-cluster construction of §3.2.
func PNCluster(quotient *Graph, c int, cluster func(int) *Graph, multiplicity int) *Graph {
	if c < 1 {
		panic("PNCluster: need c >= 1")
	}
	if multiplicity < 1 {
		multiplicity = 1
	}
	g := New(fmt.Sprintf("%s-cluster-%d", quotient.Name, c), quotient.N*c)
	if cluster != nil {
		cl := cluster(c)
		if cl.N != c {
			panic("PNCluster: cluster graph must have c nodes")
		}
		for q := 0; q < quotient.N; q++ {
			for _, lk := range cl.Links {
				g.AddLink(q*c+lk.U, q*c+lk.V)
			}
		}
	}
	port := make([]int, quotient.N)
	for _, lk := range quotient.Links {
		for rep := 0; rep < multiplicity; rep++ {
			pu := port[lk.U] % c
			port[lk.U]++
			pv := port[lk.V] % c
			port[lk.V]++
			g.AddLink(lk.U*c+pu, lk.V*c+pv)
		}
	}
	return g
}

// PNClusterWithAttach is PNCluster with explicit attachment control: the
// m-th copy of quotient link {u, v} (u < v) joins cluster node
// (u, attach(u,v,m).uMember) to (v, attach(u,v,m).vMember). The layout
// engines use structural attachment rules (differing bit/digit, dimension
// mod c); this generator builds the matching expected topology.
func PNClusterWithAttach(quotient *Graph, c int, cluster func(int) *Graph, mult int, attach func(u, v, m int) (int, int)) *Graph {
	if c < 1 {
		panic("PNClusterWithAttach: need c >= 1")
	}
	if mult < 1 {
		mult = 1
	}
	g := New(fmt.Sprintf("%s-cluster-%d", quotient.Name, c), quotient.N*c)
	if cluster != nil {
		cl := cluster(c)
		if cl.N != c {
			panic("PNClusterWithAttach: cluster graph must have c nodes")
		}
		for q := 0; q < quotient.N; q++ {
			for _, lk := range cl.Links {
				g.AddLink(q*c+lk.U, q*c+lk.V)
			}
		}
	}
	for _, lk := range quotient.Links {
		for m := 0; m < mult; m++ {
			um, vm := attach(lk.U, lk.V, m)
			g.AddLink(lk.U*c+um, lk.V*c+vm)
		}
	}
	return g
}

// KAryClusterC returns a k-ary n-cube cluster-c (Basak & Panda [4]): the
// quotient is a k-ary n-cube and each cluster is a c-node hypercube
// (c must be a power of two).
func KAryClusterC(k, n, c int) *Graph {
	if c < 2 || c&(c-1) != 0 {
		panic("KAryClusterC: c must be a power of two >= 2")
	}
	logc := 0
	for 1<<uint(logc) < c {
		logc++
	}
	g := PNCluster(KAryNCube(k, n), c, func(int) *Graph { return Hypercube(logc) }, 1)
	g.Name = fmt.Sprintf("%d-ary %d-cube cluster-%d", k, n, c)
	return g
}

// DeBruijn returns the binary de Bruijn graph on 2^m nodes: node v links to
// (2v mod N) and (2v+1 mod N), taken as undirected links with self-loops
// (at 0 and N−1) dropped and duplicates kept once.
func DeBruijn(m int) *Graph {
	if m < 2 {
		panic("DeBruijn: need m >= 2")
	}
	n := 1 << uint(m)
	g := New(fmt.Sprintf("debruijn(%d)", m), n)
	for v := 0; v < n; v++ {
		for b := 0; b < 2; b++ {
			w := (2*v + b) % n
			if w != v {
				g.AddLinkOnce(v, w)
			}
		}
	}
	return g
}

// ShuffleExchange returns the shuffle-exchange graph on 2^m nodes:
// exchange links (v, v XOR 1) and shuffle links (v, rotate-left(v)),
// undirected, self-loops dropped.
func ShuffleExchange(m int) *Graph {
	if m < 2 {
		panic("ShuffleExchange: need m >= 2")
	}
	n := 1 << uint(m)
	g := New(fmt.Sprintf("shuffle-exchange(%d)", m), n)
	rol := func(v int) int {
		return ((v << 1) | (v >> uint(m-1))) & (n - 1)
	}
	for v := 0; v < n; v++ {
		if w := v ^ 1; v < w {
			g.AddLink(v, w)
		}
		if w := rol(v); w != v {
			g.AddLinkOnce(v, w)
		}
	}
	return g
}
