// Package topology provides generators for every interconnection network the
// paper lays out (k-ary n-cubes, hypercubes and their variants, generalized
// hypercubes, butterflies, cube-connected cycles, hierarchical and indirect
// swap networks, PN clusters) plus the Cayley-graph families the paper lists
// as extensions (star, pancake, bubble-sort, transposition graphs).
//
// Every generator documents its node labeling, since the layout engine and
// the legality verifier cross-check realized wires against these edge sets.
package topology

import (
	"fmt"
	"sort"
)

// Link is an undirected edge between node labels U and V.
type Link struct {
	U, V int
}

// Graph is an undirected multigraph with nodes 0..N-1.
type Graph struct {
	Name  string
	N     int
	Links []Link
	adj   [][]int // lazily built adjacency lists
}

// New returns an empty graph with n nodes.
func New(name string, n int) *Graph {
	return &Graph{Name: name, N: n}
}

// AddLink appends the undirected link {u, v}, normalizing to u < v.
// Self-loops are rejected.
func (g *Graph) AddLink(u, v int) {
	if u == v {
		panic(fmt.Sprintf("%s: self-loop at %d", g.Name, u))
	}
	if u > v {
		u, v = v, u
	}
	g.Links = append(g.Links, Link{u, v})
	g.adj = nil
}

// AddLinkOnce appends {u, v} only if not already present. It is O(links) and
// intended for small constructions; generators that can produce duplicates
// (e.g. k=2 rings) deduplicate structurally instead.
func (g *Graph) AddLinkOnce(u, v int) {
	if u > v {
		u, v = v, u
	}
	for _, l := range g.Links {
		if l.U == u && l.V == v {
			return
		}
	}
	g.AddLink(u, v)
}

// Adjacency returns adjacency lists (built once, cached).
func (g *Graph) Adjacency() [][]int {
	if g.adj == nil {
		g.adj = make([][]int, g.N)
		for _, l := range g.Links {
			g.adj[l.U] = append(g.adj[l.U], l.V)
			g.adj[l.V] = append(g.adj[l.V], l.U)
		}
	}
	return g.adj
}

// Degree returns each node's degree (counting parallel links).
func (g *Graph) Degree() []int {
	deg := make([]int, g.N)
	for _, l := range g.Links {
		deg[l.U]++
		deg[l.V]++
	}
	return deg
}

// MaxDegree returns the maximum node degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, d := range g.Degree() {
		if d > m {
			m = d
		}
	}
	return m
}

// LinkSet returns the multiset of links as sorted pairs, for comparisons.
func (g *Graph) LinkSet() []Link {
	out := append([]Link(nil), g.Links...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Equal reports whether two graphs have the same node count and identical
// link multisets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N != h.N || len(g.Links) != len(h.Links) {
		return false
	}
	a, b := g.LinkSet(), h.LinkSet()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Connected reports whether the graph is connected (true for N <= 1).
func (g *Graph) Connected() bool {
	if g.N <= 1 {
		return true
	}
	adj := g.Adjacency()
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.N
}

// BFS returns the distance from src to every node (-1 if unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	adj := g.Adjacency()
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Diameter returns the graph diameter (max over sources of max BFS depth).
// O(N·E); intended for the moderate sizes used in tests and benches.
func (g *Graph) Diameter() int {
	d := 0
	for s := 0; s < g.N; s++ {
		for _, x := range g.BFS(s) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

func pow(base, exp int) int {
	p := 1
	for i := 0; i < exp; i++ {
		p *= base
	}
	return p
}
