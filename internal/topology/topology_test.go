package topology

import (
	"testing"
	"testing/quick"
)

func checkRegular(t *testing.T, g *Graph, degree int) {
	t.Helper()
	for v, d := range g.Degree() {
		if d != degree {
			t.Fatalf("%s: node %d has degree %d, want %d", g.Name, v, d, degree)
			return
		}
	}
}

func checkConnected(t *testing.T, g *Graph) {
	t.Helper()
	if !g.Connected() {
		t.Fatalf("%s: not connected", g.Name)
	}
}

func TestKAryNCube(t *testing.T) {
	for _, tc := range []struct {
		k, n, wantN, wantLinks, degree int
	}{
		{3, 2, 9, 18, 4},
		{4, 2, 16, 32, 4},
		{4, 3, 64, 192, 6},
		{2, 3, 8, 12, 3}, // binary: torus collapses to hypercube
		{5, 1, 5, 5, 2},
		{2, 1, 2, 1, 1},
	} {
		g := KAryNCube(tc.k, tc.n)
		if g.N != tc.wantN || len(g.Links) != tc.wantLinks {
			t.Errorf("%s: N=%d links=%d, want %d and %d", g.Name, g.N, len(g.Links), tc.wantN, tc.wantLinks)
		}
		checkRegular(t, g, tc.degree)
		checkConnected(t, g)
	}
	if !KAryNCube(2, 4).Equal(Hypercube(4)) {
		t.Error("2-ary 4-cube should equal the 4-cube")
	}
}

func TestMesh(t *testing.T) {
	g := Mesh([]int{3, 4})
	if g.N != 12 || len(g.Links) != 2*4+3*3 {
		t.Errorf("mesh 3x4: N=%d links=%d, want 12 and 17", g.N, len(g.Links))
	}
	checkConnected(t, g)
	if d := Mesh([]int{5}).Diameter(); d != 4 {
		t.Errorf("path-5 diameter = %d, want 4", d)
	}
}

func TestHypercube(t *testing.T) {
	for n := 1; n <= 8; n++ {
		g := Hypercube(n)
		if g.N != 1<<uint(n) || len(g.Links) != n<<uint(n-1) {
			t.Errorf("%s: N=%d links=%d", g.Name, g.N, len(g.Links))
		}
		checkRegular(t, g, n)
		checkConnected(t, g)
		if d := g.Diameter(); d != n {
			t.Errorf("%s: diameter %d, want %d", g.Name, d, n)
		}
	}
}

func TestGeneralizedHypercube(t *testing.T) {
	g := GeneralizedHypercube([]int{3, 3})
	if g.N != 9 || len(g.Links) != 9*2 {
		t.Errorf("GHC(3,3): N=%d links=%d, want 9 and 18", g.N, len(g.Links))
	}
	checkRegular(t, g, 4)
	if d := g.Diameter(); d != 2 {
		t.Errorf("GHC(3,3) diameter = %d, want 2 (one hop per digit)", d)
	}
	// Radix-2 GHC is the hypercube.
	if !GeneralizedHypercube([]int{2, 2, 2}).Equal(Hypercube(3)) {
		t.Error("radix-2 GHC should equal the hypercube")
	}
	// Single-dimension GHC is the complete graph.
	if !GeneralizedHypercube([]int{7}).Equal(Complete(7)) {
		t.Error("1-D GHC should equal K7")
	}
	mixed := GeneralizedHypercube([]int{2, 3})
	checkRegular(t, mixed, 1+2)
	checkConnected(t, mixed)
}

func TestFoldedHypercube(t *testing.T) {
	for n := 2; n <= 6; n++ {
		g := FoldedHypercube(n)
		if want := n<<uint(n-1) + 1<<uint(n-1); len(g.Links) != want {
			t.Errorf("%s: %d links, want %d", g.Name, len(g.Links), want)
		}
		checkRegular(t, g, n+1)
		// Folding halves the diameter (⌈n/2⌉).
		if d := g.Diameter(); d != (n+1)/2 {
			t.Errorf("%s: diameter %d, want %d", g.Name, d, (n+1)/2)
		}
	}
}

func TestEnhancedCube(t *testing.T) {
	g := EnhancedCube(5, 42)
	if want := 5<<4 + 32; len(g.Links) != want {
		t.Errorf("%s: %d links, want %d", g.Name, len(g.Links), want)
	}
	checkConnected(t, g)
	// Deterministic for a fixed seed.
	h := EnhancedCube(5, 42)
	if !g.Equal(h) {
		t.Error("EnhancedCube not deterministic for fixed seed")
	}
	if g.Equal(EnhancedCube(5, 43)) {
		t.Error("different seeds should give different extra links")
	}
}

func TestCCC(t *testing.T) {
	for n := 2; n <= 6; n++ {
		g := CCC(n)
		if g.N != n<<uint(n) {
			t.Fatalf("%s: N=%d", g.Name, g.N)
		}
		cycleLinks := n
		if n == 2 {
			cycleLinks = 1
		}
		want := cycleLinks<<uint(n) + n<<uint(n-1)
		if len(g.Links) != want {
			t.Errorf("%s: %d links, want %d", g.Name, len(g.Links), want)
		}
		checkConnected(t, g)
		if n >= 3 {
			checkRegular(t, g, 3)
		}
	}
}

func TestReducedHypercube(t *testing.T) {
	g := ReducedHypercube(4)
	if g.N != 4*16 {
		t.Fatalf("%s: N=%d, want 64", g.Name, g.N)
	}
	// Each node: log2(4)=2 intra links + 1 cube link.
	checkRegular(t, g, 3)
	checkConnected(t, g)
}

func TestButterfly(t *testing.T) {
	for m := 2; m <= 6; m++ {
		g := Butterfly(m)
		rows := 1 << uint(m)
		if g.N != m*rows {
			t.Fatalf("%s: N=%d, want %d", g.Name, g.N, m*rows)
		}
		checkConnected(t, g)
		if m >= 3 {
			if want := 2 * m * rows; len(g.Links) != want {
				t.Errorf("%s: %d links, want %d", g.Name, len(g.Links), want)
			}
			checkRegular(t, g, 4)
		}
	}
	og := OrdinaryButterfly(3)
	if og.N != 4*8 || len(og.Links) != 2*3*8 {
		t.Errorf("ordinary butterfly(3): N=%d links=%d", og.N, len(og.Links))
	}
	checkConnected(t, og)
}

func TestISN(t *testing.T) {
	for m := 3; m <= 5; m++ {
		g := ISN(m)
		rows := 1 << uint(m)
		if g.N != m*rows {
			t.Fatalf("%s: N=%d", g.Name, g.N)
		}
		// Straight links: m·2^m; cross links: m·2^m/2.
		if want := m*rows + m*rows/2; len(g.Links) != want {
			t.Errorf("%s: %d links, want %d", g.Name, len(g.Links), want)
		}
		checkConnected(t, g)
	}
}

func TestHSN(t *testing.T) {
	g := HSN(2, 4, nil)
	// 2-level HSN radix 4: quotient K4 (1 digit), 4 clusters of K4.
	if g.N != 16 {
		t.Fatalf("%s: N=%d, want 16", g.Name, g.N)
	}
	// Intra: 4 clusters × 6 links; inter: 6 quotient links × 1.
	if want := 4*6 + 6; len(g.Links) != want {
		t.Errorf("%s: %d links, want %d", g.Name, len(g.Links), want)
	}
	checkConnected(t, g)

	g3 := HSN(3, 3, nil)
	if g3.N != 27 {
		t.Fatalf("%s: N=%d, want 27", g3.Name, g3.N)
	}
	// Quotient GHC(3,3) has 18 links; 9 clusters × 3 intra links.
	if want := 9*3 + 18; len(g3.Links) != want {
		t.Errorf("%s: %d links, want %d", g3.Name, len(g3.Links), want)
	}
	checkConnected(t, g3)
}

func TestHHN(t *testing.T) {
	g := HHN(2, 2)
	// r = 4, nuclei are 2-cubes: 4 clusters × 4 links + 6 inter.
	if g.N != 16 || len(g.Links) != 4*4+6 {
		t.Errorf("%s: N=%d links=%d, want 16 and 22", g.Name, g.N, len(g.Links))
	}
	checkConnected(t, g)
}

func TestPNClusterAndKAryClusterC(t *testing.T) {
	g := KAryClusterC(3, 2, 4)
	if g.N != 9*4 {
		t.Fatalf("%s: N=%d, want 36", g.Name, g.N)
	}
	// Intra: 9 clusters × 4 links (2-cube); inter: 18 quotient links.
	if want := 9*4 + 18; len(g.Links) != want {
		t.Errorf("%s: %d links, want %d", g.Name, len(g.Links), want)
	}
	checkConnected(t, g)

	multi := PNCluster(Complete(3), 2, nil, 2)
	// 3 quotient links × multiplicity 2, no intra graph.
	if len(multi.Links) != 6 {
		t.Errorf("PNCluster multiplicity: %d links, want 6", len(multi.Links))
	}
}

func TestStarGraph(t *testing.T) {
	g := Star(4)
	if g.N != 24 || len(g.Links) != 24*3/2 {
		t.Errorf("%s: N=%d links=%d, want 24 and 36", g.Name, g.N, len(g.Links))
	}
	checkRegular(t, g, 3)
	checkConnected(t, g)
}

func TestPancake(t *testing.T) {
	g := Pancake(4)
	checkRegular(t, g, 3)
	checkConnected(t, g)
	if g.N != 24 {
		t.Errorf("%s: N=%d", g.Name, g.N)
	}
}

func TestBubbleSort(t *testing.T) {
	g := BubbleSort(4)
	checkRegular(t, g, 3)
	checkConnected(t, g)
	// Bubble-sort graph diameter is n(n−1)/2.
	if d := g.Diameter(); d != 6 {
		t.Errorf("%s: diameter %d, want 6", g.Name, d)
	}
}

func TestTransposition(t *testing.T) {
	g := Transposition(4)
	checkRegular(t, g, 6)
	checkConnected(t, g)
	// Transposition network diameter is n−1.
	if d := g.Diameter(); d != 3 {
		t.Errorf("%s: diameter %d, want 3", g.Name, d)
	}
}

func TestPermutationRanking(t *testing.T) {
	f := func(r uint16, nn uint8) bool {
		n := 1 + int(nn%7)
		rank := int(r) % Factorial(n)
		perm := UnrankPermutation(rank, n)
		return RankPermutation(perm) == rank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGraphEqualAndLinkSet(t *testing.T) {
	a := Hypercube(3)
	b := Hypercube(3)
	if !a.Equal(b) {
		t.Error("identical hypercubes not equal")
	}
	b.AddLink(0, 7)
	if a.Equal(b) {
		t.Error("graphs with different links reported equal")
	}
}

func TestAddLinkPanicsOnSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-loop did not panic")
		}
	}()
	New("x", 2).AddLink(1, 1)
}

func TestBFSDistances(t *testing.T) {
	g := Hypercube(4)
	dist := g.BFS(0)
	for v := 0; v < g.N; v++ {
		pop := 0
		for x := v; x > 0; x &= x - 1 {
			pop++
		}
		if dist[v] != pop {
			t.Errorf("BFS dist to %b = %d, want popcount %d", v, dist[v], pop)
		}
	}
}

// Property: every generated family is connected and has the expected node
// count for random small parameters.
func TestFamiliesConnectedProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		k := 2 + int(a%4)
		n := 1 + int(b%3)
		if !KAryNCube(k, n).Connected() {
			return false
		}
		if !GeneralizedHypercube([]int{k, 2 + int(b%3)}).Connected() {
			return false
		}
		return HSN(2, k, nil).Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSCC(t *testing.T) {
	g := SCC(4)
	if g.N != 24*3 {
		t.Fatalf("%s: N=%d, want 72", g.Name, g.N)
	}
	checkRegular(t, g, 3)
	checkConnected(t, g)
	// Total links: cycles 24·3 + laterals 24·3/2.
	if want := 24*3 + 24*3/2; len(g.Links) != want {
		t.Errorf("%s: %d links, want %d", g.Name, len(g.Links), want)
	}
}

func TestMacroStar(t *testing.T) {
	// MS(2,2): 5 symbols, degree 2+2-1 = 3, N = 120.
	g := MacroStar(2, 2)
	if g.N != 120 {
		t.Fatalf("%s: N=%d, want 120", g.Name, g.N)
	}
	checkRegular(t, g, 3)
	checkConnected(t, g)
	// MS(1,n) degenerates to the star graph on n+1 symbols.
	if !MacroStar(1, 3).Equal(Star(4)) {
		t.Error("MS(1,3) should equal star(4)")
	}
}
