// Package cli holds plumbing shared by the mlvlsi command-line tools so
// that bad input fails the same way everywhere: a one-line actionable
// diagnostic on stderr (unknown families list the registry's valid names),
// exit code 2 for usage errors and 1 for runtime failures, and a uniform
// -timeout flag wired to the library's cooperative cancellation.
package cli

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mlvlsi"
)

// Usagef prints a usage-level diagnostic to stderr and exits 2, the
// conventional flag-error code (matching what package flag itself uses).
func Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// Failf prints a runtime failure to stderr and exits 1.
func Failf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// FamilyNames returns the registered family names in sorted order.
func FamilyNames() []string {
	fams := mlvlsi.Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// CheckFamily validates a -network value against the registry; the error
// for an unknown name lists every valid family so the fix is one copy-paste
// away.
func CheckFamily(name string) error {
	for _, f := range mlvlsi.Families() {
		if f.Name == name {
			return nil
		}
	}
	return fmt.Errorf("unknown network family %q; valid families: %s",
		name, strings.Join(FamilyNames(), ", "))
}

// ParseInts parses a comma-separated integer list ("2,4,8"); flagName is
// used in error messages.
func ParseInts(flagName, csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %q is not an integer", flagName, s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: empty list", flagName)
	}
	return out, nil
}

// ParseBytes parses a byte-count flag value: a plain integer is bytes, and
// a k/m/g (or kib/mib/gib) suffix scales by the binary unit, so "64m" is
// 64 MiB. Negative values pass through unscaled — the verifier's memory
// knobs use them as "force the tiled rung at its default budget" — and
// flagName is used in error messages.
func ParseBytes(flagName, s string) (int, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, fmt.Errorf("%s: empty byte count", flagName)
	}
	shift := 0
	for _, suf := range []struct {
		text  string
		shift int
	}{{"kib", 10}, {"mib", 20}, {"gib", 30}, {"k", 10}, {"m", 20}, {"g", 30}} {
		if strings.HasSuffix(t, suf.text) {
			t, shift = strings.TrimSuffix(t, suf.text), suf.shift
			break
		}
	}
	v, err := strconv.Atoi(strings.TrimSpace(t))
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not a byte count (use an integer with an optional k/m/g suffix)", flagName, s)
	}
	if v < 0 {
		if shift != 0 {
			return 0, fmt.Errorf("%s: negative byte counts take no unit suffix", flagName)
		}
		return v, nil
	}
	if shift > 0 && v > int(^uint(0)>>1)>>shift {
		return 0, fmt.Errorf("%s: %q overflows", flagName, s)
	}
	return v << shift, nil
}

// ParseParams parses a comma-separated name=value list ("k=4,n=3") into a
// family-parameter map; flagName is used in error messages.
func ParseParams(flagName, csv string) (map[string]int, error) {
	p := map[string]int{}
	for _, kv := range strings.Split(csv, ",") {
		if strings.TrimSpace(kv) == "" {
			continue
		}
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("%s: entry %q is not name=value", flagName, kv)
		}
		v, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return nil, fmt.Errorf("%s: %s=%q is not an integer", flagName, strings.TrimSpace(name), val)
		}
		p[strings.TrimSpace(name)] = v
	}
	return p, nil
}

// ParseFaultPlan parses the -faults mini-language into a simulator fault
// plan. The spec is semicolon-separated fields:
//
//	nodes=0,5            explicit dead nodes
//	links=0-1,2-3        explicit dead links (endpoints joined by '-')
//	random-nodes=2       seeded-random additional dead nodes
//	random-links=3       seeded-random additional dead links
//	seed=9               the fault seed for the random draws
//
// An empty spec returns nil (no faults).
func ParseFaultPlan(spec string) (*mlvlsi.SimFaultPlan, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	plan := &mlvlsi.SimFaultPlan{}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("-faults: field %q is not name=value (fields: nodes, links, random-nodes, random-links, seed)", field)
		}
		name, val = strings.TrimSpace(name), strings.TrimSpace(val)
		switch name {
		case "nodes":
			nodes, err := ParseInts("-faults nodes", val)
			if err != nil {
				return nil, err
			}
			plan.Nodes = nodes
		case "links":
			for _, lk := range strings.Split(val, ",") {
				us, vs, ok := strings.Cut(strings.TrimSpace(lk), "-")
				if !ok {
					return nil, fmt.Errorf("-faults links: %q is not u-v", lk)
				}
				u, err1 := strconv.Atoi(us)
				v, err2 := strconv.Atoi(vs)
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("-faults links: %q is not u-v with integer endpoints", lk)
				}
				plan.Links = append(plan.Links, [2]int{u, v})
			}
		case "random-nodes":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("-faults random-nodes: %q is not a count", val)
			}
			plan.RandomNodes = n
		case "random-links":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("-faults random-links: %q is not a count", val)
			}
			plan.RandomLinks = n
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("-faults seed: %q is not an unsigned integer", val)
			}
			plan.Seed = s
		default:
			return nil, fmt.Errorf("-faults: unknown field %q (fields: nodes, links, random-nodes, random-links, seed)", name)
		}
	}
	return plan, nil
}

// Trace turns a -trace flag value into an observer writing a Chrome-trace
// file. An empty path returns a nil observer (observation disabled at zero
// cost) and a no-op closer. Otherwise the returned done function must run
// after the observed work: it flushes the counter snapshot, terminates the
// JSON array, and closes the file, reporting the first write error.
func Trace(path string) (*mlvlsi.Observer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("-trace: %w", err)
	}
	sink := mlvlsi.NewTraceSink(f)
	obsv := mlvlsi.NewObserver(sink)
	done := func() error {
		obsv.Flush()
		if err := sink.Err(); err != nil {
			f.Close()
			return fmt.Errorf("-trace %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("-trace %s: %w", path, err)
		}
		return nil
	}
	return obsv, done, nil
}

// Timeout turns a -timeout flag value into a context: zero means no
// deadline (a nil context, which the library treats as "no cancellation"),
// so unbounded runs pay no polling overhead.
func Timeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return nil, func() {}
	}
	return context.WithTimeout(context.Background(), d)
}
