package cli

import (
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"mlvlsi"
)

// TestMain doubles as the subprocess body for the exit-code tests: when
// CLI_HELPER is set, the process runs the named helper (which calls
// os.Exit) instead of the test suite. See TestUsagefExitCode.
func TestMain(m *testing.M) {
	switch os.Getenv("CLI_HELPER") {
	case "":
		os.Exit(m.Run())
	case "usage":
		Usagef("bad flag: %s", "-network")
	case "fail":
		Failf("runtime failure: %v", fmt.Errorf("boom"))
	case "unknown-family":
		// The real tool path: an unknown -network value is a usage error
		// whose message lists the registry, then exit 2.
		if err := CheckFamily("nosuch"); err != nil {
			Usagef("%v", err)
		}
		os.Exit(0)
	default:
		fmt.Fprintln(os.Stderr, "unknown CLI_HELPER")
		os.Exit(99)
	}
}

// runHelper re-executes the test binary with CLI_HELPER set and returns the
// exit code and captured stderr.
func runHelper(t *testing.T, helper string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestMain")
	cmd.Env = append(os.Environ(), "CLI_HELPER="+helper)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("helper %s: %v", helper, err)
	}
	return ee.ExitCode(), stderr.String()
}

func TestUsagefExitCode(t *testing.T) {
	code, stderr := runHelper(t, "usage")
	if code != 2 {
		t.Errorf("Usagef exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "bad flag: -network") {
		t.Errorf("Usagef stderr = %q, want the formatted diagnostic", stderr)
	}
}

func TestFailfExitCode(t *testing.T) {
	code, stderr := runHelper(t, "fail")
	if code != 1 {
		t.Errorf("Failf exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, "runtime failure: boom") {
		t.Errorf("Failf stderr = %q, want the formatted diagnostic", stderr)
	}
}

// TestUnknownFamilyExits exercises the full bad -network path end to end:
// exit 2 with every registered family named on stderr, so the fix is a
// copy-paste away.
func TestUnknownFamilyExits(t *testing.T) {
	code, stderr := runHelper(t, "unknown-family")
	if code != 2 {
		t.Errorf("unknown family exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown network family "nosuch"`) {
		t.Errorf("stderr = %q, want the unknown-family diagnostic", stderr)
	}
	for _, name := range FamilyNames() {
		if !strings.Contains(stderr, name) {
			t.Errorf("stderr does not list registered family %q:\n%s", name, stderr)
		}
	}
}

func TestFamilyNamesSorted(t *testing.T) {
	names := FamilyNames()
	if len(names) == 0 {
		t.Fatal("no registered families")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("FamilyNames not strictly sorted: %q before %q", names[i-1], names[i])
		}
	}
}

func TestCheckFamily(t *testing.T) {
	for _, f := range mlvlsi.Families() {
		if err := CheckFamily(f.Name); err != nil {
			t.Errorf("CheckFamily(%q) = %v, want nil", f.Name, err)
		}
	}
	err := CheckFamily("bogus")
	if err == nil {
		t.Fatal("CheckFamily(bogus) = nil, want error")
	}
	for _, name := range FamilyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list family %q", err, name)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("-dims", " 2, 4 ,8,")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 4, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("ParseInts = %v, want %v", got, want)
	}
	for _, bad := range []string{"", " , ", "2,x", "2.5"} {
		if _, err := ParseInts("-dims", bad); err == nil {
			t.Errorf("ParseInts(%q) = nil error, want failure", bad)
		} else if !strings.Contains(err.Error(), "-dims") {
			t.Errorf("ParseInts(%q) error %q does not name the flag", bad, err)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"0", 0}, {"123", 123}, {" 64k ", 64 << 10}, {"2m", 2 << 20},
		{"1g", 1 << 30}, {"3KiB", 3 << 10}, {"5MiB", 5 << 20},
		{"7gib", 7 << 30}, {"-1", -1}, {"-65536", -65536},
	}
	for _, tc := range cases {
		got, err := ParseBytes("-verify-mem", tc.in)
		if err != nil {
			t.Errorf("ParseBytes(%q) error: %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "  ", "x", "1t", "2.5m", "-1k", "99999999999g"} {
		if _, err := ParseBytes("-verify-mem", bad); err == nil {
			t.Errorf("ParseBytes(%q) = nil error, want failure", bad)
		} else if !strings.Contains(err.Error(), "-verify-mem") {
			t.Errorf("ParseBytes(%q) error %q does not name the flag", bad, err)
		}
	}
}

func TestParseParams(t *testing.T) {
	got, err := ParseParams("-params", "k=4, n = 3 ,")
	if err != nil {
		t.Fatal(err)
	}
	if want := map[string]int{"k": 4, "n": 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("ParseParams = %v, want %v", got, want)
	}
	if got, err := ParseParams("-params", ""); err != nil || len(got) != 0 {
		t.Errorf("ParseParams(empty) = %v, %v; want empty map, nil", got, err)
	}
	for _, bad := range []string{"k", "k=x"} {
		if _, err := ParseParams("-params", bad); err == nil {
			t.Errorf("ParseParams(%q) = nil error, want failure", bad)
		} else if !strings.Contains(err.Error(), "-params") {
			t.Errorf("ParseParams(%q) error %q does not name the flag", bad, err)
		}
	}
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("nodes=0,5; links=0-1,2-3; random-nodes=2; random-links=3; seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := &mlvlsi.SimFaultPlan{
		Nodes:       []int{0, 5},
		Links:       [][2]int{{0, 1}, {2, 3}},
		RandomNodes: 2,
		RandomLinks: 3,
		Seed:        9,
	}
	if !reflect.DeepEqual(plan, want) {
		t.Errorf("ParseFaultPlan = %+v, want %+v", plan, want)
	}
	if plan, err := ParseFaultPlan("  "); err != nil || plan != nil {
		t.Errorf("ParseFaultPlan(blank) = %v, %v; want nil, nil", plan, err)
	}
	for _, bad := range []string{
		"nodes",           // not name=value
		"nodes=x",         // not integers
		"links=0",         // not u-v
		"links=0-x",       // non-integer endpoint
		"random-nodes=-1", // negative count
		"random-links=eh", // not a count
		"seed=-3",         // not unsigned
		"volts=9",         // unknown field
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) = nil error, want failure", bad)
		}
	}
}

func TestTimeout(t *testing.T) {
	ctx, cancel := Timeout(0)
	cancel()
	if ctx != nil {
		t.Errorf("Timeout(0) context = %v, want nil (no polling overhead)", ctx)
	}
	ctx, cancel = Timeout(time.Minute)
	defer cancel()
	if ctx == nil {
		t.Fatal("Timeout(1m) = nil context, want deadline context")
	}
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("Timeout(1m) context has no deadline")
	}
	if until := time.Until(dl); until <= 0 || until > time.Minute {
		t.Errorf("deadline %v from now, want within (0, 1m]", until)
	}
}
