package sim

import (
	"testing"

	"mlvlsi/internal/core"
	"mlvlsi/internal/layout"
)

func buildCube(t *testing.T, n, l int) *layout.Layout {
	t.Helper()
	lay, err := core.Hypercube(n, l, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func TestRunDeliversEverything(t *testing.T) {
	lay := buildCube(t, 5, 2)
	for _, p := range []Pattern{RandomPairs, Permutation, BitComplement} {
		res := Run(lay, Config{Pattern: p, Messages: 64, Velocity: 4, Seed: 9})
		if res.Delivered == 0 {
			t.Errorf("%v: nothing delivered", p)
		}
		if res.AvgLatency <= 0 || res.MaxLatency < int(res.AvgLatency) {
			t.Errorf("%v: inconsistent latency stats %+v", p, res)
		}
		if res.Makespan < res.MaxLatency {
			t.Errorf("%v: makespan %d below max latency %d", p, res.Makespan, res.MaxLatency)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	lay := buildCube(t, 4, 2)
	a := Run(lay, Config{Pattern: RandomPairs, Messages: 50, Velocity: 2, Seed: 5})
	b := Run(lay, Config{Pattern: RandomPairs, Messages: 50, Velocity: 2, Seed: 5})
	if a != b {
		t.Errorf("same seed gave different results: %+v vs %+v", a, b)
	}
	c := Run(lay, Config{Pattern: RandomPairs, Messages: 50, Velocity: 2, Seed: 6})
	if a == c {
		t.Error("different seeds gave identical results (suspicious)")
	}
}

func TestPermutationDeliversNMinusFixed(t *testing.T) {
	lay := buildCube(t, 4, 2)
	res := Run(lay, Config{Pattern: Permutation, Velocity: 1, Seed: 3})
	if res.Delivered < 10 || res.Delivered > 16 {
		t.Errorf("permutation delivered %d, want close to N=16", res.Delivered)
	}
}

func TestLatencyDropsWithMoreLayers(t *testing.T) {
	// The §2.2 performance claim: with wire delay dominating (velocity 1),
	// an L=8 layout's shorter wires cut latency versus L=2.
	l2 := buildCube(t, 6, 2)
	l8 := buildCube(t, 6, 8)
	cfg := Config{Pattern: BitComplement, Velocity: 1, Seed: 1}
	r2 := Run(l2, cfg)
	r8 := Run(l8, cfg)
	if r8.AvgLatency >= r2.AvgLatency {
		t.Errorf("L=8 avg latency %.1f not below L=2 %.1f", r8.AvgLatency, r2.AvgLatency)
	}
	ratio := r2.AvgLatency / r8.AvgLatency
	if ratio < 1.5 {
		t.Errorf("latency ratio L2/L8 = %.2f, want clearly > 1.5 approaching 4", ratio)
	}
}

func TestVelocityScalesLatency(t *testing.T) {
	lay := buildCube(t, 5, 2)
	slow := Run(lay, Config{Pattern: Permutation, Velocity: 1, Seed: 2})
	fast := Run(lay, Config{Pattern: Permutation, Velocity: 100, Seed: 2})
	if fast.AvgLatency >= slow.AvgLatency {
		t.Errorf("faster wires did not reduce latency: %.1f vs %.1f",
			fast.AvgLatency, slow.AvgLatency)
	}
	// At very high velocity every hop costs one cycle; average latency is
	// then bounded by diameter plus queueing.
	if fast.AvgLatency > 40 {
		t.Errorf("hop-limited latency %.1f implausibly high", fast.AvgLatency)
	}
}

func TestContentionRaisesLatency(t *testing.T) {
	lay := buildCube(t, 4, 2)
	light := Run(lay, Config{Pattern: RandomPairs, Messages: 4, Velocity: 1, Seed: 8})
	heavy := Run(lay, Config{Pattern: RandomPairs, Messages: 400, Velocity: 1, Seed: 8})
	if heavy.AvgLatency <= light.AvgLatency {
		t.Errorf("heavy load latency %.1f not above light load %.1f",
			heavy.AvgLatency, light.AvgLatency)
	}
}

func TestPatternString(t *testing.T) {
	if RandomPairs.String() != "random-pairs" || Permutation.String() != "permutation" ||
		BitComplement.String() != "bit-complement" || Pattern(99).String() != "unknown" {
		t.Error("Pattern.String mismatch")
	}
}

func TestCutThroughBeatsStoreAndForwardForLongMessages(t *testing.T) {
	lay := buildCube(t, 6, 2)
	base := Config{Pattern: Permutation, Velocity: 1, Seed: 4, Flits: 8}
	saf := base
	saf.Switching = StoreAndForward
	ct := base
	ct.Switching = CutThrough
	rs, rc := Run(lay, saf), Run(lay, ct)
	if rc.AvgLatency >= rs.AvgLatency {
		t.Errorf("cut-through %.1f not below store-and-forward %.1f for 8-flit messages",
			rc.AvgLatency, rs.AvgLatency)
	}
}

func TestSingleFlitModesAgreeOnUncontendedPath(t *testing.T) {
	// With one message and one flit, both disciplines give the same
	// latency: the sum of wire latencies along the route.
	lay := buildCube(t, 4, 2)
	saf := Run(lay, Config{Pattern: BitComplement, Velocity: 1, Flits: 1, Switching: StoreAndForward})
	ct := Run(lay, Config{Pattern: BitComplement, Velocity: 1, Flits: 1, Switching: CutThrough})
	if saf.AvgLatency != ct.AvgLatency {
		t.Errorf("single-flit disciplines disagree: %.2f vs %.2f", saf.AvgLatency, ct.AvgLatency)
	}
}

func TestSwitchingString(t *testing.T) {
	if StoreAndForward.String() != "store-and-forward" || CutThrough.String() != "cut-through" {
		t.Error("Switching.String mismatch")
	}
}

func TestWireDelayGainHoldsUnderCutThrough(t *testing.T) {
	// The paper's L/2 latency claim is about wire lengths, so it survives
	// the switching discipline: cut-through latency still drops with L.
	l2 := buildCube(t, 6, 2)
	l8 := buildCube(t, 6, 8)
	cfg := Config{Pattern: BitComplement, Velocity: 1, Flits: 4, Switching: CutThrough, Seed: 2}
	r2, r8 := Run(l2, cfg), Run(l8, cfg)
	if r8.AvgLatency >= r2.AvgLatency {
		t.Errorf("cut-through latency did not drop with layers: %.1f vs %.1f",
			r2.AvgLatency, r8.AvgLatency)
	}
}
