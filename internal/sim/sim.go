// Package sim is a wire-delay network simulator over realized layouts: it
// demonstrates the performance side of the paper's §2.2 argument, that
// cutting the maximum wire length by ≈ L/2 cuts communication latency
// proportionally when wires are the bottleneck.
//
// The model is store-and-forward message passing on hop-shortest routes.
// Each link's transfer time is its realized planar wire length divided by
// the signal velocity (grid units per cycle), at least one cycle; a link
// carries one message at a time per direction, so contention queues arise
// naturally. The simulator is deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"

	"mlvlsi/internal/layout"
	"mlvlsi/internal/route"
)

// Pattern selects the traffic pattern.
type Pattern int

const (
	// RandomPairs sends each message between independent uniform nodes.
	RandomPairs Pattern = iota
	// Permutation routes a random permutation: node i sends to π(i).
	Permutation
	// BitComplement sends node i to node N-1-i.
	BitComplement
)

func (p Pattern) String() string {
	switch p {
	case RandomPairs:
		return "random-pairs"
	case Permutation:
		return "permutation"
	case BitComplement:
		return "bit-complement"
	}
	return "unknown"
}

// Switching selects the flow-control discipline.
type Switching int

const (
	// StoreAndForward holds each link for the full message transit time.
	StoreAndForward Switching = iota
	// CutThrough pipelines the message: the header advances after the
	// link's wire latency while the Flits-long tail streams behind it.
	CutThrough
)

func (s Switching) String() string {
	if s == CutThrough {
		return "cut-through"
	}
	return "store-and-forward"
}

// Config parametrizes a run.
type Config struct {
	Pattern Pattern
	// Messages to inject (for RandomPairs); Permutation and BitComplement
	// send exactly N messages.
	Messages int
	// Velocity is the signal velocity in grid units per cycle (>= 1);
	// lower velocity makes wire length dominate.
	Velocity int
	// Switching selects store-and-forward (default) or cut-through.
	Switching Switching
	// Flits is the message length in flits (>= 1); under cut-through the
	// tail streams pipelined behind the header.
	Flits int
	Seed  uint64
	// Faults, when non-nil, degrades the network before traffic starts:
	// dead nodes and links are removed from the routing graph, messages to
	// or from dead nodes are dropped at injection, and messages whose
	// destination becomes unreachable are dropped en route. Drops are
	// counted in Result.Dropped.
	Faults *FaultPlan
}

// FaultPlan describes a degraded network: explicit dead nodes and links
// plus optional random faults drawn deterministically from Seed, so a
// chaos sweep is reproducible.
type FaultPlan struct {
	// Nodes lists node labels that have failed outright (all incident
	// links die with them).
	Nodes []int
	// Links lists failed undirected links by endpoint labels.
	Links [][2]int
	// RandomNodes and RandomLinks kill that many additional distinct
	// random nodes/links, drawn deterministically from Seed over the
	// layout's node and (surviving) link sets.
	RandomNodes int
	RandomLinks int
	Seed        uint64
}

// apply removes the plan's faults from g and returns the dead-node set.
// A nil plan is a no-op.
func (p *FaultPlan) apply(g *route.WeightedGraph) map[int]bool {
	dead := make(map[int]bool)
	if p == nil {
		return dead
	}
	for _, v := range p.Nodes {
		if v >= 0 && v < g.N && !dead[v] {
			dead[v] = true
			g.RemoveNode(v)
		}
	}
	for _, lk := range p.Links {
		g.RemoveLink(lk[0], lk[1])
	}
	rng := newRand(p.Seed ^ 0x9E3779B97F4A7C15)
	for killed := 0; killed < p.RandomNodes && len(dead) < g.N; {
		v := rng.next(g.N)
		if !dead[v] {
			dead[v] = true
			g.RemoveNode(v)
			killed++
		}
	}
	if p.RandomLinks > 0 {
		links := g.Links()
		for killed := 0; killed < p.RandomLinks && len(links) > 0; killed++ {
			j := rng.next(len(links))
			g.RemoveLink(links[j][0], links[j][1])
			links = append(links[:j], links[j+1:]...)
		}
	}
	return dead
}

// Result summarizes a run.
type Result struct {
	Delivered  int
	TotalHops  int
	AvgLatency float64
	MaxLatency int
	// Makespan is the cycle at which the last message arrived.
	Makespan int
	// Dropped counts messages lost to faults: injected at or addressed to
	// a dead node, or stranded when no route to the destination survives.
	// Without a FaultPlan it is always zero.
	Dropped int
}

func (r Result) String() string {
	s := fmt.Sprintf("delivered=%d avg-latency=%.1f max-latency=%d makespan=%d",
		r.Delivered, r.AvgLatency, r.MaxLatency, r.Makespan)
	if r.Dropped > 0 {
		s += fmt.Sprintf(" dropped=%d", r.Dropped)
	}
	return s
}

type event struct {
	time int
	msg  int
	node int
	hop  int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].msg < h[j].msg
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type xorshift uint64

func newRand(seed uint64) *xorshift {
	s := xorshift(seed*2685821657736338717 + 1)
	return &s
}

func (s *xorshift) next(n int) int {
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift(x)
	return int(x % uint64(n))
}

// Run simulates the traffic pattern over the layout and reports latency
// statistics.
func Run(lay *layout.Layout, cfg Config) Result {
	n := len(lay.Nodes)
	if n == 0 {
		return Result{}
	}
	if cfg.Velocity < 1 {
		cfg.Velocity = 1
	}
	g := route.FromLayout(lay)
	// Faults are applied before routing tables are built, so surviving
	// traffic reroutes around them; the traffic pattern itself is generated
	// unchanged (same endpoints for the same Seed), which keeps faulty and
	// healthy runs comparable message for message.
	dead := cfg.Faults.apply(g)
	rng := newRand(cfg.Seed)

	// Message endpoints.
	type msg struct{ src, dst int }
	var msgs []msg
	switch cfg.Pattern {
	case Permutation:
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := rng.next(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i, d := range perm {
			if i != d {
				msgs = append(msgs, msg{i, d})
			}
		}
	case BitComplement:
		for i := 0; i < n; i++ {
			if d := n - 1 - i; d != i {
				msgs = append(msgs, msg{i, d})
			}
		}
	default:
		m := cfg.Messages
		if m <= 0 {
			m = n
		}
		for len(msgs) < m {
			s, d := rng.next(n), rng.next(n)
			if s != d {
				msgs = append(msgs, msg{s, d})
			}
		}
	}

	// Next-hop tables per needed source (lexicographic hop/wire shortest
	// paths, cached).
	nextHop := make(map[int][]int)
	routeFrom := func(src int) []int {
		if nh, ok := nextHop[src]; ok {
			return nh
		}
		hops, wire := g.ShortestPathWire(src)
		nh := make([]int, n)
		for v := range nh {
			nh[v] = -1
		}
		// Parent pointers: for each v, pick the neighbor u minimizing
		// (hops, wire) such that u precedes v on an optimal path; store
		// per-destination next hop by walking backward.
		parent := make([]int, n)
		for v := range parent {
			parent[v] = -1
		}
		for v := 0; v < n; v++ {
			for _, a := range g.Arcs(v) {
				u := a.To
				if hops[u]+1 == hops[v] && wire[u]+a.Wire == wire[v] {
					parent[v] = u
					break
				}
			}
		}
		for v := 0; v < n; v++ {
			if v == src {
				continue
			}
			// Walk back from v to src; the node after src on the path is
			// the first hop.
			w := v
			for parent[w] != src && parent[w] != -1 {
				w = parent[w]
			}
			if parent[w] == src {
				nh[v] = w
			}
		}
		nextHop[src] = nh
		return nh
	}
	// first hop table gives only the first step; subsequent steps re-query
	// from the current node, which stays on shortest paths because
	// sub-paths of (hops, wire)-optimal paths from each node are computed
	// independently.

	linkLat := func(from, to int) int {
		for _, a := range g.Arcs(from) {
			if a.To == to {
				l := (a.Wire + cfg.Velocity - 1) / cfg.Velocity
				if l < 1 {
					l = 1
				}
				return l
			}
		}
		return 1
	}

	flits := cfg.Flits
	if flits < 1 {
		flits = 1
	}
	type linkKey struct{ u, v int }
	linkFree := make(map[linkKey]int)

	res := Result{}
	var pq eventHeap
	for i := range msgs {
		if dead[msgs[i].src] || dead[msgs[i].dst] {
			res.Dropped++
			continue
		}
		heap.Push(&pq, event{time: 0, msg: i, node: msgs[i].src, hop: 0})
	}
	for pq.Len() > 0 {
		ev := heap.Pop(&pq).(event)
		m := msgs[ev.msg]
		if ev.node == m.dst {
			arrived := ev.time
			if cfg.Switching == CutThrough {
				// The tail drains behind the header.
				arrived += flits - 1
			}
			res.Delivered++
			res.TotalHops += ev.hop
			if arrived > res.MaxLatency {
				res.MaxLatency = arrived
			}
			if arrived > res.Makespan {
				res.Makespan = arrived
			}
			res.AvgLatency += float64(arrived)
			continue
		}
		nh := routeFrom(ev.node)[m.dst]
		if nh < 0 {
			res.Dropped++ // no surviving route to the destination
			continue
		}
		lat := linkLat(ev.node, nh)
		lk := linkKey{ev.node, nh}
		start := ev.time
		if f := linkFree[lk]; f > start {
			start = f
		}
		var headerArrive int
		if cfg.Switching == CutThrough {
			// Header advances after the wire latency; the link stays busy
			// until the last flit has streamed across.
			headerArrive = start + lat
			linkFree[lk] = start + lat + flits - 1
		} else {
			// Store-and-forward: the whole message (flits × wire latency)
			// crosses before the next hop begins.
			transit := lat * flits
			headerArrive = start + transit
			linkFree[lk] = start + transit
		}
		heap.Push(&pq, event{time: headerArrive, msg: ev.msg, node: nh, hop: ev.hop + 1})
	}
	if res.Delivered > 0 {
		res.AvgLatency /= float64(res.Delivered)
	}
	return res
}
