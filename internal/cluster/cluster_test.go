package cluster

import (
	"math/bits"
	"sort"
	"testing"

	"mlvlsi/internal/layout"
	"mlvlsi/internal/topology"
	"mlvlsi/internal/track"
)

func mustBuild(t *testing.T) func(*layout.Layout, error) *layout.Layout {
	return func(lay *layout.Layout, err error) *layout.Layout {
		t.Helper()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if v := lay.Verify(); len(v) > 0 {
			t.Fatalf("%s: %d violations, first: %v", lay.Name, len(v), v[0])
		}
		return lay
	}
}

func sameGraph(t *testing.T, lay *layout.Layout, g *topology.Graph) {
	t.Helper()
	if len(lay.Nodes) != g.N {
		t.Fatalf("%s: %d nodes laid out, topology has %d", lay.Name, len(lay.Nodes), g.N)
	}
	if len(lay.Wires) != len(g.Links) {
		t.Fatalf("%s: %d wires, topology has %d links", lay.Name, len(lay.Wires), len(g.Links))
	}
	got := make([]topology.Link, 0, len(lay.Wires))
	for i := range lay.Wires {
		u, v := lay.Wires[i].U, lay.Wires[i].V
		if u > v {
			u, v = v, u
		}
		got = append(got, topology.Link{U: u, V: v})
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].U != got[j].U {
			return got[i].U < got[j].U
		}
		return got[i].V < got[j].V
	})
	want := g.LinkSet()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: wire multiset differs at %d: got %v want %v", lay.Name, i, got[i], want[i])
		}
	}
}

func TestCCCLayout(t *testing.T) {
	for _, tc := range []struct{ n, l int }{
		{2, 2}, {3, 2}, {3, 4}, {4, 2}, {4, 4}, {5, 8}, {4, 3},
	} {
		lay := mustBuild(t)(CCC(tc.n, tc.l, 0, 0))
		sameGraph(t, lay, topology.CCC(tc.n))
	}
}

func TestReducedHypercubeLayout(t *testing.T) {
	for _, tc := range []struct{ n, l int }{{2, 2}, {4, 2}, {4, 4}} {
		lay := mustBuild(t)(ReducedHypercube(tc.n, tc.l, 0, 0))
		sameGraph(t, lay, topology.ReducedHypercube(tc.n))
	}
}

func TestHSNLayout(t *testing.T) {
	for _, tc := range []struct{ lvl, r, l int }{
		{2, 3, 2}, {2, 4, 2}, {3, 3, 2}, {3, 3, 4}, {3, 4, 4}, {4, 3, 2},
	} {
		lay := mustBuild(t)(HSN(tc.lvl, tc.r, tc.l, 0, 0, nil))
		sameGraph(t, lay, topology.HSN(tc.lvl, tc.r, nil))
	}
}

func TestHHNLayout(t *testing.T) {
	for _, tc := range []struct{ lvl, m, l int }{{2, 2, 2}, {3, 2, 4}, {2, 3, 2}} {
		lay := mustBuild(t)(HHN(tc.lvl, tc.m, tc.l, 0, 0))
		sameGraph(t, lay, topology.HHN(tc.lvl, tc.m))
	}
}

func TestButterflyLayout(t *testing.T) {
	for _, tc := range []struct{ m, l int }{{3, 2}, {3, 4}, {4, 2}, {4, 4}, {5, 8}} {
		lay := mustBuild(t)(Butterfly(tc.m, tc.l, 0, 0))
		sameGraph(t, lay, topology.Butterfly(tc.m))
	}
}

func TestISNLayout(t *testing.T) {
	for _, tc := range []struct{ m, l int }{{3, 2}, {4, 4}, {5, 2}} {
		lay := mustBuild(t)(ISN(tc.m, tc.l, 0, 0))
		sameGraph(t, lay, topology.ISN(tc.m))
	}
}

func TestISNSmallerThanButterfly(t *testing.T) {
	// §4.3: the ISN lays out in about a quarter of the butterfly area and
	// half its wire length (same node count). The factor 4 is asymptotic —
	// at laptop sizes the escape/intra tracks (the paper's o(1) terms)
	// still dilute it — so assert the ratio exceeds a clear threshold and
	// grows with m.
	prev := 0.0
	for _, m := range []int{4, 5, 6, 7} {
		bf := mustBuild(t)(Butterfly(m, 4, 0, 0))
		isn := mustBuild(t)(ISN(m, 4, 0, 0))
		ra := float64(bf.Area()) / float64(isn.Area())
		if ra <= 1.0 {
			t.Errorf("m=%d: ISN not smaller than butterfly (ratio %.2f)", m, ra)
		}
		if ra+0.05 < prev {
			t.Errorf("m=%d: area ratio %.2f regressed from %.2f", m, ra, prev)
		}
		prev = ra
		if bf.MaxWireLength() <= isn.MaxWireLength() {
			t.Errorf("m=%d: ISN max wire %d not below butterfly %d",
				m, isn.MaxWireLength(), bf.MaxWireLength())
		}
	}
	if prev < 1.5 {
		t.Errorf("butterfly/ISN area ratio at m=7 is %.2f, want > 1.5 en route to 4", prev)
	}
}

func TestKAryClusterCLayout(t *testing.T) {
	for _, tc := range []struct{ k, n, c, l int }{
		{3, 2, 2, 2}, {4, 2, 4, 2}, {3, 3, 2, 4}, {4, 2, 2, 3},
	} {
		lay := mustBuild(t)(KAryClusterC(tc.k, tc.n, tc.c, tc.l, 0, 0))
		logc := bits.TrailingZeros(uint(tc.c))
		want := topology.PNClusterWithAttach(
			topology.KAryNCube(tc.k, tc.n), tc.c,
			func(int) *topology.Graph { return topology.Hypercube(logc) }, 1,
			func(u, v, _ int) (int, int) {
				d := 0
				for u%tc.k == v%tc.k {
					u /= tc.k
					v /= tc.k
					d++
				}
				return d % tc.c, d % tc.c
			})
		sameGraph(t, lay, want)
	}
}

func TestKAryClusterCAreaOverheadSmall(t *testing.T) {
	// §3.2: for c = o(k^{n/2-1}) the cluster-c network has asymptotically
	// the same area as the plain k-ary n-cube. With k=4, n=4, c=2 the
	// overhead must be modest.
	base := mustBuild(t)(kary(t, 4, 4, 2))
	clustered := mustBuild(t)(KAryClusterC(4, 4, 2, 2, 0, 0))
	ratio := float64(clustered.Area()) / float64(base.Area())
	if ratio > 3.0 {
		t.Errorf("cluster-2 area is %.2fx the quotient area, want modest overhead", ratio)
	}
}

func kary(t *testing.T, k, n, l int) (*layout.Layout, error) {
	t.Helper()
	cfg := Config{
		Name:      "plain-kary",
		RowFac:    track.KAryNCube(k, n/2, false),
		ColFac:    track.KAryNCube(k, (n+1)/2, false),
		C:         1,
		AttachRow: func(_, _, _ int) (int, int) { return 0, 0 },
		AttachCol: func(_, _, _ int) (int, int) { return 0, 0 },
		Label:     func(q, _ int) int { return q },
		L:         l,
	}
	return Build(cfg)
}

func TestBuildSpecValidation(t *testing.T) {
	base := Config{
		RowFac: track.Ring(3), ColFac: track.Ring(3),
		C: 2, L: 2,
		AttachRow: func(_, _, _ int) (int, int) { return 0, 0 },
		AttachCol: func(_, _, _ int) (int, int) { return 0, 0 },
		Label:     func(q, i int) int { return q*2 + i },
	}
	bad := base
	bad.C = 0
	if _, err := BuildSpec(bad); err == nil {
		t.Error("C=0 accepted")
	}
	bad = base
	bad.Intra = track.Ring(3) // wrong size
	if _, err := BuildSpec(bad); err == nil {
		t.Error("intra size mismatch accepted")
	}
	bad = base
	bad.Label = nil
	if _, err := BuildSpec(bad); err == nil {
		t.Error("missing Label accepted")
	}
	bad = base
	bad.AttachRow = func(_, _, _ int) (int, int) { return 5, 0 }
	if _, err := BuildSpec(bad); err == nil {
		t.Error("attach member out of range accepted")
	}
}

func TestColorIntervals(t *testing.T) {
	// Interval pairs touching at even (node) positions share a track;
	// touching at odd (channel) positions must not.
	ivs := []interval{
		{U: 0, V: 4, ID: 0},
		{U: 4, V: 8, ID: 1}, // touches at node 2 -> shares
		{U: 5, V: 9, ID: 2}, // overlaps 1 -> new track
	}
	tr, n := colorIntervals(ivs)
	if tr[0] != tr[1] {
		t.Errorf("intervals touching at an even position should share a track: %v", tr)
	}
	if tr[2] == tr[1] {
		t.Error("overlapping intervals share a track")
	}
	if n != 2 {
		t.Errorf("used %d tracks, want 2", n)
	}

	odd := []interval{
		{U: 1, V: 5, ID: 0},
		{U: 5, V: 9, ID: 1}, // touches at odd 5 -> must NOT share
	}
	trOdd, nOdd := colorIntervals(odd)
	if trOdd[0] == trOdd[1] || nOdd != 2 {
		t.Errorf("odd-position touch shared a track: %v", trOdd)
	}
}

func TestCCCAreaAdvantageOverPlainHypercubeOfSameSize(t *testing.T) {
	// §5.2: an N-node CCC lays out in Θ(N²/(L² log²N)) — much smaller than
	// an N-node hypercube's Θ(N²/L²). Compare CCC(4, 0) (64 nodes) to a
	// 6-cube (64 nodes).
	ccc := mustBuild(t)(CCC(4, 2, 0, 0))
	cube, err := coreHypercube(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ccc.Area() >= cube.Area() {
		t.Errorf("CCC area %d not below same-size hypercube area %d", ccc.Area(), cube.Area())
	}
}

func coreHypercube(n, l int) (*layout.Layout, error) {
	cfg := Config{
		Name:      "plain-cube",
		RowFac:    track.Hypercube(n / 2),
		ColFac:    track.Hypercube((n + 1) / 2),
		C:         1,
		AttachRow: func(_, _, _ int) (int, int) { return 0, 0 },
		AttachCol: func(_, _, _ int) (int, int) { return 0, 0 },
		Label:     func(q, _ int) int { return q },
		L:         l,
	}
	return Build(cfg)
}
