package cluster

import (
	"fmt"

	"mlvlsi/internal/layout"
	"mlvlsi/internal/topology"
	"mlvlsi/internal/track"
)

// Cayley-graph layouts (§4.3 extensions). The star, pancake, bubble-sort
// and transposition networks on n symbols all decompose by their last
// symbol into n copies of the same family on n−1 symbols, with the
// dimension-n generators forming (n−2)! (or (n−1)! for transpositions)
// links between every copy pair — i.e. the quotient over copies is the
// complete graph K_n, exactly the structure the paper lays out with its
// optimal collinear complete-graph layouts. Each copy becomes a cluster
// strip whose intra links are a greedy-colored collinear layout of the
// (n−1)-symbol family.
//
// The ICPP paper defers these layouts to "similar strategies" (citing the
// complete-graph/star layouts of [30]); this implementation follows that
// recipe and reports measured costs.

// reducePerm maps the first n−1 entries of a permutation whose last symbol
// is `last` order-preservingly onto 0..n−2.
func reducePerm(prefix []int, last int) []int {
	q := make([]int, len(prefix))
	for i, s := range prefix {
		if s > last {
			q[i] = s - 1
		} else {
			q[i] = s
		}
	}
	return q
}

// expandPerm inverts reducePerm: lifts a permutation of 0..n−2 to the
// symbols {0..n−1} \ {excluded}.
func expandPerm(q []int, excluded int) []int {
	out := make([]int, len(q))
	for i, s := range q {
		if s >= excluded {
			out[i] = s + 1
		} else {
			out[i] = s
		}
	}
	return out
}

// memberOf returns the member label (rank within its copy) of a full
// permutation whose last symbol identifies the copy.
func memberOf(perm []int) int {
	n := len(perm)
	return topology.RankPermutation(reducePerm(perm[:n-1], perm[n-1]))
}

// midSymbols returns the sorted symbols {0..n−1} \ {i, j}.
func midSymbols(n, i, j int) []int {
	out := make([]int, 0, n-2)
	for s := 0; s < n; s++ {
		if s != i && s != j {
			out = append(out, s)
		}
	}
	return out
}

// midPerm returns the m-th lexicographic arrangement of the given sorted
// symbols.
func midPerm(m int, symbols []int) []int {
	sigma := topology.UnrankPermutation(m, len(symbols))
	out := make([]int, len(symbols))
	for i, p := range sigma {
		out[i] = symbols[p]
	}
	return out
}

// cayleyFamily describes one last-symbol-decomposable family.
type cayleyFamily struct {
	name string
	// intra builds the (n−1)-symbol family graph for cluster interiors.
	intra func(n int) *topology.Graph
	// multiplicity of the K_n quotient links.
	mult func(n int) int
	// boundary returns the m-th boundary link between copies i < j as the
	// two full permutations (one in copy i, one in copy j).
	boundary func(n, i, j, m int) (permI, permJ []int)
}

var starFamily = cayleyFamily{
	name:  "star",
	intra: topology.Star,
	mult:  func(n int) int { return topology.Factorial(n - 2) },
	boundary: func(n, i, j, m int) ([]int, []int) {
		mid := midPerm(m, midSymbols(n, i, j))
		permI := append(append([]int{j}, mid...), i)
		permJ := append([]int(nil), permI...)
		permJ[0], permJ[n-1] = permJ[n-1], permJ[0]
		return permI, permJ
	},
}

var pancakeFamily = cayleyFamily{
	name:  "pancake",
	intra: topology.Pancake,
	mult:  func(n int) int { return topology.Factorial(n - 2) },
	boundary: func(n, i, j, m int) ([]int, []int) {
		mid := midPerm(m, midSymbols(n, i, j))
		permI := append(append([]int{j}, mid...), i)
		permJ := make([]int, n)
		for k := range permI {
			permJ[k] = permI[n-1-k]
		}
		return permI, permJ
	},
}

var bubbleFamily = cayleyFamily{
	name:  "bubblesort",
	intra: topology.BubbleSort,
	mult:  func(n int) int { return topology.Factorial(n - 2) },
	boundary: func(n, i, j, m int) ([]int, []int) {
		mid := midPerm(m, midSymbols(n, i, j))
		permI := append(append([]int{}, mid...), j, i)
		permJ := append([]int(nil), permI...)
		permJ[n-2], permJ[n-1] = permJ[n-1], permJ[n-2]
		return permI, permJ
	},
}

var transpositionFamily = cayleyFamily{
	name:  "transposition",
	intra: topology.Transposition,
	mult:  func(n int) int { return topology.Factorial(n - 1) },
	boundary: func(n, i, j, m int) ([]int, []int) {
		// The m-th permutation of copy i (by member rank) has exactly one
		// link to copy j: swap the position holding j with the last.
		permI := append(expandPerm(topology.UnrankPermutation(m, n-1), i), i)
		permJ := append([]int(nil), permI...)
		for k := 0; k < n-1; k++ {
			if permJ[k] == j {
				permJ[k], permJ[n-1] = permJ[n-1], permJ[k]
				break
			}
		}
		return permI, permJ
	},
}

// cayleyConfig assembles one family's cluster configuration on n symbols:
// quotient K_n over the last-symbol copies (a vertical collinear
// complete-graph arrangement), cluster strips of (n−1)! members with
// greedy-colored intra layouts.
func cayleyConfig(f cayleyFamily, n, l, nodeSide int) (Config, error) {
	if n < 3 {
		return Config{}, fmt.Errorf("%s layout: need n >= 3, got %d", f.name, n)
	}
	if n > 7 {
		return Config{}, fmt.Errorf("%s layout: n=%d means %d-node clusters; refusing above n=7", f.name, n, topology.Factorial(n-1))
	}
	sub := f.intra(n - 1)
	links := make([][2]int, len(sub.Links))
	for i, lk := range sub.Links {
		links[i] = [2]int{lk.U, lk.V}
	}
	intra := track.FromGraph(f.name+"-intra", sub.N, links, nil)

	attach := func(u, v, m int) (int, int) {
		permU, permV := f.boundary(n, u, v, m)
		return memberOf(permU), memberOf(permV)
	}
	label := func(clusterID, member int) int {
		q := topology.UnrankPermutation(member, n-1)
		full := append(expandPerm(q, clusterID), clusterID)
		return topology.RankPermutation(full)
	}
	return Config{
		Name:         fmt.Sprintf("%s(%d) L=%d", f.name, n, l),
		RowFac:       &track.Collinear{Name: "trivial", N: 1},
		ColFac:       track.Complete(n),
		C:            topology.Factorial(n - 1),
		Intra:        intra,
		Multiplicity: f.mult(n),
		AttachRow:    func(_, _, _ int) (int, int) { return 0, 0 },
		AttachCol:    attach,
		Label:        label,
		L:            l, NodeSide: nodeSide,
	}, nil
}

func cayleyLayout(f cayleyFamily, n, l, nodeSide, workers int) (*layout.Layout, error) {
	cfg, err := cayleyConfig(f, n, l, nodeSide)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	return Build(cfg)
}

// StarConfig assembles the n-dimensional star graph configuration.
func StarConfig(n, l, nodeSide int) (Config, error) {
	return cayleyConfig(starFamily, n, l, nodeSide)
}

// Star lays out the n-dimensional star graph.
func Star(n, l, nodeSide, workers int) (*layout.Layout, error) {
	return cayleyLayout(starFamily, n, l, nodeSide, workers)
}

// PancakeConfig assembles the n-dimensional pancake graph configuration.
func PancakeConfig(n, l, nodeSide int) (Config, error) {
	return cayleyConfig(pancakeFamily, n, l, nodeSide)
}

// Pancake lays out the n-dimensional pancake graph.
func Pancake(n, l, nodeSide, workers int) (*layout.Layout, error) {
	return cayleyLayout(pancakeFamily, n, l, nodeSide, workers)
}

// BubbleSortConfig assembles the n-dimensional bubble-sort graph
// configuration.
func BubbleSortConfig(n, l, nodeSide int) (Config, error) {
	return cayleyConfig(bubbleFamily, n, l, nodeSide)
}

// BubbleSort lays out the n-dimensional bubble-sort graph.
func BubbleSort(n, l, nodeSide, workers int) (*layout.Layout, error) {
	return cayleyLayout(bubbleFamily, n, l, nodeSide, workers)
}

// TranspositionConfig assembles the n-dimensional transposition network
// configuration.
func TranspositionConfig(n, l, nodeSide int) (Config, error) {
	return cayleyConfig(transpositionFamily, n, l, nodeSide)
}

// Transposition lays out the n-dimensional transposition network.
func Transposition(n, l, nodeSide, workers int) (*layout.Layout, error) {
	return cayleyLayout(transpositionFamily, n, l, nodeSide, workers)
}

// SCCConfig assembles the star-connected cycles configuration (listed as
// future work in the paper's §4.3; built here with the same last-symbol
// machinery): the quotient over copies is K_n with (n−2)! links per pair —
// the lateral links of generator swap(0, n−1), which cycle position n−2
// carries — and each cluster holds (n−1)!·(n−1) nodes: the copy's cycles
// plus the laterals of generators that do not touch the last symbol.
func SCCConfig(n, l, nodeSide int) (Config, error) {
	if n < 4 {
		return Config{}, fmt.Errorf("SCC layout: need n >= 4, got %d", n)
	}
	if n > 6 {
		return Config{}, fmt.Errorf("SCC layout: n=%d means %d-node clusters; refusing above n=6", n, topology.Factorial(n-1)*(n-1))
	}
	cyc := n - 1
	subN := topology.Factorial(n - 1)
	c := subN * cyc
	member := func(q, i int) int { return q*cyc + i }

	// Intra graph on member labels: per reduced permutation q, the cycle
	// plus the laterals of generators 1..n−2 (acting on the reduced perm).
	var links [][2]int
	for q := 0; q < subN; q++ {
		p := topology.UnrankPermutation(q, n-1)
		for i := 0; i < cyc; i++ {
			j := (i + 1) % cyc
			if cyc == 2 && i == 1 {
				continue
			}
			links = append(links, [2]int{member(q, i), member(q, j)})
		}
		for i := 0; i+1 < cyc; i++ { // generators swap(0, i+1), i+1 <= n−2
			pp := append([]int(nil), p...)
			pp[0], pp[i+1] = pp[i+1], pp[0]
			q2 := topology.RankPermutation(pp)
			if q < q2 {
				links = append(links, [2]int{member(q, i), member(q2, i)})
			}
		}
	}
	intra := track.FromGraph("scc-intra", c, links, nil)

	attach := func(u, v, m int) (int, int) {
		mid := midPerm(m, midSymbols(n, u, v))
		permU := append(append([]int{v}, mid...), u)
		permV := append([]int(nil), permU...)
		permV[0], permV[n-1] = permV[n-1], permV[0]
		qU := topology.RankPermutation(reducePerm(permU[:n-1], u))
		qV := topology.RankPermutation(reducePerm(permV[:n-1], v))
		return member(qU, cyc-1), member(qV, cyc-1)
	}
	label := func(clusterID, mem int) int {
		q, i := mem/cyc, mem%cyc
		full := append(expandPerm(topology.UnrankPermutation(q, n-1), clusterID), clusterID)
		return topology.RankPermutation(full)*cyc + i
	}
	return Config{
		Name:         fmt.Sprintf("SCC(%d) L=%d", n, l),
		RowFac:       &track.Collinear{Name: "trivial", N: 1},
		ColFac:       track.Complete(n),
		C:            c,
		Intra:        intra,
		Multiplicity: topology.Factorial(n - 2),
		AttachRow:    func(_, _, _ int) (int, int) { return 0, 0 },
		AttachCol:    attach,
		Label:        label,
		L:            l, NodeSide: nodeSide,
	}, nil
}

// SCC lays out the star-connected cycles network; see SCCConfig.
func SCC(n, l, nodeSide, workers int) (*layout.Layout, error) {
	cfg, err := SCCConfig(n, l, nodeSide)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	return Build(cfg)
}
