// Package cluster implements the paper's recursive grid layout scheme
// (§2.3) specialized to product-network clusters (§3.2): each node of a
// quotient product network is expanded into a cluster of C nodes, laid out
// as a strip of C adjacent grid columns whose intra-cluster links run as a
// collinear layout in the strip's share of the row channels. Quotient links
// attach to specific cluster members; links in the column direction whose
// two attachment members differ are routed as bent edges (a short escape in
// the source row channel plus a shared vertical trunk), which is how the
// swap links of HSNs and the cross links of butterflies reach their members
// without distorting the quotient layout's area.
//
// Network-specific constructors (CCC, reduced hypercube, HSN, HHN,
// butterfly, ISN, k-ary n-cube cluster-c) wire the attachment conventions
// to match the generators in internal/topology exactly, so tests can verify
// the realized wires against the topologies link for link.
package cluster

import (
	"context"
	"fmt"
	"sort"

	"mlvlsi/internal/core"
	"mlvlsi/internal/intervals"
	"mlvlsi/internal/layout"
	"mlvlsi/internal/obs"
	"mlvlsi/internal/track"
)

// Config describes a PN-cluster layout instance.
type Config struct {
	Name string
	// RowFac and ColFac are the quotient product network's collinear
	// factors: the cluster grid has ColFac.N rows and RowFac.N cluster
	// columns. Quotient cluster labels compose as
	// colLabel·RowFac.N + rowLabel.
	RowFac, ColFac *track.Collinear
	// C is the cluster size; each cluster occupies C adjacent grid columns.
	C int
	// Intra is the collinear layout of the intra-cluster graph (N == C);
	// nil means clusters have no internal links. Its Labels order the
	// members within the strip.
	Intra *track.Collinear
	// Multiplicity is the number of parallel physical links per quotient
	// link (the paper's butterfly quotient carries 2 per direction pair).
	Multiplicity int
	// AttachRow returns the member labels the m-th copy of a row-direction
	// quotient link attaches to at its two cluster endpoints (given the
	// global quotient cluster labels, uCluster < vCluster in label order).
	// The result must depend only on the factor edge and copy — i.e. be the
	// same for every row — since each row channel replicates one colored
	// prototype. Label-structural rules (differing bit, differing digit)
	// satisfy this naturally.
	AttachRow func(uCluster, vCluster, m int) (uMember, vMember int)
	// AttachCol is the same for column-direction quotient links. When the
	// two members differ the link is routed as a bent edge.
	AttachCol func(uCluster, vCluster, m int) (uMember, vMember int)
	// Label maps (quotient cluster label, member label) to the node label.
	Label func(cluster, member int) int

	L        int
	NodeSide int
	// Workers bounds the realization fan-out (0 = GOMAXPROCS, 1 = serial);
	// the realized layout is identical for every value.
	Workers int
	// Ctx and MaxCells are forwarded to the engine spec: a non-nil Ctx
	// cancels the build cooperatively (error wraps par.ErrCanceled) and a
	// positive MaxCells bounds the planned grid occupancy (overruns return
	// a *layout.BudgetError). See core.Spec.
	Ctx      context.Context
	MaxCells int
	// Obs receives build spans and counters; the spec assembly itself is
	// reported as an "assemble" span and the engine's "build" span follows.
	// Nil disables observation at zero cost. See internal/obs.
	Obs *obs.Observer
	// Scratch, when non-nil, selects the engine's arena build path; see
	// core.Spec.Scratch. The spec assembly itself still allocates — only the
	// realization of the assembled spec draws from the scratch.
	Scratch *core.BuildScratch
}

// interval aliases the shared half-position interval type; see the
// intervals package for the coloring rules.
type interval = intervals.Interval

// colorIntervals delegates to the shared greedy coloring.
func colorIntervals(ivs []interval) ([]int, int) {
	return intervals.Color(ivs)
}

// Build assembles and realizes the PN-cluster layout.
func Build(cfg Config) (*layout.Layout, error) {
	spec, err := BuildSpec(cfg)
	if err != nil {
		return nil, err
	}
	spec.Scratch = cfg.Scratch
	return core.Build(spec)
}

// BuildSpec assembles the engine spec for a PN-cluster layout without
// realizing it (useful for geometry planning). The assembly — interval
// coloring and edge emission — is reported as an "assemble" span on cfg.Obs.
func BuildSpec(cfg Config) (core.Spec, error) {
	asm := cfg.Obs.StartSpan("assemble")
	defer asm.End()
	if cfg.C < 1 {
		return core.Spec{}, fmt.Errorf("%s: cluster size %d < 1", cfg.Name, cfg.C)
	}
	mult := cfg.Multiplicity
	if mult < 1 {
		mult = 1
	}
	if cfg.Intra != nil && cfg.Intra.N != cfg.C {
		return core.Spec{}, fmt.Errorf("%s: intra layout has %d nodes, cluster size is %d", cfg.Name, cfg.Intra.N, cfg.C)
	}
	if cfg.Label == nil {
		return core.Spec{}, fmt.Errorf("%s: Label is required", cfg.Name)
	}

	rows := cfg.ColFac.N
	quotCols := cfg.RowFac.N
	cols := quotCols * cfg.C

	// Member label <-> strip position maps.
	memberLabel := make([]int, cfg.C)
	memberPos := make([]int, cfg.C)
	for p := 0; p < cfg.C; p++ {
		l := p
		if cfg.Intra != nil {
			l = cfg.Intra.Label(p)
		}
		memberLabel[p] = l
		memberPos[l] = p
	}

	rowLabel := func(j int) int { return cfg.RowFac.Label(j) }
	colLabel := func(i int) int { return cfg.ColFac.Label(i) }
	clusterLabel := func(i, j int) int { return colLabel(i)*quotCols + rowLabel(j) }

	spec := core.Spec{
		Name: cfg.Name,
		Rows: rows,
		Cols: cols,
		L:    cfg.L, NodeSide: cfg.NodeSide,
		Label: func(r, c int) int {
			return cfg.Label(clusterLabel(r, c/cfg.C), memberLabel[c%cfg.C])
		},
		Workers:  cfg.Workers,
		Ctx:      cfg.Ctx,
		MaxCells: cfg.MaxCells,
		Obs:      cfg.Obs,
	}

	// --- Row channels -----------------------------------------------------
	// Every row channel carries the same interval multiset: quotient row
	// links (with member attachments) and the intra-cluster links of each
	// strip. Color once and replicate per row. Row-direction attachments
	// depend only on the row-factor edge, not the row, because the
	// differing digit lies in the row factor; the attachment call uses the
	// row-0 cluster labels as representatives and asserts consistency.
	type rowProtoEdge struct {
		physU, physV int
	}
	var rowIvs []interval
	var rowPhys []rowProtoEdge
	addRowIv := func(physU, physV int) {
		rowPhys = append(rowPhys, rowProtoEdge{physU, physV})
		rowIvs = append(rowIvs, interval{U: 2 * physU, V: 2 * physV, ID: len(rowPhys) - 1})
	}
	for _, e := range cfg.RowFac.Edges {
		for m := 0; m < mult; m++ {
			uLab, vLab := rowLabel(e.U), rowLabel(e.V)
			uCl, vCl := clusterLabel(0, e.U), clusterLabel(0, e.V)
			if uLab > vLab {
				// Attachment conventions are defined on label order.
				uCl, vCl = vCl, uCl
			}
			um, vm := cfg.AttachRow(uCl, vCl, m)
			if uLab > vLab {
				um, vm = vm, um
			}
			if um < 0 || um >= cfg.C || vm < 0 || vm >= cfg.C {
				return core.Spec{}, fmt.Errorf("%s: AttachRow returned member out of range", cfg.Name)
			}
			addRowIv(e.U*cfg.C+memberPos[um], e.V*cfg.C+memberPos[vm])
		}
	}
	if cfg.Intra != nil {
		for j := 0; j < quotCols; j++ {
			for _, e := range cfg.Intra.Edges {
				addRowIv(j*cfg.C+e.U, j*cfg.C+e.V)
			}
		}
	}

	// --- Column channels --------------------------------------------------
	// Column-direction quotient links whose attachments agree become
	// regular column edges in the member's physical column; mismatched
	// attachments become bent edges. Both kinds, plus the bent escapes in
	// the row channels, are colored per channel.
	type colPhysEdge struct {
		physCol int // physical column hosting the vertical segment
		rU, rV  int
		member  bool // true: regular column edge; false: bent
		uPos    int  // for bent: u's physical column
	}
	var colPhys []colPhysEdge
	colIvs := make(map[int][]interval) // physical column -> intervals
	for j := 0; j < quotCols; j++ {
		for _, e := range cfg.ColFac.Edges {
			for m := 0; m < mult; m++ {
				uLab, vLab := colLabel(e.U), colLabel(e.V)
				uCl, vCl := clusterLabel(e.U, j), clusterLabel(e.V, j)
				if uLab > vLab {
					uCl, vCl = vCl, uCl
				}
				um, vm := cfg.AttachCol(uCl, vCl, m)
				if uLab > vLab {
					um, vm = vm, um
				}
				if um < 0 || um >= cfg.C || vm < 0 || vm >= cfg.C {
					return core.Spec{}, fmt.Errorf("%s: AttachCol returned member out of range", cfg.Name)
				}
				uPhys := j*cfg.C + memberPos[um]
				vPhys := j*cfg.C + memberPos[vm]
				if um == vm {
					idx := len(colPhys)
					colPhys = append(colPhys, colPhysEdge{physCol: uPhys, rU: e.U, rV: e.V, member: true})
					colIvs[uPhys] = append(colIvs[uPhys], interval{U: 2 * e.U, V: 2 * e.V, ID: idx})
					continue
				}
				// Bent: escape in row e.U's channel from uPhys to vPhys's
				// channel; trunk in vPhys's channel spanning rows.
				idx := len(colPhys)
				colPhys = append(colPhys, colPhysEdge{physCol: vPhys, rU: e.U, rV: e.V, member: false, uPos: uPhys})
				vu, vv := 2*e.U+1, 2*e.V
				if vu > vv {
					vu, vv = vv, vu
				}
				colIvs[vPhys] = append(colIvs[vPhys], interval{U: vu, V: vv, ID: idx})
			}
		}
	}

	// Escape intervals live in specific row channels; since column links of
	// a given factor edge repeat for every row pair (e.U), the escape sets
	// are not uniform across rows. Color them per row, offset above the
	// (uniform) row prototype tracks.
	rowTracks, rowTrackCount := colorIntervals(rowIvs)
	escapeIvs := make(map[int][]interval) // row -> escapes (id = colPhys index)
	for idx, ce := range colPhys {
		if ce.member {
			continue
		}
		hu, hv := 2*ce.uPos, 2*ce.physCol+1
		if hu > hv {
			hu, hv = hv, hu
		}
		escapeIvs[ce.rU] = append(escapeIvs[ce.rU], interval{U: hu, V: hv, ID: idx})
	}
	escapeTrack := make(map[int]int) // colPhys index -> escape track (per its row)
	for _, ivs := range escapeIvs {
		tr, _ := colorIntervals(ivs)
		for i, iv := range ivs {
			escapeTrack[iv.ID] = rowTrackCount + tr[i]
		}
	}

	// Emit row edges (quotient row links + intra links).
	for i, pe := range rowPhys {
		spec.RowEdges = append(spec.RowEdges, core.ChannelEdge{
			Index: -1, // placeholder; expanded below
			U:     pe.physU,
			V:     pe.physV,
			Track: rowTracks[i],
		})
	}
	proto := spec.RowEdges
	spec.RowEdges = nil
	for r := 0; r < rows; r++ {
		for _, e := range proto {
			e.Index = r
			spec.RowEdges = append(spec.RowEdges, e)
		}
	}

	// Emit column edges and bent edges. Iterate physical columns in sorted
	// order: map order would make wire IDs differ between otherwise
	// identical builds, breaking reproducibility (and the guarantee that
	// the realized layout is independent of the worker count).
	physCols := make([]int, 0, len(colIvs))
	for physCol := range colIvs {
		physCols = append(physCols, physCol)
	}
	sort.Ints(physCols)
	for _, physCol := range physCols {
		ivs := colIvs[physCol]
		tr, _ := colorIntervals(ivs)
		for i, iv := range ivs {
			ce := colPhys[iv.ID]
			if ce.member {
				spec.ColEdges = append(spec.ColEdges, core.ChannelEdge{
					Index: physCol, U: ce.rU, V: ce.rV, Track: tr[i],
				})
			} else {
				spec.Bent = append(spec.Bent, core.BentEdge{
					URow: ce.rU, UCol: ce.uPos,
					VRow: ce.rV, VCol: ce.physCol,
					HTrack: escapeTrack[iv.ID],
					VTrack: tr[i],
				})
			}
		}
	}
	return spec, nil
}
